// Command websearchd serves the synthetic search engines over HTTP.
//
// It stands in for the AltaVista and Google endpoints of the paper's
// prototype: one process, two engines, each on its own port, with
// configurable per-request latency.
//
// Usage:
//
//	websearchd [-av :8081] [-google :8082] [-latency 750ms] [-jitter 300ms] [-seed 1999] [-scale 2]
//
// API per engine:
//
//	GET /count?q=EXPR            total hit count (WebCount)
//	GET /search?q=EXPR&k=K       top-K ranked results (WebPages)
//	GET /fetch?url=URL           page body (WebFetch / crawler)
//	GET /healthz                 engine identity
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/search"
	"repro/internal/websim"
)

func main() {
	avAddr := flag.String("av", "127.0.0.1:8081", "listen address for the altavista engine")
	gAddr := flag.String("google", "127.0.0.1:8082", "listen address for the google engine")
	latency := flag.Duration("latency", 750*time.Millisecond, "base per-request latency")
	jitter := flag.Duration("jitter", 300*time.Millisecond, "maximum additional random latency")
	seed := flag.Int64("seed", 1999, "corpus generation seed")
	scale := flag.Int("scale", 2, "corpus scale (pages per weight unit)")
	flag.Parse()

	log.Printf("building synthetic web corpus (seed=%d scale=%d)...", *seed, *scale)
	start := time.Now()
	corpus := websim.Build(websim.Config{Seed: *seed, Scale: *scale})
	log.Printf("corpus ready: %d pages in %v", corpus.NumPages(), time.Since(start).Round(time.Millisecond))

	model := search.LatencyModel{Base: *latency, Jitter: *jitter, CountFactor: 0.8}
	av := search.NewDelayed(websim.NewAltaVista(corpus), model, *seed+1)
	g := search.NewDelayed(websim.NewGoogle(corpus), model, *seed+2)

	errc := make(chan error, 2)
	for _, e := range []struct {
		addr   string
		engine search.Engine
	}{{*avAddr, av}, {*gAddr, g}} {
		e := e
		go func() {
			log.Printf("engine %s listening on http://%s", e.engine.Name(), e.addr)
			errc <- http.ListenAndServe(e.addr, search.NewHandler(e.engine))
		}()
	}
	if err := <-errc; err != nil {
		fmt.Fprintf(os.Stderr, "websearchd: %v\n", err)
		os.Exit(1)
	}
}
