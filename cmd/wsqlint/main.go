// Command wsqlint runs the project-invariant static analyzer suite
// (internal/lint) over the module and reports diagnostics with
// file:line:col positions. It is part of the check gate (`make lint`,
// folded into `make check`): exit status is 0 when clean, 1 when any
// diagnostic fires, 2 on usage or load errors.
//
// Usage:
//
//	wsqlint [-json] [-rules r1,r2] [-list] [-no-ignore] [packages]
//
// Packages default to ./... relative to the enclosing module. The
// -json mode emits a stable machine-readable report for CI annotation:
//
//	{"diagnostics":[{"file":...,"line":N,"col":N,"rule":...,"message":...}],"count":N}
//
// Diagnostics are suppressible per rule with
//
//	//lint:ignore <rule> <reason>
//
// on the preceding line, or in a declaration's doc comment to cover the
// whole declaration. The reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

type jsonReport struct {
	Diagnostics []jsonDiag `json:"diagnostics"`
	Count       int        `json:"count"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("wsqlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as stable JSON")
	ruleList := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	noIgnore := fs.Bool("no-ignore", false, "disable //lint:ignore suppression (exemption-free mode)")
	debug := fs.Bool("debug", false, "print type-checker noise (never affects exit status)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rules := lint.AllRules()
	if *list {
		for _, r := range rules {
			fmt.Printf("%-14s %s\n", r.Name(), r.Doc())
		}
		return 0
	}
	if *ruleList != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*ruleList, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var selected []lint.Rule
		for _, r := range rules {
			if want[r.Name()] {
				delete(want, r.Name())
				selected = append(selected, r)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "wsqlint: unknown rule %q (see -list)\n", name)
			return 2
		}
		rules = selected
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsqlint: %v\n", err)
		return 2
	}
	ld, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsqlint: %v\n", err)
		return 2
	}
	pkgs, err := ld.LoadPatterns(fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsqlint: %v\n", err)
		return 2
	}
	if *debug {
		for _, p := range pkgs {
			for _, e := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "wsqlint: debug: %s: %v\n", p.Path, e)
			}
		}
	}

	runFn := lint.Run
	if *noIgnore {
		runFn = lint.RunNoIgnore
	}
	diags := runFn(pkgs, rules)
	if *jsonOut {
		report := jsonReport{Diagnostics: make([]jsonDiag, 0, len(diags)), Count: len(diags)}
		for _, d := range diags {
			report.Diagnostics = append(report.Diagnostics, jsonDiag{
				File: relPath(cwd, d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
				Rule: d.Rule, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "wsqlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", relPath(cwd, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relPath shortens filenames for readability without destabilizing the
// JSON format (paths stay within the module).
func relPath(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
