package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read pipe: %v", err)
	}
	return string(data)
}

func TestListExitsZero(t *testing.T) {
	var code int
	out := captureStdout(t, func() { code = run([]string{"-list"}) })
	if code != 0 {
		t.Fatalf("run(-list) = %d, want 0", code)
	}
	for _, rule := range []string{"slotbalance", "ctxflow", "seededrand", "lockscope", "goroutinectx"} {
		if !containsLine(out, rule) {
			t.Errorf("-list output missing rule %s:\n%s", rule, out)
		}
	}
}

func containsLine(out, prefix string) bool {
	for _, line := range splitLines(out) {
		if len(line) >= len(prefix) && line[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}

func TestUnknownRuleExitsTwo(t *testing.T) {
	if code := run([]string{"-rules", "nosuchrule"}); code != 2 {
		t.Fatalf("run(-rules nosuchrule) = %d, want 2", code)
	}
}

// TestJSONCleanPackage lints a known-clean package and checks the
// stable JSON shape.
func TestJSONCleanPackage(t *testing.T) {
	var code int
	out := captureStdout(t, func() { code = run([]string{"-json", "./internal/search"}) })
	if code != 0 {
		t.Fatalf("run(-json ./internal/search) = %d, want 0\n%s", code, out)
	}
	var report struct {
		Diagnostics []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		} `json:"diagnostics"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if report.Count != 0 || len(report.Diagnostics) != 0 {
		t.Fatalf("expected clean report, got %s", out)
	}
}

// TestDirtyModuleExitsOne builds a scratch module with a seededrand
// violation and checks the CLI reports it and exits 1.
func TestDirtyModuleExitsOne(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list; skipped in -short")
	}
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratchmod\n\ngo 1.21\n")
	writeFile(t, filepath.Join(dir, "dice.go"),
		"package scratchmod\n\nimport \"math/rand\"\n\nfunc Roll() int { return rand.Intn(6) }\n")

	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Fatal(err)
		}
	}()

	var code int
	out := captureStdout(t, func() { code = run([]string{"./..."}) })
	if code != 1 {
		t.Fatalf("run on dirty module = %d, want 1\n%s", code, out)
	}
	if !containsLine(out, "dice.go:3") {
		t.Errorf("expected a dice.go:3 seededrand diagnostic, got:\n%s", out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
