// Command wsqd is the WSQ query daemon: one shared database, many
// concurrent clients, a single global ReqPump dividing the external-call
// budget across all of them (Section 4.1's multi-user resource control).
//
// By default it runs self-contained with in-process synthetic engines and
// the paper's tables preloaded; pass -av-url/-google-url to target a
// running websearchd instead.
//
// Usage:
//
//	wsqd [-addr :8080] [-latency 25ms] [-cache 4096] [-max-queries 32]
//	     [-queue-depth 64] [-max-concurrent 64] [-max-per-dest 32]
//	     [-timeout 30s] [-allow-writes] [-db DIR]
//	     [-av-url URL -google-url URL]
//
// API:
//
//	POST /query   {"sql": "...", "timeout_ms": 500}  -> columns + rows
//	GET  /query?q=SELECT...                          -> same
//	GET  /statusz                                    -> pump/cache/latency stats
//	GET  /healthz                                    -> liveness
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/search"
	"repro/internal/server"
	"repro/internal/websim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	dir := flag.String("db", "", "database directory (default: a temp dir)")
	latency := flag.Duration("latency", 25*time.Millisecond, "simulated search latency (in-process engines)")
	cacheSize := flag.Int("cache", 4096, "search-result cache capacity (0 = disabled)")
	maxQueries := flag.Int("max-queries", 32, "max concurrently executing queries")
	queueDepth := flag.Int("queue-depth", 64, "max queries waiting for admission (overflow gets 503)")
	maxTotal := flag.Int("max-concurrent", 0, "pump total external-call limit (0 = default)")
	maxDest := flag.Int("max-per-dest", 0, "pump per-destination limit (0 = default)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query deadline")
	allowWrites := flag.Bool("allow-writes", false, "permit CREATE/DROP/INSERT through /query")
	avURL := flag.String("av-url", "", "URL of a websearchd altavista endpoint (default: in-process)")
	gURL := flag.String("google-url", "", "URL of a websearchd google endpoint (default: in-process)")
	flag.Parse()

	if *dir == "" {
		tmp, err := os.MkdirTemp("", "wsqd-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}

	db, err := core.Open(core.Config{
		Dir:                *dir,
		Async:              true,
		MaxConcurrentCalls: *maxTotal,
		MaxCallsPerDest:    *maxDest,
		CacheSize:          *cacheSize,
	})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	if *avURL != "" || *gURL != "" {
		if *avURL == "" || *gURL == "" {
			fatal(fmt.Errorf("pass both -av-url and -google-url or neither"))
		}
		db.RegisterEngine(search.NewClient("altavista", *avURL), "AV")
		db.RegisterEngine(search.NewClient("google", *gURL), "G")
	} else {
		corpus := websim.Default()
		model := search.LatencyModel{Base: *latency, Jitter: *latency / 2, CountFactor: 0.8}
		db.RegisterEngine(search.NewDelayed(websim.NewAltaVista(corpus), model, 1), "AV")
		db.RegisterEngine(search.NewDelayed(websim.NewGoogle(corpus), model, 2), "G")
	}
	if err := harness.LoadPaperTables(db); err != nil {
		fatal(err)
	}

	srv := server.New(db, server.Options{
		MaxConcurrentQueries: *maxQueries,
		MaxQueueDepth:        *queueDepth,
		DefaultTimeout:       *timeout,
		AllowWrites:          *allowWrites,
	})
	log.Printf("wsqd listening on http://%s (max-queries=%d queue-depth=%d cache=%d writes=%v)",
		*addr, *maxQueries, *queueDepth, *cacheSize, *allowWrites)
	log.Printf("try: curl 'http://%s/query?q=SELECT+Name,+Count+FROM+States,+WebCount+WHERE+Name+%%3D+T1+LIMIT+3'", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wsqd: %v\n", err)
	os.Exit(1)
}
