// Command wsqd is the WSQ query daemon: one shared database, many
// concurrent clients, a single global ReqPump dividing the external-call
// budget across all of them (Section 4.1's multi-user resource control).
//
// By default it runs self-contained with in-process synthetic engines and
// the paper's tables preloaded; pass -av-url/-google-url to target a
// running websearchd instead.
//
// Usage:
//
//	wsqd [-addr :8080] [-latency 25ms] [-cache 4096] [-max-queries 32]
//	     [-queue-depth 64] [-max-concurrent 64] [-max-per-dest 32]
//	     [-timeout 30s] [-allow-writes] [-db DIR]
//	     [-av-url URL -google-url URL]
//	     [-retries 4] [-retry-backoff 5ms] [-call-timeout 2s] [-hedge-after 0]
//	     [-degrade fail|drop|partial] [-flaky 0.3] [-seed 1]
//
// Tier modes (internal/shard): with -shard-config and -shard-id the
// daemon joins a sharded tier as a worker (peer cache protocol under
// /shard/*, pump peering attached); with -shard-config and -coordinator
// it runs the tier front door instead (no local database), routing
// /query by consistent-hashed search expressions and serving
// /admin/drain and /admin/reload. Both modes re-read the config on
// SIGHUP.
//
// API:
//
//	POST /query   {"sql": "...", "timeout_ms": 500}  -> columns + rows
//	GET  /query?q=SELECT...                          -> same
//	GET  /query?q=...&trace=1                        -> + per-operator span tree
//	GET  /statusz                                    -> pump/cache/latency stats
//	GET  /metrics                                    -> Prometheus text exposition
//	GET  /debug/pprof/                               -> Go profiling endpoints
//	GET  /healthz                                    -> liveness
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/profile"
	"repro/internal/search"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/websim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	dir := flag.String("db", "", "database directory (default: a temp dir)")
	latency := flag.Duration("latency", 25*time.Millisecond, "simulated search latency (in-process engines)")
	cacheSize := flag.Int("cache", 4096, "search-result cache capacity (0 = disabled)")
	maxQueries := flag.Int("max-queries", 32, "max concurrently executing queries")
	queueDepth := flag.Int("queue-depth", 64, "max queries waiting for admission (overflow gets 503)")
	maxTotal := flag.Int("max-concurrent", 0, "pump total external-call limit (0 = default)")
	maxDest := flag.Int("max-per-dest", 0, "pump per-destination limit (0 = default)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query deadline")
	allowWrites := flag.Bool("allow-writes", false, "permit CREATE/DROP/INSERT through /query")
	avURL := flag.String("av-url", "", "URL of a websearchd altavista endpoint (default: in-process)")
	gURL := flag.String("google-url", "", "URL of a websearchd google endpoint (default: in-process)")
	retries := flag.Int("retries", 4, "max attempts per external call (1 = no retry)")
	retryBackoff := flag.Duration("retry-backoff", 5*time.Millisecond, "base retry backoff (doubles per attempt)")
	callTimeout := flag.Duration("call-timeout", 2*time.Second, "per-attempt deadline for external calls (0 = none)")
	hedgeAfter := flag.Duration("hedge-after", 0, "launch a duplicate request after this delay (0 = off)")
	degradeFlag := flag.String("degrade", "fail", "default degradation policy when calls exhaust retries: fail|drop|partial")
	flaky := flag.Float64("flaky", 0, "inject transient faults into in-process engines with this probability")
	seed := flag.Int64("seed", 1, "seed for latency jitter and fault injection")
	requestLog := flag.String("request-log", "", "write one JSON line per /query to this file ('-' = stderr)")
	shardConfig := flag.String("shard-config", "", "tier membership JSON; enables worker or coordinator mode")
	shardID := flag.String("shard-id", "", "this worker's id in the tier config (worker mode)")
	coordinator := flag.Bool("coordinator", false, "run as the tier coordinator instead of a worker")
	traceSample := flag.Int("trace-sample", 0, "head-sample 1 in N queries for tracing (0 = only explicit ?trace=1)")
	traceSlow := flag.Duration("trace-slow", 0, "always capture a trace for queries slower than this (0 = off)")
	profileSnapshot := flag.String("profile-snapshot", "", "persist engine latency profiles to this file (loaded on start)")
	profileInterval := flag.Duration("profile-interval", time.Minute, "profile snapshot interval")
	flag.Parse()

	if *coordinator {
		if *shardConfig == "" {
			fatal(fmt.Errorf("-coordinator requires -shard-config"))
		}
		runCoordinator(*addr, *shardConfig, *traceSample)
		return
	}
	if *shardConfig != "" && *shardID == "" {
		fatal(fmt.Errorf("-shard-config requires -shard-id (or -coordinator)"))
	}

	degrade, err := exec.ParseDegrade(*degradeFlag)
	if err != nil {
		fatal(err)
	}

	if *dir == "" {
		tmp, err := os.MkdirTemp("", "wsqd-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}

	db, err := core.Open(core.Config{
		Dir:                *dir,
		Async:              true,
		MaxConcurrentCalls: *maxTotal,
		MaxCallsPerDest:    *maxDest,
		CacheSize:          *cacheSize,
		Retry: async.RetryPolicy{
			MaxAttempts: *retries,
			BaseBackoff: *retryBackoff,
			JitterFrac:  0.5,
			CallTimeout: *callTimeout,
			HedgeAfter:  *hedgeAfter,
		},
		Degrade: degrade,
	})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	if *avURL != "" || *gURL != "" {
		if *avURL == "" || *gURL == "" {
			fatal(fmt.Errorf("pass both -av-url and -google-url or neither"))
		}
		db.RegisterEngine(search.Bind(context.Background(), search.NewClient("altavista", *avURL)), "AV")
		db.RegisterEngine(search.Bind(context.Background(), search.NewClient("google", *gURL)), "G")
	} else {
		corpus := websim.Default()
		model := search.LatencyModel{Base: *latency, Jitter: *latency / 2, CountFactor: 0.8}
		avRng := search.NewRand(1000 + *seed)
		gRng := search.NewRand(2000 + *seed)
		av := search.Engine(search.NewDelayedRand(websim.NewAltaVista(corpus), model, avRng))
		g := search.Engine(search.NewDelayedRand(websim.NewGoogle(corpus), model, gRng))
		if *flaky > 0 {
			av = search.NewFlaky(av, search.TransientOnly(*flaky), avRng)
			g = search.NewFlaky(g, search.TransientOnly(*flaky), gRng)
			log.Printf("fault injection: %.0f%% transient faults per engine call", 100**flaky)
		}
		db.RegisterEngine(av, "AV")
		db.RegisterEngine(g, "G")
	}
	if err := harness.LoadPaperTables(context.Background(), db); err != nil {
		fatal(err)
	}

	var logW io.Writer
	switch *requestLog {
	case "":
	case "-":
		logW = os.Stderr
	default:
		f, err := os.OpenFile(*requestLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		logW = f
	}

	// Engine latency profiles: durable across restarts when
	// -profile-snapshot names a file. A corrupt or truncated snapshot
	// (crash mid-write before the atomic rename, disk trouble) loads as
	// empty — profile history is advisory, never worth failing startup.
	node := "wsqd"
	if *shardID != "" {
		node = *shardID
	}
	profiles := profile.NewStore(node)
	if *profileSnapshot != "" {
		if err := profiles.Load(*profileSnapshot); err != nil {
			log.Printf("profile snapshot %s unusable, starting empty: %v", *profileSnapshot, err)
		}
	}
	snapCtx, snapCancel := context.WithCancel(context.Background())
	defer snapCancel()
	var snapWG *sync.WaitGroup
	if *profileSnapshot != "" {
		snapWG = profiles.StartSnapshots(snapCtx, *profileSnapshot, *profileInterval, func(err error) {
			log.Printf("profile snapshot: %v", err)
		})
	}

	srv := server.New(db, server.Options{
		MaxConcurrentQueries: *maxQueries,
		MaxQueueDepth:        *queueDepth,
		DefaultTimeout:       *timeout,
		AllowWrites:          *allowWrites,
		DefaultDegrade:       degrade,
		RequestLog:           logW,
		Node:                 node,
		TraceSampleEvery:     *traceSample,
		SlowTraceThreshold:   *traceSlow,
		Profiles:             profiles,
	})

	var handler http.Handler = srv
	if *shardConfig != "" {
		cfg, err := shard.LoadConfig(*shardConfig)
		if err != nil {
			fatal(err)
		}
		if _, ok := cfg.Member(*shardID); !ok {
			fatal(fmt.Errorf("shard id %q not in %s", *shardID, *shardConfig))
		}
		peers := shard.NewPeers(*shardID, cfg, shard.PeerOptions{})
		defer peers.Close()
		db.Pump().SetCachePeer(peers)
		worker := shard.NewWorker(shard.WorkerOptions{
			ID:    *shardID,
			Inner: srv,
			Cache: db.Cache(),
			Pump:  db.Pump(),
			Peers: peers,
		})
		peers.Observe(db.Metrics())
		worker.Observe(db.Metrics())
		handler = worker
		reloadOnSIGHUP(func() {
			cfg, err := shard.LoadConfig(*shardConfig)
			if err != nil {
				log.Printf("SIGHUP reload failed: %v", err)
				return
			}
			peers.Update(cfg.Workers)
			log.Printf("SIGHUP: reloaded %s (%d workers)", *shardConfig, len(cfg.Workers))
		})
		log.Printf("tier worker %q: peer cache protocol on /shard/*, membership from %s", *shardID, *shardConfig)
	}

	log.Printf("wsqd listening on http://%s (max-queries=%d queue-depth=%d cache=%d writes=%v)",
		*addr, *maxQueries, *queueDepth, *cacheSize, *allowWrites)
	log.Printf("observability: /metrics (Prometheus), /profiles (engine latency), /debug/traces, /debug/pprof/, /query?...&trace=1 (span tree)")
	log.Printf("try: curl 'http://%s/query?q=SELECT+Name,+Count+FROM+States,+WebCount+WHERE+Name+%%3D+T1+LIMIT+3'", *addr)

	// Serve until SIGINT/SIGTERM, then shut down gracefully: in-flight
	// queries finish, the snapshot goroutine writes one final profile
	// snapshot, and only then does the process exit.
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		log.Printf("%v: shutting down", sig)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		cancel()
	}
	snapCancel()
	if snapWG != nil {
		snapWG.Wait()
		log.Printf("final profile snapshot written to %s", *profileSnapshot)
	}
}

// runCoordinator serves the tier front door: consistent-hash routing of
// /query across the configured workers, drain/reload admin endpoints,
// stitched tier-wide traces (/debug/traces), the merged worker profile
// view (/profiles), and its own metrics registry.
func runCoordinator(addr, configPath string, traceSample int) {
	cfg, err := shard.LoadConfig(configPath)
	if err != nil {
		fatal(err)
	}
	coord := shard.NewCoordinator(cfg, shard.CoordinatorOptions{
		ConfigPath:       configPath,
		TraceSampleEvery: traceSample,
	})
	defer coord.Close()
	reg := obs.NewRegistry()
	coord.Observe(reg)

	ctx := context.Background()
	if err := coord.Sync(ctx); err != nil {
		// Workers may come up after the coordinator; routing still works,
		// and the next reload re-pushes membership and budgets.
		log.Printf("initial tier sync incomplete (workers not all up?): %v", err)
	}
	reloadOnSIGHUP(func() {
		if err := coord.Reload(ctx); err != nil {
			log.Printf("SIGHUP reload failed: %v", err)
			return
		}
		log.Printf("SIGHUP: reloaded %s (%d live workers)", configPath, len(coord.Live()))
	})

	mux := http.NewServeMux()
	mux.Handle("/", coord.Handler())
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(rw); err != nil {
			log.Printf("metrics write: %v", err)
		}
	})
	log.Printf("wsqd coordinator listening on http://%s (%d workers from %s)", addr, len(cfg.Workers), configPath)
	log.Printf("admin: POST /admin/drain?id=W to drain a worker, POST /admin/reload (or SIGHUP) to re-read the config")
	if err := http.ListenAndServe(addr, mux); err != nil {
		fatal(err)
	}
}

// reloadOnSIGHUP invokes fn on every SIGHUP for the life of the process.
func reloadOnSIGHUP(fn func()) {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGHUP)
	go func() {
		for range sigc {
			fn()
		}
	}()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wsqd: %v\n", err)
	os.Exit(1)
}
