// Command wsqfuzz is the ground-truth plan-equivalence fuzzer for the WSQ
// engine. It generates random multi-join WSQ queries over a deterministic
// websim-backed schema, computes each query's exact result offline, and
// executes it under every plan regime — synchronous nested-loop, async
// percolated/consolidated nested-loop, and hash/batch plans at batch
// sizes 1 and 256 — asserting that every regime reproduces the ground
// truth and that external-call and ReqSync-settlement counts match the
// plan model's predictions.
//
// On divergence the failing query is minimized by the shrinker and
// written as a JSON repro (see internal/fuzzqe/testdata/ for the format),
// and the process exits nonzero.
//
// Usage:
//
//	wsqfuzz [-seed 1] [-n 1000] [-duration 0] [-steer 4] [-repro-dir dir] [-v]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fuzzqe"
)

func main() {
	seed := flag.Int64("seed", 1, "generator seed (fully determines the query stream)")
	n := flag.Int("n", 1000, "number of queries to run (0 with -duration for time-bounded runs)")
	duration := flag.Duration("duration", 0, "stop after this wall time (0 = run -n queries)")
	steer := flag.Int("steer", 4, "coverage-steering candidates per query (1 = unsteered)")
	reproDir := flag.String("repro-dir", "", "directory for shrunk divergence repros (default: alongside the binary's cwd)")
	verbose := flag.Bool("v", false, "log every query")
	flag.Parse()

	env, err := fuzzqe.NewTempEnv(7)
	if err != nil {
		fatal(err)
	}
	defer env.Close()

	gen := fuzzqe.NewGen(env, *seed)
	cov := fuzzqe.NewCoverage()
	runner := &fuzzqe.Runner{Env: env}
	ctx := context.Background()

	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	start := time.Now()
	ran := 0
	for i := 0; ; i++ {
		if *duration > 0 {
			if time.Now().After(deadline) {
				break
			}
		} else if i >= *n {
			break
		}
		var spec *fuzzqe.QuerySpec
		var sig string
		if *steer > 1 {
			spec, sig = gen.NextSteered(cov, *steer)
		} else {
			spec = gen.Next()
			sig, _ = env.Signature(spec)
		}
		if sig != "" {
			cov.Record(sig)
		}
		if *verbose {
			fmt.Printf("query %d: %s\n", i, spec.SQL())
		}
		d, err := runner.RunOne(ctx, spec)
		if err != nil {
			fatal(fmt.Errorf("harness error on query %d: %w", i, err))
		}
		ran++
		if d != nil {
			report(runner, ctx, d, *reproDir)
			os.Exit(1)
		}
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	fmt.Printf("wsqfuzz: %d queries, 0 divergences, %d plan shapes, seed %d, %v\n",
		ran, cov.Buckets(), *seed, elapsed)
	if *verbose {
		fmt.Println("most-visited shapes:")
		for _, b := range cov.Top(5) {
			fmt.Printf("  %6d  %s\n", b.Count, b.Sig)
		}
	}
}

// report shrinks the diverging query, writes the minimized repro as JSON,
// and prints both the original and minimized forms.
func report(r *fuzzqe.Runner, ctx context.Context, d *fuzzqe.Divergence, dir string) {
	fmt.Fprintf(os.Stderr, "DIVERGENCE: %s\n", d.Error())
	min := fuzzqe.Shrink(d.Spec, func(cand *fuzzqe.QuerySpec) bool {
		cd, err := r.RunOne(ctx, cand)
		return err == nil && cd != nil && cd.Kind == d.Kind && cd.Variant == d.Variant
	})
	min.Note = fmt.Sprintf("shrunk from wsqfuzz divergence: %s in %s", d.Kind, d.Variant)
	fmt.Fprintf(os.Stderr, "minimized: %s\n", min.SQL())
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "wsqfuzz: cannot create repro dir: %v\n", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("repro-%s-%s.json", d.Kind, d.Variant))
	blob, err := json.MarshalIndent(min, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsqfuzz: cannot marshal repro: %v\n", err)
		return
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "wsqfuzz: cannot write repro: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "repro written to %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wsqfuzz:", err)
	os.Exit(1)
}
