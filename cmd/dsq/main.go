// Command dsq demonstrates Database-Supported Web Queries: it explains a
// Web keyword phrase using the terms of the local database, ranking states
// and movies by Web co-occurrence and reporting cross-table pairs — the
// Section 1 scenario ("DSQ could identify the states and the movies that
// appear on the Web most often near the phrase 'scuba diving'").
//
// Usage:
//
//	dsq [-phrase "scuba diving"] [-latency 100ms] [-topk 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dsq"
	"repro/internal/harness"
	"repro/internal/search"
)

func main() {
	phrase := flag.String("phrase", "scuba diving", "phrase to explain")
	latency := flag.Duration("latency", 100*time.Millisecond, "simulated search latency")
	topk := flag.Int("topk", 4, "top single terms seeding the pair search")
	flag.Parse()

	dir, err := os.MkdirTemp("", "dsq-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	env, err := harness.NewEnv(harness.Options{
		Dir:     dir,
		Latency: search.LatencyModel{Base: *latency, Jitter: *latency / 2, CountFactor: 0.8},
	})
	if err != nil {
		fatal(err)
	}
	defer env.Close()

	ex := dsq.New(env.DB)
	ex.TopK = *topk
	start := time.Now()
	rep, err := ex.Explain(context.Background(), *phrase,
		dsq.TermSource{Table: "States", Column: "Name"},
		dsq.TermSource{Table: "Movies", Column: "Title"},
	)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Format())
	st := env.DB.Pump().Stats()
	fmt.Printf("\n%d WebCount calls (%d cached, %d coalesced), peak concurrency %d, elapsed %v\n",
		st.Registered, st.CacheHits, st.Coalesced, st.MaxActive, time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dsq: %v\n", err)
	os.Exit(1)
}
