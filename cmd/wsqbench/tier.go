package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/profile"
	"repro/internal/search"
	"repro/internal/server"
	"repro/internal/shard"
)

// benchTier is the -tier mode summary: the multi-node smoke's evidence
// that the tier-wide cache and graceful drain actually work.
type benchTier struct {
	Workers        int     `json:"workers"`
	Queries        int64   `json:"queries"`
	Errors         int64   `json:"errors"`
	Rejected       int64   `json:"rejected"`
	QPS            float64 `json:"qps"`
	CrossNodeHits  int64   `json:"cross_node_hits"`
	PeerHits       int64   `json:"peer_hits"`
	FillsReceived  int64   `json:"fills_received"`
	DrainHandedOff int     `json:"drain_handed_off"`
	DrainOK        bool    `json:"drain_ok"`
	// Distributed-tracing evidence: one ?trace=1 query through the
	// coordinator must come back as a single stitched span tree.
	TraceID    string `json:"trace_id,omitempty"`
	TraceSpans int    `json:"trace_spans,omitempty"`
	TraceNodes int    `json:"trace_nodes,omitempty"`
	// Tier-merged /profiles evidence.
	ProfileDests   int     `json:"profile_dests,omitempty"`
	ProfileQueries int64   `json:"profile_queries,omitempty"`
	ProfileP95MS   float64 `json:"profile_call_p95_ms,omitempty"`
}

// tierNode is one in-process worker: its own database, engines, cache,
// pump, peer client, and listener.
type tierNode struct {
	id     string
	env    *harness.Env
	peers  *shard.Peers
	worker *shard.Worker
	srv    *http.Server
	url    string
}

// tierBench spins up `workers` wsqd workers plus a coordinator on
// loopback, drives template-1 load through the coordinator (each query
// in two route variants, so identical web expressions provably land on
// different workers), drains one worker mid-run, and fails the process
// if the tier dropped a query or never produced a cross-node cache hit.
func tierBench(model search.LatencyModel, workers, clients int, duration time.Duration, cacheSize, maxTotal, maxDest int) {
	if workers < 2 {
		fatal(fmt.Errorf("-tier needs at least 2 workers"))
	}
	ctx := context.Background()

	var nodes []*tierNode
	var members []shard.Member
	for i := 0; i < workers; i++ {
		id := fmt.Sprintf("w%d", i+1)
		env := newEnv(model, false, maxTotal, maxDest, cacheSize)
		peers := shard.NewPeers(id, shard.Config{}, shard.PeerOptions{})
		env.DB.Pump().SetCachePeer(peers)
		inner := server.New(env.DB, server.Options{
			MaxConcurrentQueries: 4 * clients,
			Node:                 id,
			Profiles:             profile.NewStore(id),
		})
		w := shard.NewWorker(shard.WorkerOptions{
			ID: id, Inner: inner, Cache: env.DB.Cache(), Pump: env.DB.Pump(), Peers: peers,
		})
		peers.Observe(env.DB.Metrics())
		w.Observe(env.DB.Metrics())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		hs := &http.Server{Handler: w}
		go hs.Serve(ln)
		url := "http://" + ln.Addr().String()
		nodes = append(nodes, &tierNode{id: id, env: env, peers: peers, worker: w, srv: hs, url: url})
		members = append(members, shard.Member{ID: id, URL: url})
	}
	defer func() {
		for _, nd := range nodes {
			nd.srv.Close()
			nd.peers.Close()
			nd.env.Close()
		}
	}()

	cfg := shard.Config{Workers: members, Budgets: map[string]int{"altavista": 16, "google": 16}}
	coord := shard.NewCoordinator(cfg, shard.CoordinatorOptions{})
	defer coord.Close()
	if err := coord.Sync(ctx); err != nil {
		fatal(err)
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	chs := &http.Server{Handler: coord.Handler()}
	go chs.Serve(cln)
	defer chs.Close()
	coordURL := "http://" + cln.Addr().String()

	fmt.Printf("tier: %d workers + coordinator on %s (latency %v+%v, cache %d)\n",
		workers, coordURL, model.Base, model.Jitter, cacheSize)

	queries := tierQueryPool(members, cfg.VNodes)
	fmt.Printf("workload: %d template-1 route variants (identical web expressions on different workers), %d clients, %v\n",
		len(queries), clients, duration)

	// Drive through the coordinator; drain w1 a third of the way in.
	cl := server.NewClient(coordURL)
	drainAfter := duration / 3
	drainDone := make(chan error, 1)
	go func() {
		t := time.NewTimer(drainAfter)
		defer t.Stop()
		<-t.C
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, coordURL+"/admin/drain?id=w1", nil)
		if err != nil {
			drainDone <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			drainDone <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			drainDone <- fmt.Errorf("drain returned status %d", resp.StatusCode)
			return
		}
		var out struct {
			HandedOff int `json:"handed_off"`
		}
		drainDone <- json.NewDecoder(resp.Body).Decode(&out)
	}()

	res := drive(cl, clients, duration, queries)
	drainErr := <-drainDone

	// One explicitly traced query after the load: the stitched tree is
	// the proof that trace propagation crosses the coordinator/worker
	// boundary (and survives the drained ring).
	traceID, troot, traceErr := tracedTierQuery(ctx, coordURL, queries[0])

	// The coordinator's /profiles must serve the merged worker view.
	prof, profErr := scrapeProfiles(ctx, coordURL+"/profiles")

	// Tally tier-wide evidence.
	var tr benchTier
	tr.Workers = workers
	tr.Queries = res.ok + res.rejected + res.errors
	tr.Errors = res.errors
	tr.Rejected = res.rejected
	tr.QPS = res.qps
	tr.DrainOK = drainErr == nil
	for _, nd := range nodes {
		st := nd.worker.Stats()
		tr.CrossNodeHits += st.RemoteHits
		tr.FillsReceived += st.FillsRecv
		tr.DrainHandedOff += int(st.HandedOff)
		tr.PeerHits += nd.env.DB.Pump().Stats().PeerHits
	}

	if troot != nil {
		tr.TraceID = traceID
		tr.TraceSpans = troot.CountSpans()
		nodes := map[string]bool{}
		troot.Walk(func(s *obs.SpanJSON) {
			if s.Node != "" {
				nodes[s.Node] = true
			}
		})
		tr.TraceNodes = len(nodes)
	}
	if profErr == nil {
		tr.ProfileDests = len(prof.Destinations)
		tr.ProfileQueries = prof.Query.Queries
		for _, d := range prof.Destinations {
			if ms := d.P95 * 1000; ms > tr.ProfileP95MS {
				tr.ProfileP95MS = ms
			}
		}
	}

	fmt.Printf("\ntier results: %d ok, %d rejected, %d errors, %.1f q/s\n", res.ok, res.rejected, res.errors, res.qps)
	fmt.Printf("tier cache: cross-node hits=%d, pump peer hits=%d, fills received=%d\n",
		tr.CrossNodeHits, tr.PeerHits, tr.FillsReceived)
	fmt.Printf("drain: ok=%v, hot keys handed off=%d\n", tr.DrainOK, tr.DrainHandedOff)
	fmt.Printf("trace: id=%s spans=%d nodes=%d\n", tr.TraceID, tr.TraceSpans, tr.TraceNodes)
	fmt.Printf("profiles: dests=%d queries=%d worst call p95=%.1fms\n", tr.ProfileDests, tr.ProfileQueries, tr.ProfileP95MS)

	// Persist the stitched tree next to the -json-out report so CI can
	// upload it as a build artifact.
	if jsonPath != "" && troot != nil {
		artifact := filepath.Join(filepath.Dir(jsonPath), "BENCH_trace.json")
		doc, err := json.MarshalIndent(map[string]any{
			"trace_id": traceID,
			"spans":    tr.TraceSpans,
			"nodes":    tr.TraceNodes,
			"trace":    troot,
		}, "", "  ")
		if err == nil {
			err = os.WriteFile(artifact, doc, 0o644)
		}
		if err != nil {
			fmt.Printf("trace artifact: %v\n", err)
		} else {
			fmt.Printf("stitched trace written to %s\n", artifact)
		}
	}

	// /metrics must corroborate the counters (the operator's view).
	metricsOK := false
	for _, nd := range nodes {
		if scrapeCounter(nd.url+"/metrics", "wsq_shard_remote_get_hits_total") > 0 {
			metricsOK = true
		}
	}

	writeReport(benchReport{
		Mode:          "tier",
		LatencyBaseMS: float64(model.Base.Microseconds()) / 1000.0,
		Tier:          &tr,
	})

	failed := false
	if res.errors > 0 {
		fmt.Printf("FAIL: %d queries errored (the tier must never surface a 500)\n", res.errors)
		failed = true
	}
	if tr.CrossNodeHits == 0 {
		fmt.Println("FAIL: zero cross-node cache hits — the tier cache is not being shared")
		failed = true
	}
	if !metricsOK {
		fmt.Println("FAIL: wsq_shard_remote_get_hits_total not positive on any worker's /metrics")
		failed = true
	}
	if drainErr != nil {
		fmt.Printf("FAIL: drain: %v\n", drainErr)
		failed = true
	}
	if res.ok == 0 {
		fmt.Println("FAIL: no queries succeeded")
		failed = true
	}
	if traceErr != nil {
		fmt.Printf("FAIL: traced tier query: %v\n", traceErr)
		failed = true
	}
	if profErr != nil {
		fmt.Printf("FAIL: coordinator /profiles: %v\n", profErr)
		failed = true
	} else {
		if tr.ProfileDests == 0 {
			fmt.Println("FAIL: coordinator /profiles reports zero destinations (worker merge broken)")
			failed = true
		}
		if tr.ProfileQueries == 0 {
			fmt.Println("FAIL: coordinator /profiles reports zero queries")
			failed = true
		}
		if tr.ProfileP95MS <= 0 {
			fmt.Println("FAIL: coordinator /profiles reports no positive call p95")
			failed = true
		}
	}
	if failed {
		fatal(fmt.Errorf("tier smoke failed"))
	}
	fmt.Println("tier smoke passed: cross-node hits > 0, zero query errors, drain clean, stitched trace + merged profiles served")
}

// tracedTierQuery issues one ?trace=1 query through the coordinator and
// verifies the response carries a single stitched span tree: consistent
// trace id, the coordinator's routing spans, and the worker's execution
// subtree grafted beneath the winning attempt.
func tracedTierQuery(ctx context.Context, coordURL, sql string) (string, *obs.SpanJSON, error) {
	body, err := json.Marshal(map[string]any{"sql": sql, "trace": true})
	if err != nil {
		return "", nil, err
	}
	rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, coordURL+"/query", strings.NewReader(string(body)))
	if err != nil {
		return "", nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var out struct {
		TraceID string        `json:"trace_id"`
		Trace   *obs.SpanJSON `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", nil, err
	}
	switch {
	case out.TraceID == "" || len(out.TraceID) != 32:
		return out.TraceID, out.Trace, fmt.Errorf("missing or malformed trace_id %q", out.TraceID)
	case out.Trace == nil:
		return out.TraceID, nil, fmt.Errorf("no stitched trace in response")
	case out.Trace.Op != "coord.query":
		return out.TraceID, out.Trace, fmt.Errorf("root op %q, want coord.query", out.Trace.Op)
	case out.Trace.Find("coord.attempt") == nil:
		return out.TraceID, out.Trace, fmt.Errorf("no coord.attempt span in stitched tree")
	case out.Trace.Find("wsqd.query") == nil:
		return out.TraceID, out.Trace, fmt.Errorf("no worker wsqd.query span in stitched tree (graft failed)")
	case out.Trace.Find("pump.call") == nil:
		return out.TraceID, out.Trace, fmt.Errorf("no pump.call span in stitched tree")
	}
	if wq := out.Trace.Find("wsqd.query"); wq.Node == "" {
		return out.TraceID, out.Trace, fmt.Errorf("worker subtree not tagged with its node id")
	}
	return out.TraceID, out.Trace, nil
}

// tierProfiles mirrors the /profiles JSON document.
type tierProfiles struct {
	Node         string               `json:"node"`
	Destinations []profile.Profile    `json:"destinations"`
	Query        profile.QueryProfile `json:"query"`
}

// scrapeProfiles fetches and decodes a /profiles endpoint.
func scrapeProfiles(ctx context.Context, url string) (*tierProfiles, error) {
	rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var out tierProfiles
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// tierQueryPool builds the multi-node workload: for every template-1
// constant, the plain query plus a decoy-literal variant whose RouteKey
// lands on a different worker. Both issue identical WebCount calls, so
// running them exercises the cache peering path by construction.
func tierQueryPool(members []shard.Member, vnodes int) []string {
	ring := shard.NewRing(members, vnodes)
	base := template1Pool()
	var out []string
	for _, q := range base {
		out = append(out, q)
		home, ok := ring.Owner(shard.RouteKey(q))
		if !ok {
			continue
		}
		for i := 0; i < 200; i++ {
			alt := strings.Replace(q, " WHERE ", fmt.Sprintf(" WHERE Name <> 'no-such-state-%d' AND ", i), 1)
			if m, _ := ring.Owner(shard.RouteKey(alt)); m.ID != home.ID {
				out = append(out, alt)
				break
			}
		}
	}
	return out
}

// scrapeCounter fetches a Prometheus text exposition and returns the
// value of the first sample whose name matches exactly (-1 if absent or
// unreachable).
func scrapeCounter(url, name string) float64 {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return -1
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return -1
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err == nil {
				return v
			}
			return -1
		}
	}
	return -1
}
