package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/search"
	"repro/internal/server"
	"repro/internal/shard"
)

// benchTier is the -tier mode summary: the multi-node smoke's evidence
// that the tier-wide cache and graceful drain actually work.
type benchTier struct {
	Workers        int     `json:"workers"`
	Queries        int64   `json:"queries"`
	Errors         int64   `json:"errors"`
	Rejected       int64   `json:"rejected"`
	QPS            float64 `json:"qps"`
	CrossNodeHits  int64   `json:"cross_node_hits"`
	PeerHits       int64   `json:"peer_hits"`
	FillsReceived  int64   `json:"fills_received"`
	DrainHandedOff int     `json:"drain_handed_off"`
	DrainOK        bool    `json:"drain_ok"`
}

// tierNode is one in-process worker: its own database, engines, cache,
// pump, peer client, and listener.
type tierNode struct {
	id     string
	env    *harness.Env
	peers  *shard.Peers
	worker *shard.Worker
	srv    *http.Server
	url    string
}

// tierBench spins up `workers` wsqd workers plus a coordinator on
// loopback, drives template-1 load through the coordinator (each query
// in two route variants, so identical web expressions provably land on
// different workers), drains one worker mid-run, and fails the process
// if the tier dropped a query or never produced a cross-node cache hit.
func tierBench(model search.LatencyModel, workers, clients int, duration time.Duration, cacheSize, maxTotal, maxDest int) {
	if workers < 2 {
		fatal(fmt.Errorf("-tier needs at least 2 workers"))
	}
	ctx := context.Background()

	var nodes []*tierNode
	var members []shard.Member
	for i := 0; i < workers; i++ {
		id := fmt.Sprintf("w%d", i+1)
		env := newEnv(model, false, maxTotal, maxDest, cacheSize)
		peers := shard.NewPeers(id, shard.Config{}, shard.PeerOptions{})
		env.DB.Pump().SetCachePeer(peers)
		inner := server.New(env.DB, server.Options{MaxConcurrentQueries: 4 * clients})
		w := shard.NewWorker(shard.WorkerOptions{
			ID: id, Inner: inner, Cache: env.DB.Cache(), Pump: env.DB.Pump(), Peers: peers,
		})
		peers.Observe(env.DB.Metrics())
		w.Observe(env.DB.Metrics())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		hs := &http.Server{Handler: w}
		go hs.Serve(ln)
		url := "http://" + ln.Addr().String()
		nodes = append(nodes, &tierNode{id: id, env: env, peers: peers, worker: w, srv: hs, url: url})
		members = append(members, shard.Member{ID: id, URL: url})
	}
	defer func() {
		for _, nd := range nodes {
			nd.srv.Close()
			nd.peers.Close()
			nd.env.Close()
		}
	}()

	cfg := shard.Config{Workers: members, Budgets: map[string]int{"altavista": 16, "google": 16}}
	coord := shard.NewCoordinator(cfg, shard.CoordinatorOptions{})
	defer coord.Close()
	if err := coord.Sync(ctx); err != nil {
		fatal(err)
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	chs := &http.Server{Handler: coord.Handler()}
	go chs.Serve(cln)
	defer chs.Close()
	coordURL := "http://" + cln.Addr().String()

	fmt.Printf("tier: %d workers + coordinator on %s (latency %v+%v, cache %d)\n",
		workers, coordURL, model.Base, model.Jitter, cacheSize)

	queries := tierQueryPool(members, cfg.VNodes)
	fmt.Printf("workload: %d template-1 route variants (identical web expressions on different workers), %d clients, %v\n",
		len(queries), clients, duration)

	// Drive through the coordinator; drain w1 a third of the way in.
	cl := server.NewClient(coordURL)
	drainAfter := duration / 3
	drainDone := make(chan error, 1)
	go func() {
		t := time.NewTimer(drainAfter)
		defer t.Stop()
		<-t.C
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, coordURL+"/admin/drain?id=w1", nil)
		if err != nil {
			drainDone <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			drainDone <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			drainDone <- fmt.Errorf("drain returned status %d", resp.StatusCode)
			return
		}
		var out struct {
			HandedOff int `json:"handed_off"`
		}
		drainDone <- json.NewDecoder(resp.Body).Decode(&out)
	}()

	res := drive(cl, clients, duration, queries)
	drainErr := <-drainDone

	// Tally tier-wide evidence.
	var tr benchTier
	tr.Workers = workers
	tr.Queries = res.ok + res.rejected + res.errors
	tr.Errors = res.errors
	tr.Rejected = res.rejected
	tr.QPS = res.qps
	tr.DrainOK = drainErr == nil
	for _, nd := range nodes {
		st := nd.worker.Stats()
		tr.CrossNodeHits += st.RemoteHits
		tr.FillsReceived += st.FillsRecv
		tr.DrainHandedOff += int(st.HandedOff)
		tr.PeerHits += nd.env.DB.Pump().Stats().PeerHits
	}

	fmt.Printf("\ntier results: %d ok, %d rejected, %d errors, %.1f q/s\n", res.ok, res.rejected, res.errors, res.qps)
	fmt.Printf("tier cache: cross-node hits=%d, pump peer hits=%d, fills received=%d\n",
		tr.CrossNodeHits, tr.PeerHits, tr.FillsReceived)
	fmt.Printf("drain: ok=%v, hot keys handed off=%d\n", tr.DrainOK, tr.DrainHandedOff)

	// /metrics must corroborate the counters (the operator's view).
	metricsOK := false
	for _, nd := range nodes {
		if scrapeCounter(nd.url+"/metrics", "wsq_shard_remote_get_hits_total") > 0 {
			metricsOK = true
		}
	}

	writeReport(benchReport{
		Mode:          "tier",
		LatencyBaseMS: float64(model.Base.Microseconds()) / 1000.0,
		Tier:          &tr,
	})

	failed := false
	if res.errors > 0 {
		fmt.Printf("FAIL: %d queries errored (the tier must never surface a 500)\n", res.errors)
		failed = true
	}
	if tr.CrossNodeHits == 0 {
		fmt.Println("FAIL: zero cross-node cache hits — the tier cache is not being shared")
		failed = true
	}
	if !metricsOK {
		fmt.Println("FAIL: wsq_shard_remote_get_hits_total not positive on any worker's /metrics")
		failed = true
	}
	if drainErr != nil {
		fmt.Printf("FAIL: drain: %v\n", drainErr)
		failed = true
	}
	if res.ok == 0 {
		fmt.Println("FAIL: no queries succeeded")
		failed = true
	}
	if failed {
		fatal(fmt.Errorf("tier smoke failed"))
	}
	fmt.Println("tier smoke passed: cross-node hits > 0, zero query errors, drain clean")
}

// tierQueryPool builds the multi-node workload: for every template-1
// constant, the plain query plus a decoy-literal variant whose RouteKey
// lands on a different worker. Both issue identical WebCount calls, so
// running them exercises the cache peering path by construction.
func tierQueryPool(members []shard.Member, vnodes int) []string {
	ring := shard.NewRing(members, vnodes)
	base := template1Pool()
	var out []string
	for _, q := range base {
		out = append(out, q)
		home, ok := ring.Owner(shard.RouteKey(q))
		if !ok {
			continue
		}
		for i := 0; i < 200; i++ {
			alt := strings.Replace(q, " WHERE ", fmt.Sprintf(" WHERE Name <> 'no-such-state-%d' AND ", i), 1)
			if m, _ := ring.Owner(shard.RouteKey(alt)); m.ID != home.ID {
				out = append(out, alt)
				break
			}
		}
	}
	return out
}

// scrapeCounter fetches a Prometheus text exposition and returns the
// value of the first sample whose name matches exactly (-1 if absent or
// unreachable).
func scrapeCounter(url, name string) float64 {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return -1
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return -1
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err == nil {
				return v
			}
			return -1
		}
	}
	return -1
}
