package main

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
)

// benchExecCell is one batch-size point of the -sweep-exec ablation.
type benchExecCell struct {
	BatchSize  int     `json:"batch_size"`
	Rows       int     `json:"rows"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	RowsPerSec float64 `json:"rows_per_sec"`
	// SpeedupVsB1 is this point's throughput relative to batch size 1
	// (per-tuple dispatch through the adapter).
	SpeedupVsB1 float64 `json:"speedup_vs_batch1"`
}

// sweepExec ablates the executor's batch granularity on a purely local
// pipeline — Filter over a hash equi-join of two generated tables — so the
// measured difference is protocol dispatch overhead, not external-call
// latency. Batch size 1 degenerates to tuple-at-a-time iteration.
func sweepExec(rows int) {
	build := rows / 64
	if build < 1 {
		build = 1
	}
	lk, lp := intColumn("L", "K"), intColumn("L", "P")
	rk, rp := intColumn("R", "K"), intColumn("R", "P")
	lrows := make([]types.Tuple, rows)
	for i := 0; i < rows; i++ {
		lrows[i] = types.Tuple{types.Int(int64(i % build)), types.Int(int64(i % 97))}
	}
	rrows := make([]types.Tuple, build)
	for i := 0; i < build; i++ {
		rrows[i] = types.Tuple{types.Int(int64(i)), types.Int(int64(i % 89))}
	}
	// Probe-heavy join under a filter/project pipeline: the hash build is
	// tiny, so elapsed time is dominated by per-batch operator dispatch —
	// the quantity this sweep charts.
	out := schema.New(intColumn("O", "P"))
	plan := exec.NewProject(
		exec.NewFilter(
			exec.NewHashJoin(
				exec.NewValuesScan(schema.New(lk, lp), lrows),
				exec.NewValuesScan(schema.New(rk, rp), rrows),
				[]expr.Expr{expr.NewColRef(lk)},
				[]expr.Expr{expr.NewColRef(rk)}, nil),
			expr.NewCmp(expr.NE, expr.NewColRef(lp), expr.NewColRef(rp))),
		[]expr.Expr{expr.NewColRef(lp)}, out)

	fmt.Printf("executor batch-size sweep: %d-row probe x %d-row build equi-join + filter + project\n\n", rows, build)
	var cells []benchExecCell
	var baseRate float64
	for _, size := range []int{1, 64, 256} {
		best := time.Duration(1<<63 - 1)
		var out int
		for rep := 0; rep < 3; rep++ {
			ctx := exec.NewContext()
			ctx.BatchSize = size
			start := time.Now()
			res, err := exec.Run(ctx, plan)
			if err != nil {
				fatal(err)
			}
			if el := time.Since(start); el < best {
				best = el
			}
			out = len(res)
		}
		rate := float64(out) / best.Seconds()
		cell := benchExecCell{
			BatchSize: size, Rows: out,
			ElapsedMS:  float64(best.Microseconds()) / 1000.0,
			RowsPerSec: rate,
		}
		if baseRate == 0 {
			baseRate = rate
		}
		cell.SpeedupVsB1 = rate / baseRate
		cells = append(cells, cell)
		fmt.Printf("batch=%4d  %8.1f ms  %12.0f rows/s  %5.2fx\n",
			size, cell.ElapsedMS, rate, cell.SpeedupVsB1)
	}
	writeReport(benchReport{Mode: "sweep-exec", Exec: cells})
}

// intColumn mirrors the test fixtures' column helper.
func intColumn(table, name string) schema.Column {
	return schema.Column{ID: schema.NewAttrID(), Table: table, Name: name, Type: schema.TInt}
}
