// Command wsqbench regenerates the paper's evaluation (Table 1) and the
// ablation experiments: it times the three query templates with and
// without asynchronous iteration and reports mean seconds plus the
// improvement factor.
//
// Usage:
//
//	wsqbench                          # full Table 1, bench latency (~25 ms)
//	wsqbench -paper                   # paper latency (~750 ms) — slow, faithful
//	wsqbench -template 2 -runs 1      # one cell
//	wsqbench -sweep-concurrency       # ablation: improvement vs pump limit
//	wsqbench -sweep-cache             # ablation: result cache on/off
//	wsqbench -http                    # engine calls over localhost HTTP
//	wsqbench -flaky 0.3               # 30% transient faults, masked by retries
//	wsqbench -serve -clients 8        # drive N concurrent clients at a wsqd
//	wsqbench -tier 2                  # multi-node smoke: sharded tier + drain
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/async"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/server"
)

func main() {
	template := flag.Int("template", 0, "run a single template (1-3); 0 = all")
	runs := flag.Int("runs", 2, "runs per template")
	instances := flag.Int("instances", 8, "query instances per run")
	paper := flag.Bool("paper", false, "use paper-scale latency (~750 ms/call)")
	latency := flag.Duration("latency", 0, "override base latency")
	useHTTP := flag.Bool("http", false, "route engine calls over localhost HTTP")
	maxTotal := flag.Int("max-concurrent", 0, "pump total concurrency limit (0 = default)")
	maxDest := flag.Int("max-per-dest", 0, "pump per-destination limit (0 = default)")
	sweepConc := flag.Bool("sweep-concurrency", false, "ablation: sweep the per-destination limit")
	sweepCache := flag.Bool("sweep-cache", false, "ablation: compare cache off/on")
	sweepExecN := flag.Int("sweep-exec", 0, "ablation: sweep the executor batch size over an N-row local join (0 = off)")
	serve := flag.Bool("serve", false, "serving-mode load test: N concurrent clients against one wsqd")
	tier := flag.Int("tier", 0, "multi-node smoke: N in-process workers + a coordinator, cross-node cache + drain assertions")
	clients := flag.Int("clients", 8, "-serve: number of concurrent clients")
	duration := flag.Duration("duration", 5*time.Second, "-serve: load duration per phase")
	serverURL := flag.String("server-url", "", "-serve: target an external wsqd (default: in-process)")
	cacheSize := flag.Int("serve-cache", 4096, "-serve: result cache capacity for the in-process wsqd")
	flaky := flag.Float64("flaky", 0, "inject transient faults with this probability (adds retry masking)")
	jsonOut := flag.String("json-out", "", "write a machine-readable JSON report (BENCH_*.json) to this path")
	flag.Parse()
	faultProb = *flaky
	jsonPath = *jsonOut

	model := search.BenchLatency()
	if *paper {
		model = search.PaperLatency()
	}
	if *latency > 0 {
		model = search.LatencyModel{Base: *latency, Jitter: *latency / 2, CountFactor: 0.8}
	}

	switch {
	case *tier > 0:
		tierBench(model, *tier, *clients, *duration, *cacheSize, *maxTotal, *maxDest)
	case *serve:
		serveBench(model, *clients, *duration, *serverURL, *cacheSize, *maxTotal, *maxDest)
	case *sweepConc:
		sweepConcurrency(model, *instances, *useHTTP)
	case *sweepCache:
		sweepCaching(model, *instances, *useHTTP)
	case *sweepExecN > 0:
		sweepExec(*sweepExecN)
	default:
		table1(model, *template, *runs, *instances, *useHTTP, *maxTotal, *maxDest)
	}
}

// serveBench demonstrates cross-query call sharing: N concurrent clients
// fire Template-1 queries at one wsqd, whose single ReqPump bounds and
// coalesces all their external calls. A 1-client phase establishes the
// baseline; the N-client phase shows aggregate throughput scaling while
// the pump's MaxActive never exceeds its configured limit.
func serveBench(model search.LatencyModel, clients int, duration time.Duration, url string, cacheSize, maxTotal, maxDest int) {
	if url == "" {
		env := newEnv(model, false, maxTotal, maxDest, cacheSize)
		defer env.Close()
		srv := server.New(env.DB, server.Options{MaxConcurrentQueries: 4 * clients})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		defer hs.Close()
		url = "http://" + ln.Addr().String()
		fmt.Printf("in-process wsqd on %s (latency %v+%v, cache %d)\n", url, model.Base, model.Jitter, cacheSize)
	}
	cl := server.NewClient(url)

	queries := template1Pool()
	fmt.Printf("workload: template-1 queries, %d distinct constants, %v per phase\n\n", len(queries), duration)

	base := drive(cl, 1, duration, queries)
	fmt.Printf("%2d client:  %6d ok  %4d rejected  %4d errors  %8.1f q/s\n",
		1, base.ok, base.rejected, base.errors, base.qps)
	load := drive(cl, clients, duration, queries)
	fmt.Printf("%2d clients: %6d ok  %4d rejected  %4d errors  %8.1f q/s  (%.1fx aggregate)\n",
		clients, load.ok, load.rejected, load.errors, load.qps, load.qps/base.qps)

	st, err := cl.Status(context.Background())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nshared pump: registered=%d started=%d coalesced=%d cache-hits=%d max-concurrent=%d\n",
		st.Pump.Registered, st.Pump.Started, st.Pump.Coalesced, st.Pump.CacheHits, st.Pump.MaxActive)
	fmt.Printf("server latency: p50=%.1fms p90=%.1fms p99=%.1fms (n=%d)\n",
		st.Queries.LatencyMS.P50, st.Queries.LatencyMS.P90, st.Queries.LatencyMS.P99, st.Queries.LatencyMS.Count)
	saved := st.Pump.Coalesced + st.Pump.CacheHits
	if st.Pump.Registered > 0 {
		fmt.Printf("cross-query sharing: %d of %d registrations (%.0f%%) never hit the network\n",
			saved, st.Pump.Registered, 100*float64(saved)/float64(st.Pump.Registered))
	}
	writeReport(benchReport{
		Mode:          "serve",
		LatencyBaseMS: float64(model.Base.Microseconds()) / 1000.0,
		Pump: &benchPump{
			Registered: st.Pump.Registered, Started: st.Pump.Started,
			CacheHits: st.Pump.CacheHits, Coalesced: st.Pump.Coalesced,
			Retries: st.Pump.Retries, CallsFailed: st.Pump.CallsFailed,
			MaxActive: st.Pump.MaxActive,
		},
		Serve: &benchServe{
			Clients: clients, BaseQPS: base.qps, LoadQPS: load.qps,
			Speedup: load.qps / base.qps,
			OK:      base.ok + load.ok, Rejected: base.rejected + load.rejected,
			Errors:    base.errors + load.errors,
			ServerP50: st.Queries.LatencyMS.P50,
			ServerP90: st.Queries.LatencyMS.P90,
			ServerP99: st.Queries.LatencyMS.P99,
		},
	})
}

// template1Pool instantiates one Template-1 query per available constant.
func template1Pool() []string {
	qs, err := harness.TemplateQueries(1, 1, 8)
	if err != nil {
		fatal(err)
	}
	more, err := harness.TemplateQueries(1, 2, 8)
	if err == nil {
		qs = append(qs, more...)
	}
	return qs
}

type loadResult struct {
	ok, rejected, errors int64
	qps                  float64
}

// drive runs n clients round-robin over the query pool for d.
func drive(cl *server.Client, n int, d time.Duration, queries []string) loadResult {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	var mu sync.Mutex
	var res loadResult
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := id; ctx.Err() == nil; j++ {
				_, err := cl.Query(ctx, queries[j%len(queries)], d)
				mu.Lock()
				switch {
				case err == nil:
					res.ok++
				case ctx.Err() != nil:
					// phase over; don't count the aborted request
				case errors.Is(err, server.ErrOverloaded):
					res.rejected++
				default:
					res.errors++
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	res.qps = float64(res.ok) / time.Since(start).Seconds()
	return res
}

// faultProb is the -flaky probability; when set, every environment gets a
// seeded transient-fault injector plus a retry policy that masks it.
var faultProb float64

// jsonPath is the -json-out destination; empty disables the report.
var jsonPath string

// ---------------------------------------------------------------------------
// Machine-readable report (-json-out)

// benchQuantiles summarizes one latency distribution, estimated from an
// obs.Histogram (fixed buckets, linear interpolation — the same estimate
// Prometheus' histogram_quantile produces from the /metrics export).
type benchQuantiles struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

func quantiles(h *obs.Histogram) benchQuantiles {
	s := h.Snapshot()
	q := benchQuantiles{Count: s.Count}
	if s.Count > 0 {
		q.MeanMS = 1000 * s.Sum / float64(s.Count)
		q.P50MS = 1000 * s.Quantile(0.50)
		q.P95MS = 1000 * s.Quantile(0.95)
		q.P99MS = 1000 * s.Quantile(0.99)
	}
	return q
}

// benchCell is one (template, run) row of the Table 1 reproduction.
type benchCell struct {
	Template       int     `json:"template"`
	Run            int     `json:"run"`
	Queries        int     `json:"queries"`
	SyncMeanS      float64 `json:"sync_mean_s"`
	AsyncMeanS     float64 `json:"async_mean_s"`
	Improvement    float64 `json:"improvement"`
	MaxConcurrency int     `json:"max_concurrency"`
}

// benchPump is the pump-counter snapshot at the end of the run.
type benchPump struct {
	Registered  int64 `json:"registered"`
	Started     int64 `json:"started"`
	Completed   int64 `json:"completed"`
	CacheHits   int64 `json:"cache_hits"`
	Coalesced   int64 `json:"coalesced"`
	Retries     int64 `json:"retries"`
	CallsFailed int64 `json:"calls_failed"`
	MaxActive   int   `json:"max_active"`
}

// benchServe is the -serve mode summary.
type benchServe struct {
	Clients   int     `json:"clients"`
	BaseQPS   float64 `json:"base_qps"`
	LoadQPS   float64 `json:"load_qps"`
	Speedup   float64 `json:"speedup"`
	OK        int64   `json:"ok"`
	Rejected  int64   `json:"rejected"`
	Errors    int64   `json:"errors"`
	ServerP50 float64 `json:"server_p50_ms"`
	ServerP90 float64 `json:"server_p90_ms"`
	ServerP99 float64 `json:"server_p99_ms"`
}

// benchReport is the -json-out document.
type benchReport struct {
	Mode          string                    `json:"mode"`
	LatencyBaseMS float64                   `json:"latency_base_ms"`
	FaultProb     float64                   `json:"fault_prob,omitempty"`
	Results       []benchCell               `json:"results,omitempty"`
	Latency       map[string]benchQuantiles `json:"latency,omitempty"`
	Pump          *benchPump                `json:"pump,omitempty"`
	Serve         *benchServe               `json:"serve,omitempty"`
	Tier          *benchTier                `json:"tier,omitempty"`
	Exec          []benchExecCell           `json:"exec,omitempty"`
}

// writeReport marshals the report to -json-out (no-op when unset).
func writeReport(rep benchReport) {
	if jsonPath == "" {
		return
	}
	rep.FaultProb = faultProb
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n", jsonPath)
}

func newEnv(model search.LatencyModel, useHTTP bool, maxTotal, maxDest, cacheSize int) *harness.Env {
	dir, err := os.MkdirTemp("", "wsqbench-*")
	if err != nil {
		fatal(err)
	}
	opts := harness.Options{
		Dir: dir, Latency: model, HTTP: useHTTP,
		MaxConcurrentCalls: maxTotal, MaxCallsPerDest: maxDest, CacheSize: cacheSize,
	}
	if faultProb > 0 {
		faults := search.TransientOnly(faultProb)
		opts.Faults = &faults
		// Deep attempt budget: at -flaky 0.3 a benchmark run issues
		// thousands of calls, so the per-call residual failure rate must be
		// tiny for the whole suite to be fault-transparent.
		opts.Retry = async.RetryPolicy{
			MaxAttempts: 12,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
			JitterFrac:  0.5,
		}
	}
	env, err := harness.NewEnv(opts)
	if err != nil {
		fatal(err)
	}
	return env
}

func table1(model search.LatencyModel, template, runs, instances int, useHTTP bool, maxTotal, maxDest int) {
	env := newEnv(model, useHTTP, maxTotal, maxDest, 0)
	defer env.Close()
	fmt.Printf("WSQ Table 1 reproduction — latency %v+%v jitter, %d instances/run, http=%v\n\n",
		model.Base, model.Jitter, instances, useHTTP)
	var results []harness.RunResult
	for tmpl := 1; tmpl <= 3; tmpl++ {
		if template != 0 && tmpl != template {
			continue
		}
		for run := 1; run <= runs; run++ {
			r, err := harness.RunTemplate(context.Background(), env, tmpl, run, instances)
			if err != nil {
				fatal(err)
			}
			results = append(results, r)
			fmt.Printf("template %d run %d: sync %.2fs  async %.2fs  %.1fx (peak concurrency %d)\n",
				r.Template, r.Run, r.SyncMean.Seconds(), r.AsyncMean.Seconds(), r.Improvement, r.MaxConcurrency)
		}
	}
	fmt.Println()
	fmt.Print(harness.FormatTable1(results))
	cells := make([]benchCell, len(results))
	for i, r := range results {
		cells[i] = benchCell{
			Template: r.Template, Run: r.Run, Queries: r.Queries,
			SyncMeanS: r.SyncMean.Seconds(), AsyncMeanS: r.AsyncMean.Seconds(),
			Improvement: r.Improvement, MaxConcurrency: r.MaxConcurrency,
		}
	}
	writeReport(benchReport{
		Mode:          "table1",
		LatencyBaseMS: float64(model.Base.Microseconds()) / 1000.0,
		Results:       cells,
		// No pump snapshot here: ResetBetweenRuns zeroes the counters before
		// the (pump-less) synchronous pass, so the end state is vacuous.
		Latency: map[string]benchQuantiles{
			"sync":  quantiles(env.SyncLatency),
			"async": quantiles(env.AsyncLatency),
		},
	})
	if faultProb > 0 {
		st := env.DB.Pump().Stats()
		av, g := env.FlakyAV.Stats(), env.FlakyGoogle.Stats()
		fmt.Printf("\nfault injection: %.0f%% transient — injected %d faults, pump retries %d (failed calls: %d)\n",
			100*faultProb, av.Injected()+g.Injected(), st.Retries, st.CallsFailed)
	}
	fmt.Println("\nPaper (Table 1): T1 6.0x/9.4x, T2 13.5x/12.5x, T3 19.6x/16.4x — factors grow")
	fmt.Println("with template call count; absolute magnitude tracks the concurrency limit.")
}

// sweepConcurrency shows how the Table 1 improvement factor scales with
// the pump's per-destination limit — the resource-control knob of
// Section 4.1's final paragraph.
func sweepConcurrency(model search.LatencyModel, instances int, useHTTP bool) {
	fmt.Printf("Ablation: improvement vs per-destination concurrency limit (template 1, %d instances)\n\n", instances)
	fmt.Printf("%12s %14s %16s %12s\n", "limit", "sync mean (s)", "async mean (s)", "improvement")
	for _, limit := range []int{1, 2, 4, 8, 16, 32, 64} {
		env := newEnv(model, useHTTP, limit, limit, 0)
		r, err := harness.RunTemplate(context.Background(), env, 1, 1, instances)
		env.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%12d %14.2f %16.2f %11.1fx\n",
			limit, r.SyncMean.Seconds(), r.AsyncMean.Seconds(), r.Improvement)
	}
	fmt.Println("\nlimit=1 degenerates to sequential iteration; the paper's 6-20x factors")
	fmt.Println("correspond to the effective parallelism its 1999 network sustained.")
}

// sweepCaching shows the [HN96] result-cache effect on a workload with
// repeated identical calls (the Figure 7 hazard: a cross-product below a
// dependent join repeats every search |R| times).
func sweepCaching(model search.LatencyModel, instances int, useHTTP bool) {
	fmt.Println("Ablation: result cache on a repeated-call workload (Figure 7 hazard)")
	fmt.Println("query: States x R(3 rows) |x| WebCount — each state's count requested 3 times")
	q := `SELECT S.Name, R.V, Count FROM States S, Tiny R, WebCount
	      WHERE S.Name = T1 ORDER BY Count DESC`
	fmt.Printf("\n%8s %12s %18s %14s\n", "cache", "elapsed (s)", "calls registered", "calls started")
	for _, cacheSize := range []int{0, 4096} {
		env := newEnv(model, useHTTP, 0, 0, cacheSize)
		if _, err := env.DB.ExecContext(context.Background(), `CREATE TABLE Tiny (V INT)`); err != nil {
			fatal(err)
		}
		if _, err := env.DB.ExecContext(context.Background(), `INSERT INTO Tiny VALUES (1), (2), (3)`); err != nil {
			fatal(err)
		}
		env.DB.SetAsync(true)
		start := time.Now()
		if _, err := env.DB.QueryContext(context.Background(), q); err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		st := env.DB.Pump().Stats()
		label := "off"
		if cacheSize > 0 {
			label = "on"
		}
		fmt.Printf("%8s %12.2f %18d %14d   (cache hits: %d, coalesced: %d)\n",
			label, elapsed.Seconds(), st.Registered, st.Started, st.CacheHits, st.Coalesced)
		env.Close()
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wsqbench: %v\n", err)
	os.Exit(1)
}
