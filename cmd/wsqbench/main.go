// Command wsqbench regenerates the paper's evaluation (Table 1) and the
// ablation experiments: it times the three query templates with and
// without asynchronous iteration and reports mean seconds plus the
// improvement factor.
//
// Usage:
//
//	wsqbench                          # full Table 1, bench latency (~25 ms)
//	wsqbench -paper                   # paper latency (~750 ms) — slow, faithful
//	wsqbench -template 2 -runs 1      # one cell
//	wsqbench -sweep-concurrency       # ablation: improvement vs pump limit
//	wsqbench -sweep-cache             # ablation: result cache on/off
//	wsqbench -http                    # engine calls over localhost HTTP
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/search"
)

func main() {
	template := flag.Int("template", 0, "run a single template (1-3); 0 = all")
	runs := flag.Int("runs", 2, "runs per template")
	instances := flag.Int("instances", 8, "query instances per run")
	paper := flag.Bool("paper", false, "use paper-scale latency (~750 ms/call)")
	latency := flag.Duration("latency", 0, "override base latency")
	useHTTP := flag.Bool("http", false, "route engine calls over localhost HTTP")
	maxTotal := flag.Int("max-concurrent", 0, "pump total concurrency limit (0 = default)")
	maxDest := flag.Int("max-per-dest", 0, "pump per-destination limit (0 = default)")
	sweepConc := flag.Bool("sweep-concurrency", false, "ablation: sweep the per-destination limit")
	sweepCache := flag.Bool("sweep-cache", false, "ablation: compare cache off/on")
	flag.Parse()

	model := search.BenchLatency()
	if *paper {
		model = search.PaperLatency()
	}
	if *latency > 0 {
		model = search.LatencyModel{Base: *latency, Jitter: *latency / 2, CountFactor: 0.8}
	}

	switch {
	case *sweepConc:
		sweepConcurrency(model, *instances, *useHTTP)
	case *sweepCache:
		sweepCaching(model, *instances, *useHTTP)
	default:
		table1(model, *template, *runs, *instances, *useHTTP, *maxTotal, *maxDest)
	}
}

func newEnv(model search.LatencyModel, useHTTP bool, maxTotal, maxDest, cacheSize int) *harness.Env {
	dir, err := os.MkdirTemp("", "wsqbench-*")
	if err != nil {
		fatal(err)
	}
	env, err := harness.NewEnv(harness.Options{
		Dir: dir, Latency: model, HTTP: useHTTP,
		MaxConcurrentCalls: maxTotal, MaxCallsPerDest: maxDest, CacheSize: cacheSize,
	})
	if err != nil {
		fatal(err)
	}
	return env
}

func table1(model search.LatencyModel, template, runs, instances int, useHTTP bool, maxTotal, maxDest int) {
	env := newEnv(model, useHTTP, maxTotal, maxDest, 0)
	defer env.Close()
	fmt.Printf("WSQ Table 1 reproduction — latency %v+%v jitter, %d instances/run, http=%v\n\n",
		model.Base, model.Jitter, instances, useHTTP)
	var results []harness.RunResult
	for tmpl := 1; tmpl <= 3; tmpl++ {
		if template != 0 && tmpl != template {
			continue
		}
		for run := 1; run <= runs; run++ {
			r, err := harness.RunTemplate(env, tmpl, run, instances)
			if err != nil {
				fatal(err)
			}
			results = append(results, r)
			fmt.Printf("template %d run %d: sync %.2fs  async %.2fs  %.1fx (peak concurrency %d)\n",
				r.Template, r.Run, r.SyncMean.Seconds(), r.AsyncMean.Seconds(), r.Improvement, r.MaxConcurrency)
		}
	}
	fmt.Println()
	fmt.Print(harness.FormatTable1(results))
	fmt.Println("\nPaper (Table 1): T1 6.0x/9.4x, T2 13.5x/12.5x, T3 19.6x/16.4x — factors grow")
	fmt.Println("with template call count; absolute magnitude tracks the concurrency limit.")
}

// sweepConcurrency shows how the Table 1 improvement factor scales with
// the pump's per-destination limit — the resource-control knob of
// Section 4.1's final paragraph.
func sweepConcurrency(model search.LatencyModel, instances int, useHTTP bool) {
	fmt.Printf("Ablation: improvement vs per-destination concurrency limit (template 1, %d instances)\n\n", instances)
	fmt.Printf("%12s %14s %16s %12s\n", "limit", "sync mean (s)", "async mean (s)", "improvement")
	for _, limit := range []int{1, 2, 4, 8, 16, 32, 64} {
		env := newEnv(model, useHTTP, limit, limit, 0)
		r, err := harness.RunTemplate(env, 1, 1, instances)
		env.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%12d %14.2f %16.2f %11.1fx\n",
			limit, r.SyncMean.Seconds(), r.AsyncMean.Seconds(), r.Improvement)
	}
	fmt.Println("\nlimit=1 degenerates to sequential iteration; the paper's 6-20x factors")
	fmt.Println("correspond to the effective parallelism its 1999 network sustained.")
}

// sweepCaching shows the [HN96] result-cache effect on a workload with
// repeated identical calls (the Figure 7 hazard: a cross-product below a
// dependent join repeats every search |R| times).
func sweepCaching(model search.LatencyModel, instances int, useHTTP bool) {
	fmt.Println("Ablation: result cache on a repeated-call workload (Figure 7 hazard)")
	fmt.Println("query: States x R(3 rows) |x| WebCount — each state's count requested 3 times")
	q := `SELECT S.Name, R.V, Count FROM States S, Tiny R, WebCount
	      WHERE S.Name = T1 ORDER BY Count DESC`
	fmt.Printf("\n%8s %12s %18s %14s\n", "cache", "elapsed (s)", "calls registered", "calls started")
	for _, cacheSize := range []int{0, 4096} {
		env := newEnv(model, useHTTP, 0, 0, cacheSize)
		if _, err := env.DB.Exec(`CREATE TABLE Tiny (V INT)`); err != nil {
			fatal(err)
		}
		if _, err := env.DB.Exec(`INSERT INTO Tiny VALUES (1), (2), (3)`); err != nil {
			fatal(err)
		}
		env.DB.SetAsync(true)
		start := time.Now()
		if _, err := env.DB.Query(q); err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		st := env.DB.Pump().Stats()
		label := "off"
		if cacheSize > 0 {
			label = "on"
		}
		fmt.Printf("%8s %12.2f %18d %14d   (cache hits: %d, coalesced: %d)\n",
			label, elapsed.Seconds(), st.Registered, st.Started, st.CacheHits, st.Coalesced)
		env.Close()
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wsqbench: %v\n", err)
	os.Exit(1)
}
