// Command wsq is an interactive SQL shell over the WSQ engine: a small
// relational database extended with the WebCount/WebPages/WebFetch virtual
// tables and asynchronous iteration.
//
// By default it runs self-contained, with in-process synthetic engines and
// the paper's tables preloaded; pass -av-url/-google-url to target a
// running websearchd instead.
//
// Usage:
//
//	wsq [-db DIR] [-latency 250ms] [-sync] [-av-url URL] [-google-url URL] [-e QUERY]
//	wsq -server http://127.0.0.1:8080 [-timeout 30s] [-e QUERY]   # remote mode against wsqd
//
// Shell commands:
//
//	.explain <query>   show the plan (and its async rewrite)
//	EXPLAIN ANALYZE <query>
//	                   execute the query and print the per-operator span
//	                   tree (times, rows, patch/expand counts); plain SQL,
//	                   so it also works in remote mode
//	.async on|off      toggle asynchronous iteration
//	.tables            list stored tables
//	.stats             pump and engine statistics
//	.help              this help
//	.quit              exit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/search"
	"repro/internal/server"
	"repro/internal/websim"
)

func main() {
	dir := flag.String("db", "", "database directory (default: a temp dir)")
	latency := flag.Duration("latency", 250*time.Millisecond, "simulated search latency (in-process engines)")
	sync := flag.Bool("sync", false, "start with asynchronous iteration disabled")
	avURL := flag.String("av-url", "", "URL of a websearchd altavista endpoint (default: in-process)")
	gURL := flag.String("google-url", "", "URL of a websearchd google endpoint (default: in-process)")
	cacheSize := flag.Int("cache", 0, "search-result cache capacity (0 = disabled)")
	serverURL := flag.String("server", "", "URL of a running wsqd; queries are shipped there instead of executing in-process")
	timeout := flag.Duration("timeout", 30*time.Second, "per-query deadline in remote mode")
	query := flag.String("e", "", "execute one query and exit")
	flag.Parse()

	if *serverURL != "" {
		remoteShell(server.NewClient(*serverURL), *timeout, *query)
		return
	}

	if *dir == "" {
		tmp, err := os.MkdirTemp("", "wsq-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}

	db, err := core.Open(core.Config{Dir: *dir, Async: !*sync, CacheSize: *cacheSize})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	if *avURL != "" || *gURL != "" {
		if *avURL == "" || *gURL == "" {
			fatal(fmt.Errorf("pass both -av-url and -google-url or neither"))
		}
		db.RegisterEngine(search.Bind(context.Background(), search.NewClient("altavista", *avURL)), "AV")
		db.RegisterEngine(search.Bind(context.Background(), search.NewClient("google", *gURL)), "G")
	} else {
		corpus := websim.Default()
		model := search.LatencyModel{Base: *latency, Jitter: *latency / 2, CountFactor: 0.8}
		db.RegisterEngine(search.NewDelayed(websim.NewAltaVista(corpus), model, 1), "AV")
		db.RegisterEngine(search.NewDelayed(websim.NewGoogle(corpus), model, 2), "G")
	}
	if err := harness.LoadPaperTables(context.Background(), db); err != nil {
		fatal(err)
	}

	if *query != "" {
		if err := runStatement(db, *query); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Println("WSQ/DSQ shell — virtual tables: WebCount[_AV|_Google], WebPages[_AV|_Google], WebFetch")
	fmt.Println("tables: States, Sigs, CSFields, Movies  |  .help for commands")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Printf("wsq[%s]> ", mode(db))
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if done := command(db, line); done {
				return
			}
			continue
		}
		if err := runStatement(db, line); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}

// remoteShell is the -server mode: the same REPL, but every statement is
// shipped to a wsqd daemon over HTTP. `.stats` renders the daemon's
// /statusz snapshot.
func remoteShell(cl *server.Client, timeout time.Duration, query string) {
	ctx := context.Background()
	runRemote := func(sql string) error {
		start := time.Now()
		res, err := cl.Query(ctx, sql, timeout)
		if err != nil {
			return err
		}
		if isAnalyzeResult(res.Columns) {
			for _, row := range res.Rows {
				if len(row) == 1 {
					fmt.Println(row[0])
				}
			}
			return nil
		}
		fmt.Print(res.Format())
		fmt.Printf("elapsed: %v (server %.1fms), external calls: %d%s\n",
			time.Since(start).Round(time.Millisecond), res.ElapsedMS, res.ExternalCalls,
			degradedNote(res.DegradedCalls))
		return nil
	}
	if query != "" {
		if err := runRemote(query); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Println("WSQ/DSQ shell — remote mode (wsqd)")
	fmt.Println(".stats for server status  |  .quit to exit")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("wsq[remote]> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return
		case line == ".stats":
			st, err := cl.Status(ctx)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				continue
			}
			fmt.Printf("queries: total=%d active=%d queued=%d failed=%d rejected=%d timed-out=%d\n",
				st.Queries.Total, st.Queries.Active, st.Queries.Queued,
				st.Queries.Failed, st.Queries.Rejected, st.Queries.TimedOut)
			fmt.Printf("latency: p50=%.1fms p90=%.1fms p99=%.1fms max=%.1fms (n=%d)\n",
				st.Queries.LatencyMS.P50, st.Queries.LatencyMS.P90,
				st.Queries.LatencyMS.P99, st.Queries.LatencyMS.Max, st.Queries.LatencyMS.Count)
			fmt.Printf("pump: registered=%d started=%d completed=%d coalesced=%d canceled=%d max-concurrent=%d active=%d\n",
				st.Pump.Registered, st.Pump.Started, st.Pump.Completed,
				st.Pump.Coalesced, st.Pump.Canceled, st.Pump.MaxActive, st.Pump.Active)
			fmt.Printf("faults: retries=%d hedges=%d hedge-wins=%d call-timeouts=%d calls-failed=%d\n",
				st.Pump.Retries, st.Pump.Hedges, st.Pump.HedgeWins,
				st.Pump.CallTimeouts, st.Pump.CallsFailed)
		case strings.HasPrefix(line, "."):
			fmt.Fprintf(os.Stderr, "remote mode supports .stats and .quit only\n")
		default:
			if err := runRemote(line); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			}
		}
	}
}

func mode(db *core.DB) string {
	if db.Async() {
		return "async"
	}
	return "sync"
}

func command(db *core.DB, line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".quit", ".exit":
		return true
	case ".help":
		fmt.Println(".explain <query> | .async on|off | .tables | .stats | .quit")
		fmt.Println("EXPLAIN ANALYZE <query> runs the query and prints its span tree")
	case ".tables":
		for _, n := range db.Catalog().TableNames() {
			fmt.Println(n)
		}
	case ".async":
		if len(fields) == 2 {
			db.SetAsync(fields[1] == "on")
		}
		fmt.Printf("asynchronous iteration: %s\n", mode(db))
	case ".stats":
		st := db.Pump().Stats()
		fmt.Printf("pump: registered=%d cache-hits=%d coalesced=%d started=%d completed=%d max-concurrent=%d\n",
			st.Registered, st.CacheHits, st.Coalesced, st.Started, st.Completed, st.MaxActive)
		fmt.Printf("faults: retries=%d hedges=%d hedge-wins=%d call-timeouts=%d calls-failed=%d\n",
			st.Retries, st.Hedges, st.HedgeWins, st.CallTimeouts, st.CallsFailed)
	case ".explain":
		q := strings.TrimSpace(strings.TrimPrefix(line, ".explain"))
		out, err := db.Explain(q)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			break
		}
		fmt.Print(out)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %s (try .help)\n", fields[0])
	}
	return false
}

func runStatement(db *core.DB, sql string) error {
	start := time.Now()
	res, err := db.ExecContext(context.Background(), sql)
	if err != nil {
		return err
	}
	if isAnalyzeResult(res.Columns) {
		// EXPLAIN ANALYZE rows are preformatted tree lines; a boxed table
		// would only mangle the indentation.
		for _, row := range res.Rows {
			fmt.Println(row[0].S)
		}
		return nil
	}
	fmt.Print(res.Format())
	fmt.Printf("elapsed: %v, external calls: %d%s\n",
		time.Since(start).Round(time.Millisecond), res.Stats.ExternalCalls,
		degradedNote(res.Stats.DegradedCalls))
	return nil
}

// isAnalyzeResult detects the EXPLAIN ANALYZE textual result shape.
func isAnalyzeResult(columns []string) bool {
	return len(columns) == 1 && columns[0] == "EXPLAIN ANALYZE"
}

// degradedNote annotates timing lines when a degradation policy absorbed
// failed calls (so silently NULL-patched or dropped rows are visible).
func degradedNote(n int64) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprintf(", degraded calls: %d", n)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wsq: %v\n", err)
	os.Exit(1)
}
