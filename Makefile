# WSQ/DSQ reproduction — common targets.

GO ?= go

.PHONY: all build vet test check bench table1 examples clean

all: build check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full gate: vet + the whole suite under the race detector. The concurrency
# tests (shared-pump server, concurrent Exec) only bite with -race.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# testing.B versions of every table/figure + ablations (see bench_test.go).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's Table 1 at scaled latency (-paper for ~750 ms/call).
table1:
	$(GO) run ./cmd/wsqbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/states
	$(GO) run ./examples/sigs
	$(GO) run ./examples/crawler
	$(GO) run ./examples/dsq

clean:
	$(GO) clean ./...
