# WSQ/DSQ reproduction — common targets.

GO ?= go

.PHONY: all build vet lint test check fuzz bench table1 examples clean

all: build check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-invariant static analysis (cmd/wsqlint): slot balance, context
# flow, seeded randomness, lock scope, goroutine ownership. Exits non-zero
# on any diagnostic; see DESIGN.md "Static invariants".
lint:
	$(GO) run ./cmd/wsqlint ./...

test:
	$(GO) test ./...

# Full gate: vet + wsqlint + the whole suite under the race detector + a
# fuzz smoke. The concurrency tests (shared-pump server, concurrent Exec)
# only bite with -race; wsqlint enforces the invariants the race detector
# can only sample; the fuzz targets guard the parser and evaluator
# crash-freedom contracts (corpus seeds live in testdata/fuzz/).
check:
	$(GO) vet ./...
	$(GO) run ./cmd/wsqlint ./...
	$(GO) test -race ./...
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/sqlparse
	$(GO) test -run '^$$' -fuzz FuzzEval -fuzztime 10s ./internal/expr

# Longer fuzzing session for both targets.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 2m ./internal/sqlparse
	$(GO) test -run '^$$' -fuzz FuzzEval -fuzztime 2m ./internal/expr

# testing.B versions of every table/figure + ablations (see bench_test.go).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's Table 1 at scaled latency (-paper for ~750 ms/call).
table1:
	$(GO) run ./cmd/wsqbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/states
	$(GO) run ./examples/sigs
	$(GO) run ./examples/crawler
	$(GO) run ./examples/dsq

clean:
	$(GO) clean ./...
