# WSQ/DSQ reproduction — common targets.

GO ?= go

.PHONY: all build vet lint test test-race check fuzz fuzzqe-smoke bench bench-smoke table1 examples clean

all: build check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-invariant static analysis (cmd/wsqlint), nine rules over one
# shared interprocedural pass: slot balance, context flow, seeded
# randomness, lock scope, goroutine ownership, operator open/close
# balance, batch-window aliasing, lock-order cycles, Close error
# aggregation. Exits non-zero on any diagnostic; see DESIGN.md "Static
# invariants". The whole internal tree is held to an exemption-free
# standard (-no-ignore): every //lint:ignore waiver has been fixed at the
# source, and none may return. cmd/ and examples/ run with suppression
# honored (package main is out of scope for most rules anyway).
#
# LINT_BUDGET_S guards analysis latency: the suite builds its call graph
# once and shares it across rules, so a pass over the full tree must stay
# interactive. Exceeding the budget fails the target (and so `make
# check`) — treat it as a performance regression in internal/lint, not as
# a reason to raise the budget.
LINT_BUDGET_S ?= 60

lint:
	@start=$$(date +%s); \
	$(GO) run ./cmd/wsqlint ./... && \
	$(GO) run ./cmd/wsqlint -no-ignore ./internal/...; status=$$?; \
	elapsed=$$(( $$(date +%s) - start )); \
	echo "wsqlint: $${elapsed}s (budget $(LINT_BUDGET_S)s)"; \
	if [ $$status -ne 0 ]; then exit $$status; fi; \
	if [ $$elapsed -gt $(LINT_BUDGET_S) ]; then \
		echo "wsqlint exceeded its $(LINT_BUDGET_S)s latency budget"; exit 1; \
	fi

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Full gate: vet + wsqlint + the whole suite under the race detector + a
# fuzz smoke. The concurrency tests (shared-pump server, concurrent Exec)
# only bite with -race; wsqlint enforces the invariants the race detector
# can only sample; the fuzz targets guard the parser and evaluator
# crash-freedom contracts (corpus seeds live in testdata/fuzz/).
check:
	$(GO) vet ./...
	$(MAKE) lint
	$(GO) test -race ./...
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/sqlparse
	$(GO) test -run '^$$' -fuzz FuzzEval -fuzztime 10s ./internal/expr
	$(MAKE) fuzzqe-smoke

# Longer fuzzing session for both targets.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 2m ./internal/sqlparse
	$(GO) test -run '^$$' -fuzz FuzzEval -fuzztime 2m ./internal/expr

# Plan-equivalence fuzz smoke (~30s): a seeded, coverage-steered run of
# the differential harness — four plan regimes per query checked against
# the offline ground truth, including exact call and settlement counts
# (DESIGN.md §11). A divergence exits non-zero and leaves a minimized
# JSON repro in wsqfuzz-repro/ (uploaded as a CI artifact).
fuzzqe-smoke:
	$(GO) run ./cmd/wsqfuzz -seed 1 -duration 30s -n 0 -repro-dir wsqfuzz-repro

# testing.B versions of every table/figure + ablations (see bench_test.go).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's Table 1 at scaled latency (-paper for ~750 ms/call).
table1:
	$(GO) run ./cmd/wsqbench

# Fast machine-readable benchmark smoke (the CI artifact): one Table-1
# cell at millisecond latency, with sync/async p50/p95/p99 estimated from
# the harness's obs histograms — then the multi-node smoke: 2 workers + a
# coordinator on loopback, asserting cross-node cache hits > 0, zero query
# errors, and a clean mid-run drain (exits non-zero otherwise) — then the
# executor batch-size sweep (tuple-at-a-time vs 64 vs 256) charting the
# batching win on a purely local join pipeline.
bench-smoke:
	$(GO) run ./cmd/wsqbench -template 1 -runs 1 -instances 4 -latency 2ms -json-out BENCH_smoke.json
	$(GO) run ./cmd/wsqbench -tier 2 -clients 4 -duration 3s -latency 2ms -json-out BENCH_tier.json
	$(GO) run ./cmd/wsqbench -sweep-exec 200000 -json-out BENCH_exec.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/states
	$(GO) run ./examples/sigs
	$(GO) run ./examples/crawler
	$(GO) run ./examples/dsq

clean:
	$(GO) clean ./...
