// Benchmarks regenerating the WSQ/DSQ paper's evaluation artifacts.
//
// Table 1 (the paper's only results table) is covered by the
// BenchmarkTable1Template{1,2,3}{Sync,Async} pairs: the reported metric of
// interest is the ratio of the Sync and Async ns/op numbers, which the
// paper reports as 6.0x-19.6x (growing with the template's call count).
// The latency here is scaled down (~25 ms/call vs the 1999 web's ~1 s) so
// the suite finishes in minutes; the sync/async ratio, not the absolute
// time, is the reproduced quantity. cmd/wsqbench -paper runs the faithful
// slow version.
//
// The query-plan figures (3-8) are validated structurally in
// internal/async tests; the benchmarks here measure their execution-time
// behavior (Figure 7's redundant-call hazard and cache fix, Figure 8's
// join-as-selection rewrite). Ablation benchmarks cover the design knobs
// the paper discusses: the ReqPump concurrency limit, the [HN96] result
// cache, ReqSync full-buffering vs streaming, and percolation itself.
package repro

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/async"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/search"
	"repro/internal/sqlparse"
)

// benchLatency keeps the suite fast while staying latency-dominated.
var benchLatency = search.LatencyModel{Base: 20 * time.Millisecond, Jitter: 10 * time.Millisecond, CountFactor: 0.8}

func newBenchEnv(b *testing.B, opts harness.Options) *harness.Env {
	b.Helper()
	dir, err := os.MkdirTemp("", "wsqbench-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	opts.Dir = dir
	if opts.Latency == (search.LatencyModel{}) {
		opts.Latency = benchLatency
	}
	env, err := harness.NewEnv(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(env.Close)
	return env
}

// benchTemplate measures one Table 1 cell: mean wall time per template
// query in the given mode.
func benchTemplate(b *testing.B, template int, asyncMode bool) {
	env := newBenchEnv(b, harness.Options{})
	queries, err := harness.TemplateQueries(template, 1, 2)
	if err != nil {
		b.Fatal(err)
	}
	env.DB.SetAsync(asyncMode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := env.DB.QueryContext(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Table 1 -----------------------------------------------------------

func BenchmarkTable1Template1Sync(b *testing.B)  { benchTemplate(b, 1, false) }
func BenchmarkTable1Template1Async(b *testing.B) { benchTemplate(b, 1, true) }
func BenchmarkTable1Template2Sync(b *testing.B)  { benchTemplate(b, 2, false) }
func BenchmarkTable1Template2Async(b *testing.B) { benchTemplate(b, 2, true) }
func BenchmarkTable1Template3Sync(b *testing.B)  { benchTemplate(b, 3, false) }
func BenchmarkTable1Template3Async(b *testing.B) { benchTemplate(b, 3, true) }

// --- Figure 7: repeated calls under a cross-product, cache ablation ------

// The Figure 7(a) hazard: a cross-product below a dependent join repeats
// every WebCount call |R| times. The cache restores one call per distinct
// binding.
func benchFigure7(b *testing.B, cacheSize int) {
	env := newBenchEnv(b, harness.Options{CacheSize: cacheSize})
	if _, err := env.DB.ExecContext(context.Background(), `CREATE TABLE R (V INT)`); err != nil {
		b.Fatal(err)
	}
	if _, err := env.DB.ExecContext(context.Background(), `INSERT INTO R VALUES (1), (2), (3)`); err != nil {
		b.Fatal(err)
	}
	q := `SELECT S.Name, R.V, Count FROM Sigs S, R, WebCount WHERE S.Name = T1`
	env.DB.SetAsync(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cacheSize > 0 {
			env.DB.Cache().Reset()
		}
		if _, err := env.DB.QueryContext(context.Background(), q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7CrossProductNoCache(b *testing.B) { benchFigure7(b, 0) }
func BenchmarkFigure7CrossProductCached(b *testing.B)  { benchFigure7(b, 4096) }

// --- Figure 8: bushy URL-intersection query ------------------------------

func benchFigure8(b *testing.B, asyncMode bool) {
	env := newBenchEnv(b, harness.Options{})
	q := `SELECT S.URL FROM Sigs, WebPages S, CSFields, WebPages C
	      WHERE Sigs.Name = S.T1 AND CSFields.Name = C.T1
	        AND S.Rank <= 5 AND C.Rank <= 5 AND S.URL = C.URL`
	env.DB.SetAsync(asyncMode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.DB.QueryContext(context.Background(), q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8Sync(b *testing.B)  { benchFigure8(b, false) }
func BenchmarkFigure8Async(b *testing.B) { benchFigure8(b, true) }

// --- Section 4.2: crawler round ------------------------------------------

func benchCrawler(b *testing.B, asyncMode bool) {
	env := newBenchEnv(b, harness.Options{})
	env.DB.SetAsync(true)
	seeds, err := env.DB.QueryContext(context.Background(), `SELECT URL FROM States, WebPages WHERE Name = T1 AND Rank <= 1`)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := env.DB.ExecContext(context.Background(), `CREATE TABLE Frontier (URL VARCHAR)`); err != nil {
		b.Fatal(err)
	}
	tab, _ := env.DB.Catalog().Get("Frontier")
	for _, r := range seeds.Rows {
		tab.Insert(r)
	}
	env.DB.SetAsync(asyncMode)
	q := `SELECT F.URL, Status FROM Frontier F, WebFetch WHERE F.URL = WebFetch.URL`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.DB.QueryContext(context.Background(), q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrawlerRoundSync(b *testing.B)  { benchCrawler(b, false) }
func BenchmarkCrawlerRoundAsync(b *testing.B) { benchCrawler(b, true) }

// --- Ablation: ReqPump concurrency limit ----------------------------------

func BenchmarkConcurrencyLimit(b *testing.B) {
	for _, limit := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("limit=%d", limit), func(b *testing.B) {
			env := newBenchEnv(b, harness.Options{MaxConcurrentCalls: limit, MaxCallsPerDest: limit})
			q, _ := harness.Template(1, "computer", "")
			env.DB.SetAsync(true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.DB.QueryContext(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: ReqSync full-buffering vs streaming -------------------------

func BenchmarkReqSyncBuffering(b *testing.B) {
	for _, streaming := range []bool{false, true} {
		name := "full-buffer"
		if streaming {
			name = "streaming"
		}
		b.Run(name, func(b *testing.B) {
			env := newBenchEnv(b, harness.Options{StreamingReqSync: streaming})
			q, _ := harness.Template(1, "beaches", "")
			env.DB.SetAsync(true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.DB.QueryContext(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: percolation ------------------------------------------------

// BenchmarkPercolation compares the full rewrite against insertion-only
// (ReqSync pinned above its AEVScan): without percolation each dependent
// join blocks per outer tuple and asynchrony buys almost nothing.
func BenchmarkPercolation(b *testing.B) {
	for _, full := range []bool{true, false} {
		name := "insert-only"
		if full {
			name = "full-rewrite"
		}
		b.Run(name, func(b *testing.B) {
			env := newBenchEnv(b, harness.Options{})
			sel, err := sqlparse.ParseSelect(
				`SELECT Name, Count FROM Sigs, WebCount WHERE Name = T1 AND T2 = 'Knuth'`)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.DB.SetAsync(false)
				op, err := env.DB.Plan(sel)
				if err != nil {
					b.Fatal(err)
				}
				if full {
					op = async.Rewrite(op, env.DB.Pump())
				} else {
					op = async.RewriteInsertOnly(op, env.DB.Pump())
				}
				if _, err := exec.Run(exec.NewContext(), op); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
