// The six example WSQ queries of Section 3.1 of the paper, run against the
// synthetic web. Compare each result's shape with the paper's:
//
//	Q1  CA > WA > NY > TX > MI
//	Q2  AK > WA > DE > HI > WY (count normalized by population)
//	Q3  CO > NM > AZ > UT, then a dramatic dropoff
//	Q4  exactly Atlanta, Lincoln, Boston, Jackson, Pierre, Columbia
//	Q5  top two URLs per state
//	Q6  four states where AltaVista and Google agree on a top-5 URL
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/search"
)

func main() {
	dir, err := os.MkdirTemp("", "wsq-states-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	env, err := harness.NewEnv(harness.Options{
		Dir:     dir,
		Latency: search.LatencyModel{Base: 80 * time.Millisecond, Jitter: 40 * time.Millisecond, CountFactor: 0.8},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	db := env.DB

	queries := []struct {
		title string
		sql   string
		limit int
	}{
		{"Query 1: states by Web mentions",
			`SELECT Name, Count FROM States, WebCount WHERE Name = T1 ORDER BY Count DESC`, 5},
		{"Query 2: normalized by population",
			`SELECT Name, Count / Population AS C FROM States, WebCount WHERE Name = T1 ORDER BY C DESC`, 5},
		{"Query 3: states near 'four corners'",
			`SELECT Name, Count FROM States, WebCount WHERE Name = T1 AND T2 = 'four corners' ORDER BY Count DESC`, 6},
		{"Query 4: capitals out-counting their states",
			`SELECT Capital, C.Count, Name, S.Count FROM States, WebCount C, WebCount S
			 WHERE Capital = C.T1 AND Name = S.T1 AND C.Count > S.Count`, 0},
		{"Query 5: top two URLs per state",
			`SELECT Name, URL, Rank FROM States, WebPages WHERE Name = T1 AND Rank <= 2 ORDER BY Name, Rank`, 8},
		{"Query 6: top-5 URLs AltaVista and Google agree on",
			`SELECT Name, AV.URL FROM States, WebPages_AV AV, WebPages_Google G
			 WHERE Name = AV.T1 AND Name = G.T1 AND AV.Rank <= 5 AND G.Rank <= 5 AND AV.URL = G.URL`, 0},
	}

	for _, q := range queries {
		fmt.Printf("=== %s ===\n", q.title)
		start := time.Now()
		res, err := db.QueryContext(context.Background(), q.sql)
		if err != nil {
			log.Fatalf("%s: %v", q.title, err)
		}
		show := *res
		if q.limit > 0 && len(show.Rows) > q.limit {
			show.Rows = show.Rows[:q.limit]
		}
		fmt.Print(show.Format())
		fmt.Printf("external calls: %d, elapsed %v\n\n",
			res.Stats.ExternalCalls, time.Since(start).Round(time.Millisecond))
	}
}
