// The DSQ scenario of Section 1: "when a DSQ user searches for the keyword
// phrase 'scuba diving', DSQ uses the Web to correlate that phrase with
// terms in the known database ... and might even find
// state/movie/scuba-diving triples (e.g., an underwater thriller filmed in
// Florida)."
//
// The library variant of cmd/dsq: it explains two phrases against the
// States and Movies tables, exercising the DSQ API directly.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/dsq"
	"repro/internal/harness"
	"repro/internal/search"
)

func main() {
	dir, err := os.MkdirTemp("", "wsq-dsq-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	env, err := harness.NewEnv(harness.Options{
		Dir:       dir,
		Latency:   search.LatencyModel{Base: 60 * time.Millisecond, Jitter: 30 * time.Millisecond, CountFactor: 0.8},
		CacheSize: 4096, // repeated phrases across Explain calls hit the cache
	})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	ex := dsq.New(env.DB)
	for _, phrase := range []string{"scuba diving", "four corners"} {
		start := time.Now()
		rep, err := ex.Explain(context.Background(), phrase,
			dsq.TermSource{Table: "States", Column: "Name"},
			dsq.TermSource{Table: "Movies", Column: "Title"},
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep.Format())
		fmt.Printf("elapsed %v\n\n", time.Since(start).Round(time.Millisecond))
	}
	st := env.DB.Pump().Stats()
	fmt.Printf("total WebCount calls %d (cache hits %d, coalesced %d), peak concurrency %d\n",
		st.Registered, st.CacheHits, st.Coalesced, st.MaxActive)
}
