// The running example of Section 4 of the paper: ranking ACM SIGs by Web
// co-occurrence with "Knuth", plus the plan rewrites of Figures 2-6.
//
// The example prints each query's conventional plan and its
// asynchronous-iteration rewrite (AEVScan + percolated/consolidated
// ReqSync), then executes it both ways and compares wall time.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/search"
)

func main() {
	dir, err := os.MkdirTemp("", "wsq-sigs-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	env, err := harness.NewEnv(harness.Options{
		Dir:     dir,
		Latency: search.LatencyModel{Base: 60 * time.Millisecond, Jitter: 30 * time.Millisecond, CountFactor: 0.8},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	db := env.DB

	// Section 4.1 / Figures 2-3: rank the Sigs by co-occurrence with Knuth.
	knuth := `SELECT Name, Count FROM Sigs, WebCount
	          WHERE Name = T1 AND T2 = 'Knuth' ORDER BY Count DESC`
	// Section 4.4 / Figures 5-6: top-3 URLs from both engines per Sig.
	both := `SELECT Name, AV.URL, G.URL FROM Sigs, WebPages_AV AV, WebPages_Google G
	         WHERE Name = AV.T1 AND Name = G.T1 AND AV.Rank <= 3 AND G.Rank <= 3`

	for _, q := range []struct{ title, sql string }{
		{"Sigs near 'Knuth' (Figure 2 -> Figure 3)", knuth},
		{"Sigs x WebPages_AV x WebPages_Google (Figure 6)", both},
	} {
		fmt.Printf("=== %s ===\n", q.title)
		plan, err := db.Explain(q.sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(plan)

		db.SetAsync(false)
		start := time.Now()
		syncRes, err := db.QueryContext(context.Background(), q.sql)
		if err != nil {
			log.Fatal(err)
		}
		syncTime := time.Since(start)

		db.SetAsync(true)
		start = time.Now()
		asyncRes, err := db.QueryContext(context.Background(), q.sql)
		if err != nil {
			log.Fatal(err)
		}
		asyncTime := time.Since(start)

		if len(syncRes.Rows) != len(asyncRes.Rows) {
			log.Fatalf("sync (%d rows) and async (%d rows) disagree", len(syncRes.Rows), len(asyncRes.Rows))
		}
		show := *asyncRes
		if len(show.Rows) > 8 {
			show.Rows = show.Rows[:8]
		}
		fmt.Print(show.Format())
		fmt.Printf("sync %v vs async %v — %.1fx improvement, identical %d rows\n\n",
			syncTime.Round(time.Millisecond), asyncTime.Round(time.Millisecond),
			float64(syncTime)/float64(asyncTime), len(syncRes.Rows))
	}
}
