// The Web-crawler scenario of Section 4.2: "given a table of thousands of
// URLs, a query over that table could be used to fetch the HTML for each
// URL (for indexing and to find the next round of URLs)."
//
// Each crawl round is one WSQ query over the WebFetch virtual table; the
// asynchronous-iteration rewrite overlaps every fetch of the round. Links
// are extracted from the returned HTML to seed the next round's table.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"regexp"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/search"
	"repro/internal/types"
	"repro/internal/websim"
)

var linkRe = regexp.MustCompile(`href="([^"]+)"`)

func main() {
	dir, err := os.MkdirTemp("", "wsq-crawler-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	env, err := harness.NewEnv(harness.Options{
		Dir:     dir,
		Latency: search.LatencyModel{Base: 60 * time.Millisecond, Jitter: 30 * time.Millisecond, CountFactor: 0.8},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	db := env.DB

	// Seed the frontier with each state's top URL (one WSQ query).
	seeds, err := db.QueryContext(context.Background(), `SELECT URL FROM States, WebPages WHERE Name = T1 AND Rank <= 1`)
	if err != nil {
		log.Fatal(err)
	}
	frontier := make([]string, 0, len(seeds.Rows))
	for _, r := range seeds.Rows {
		frontier = append(frontier, r[0].AsString())
	}
	visited := make(map[string]bool)

	for round := 1; round <= 3; round++ {
		frontier = dedup(frontier, visited)
		if len(frontier) == 0 {
			break
		}
		start := time.Now()
		bodies, fetched := crawlRound(db, round, frontier)
		var next []string
		totalBytes := 0
		for _, body := range bodies {
			totalBytes += len(body)
			for _, m := range linkRe.FindAllStringSubmatch(body, -1) {
				next = append(next, m[1])
			}
		}
		fmt.Printf("round %d: fetched %d pages (%d bytes) in %v, discovered %d links\n",
			round, fetched, totalBytes, time.Since(start).Round(time.Millisecond), len(next))
		frontier = next
	}
	fmt.Printf("crawl done: %d distinct pages visited\n", len(visited))
	_ = websim.Default
}

// crawlRound stages the frontier in a table and fetches every page with a
// single asynchronous WSQ query over WebFetch.
func crawlRound(db *core.DB, round int, frontier []string) (bodies []string, fetched int) {
	table := fmt.Sprintf("Frontier%d", round)
	if _, err := db.ExecContext(context.Background(), fmt.Sprintf(`CREATE TABLE %s (URL VARCHAR)`, table)); err != nil {
		log.Fatal(err)
	}
	t, _ := db.Catalog().Get(table)
	for _, u := range frontier {
		if _, err := t.Insert(types.Tuple{types.Str(u)}); err != nil {
			log.Fatal(err)
		}
	}
	res, err := db.QueryContext(context.Background(), fmt.Sprintf(
		`SELECT F.URL, Content, Status FROM %s F, WebFetch WHERE F.URL = WebFetch.URL`, table))
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		if st, _ := row[2].AsInt(); st == 200 {
			bodies = append(bodies, row[1].AsString())
			fetched++
		}
	}
	return bodies, fetched
}

func dedup(urls []string, visited map[string]bool) []string {
	var out []string
	for _, u := range urls {
		if !visited[u] {
			visited[u] = true
			out = append(out, u)
		}
	}
	return out
}
