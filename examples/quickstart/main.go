// Quickstart: open a WSQ database, register a search engine, load a stored
// table, and run a combined database/Web query (Query 1 of the paper:
// "Rank all states by how often they appear by name on the Web").
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/search"
	"repro/internal/types"
	"repro/internal/websim"
)

func main() {
	dir, err := os.MkdirTemp("", "wsq-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Open the database with asynchronous iteration enabled.
	db, err := core.Open(core.Config{Dir: dir, Async: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Register a search engine. Here: the synthetic AltaVista with ~100 ms
	// simulated latency; in the paper this was the real altavista.com.
	engine := search.NewDelayed(
		websim.NewAltaVista(websim.Default()),
		search.LatencyModel{Base: 100 * time.Millisecond, Jitter: 50 * time.Millisecond, CountFactor: 0.8},
		1,
	)
	db.RegisterEngine(engine, "AV")

	// Create and load a stored table.
	if _, err := db.ExecContext(context.Background(), `CREATE TABLE States (Name VARCHAR, Population INT, Capital VARCHAR)`); err != nil {
		log.Fatal(err)
	}
	states, _ := db.Catalog().Get("States")
	for _, s := range datasets.States {
		if _, err := states.Insert(types.Tuple{types.Str(s.Name), types.Int(s.Population), types.Str(s.Capital)}); err != nil {
			log.Fatal(err)
		}
	}

	// One SQL query, fifty Web searches — overlapped by asynchronous
	// iteration, so this takes ~1 round trip instead of ~50.
	query := `SELECT Name, Count FROM States, WebCount WHERE Name = T1 ORDER BY Count DESC LIMIT 5`
	start := time.Now()
	res, err := db.QueryContext(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n%s", query, res.Format())
	requests, maxInFlight := engine.Stats()
	fmt.Printf("\n%d search requests, up to %d in flight, %v total\n",
		requests, maxInFlight, time.Since(start).Round(time.Millisecond))
}
