// Package repro is a from-scratch Go reproduction of "WSQ/DSQ: A Practical
// Approach for Combined Querying of Databases and the Web" (Goldman &
// Widom, SIGMOD 2000).
//
// The public entry points live in internal/core (the WSQ database engine),
// internal/dsq (database-supported web queries), and internal/harness (the
// experiment environment). See README.md for a tour and DESIGN.md for the
// system inventory; bench_test.go in this directory regenerates every
// table and figure of the paper's evaluation.
package repro
