// Package shard turns a set of wsqd processes into one horizontally
// scaled tier — the WSQ analogue of ODYS's massively-parallel DB+IR
// architecture. It supplies the three pieces a multi-node deployment
// needs beyond what a single wsqd provides:
//
//   - A coordinator (coordinator.go) that accepts the existing HTTP/JSON
//     /query API and routes each query to a worker by consistent-hashing
//     its search-expression key over a ring with virtual nodes (ring.go).
//     Routing is membership-driven: a static JSON config file names the
//     workers and is reloadable at runtime (SIGHUP in cmd/wsqd, or POST
//     /admin/reload).
//
//   - Tier-wide result caching (peers.go, worker.go): every key has a
//     home shard on the ring. A worker whose pump misses its local [HN96]
//     cache asks the key's home shard over a small HTTP cache protocol
//     (get / fill / invalidate) before spending an engine call, and
//     offers locally computed results back to the home shard. Combined
//     with the pump's in-flight coalescing and the home shard's
//     fill-promise wait (a remote get can linger briefly for an
//     in-progress fill), one AltaVista call can serve every node.
//
//   - Operability: per-engine global rate budgets from the config are
//     split across live workers by the coordinator (each worker gets
//     ceil(budget/N) via Pump.SetDestLimit) and re-split on membership
//     change; a draining worker finishes in-flight queries, hands its hot
//     cache keys to their new homes, and answers further queries with a
//     retryable 503 that the coordinator reroutes.
//
// The package is deliberately free of new dependencies: the protocol is
// plain HTTP/JSON over the standard library, metrics ride the existing
// internal/obs registry, and tuples travel as types.Value JSON.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/sqlparse"
)

// Member is one wsqd worker in the tier.
type Member struct {
	// ID is the stable ring identity ("w1"). Hashing uses the ID, so a
	// worker can move to a new address without remapping its keys.
	ID string `json:"id"`
	// URL is the worker's base HTTP address ("http://10.0.0.5:8080").
	URL string `json:"url"`
}

// Config is the tier's static membership file, read by both the
// coordinator and the workers (and re-read on SIGHUP).
type Config struct {
	// Workers lists the tier members.
	Workers []Member `json:"workers"`
	// VNodes is the number of virtual nodes per worker on the hash ring
	// (0 selects DefaultVNodes). More virtual nodes smooth the key
	// distribution at the cost of a larger ring.
	VNodes int `json:"vnodes,omitempty"`
	// Budgets maps engine destinations ("altavista") to the tier-wide
	// concurrent-call budget. The coordinator divides each budget across
	// live workers and re-divides on membership change.
	Budgets map[string]int `json:"budgets,omitempty"`
}

// DefaultVNodes is the per-member virtual-node count when the config
// does not choose one.
const DefaultVNodes = 64

// Validate checks structural invariants: at least one worker, unique
// non-empty IDs, non-empty URLs.
func (c Config) Validate() error {
	if len(c.Workers) == 0 {
		return fmt.Errorf("shard config: no workers")
	}
	seen := make(map[string]bool, len(c.Workers))
	for _, w := range c.Workers {
		if w.ID == "" || w.URL == "" {
			return fmt.Errorf("shard config: worker needs both id and url (got id=%q url=%q)", w.ID, w.URL)
		}
		if seen[w.ID] {
			return fmt.Errorf("shard config: duplicate worker id %q", w.ID)
		}
		seen[w.ID] = true
	}
	for dest, n := range c.Budgets {
		if n <= 0 {
			return fmt.Errorf("shard config: budget for %q must be positive (got %d)", dest, n)
		}
	}
	return nil
}

// vnodes returns the effective virtual-node count.
func (c Config) vnodes() int {
	if c.VNodes > 0 {
		return c.VNodes
	}
	return DefaultVNodes
}

// Member returns the worker with the given id.
func (c Config) Member(id string) (Member, bool) {
	for _, w := range c.Workers {
		if w.ID == id {
			return w, true
		}
	}
	return Member{}, false
}

// LoadConfig reads and validates a tier config file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("shard config: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("shard config %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// SplitBudget divides a tier-wide budget across n workers, rounding up so
// the tier never starves: ceil(budget/n), minimum 1.
func SplitBudget(budget, n int) int {
	if n <= 0 {
		return budget
	}
	per := (budget + n - 1) / n
	if per < 1 {
		per = 1
	}
	return per
}

// RouteKey derives the consistent-hashing key for a query. The goal is
// cache affinity: queries issuing the same external calls should land on
// the same worker, so the paper's [HN96] cache and the pump's in-flight
// coalescing see them together.
//
// The search expressions of a WSQ query live in its string literals
// (`WHERE T2 = 'crime'` binds the WebCount expression), so the key is the
// sorted set of string literals; a query without literals (pure
// table-driven bindings) falls back to its whitespace-normalized text, so
// identical statements still route identically.
func RouteKey(sql string) string {
	toks, err := sqlparse.Tokenize(sql)
	if err == nil {
		var lits []string
		for _, tk := range toks {
			if tk.Kind == sqlparse.TokString {
				lits = append(lits, tk.Text)
			}
		}
		if len(lits) > 0 {
			sort.Strings(lits)
			return "lit:" + strings.Join(lits, "\x00")
		}
	}
	return "sql:" + strings.Join(strings.Fields(strings.ToLower(sql)), " ")
}
