package shard

import (
	"fmt"
	"testing"
)

func testMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{ID: fmt.Sprintf("w%d", i+1), URL: fmt.Sprintf("http://w%d", i+1)}
	}
	return ms
}

func TestRingDeterministicAndTotal(t *testing.T) {
	r1 := NewRing(testMembers(4), 32)
	r2 := NewRing(testMembers(4), 32)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		a, ok := r1.Owner(key)
		if !ok {
			t.Fatalf("no owner for %q", key)
		}
		b, _ := r2.Owner(key)
		if a.ID != b.ID {
			t.Fatalf("owner for %q differs between identical rings: %s vs %s", key, a.ID, b.ID)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(testMembers(4), DefaultVNodes)
	counts := make(map[string]int)
	const n = 4000
	for i := 0; i < n; i++ {
		m, _ := r.Owner(fmt.Sprintf("key-%d", i))
		counts[m.ID]++
	}
	for id, c := range counts {
		// With 64 vnodes per member, each of 4 members should hold a
		// reasonable share; a collapsed ring would put ~everything on one.
		if c < n/16 {
			t.Errorf("member %s owns only %d/%d keys — ring badly skewed: %v", id, c, n, counts)
		}
	}
}

func TestRingSuccessorsDistinctAndOwnerFirst(t *testing.T) {
	r := NewRing(testMembers(5), 16)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		owner, _ := r.Owner(key)
		succ := r.Successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("successors(%q, 3) returned %d members", key, len(succ))
		}
		if succ[0].ID != owner.ID {
			t.Errorf("preference list for %q does not start with the owner", key)
		}
		seen := map[string]bool{}
		for _, m := range succ {
			if seen[m.ID] {
				t.Errorf("duplicate member %s in preference list for %q", m.ID, key)
			}
			seen[m.ID] = true
		}
	}
	if got := r.Successors("k", 99); len(got) != 5 {
		t.Errorf("successors capped at membership: got %d, want 5", len(got))
	}
}

// TestRingWithoutStability is the consistent-hashing property that makes
// drain cheap: removing one member must not move keys between the
// surviving members.
func TestRingWithoutStability(t *testing.T) {
	r := NewRing(testMembers(4), DefaultVNodes)
	smaller := r.Without("w3")
	if smaller.Has("w3") || smaller.Len() != 3 {
		t.Fatalf("Without did not remove the member")
	}
	if r.Len() != 4 {
		t.Fatalf("Without mutated the receiver")
	}
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, _ := r.Owner(key)
		after, _ := smaller.Owner(key)
		if before.ID == "w3" {
			if after.ID == "w3" {
				t.Fatalf("key %q still owned by removed member", key)
			}
			continue
		}
		if before.ID != after.ID {
			moved++
		} else {
			kept++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved between surviving members (kept %d); consistent hashing must only remap the removed member's keys", moved, kept)
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 8)
	if _, ok := r.Owner("k"); ok {
		t.Error("empty ring claimed an owner")
	}
	if s := r.Successors("k", 2); len(s) != 0 {
		t.Errorf("empty ring returned successors: %v", s)
	}
}
