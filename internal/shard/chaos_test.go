package shard

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/search"
)

// settleGoroutines waits for the goroutine count to return to within
// slack of base — the leak detector the server chaos suite uses, applied
// to the tier.
func settleGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines did not settle: %d > base %d + slack %d\n%s",
				n, base, slack, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosWorkerKilledMidQuery: one worker dies with queries in flight.
// The coordinator must reroute every affected and subsequent query to
// the survivor — the client never sees a 500 — and the tier's goroutines
// settle afterwards.
func TestChaosWorkerKilledMidQuery(t *testing.T) {
	base := runtime.NumGoroutine()
	// Real latency so kills genuinely land mid-query.
	env := startTier(t, 2, search.LatencyModel{Base: 5 * time.Millisecond, Jitter: 10 * time.Millisecond}, nil)
	terms := termsCoveringWorkers(t, env, 2)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		statuses = map[int]int{}
	)
	stopDrive := make(chan struct{})
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopDrive:
					return
				default:
				}
				code, _ := env.query(t, template1(terms[(i+c)%len(terms)]))
				mu.Lock()
				statuses[code]++
				mu.Unlock()
			}
		}(c)
	}

	// Let traffic build, then kill w1 hard: sever live connections first
	// (mid-query failures), then stop the listener (refused connections).
	time.Sleep(40 * time.Millisecond)
	victim := env.nodes[0]
	victim.srv.CloseClientConnections()
	victim.srv.Close()

	time.Sleep(80 * time.Millisecond) // post-kill traffic must reroute
	close(stopDrive)
	wg.Wait()

	mu.Lock()
	total, failed := 0, 0
	for code, n := range statuses {
		total += n
		if code >= 500 && code != http.StatusServiceUnavailable {
			failed += n
			t.Errorf("%d queries surfaced status %d after worker kill", n, code)
		}
	}
	okCount := statuses[http.StatusOK]
	unavailable := statuses[http.StatusServiceUnavailable]
	mu.Unlock()
	if total == 0 {
		t.Fatal("drive issued no queries")
	}
	if okCount == 0 {
		t.Error("no query succeeded after the kill; rerouting is not working")
	}
	// With a 2-worker tier and MaxAttempts=3 the survivor covers every
	// key, so even 503s should be absent — but we only hard-require "no
	// fabricated 500s", matching the degrade contract.
	t.Logf("chaos: %d queries, %d ok, %d unavailable, %d failed", total, okCount, unavailable, failed)

	// Reroutes must actually have happened (w1 owned some terms).
	if env.coord.reroutes.Load() == 0 {
		t.Error("coordinator recorded zero reroutes despite a dead worker")
	}

	// Tear down the rest and verify nothing leaked. The survivor's stack
	// and the coordinator's pooled transports are closed by t.Cleanup in
	// LIFO order after this check runs, so close them explicitly here.
	env.csrv.Close()
	env.coord.Close()
	for _, nd := range env.nodes {
		nd.peers.Close()
		if nd != victim {
			nd.srv.Close()
		}
		nd.db.Close()
	}
	http.DefaultClient.CloseIdleConnections()
	settleGoroutines(t, base, 8)
}

// TestChaosCoordinatorSurvivesAllWorkersDown: with every worker gone the
// coordinator answers retryable 503s, not 500s, and recovers when asked
// again after a worker returns (here: never — we only assert the 503s).
func TestChaosCoordinatorSurvivesAllWorkersDown(t *testing.T) {
	env := startTier(t, 2, search.ZeroLatency(), nil)
	for _, nd := range env.nodes {
		nd.srv.Close()
	}
	for i := 0; i < 5; i++ {
		code, _ := env.query(t, template1("crime"))
		if code != http.StatusServiceUnavailable {
			t.Fatalf("query %d: status %d, want 503", i, code)
		}
	}
	if env.coord.exhausted.Load() == 0 {
		t.Error("exhausted counter not incremented")
	}
}

// TestChaosDrainUnreachableWorker: draining a worker that just died must
// fail cleanly (the coordinator reports the error) while the ring update
// still lands, so traffic keeps flowing to the survivor.
func TestChaosDrainUnreachableWorker(t *testing.T) {
	env := startTier(t, 2, search.ZeroLatency(), nil)
	env.nodes[0].srv.Close()
	if _, err := env.coord.Drain(context.Background(), "w1"); err == nil {
		t.Fatal("drain of a dead worker reported success")
	}
	// The dead worker is off the ring regardless: queries still succeed.
	if env.coord.ring().Has("w1") {
		t.Error("dead worker still on the live ring after failed drain")
	}
	for i := 0; i < 3; i++ {
		if code, _ := env.query(t, template1("education")); code != http.StatusOK {
			t.Fatalf("post-drain-failure query: %d", code)
		}
	}
}
