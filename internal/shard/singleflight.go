package shard

import (
	"sync"

	"repro/internal/types"
)

// flightGroup collapses concurrent duplicate work: while one caller runs
// fn for a key, later callers for the same key wait and share its result
// instead of running fn again. It is the tier-level counterpart of the
// pump's in-flight coalescing — the pump collapses duplicate engine
// calls within a process, flightGroup collapses duplicate peer-cache
// HTTP fetches.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when the leader finishes
	rows []types.Tuple
	ok   bool
	dups int64
}

// Do runs fn for key, unless an identical call is already in flight, in
// which case it waits for that call and returns its result. shared
// reports whether the result came from another caller's execution.
func (g *flightGroup) Do(key string, fn func() ([]types.Tuple, bool)) (rows []types.Tuple, ok, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, inflight := g.m[key]; inflight {
		c.dups++
		g.mu.Unlock()
		<-c.done
		return c.rows, c.ok, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.rows, c.ok = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.rows, c.ok, false
}
