package shard

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/types"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Workers: []Member{{ID: "a", URL: "http://a"}, {ID: "b", URL: "http://b"}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Config{
		{},
		{Workers: []Member{{ID: "", URL: "http://a"}}},
		{Workers: []Member{{ID: "a", URL: ""}}},
		{Workers: []Member{{ID: "a", URL: "http://a"}, {ID: "a", URL: "http://b"}}},
		{Workers: []Member{{ID: "a", URL: "http://a"}}, Budgets: map[string]int{"altavista": 0}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestLoadConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tier.json")
	body := `{"workers":[{"id":"w1","url":"http://h1"},{"id":"w2","url":"http://h2"}],
	          "vnodes":16,"budgets":{"altavista":8}}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Workers) != 2 || cfg.VNodes != 16 || cfg.Budgets["altavista"] != 8 {
		t.Errorf("bad parse: %+v", cfg)
	}
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSplitBudget(t *testing.T) {
	cases := []struct{ budget, n, want int }{
		{8, 2, 4}, {8, 3, 3}, {1, 4, 1}, {0, 2, 1}, {5, 0, 5},
	}
	for _, c := range cases {
		if got := SplitBudget(c.budget, c.n); got != c.want {
			t.Errorf("SplitBudget(%d, %d) = %d, want %d", c.budget, c.n, got, c.want)
		}
	}
}

// TestRouteKeyAffinity: queries differing only in constants that do not
// touch the web calls still route by their search literals, and literal
// order must not matter — affinity is what makes the tier cache useful.
func TestRouteKey(t *testing.T) {
	a := RouteKey(`SELECT Name FROM States, WebCount WHERE Name = T1 AND T2 = 'crime'`)
	b := RouteKey(`select name from states, webcount where name = T1 AND T2 = 'crime'`)
	if a != b {
		t.Errorf("same literals, different keys:\n%q\n%q", a, b)
	}
	c := RouteKey(`SELECT Name FROM States, WebCount WHERE T2 = 'crime' AND Name = T1`)
	if a != c {
		t.Errorf("literal position changed the key:\n%q\n%q", a, c)
	}
	d := RouteKey(`SELECT Name FROM States, WebCount WHERE Name = T1 AND T2 = 'education'`)
	if a == d {
		t.Error("different search terms must route independently")
	}
	// No literals: normalized-SQL fallback, stable under whitespace.
	e := RouteKey("SELECT * FROM States")
	f := RouteKey("  select *\n FROM  states ")
	if e != f {
		t.Errorf("fallback key unstable: %q vs %q", e, f)
	}
	// Unlexable input must still produce some deterministic key.
	if RouteKey("💥 !@#") != RouteKey("💥   !@#") {
		t.Error("fallback key for unlexable input unstable")
	}
}

func TestFlightGroupCollapses(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	gate := make(chan struct{})
	const n = 16

	var wg sync.WaitGroup
	shared := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows, ok, sh := g.Do("k", func() ([]types.Tuple, bool) {
				calls.Add(1)
				<-gate
				return []types.Tuple{{types.Int(42)}}, true
			})
			if !ok || rows[0][0].I != 42 {
				t.Errorf("caller %d got wrong result: %v %v", i, rows, ok)
			}
			shared[i] = sh
		}(i)
	}
	// Wait until one leader is inside fn and all n-1 others are parked on
	// it (visible as the in-flight call's dup count) before releasing it.
	for {
		g.mu.Lock()
		var dups int64
		if c := g.m["k"]; c != nil {
			dups = c.dups
		}
		g.mu.Unlock()
		if dups == n-1 {
			break
		}
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	nShared := 0
	for _, s := range shared {
		if s {
			nShared++
		}
	}
	if nShared != n-1 {
		t.Errorf("shared count = %d, want %d", nShared, n-1)
	}

	// After completion the group is empty: a new Do runs fn again.
	_, _, sh := g.Do("k", func() ([]types.Tuple, bool) {
		calls.Add(1)
		return nil, false
	})
	if sh || calls.Load() != 2 {
		t.Errorf("post-flight Do should execute fresh (shared=%v calls=%d)", sh, calls.Load())
	}
}
