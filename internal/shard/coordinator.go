package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/profile"
)

// CoordinatorOptions tunes the tier front door.
type CoordinatorOptions struct {
	// ConfigPath is re-read by Reload (SIGHUP / POST /admin/reload).
	// Empty disables reload.
	ConfigPath string
	// MaxAttempts caps how many distinct workers one query may try
	// (default 3, clamped to the live worker count).
	MaxAttempts int
	// MaxBodyBytes bounds a buffered query body (default 1 MiB); the
	// body must be buffered so a failed attempt can be replayed on the
	// next worker.
	MaxBodyBytes int64
	// Node names this coordinator in stitched traces and merged profiles
	// (default "coord").
	Node string
	// TraceSampleEvery head-samples 1 in N queries that did not ask for
	// a trace themselves (0 disables head sampling).
	TraceSampleEvery int
	// ProfileFetchTimeout bounds each worker /profiles fetch when serving
	// the merged tier view (default 2s).
	ProfileFetchTimeout time.Duration
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.Node == "" {
		o.Node = "coord"
	}
	if o.ProfileFetchTimeout <= 0 {
		o.ProfileFetchTimeout = 2 * time.Second
	}
	return o
}

// Coordinator is the tier's front door: it accepts the ordinary wsqd
// HTTP/JSON query API and routes each query to a worker chosen by
// consistent-hashing its RouteKey, so queries with the same search
// expressions always land where their cache entries live. Worker
// failures (connection errors, 5xx) fail over along the ring's
// successor list — the coordinator itself never originates a 500.
type Coordinator struct {
	opt     CoordinatorOptions
	client  *http.Client
	sampler *obs.Sampler
	traces  *obs.TraceSink

	mu      sync.Mutex
	cfg     Config
	live    *Ring
	drained map[string]bool

	// counters
	queries   atomic.Int64
	reroutes  atomic.Int64
	exhausted atomic.Int64
	badBodies atomic.Int64
	drains    atomic.Int64
	reloads   atomic.Int64
}

// NewCoordinator builds a coordinator over a validated tier config.
func NewCoordinator(cfg Config, opt CoordinatorOptions) *Coordinator {
	return &Coordinator{
		opt:     opt.withDefaults(),
		sampler: obs.NewSampler(opt.TraceSampleEvery),
		traces:  obs.NewTraceSink(0, 0),
		cfg:     cfg,
		live:    NewRing(cfg.Workers, cfg.vnodes()),
		drained: make(map[string]bool),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     30 * time.Second,
		}},
	}
}

// Close releases pooled connections.
func (c *Coordinator) Close() { c.client.CloseIdleConnections() }

// ring returns the current live membership view.
func (c *Coordinator) ring() *Ring {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live
}

// Live returns the live (non-drained) members in ID order.
func (c *Coordinator) Live() []Member { return c.ring().Members() }

// Sync pushes the coordinator's view to every live worker: first the
// membership (so peer rings agree), then each engine budget split
// ceil(budget/N) ways. Call once at startup and after any membership
// change.
func (c *Coordinator) Sync(ctx context.Context) error {
	members := c.Live()
	c.mu.Lock()
	vnodes := c.cfg.vnodes()
	budgets := make(map[string]int, len(c.cfg.Budgets))
	for d, b := range c.cfg.Budgets {
		budgets[d] = b
	}
	c.mu.Unlock()

	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, m := range members {
		keep(c.postJSON(ctx, m.URL+"/shard/membership", membershipRequest{Workers: members, VNodes: vnodes}))
	}
	if len(budgets) > 0 && len(members) > 0 {
		limits := make(map[string]int, len(budgets))
		for dest, total := range budgets {
			limits[dest] = SplitBudget(total, len(members))
		}
		for _, m := range members {
			keep(c.postJSON(ctx, m.URL+"/shard/limits", limitsRequest{Limits: limits}))
		}
	}
	return firstErr
}

// Reload re-reads the config file, rebuilds the live ring (still
// excluding drained workers), and re-syncs the tier. Wired to SIGHUP
// and POST /admin/reload in cmd/wsqd.
func (c *Coordinator) Reload(ctx context.Context) error {
	if c.opt.ConfigPath == "" {
		return fmt.Errorf("coordinator: no config path to reload")
	}
	cfg, err := LoadConfig(c.opt.ConfigPath)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.cfg = cfg
	liveMembers := make([]Member, 0, len(cfg.Workers))
	for _, m := range cfg.Workers {
		if !c.drained[m.ID] {
			liveMembers = append(liveMembers, m)
		}
	}
	c.live = NewRing(liveMembers, cfg.vnodes())
	c.mu.Unlock()
	c.reloads.Add(1)
	return c.Sync(ctx)
}

// Drain gracefully removes a worker: take it off the live ring, tell
// every worker (including the leaving one) about the new membership,
// re-split the budgets across the survivors, then ask the worker to
// drain — it finishes in-flight queries and hands its hot cache keys to
// their new homes. Queries arriving meanwhile route to the survivors.
func (c *Coordinator) Drain(ctx context.Context, id string) (handedOff int, err error) {
	c.mu.Lock()
	m, ok := c.cfg.Member(id)
	if !ok {
		c.mu.Unlock()
		return 0, fmt.Errorf("coordinator: unknown worker %q", id)
	}
	if c.drained[id] {
		c.mu.Unlock()
		return 0, fmt.Errorf("coordinator: worker %q already drained", id)
	}
	if c.live.Len() <= 1 {
		c.mu.Unlock()
		return 0, fmt.Errorf("coordinator: refusing to drain the last worker")
	}
	c.drained[id] = true
	c.live = c.live.Without(id)
	c.mu.Unlock()
	c.drains.Add(1)

	// The leaving worker needs the self-excluding view too, so its
	// handoff targets resolve to the survivors.
	members := c.Live()
	c.mu.Lock()
	vnodes := c.cfg.vnodes()
	c.mu.Unlock()
	if err := c.postJSON(ctx, m.URL+"/shard/membership", membershipRequest{Workers: members, VNodes: vnodes}); err != nil {
		return 0, fmt.Errorf("coordinator: pushing membership to draining worker: %w", err)
	}
	if err := c.Sync(ctx); err != nil {
		return 0, err
	}

	var resp drainResponse
	if err := c.postJSONResp(ctx, m.URL+"/shard/drain", struct{}{}, &resp); err != nil {
		return 0, fmt.Errorf("coordinator: drain of %s: %w", id, err)
	}
	return resp.HandedOff, nil
}

func (c *Coordinator) postJSON(ctx context.Context, url string, body any) error {
	return c.postJSONResp(ctx, url, body, nil)
}

func (c *Coordinator) postJSONResp(ctx context.Context, url string, body, out any) error {
	if ctx == nil {
		ctx = context.Background()
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// Handler returns the coordinator's HTTP surface: /query (routed),
// /healthz, /statusz, /admin/drain?id=, /admin/reload.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", c.handleQuery)
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(rw, "ok")
	})
	mux.HandleFunc("/statusz", c.handleStatusz)
	mux.HandleFunc("/admin/drain", c.handleAdminDrain)
	mux.HandleFunc("/admin/reload", c.handleAdminReload)
	mux.Handle("/debug/traces", c.traces)
	mux.Handle("/profiles", profile.Handler(func() *profile.Snapshot {
		return c.mergedSnapshot(nil)
	}))
	return mux
}

// TraceSink exposes the coordinator's stitched-trace ring (tests and
// tooling read it back via /debug/traces).
func (c *Coordinator) TraceSink() *obs.TraceSink { return c.traces }

// mergedSnapshot fetches every live worker's profile snapshot and merges
// them into one tier-wide view — the coordinator keeps no engine profile
// of its own, it aggregates the workers'. Unreachable workers are simply
// absent from the merge (the tier view degrades, it does not fail).
func (c *Coordinator) mergedSnapshot(ctx context.Context) *profile.Snapshot {
	if ctx == nil {
		ctx = context.Background()
	}
	members := c.Live()
	snaps := make([]*profile.Snapshot, 0, len(members))
	for _, m := range members {
		fctx, cancel := context.WithTimeout(ctx, c.opt.ProfileFetchTimeout)
		var s profile.Snapshot
		err := c.getJSON(fctx, m.URL+"/profiles?format=snapshot", &s)
		cancel()
		if err == nil {
			snaps = append(snaps, &s)
		}
	}
	return profile.MergeSnapshots(c.opt.Node, snaps...)
}

func (c *Coordinator) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// handleQuery routes one query. The body is buffered so the same query
// can replay on the next preference-list worker after a connection error
// or retryable 5xx; a worker dying mid-query therefore costs one hop,
// never a client-visible 500.
//
// When the query is traced — the client asked (?trace=1 / "trace":true),
// an upstream propagated a sampled traceparent, or head sampling fired —
// the coordinator mints the tier-wide identity, forwards it to every
// worker attempt as a traceparent header, and stitches the winning
// worker's span tree (shipped back in its JSON response) under its own
// routing timeline: one tree, one trace id, covering both processes and
// every failover hop.
func (c *Coordinator) handleQuery(rw http.ResponseWriter, r *http.Request) {
	c.queries.Add(1)
	sql, body, wantTrace, ok := c.readQuery(rw, r)
	if !ok {
		return
	}

	var tc *obs.TraceCtx
	if h := r.Header.Get(obs.TraceparentHeader); h != "" {
		if tid, _, sampled, err := obs.ParseTraceparent(h); err == nil && sampled {
			tc = &obs.TraceCtx{TraceID: tid, Sampled: true}
		}
	}
	if tc == nil && (wantTrace || c.sampler.Sample()) {
		tc = obs.NewTraceCtx()
	}
	start := time.Now()
	var root *obs.SpanJSON
	traceparent := ""
	if tc != nil {
		root = &obs.SpanJSON{Op: "coord.query", Detail: sqlForTrace(sql), Node: c.opt.Node}
		traceparent = tc.Traceparent("")
	}
	finish := func(errMsg string) {
		if root == nil {
			return
		}
		elapsed := time.Since(start)
		root.DurUS = float64(elapsed.Microseconds())
		root.SelfUS = root.DurUS
		for _, a := range root.Children {
			root.SelfUS -= a.DurUS
		}
		if root.SelfUS < 0 {
			root.SelfUS = 0
		}
		c.traces.Add(&obs.StoredTrace{
			TraceID:   tc.TraceID,
			SQL:       sqlForTrace(sql),
			Node:      c.opt.Node,
			StartedAt: start,
			ElapsedMS: float64(elapsed.Microseconds()) / 1000.0,
			Error:     errMsg,
			Root:      root,
		})
	}

	attempts := c.opt.MaxAttempts
	targets := c.ring().Successors(RouteKey(sql), attempts)
	if len(targets) == 0 {
		c.exhausted.Add(1)
		finish("no live workers")
		writeUnavailable(rw, "no live workers")
		return
	}

	for i, m := range targets {
		if i > 0 {
			c.reroutes.Add(1)
		}
		attemptStart := time.Now()
		status, hdr, respBody, err := c.forward(r.Context(), m.URL+"/query", r.Header.Get("Content-Type"), body, traceparent)
		var att *obs.SpanJSON
		if root != nil {
			att = &obs.SpanJSON{
				Op:      "coord.attempt",
				Detail:  m.ID,
				Node:    c.opt.Node,
				StartUS: float64(attemptStart.Sub(start).Microseconds()),
				DurUS:   float64(time.Since(attemptStart).Microseconds()),
			}
			att.SelfUS = att.DurUS
			switch {
			case err != nil:
				att.Detail = m.ID + " error"
			case status != http.StatusOK:
				att.Detail = fmt.Sprintf("%s status %d", m.ID, status)
			}
			root.Children = append(root.Children, att)
		}
		if err != nil {
			if r.Context().Err() != nil {
				finish("canceled: " + r.Context().Err().Error())
				writeUnavailable(rw, "canceled: "+r.Context().Err().Error())
				return
			}
			continue // connection-level failure: next worker
		}
		if retryableStatus(status) && i < len(targets)-1 {
			continue
		}
		if status >= 500 && status != http.StatusGatewayTimeout && status != http.StatusServiceUnavailable {
			// Never propagate a worker's 500-class surprise as-is; the
			// client sees a retryable unavailable instead.
			c.exhausted.Add(1)
			finish(fmt.Sprintf("worker %s failed (status %d)", m.ID, status))
			writeUnavailable(rw, fmt.Sprintf("worker %s failed (status %d)", m.ID, status))
			return
		}
		if root != nil && status == http.StatusOK {
			respBody = c.stitchResponse(respBody, root, att, m.ID, tc.TraceID, wantTrace)
		}
		errMsg := ""
		if status != http.StatusOK {
			errMsg = fmt.Sprintf("status %d", status)
		}
		finish(errMsg)
		copyResponse(rw, status, hdr, respBody)
		return
	}
	c.exhausted.Add(1)
	finish("all workers unavailable")
	writeUnavailable(rw, "all workers unavailable")
}

// sqlForTrace bounds the SQL text stored with a trace.
func sqlForTrace(sql string) string {
	if len(sql) > 200 {
		return sql[:200] + "…"
	}
	return sql
}

// stitchResponse grafts the worker's span tree (the "trace" field of its
// JSON response) under the winning attempt span, stamps the tier trace
// id, and re-encodes. The response "trace" field carries the stitched
// tree only when the client asked for one — head-sampled trees stay
// server-side in /debug/traces. Any decode failure returns the body
// unchanged: stitching must never break query results.
func (c *Coordinator) stitchResponse(respBody []byte, root, att *obs.SpanJSON, workerID, traceID string, wantTrace bool) []byte {
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(respBody, &fields); err != nil {
		return respBody
	}
	if raw, ok := fields["trace"]; ok {
		var wt obs.SpanJSON
		if err := json.Unmarshal(raw, &wt); err == nil {
			if wt.Node == "" {
				wt.Node = workerID
			}
			att.Graft(&wt, workerID)
			// The worker's execution nests inside the attempt's round trip;
			// the attempt's self time shrinks to the network overhead.
			if att.SelfUS -= wt.DurUS; att.SelfUS < 0 {
				att.SelfUS = 0
			}
		}
		delete(fields, "trace")
	}
	// The root's duration isn't final until finish(); the client-visible
	// tree closes it out at the last attempt's end instead.
	if wantTrace {
		last := root.Children[len(root.Children)-1]
		root.DurUS = last.StartUS + last.DurUS
		if buf, err := json.Marshal(root); err == nil {
			fields["trace"] = buf
		}
	}
	if buf, err := json.Marshal(traceID); err == nil {
		fields["trace_id"] = buf
	}
	out, err := json.Marshal(fields)
	if err != nil {
		return respBody
	}
	return out
}

// readQuery extracts the SQL (for routing), the replayable body, and
// whether the client asked for a trace, from either the POST JSON or the
// GET ?q= form, normalizing to the POST form.
func (c *Coordinator) readQuery(rw http.ResponseWriter, r *http.Request) (sql string, body []byte, wantTrace, ok bool) {
	if r.Method == http.MethodGet {
		q := r.URL.Query().Get("q")
		if q == "" {
			c.badBodies.Add(1)
			http.Error(rw, "missing q parameter", http.StatusBadRequest)
			return "", nil, false, false
		}
		req := map[string]any{"sql": q}
		if r.URL.Query().Get("trace") == "1" {
			req["trace"] = true
			wantTrace = true
		}
		buf, err := json.Marshal(req)
		if err != nil {
			c.badBodies.Add(1)
			http.Error(rw, "bad query", http.StatusBadRequest)
			return "", nil, false, false
		}
		return q, buf, wantTrace, true
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, c.opt.MaxBodyBytes))
	if err != nil {
		c.badBodies.Add(1)
		http.Error(rw, "unreadable body", http.StatusBadRequest)
		return "", nil, false, false
	}
	var req struct {
		SQL   string `json:"sql"`
		Trace bool   `json:"trace"`
	}
	if err := json.Unmarshal(raw, &req); err != nil || req.SQL == "" {
		c.badBodies.Add(1)
		http.Error(rw, "body must be JSON with a sql field", http.StatusBadRequest)
		return "", nil, false, false
	}
	return req.SQL, raw, req.Trace, true
}

// forward replays one buffered query against one worker. A non-empty
// traceparent rides along so the worker joins the tier-wide trace.
func (c *Coordinator) forward(ctx context.Context, url, contentType string, body []byte, traceparent string) (int, http.Header, []byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	if contentType == "" {
		contentType = "application/json"
	}
	req.Header.Set("Content-Type", contentType)
	if traceparent != "" {
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

// retryableStatus: statuses where the same query may succeed elsewhere.
// 503 is the draining/overload signal; 500/502 cover a worker dying
// behind a proxy. 504 (deadline) is NOT retryable — the client's time
// budget is spent.
func retryableStatus(status int) bool {
	return status == http.StatusServiceUnavailable ||
		status == http.StatusInternalServerError ||
		status == http.StatusBadGateway
}

func writeUnavailable(rw http.ResponseWriter, msg string) {
	rw.Header().Set("Content-Type", "application/json")
	rw.Header().Set("Retry-After", "1")
	rw.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(rw).Encode(map[string]string{"error": msg})
}

func copyResponse(rw http.ResponseWriter, status int, hdr http.Header, body []byte) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		rw.Header().Set("Content-Type", ct)
	}
	rw.WriteHeader(status)
	rw.Write(body)
}

func (c *Coordinator) handleAdminDrain(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(rw, "missing id parameter", http.StatusBadRequest)
		return
	}
	handed, err := c.Drain(r.Context(), id)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusConflict)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(map[string]any{"drained": id, "handed_off": handed})
}

func (c *Coordinator) handleAdminReload(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if err := c.Reload(r.Context()); err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(map[string]string{"reloaded": "ok"})
}

// coordStatus is the /statusz JSON shape.
type coordStatus struct {
	Live      []Member       `json:"live"`
	Drained   []string       `json:"drained"`
	Budgets   map[string]int `json:"budgets,omitempty"`
	PerWorker map[string]int `json:"per_worker_limits,omitempty"`
	Queries   int64          `json:"queries"`
	Reroutes  int64          `json:"reroutes"`
	Exhausted int64          `json:"exhausted"`
	Drains    int64          `json:"drains"`
	Reloads   int64          `json:"reloads"`
}

func (c *Coordinator) handleStatusz(rw http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	st := coordStatus{
		Live:    c.live.Members(),
		Budgets: c.cfg.Budgets,
	}
	for id := range c.drained {
		st.Drained = append(st.Drained, id)
	}
	if n := c.live.Len(); n > 0 && len(c.cfg.Budgets) > 0 {
		st.PerWorker = make(map[string]int, len(c.cfg.Budgets))
		for dest, total := range c.cfg.Budgets {
			st.PerWorker[dest] = SplitBudget(total, n)
		}
	}
	c.mu.Unlock()
	sort.Strings(st.Drained)
	st.Queries = c.queries.Load()
	st.Reroutes = c.reroutes.Load()
	st.Exhausted = c.exhausted.Load()
	st.Drains = c.drains.Load()
	st.Reloads = c.reloads.Load()
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(st)
}

// Observe registers the coordinator's counters with an obs registry.
func (c *Coordinator) Observe(reg *obs.Registry) {
	reg.CounterFunc("wsq_coord_queries_total",
		"Queries accepted by the coordinator.",
		func() float64 { return float64(c.queries.Load()) })
	reg.CounterFunc("wsq_coord_reroutes_total",
		"Query attempts failed over to the next ring successor.",
		func() float64 { return float64(c.reroutes.Load()) })
	reg.CounterFunc("wsq_coord_exhausted_total",
		"Queries answered 503 after every candidate worker failed.",
		func() float64 { return float64(c.exhausted.Load()) })
	reg.CounterFunc("wsq_coord_drains_total",
		"Workers drained out of the tier.",
		func() float64 { return float64(c.drains.Load()) })
	reg.CounterFunc("wsq_coord_reloads_total",
		"Config reloads applied (SIGHUP or /admin/reload).",
		func() float64 { return float64(c.reloads.Load()) })
	reg.GaugeFunc("wsq_coord_live_workers",
		"Workers currently on the live ring.",
		func() float64 { return float64(c.ring().Len()) })
}
