package shard

import (
	"fmt"
	"sort"
)

// Ring is an immutable consistent-hash ring over tier members. Each
// member contributes vnodes points (hashed "id#i") on a 64-bit circle;
// a key belongs to the first point clockwise from its hash. Immutability
// keeps lookups lock-free — membership changes build a new Ring and swap
// the pointer at a higher layer.
type Ring struct {
	points  []ringPoint // sorted by hash
	members map[string]Member
	vnodes  int
}

type ringPoint struct {
	hash uint64
	id   string
}

// fnv64a is FNV-1a with a 64-bit avalanche finalizer, inlined so key
// hashing allocates nothing. Raw FNV clusters short, similar inputs
// ("w1#0", "w2#0", ...) in the high bits that order the ring, which
// skews ownership badly; the finalizer spreads them uniformly.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRing builds a ring with the given virtual-node count per member
// (0 selects DefaultVNodes). An empty member list yields an empty ring
// whose lookups report !ok.
func NewRing(members []Member, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		points:  make([]ringPoint, 0, len(members)*vnodes),
		members: make(map[string]Member, len(members)),
		vnodes:  vnodes,
	}
	for _, m := range members {
		r.members[m.ID] = m
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: fnv64a(fmt.Sprintf("%s#%d", m.ID, i)),
				id:   m.ID,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on member ID so equal hashes order deterministically.
		return r.points[i].id < r.points[j].id
	})
	return r
}

// Len returns the number of members on the ring.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the ring membership in ID order.
func (r *Ring) Members() []Member {
	out := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Has reports whether a member is on the ring.
func (r *Ring) Has(id string) bool {
	_, ok := r.members[id]
	return ok
}

// Owner returns the member owning key: the first ring point at or after
// the key's hash, wrapping at the top of the circle.
func (r *Ring) Owner(key string) (Member, bool) {
	if len(r.points) == 0 {
		return Member{}, false
	}
	h := fnv64a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].id], true
}

// Successors returns up to n distinct members in preference order for
// key, starting with the owner and walking clockwise. This is the
// coordinator's failover list: if the owner is unreachable, the next
// distinct member takes the query.
func (r *Ring) Successors(key string, n int) []Member {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := fnv64a(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]Member, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.id] {
			continue
		}
		seen[p.id] = true
		out = append(out, r.members[p.id])
	}
	return out
}

// Without returns a new ring excluding the given member — the live view
// after a drain. The receiver is unchanged.
func (r *Ring) Without(id string) *Ring {
	rest := make([]Member, 0, len(r.members))
	for _, m := range r.Members() {
		if m.ID != id {
			rest = append(rest, m)
		}
	}
	return NewRing(rest, r.vnodes)
}
