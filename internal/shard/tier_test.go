package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs/profile"
	"repro/internal/search"
	"repro/internal/server"
	"repro/internal/websim"
)

// tierNode is one complete wsqd worker: its own DB, engines, metrics
// registry, peer client, and shard-protocol wrapper, on a live listener.
type tierNode struct {
	id     string
	db     *core.DB
	peers  *Peers
	worker *Worker
	srv    *httptest.Server
}

// tierEnv is a loopback tier: n workers plus a coordinator.
type tierEnv struct {
	nodes []*tierNode
	coord *Coordinator
	csrv  *httptest.Server
	cfg   Config
}

// startTier builds an n-worker loopback tier wired exactly like
// cmd/wsqd's worker and coordinator modes: pump peering attached, shard
// metrics on each worker's registry, membership and budgets pushed by
// the coordinator.
func startTier(t *testing.T, n int, model search.LatencyModel, budgets map[string]int) *tierEnv {
	t.Helper()
	env := &tierEnv{}
	corpus := websim.Default()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("w%d", i+1)
		db, err := core.Open(core.Config{
			Dir:                t.TempDir(),
			Async:              true,
			CacheSize:          256,
			MaxConcurrentCalls: 8,
			MaxCallsPerDest:    8,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		db.RegisterEngine(search.NewDelayed(websim.NewAltaVista(corpus), model, int64(i+1)), "AV")
		db.RegisterEngine(search.NewDelayed(websim.NewGoogle(corpus), model, int64(i+100)), "G")
		if err := harness.LoadPaperTables(context.Background(), db); err != nil {
			t.Fatal(err)
		}
		peers := NewPeers(id, Config{}, PeerOptions{WaitMS: 250})
		t.Cleanup(peers.Close)
		db.Pump().SetCachePeer(peers)
		w := NewWorker(WorkerOptions{
			ID:        id,
			Inner:     server.New(db, server.Options{Node: id, Profiles: profile.NewStore(id)}),
			Cache:     db.Cache(),
			Pump:      db.Pump(),
			Peers:     peers,
			DrainPoll: 2 * time.Millisecond,
		})
		peers.Observe(db.Metrics())
		w.Observe(db.Metrics())
		srv := httptest.NewServer(w)
		t.Cleanup(srv.Close)
		env.nodes = append(env.nodes, &tierNode{id: id, db: db, peers: peers, worker: w, srv: srv})
	}

	var members []Member
	for _, nd := range env.nodes {
		members = append(members, Member{ID: nd.id, URL: nd.srv.URL})
	}
	env.cfg = Config{Workers: members, VNodes: 32, Budgets: budgets}
	env.coord = NewCoordinator(env.cfg, CoordinatorOptions{})
	t.Cleanup(env.coord.Close)
	if err := env.coord.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	env.csrv = httptest.NewServer(env.coord.Handler())
	t.Cleanup(env.csrv.Close)
	return env
}

// query runs one SQL statement through the coordinator and returns the
// HTTP status (plus the decoded row count on 200).
func (e *tierEnv) query(t *testing.T, sql string) (int, int) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"sql": sql})
	resp, err := http.Post(e.csrv.URL+"/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("query via coordinator: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, 0
	}
	var out struct {
		Rows [][]any `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, len(out.Rows)
}

func template1(term string) string {
	return fmt.Sprintf(`SELECT Name, Count FROM States, WebCount
		WHERE Name = T1 AND T2 = '%s' ORDER BY Count DESC LIMIT 3`, term)
}

// termsCoveringWorkers picks search terms whose RouteKeys spread across
// every worker, so the test provably exercises cross-node traffic. The
// ring is deterministic, so this always converges quickly.
func termsCoveringWorkers(t *testing.T, env *tierEnv, per int) []string {
	t.Helper()
	ring := env.coord.ring()
	byWorker := make(map[string][]string)
	candidates := []string{
		"crime", "scuba diving", "education", "parks", "taxes", "beaches",
		"mountains", "museums", "energy", "farming", "lakes", "history",
	}
	for _, term := range candidates {
		m, ok := ring.Owner(RouteKey(template1(term)))
		if !ok {
			t.Fatal("empty ring")
		}
		if len(byWorker[m.ID]) < per {
			byWorker[m.ID] = append(byWorker[m.ID], term)
		}
	}
	var terms []string
	for _, nd := range env.nodes {
		got := byWorker[nd.id]
		if len(got) == 0 {
			t.Fatalf("no candidate term routes to %s; widen the candidate list", nd.id)
		}
		terms = append(terms, got...)
	}
	return terms
}

// template1Decoy keeps the web expression (and therefore every pump
// cache key) identical to template1(term) while adding a decoy literal
// that only filters States — changing the query's RouteKey. This is the
// same-web-work-different-SQL shape (think: same search term behind
// different relational filters) that makes the cache tier-wide useful.
func template1Decoy(term, decoy string) string {
	return fmt.Sprintf(`SELECT Name, Count FROM States, WebCount
		WHERE Name = T1 AND T2 = '%s' AND Name <> '%s' ORDER BY Count DESC LIMIT 3`, term, decoy)
}

// crossNodePair returns two queries with identical WebCount calls that
// the ring assigns to different workers (deterministic: the ring and
// RouteKey are both hash-stable).
func crossNodePair(t *testing.T, env *tierEnv, term string) (string, string) {
	t.Helper()
	ring := env.coord.ring()
	base := template1(term)
	home, ok := ring.Owner(RouteKey(base))
	if !ok {
		t.Fatal("empty ring")
	}
	for i := 0; i < 200; i++ {
		alt := template1Decoy(term, fmt.Sprintf("no-such-state-%d", i))
		if m, _ := ring.Owner(RouteKey(alt)); m.ID != home.ID {
			return base, alt
		}
	}
	t.Fatal("no decoy variant routed off the base worker in 200 tries")
	return "", ""
}

// TestTierCrossNodeCacheHits is the tentpole acceptance test: two
// queries with identical web expressions but different route keys land
// on different workers, so the second worker's pump misses are served by
// the first worker's cache over the peering protocol — visible on the
// pump (peer hits), on the home shard (remote get hits), and on /metrics.
func TestTierCrossNodeCacheHits(t *testing.T) {
	env := startTier(t, 2, search.ZeroLatency(), map[string]int{"altavista": 8})
	base, alt := crossNodePair(t, env, "crime")
	for _, q := range []string{base, alt} {
		code, rows := env.query(t, q)
		if code != http.StatusOK || rows == 0 {
			t.Fatalf("query %q: status=%d rows=%d", q, code, rows)
		}
	}

	var peerHits, remoteHits, fillsRecv int64
	for _, nd := range env.nodes {
		peerHits += nd.db.Pump().Stats().PeerHits
		st := nd.worker.Stats()
		remoteHits += st.RemoteHits
		fillsRecv += st.FillsRecv
	}
	if peerHits == 0 {
		t.Error("no pump peer hits: the tier cache never served a cross-node miss")
	}
	if remoteHits == 0 {
		t.Error("no remote get hits: no worker served its cache to a peer")
	}
	t.Logf("tier traffic: peerHits=%d remoteHits=%d fillsRecv=%d", peerHits, remoteHits, fillsRecv)

	// The acceptance criterion is the counter on /metrics, so scrape it.
	var scraped strings.Builder
	for _, nd := range env.nodes {
		resp, err := http.Get(nd.srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		scraped.Write(b)
	}
	seen, nonzero := false, false
	for _, line := range strings.Split(scraped.String(), "\n") {
		if !strings.HasPrefix(line, "wsq_shard_remote_get_hits_total ") {
			continue
		}
		seen = true
		if strings.TrimSpace(strings.TrimPrefix(line, "wsq_shard_remote_get_hits_total")) != "0" {
			nonzero = true
		}
	}
	if !seen {
		t.Error("wsq_shard_remote_get_hits_total missing from /metrics")
	} else if !nonzero {
		t.Error("all workers report zero cross-node cache hits on /metrics")
	}
}

// TestTierIdenticalQueriesOneEngineCall: the same query sent repeatedly
// routes to the same worker and is served from cache after the first
// execution — the tier preserves the paper's single-node caching story.
func TestTierIdenticalQueriesOneEngineCall(t *testing.T) {
	env := startTier(t, 2, search.ZeroLatency(), nil)
	q := template1("crime")
	for i := 0; i < 3; i++ {
		if code, rows := env.query(t, q); code != http.StatusOK || rows == 0 {
			t.Fatalf("round %d: status=%d rows=%d", i, code, rows)
		}
	}
	var started, hits int64
	for _, nd := range env.nodes {
		st := nd.db.Pump().Stats()
		started += st.Started
		hits += st.CacheHits
	}
	// 50 state bindings → ≤ 50 engine calls on the first run; repeats must
	// add none (3 runs of the same query would otherwise triple it).
	if started > 50 {
		t.Errorf("engine executions = %d; repeats re-executed instead of hitting the cache", started)
	}
	if hits == 0 {
		t.Error("no cache hits across the tier for identical queries")
	}
}

// TestTierBudgetSplitReachesWorkers: coordinator Sync pushes
// ceil(budget/N) to every worker's pump, and re-splits after a drain.
func TestTierBudgetSplitReachesWorkers(t *testing.T) {
	env := startTier(t, 2, search.ZeroLatency(), map[string]int{"altavista": 6})
	// Sync ran in startTier: each worker's altavista limit is now 3. The
	// pump exposes limits only behaviorally; assert via statusz shape
	// instead: per-worker split advertised by the coordinator.
	resp, err := http.Get(env.csrv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st coordStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.PerWorker["altavista"] != 3 {
		t.Errorf("per-worker split = %d, want 3", st.PerWorker["altavista"])
	}
	if len(st.Live) != 2 {
		t.Errorf("live = %v", st.Live)
	}

	if _, err := env.coord.Drain(context.Background(), "w1"); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(env.csrv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.PerWorker["altavista"] != 6 {
		t.Errorf("post-drain split = %d, want 6 (whole budget to the survivor)", st.PerWorker["altavista"])
	}
	if len(st.Live) != 1 || st.Live[0].ID != "w2" {
		t.Errorf("post-drain live = %v", st.Live)
	}
}

// TestTierDrainZeroFailures is the drain acceptance test: while a client
// keeps querying through the coordinator, one worker is drained out.
// Every query must succeed — the coordinator routes around the leaver —
// and the drained worker must hand its hot keys to the survivor.
func TestTierDrainZeroFailures(t *testing.T) {
	env := startTier(t, 2, search.ZeroLatency(), map[string]int{"altavista": 8})
	terms := termsCoveringWorkers(t, env, 2)

	// Warm every term so the drained worker has cache entries to hand off.
	for _, term := range terms {
		if code, _ := env.query(t, template1(term)); code != http.StatusOK {
			t.Fatalf("warmup %q failed", term)
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		statuses = map[int]int{}
	)
	stopDrive := make(chan struct{})
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stopDrive:
					return
				default:
				}
				code, _ := env.query(t, template1(terms[(i+c)%len(terms)]))
				mu.Lock()
				statuses[code]++
				mu.Unlock()
				i++
			}
		}(c)
	}

	time.Sleep(30 * time.Millisecond) // let the drive reach steady state
	handed, err := env.coord.Drain(context.Background(), "w1")
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	time.Sleep(30 * time.Millisecond) // post-drain traffic on the survivor
	close(stopDrive)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	total := 0
	for code, n := range statuses {
		total += n
		if code != http.StatusOK {
			t.Errorf("%d queries failed with status %d during drain", n, code)
		}
	}
	if total == 0 {
		t.Fatal("drive issued no queries")
	}
	if handed == 0 {
		t.Error("drained worker handed off zero hot keys")
	}
	if !env.nodes[0].worker.Draining() {
		t.Error("w1 not marked draining")
	}
	t.Logf("drain: %d queries (all 200), %d keys handed off", total, handed)
}
