package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/types"
)

// Wire types of the cache peering protocol (worker.go serves them).
type cacheGetResponse struct {
	Rows []types.Tuple `json:"rows"`
}

type cacheFillRequest struct {
	Key  string        `json:"key"`
	Rows []types.Tuple `json:"rows"`
}

type limitsRequest struct {
	Limits map[string]int `json:"limits"`
}

type membershipRequest struct {
	Workers []Member `json:"workers"`
	VNodes  int      `json:"vnodes"`
}

type drainResponse struct {
	HandedOff int `json:"handed_off"`
}

// PeerOptions tunes a worker's peer-cache client.
type PeerOptions struct {
	// FetchTimeout bounds one remote cache get (default 2s). It caps the
	// caller's context; peering must never cost more than an engine call.
	FetchTimeout time.Duration
	// FillTimeout bounds one background fill POST (default 2s).
	FillTimeout time.Duration
	// WaitMS is sent with every remote get: how long the home shard may
	// hold the request open for an in-progress fill of the same key
	// before answering "miss" (default 150ms). This is what lets one
	// engine call on any node serve simultaneous misses on every node.
	WaitMS int
	// QueueDepth bounds the asynchronous fill queue (default 256). When
	// full, fills are dropped and counted — losing a cache offer is
	// always safe.
	QueueDepth int
}

func (o PeerOptions) withDefaults() PeerOptions {
	if o.FetchTimeout <= 0 {
		o.FetchTimeout = 2 * time.Second
	}
	if o.FillTimeout <= 0 {
		o.FillTimeout = 2 * time.Second
	}
	if o.WaitMS <= 0 {
		o.WaitMS = 150
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	return o
}

// Peers is a worker's client side of the tier cache: it implements
// async.CachePeer by resolving each key's home shard on the ring and
// speaking the get/fill HTTP protocol to it. Fetches for the same key
// are collapsed through a singleflight group (one HTTP round trip no
// matter how many pump misses race); fills are queued and shipped by a
// background sender so the pump never blocks on peering.
type Peers struct {
	self   string
	opt    PeerOptions
	client *http.Client

	ring   atomic.Pointer[Ring]
	vnodes int

	flight flightGroup

	fillq chan cacheFillRequest
	stop  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once

	// counters (atomic; exposed via Observe and Stats)
	fetchHits   atomic.Int64
	fetchMisses atomic.Int64
	fetchErrors atomic.Int64
	fetchShared atomic.Int64
	selfHome    atomic.Int64
	fillsSent   atomic.Int64
	fillErrors  atomic.Int64
	fillDrops   atomic.Int64
}

// NewPeers builds the peer client for worker self and starts its fill
// sender. Callers must Close it to stop the sender.
func NewPeers(self string, cfg Config, opt PeerOptions) *Peers {
	p := &Peers{
		self:   self,
		opt:    opt.withDefaults(),
		vnodes: cfg.vnodes(),
		stop:   make(chan struct{}),
	}
	p.fillq = make(chan cacheFillRequest, p.opt.QueueDepth)
	p.client = &http.Client{Transport: &http.Transport{
		MaxIdleConns:        32,
		MaxIdleConnsPerHost: 8,
		IdleConnTimeout:     30 * time.Second,
	}}
	p.ring.Store(NewRing(cfg.Workers, p.vnodes))
	p.wg.Add(1)
	go p.runFills()
	return p
}

// Update replaces the membership view (pushed by the coordinator on
// reload or drain). Safe concurrently with Fetch/Fill.
func (p *Peers) Update(members []Member) {
	p.ring.Store(NewRing(members, p.vnodes))
}

// Ring returns the current membership view.
func (p *Peers) Ring() *Ring { return p.ring.Load() }

// Close stops the fill sender and releases idle connections.
func (p *Peers) Close() {
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
	p.client.CloseIdleConnections()
}

// Fetch implements async.CachePeer: on a local cache miss the pump asks
// the key's home shard before spending an engine call. A key homed on
// this worker returns a miss immediately — the local cache was already
// consulted, and the pump's own coalescing covers in-process duplicates.
func (p *Peers) Fetch(ctx context.Context, key string) ([]types.Tuple, bool) {
	owner, onRing := p.ring.Load().Owner(key)
	if !onRing || owner.ID == p.self {
		p.selfHome.Add(1)
		return nil, false
	}
	rows, ok, shared := p.flight.Do(key, func() ([]types.Tuple, bool) {
		return p.fetchFrom(ctx, owner.URL, key)
	})
	if shared {
		p.fetchShared.Add(1)
	}
	if ok {
		p.fetchHits.Add(1)
	} else {
		p.fetchMisses.Add(1)
	}
	return rows, ok
}

// fetchFrom performs one remote cache get against a home shard. When the
// calling query is being traced, the get carries a traceparent header,
// the home shard answers with its handler span (SpanHeader), and the
// whole round trip — local wrapper plus remote child — is handed to the
// trace context for the query root to adopt. (Fills stay untraced: they
// are fire-and-forget background offers with no query to attribute them
// to by the time the sender drains its queue.)
func (p *Peers) fetchFrom(ctx context.Context, base, key string) ([]types.Tuple, bool) {
	tc := obs.SampledTrace(ctx)
	if tc == nil {
		rows, ok, _ := p.doFetch(ctx, base, key, "")
		return rows, ok
	}
	start := time.Now()
	rows, ok, remoteSpan := p.doFetch(ctx, base, key, tc.Traceparent(""))
	sp := &obs.Span{Op: "shard.peer.fetch", Start: start, Dur: time.Since(start)}
	if ok {
		sp.Detail = "hit"
		sp.Rows = int64(len(rows))
	} else {
		sp.Detail = "miss"
	}
	// The remote handler ran inside this round trip, so it nests as a
	// synchronous child: the fetch span's self time becomes pure network
	// plus queueing overhead.
	if remoteSpan != nil {
		sp.AddChild(obs.SpanFromJSON(remoteSpan, start))
	}
	tc.AddRemote(sp)
	return rows, ok
}

// doFetch is the wire half of fetchFrom. A non-empty traceparent is
// attached to the request, and any span the home shard returns in
// SpanHeader is parsed into remoteSpan.
func (p *Peers) doFetch(ctx context.Context, base, key, traceparent string) (rows []types.Tuple, ok bool, remoteSpan *obs.SpanJSON) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, p.opt.FetchTimeout)
	defer cancel()
	u := base + "/shard/cache/get?key=" + url.QueryEscape(key) +
		"&wait_ms=" + strconv.Itoa(p.opt.WaitMS)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		p.fetchErrors.Add(1)
		return nil, false, nil
	}
	if traceparent != "" {
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.fetchErrors.Add(1)
		return nil, false, nil
	}
	defer resp.Body.Close()
	if traceparent != "" {
		if h := resp.Header.Get(SpanHeader); h != "" {
			var sj obs.SpanJSON
			if err := json.Unmarshal([]byte(h), &sj); err == nil {
				remoteSpan = &sj
			}
		}
	}
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode != http.StatusNotFound {
			p.fetchErrors.Add(1)
		}
		return nil, false, remoteSpan
	}
	var out cacheGetResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		p.fetchErrors.Add(1)
		return nil, false, remoteSpan
	}
	return out.Rows, true, remoteSpan
}

// Fill implements async.CachePeer: after computing rows locally, offer
// them to the key's home shard. Never blocks — the offer is queued for
// the background sender, and dropped (counted) if the queue is full.
func (p *Peers) Fill(key string, rows []types.Tuple) {
	owner, onRing := p.ring.Load().Owner(key)
	if !onRing || owner.ID == p.self {
		return // we are home; the pump already stored it locally
	}
	select {
	case p.fillq <- cacheFillRequest{Key: key, Rows: rows}:
	default:
		p.fillDrops.Add(1)
	}
}

// runFills drains the fill queue, resolving each key's current home at
// send time so fills follow membership changes.
func (p *Peers) runFills() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case it := <-p.fillq:
			owner, onRing := p.ring.Load().Owner(it.Key)
			if !onRing || owner.ID == p.self {
				continue
			}
			if err := p.sendFill(nil, owner.URL, it); err != nil {
				p.fillErrors.Add(1)
			} else {
				p.fillsSent.Add(1)
			}
		}
	}
}

// FillTo pushes one cache entry to a specific member — the drain path's
// hot-key handoff, where the target is chosen from the post-drain ring
// rather than the sender's current view.
func (p *Peers) FillTo(ctx context.Context, m Member, key string, rows []types.Tuple) error {
	return p.sendFill(ctx, m.URL, cacheFillRequest{Key: key, Rows: rows})
}

func (p *Peers) sendFill(ctx context.Context, base string, fill cacheFillRequest) error {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, p.opt.FillTimeout)
	defer cancel()
	body, err := json.Marshal(fill)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/shard/cache/fill", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("fill %s: status %d", base, resp.StatusCode)
	}
	return nil
}

// Invalidate removes a key tier-wide: from the local view's home shard
// (and the caller should also drop its own copy).
func (p *Peers) Invalidate(ctx context.Context, key string) error {
	owner, onRing := p.ring.Load().Owner(key)
	if !onRing || owner.ID == p.self {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, p.opt.FillTimeout)
	defer cancel()
	body, err := json.Marshal(map[string]string{"key": key})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner.URL+"/shard/cache/invalidate", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("invalidate: status %d", resp.StatusCode)
	}
	return nil
}

// PeerStats is a point-in-time snapshot of the peering counters.
type PeerStats struct {
	FetchHits   int64 `json:"fetch_hits"`
	FetchMisses int64 `json:"fetch_misses"`
	FetchErrors int64 `json:"fetch_errors"`
	FetchShared int64 `json:"fetch_shared"`
	SelfHome    int64 `json:"self_home"`
	FillsSent   int64 `json:"fills_sent"`
	FillErrors  int64 `json:"fill_errors"`
	FillDrops   int64 `json:"fill_drops"`
}

// Stats snapshots the peering counters.
func (p *Peers) Stats() PeerStats {
	return PeerStats{
		FetchHits:   p.fetchHits.Load(),
		FetchMisses: p.fetchMisses.Load(),
		FetchErrors: p.fetchErrors.Load(),
		FetchShared: p.fetchShared.Load(),
		SelfHome:    p.selfHome.Load(),
		FillsSent:   p.fillsSent.Load(),
		FillErrors:  p.fillErrors.Load(),
		FillDrops:   p.fillDrops.Load(),
	}
}

// Observe registers the peering counters with an obs registry.
func (p *Peers) Observe(reg *obs.Registry) {
	reg.CounterFunc("wsq_shard_peer_fetch_hits_total",
		"Remote cache gets answered by a key's home shard.",
		func() float64 { return float64(p.fetchHits.Load()) })
	reg.CounterFunc("wsq_shard_peer_fetch_misses_total",
		"Remote cache gets that missed at the home shard.",
		func() float64 { return float64(p.fetchMisses.Load()) })
	reg.CounterFunc("wsq_shard_peer_fetch_errors_total",
		"Remote cache gets that failed (network, decode, non-404 status).",
		func() float64 { return float64(p.fetchErrors.Load()) })
	reg.CounterFunc("wsq_shard_peer_fetch_shared_total",
		"Remote cache gets collapsed onto an identical in-flight fetch.",
		func() float64 { return float64(p.fetchShared.Load()) })
	reg.CounterFunc("wsq_shard_peer_fills_sent_total",
		"Locally computed results offered to their home shard.",
		func() float64 { return float64(p.fillsSent.Load()) })
	reg.CounterFunc("wsq_shard_peer_fill_drops_total",
		"Cache offers dropped because the fill queue was full.",
		func() float64 { return float64(p.fillDrops.Load()) })
}
