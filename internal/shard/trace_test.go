package shard

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/search"
)

// tracedQuery runs one SQL statement through the coordinator with
// "trace": true and returns the decoded trace fields.
func (e *tierEnv) tracedQuery(t *testing.T, sql string) (traceID string, root *obs.SpanJSON) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"sql": sql, "trace": true})
	resp, err := http.Post(e.csrv.URL+"/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("traced query: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("traced query: status %d: %s", resp.StatusCode, b)
	}
	var out struct {
		TraceID string        `json:"trace_id"`
		Trace   *obs.SpanJSON `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode traced response: %v", err)
	}
	return out.TraceID, out.Trace
}

// TestTierStitchedTraceWithFailover is the acceptance test for tier-wide
// tracing: a 2-worker tier where the route's first-choice worker rejects
// the query (draining) so the coordinator fails over — and the stitched
// tree must show the whole story under one trace id: the rejected
// attempt, the rerouted attempt, and the surviving worker's execution
// subtree (down to its pump calls) grafted beneath it.
func TestTierStitchedTraceWithFailover(t *testing.T) {
	env := startTier(t, 2, search.ZeroLatency(), nil)
	sql := template1("crime")

	targets := env.coord.ring().Successors(RouteKey(sql), 2)
	if len(targets) != 2 {
		t.Fatalf("expected 2 route targets, got %d", len(targets))
	}
	// Make the first-choice worker 503 every query while staying on the
	// ring: the coordinator must reroute mid-query, not re-plan the ring.
	for _, nd := range env.nodes {
		if nd.id == targets[0].ID {
			nd.worker.draining.Store(true)
		}
	}

	traceID, root := env.tracedQuery(t, sql)
	if len(traceID) != 32 {
		t.Fatalf("trace_id = %q, want 32 hex digits", traceID)
	}
	if root == nil {
		t.Fatal("no stitched trace in response")
	}
	if root.Op != "coord.query" || root.Node != "coord" {
		t.Fatalf("root = %s/%s, want coord.query/coord", root.Op, root.Node)
	}

	// Parentage must match the route: attempt[0] against the drainer
	// (failed, empty), attempt[1] against the survivor carrying the
	// worker subtree.
	var attempts []*obs.SpanJSON
	for _, c := range root.Children {
		if c.Op == "coord.attempt" {
			attempts = append(attempts, c)
		}
	}
	if len(attempts) != 2 {
		t.Fatalf("stitched tree has %d coord.attempt spans, want 2 (reroute invisible)", len(attempts))
	}
	if !strings.Contains(attempts[0].Detail, targets[0].ID) || !strings.Contains(attempts[0].Detail, "503") {
		t.Errorf("first attempt detail = %q, want %s + status 503", attempts[0].Detail, targets[0].ID)
	}
	if len(attempts[0].Children) != 0 {
		t.Errorf("failed attempt has %d children, want 0", len(attempts[0].Children))
	}
	if attempts[1].StartUS < attempts[0].StartUS {
		t.Errorf("attempt offsets not monotone: %v then %v", attempts[0].StartUS, attempts[1].StartUS)
	}

	wq := attempts[1].Find("wsqd.query")
	if wq == nil {
		t.Fatal("no wsqd.query span under the rerouted attempt")
	}
	if wq.Node != targets[1].ID {
		t.Errorf("worker subtree node = %q, want %q", wq.Node, targets[1].ID)
	}
	if root.Find("pump.call") == nil {
		t.Error("no pump.call span in the stitched tree")
	}
	if root.Find("AEVScan") == nil {
		t.Error("no AEVScan operator span in the stitched tree")
	}
	// Span count sanity: root + 2 attempts + worker subtree (root, plan
	// operators, pump calls) — the route shape bounds it from below.
	if n := root.CountSpans(); n < 7 {
		t.Errorf("stitched tree has %d spans, want >= 7", n)
	}

	// The coordinator retains the stitched tree server-side too.
	resp, err := http.Get(env.csrv.URL + "/debug/traces?trace_id=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces?trace_id=%s: status %d", traceID, resp.StatusCode)
	}
	var stored obs.StoredTrace
	if err := json.NewDecoder(resp.Body).Decode(&stored); err != nil {
		t.Fatal(err)
	}
	if stored.TraceID != traceID || stored.Root == nil {
		t.Errorf("stored trace: id=%q root=%v", stored.TraceID, stored.Root != nil)
	}
}

// TestTierTracedCachePeerSpan: when a traced query's pump misses locally
// and fetches from the key's home shard, the stitched tree must contain
// the peer round trip and, nested inside it, the home shard's handler
// span (shipped back in the response header) tagged with its node.
func TestTierTracedCachePeerSpan(t *testing.T) {
	env := startTier(t, 2, search.ZeroLatency(), nil)
	base, alt := crossNodePair(t, env, "crime")

	// Warm the home worker's cache untraced.
	if code, rows := env.query(t, base); code != http.StatusOK || rows == 0 {
		t.Fatalf("warmup: status=%d rows=%d", code, rows)
	}

	// The decoy variant routes to the other worker, whose pump must now
	// peer-fetch every key from the home shard.
	traceID, root := env.tracedQuery(t, alt)
	if root == nil {
		t.Fatal("no stitched trace")
	}
	pf := root.Find("shard.peer.fetch")
	if pf == nil {
		t.Fatal("no shard.peer.fetch span in stitched tree")
	}
	if pf.Detail != "hit" {
		t.Errorf("peer fetch detail = %q, want hit", pf.Detail)
	}
	if !pf.Async {
		t.Error("peer fetch span not marked async (it overlaps the operator tree)")
	}
	cg := root.Find("shard.cache.get")
	if cg == nil {
		t.Fatal("no shard.cache.get span: the home shard's handler span was not stitched in")
	}
	homeID, _ := env.coord.ring().Owner(RouteKey(base))
	if cg.Node != homeID.ID {
		t.Errorf("cache.get node = %q, want home shard %q", cg.Node, homeID.ID)
	}
	if cg.Detail != "hit" {
		t.Errorf("cache.get detail = %q, want hit", cg.Detail)
	}
	t.Logf("trace %s: peer fetch %0.fus with remote handler %0.fus on %s", traceID, pf.DurUS, cg.DurUS, cg.Node)
}

// TestTierMergedProfiles: the coordinator's /profiles endpoint serves
// the union of its workers' engine profiles, and the Prometheus form
// passes the repo's own lint.
func TestTierMergedProfiles(t *testing.T) {
	env := startTier(t, 2, search.ZeroLatency(), nil)
	base, alt := crossNodePair(t, env, "education")
	for _, q := range []string{base, alt} {
		if code, _ := env.query(t, q); code != http.StatusOK {
			t.Fatalf("query failed: %d", code)
		}
	}

	resp, err := http.Get(env.csrv.URL + "/profiles")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var prof struct {
		Node         string `json:"node"`
		Destinations []struct {
			Dest  string  `json:"dest"`
			Calls int64   `json:"calls"`
			P95   float64 `json:"p95_seconds"`
		} `json:"destinations"`
		Query struct {
			Queries int64   `json:"queries"`
			MeanFan float64 `json:"fanout_mean"`
		} `json:"query"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&prof); err != nil {
		t.Fatal(err)
	}
	if prof.Node != "coord" {
		t.Errorf("merged profile node = %q, want coord", prof.Node)
	}
	found := false
	for _, d := range prof.Destinations {
		if d.Dest == "altavista" {
			found = true
			if d.Calls == 0 {
				t.Error("merged altavista profile shows zero calls")
			}
		}
	}
	if !found {
		t.Fatalf("altavista missing from merged destinations: %+v", prof.Destinations)
	}
	if prof.Query.Queries == 0 {
		t.Error("merged query profile shows zero queries")
	}
	if prof.Query.MeanFan <= 0 {
		t.Error("merged query profile shows no external-call fanout")
	}

	// The Prometheus rendering of the merged view must be lint-clean.
	promResp, err := http.Get(env.csrv.URL + "/profiles?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer promResp.Body.Close()
	body, err := io.ReadAll(promResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if problems := obs.LintExposition(string(body)); len(problems) > 0 {
		t.Errorf("merged /profiles?format=prom fails promlint:\n%s", strings.Join(problems, "\n"))
	}
}
