package shard

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/async"
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/types"
)

// WorkerOptions configures the shard-protocol wrapper around one wsqd.
type WorkerOptions struct {
	// ID is this worker's ring identity (must match the tier config).
	ID string
	// Inner is the single-node wsqd handler (internal/server); every
	// request outside /shard/* is delegated to it.
	Inner http.Handler
	// Cache is the worker's [HN96] result cache, served to peers over
	// /shard/cache/*. Nil disables peering (gets answer 404).
	Cache *cache.Cache
	// Pump receives per-destination limits pushed by the coordinator.
	Pump *async.Pump
	// Peers is the worker's own peer client; drain uses it to hand hot
	// keys to their new homes, and /shard/membership updates its ring.
	Peers *Peers
	// MaxPromiseWaitMS caps how long a remote get may linger for an
	// in-progress fill regardless of the asker's wait_ms (default 1000).
	MaxPromiseWaitMS int
	// PromiseTTL bounds how long an unresolved fill promise blocks 404
	// re-claims (default 5s): if the claiming misser dies before filling,
	// the next misser takes over after the TTL.
	PromiseTTL time.Duration
	// HandoffMax is the number of hottest cache entries pushed to their
	// new homes during drain (default 64; 0 selects the default, -1
	// disables handoff).
	HandoffMax int
	// DrainPoll is the in-flight poll interval during drain (default
	// 10ms; tests shorten it).
	DrainPoll time.Duration
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.MaxPromiseWaitMS <= 0 {
		o.MaxPromiseWaitMS = 1000
	}
	if o.PromiseTTL <= 0 {
		o.PromiseTTL = 5 * time.Second
	}
	if o.HandoffMax == 0 {
		o.HandoffMax = 64
	}
	if o.DrainPoll <= 0 {
		o.DrainPoll = 10 * time.Millisecond
	}
	return o
}

// fillPromise tracks one expected fill: the first remote misser of a key
// claims the promise (and goes off to compute), later missers wait on it
// instead of issuing duplicate engine calls on their own nodes.
type fillPromise struct {
	done chan struct{}
	rows []types.Tuple
	ok   bool
	born time.Time
}

// Worker serves the shard side of the tier protocol in front of a wsqd:
//
//	GET  /shard/cache/get?key=K&wait_ms=N   home-shard cache lookup
//	POST /shard/cache/fill                  {key, rows} store + resolve waiters
//	POST /shard/cache/invalidate            {key} drop a cached entry
//	POST /shard/limits                      {limits: {dest: n}} per-dest budget
//	POST /shard/membership                  {workers, vnodes} new ring view
//	POST /shard/drain                       finish in-flight, hand off hot keys
//
// plus draining-aware delegation of /query to the inner handler (a
// draining worker answers 503 with Retry-After so the coordinator
// reroutes).
type Worker struct {
	opt WorkerOptions
	mux *http.ServeMux

	draining atomic.Bool
	inflight atomic.Int64

	pmu      sync.Mutex
	promises map[string]*fillPromise

	// counters
	remoteHits    atomic.Int64
	remoteMisses  atomic.Int64
	promiseWaits  atomic.Int64
	promiseServed atomic.Int64
	fillsRecv     atomic.Int64
	invalidations atomic.Int64
	drainRejects  atomic.Int64
	handedOff     atomic.Int64
}

// NewWorker wraps an inner wsqd handler with the shard protocol.
func NewWorker(opt WorkerOptions) *Worker {
	w := &Worker{
		opt:      opt.withDefaults(),
		promises: make(map[string]*fillPromise),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/shard/cache/get", w.handleCacheGet)
	mux.HandleFunc("/shard/cache/fill", w.handleCacheFill)
	mux.HandleFunc("/shard/cache/invalidate", w.handleCacheInvalidate)
	mux.HandleFunc("/shard/limits", w.handleLimits)
	mux.HandleFunc("/shard/membership", w.handleMembership)
	mux.HandleFunc("/shard/drain", w.handleDrain)
	mux.HandleFunc("/query", w.handleQuery)
	mux.HandleFunc("/", w.delegate)
	w.mux = mux
	return w
}

// ServeHTTP implements http.Handler.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	w.mux.ServeHTTP(rw, r)
}

// Draining reports whether the worker has entered drain.
func (w *Worker) Draining() bool { return w.draining.Load() }

// InFlight reports queries currently executing in the inner handler.
func (w *Worker) InFlight() int64 { return w.inflight.Load() }

func (w *Worker) delegate(rw http.ResponseWriter, r *http.Request) {
	if w.opt.Inner == nil {
		http.NotFound(rw, r)
		return
	}
	w.opt.Inner.ServeHTTP(rw, r)
}

// handleQuery delegates to the inner handler unless draining, counting
// in-flight work so drain knows when the worker is quiet.
func (w *Worker) handleQuery(rw http.ResponseWriter, r *http.Request) {
	if w.draining.Load() {
		w.drainRejects.Add(1)
		rw.Header().Set("Retry-After", "1")
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(rw).Encode(map[string]string{"error": "worker draining; retry elsewhere"})
		return
	}
	w.inflight.Add(1)
	defer w.inflight.Add(-1)
	w.delegate(rw, r)
}

// SpanHeader carries a remote handler's span (obs.SpanJSON, one JSON
// line) back to the caller on header-only exchanges — the cache-get
// protocol, whose 404 answers have no body to ride in. The asker wraps
// it under its local round-trip span, stitching the remote work into the
// query's trace.
const SpanHeader = "X-Wsq-Span"

// traceSpanSetter returns a function that stamps SpanHeader with a
// shard.cache.get span just before the response is written, or nil when
// the request carries no sampled traceparent (the untraced hot path does
// no timing at all).
func (w *Worker) traceSpanSetter(rw http.ResponseWriter, r *http.Request) func(outcome string) {
	h := r.Header.Get(obs.TraceparentHeader)
	if h == "" {
		return nil
	}
	if _, _, sampled, err := obs.ParseTraceparent(h); err != nil || !sampled {
		return nil
	}
	start := time.Now()
	return func(outcome string) {
		span := &obs.SpanJSON{
			Op:     "shard.cache.get",
			Detail: outcome,
			Node:   w.opt.ID,
			DurUS:  float64(time.Since(start).Microseconds()),
		}
		span.SelfUS = span.DurUS
		if buf, err := json.Marshal(span); err == nil {
			rw.Header().Set(SpanHeader, string(buf))
		}
	}
}

// handleCacheGet is the home-shard lookup. On a hit it returns the rows.
// On a miss it consults the fill-promise map: the first misser claims
// the key (404 — go compute and fill me), later missers wait up to
// wait_ms for that fill and are served from it when it lands.
func (w *Worker) handleCacheGet(rw http.ResponseWriter, r *http.Request) {
	traced := w.traceSpanSetter(rw, r)
	key := r.URL.Query().Get("key")
	if key == "" || w.opt.Cache == nil {
		http.NotFound(rw, r)
		return
	}
	if rows, ok := w.opt.Cache.Get(key); ok {
		w.remoteHits.Add(1)
		if traced != nil {
			traced("hit")
		}
		writeRows(rw, rows)
		return
	}

	waitMS, _ := strconv.Atoi(r.URL.Query().Get("wait_ms"))
	if waitMS > w.opt.MaxPromiseWaitMS {
		waitMS = w.opt.MaxPromiseWaitMS
	}

	w.pmu.Lock()
	pr := w.promises[key]
	if pr != nil && time.Since(pr.born) > w.opt.PromiseTTL {
		// The claimant likely died before filling; let this misser take over.
		delete(w.promises, key)
		pr = nil
	}
	if pr == nil {
		w.promises[key] = &fillPromise{done: make(chan struct{}), born: time.Now()}
		w.pmu.Unlock()
		w.remoteMisses.Add(1)
		if traced != nil {
			traced("miss_claimed")
		}
		http.NotFound(rw, r) // claimed: the asker computes, then fills
		return
	}
	w.pmu.Unlock()

	// A fill for this key is already promised — linger for it.
	w.promiseWaits.Add(1)
	if waitMS > 0 {
		t := time.NewTimer(time.Duration(waitMS) * time.Millisecond)
		defer t.Stop()
		select {
		case <-pr.done:
			if pr.ok {
				w.promiseServed.Add(1)
				if traced != nil {
					traced("promise_hit")
				}
				writeRows(rw, pr.rows)
				return
			}
		case <-t.C:
		case <-r.Context().Done():
		}
	}
	w.remoteMisses.Add(1)
	if traced != nil {
		traced("miss")
	}
	http.NotFound(rw, r)
}

func writeRows(rw http.ResponseWriter, rows []types.Tuple) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(cacheGetResponse{Rows: rows})
}

// handleCacheFill stores offered rows and resolves any waiting promise.
func (w *Worker) handleCacheFill(rw http.ResponseWriter, r *http.Request) {
	var req cacheFillRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Key == "" {
		http.Error(rw, "bad fill", http.StatusBadRequest)
		return
	}
	if w.opt.Cache != nil {
		w.opt.Cache.Put(req.Key, req.Rows)
	}
	w.fillsRecv.Add(1)
	w.pmu.Lock()
	pr := w.promises[req.Key]
	delete(w.promises, req.Key)
	w.pmu.Unlock()
	if pr != nil {
		pr.rows, pr.ok = req.Rows, true
		close(pr.done)
	}
	rw.WriteHeader(http.StatusNoContent)
}

// handleCacheInvalidate drops a key from the local cache.
func (w *Worker) handleCacheInvalidate(rw http.ResponseWriter, r *http.Request) {
	var req struct {
		Key string `json:"key"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Key == "" {
		http.Error(rw, "bad invalidate", http.StatusBadRequest)
		return
	}
	w.opt.Cache.Delete(req.Key)
	w.invalidations.Add(1)
	rw.WriteHeader(http.StatusNoContent)
}

// handleLimits applies coordinator-pushed per-destination call budgets.
func (w *Worker) handleLimits(rw http.ResponseWriter, r *http.Request) {
	var req limitsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, "bad limits", http.StatusBadRequest)
		return
	}
	if w.opt.Pump != nil {
		for dest, n := range req.Limits {
			w.opt.Pump.SetDestLimit(dest, n)
		}
	}
	rw.WriteHeader(http.StatusNoContent)
}

// handleMembership swaps the peer client's ring view.
func (w *Worker) handleMembership(rw http.ResponseWriter, r *http.Request) {
	var req membershipRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, "bad membership", http.StatusBadRequest)
		return
	}
	if w.opt.Peers != nil {
		w.opt.Peers.Update(req.Workers)
	}
	rw.WriteHeader(http.StatusNoContent)
}

// handleDrain runs the graceful-exit sequence: stop admitting queries,
// wait for in-flight ones to finish, then push the hottest cache entries
// to their new homes on the (already updated, self-excluding) ring. The
// coordinator keeps rerouting fresh queries meanwhile, so the tier sees
// zero failures.
func (w *Worker) handleDrain(rw http.ResponseWriter, r *http.Request) {
	w.draining.Store(true)
	for w.inflight.Load() > 0 {
		select {
		case <-r.Context().Done():
			http.Error(rw, "drain interrupted", http.StatusRequestTimeout)
			return
		default:
		}
		time.Sleep(w.opt.DrainPoll)
	}

	handed := 0
	if w.opt.Cache != nil && w.opt.Peers != nil && w.opt.HandoffMax > 0 {
		ring := w.opt.Peers.Ring()
		for _, e := range w.opt.Cache.Entries(w.opt.HandoffMax) {
			owner, ok := ring.Owner(e.Key)
			if !ok || owner.ID == w.opt.ID {
				continue
			}
			if err := w.opt.Peers.FillTo(r.Context(), owner, e.Key, e.Rows); err == nil {
				handed++
			}
		}
	}
	w.handedOff.Add(int64(handed))

	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(drainResponse{HandedOff: handed})
}

// WorkerStats is a point-in-time snapshot of the shard-protocol counters.
type WorkerStats struct {
	RemoteHits    int64 `json:"remote_hits"`
	RemoteMisses  int64 `json:"remote_misses"`
	PromiseWaits  int64 `json:"promise_waits"`
	PromiseServed int64 `json:"promise_served"`
	FillsRecv     int64 `json:"fills_recv"`
	Invalidations int64 `json:"invalidations"`
	DrainRejects  int64 `json:"drain_rejects"`
	HandedOff     int64 `json:"handed_off"`
	Draining      bool  `json:"draining"`
}

// Stats snapshots the shard-protocol counters.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		RemoteHits:    w.remoteHits.Load(),
		RemoteMisses:  w.remoteMisses.Load(),
		PromiseWaits:  w.promiseWaits.Load(),
		PromiseServed: w.promiseServed.Load(),
		FillsRecv:     w.fillsRecv.Load(),
		Invalidations: w.invalidations.Load(),
		DrainRejects:  w.drainRejects.Load(),
		HandedOff:     w.handedOff.Load(),
		Draining:      w.draining.Load(),
	}
}

// Observe registers the worker's shard-protocol counters.
func (w *Worker) Observe(reg *obs.Registry) {
	reg.CounterFunc("wsq_shard_remote_get_hits_total",
		"Peer cache gets served from this worker's cache (cross-node hits).",
		func() float64 { return float64(w.remoteHits.Load()) })
	reg.CounterFunc("wsq_shard_remote_get_misses_total",
		"Peer cache gets that missed here (including promise-claim 404s).",
		func() float64 { return float64(w.remoteMisses.Load()) })
	reg.CounterFunc("wsq_shard_promise_waits_total",
		"Peer cache gets that lingered for an in-progress fill.",
		func() float64 { return float64(w.promiseWaits.Load()) })
	reg.CounterFunc("wsq_shard_promise_served_total",
		"Lingering peer gets answered by the awaited fill.",
		func() float64 { return float64(w.promiseServed.Load()) })
	reg.CounterFunc("wsq_shard_fills_received_total",
		"Cache offers stored on behalf of peer workers.",
		func() float64 { return float64(w.fillsRecv.Load()) })
	reg.CounterFunc("wsq_shard_drain_rejects_total",
		"Queries answered 503 because this worker is draining.",
		func() float64 { return float64(w.drainRejects.Load()) })
	reg.CounterFunc("wsq_shard_handoff_keys_total",
		"Hot cache keys pushed to their new homes during drain.",
		func() float64 { return float64(w.handedOff.Load()) })
	reg.GaugeFunc("wsq_shard_worker_draining",
		"1 while the worker is draining, else 0.",
		func() float64 {
			if w.draining.Load() {
				return 1
			}
			return 0
		})
}
