package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/types"
)

// newProtoWorker is a protocol-only worker: real cache, no inner wsqd.
func newProtoWorker(t *testing.T, opt WorkerOptions) (*Worker, *httptest.Server) {
	t.Helper()
	if opt.ID == "" {
		opt.ID = "w1"
	}
	if opt.Cache == nil {
		opt.Cache = cache.New(32)
	}
	w := NewWorker(opt)
	srv := httptest.NewServer(w)
	t.Cleanup(srv.Close)
	return w, srv
}

func getCache(t *testing.T, base, key string, waitMS int) (int, []types.Tuple) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/shard/cache/get?key=%s&wait_ms=%d", base, key, waitMS))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	var out cacheGetResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Rows
}

func postFill(t *testing.T, base, key string, rows []types.Tuple) {
	t.Helper()
	body, _ := json.Marshal(cacheFillRequest{Key: key, Rows: rows})
	resp, err := http.Post(base+"/shard/cache/fill", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("fill status %d", resp.StatusCode)
	}
}

func TestWorkerCacheGetFillRoundTrip(t *testing.T) {
	w, srv := newProtoWorker(t, WorkerOptions{})

	// Miss claims the fill obligation.
	if code, _ := getCache(t, srv.URL, "k1", 0); code != http.StatusNotFound {
		t.Fatalf("first get = %d, want 404", code)
	}
	rows := []types.Tuple{{types.Str("texas"), types.Int(12)}}
	postFill(t, srv.URL, "k1", rows)

	code, got := getCache(t, srv.URL, "k1", 0)
	if code != http.StatusOK {
		t.Fatalf("post-fill get = %d, want 200", code)
	}
	if len(got) != 1 || got[0][0].S != "texas" || got[0][1].I != 12 {
		t.Fatalf("rows did not round-trip: %+v", got)
	}
	st := w.Stats()
	if st.RemoteHits != 1 || st.RemoteMisses != 1 || st.FillsRecv != 1 {
		t.Errorf("stats = %+v", st)
	}

	// Invalidate drops it.
	body, _ := json.Marshal(map[string]string{"key": "k1"})
	resp, err := http.Post(srv.URL+"/shard/cache/invalidate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if code, _ := getCache(t, srv.URL, "k1", 0); code != http.StatusNotFound {
		t.Errorf("get after invalidate = %d, want 404", code)
	}
}

// TestWorkerPromiseCoalescing: the home shard holds the second misser of
// a key open until the first misser's fill lands, then serves it — one
// engine call tier-wide even when misses race across nodes.
func TestWorkerPromiseCoalescing(t *testing.T) {
	w, srv := newProtoWorker(t, WorkerOptions{})

	// First misser claims the promise.
	if code, _ := getCache(t, srv.URL, "hot", 0); code != http.StatusNotFound {
		t.Fatalf("claiming get = %d, want 404", code)
	}

	type res struct {
		code int
		rows []types.Tuple
	}
	done := make(chan res, 1)
	go func() {
		code, rows := getCache(t, srv.URL, "hot", 5000)
		done <- res{code, rows}
	}()

	// The waiter registers before it parks; only then deliver the fill.
	for w.Stats().PromiseWaits == 0 {
		runtime.Gosched()
	}
	postFill(t, srv.URL, "hot", []types.Tuple{{types.Int(7)}})

	r := <-done
	if r.code != http.StatusOK || len(r.rows) != 1 || r.rows[0][0].I != 7 {
		t.Fatalf("waiting get: code=%d rows=%+v", r.code, r.rows)
	}
	if st := w.Stats(); st.PromiseServed != 1 {
		t.Errorf("promise served = %d, want 1", st.PromiseServed)
	}
}

// TestWorkerPromiseExpiry: if the claimant never fills (it crashed), the
// promise expires and a later misser re-claims instead of waiting forever.
func TestWorkerPromiseExpiry(t *testing.T) {
	w, srv := newProtoWorker(t, WorkerOptions{PromiseTTL: 10 * time.Millisecond})
	if code, _ := getCache(t, srv.URL, "k", 0); code != http.StatusNotFound {
		t.Fatal("claim failed")
	}
	time.Sleep(20 * time.Millisecond)
	// Expired: this get re-claims (immediate 404) rather than lingering.
	start := time.Now()
	if code, _ := getCache(t, srv.URL, "k", 5000); code != http.StatusNotFound {
		t.Fatal("expected re-claim 404")
	}
	if time.Since(start) > time.Second {
		t.Error("get waited on an expired promise")
	}
	if st := w.Stats(); st.RemoteMisses != 2 {
		t.Errorf("misses = %d, want 2", st.RemoteMisses)
	}
}

func TestWorkerDrainRejectsQueries(t *testing.T) {
	inner := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusOK)
		fmt.Fprint(rw, `{"rows":[]}`)
	})
	w, srv := newProtoWorker(t, WorkerOptions{Inner: inner, DrainPoll: time.Millisecond})

	resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader([]byte(`{"sql":"SELECT 1"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain query = %d", resp.StatusCode)
	}

	dresp, err := http.Post(srv.URL+"/shard/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var dr drainResponse
	json.NewDecoder(dresp.Body).Decode(&dr)
	dresp.Body.Close()
	if !w.Draining() {
		t.Fatal("worker not draining after /shard/drain")
	}

	resp, err = http.Post(srv.URL+"/query", "application/json", bytes.NewReader([]byte(`{"sql":"SELECT 1"}`)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining query = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 missing Retry-After")
	}
	if st := w.Stats(); st.DrainRejects != 1 {
		t.Errorf("drain rejects = %d, want 1", st.DrainRejects)
	}
}

// TestWorkerDrainWaitsForInflight: drain must not complete while a query
// is still executing in the inner handler.
func TestWorkerDrainWaitsForInflight(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	inner := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		rw.WriteHeader(http.StatusOK)
	})
	w, srv := newProtoWorker(t, WorkerOptions{Inner: inner, DrainPoll: time.Millisecond})

	qdone := make(chan int, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader([]byte(`{"sql":"x"}`)))
		if err != nil {
			qdone <- -1
			return
		}
		resp.Body.Close()
		qdone <- resp.StatusCode
	}()
	<-entered

	drained := make(chan struct{})
	go func() {
		resp, err := http.Post(srv.URL+"/shard/drain", "application/json", nil)
		if err == nil {
			resp.Body.Close()
		}
		close(drained)
	}()

	select {
	case <-drained:
		t.Fatal("drain completed with a query still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	if w.InFlight() != 1 {
		t.Fatalf("inflight = %d, want 1", w.InFlight())
	}
	close(release)
	if code := <-qdone; code != http.StatusOK {
		t.Fatalf("in-flight query finished with %d", code)
	}
	select {
	case <-drained:
	case <-time.After(2 * time.Second):
		t.Fatal("drain did not complete after the query finished")
	}
}

// TestWorkerLimits: coordinator-pushed budgets reach the pump. Uses a
// nil pump (no-op) for the decode path and asserts 204.
func TestWorkerLimitsEndpoint(t *testing.T) {
	_, srv := newProtoWorker(t, WorkerOptions{})
	body, _ := json.Marshal(limitsRequest{Limits: map[string]int{"altavista": 2}})
	resp, err := http.Post(srv.URL+"/shard/limits", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("limits status %d", resp.StatusCode)
	}
}

// TestWorkerMembershipUpdatesPeers: a membership push swaps the peer
// client's ring.
func TestWorkerMembershipUpdatesPeers(t *testing.T) {
	peers := NewPeers("w1", Config{Workers: testMembers(1)}, PeerOptions{})
	t.Cleanup(peers.Close)
	_, srv := newProtoWorker(t, WorkerOptions{Peers: peers})

	body, _ := json.Marshal(membershipRequest{Workers: testMembers(3), VNodes: 16})
	resp, err := http.Post(srv.URL+"/shard/membership", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("membership status %d", resp.StatusCode)
	}
	if peers.Ring().Len() != 3 {
		t.Errorf("peer ring has %d members, want 3", peers.Ring().Len())
	}
}

// TestPeersFetchAndFill exercises the client side against a real worker:
// a remote hit decodes rows; a local-homed key short-circuits; a fill is
// delivered asynchronously to the home shard.
func TestPeersFetchAndFill(t *testing.T) {
	home, srv := newProtoWorker(t, WorkerOptions{ID: "home"})
	members := []Member{{ID: "home", URL: srv.URL}, {ID: "me", URL: "http://unused.invalid"}}
	peers := NewPeers("me", Config{Workers: members, VNodes: 16}, PeerOptions{WaitMS: 1})
	t.Cleanup(peers.Close)

	// Seed the home shard and pick a key it actually owns.
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%d", i)
		if m, _ := peers.Ring().Owner(k); m.ID == "home" {
			key = k
			break
		}
	}
	home.opt.Cache.Put(key, []types.Tuple{{types.Int(5)}})

	rows, ok := peers.Fetch(context.Background(), key)
	if !ok || rows[0][0].I != 5 {
		t.Fatalf("fetch = %v %v", rows, ok)
	}

	// A key homed on ourselves is never fetched remotely.
	var selfKey string
	for i := 0; ; i++ {
		k := fmt.Sprintf("self-%d", i)
		if m, _ := peers.Ring().Owner(k); m.ID == "me" {
			selfKey = k
			break
		}
	}
	if _, ok := peers.Fetch(context.Background(), selfKey); ok {
		t.Error("self-homed key reported a peer hit")
	}

	// Fill is queued and shipped by the background sender.
	peers.Fill(key, []types.Tuple{{types.Int(9)}})
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got, ok := home.opt.Cache.Get(key); ok && got[0][0].I == 9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fill never reached the home shard")
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := peers.Stats()
	if st.FetchHits != 1 || st.SelfHome != 1 || st.FillsSent != 1 {
		t.Errorf("peer stats = %+v", st)
	}
}
