package search

import (
	"repro/internal/obs"
)

// engineMetrics bundles the registry families shared by every simulated
// engine wrapper: one set of labeled metrics, with the engine name as a
// label, replaces the per-wrapper ad-hoc counter structs the Delayed and
// Flaky wrappers used to maintain independently. Wrappers hold the
// handles behind an atomic pointer and skip recording until Observe has
// attached them.
type engineMetrics struct {
	// requests counts engine requests by engine and operation
	// (count/search/fetch).
	requests *obs.CounterVec
	// latency is the full request wall time — simulated delay, injected
	// stall or slow tail, and the inner engine's work — by engine and op.
	latency *obs.HistogramVec
	// inflight is the instantaneous per-engine request concurrency, the
	// live counterpart of the Delayed wrapper's max-in-flight high-water
	// mark.
	inflight *obs.GaugeVec
	// faults counts injected faults by engine and fault kind.
	faults *obs.CounterVec
}

// observeEngine binds (or re-binds, idempotently) the shared engine
// metric families to reg.
func observeEngine(reg *obs.Registry) *engineMetrics {
	return &engineMetrics{
		requests: reg.CounterVec("wsq_engine_requests_total",
			"Search-engine requests, by engine and operation.", "engine", "op"),
		latency: reg.HistogramVec("wsq_engine_request_seconds",
			"Search-engine request wall time (delay, faults, and engine work), by engine and operation.",
			nil, "engine", "op"),
		inflight: reg.GaugeVec("wsq_engine_inflight",
			"Requests currently in flight, by engine.", "engine"),
		faults: reg.CounterVec("wsq_engine_faults_total",
			"Injected engine faults, by engine and fault kind.", "engine", "kind"),
	}
}
