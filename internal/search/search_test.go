package search

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// memEngine is a tiny deterministic engine for transport tests.
type memEngine struct {
	name string
}

func (m *memEngine) Name() string { return m.name }
func (m *memEngine) Count(q string) (int64, error) {
	if q == "err" {
		return 0, fmt.Errorf("scripted failure")
	}
	return int64(len(q)), nil
}
func (m *memEngine) Search(q string, k int) ([]Result, error) {
	var out []Result
	for i := 1; i <= k && i <= 3; i++ {
		out = append(out, Result{URL: fmt.Sprintf("www.%s.com/%d", q, i), Rank: i, Date: "1999-01-02", Score: float64(10 - i)})
	}
	return out, nil
}
func (m *memEngine) Fetch(url string) (string, error) {
	if url == "missing" {
		return "", ErrNotFound
	}
	return "<html>" + url + "</html>", nil
}

// ---------------------------------------------------------------------------
// Registry

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Default(); err == nil {
		t.Error("empty registry has no default")
	}
	av := &memEngine{name: "AltaVista"}
	g := &memEngine{name: "google"}
	r.Register(av, "AV")
	r.Register(g, "G")
	e, err := r.Lookup("altavista")
	if err != nil || e != Engine(av) {
		t.Errorf("case-insensitive lookup: %v %v", e, err)
	}
	if e, _ := r.Lookup("av"); e != Engine(av) {
		t.Error("alias lookup")
	}
	if e, _ := r.Lookup("G"); e != Engine(g) {
		t.Error("alias lookup G")
	}
	if _, err := r.Lookup("lycos"); err == nil {
		t.Error("unknown engine")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "altavista" || names[1] != "google" {
		t.Errorf("names: %v", names)
	}
	if d, _ := r.Default(); d != Engine(av) {
		t.Error("default is first by name")
	}
}

// ---------------------------------------------------------------------------
// Latency wrapper

func TestDelayedInjectsLatency(t *testing.T) {
	d := NewDelayed(&memEngine{name: "m"}, LatencyModel{Base: 30 * time.Millisecond, CountFactor: 1}, 1)
	start := time.Now()
	if _, err := d.Count("abc"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("latency not injected: %v", elapsed)
	}
}

func TestDelayedCountFactor(t *testing.T) {
	d := NewDelayed(&memEngine{name: "m"}, LatencyModel{Base: 40 * time.Millisecond, CountFactor: 0.25}, 1)
	start := time.Now()
	d.Count("abc")
	countTime := time.Since(start)
	start = time.Now()
	d.Search("abc", 1)
	searchTime := time.Since(start)
	if countTime >= searchTime {
		t.Errorf("count (%v) should be cheaper than search (%v)", countTime, searchTime)
	}
}

func TestDelayedZeroLatency(t *testing.T) {
	d := NewDelayed(&memEngine{name: "m"}, ZeroLatency(), 1)
	start := time.Now()
	for i := 0; i < 100; i++ {
		d.Count("q")
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("zero latency model should not sleep")
	}
}

func TestDelayedConcurrencyStats(t *testing.T) {
	d := NewDelayed(&memEngine{name: "m"}, LatencyModel{Base: 20 * time.Millisecond}, 1)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Search("x", 1)
		}()
	}
	wg.Wait()
	requests, maxInFlight := d.Stats()
	if requests != 10 {
		t.Errorf("requests: %d", requests)
	}
	if maxInFlight < 5 {
		t.Errorf("concurrent requests should overlap: max %d", maxInFlight)
	}
	d.ResetStats()
	if r, m := d.Stats(); r != 0 || m != 0 {
		t.Error("reset stats")
	}
}

// ---------------------------------------------------------------------------
// HTTP transport

func newHTTPPair(t *testing.T) (*Client, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(NewHandler(&memEngine{name: "m"}))
	t.Cleanup(srv.Close)
	return NewClient("m", srv.URL), srv
}

func TestHTTPCount(t *testing.T) {
	c, _ := newHTTPPair(t)
	n, err := c.Count(context.Background(), "abcd")
	if err != nil || n != 4 {
		t.Fatalf("count over http: %d %v", n, err)
	}
}

func TestHTTPSearch(t *testing.T) {
	c, _ := newHTTPPair(t)
	res, err := c.Search(context.Background(), "utah", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].URL != "www.utah.com/1" || res[0].Rank != 1 {
		t.Errorf("search over http: %+v", res)
	}
	if res[0].Date != "1999-01-02" || res[0].Score != 9 {
		t.Errorf("fields lost in transit: %+v", res[0])
	}
}

func TestHTTPFetch(t *testing.T) {
	c, _ := newHTTPPair(t)
	body, err := c.Fetch(context.Background(), "www.x.com/1")
	if err != nil || body != "<html>www.x.com/1</html>" {
		t.Fatalf("fetch: %q %v", body, err)
	}
	if _, err := c.Fetch(context.Background(), "missing"); err != ErrNotFound {
		t.Errorf("not-found mapping: %v", err)
	}
}

func TestHTTPErrors(t *testing.T) {
	c, _ := newHTTPPair(t)
	// Server-side engine failure surfaces as an error with the message.
	if _, err := c.Count(context.Background(), "err"); err == nil {
		t.Error("engine error should propagate over http")
	}
	// Bad parameters.
	srv := httptest.NewServer(NewHandler(&memEngine{name: "m"}))
	defer srv.Close()
	for _, path := range []string{"/count", "/search?q=x&k=bad", "/fetch"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == 200 {
			t.Errorf("%s should be a client error", path)
		}
		resp.Body.Close()
	}
	// Unreachable server.
	dead := NewClient("dead", "http://127.0.0.1:1")
	if _, err := dead.Count(context.Background(), "x"); err == nil {
		t.Error("unreachable server should error")
	}
}

func TestHTTPHealthz(t *testing.T) {
	srv := httptest.NewServer(NewHandler(&memEngine{name: "myeng"}))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
}

func TestHTTPConcurrentRequests(t *testing.T) {
	// The whole point: the transport must sustain many in-flight calls.
	inner := NewDelayed(&memEngine{name: "m"}, LatencyModel{Base: 20 * time.Millisecond}, 1)
	srv := httptest.NewServer(NewHandler(inner))
	defer srv.Close()
	c := NewClient("m", srv.URL)
	var wg sync.WaitGroup
	errs := make(chan error, 30)
	start := time.Now()
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Search(context.Background(), "q", 1); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Errorf("30 concurrent 20ms calls took %v; transport serializing?", elapsed)
	}
	_, maxInFlight := inner.Stats()
	if maxInFlight < 10 {
		t.Errorf("server-side concurrency: %d", maxInFlight)
	}
}

// TestDelayedResetStatsMidFlight races ResetStats/Stats against in-flight
// requests (run with -race). The inFlight gauge must survive a mid-request
// reset: the paired exit() may not drive it negative, and the high-water
// mark must keep tracking real concurrency afterwards.
func TestDelayedResetStatsMidFlight(t *testing.T) {
	d := NewDelayed(&memEngine{name: "m"}, LatencyModel{Base: 5 * time.Millisecond}, 1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					d.Count("x")
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		time.Sleep(2 * time.Millisecond)
		d.ResetStats()
		if _, m := d.Stats(); m < 0 {
			t.Fatalf("maxInFlight went negative: %d", m)
		}
	}
	close(stop)
	wg.Wait()
	d.ResetStats()
	d.Count("x")
	if r, m := d.Stats(); r != 1 || m < 1 {
		t.Errorf("after quiescent reset: requests=%d maxInFlight=%d, want 1/>=1", r, m)
	}
}
