package search

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// LatencyModel describes the simulated per-request delay of a remote
// search engine. The paper measures AltaVista latencies of "one or more
// seconds" per request; the model here reproduces a base delay with
// seeded jitter so experiments are repeatable.
type LatencyModel struct {
	// Base is the minimum per-request delay.
	Base time.Duration
	// Jitter is the maximum additional random delay (uniform).
	Jitter time.Duration
	// CountFactor scales the delay of Count requests relative to Search
	// requests; "many Web search engines can return a total number of
	// pages immediately, without delivering the actual URLs" (Section 3),
	// so counts are somewhat cheaper. 1.0 means no difference.
	CountFactor float64
}

// PaperLatency approximates the 1999 web: ~0.75s per search.
func PaperLatency() LatencyModel {
	return LatencyModel{Base: 600 * time.Millisecond, Jitter: 300 * time.Millisecond, CountFactor: 0.8}
}

// BenchLatency is a scaled-down model (~25 ms) so the full Table 1 harness
// runs in seconds while preserving the latency-dominated regime.
func BenchLatency() LatencyModel {
	return LatencyModel{Base: 20 * time.Millisecond, Jitter: 10 * time.Millisecond, CountFactor: 0.8}
}

// ZeroLatency disables delays (for unit tests of query semantics).
func ZeroLatency() LatencyModel { return LatencyModel{} }

// Delayed wraps an engine, sleeping per request according to a latency
// model. It is safe for concurrent use; each in-flight request sleeps
// independently, which is exactly the property asynchronous iteration
// exploits.
type Delayed struct {
	inner Engine
	model LatencyModel
	rng   *Rand

	// statsMu guards the coupled inFlight/maxInFlight pair: the
	// high-water mark must be updated atomically with the gauge
	// (ResetStats relies on this to restart the mark from the live
	// concurrency).
	statsMu     sync.Mutex
	inFlight    int
	maxInFlight int
	requests    obs.Counter

	// metrics holds registry handles attached by Observe; nil until then.
	metrics atomic.Pointer[engineMetrics]
}

// NewDelayed wraps inner with the given latency model and jitter seed.
func NewDelayed(inner Engine, model LatencyModel, seed int64) *Delayed {
	return NewDelayedRand(inner, model, NewRand(seed))
}

// NewDelayedRand is NewDelayed drawing jitter from a caller-supplied locked
// Rand, so a Flaky fault injector stacked on the same engine can share one
// seeded stream (one seed fixes the whole simulated engine).
func NewDelayedRand(inner Engine, model LatencyModel, rng *Rand) *Delayed {
	if rng == nil {
		rng = NewRand(1)
	}
	return &Delayed{inner: inner, model: model, rng: rng}
}

// Name implements Engine.
func (d *Delayed) Name() string { return d.inner.Name() }

// Observe implements obs.Observable: it binds the shared engine metric
// families to reg and forwards to the wrapped engine if it is observable
// too (a Flaky injector stacked below records its fault counters into
// the same registry).
func (d *Delayed) Observe(reg *obs.Registry) {
	d.metrics.Store(observeEngine(reg))
	if o, ok := d.inner.(obs.Observable); ok {
		o.Observe(reg)
	}
}

func (d *Delayed) delay(factor float64) {
	if d.model.Base == 0 && d.model.Jitter == 0 {
		return
	}
	j := d.rng.Duration(d.model.Jitter)
	total := time.Duration(float64(d.model.Base+j) * factor)
	time.Sleep(total)
}

// enter records the start of a request and returns the paired exit
// function, which observes the request's wall time when metrics are
// attached. Call as `defer d.enter(op)()`.
func (d *Delayed) enter(op string) func() {
	d.statsMu.Lock()
	d.inFlight++
	if d.inFlight > d.maxInFlight {
		d.maxInFlight = d.inFlight
	}
	d.statsMu.Unlock()
	d.requests.Inc()
	m := d.metrics.Load()
	if m != nil {
		m.requests.With(d.inner.Name(), op).Inc()
		m.inflight.With(d.inner.Name()).Inc()
	}
	start := time.Now()
	return func() {
		if m != nil {
			m.latency.With(d.inner.Name(), op).Observe(time.Since(start).Seconds())
			m.inflight.With(d.inner.Name()).Dec()
		}
		d.statsMu.Lock()
		d.inFlight--
		d.statsMu.Unlock()
	}
}

// Count implements Engine with an injected delay.
func (d *Delayed) Count(query string) (int64, error) {
	defer d.enter("count")()
	f := d.model.CountFactor
	if f == 0 {
		f = 1
	}
	d.delay(f)
	return d.inner.Count(query)
}

// Search implements Engine with an injected delay.
func (d *Delayed) Search(query string, k int) ([]Result, error) {
	defer d.enter("search")()
	d.delay(1)
	return d.inner.Search(query, k)
}

// Fetch implements Engine with an injected delay.
func (d *Delayed) Fetch(url string) (string, error) {
	defer d.enter("fetch")()
	d.delay(1)
	return d.inner.Fetch(url)
}

// Stats reports total requests served and the maximum observed request
// concurrency — the direct evidence that asynchronous iteration overlapped
// calls.
func (d *Delayed) Stats() (requests int64, maxInFlight int) {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.requests.Value(), d.maxInFlight
}

// ResetStats clears the concurrency statistics between experiment runs.
// It takes the same mutex as the request path (enter/exit), so it is safe
// while requests are in flight: the inFlight gauge is preserved — zeroing
// it mid-request would let the paired exit() drive it negative and corrupt
// maxInFlight for every later run — and the high-water mark restarts from
// the current concurrency.
func (d *Delayed) ResetStats() {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	d.maxInFlight = d.inFlight
	d.requests.Reset()
}
