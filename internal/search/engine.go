// Package search defines the external search-engine abstraction used by
// the WSQ virtual tables, together with a latency simulator and an HTTP
// server/client pair so that engine calls exercise a real network stack.
//
// In the paper, WSQ calls AltaVista and Google over the public Internet
// with per-request latencies of a second or more. This repository
// substitutes deterministic synthetic engines (package websim) served over
// localhost HTTP with injected latency — the same code path (network
// request, idle query processor, many concurrent requests allowed) with a
// controllable clock.
package search

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Result is one ranked search hit. Rank is 1-based, as in the paper's
// WebPages virtual table.
type Result struct {
	URL   string  `json:"url"`
	Rank  int     `json:"rank"`
	Date  string  `json:"date"`
	Score float64 `json:"score"`
}

// Engine is a keyword search engine as seen by WSQ: it can report the
// total hit count for an expression without delivering URLs (the cheap
// operation behind WebCount) and deliver the top-k ranked URLs (behind
// WebPages). Fetch retrieves a page body by URL (behind WebFetch, the
// crawler scenario of Section 4.2).
//
// Implementations must be safe for concurrent use: the whole premise of
// asynchronous iteration is that "search engines (and the Web in general)
// can handle many concurrent requests".
type Engine interface {
	// Name identifies the engine ("altavista", "google").
	Name() string
	// Count returns the total number of pages matching the query.
	Count(query string) (int64, error)
	// Search returns the top-k results for the query, rank ascending.
	Search(query string, k int) ([]Result, error)
	// Fetch returns the body of the page at url.
	Fetch(url string) (string, error)
}

// ErrNotFound is returned by Fetch for an unknown URL.
var ErrNotFound = errors.New("page not found")

// Registry maps engine names to engines. The WSQ planner resolves virtual
// table suffixes (WebCount_AV, WebPages_Google) against a registry.
type Registry struct {
	mu      sync.RWMutex
	engines map[string]Engine
	aliases map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{engines: make(map[string]Engine), aliases: make(map[string]string)}
}

// Register adds an engine under its name and any extra aliases
// (e.g. "altavista" with alias "AV").
func (r *Registry) Register(e Engine, aliases ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.engines[normalize(e.Name())] = e
	for _, a := range aliases {
		r.aliases[normalize(a)] = normalize(e.Name())
	}
}

// Lookup resolves a name or alias to an engine.
func (r *Registry) Lookup(name string) (Engine, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := normalize(name)
	if target, ok := r.aliases[n]; ok {
		n = target
	}
	e, ok := r.engines[n]
	if !ok {
		return nil, fmt.Errorf("unknown search engine %q", name)
	}
	return e, nil
}

// Names returns the registered engine names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.engines))
	for n := range r.engines {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Default returns an arbitrary-but-deterministic engine (the first by
// name); WSQ uses it when a query references the unsuffixed WebCount or
// WebPages tables.
func (r *Registry) Default() (Engine, error) {
	names := r.Names()
	if len(names) == 0 {
		return nil, errors.New("no search engines registered")
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.engines[names[0]], nil
}

func normalize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out = append(out, c)
	}
	return string(out)
}
