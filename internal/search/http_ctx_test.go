package search

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// The Client binds every request to its context; these tests pin the
// cancellation plumbing that replaced the old context-free Get path
// (where an abandoned request lingered until the transport's 60s cap).

func TestClientCtxCancelAbortsInflightRequest(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(release)

	c := NewClient("slow", srv.URL)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Count(ctx, "x")
		done <- err
	}()
	<-inHandler
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled request should error")
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("want context.Canceled in chain, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not abort the in-flight request")
	}
}

func TestClientCtxDeadline(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer srv.Close()
	c := NewClient("slow", srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := c.Search(ctx, "x", 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("want DeadlineExceeded, got %v", err)
	}
}

// Bound adapts the client to the synchronous Engine interface: a nil Ctx
// leaves requests unbounded, a canceled Ctx refuses them.
func TestBoundEngine(t *testing.T) {
	srv := httptest.NewServer(NewHandler(&memEngine{name: "m"}))
	defer srv.Close()
	cl := NewClient("m", srv.URL)

	var e Engine = Bind(nil, cl)
	if n, err := e.Count("abcd"); err != nil || n != 4 {
		t.Fatalf("nil-ctx Bound count: %d %v", n, err)
	}
	if e.Name() != "m" {
		t.Errorf("Name() = %q", e.Name())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dead := Bind(ctx, cl)
	if _, err := dead.Count("abcd"); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled Bound should refuse, got %v", err)
	}
	if _, err := dead.Search("utah", 1); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled Bound search should refuse, got %v", err)
	}
	if _, err := dead.Fetch("www.x.com/1"); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled Bound fetch should refuse, got %v", err)
	}
}
