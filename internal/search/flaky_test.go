package search

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// stubEngine is a minimal deterministic engine for wrapper tests.
type stubEngine struct{ name string }

func (s *stubEngine) Name() string { return s.name }
func (s *stubEngine) Count(q string) (int64, error) {
	return int64(len(q)), nil
}
func (s *stubEngine) Search(q string, k int) ([]Result, error) {
	out := make([]Result, 0, k)
	for i := 1; i <= k; i++ {
		out = append(out, Result{URL: q, Rank: i})
	}
	return out, nil
}
func (s *stubEngine) Fetch(url string) (string, error) {
	if url == "missing" {
		return "", ErrNotFound
	}
	return "body:" + url, nil
}

// faultSequence records the outcome kinds of n sequential Count calls.
func faultSequence(f *Flaky, n int) []string {
	out := make([]string, n)
	for i := range out {
		_, err := f.Count("abc")
		var fe *FaultError
		switch {
		case err == nil:
			out[i] = "ok"
		case errors.As(err, &fe):
			out[i] = string(fe.Kind)
		default:
			out[i] = "other"
		}
	}
	return out
}

func TestFlakySeededDeterminism(t *testing.T) {
	model := FaultModel{
		Count: FaultProfile{Transient: 0.3, RateLimit: 0.1, Hard: 0.05},
	}
	a := faultSequence(NewFlaky(&stubEngine{name: "e"}, model, NewRand(42)), 200)
	b := faultSequence(NewFlaky(&stubEngine{name: "e"}, model, NewRand(42)), 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := faultSequence(NewFlaky(&stubEngine{name: "e"}, model, NewRand(43)), 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical 200-call fault schedule")
	}
}

func TestFlakyFaultMixAndStats(t *testing.T) {
	model := FaultModel{Count: FaultProfile{Transient: 0.25, RateLimit: 0.1, Hard: 0.05}}
	f := NewFlaky(&stubEngine{name: "e"}, model, NewRand(7))
	const n = 2000
	seq := faultSequence(f, n)
	st := f.Stats()
	if st.Calls != n {
		t.Fatalf("Calls = %d, want %d", st.Calls, n)
	}
	counts := map[string]int64{}
	for _, k := range seq {
		counts[k]++
	}
	if counts["transient"] != st.Transient || counts["ratelimit"] != st.RateLimit || counts["hard"] != st.Hard {
		t.Fatalf("stats %+v disagree with observed %v", st, counts)
	}
	// With 2000 draws the observed rates should be within a factor of two
	// of the configured probabilities.
	check := func(name string, got int64, p float64) {
		want := p * n
		if float64(got) < want/2 || float64(got) > want*2 {
			t.Errorf("%s faults = %d, configured rate predicts ~%.0f", name, got, want)
		}
	}
	check("transient", st.Transient, 0.25)
	check("ratelimit", st.RateLimit, 0.1)
	check("hard", st.Hard, 0.05)

	f.ResetStats()
	if got := f.Stats(); got != (FlakyStats{}) {
		t.Fatalf("ResetStats left %+v", got)
	}
}

func TestFlakyErrorClassification(t *testing.T) {
	for _, tc := range []struct {
		kind      FaultKind
		transient bool
	}{
		{FaultTransient, true},
		{FaultRateLimit, true},
		{FaultHard, false},
	} {
		e := &FaultError{Engine: "e", Op: "count", Kind: tc.kind}
		if e.Transient() != tc.transient {
			t.Errorf("%s: Transient() = %v, want %v", tc.kind, e.Transient(), tc.transient)
		}
	}
}

func TestFlakyPassThroughWhenClean(t *testing.T) {
	f := NewFlaky(&stubEngine{name: "e"}, FaultModel{}, NewRand(1))
	if n, err := f.Count("abcd"); err != nil || n != 4 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	res, err := f.Search("q", 3)
	if err != nil || len(res) != 3 {
		t.Fatalf("Search = %v, %v", res, err)
	}
	if body, err := f.Fetch("u"); err != nil || body != "body:u" {
		t.Fatalf("Fetch = %q, %v", body, err)
	}
	if _, err := f.Fetch("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Fetch(missing) = %v, want ErrNotFound", err)
	}
}

func TestFlakySlowTailAndStallDelay(t *testing.T) {
	model := FaultModel{
		Count:    FaultProfile{Stall: 1.0},
		StallFor: 30 * time.Millisecond,
	}
	f := NewFlaky(&stubEngine{name: "e"}, model, NewRand(1))
	start := time.Now()
	if _, err := f.Count("abc"); err != nil {
		t.Fatalf("stalled call should still succeed: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("stall slept only %v", d)
	}
	if st := f.Stats(); st.Stalls != 1 {
		t.Fatalf("Stalls = %d, want 1", st.Stalls)
	}
}

// TestFlakySharedRandConcurrency exercises a Delayed+Flaky stack sharing
// one Rand from many goroutines; run under -race this is the regression
// test for the per-wrapper unlocked rand.Rand bug.
func TestFlakySharedRandConcurrency(t *testing.T) {
	rng := NewRand(99)
	delayed := NewDelayedRand(&stubEngine{name: "e"}, LatencyModel{Jitter: time.Microsecond, Base: time.Microsecond}, rng)
	f := NewFlaky(delayed, TransientOnly(0.3), rng)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_, _ = f.Count("abc")
				_, _ = f.Search("abc", 2)
			}
		}()
	}
	wg.Wait()
	if st := f.Stats(); st.Calls != 16*100 {
		t.Fatalf("Calls = %d, want %d", st.Calls, 16*100)
	}
}
