package search

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// The HTTP layer exposes an Engine over a JSON API, so that WSQ's external
// calls traverse a real network stack (sockets, HTTP framing, connection
// pooling) just as the paper's prototype did against AltaVista and Google.
//
// API:
//
//	GET /count?q=EXPR                 -> {"count": N}
//	GET /search?q=EXPR&k=K            -> {"results": [{url,rank,date,score}...]}
//	GET /fetch?url=URL                -> {"body": "..."}
//	GET /healthz                      -> {"engine": name}

type countResponse struct {
	Count int64 `json:"count"`
}

type searchResponse struct {
	Results []Result `json:"results"`
}

type fetchResponse struct {
	Body string `json:"body"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// NewHandler wraps an engine in an http.Handler implementing the API.
func NewHandler(e Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/count", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			writeError(w, http.StatusBadRequest, "missing q parameter")
			return
		}
		n, err := e.Count(q)
		if err != nil {
			writeError(w, errStatus(err), err.Error())
			return
		}
		writeJSON(w, countResponse{Count: n})
	})
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			writeError(w, http.StatusBadRequest, "missing q parameter")
			return
		}
		k := 10
		if ks := r.URL.Query().Get("k"); ks != "" {
			var err error
			k, err = strconv.Atoi(ks)
			if err != nil || k < 0 {
				writeError(w, http.StatusBadRequest, "bad k parameter")
				return
			}
		}
		res, err := e.Search(q, k)
		if err != nil {
			writeError(w, errStatus(err), err.Error())
			return
		}
		writeJSON(w, searchResponse{Results: res})
	})
	mux.HandleFunc("/fetch", func(w http.ResponseWriter, r *http.Request) {
		u := r.URL.Query().Get("url")
		if u == "" {
			writeError(w, http.StatusBadRequest, "missing url parameter")
			return
		}
		body, err := e.Fetch(u)
		if err == ErrNotFound {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		if err != nil {
			writeError(w, errStatus(err), err.Error())
			return
		}
		writeJSON(w, fetchResponse{Body: body})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"engine": e.Name()})
	})
	return mux
}

// errStatus maps an engine error to an HTTP status so the transient /
// permanent distinction survives the wire: injected rate limits become 429,
// other transient faults 503, everything else 500.
func errStatus(err error) int {
	var fe *FaultError
	if errors.As(err, &fe) {
		switch fe.Kind {
		case FaultRateLimit:
			return http.StatusTooManyRequests
		case FaultTransient:
			return http.StatusServiceUnavailable
		}
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late to change the status; nothing more to do.
		_ = err
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

// Client is an Engine backed by a remote HTTP search service. It pools
// connections aggressively: a WSQ query plan may have dozens of requests
// in flight against the same host.
type Client struct {
	name    string
	baseURL string
	http    *http.Client
}

// NewClient builds a client for the engine served at baseURL.
func NewClient(name, baseURL string) *Client {
	tr := &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
		IdleConnTimeout:     60 * time.Second,
	}
	return &Client{
		name:    name,
		baseURL: baseURL,
		http:    &http.Client{Transport: tr, Timeout: 60 * time.Second},
	}
}

// Name implements Engine.
func (c *Client) Name() string { return c.name }

func (c *Client) get(ctx context.Context, path string, params url.Values, out interface{}) error {
	u := c.baseURL + path + "?" + params.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("engine %s: %w", c.name, err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("engine %s: %w", c.name, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("engine %s: read response: %w", c.name, err)
	}
	if resp.StatusCode == http.StatusNotFound {
		return ErrNotFound
	}
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		_ = json.Unmarshal(body, &er)
		return &StatusError{Engine: c.name, Code: resp.StatusCode, Msg: er.Error}
	}
	return json.Unmarshal(body, out)
}

// StatusError is a non-OK HTTP response from a remote engine. 429 and 503
// are classified transient (retryable), mirroring errStatus on the server.
type StatusError struct {
	Engine string
	Code   int
	Msg    string
}

func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("engine %s: %s", e.Engine, e.Msg)
	}
	return fmt.Sprintf("engine %s: HTTP %d", e.Engine, e.Code)
}

// Transient reports whether the failure is worth retrying.
func (e *StatusError) Transient() bool {
	return e.Code == http.StatusTooManyRequests || e.Code == http.StatusServiceUnavailable
}

// Count returns the hit count for the query. The request is bound to ctx:
// cancellation or deadline expiry aborts it mid-flight (on top of the
// http.Client's own 60s cap).
func (c *Client) Count(ctx context.Context, query string) (int64, error) {
	var out countResponse
	params := url.Values{"q": {query}}
	if err := c.get(ctx, "/count", params, &out); err != nil {
		return 0, err
	}
	return out.Count, nil
}

// Search returns the top-k results for the query under ctx.
func (c *Client) Search(ctx context.Context, query string, k int) ([]Result, error) {
	var out searchResponse
	params := url.Values{"q": {query}, "k": {strconv.Itoa(k)}}
	if err := c.get(ctx, "/search", params, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Fetch returns the body of the page at pageURL under ctx.
func (c *Client) Fetch(ctx context.Context, pageURL string) (string, error) {
	var out fetchResponse
	params := url.Values{"url": {pageURL}}
	if err := c.get(ctx, "/fetch", params, &out); err != nil {
		return "", err
	}
	return out.Body, nil
}

// Bound adapts the context-aware Client to the synchronous Engine
// interface by binding every request to a fixed context. The Engine
// protocol stays synchronous by design — per-call cancellation,
// deadlines and hedging are owned by the pump layer — but a Bound
// client scoped to a process or serve context lets shutdown abort
// whatever HTTP requests are still in flight instead of abandoning
// them to the transport's 60s timeout.
type Bound struct {
	// Client issues the requests.
	Client *Client
	// Ctx bounds every request; nil means no lifetime bound beyond the
	// transport's own timeout.
	Ctx context.Context
}

// Bind wraps c into an Engine whose requests live within ctx.
func Bind(ctx context.Context, c *Client) *Bound { return &Bound{Client: c, Ctx: ctx} }

func (b *Bound) context() context.Context {
	ctx := b.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// Name implements Engine.
func (b *Bound) Name() string { return b.Client.Name() }

// Count implements Engine.
func (b *Bound) Count(query string) (int64, error) {
	return b.Client.Count(b.context(), query)
}

// Search implements Engine.
func (b *Bound) Search(query string, k int) ([]Result, error) {
	return b.Client.Search(b.context(), query, k)
}

// Fetch implements Engine.
func (b *Bound) Fetch(pageURL string) (string, error) {
	return b.Client.Fetch(b.context(), pageURL)
}
