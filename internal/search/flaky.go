package search

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// FaultKind classifies an injected fault.
type FaultKind string

// The injected fault kinds. Transient and RateLimit failures are retryable
// (a later identical request may succeed); Hard failures are not. Stall and
// SlowTail do not fail the call at all — they model a hung connection and a
// latency tail, which only a per-call deadline or a hedged duplicate
// request can mask.
const (
	FaultTransient FaultKind = "transient"
	FaultRateLimit FaultKind = "ratelimit"
	FaultHard      FaultKind = "hard"
	FaultStall     FaultKind = "stall"
	FaultSlowTail  FaultKind = "slowtail"
)

// FaultError is a failure injected by a Flaky engine wrapper.
type FaultError struct {
	Engine string
	Op     string // "count", "search", "fetch"
	Kind   FaultKind
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("%s %s: injected %s fault", e.Engine, e.Op, e.Kind)
}

// Transient reports whether retrying the call may succeed. The request
// pump's retry loop consults this via the async package's transient-error
// classification.
func (e *FaultError) Transient() bool {
	return e.Kind == FaultTransient || e.Kind == FaultRateLimit
}

// FaultProfile gives the per-request probability of each fault kind for
// one operation. Probabilities are evaluated cumulatively in the order
// Transient, RateLimit, Hard, Stall, SlowTail — at most one fault fires
// per request — so their sum must not exceed 1.
type FaultProfile struct {
	Transient float64
	RateLimit float64
	Hard      float64
	Stall     float64
	SlowTail  float64
}

// FaultModel configures a Flaky wrapper: one profile per engine operation
// (per-op probabilities, as Count is typically far cheaper and more
// reliable than Search in real engines) plus the durations of the two
// non-failing faults.
type FaultModel struct {
	Count  FaultProfile
	Search FaultProfile
	Fetch  FaultProfile
	// StallFor is how long a stalled call hangs before proceeding.
	StallFor time.Duration
	// SlowBy is the extra latency of a slow-tail call.
	SlowBy time.Duration
}

// UniformFaults applies the same profile to every operation.
func UniformFaults(p FaultProfile) FaultModel {
	return FaultModel{Count: p, Search: p, Fetch: p, StallFor: 100 * time.Millisecond, SlowBy: 50 * time.Millisecond}
}

// TransientOnly injects only retryable failures, each operation failing
// with probability p. Retries with enough attempts mask this model
// completely, which is what the golden fault-injection suite asserts.
func TransientOnly(p float64) FaultModel {
	return UniformFaults(FaultProfile{Transient: p})
}

// FlakyStats counts the faults a Flaky wrapper has injected.
type FlakyStats struct {
	Calls     int64
	Transient int64
	RateLimit int64
	Hard      int64
	Stalls    int64
	SlowTails int64
}

// Injected returns the total number of injected events (including
// non-failing stalls and slow tails).
func (s FlakyStats) Injected() int64 {
	return s.Transient + s.RateLimit + s.Hard + s.Stalls + s.SlowTails
}

// Flaky wraps an engine with deterministic, seeded fault injection. It is
// safe for concurrent use; the fault schedule is drawn from a locked Rand,
// typically the same one that drives the engine's Delayed latency wrapper,
// so one seed fixes the whole simulated engine's behavior.
//
// The wrapper decides the fault before invoking the inner engine: a failed
// call never reaches the engine (like a connection refused), while stalls
// and slow tails delay the request and then let it through.
type Flaky struct {
	inner Engine
	model FaultModel
	rng   *Rand

	// Injection counters, atomic (obs.Counter) rather than a
	// mutex-guarded struct: Stats assembles a FlakyStats snapshot from
	// individual loads.
	calls, transient, rateLimit, hard, stalls, slowTails obs.Counter

	// metrics holds registry handles attached by Observe; nil until then.
	metrics atomic.Pointer[engineMetrics]
}

// NewFlaky wraps inner with the given fault model, drawing the fault
// schedule from rng (use NewRand(seed); sharing the Delayed wrapper's Rand
// is encouraged).
func NewFlaky(inner Engine, model FaultModel, rng *Rand) *Flaky {
	if rng == nil {
		rng = NewRand(1)
	}
	return &Flaky{inner: inner, model: model, rng: rng}
}

// Name implements Engine.
func (f *Flaky) Name() string { return f.inner.Name() }

// Observe implements obs.Observable: injected faults are counted into
// the shared wsq_engine_faults_total family by engine and kind. Forwards
// to the wrapped engine if it is observable too.
func (f *Flaky) Observe(reg *obs.Registry) {
	f.metrics.Store(observeEngine(reg))
	if o, ok := f.inner.(obs.Observable); ok {
		o.Observe(reg)
	}
}

// inject draws the fault decision for one request. It returns a non-nil
// error for failing faults; for stalls and slow tails it sleeps and
// returns nil.
func (f *Flaky) inject(op string, p FaultProfile) error {
	f.calls.Inc()
	draw := f.rng.Float64()
	count := func(c *obs.Counter, kind FaultKind) {
		c.Inc()
		if m := f.metrics.Load(); m != nil {
			m.faults.With(f.inner.Name(), string(kind)).Inc()
		}
	}
	cum := p.Transient
	if draw < cum {
		count(&f.transient, FaultTransient)
		return &FaultError{Engine: f.inner.Name(), Op: op, Kind: FaultTransient}
	}
	cum += p.RateLimit
	if draw < cum {
		count(&f.rateLimit, FaultRateLimit)
		return &FaultError{Engine: f.inner.Name(), Op: op, Kind: FaultRateLimit}
	}
	cum += p.Hard
	if draw < cum {
		count(&f.hard, FaultHard)
		return &FaultError{Engine: f.inner.Name(), Op: op, Kind: FaultHard}
	}
	cum += p.Stall
	if draw < cum {
		count(&f.stalls, FaultStall)
		time.Sleep(f.model.StallFor)
		return nil
	}
	cum += p.SlowTail
	if draw < cum {
		count(&f.slowTails, FaultSlowTail)
		time.Sleep(f.model.SlowBy)
		return nil
	}
	return nil
}

// Count implements Engine.
func (f *Flaky) Count(query string) (int64, error) {
	if err := f.inject("count", f.model.Count); err != nil {
		return 0, err
	}
	return f.inner.Count(query)
}

// Search implements Engine.
func (f *Flaky) Search(query string, k int) ([]Result, error) {
	if err := f.inject("search", f.model.Search); err != nil {
		return nil, err
	}
	return f.inner.Search(query, k)
}

// Fetch implements Engine.
func (f *Flaky) Fetch(url string) (string, error) {
	if err := f.inject("fetch", f.model.Fetch); err != nil {
		return "", err
	}
	return f.inner.Fetch(url)
}

// Stats snapshots the injection counters.
func (f *Flaky) Stats() FlakyStats {
	return FlakyStats{
		Calls:     f.calls.Value(),
		Transient: f.transient.Value(),
		RateLimit: f.rateLimit.Value(),
		Hard:      f.hard.Value(),
		Stalls:    f.stalls.Value(),
		SlowTails: f.slowTails.Value(),
	}
}

// ResetStats zeroes the injection counters between experiment runs.
func (f *Flaky) ResetStats() {
	for _, c := range []*obs.Counter{&f.calls, &f.transient, &f.rateLimit, &f.hard, &f.stalls, &f.slowTails} {
		c.Reset()
	}
}
