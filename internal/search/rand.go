package search

import (
	"math/rand"
	"sync"
	"time"
)

// Rand is a seeded pseudo-random source guarded by a mutex, shared by the
// latency simulator (Delayed) and the fault injector (Flaky). The request
// pump runs engine calls from many goroutines at once, so an unguarded
// *rand.Rand would race; sharing one locked stream between the wrappers of
// an engine also keeps a whole simulated engine reproducible from a single
// seed.
type Rand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRand returns a locked source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{rng: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

// Int63n returns a uniform value in [0, n).
func (r *Rand) Int63n(n int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Int63n(n)
}

// Duration returns a uniform duration in [0, max); zero or negative max
// yields zero.
func (r *Rand) Duration(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(r.Int63n(int64(max)))
}

// Intn returns a uniform value in [0, n). It delegates to the underlying
// generator's Intn so the consumed stream is identical to an unwrapped
// *rand.Rand — corpus generation (websim) relies on this to keep its
// golden digests stable across the migration to the locked wrapper.
func (r *Rand) Intn(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Intn(n)
}

// Shuffle pseudo-randomizes the order of n elements via swap, consuming
// the same stream as the underlying generator's Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rng.Shuffle(n, swap)
}

// Zipf draws Zipf-distributed values from its parent Rand's stream,
// sharing the parent's lock. It exists because math/rand's Zipf cannot be
// built over an interface — it needs the concrete *rand.Rand the wrapper
// guards — and hand-rolling the rejection-inversion sampler would change
// the consumed stream.
type Zipf struct {
	r *Rand
	z *rand.Zipf
}

// NewZipf returns a Zipf generator over [0, imax] with parameters s > 1
// and v >= 1, drawing from r's stream.
func (r *Rand) NewZipf(s, v float64, imax uint64) *Zipf {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Zipf{r: r, z: rand.NewZipf(r.rng, s, v, imax)}
}

// Uint64 returns a Zipf-distributed value.
func (z *Zipf) Uint64() uint64 {
	z.r.mu.Lock()
	defer z.r.mu.Unlock()
	return z.z.Uint64()
}
