package search

import (
	"math/rand"
	"sync"
	"time"
)

// Rand is a seeded pseudo-random source guarded by a mutex, shared by the
// latency simulator (Delayed) and the fault injector (Flaky). The request
// pump runs engine calls from many goroutines at once, so an unguarded
// *rand.Rand would race; sharing one locked stream between the wrappers of
// an engine also keeps a whole simulated engine reproducible from a single
// seed.
type Rand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRand returns a locked source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{rng: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

// Int63n returns a uniform value in [0, n).
func (r *Rand) Int63n(n int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Int63n(n)
}

// Duration returns a uniform duration in [0, max); zero or negative max
// yields zero.
func (r *Rand) Duration(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(r.Int63n(int64(max)))
}
