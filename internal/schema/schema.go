// Package schema defines column and schema metadata with stable attribute
// identity.
//
// Every column instance in a query plan carries a globally unique AttrID.
// Expressions reference columns by AttrID, and each operator resolves
// AttrID → positional index against its input schema when it is opened.
// This identity-based scheme is what makes the asynchronous-iteration plan
// rewrites (ReqSync insertion, percolation, consolidation — Section 4.5 of
// the WSQ/DSQ paper) safe: operators can be reordered freely without any
// positional index fix-ups.
package schema

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/types"
)

// AttrID uniquely identifies one column instance within a process.
type AttrID uint32

// Type is a declared column type.
type Type uint8

// The supported column types.
const (
	TInt Type = iota
	TFloat
	TString
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// ParseType parses a SQL type name into a Type.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER", "BIGINT":
		return TInt, nil
	case "FLOAT", "REAL", "DOUBLE":
		return TFloat, nil
	case "VARCHAR", "CHAR", "STRING", "TEXT":
		return TString, nil
	default:
		return 0, fmt.Errorf("unknown column type %q", s)
	}
}

// ZeroValue returns the canonical zero of a type (used for padding and for
// aggregate seeds).
func (t Type) ZeroValue() types.Value {
	switch t {
	case TInt:
		return types.Int(0)
	case TFloat:
		return types.Float(0)
	default:
		return types.Str("")
	}
}

var nextAttr atomic.Uint32

// NewAttrID allocates a fresh, process-unique attribute identifier.
func NewAttrID() AttrID { return AttrID(nextAttr.Add(1)) }

// Column describes one column instance in a plan: its identity, the
// table/alias it came from, its name, and its type.
type Column struct {
	ID    AttrID
	Table string // table alias as written in the query ("" for computed)
	Name  string
	Type  Type
}

// QualifiedName returns "table.name" (or just "name" when unqualified).
func (c Column) QualifiedName() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
}

// New builds a schema from columns.
func New(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// IndexOf returns the position of the column with the given AttrID, or -1.
func (s *Schema) IndexOf(id AttrID) int {
	for i, c := range s.Cols {
		if c.ID == id {
			return i
		}
	}
	return -1
}

// ByID returns the column with the given AttrID.
func (s *Schema) ByID(id AttrID) (Column, bool) {
	i := s.IndexOf(id)
	if i < 0 {
		return Column{}, false
	}
	return s.Cols[i], true
}

// Resolve finds the column matching an optionally qualified name.
// Matching is case-insensitive. It returns an error if the name is
// ambiguous or not found.
func (s *Schema) Resolve(table, name string) (Column, error) {
	var found []Column
	for _, c := range s.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		found = append(found, c)
	}
	switch len(found) {
	case 0:
		if table != "" {
			return Column{}, fmt.Errorf("unknown column %s.%s", table, name)
		}
		return Column{}, fmt.Errorf("unknown column %s", name)
	case 1:
		return found[0], nil
	default:
		return Column{}, fmt.Errorf("ambiguous column %s (matches %d tables)", name, len(found))
	}
}

// Concat returns a new schema of s's columns followed by o's.
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.Cols)+len(o.Cols))
	cols = append(cols, s.Cols...)
	cols = append(cols, o.Cols...)
	return &Schema{Cols: cols}
}

// AttrIDs returns the set of attribute IDs present in the schema.
func (s *Schema) AttrIDs() map[AttrID]bool {
	m := make(map[AttrID]bool, len(s.Cols))
	for _, c := range s.Cols {
		m[c.ID] = true
	}
	return m
}

// Project returns a new schema holding only the columns with the given IDs,
// in the given order.
func (s *Schema) Project(ids []AttrID) (*Schema, error) {
	cols := make([]Column, 0, len(ids))
	for _, id := range ids {
		c, ok := s.ByID(id)
		if !ok {
			return nil, fmt.Errorf("schema has no attribute %d", id)
		}
		cols = append(cols, c)
	}
	return &Schema{Cols: cols}, nil
}

// String renders the schema for EXPLAIN output.
func (s *Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.QualifiedName()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
