package schema

import (
	"testing"

	"repro/internal/types"
)

func col(table, name string, ty Type) Column {
	return Column{ID: NewAttrID(), Table: table, Name: name, Type: ty}
}

func TestNewAttrIDUnique(t *testing.T) {
	seen := make(map[AttrID]bool)
	for i := 0; i < 1000; i++ {
		id := NewAttrID()
		if seen[id] {
			t.Fatalf("duplicate AttrID %d", id)
		}
		seen[id] = true
	}
}

func TestParseType(t *testing.T) {
	for in, want := range map[string]Type{
		"INT": TInt, "integer": TInt, "BIGINT": TInt,
		"FLOAT": TFloat, "real": TFloat, "DOUBLE": TFloat,
		"VARCHAR": TString, "char": TString, "TEXT": TString, "string": TString,
	} {
		got, err := ParseType(in)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("ParseType(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseType("BLOB"); err == nil {
		t.Error("unknown type should error")
	}
}

func TestTypeZeroValue(t *testing.T) {
	if v := TInt.ZeroValue(); v.Kind != types.KindInt || v.I != 0 {
		t.Error("TInt zero")
	}
	if v := TFloat.ZeroValue(); v.Kind != types.KindFloat || v.F != 0 {
		t.Error("TFloat zero")
	}
	if v := TString.ZeroValue(); v.Kind != types.KindString || v.S != "" {
		t.Error("TString zero")
	}
}

func TestResolve(t *testing.T) {
	name := col("States", "Name", TString)
	pop := col("States", "Population", TInt)
	t1 := col("WebCount", "T1", TString)
	s := New(name, pop, t1)

	got, err := s.Resolve("", "name") // case-insensitive
	if err != nil || got.ID != name.ID {
		t.Fatalf("Resolve name: %v %v", got, err)
	}
	got, err = s.Resolve("states", "Population")
	if err != nil || got.ID != pop.ID {
		t.Fatalf("Resolve qualified: %v %v", got, err)
	}
	if _, err := s.Resolve("", "Nope"); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := s.Resolve("Other", "Name"); err == nil {
		t.Error("wrong qualifier should error")
	}
	// Ambiguity.
	dup := New(col("A", "X", TInt), col("B", "X", TInt))
	if _, err := dup.Resolve("", "X"); err == nil {
		t.Error("ambiguous resolve should error")
	}
	if _, err := dup.Resolve("A", "X"); err != nil {
		t.Error("qualified resolve disambiguates")
	}
}

func TestIndexOfAndByID(t *testing.T) {
	a, b := col("T", "A", TInt), col("T", "B", TString)
	s := New(a, b)
	if s.IndexOf(a.ID) != 0 || s.IndexOf(b.ID) != 1 {
		t.Error("IndexOf positions")
	}
	if s.IndexOf(AttrID(999999)) != -1 {
		t.Error("missing attr should be -1")
	}
	got, ok := s.ByID(b.ID)
	if !ok || got.Name != "B" {
		t.Error("ByID")
	}
}

func TestConcatAndAttrIDs(t *testing.T) {
	a, b, c := col("L", "A", TInt), col("L", "B", TInt), col("R", "C", TInt)
	s := New(a, b).Concat(New(c))
	if s.Len() != 3 || s.Cols[2].ID != c.ID {
		t.Error("concat")
	}
	ids := s.AttrIDs()
	for _, cc := range []Column{a, b, c} {
		if !ids[cc.ID] {
			t.Errorf("AttrIDs missing %v", cc.Name)
		}
	}
}

func TestProject(t *testing.T) {
	a, b, c := col("T", "A", TInt), col("T", "B", TInt), col("T", "C", TInt)
	s := New(a, b, c)
	p, err := s.Project([]AttrID{c.ID, a.ID})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Cols[0].Name != "C" || p.Cols[1].Name != "A" {
		t.Errorf("project order: %v", p)
	}
	if _, err := s.Project([]AttrID{AttrID(424242)}); err == nil {
		t.Error("projecting a missing attribute should error")
	}
}

func TestQualifiedNameAndString(t *testing.T) {
	c1 := col("States", "Name", TString)
	if c1.QualifiedName() != "States.Name" {
		t.Error("qualified name")
	}
	c2 := Column{Name: "C"}
	if c2.QualifiedName() != "C" {
		t.Error("unqualified name")
	}
	s := New(c1, c2)
	if s.String() != "(States.Name, C)" {
		t.Errorf("schema string: %s", s)
	}
}
