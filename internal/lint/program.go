package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Program is the interprocedural view shared by the cross-function
// rules: every loaded package's function declarations indexed under a
// stable key, with outgoing calls resolved through go/types where
// possible and by name within a package otherwise.
//
// Each package is type-checked in its own universe (dependencies are
// re-checked signature-only by the loader's importer), so two
// *types.Func objects describing the same function are not pointer
// equal across packages. Keys are therefore strings —
// "importPath.RecvType.FuncName" — which both universes agree on.
type Program struct {
	Pkgs []*Package
	// Funcs maps every function/method declaration to its info.
	Funcs map[*ast.FuncDecl]*FuncInfo
	byKey map[string]*FuncInfo
}

// FuncInfo is one function or method declaration plus its resolved
// outgoing calls. Rules attach their own summaries; this layer only
// provides the graph.
type FuncInfo struct {
	Pkg  *Package
	File *ast.File
	Decl *ast.FuncDecl
	// Key is "importPath.RecvType.Name" (RecvType empty for functions).
	Key string
	// RecvType is the receiver's named type ("" for plain functions).
	RecvType string
	// Calls are the resolved outgoing call sites, in source order.
	Calls []CallEdge
}

// Name returns a human label like "(*Pump).run" or "Run".
func (f *FuncInfo) Name() string {
	if f.RecvType != "" {
		return "(*" + f.RecvType + ")." + f.Decl.Name.Name
	}
	return f.Decl.Name.Name
}

// CallEdge is one call site inside a function body.
type CallEdge struct {
	Call *ast.CallExpr
	// Target is the resolved callee, nil for calls into the standard
	// library, builtins, interface methods, and anything else outside
	// the loaded package set.
	Target *FuncInfo
	// InFuncLit marks calls written inside a function literal: they run
	// at some later invocation, not when the enclosing body does.
	InFuncLit bool
	// GoCall marks the operand of a `go` statement.
	GoCall bool
}

// BuildProgram indexes the packages and resolves their call graphs.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:  pkgs,
		Funcs: make(map[*ast.FuncDecl]*FuncInfo),
		byKey: make(map[string]*FuncInfo),
	}
	// Pass 1: index every declaration.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fi := &FuncInfo{
					Pkg:      pkg,
					File:     f,
					Decl:     fd,
					RecvType: recvTypeName(fd),
				}
				fi.Key = pkg.Path + "." + fi.RecvType + "." + fd.Name.Name
				prog.Funcs[fd] = fi
				prog.byKey[fi.Key] = fi
			}
		}
	}
	// Pass 2: resolve outgoing calls.
	for _, fi := range prog.Funcs {
		prog.resolveCalls(fi)
	}
	return prog
}

// FuncOf returns the info for a declaration (nil for bodyless decls).
func (p *Program) FuncOf(fd *ast.FuncDecl) *FuncInfo { return p.Funcs[fd] }

// Lookup finds a function by package path suffix, receiver type and
// name, e.g. Lookup("internal/async", "Pump", "run").
func (p *Program) Lookup(pkgSuffix, recvType, name string) *FuncInfo {
	for key, fi := range p.byKey {
		if fi.RecvType != recvType || fi.Decl.Name.Name != name {
			continue
		}
		path := strings.TrimSuffix(key, "."+recvType+"."+name)
		if pathMatch(path, pkgSuffix) {
			return fi
		}
	}
	return nil
}

// recvTypeName extracts a declaration's receiver type name
// syntactically ("Pump" for `func (p *Pump) run()`), handling pointer
// and generic receivers. It returns "" for plain functions.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := ast.Unparen(fd.Recv.List[0].Type)
	if star, ok := t.(*ast.StarExpr); ok {
		t = ast.Unparen(star.X)
	}
	switch x := t.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			return id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// objKey renders the stable cross-universe key for a function object.
func objKey(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		switch n := t.(type) {
		case *types.Named:
			recv = n.Obj().Name()
		case *types.Interface:
			return "" // interface methods have many implementations
		}
	}
	return fn.Pkg().Path() + "." + recv + "." + fn.Name()
}

// resolveCalls walks a function body recording every call site and its
// resolution. Resolution prefers type information; an unresolved bare
// ident falls back to a same-package function of that name, so fixture
// packages with partial type info still link.
func (p *Program) resolveCalls(fi *FuncInfo) {
	pkg := fi.Pkg
	litDepth := 0
	inGo := map[*ast.CallExpr]bool{}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch x := c.(type) {
			case *ast.FuncLit:
				litDepth++
				walk(x.Body)
				litDepth--
				return false
			case *ast.GoStmt:
				inGo[x.Call] = true
			case *ast.CallExpr:
				edge := CallEdge{Call: x, InFuncLit: litDepth > 0, GoCall: inGo[x]}
				edge.Target = p.resolveTarget(pkg, x)
				fi.Calls = append(fi.Calls, edge)
			}
			return true
		})
	}
	walk(fi.Decl.Body)
}

// resolveTarget maps one call expression to a loaded FuncInfo, or nil.
func (p *Program) resolveTarget(pkg *Package, call *ast.CallExpr) *FuncInfo {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if pkg.Info != nil {
			obj = pkg.Info.Uses[fun]
		}
		if obj == nil {
			// Name fallback: a same-package function (fixtures with
			// incomplete type info still need their helpers linked).
			if fi, ok := p.byKey[pkg.Path+".."+fun.Name]; ok {
				return fi
			}
			return nil
		}
	case *ast.SelectorExpr:
		if pkg.Info != nil {
			obj = pkg.Info.Uses[fun.Sel]
		}
		if obj == nil {
			// Method-on-local-receiver fallback by receiver type name.
			if named := recvNamed(pkg, fun); named != nil {
				if fi, ok := p.byKey[pkg.Path+"."+named.Obj().Name()+"."+fun.Sel.Name]; ok {
					return fi
				}
			}
			return nil
		}
	default:
		return nil
	}
	key := objKey(obj)
	if key == "" {
		return nil
	}
	return p.byKey[key]
}

// ProgramRule is a rule that analyzes the whole loaded package set at
// once (call-graph rules). Run builds the Program once and dispatches;
// the embedded Rule's Check method is not used for these.
type ProgramRule interface {
	Rule
	CheckProgram(prog *Program) []Diagnostic
}

// fixedPoint iterates mark over every function until no new function is
// marked: the generic propagation loop behind the transitive summaries
// (effectful, cancellable, lock-acquiring). mark returns true when it
// newly marked fi.
func (p *Program) fixedPoint(mark func(fi *FuncInfo) bool) {
	for changed := true; changed; {
		changed = false
		for _, fi := range p.Funcs {
			if mark(fi) {
				changed = true
			}
		}
	}
}
