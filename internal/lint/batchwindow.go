package lint

import (
	"fmt"
	"go/ast"
)

// batchWindow enforces the vectorized protocol's reuse invariant: a
// Batch returned by NextBatch/NextBatchFrom is a window into
// operator-owned storage, valid only until the next NextBatch call on
// the same operator. Callers may iterate it and may copy tuple
// references out (`append(out, b...)` re-slices the elements), but the
// window itself must not outlive its validity:
//
//   - storing the batch in a struct field or package variable retains
//     it indefinitely;
//   - capturing it in a `go` function literal lets it race the
//     producer's next refill;
//   - appending the batch value itself (no ...) into any slice aliases
//     the window past the loop iteration that owns it;
//   - using it after a subsequent NextBatch on the same operator reads
//     a window the producer may already have overwritten.
//
// The same applies across calls: passing a batch to a function whose
// summary retains the parameter (field assignment, goroutine capture,
// whole-value append, or forwarding to another retainer) is flagged at
// the call site, so the invariant holds through helper boundaries.
//
// Producers are exempt: a method named NextBatch hands out windows by
// contract.
type batchWindow struct{}

func newBatchWindow() *batchWindow { return &batchWindow{} }

func (*batchWindow) Name() string { return "batchwindow" }

func (*batchWindow) Doc() string {
	return "NextBatch windows must not be stored in fields, captured by goroutines, appended whole, used past the next NextBatch, or passed to retaining functions"
}

func (r *batchWindow) CheckProgram(prog *Program) []Diagnostic {
	sums := bwSummaries(prog)
	var diags []Diagnostic
	for _, fi := range prog.Funcs {
		if !pathMatch(fi.Pkg.Path, "internal/exec", "internal/async") {
			continue
		}
		if fi.Decl.Name.Name == "NextBatch" {
			continue // producers hand out windows by contract
		}
		diags = append(diags, r.checkFunc(prog, fi, sums)...)
	}
	return diags
}

// batchCall matches a NextBatch/NextBatchFrom call and returns the
// producing operator's receiver path ("j.Left", "op") for same-operator
// invalidation tracking.
func batchCall(call *ast.CallExpr) (producer string, ok bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name != "NextBatch" {
			return "", false
		}
		p, _ := exprPath(fun.X)
		return p, true
	case *ast.Ident:
		if fun.Name != "NextBatchFrom" || len(call.Args) < 2 {
			return "", false
		}
		p, _ := exprPath(call.Args[1])
		return p, true
	}
	return "", false
}

// bwSummary records which parameters (by index) a function retains.
type bwSummary struct {
	retains map[int]bool
	why     map[int]string
}

// bwSummaries computes parameter-retention summaries for every loaded
// function to a fixed point (retention propagates through forwarding
// calls).
func bwSummaries(prog *Program) map[*FuncInfo]*bwSummary {
	sums := make(map[*FuncInfo]*bwSummary, len(prog.Funcs))
	params := make(map[*FuncInfo][]string)
	for _, fi := range prog.Funcs {
		sums[fi] = &bwSummary{retains: map[int]bool{}, why: map[int]string{}}
		var names []string
		if fi.Decl.Type.Params != nil {
			for _, field := range fi.Decl.Type.Params.List {
				for _, n := range field.Names {
					names = append(names, n.Name)
				}
			}
		}
		params[fi] = names
	}
	prog.fixedPoint(func(fi *FuncInfo) bool {
		sum := sums[fi]
		idx := make(map[string]int, len(params[fi]))
		for i, n := range params[fi] {
			if n != "_" {
				idx[n] = i
			}
		}
		if len(idx) == 0 {
			return false
		}
		changed := false
		mark := func(name, why string) {
			if i, ok := idx[name]; ok && !sum.retains[i] {
				sum.retains[i] = true
				sum.why[i] = why
				changed = true
			}
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					if _, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); !isSel {
						continue
					}
					if i >= len(x.Rhs) {
						continue
					}
					for _, name := range wholeValueUses(x.Rhs[i]) {
						mark(name, "stores it in a field")
					}
				}
			case *ast.GoStmt:
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
					for name := range identUses(lit.Body) {
						mark(name, "captures it in a goroutine")
					}
				}
			}
			return true
		})
		// Forwarding: passing a param whole to a retaining callee.
		for _, edge := range fi.Calls {
			if edge.Target == nil || edge.InFuncLit {
				continue
			}
			ts := sums[edge.Target]
			for ai, arg := range edge.Call.Args {
				if !ts.retains[ai] {
					continue
				}
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					mark(id.Name, "forwards it to "+edge.Target.Name()+", which "+ts.why[ai])
				}
			}
		}
		return changed
	})
	return sums
}

// wholeValueUses returns identifier names whose whole value flows into
// e: the bare ident itself, or append(..., ident) without ellipsis.
// append(dst, ident...) copies elements and is exempt.
func wholeValueUses(e ast.Expr) []string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return []string{x.Name}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && x.Ellipsis == 0 {
			var out []string
			for _, a := range x.Args[1:] {
				if aid, ok := ast.Unparen(a).(*ast.Ident); ok {
					out = append(out, aid.Name)
				}
			}
			return out
		}
	}
	return nil
}

// identUses collects every identifier referenced under n.
func identUses(n ast.Node) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok {
			out[id.Name] = true
		}
		return true
	})
	return out
}

func (r *batchWindow) checkFunc(prog *Program, fi *FuncInfo, sums map[*FuncInfo]*bwSummary) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, batch, what string) {
		diags = append(diags, Diagnostic{
			Pos:  fi.Pkg.Position(n.Pos()),
			Rule: r.Name(),
			Message: fmt.Sprintf("batch %s is a window into producer-owned storage, valid only until its next NextBatch; %s "+
				"(copy tuples out with append(dst, %s...) instead)", batch, what, batch),
		})
	}

	// batches: var name -> producer path, live in the enclosing scope.
	type binding struct {
		name     string
		producer string
	}
	var walkBlock func(list []ast.Stmt, inherited []binding)
	walkBlock = func(list []ast.Stmt, inherited []binding) {
		live := append([]binding(nil), inherited...)
		invalidated := map[string]bool{} // batch var -> producer advanced
		for _, s := range list {
			// Uses of already-invalidated batches in this statement.
			for _, b := range live {
				if !invalidated[b.name] {
					continue
				}
				used := false
				inspectShallow(s, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok && id.Name == b.name {
						used = true
					}
					return true
				})
				if used {
					report(s, b.name, fmt.Sprintf("it is used after a later NextBatch on %s invalidated it", b.producer))
					invalidated[b.name] = false // one report per var
				}
			}
			// Retention checks for live batches inside this statement.
			isBatch := func(name string) (binding, bool) {
				for _, b := range live {
					if b.name == name {
						return b, true
					}
				}
				return binding{}, false
			}
			inspectShallow(s, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					for i, lhs := range x.Lhs {
						if _, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); !isSel {
							continue
						}
						if i >= len(x.Rhs) {
							continue
						}
						for _, name := range wholeValueUses(x.Rhs[i]) {
							if _, ok := isBatch(name); ok {
								report(x, name, "it is retained in a field or captured variable")
							}
						}
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && x.Ellipsis == 0 {
						for _, a := range x.Args[1:] {
							if aid, ok := ast.Unparen(a).(*ast.Ident); ok {
								if _, isB := isBatch(aid.Name); isB {
									report(x, aid.Name, "it is appended whole, aliasing the window past this iteration")
								}
							}
						}
					}
				}
				return true
			})
			// Goroutine captures (GoStmt bodies are skipped by
			// inspectShallow... they are FuncLits, so walk explicitly).
			ast.Inspect(s, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if lit, isLit := gs.Call.Fun.(*ast.FuncLit); isLit {
					uses := identUses(lit.Body)
					for _, b := range live {
						if uses[b.name] {
							report(gs, b.name, "it is captured by a goroutine that may outlive the window")
						}
					}
				}
				return true
			})
			// Interprocedural: batch passed whole to a retaining callee.
			for _, edge := range callsIn(fi, s) {
				if edge.Target == nil || edge.InFuncLit {
					continue
				}
				ts := sums[edge.Target]
				for ai, arg := range edge.Call.Args {
					if !ts.retains[ai] {
						continue
					}
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if _, isB := isBatch(id.Name); isB {
							report(edge.Call, id.Name, fmt.Sprintf("it is passed to %s, which %s", edge.Target.Name(), ts.why[ai]))
						}
					}
				}
			}
			// New bindings and invalidations from this statement's
			// NextBatch calls.
			inspectShallow(s, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				producer, isNB := batchCall(call)
				if !isNB {
					return true
				}
				bound := ""
				if assign, isAssign := s.(*ast.AssignStmt); isAssign && len(assign.Rhs) == 1 && ast.Unparen(assign.Rhs[0]) == call {
					if id, isID := ast.Unparen(assign.Lhs[0]).(*ast.Ident); isID && id.Name != "_" {
						bound = id.Name
					}
				}
				// A later NextBatch on the same producer invalidates every
				// earlier window from it, except a var this call rebinds.
				for i := range live {
					if live[i].producer == producer && live[i].name != bound {
						invalidated[live[i].name] = true
					}
				}
				if bound != "" {
					replaced := false
					for i := range live {
						if live[i].name == bound {
							live[i].producer = producer
							invalidated[bound] = false
							replaced = true
						}
					}
					if !replaced {
						live = append(live, binding{name: bound, producer: producer})
					}
				}
				return true
			})
			// Recurse into nested blocks with the current live set.
			switch x := s.(type) {
			case *ast.BlockStmt:
				walkBlock(x.List, live)
			case *ast.IfStmt:
				walkBlock(x.Body.List, live)
				if x.Else != nil {
					if eb, ok := x.Else.(*ast.BlockStmt); ok {
						walkBlock(eb.List, live)
					} else {
						walkBlock([]ast.Stmt{x.Else}, live)
					}
				}
			case *ast.ForStmt:
				walkBlock(x.Body.List, live)
			case *ast.RangeStmt:
				walkBlock(x.Body.List, live)
			case *ast.SwitchStmt:
				for _, c := range x.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walkBlock(cc.Body, live)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range x.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walkBlock(cc.Body, live)
					}
				}
			case *ast.SelectStmt:
				for _, c := range x.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						walkBlock(cc.Body, live)
					}
				}
			case *ast.LabeledStmt:
				walkBlock([]ast.Stmt{x.Stmt}, live)
			}
		}
	}
	walkBlock(fi.Decl.Body.List, nil)

	// De-duplicate: the nested walk can visit a statement through both
	// the outer list and a labeled wrapper.
	seen := map[string]bool{}
	var out []Diagnostic
	for _, d := range diags {
		k := fmt.Sprintf("%s:%d:%d:%s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message)
		if !seen[k] {
			seen[k] = true
			out = append(out, d)
		}
	}
	return out
}

// callsIn returns fi's call edges whose call expression lies within s.
func callsIn(fi *FuncInfo, s ast.Stmt) []CallEdge {
	var out []CallEdge
	for _, e := range fi.Calls {
		if e.Call.Pos() >= s.Pos() && e.Call.End() <= s.End() {
			out = append(out, e)
		}
	}
	return out
}

// Check satisfies Rule; batchWindow only runs via CheckProgram.
func (*batchWindow) Check(*Package) []Diagnostic { return nil }
