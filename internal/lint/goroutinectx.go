package lint

import (
	"go/ast"
	"go/token"
	"regexp"
)

// goroutineCtx checks that goroutines spawned in the async and server
// layers cannot outlive their owners silently. A `go func` literal in
// internal/async or internal/server must either
//
//   - select on (or receive from) a cancellation signal — ctx.Done(),
//     a stop/done/quit/closed channel — so pump shutdown and query
//     cancellation actually reach it, or
//   - be registered with a sync.WaitGroup (defer wg.Done()), so a
//     drain/settle path can wait for it.
//
// Unowned goroutines are how a long-lived wsqd leaks: the chaos suite's
// goroutine-settle assertions catch some at runtime; this catches the
// pattern at compile time.
type goroutineCtx struct{}

func newGoroutineCtx() *goroutineCtx { return &goroutineCtx{} }

func (*goroutineCtx) Name() string { return "goroutinectx" }

func (*goroutineCtx) Doc() string {
	return "go func literals in internal/{async,server,shard} must select on a cancellation signal or register with a WaitGroup"
}

// cancelChanRx matches channel identifiers that conventionally signal
// shutdown.
var cancelChanRx = regexp.MustCompile(`(?i)^(done|stop|stopped|quit|exit|closed?|cancel|shutdown)$`)

// wgNameRx is the no-type-info fallback for WaitGroup receivers.
var wgNameRx = regexp.MustCompile(`(?i)(^|\.)wg$|waitgroup$`)

func (r *goroutineCtx) Check(pkg *Package) []Diagnostic {
	if !pathMatch(pkg.Path, "internal/async", "internal/server", "internal/shard") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true // `go p.run(c)`: the named function owns its lifecycle
			}
			if r.hasCancellationPath(pkg, lit.Body) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  pkg.Position(gs.Pos()),
				Rule: r.Name(),
				Message: "goroutine has no cancellation path: select on ctx.Done()/a close channel " +
					"or register it with a WaitGroup (defer wg.Done()) so shutdown can reach it",
			})
			return true
		})
	}
	return diags
}

func (r *goroutineCtx) hasCancellationPath(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			// A receive from ctx.Done() / <-stop anywhere (select case,
			// loop condition, bare statement) is a cancellation path.
			if x.Op == token.ARROW && isCancelSource(x.X) {
				found = true
			}
		case *ast.DeferStmt:
			// defer wg.Done() — goroutine is awaited by a drain path.
			if recv, name := callee(x.Call); name == "Done" && recv != "" {
				if sel, ok := ast.Unparen(x.Call.Fun).(*ast.SelectorExpr); ok {
					if named := recvNamed(pkg, sel); named != nil {
						if isNamedType(named, "sync", "WaitGroup") {
							found = true
						}
					} else if wgNameRx.MatchString(recv) {
						found = true
					}
				}
			}
		case *ast.RangeStmt:
			// `for v := range ch` over a cancel-ish channel also ends with
			// close(ch).
			if isCancelSource(x.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isCancelSource recognizes expressions that deliver a shutdown signal:
// a call to something named Done()/Closed() (ctx.Done(), pump.Closed()),
// or a channel identifier with a conventional shutdown name.
func isCancelSource(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		_, name := callee(x)
		return name == "Done" || name == "Closed" || name == "Closing"
	case *ast.Ident:
		return cancelChanRx.MatchString(x.Name)
	case *ast.SelectorExpr:
		return cancelChanRx.MatchString(x.Sel.Name)
	}
	return false
}
