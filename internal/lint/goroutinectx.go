package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
)

// goroutineCtx checks that goroutines spawned in the async and server
// layers cannot outlive their owners silently. A `go func` literal in
// internal/async or internal/server must either
//
//   - select on (or receive from) a cancellation signal — ctx.Done(),
//     a stop/done/quit/closed channel — so pump shutdown and query
//     cancellation actually reach it, or
//   - be registered with a sync.WaitGroup (defer wg.Done()), so a
//     drain/settle path can wait for it.
//
// Unowned goroutines are how a long-lived wsqd leaks: the chaos suite's
// goroutine-settle assertions catch some at runtime; this catches the
// pattern at compile time.
//
// The check is interprocedural: a `go p.run(c)` whose named target
// resolves in the loaded program is held to the same standard, with
// cancellability propagating through the target's callees — p.run is
// fine because its execute loop selects on the call's ctx.Done(), even
// though run itself never mentions a channel. Unresolvable targets
// (stdlib, interface methods) are skipped.
type goroutineCtx struct{}

func newGoroutineCtx() *goroutineCtx { return &goroutineCtx{} }

func (*goroutineCtx) Name() string { return "goroutinectx" }

func (*goroutineCtx) Doc() string {
	return "goroutines in internal/{async,server,shard} must reach a cancellation signal (directly or via their named target's callees) or register with a WaitGroup"
}

// cancelChanRx matches channel identifiers that conventionally signal
// shutdown.
var cancelChanRx = regexp.MustCompile(`(?i)^(done|stop|stopped|quit|exit|closed?|cancel|shutdown)$`)

// wgNameRx is the no-type-info fallback for WaitGroup receivers.
var wgNameRx = regexp.MustCompile(`(?i)(^|\.)wg$|waitgroup$`)

// Check satisfies Rule; goroutineCtx runs via CheckProgram.
func (r *goroutineCtx) Check(pkg *Package) []Diagnostic { return nil }

func (r *goroutineCtx) CheckProgram(prog *Program) []Diagnostic {
	cancellable := r.cancellableFuncs(prog)
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if !pathMatch(pkg.Path, "internal/async", "internal/server", "internal/shard") {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if lit, isLit := gs.Call.Fun.(*ast.FuncLit); isLit {
					if r.hasCancellationPath(pkg, lit.Body) || r.callsCancellable(prog, pkg, lit.Body, cancellable) {
						return true
					}
					diags = append(diags, Diagnostic{
						Pos:  pkg.Position(gs.Pos()),
						Rule: r.Name(),
						Message: "goroutine has no cancellation path: select on ctx.Done()/a close channel " +
							"or register it with a WaitGroup (defer wg.Done()) so shutdown can reach it",
					})
					return true
				}
				// Named target: hold it to the same standard when it
				// resolves inside the program.
				target := prog.resolveTarget(pkg, gs.Call)
				if target == nil || cancellable[target] {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:  pkg.Position(gs.Pos()),
					Rule: r.Name(),
					Message: fmt.Sprintf("goroutine target %s has no cancellation path (neither it nor its callees select on "+
						"ctx.Done()/a close channel or register with a WaitGroup); shutdown cannot reach it", target.Name()),
				})
				return true
			})
		}
	}
	return diags
}

// cancellableFuncs marks every function that owns a cancellation path,
// directly or through any resolved callee (calls launched with `go`
// don't count: a child goroutine's exit does not stop its parent).
func (r *goroutineCtx) cancellableFuncs(prog *Program) map[*FuncInfo]bool {
	out := make(map[*FuncInfo]bool)
	for _, fi := range prog.Funcs {
		if r.hasCancellationPath(fi.Pkg, fi.Decl.Body) {
			out[fi] = true
		}
	}
	prog.fixedPoint(func(fi *FuncInfo) bool {
		if out[fi] {
			return false
		}
		for _, e := range fi.Calls {
			if e.GoCall || e.Target == nil {
				continue
			}
			if out[e.Target] {
				out[fi] = true
				return true
			}
		}
		return false
	})
	return out
}

// callsCancellable reports whether a goroutine literal's body calls a
// resolved function that owns a cancellation path.
func (r *goroutineCtx) callsCancellable(prog *Program, pkg *Package, body *ast.BlockStmt, cancellable map[*FuncInfo]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if target := prog.resolveTarget(pkg, call); target != nil && cancellable[target] {
				found = true
			}
		}
		return !found
	})
	return found
}

func (r *goroutineCtx) hasCancellationPath(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			// A receive from ctx.Done() / <-stop anywhere (select case,
			// loop condition, bare statement) is a cancellation path.
			if x.Op == token.ARROW && isCancelSource(x.X) {
				found = true
			}
		case *ast.DeferStmt:
			// defer wg.Done() — goroutine is awaited by a drain path.
			if recv, name := callee(x.Call); name == "Done" && recv != "" {
				if sel, ok := ast.Unparen(x.Call.Fun).(*ast.SelectorExpr); ok {
					if named := recvNamed(pkg, sel); named != nil {
						if isNamedType(named, "sync", "WaitGroup") {
							found = true
						}
					} else if wgNameRx.MatchString(recv) {
						found = true
					}
				}
			}
		case *ast.RangeStmt:
			// `for v := range ch` over a cancel-ish channel also ends with
			// close(ch).
			if isCancelSource(x.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isCancelSource recognizes expressions that deliver a shutdown signal:
// a call to something named Done()/Closed() (ctx.Done(), pump.Closed()),
// or a channel identifier with a conventional shutdown name.
func isCancelSource(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		_, name := callee(x)
		return name == "Done" || name == "Closed" || name == "Closing"
	case *ast.Ident:
		return cancelChanRx.MatchString(x.Name)
	case *ast.SelectorExpr:
		return cancelChanRx.MatchString(x.Sel.Name)
	}
	return false
}
