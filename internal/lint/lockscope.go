package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
)

// lockScope checks mutex discipline around the pump and server hot
// paths. Two invariants:
//
//  1. A mu.Lock() that is not immediately paired with `defer
//     mu.Unlock()` must have a matching Unlock() on every control-flow
//     path to every return — the admission-control and stats paths
//     unlock manually for latency, and one missed path wedges every
//     future query (ReqPump waiters park on p.cond under p.mu forever).
//
//  2. While any lock is held, no channel send/receive, select, or
//     blocking pump operation (RegisterCtx, AwaitAnyCtx, ...) may run:
//     those park the goroutine for unbounded time with the lock held,
//     turning a slow external call into a server-wide stall.
//     sync.Cond Wait/Signal/Broadcast are exempt (Wait releases the
//     mutex by contract).
//
// The walker mirrors slotbalance's structured abstract interpretation,
// with a held-lock set keyed by the receiver chain ("s.mu", "p.rngMu").
type lockScope struct {
	pumpBlocking map[string]bool
}

func newLockScope() *lockScope {
	return &lockScope{
		pumpBlocking: map[string]bool{
			"Register": true, "RegisterCtx": true, "AwaitAny": true,
			"AwaitAnyCtx": true, "CallWithRetry": true,
		},
	}
}

func (*lockScope) Name() string { return "lockscope" }

func (*lockScope) Doc() string {
	return "manual mu.Lock() must unlock on every return path; no channel operations or blocking pump calls while a lock is held"
}

// mutexNameRx is the fallback when type information is unavailable:
// receivers whose final segment looks like a mutex.
var mutexNameRx = regexp.MustCompile(`(?i)(mu|mutex|lock)$`)

// isMutexRecv decides whether path.method() is a mutex operation, using
// the type checker when it resolved the selector and a name heuristic
// otherwise.
func (r *lockScope) isMutexRecv(pkg *Package, call *ast.CallExpr) (key string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	path, pathOK := exprPath(sel.X)
	if !pathOK {
		return "", false
	}
	if named := recvNamed(pkg, sel); named != nil {
		if isNamedType(named, "sync", "Mutex") || isNamedType(named, "sync", "RWMutex") {
			return path, true
		}
		return "", false
	}
	return path, mutexNameRx.MatchString(lastSegment(path))
}

func (r *lockScope) Check(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lsWalker{rule: r, pkg: pkg, fname: fd.Name.Name}
			st := w.block(fd.Body.List, lsState{held: map[string]token.Pos{}, deferred: map[string]bool{}})
			w.checkExit(fd.Body.End(), st)
			diags = append(diags, w.diags...)
			for _, lit := range funcLits(fd.Body) {
				lw := &lsWalker{rule: r, pkg: pkg, fname: fd.Name.Name + " (func literal)"}
				lst := lw.block(lit.Body.List, lsState{held: map[string]token.Pos{}, deferred: map[string]bool{}})
				lw.checkExit(lit.Body.End(), lst)
				diags = append(diags, lw.diags...)
			}
		}
	}
	return diags
}

type lsState struct {
	held       map[string]token.Pos // lock key -> Lock() position
	deferred   map[string]bool      // keys with a registered defer Unlock
	terminated bool
}

func (st lsState) clone() lsState {
	h := make(map[string]token.Pos, len(st.held))
	for k, v := range st.held {
		h[k] = v
	}
	d := make(map[string]bool, len(st.deferred))
	for k, v := range st.deferred {
		d[k] = v
	}
	return lsState{held: h, deferred: d}
}

// anyBare returns a held key with no deferred unlock, for exit checks.
func (st lsState) bareHeld() (string, token.Pos, bool) {
	for k, p := range st.held {
		if !st.deferred[k] {
			return k, p, true
		}
	}
	return "", 0, false
}

// anyHeld returns any held key (deferred or not), for blocking-op checks.
func (st lsState) anyHeld() (string, bool) {
	for k := range st.held {
		return k, true
	}
	return "", false
}

func lsJoin(a, b lsState) lsState {
	if a.terminated {
		return b
	}
	if b.terminated {
		return a
	}
	out := lsState{held: map[string]token.Pos{}, deferred: map[string]bool{}}
	for k, p := range a.held { // union of held: a lock on any path must be handled
		out.held[k] = p
	}
	for k, p := range b.held {
		if _, ok := out.held[k]; !ok {
			out.held[k] = p
		}
	}
	for k := range a.deferred { // intersection of defers: safe only if on all paths
		if b.deferred[k] {
			out.deferred[k] = true
		}
	}
	return out
}

type lsWalker struct {
	rule  *lockScope
	pkg   *Package
	fname string
	diags []Diagnostic
}

func (w *lsWalker) checkExit(at token.Pos, st lsState) {
	if st.terminated {
		return
	}
	if k, pos, bare := st.bareHeld(); bare {
		w.diags = append(w.diags, Diagnostic{
			Pos:  w.pkg.Position(at),
			Rule: w.rule.Name(),
			Message: fmt.Sprintf("in %s: %s.Lock() at %v has no Unlock() on this return path (unlock before returning or use defer)",
				w.fname, k, w.pkg.Position(pos)),
		})
	}
}

// scanEffects applies lock/unlock calls and reports blocking operations
// performed while a lock is held. Nested function literals are opaque.
func (w *lsWalker) scanEffects(n ast.Node, st lsState) lsState {
	inspectShallow(n, func(c ast.Node) bool {
		switch x := c.(type) {
		case *ast.CallExpr:
			recv, name := callee(x)
			switch name {
			case "Lock", "RLock":
				if key, ok := w.rule.isMutexRecv(w.pkg, x); ok {
					st.held[key] = x.Pos()
				}
			case "Unlock", "RUnlock":
				if key, ok := w.rule.isMutexRecv(w.pkg, x); ok {
					delete(st.held, key)
					delete(st.deferred, key)
				}
			default:
				if w.rule.pumpBlocking[name] && w.isPumpCall(x) {
					if k, held := st.anyHeld(); held {
						w.diags = append(w.diags, Diagnostic{
							Pos:  w.pkg.Position(x.Pos()),
							Rule: w.rule.Name(),
							Message: fmt.Sprintf("in %s: blocking pump call %s.%s while holding %s; "+
								"a slow external call would stall every goroutine contending for the lock", w.fname, recv, name, k),
						})
					}
				}
			}
		case *ast.SendStmt:
			w.checkChanOp(x.Pos(), "channel send", st)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.checkChanOp(x.Pos(), "channel receive", st)
			}
		}
		return true
	})
	return st
}

// isPumpCall refines a blocking-name match with type info when present:
// only methods on async.Pump count.
func (w *lsWalker) isPumpCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if named := recvNamed(w.pkg, sel); named != nil {
		return isNamedType(named, "internal/async", "Pump")
	}
	return true // unresolved: assume the name means what it says
}

func (w *lsWalker) checkChanOp(pos token.Pos, what string, st lsState) {
	if k, held := st.anyHeld(); held {
		w.diags = append(w.diags, Diagnostic{
			Pos:  w.pkg.Position(pos),
			Rule: w.rule.Name(),
			Message: fmt.Sprintf("in %s: %s while holding %s; channel waits are unbounded and wedge every contender",
				w.fname, what, k),
		})
	}
}

func (w *lsWalker) block(list []ast.Stmt, st lsState) lsState {
	for _, s := range list {
		if st.terminated {
			return st
		}
		st = w.stmt(s, st)
	}
	return st
}

func (w *lsWalker) stmt(s ast.Stmt, st lsState) lsState {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		st = w.scanEffects(x, st)
		w.checkExit(x.Pos(), st)
		st.terminated = true
		return st

	case *ast.BlockStmt:
		return w.block(x.List, st)

	case *ast.IfStmt:
		if x.Init != nil {
			st = w.stmt(x.Init, st)
		}
		st = w.scanEffects(x.Cond, st)
		thenSt := w.block(x.Body.List, st.clone())
		elseSt := st.clone()
		if x.Else != nil {
			elseSt = w.stmt(x.Else, elseSt)
		}
		return lsJoin(thenSt, elseSt)

	case *ast.DeferStmt:
		if key, ok := deferUnlockKey(w, x); ok {
			st.deferred[key] = true
			return st
		}
		return st

	case *ast.GoStmt:
		// The goroutine body runs later under its own state; nothing to
		// apply here (literals are analyzed independently).
		return st

	case *ast.ForStmt:
		if x.Init != nil {
			st = w.stmt(x.Init, st)
		}
		if x.Cond != nil {
			st = w.scanEffects(x.Cond, st)
		}
		body := w.block(x.Body.List, st.clone())
		return lsJoin(st, body)

	case *ast.RangeStmt:
		st = w.scanEffects(x.X, st)
		body := w.block(x.Body.List, st.clone())
		return lsJoin(st, body)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return w.branches(s, st)

	case *ast.SelectStmt:
		// The select itself is a channel wait.
		if k, held := st.anyHeld(); held {
			w.diags = append(w.diags, Diagnostic{
				Pos:     w.pkg.Position(x.Pos()),
				Rule:    w.rule.Name(),
				Message: fmt.Sprintf("in %s: select while holding %s; channel waits are unbounded and wedge every contender", w.fname, k),
			})
		}
		return w.branches(s, st)

	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, st)

	case *ast.BranchStmt:
		st.terminated = true
		return st

	default:
		return w.scanEffects(s, st)
	}
}

// branches joins switch/select clause bodies (no implicit fallthrough).
// A switch with no default can skip every case, so the entry state
// joins in; a select with no default blocks until a comm clause runs.
func (w *lsWalker) branches(s ast.Stmt, st lsState) lsState {
	var clauses []ast.Stmt
	hasDefault := false
	switch x := s.(type) {
	case *ast.SwitchStmt:
		if x.Init != nil {
			st = w.stmt(x.Init, st)
		}
		if x.Tag != nil {
			st = w.scanEffects(x.Tag, st)
		}
		clauses = x.Body.List
	case *ast.TypeSwitchStmt:
		clauses = x.Body.List
	case *ast.SelectStmt:
		hasDefault = true // never join the entry state around a select
		clauses = x.Body.List
	}
	out := lsState{terminated: true}
	for _, c := range clauses {
		var body []ast.Stmt
		branchSt := st.clone()
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				// The comm op itself was accounted by the SelectStmt check;
				// still apply lock effects inside it (rare but legal).
				branchSt = w.applyCommEffects(cc.Comm, branchSt)
			}
			body = cc.Body
		}
		out = lsJoin(out, w.block(body, branchSt))
	}
	if !hasDefault {
		out = lsJoin(out, st)
	}
	return out
}

// applyCommEffects applies Lock/Unlock effects inside a select comm
// statement without re-reporting its channel operation.
func (w *lsWalker) applyCommEffects(comm ast.Stmt, st lsState) lsState {
	saved := w.diags
	st = w.scanEffects(comm, st)
	w.diags = saved
	return st
}

// deferUnlockKey matches `defer mu.Unlock()` and `defer func() { ...
// mu.Unlock() ... }()`, returning the mutex key.
func deferUnlockKey(w *lsWalker, d *ast.DeferStmt) (string, bool) {
	if recv, name := callee(d.Call); recv != "" && (name == "Unlock" || name == "RUnlock") {
		if key, ok := w.rule.isMutexRecv(w.pkg, d.Call); ok {
			return key, true
		}
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		var key string
		found := false
		ast.Inspect(lit.Body, func(c ast.Node) bool {
			call, isCall := c.(*ast.CallExpr)
			if !isCall || found {
				return !found
			}
			if _, name := callee(call); name == "Unlock" || name == "RUnlock" {
				if k, ok := w.rule.isMutexRecv(w.pkg, call); ok {
					key, found = k, true
				}
			}
			return !found
		})
		if found {
			return key, true
		}
	}
	return "", false
}
