package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// slotBalance checks the ReqPump's slot accounting invariant (Section
// 4.1 of the paper: "one counter to monitor the total number of active
// requests, and one counter for each external destination"). Every
// execution token acquired in internal/async — via grabTokenLocked, a
// successful acquireToken, or a true tryAcquireToken — must, on every
// control-flow path, be either released (releaseToken) or handed off to
// a function/goroutine that releases it. A leaked token permanently
// shrinks the pump's concurrency budget; the race detector cannot see
// it because nothing races — the pump just quietly starves.
//
// The analysis is an abstract interpretation over the structured AST:
// one boolean of state ("a token is held"), branch joins that keep a
// path holding, and an interprocedural may-release summary computed as
// a fixed point over the package (so `go p.run(c)` counts as a handoff
// because run -> execute -> attemptOnce eventually releases).
type slotBalance struct {
	acquireUncond map[string]bool // acquire that cannot fail
	acquireErr    map[string]bool // acquire returning error (nil => held)
	acquireTry    map[string]bool // acquire returning bool (true => held)
	release       map[string]bool
}

func newSlotBalance() *slotBalance {
	return &slotBalance{
		acquireUncond: map[string]bool{"grabTokenLocked": true},
		acquireErr:    map[string]bool{"acquireToken": true},
		acquireTry:    map[string]bool{"tryAcquireToken": true},
		release:       map[string]bool{"releaseToken": true},
	}
}

func (*slotBalance) Name() string { return "slotbalance" }

func (*slotBalance) Doc() string {
	return "every pump slot acquired in internal/async must be released or handed off on all control-flow paths"
}

func (r *slotBalance) Check(pkg *Package) []Diagnostic {
	if !pathMatch(pkg.Path, "internal/async") {
		return nil
	}
	releasers := r.releaserSummary(pkg)
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			// The primitives themselves legitimately end while holding or
			// after dropping a token; only their callers are checked.
			if r.acquireUncond[name] || r.acquireErr[name] || r.acquireTry[name] || r.release[name] {
				continue
			}
			w := &sbWalker{rule: r, pkg: pkg, releasers: releasers, fname: name}
			w.local = localReleasers(fd.Body, func(n ast.Node) bool { return w.releasesShallow(n) })
			st := w.block(fd.Body.List, sbState{})
			w.checkExit(fd.Body.End(), st)
			diags = append(diags, w.diags...)
			// Function literals are their own accounting scopes.
			for _, lit := range funcLits(fd.Body) {
				lw := &sbWalker{rule: r, pkg: pkg, releasers: releasers, fname: name + " (func literal)", local: w.local}
				lst := lw.block(lit.Body.List, sbState{})
				lw.checkExit(lit.Body.End(), lst)
				diags = append(diags, lw.diags...)
			}
		}
	}
	return diags
}

// releaserSummary computes, by name, which package functions may release
// a token — directly or by calling (possibly in a goroutine) another
// releasing function. Names are enough inside one package: the pump's
// helpers are unexported and unambiguous.
func (r *slotBalance) releaserSummary(pkg *Package) map[string]bool {
	releasers := make(map[string]bool)
	for name := range r.release {
		releasers[name] = true
	}
	bodies := make(map[string]*ast.BlockStmt)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				bodies[fd.Name.Name] = fd.Body
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for name, body := range bodies {
			if releasers[name] {
				continue
			}
			calls := false
			ast.Inspect(body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if _, callee := callee(call); releasers[callee] {
						calls = true
					}
				}
				return !calls
			})
			if calls {
				releasers[name] = true
				changed = true
			}
		}
	}
	return releasers
}

// localReleasers finds closures assigned to local names whose bodies
// release (launch := func(...) { ... releaseToken ... }); calling such a
// name is a handoff.
func localReleasers(body *ast.BlockStmt, releases func(ast.Node) bool) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i := range assign.Lhs {
			id, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			lit, ok := assign.Rhs[i].(*ast.FuncLit)
			if !ok {
				continue
			}
			// The closure's own nested literals count here: a closure that
			// spawns a releasing goroutine is itself a handoff target.
			found := false
			ast.Inspect(lit.Body, func(c ast.Node) bool {
				if releases(c) {
					found = true
				}
				return !found
			})
			if found {
				out[id.Name] = true
			}
		}
		return true
	})
	return out
}

// sbState is the abstract state: whether the current path holds an
// unbalanced token, and where it was acquired.
type sbState struct {
	held       bool
	heldPos    token.Pos
	terminated bool
}

type sbWalker struct {
	rule      *slotBalance
	pkg       *Package
	releasers map[string]bool
	local     map[string]bool
	fname     string
	deferRel  bool
	diags     []Diagnostic
}

func (w *sbWalker) checkExit(at token.Pos, st sbState) {
	if st.terminated || !st.held || w.deferRel {
		return
	}
	w.diags = append(w.diags, Diagnostic{
		Pos:  w.pkg.Position(at),
		Rule: w.rule.Name(),
		Message: fmt.Sprintf("in %s: pump slot acquired at %v is not released or handed off on this path",
			w.fname, w.pkg.Position(st.heldPos)),
	})
}

// releasesShallow reports whether node n is a call that releases or
// hands off a token (release primitive, releasing package function, or
// releasing local closure). It does not descend anywhere.
func (w *sbWalker) releasesShallow(n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	recv, name := callee(call)
	if w.releasers[name] || w.local[name] {
		return true
	}
	_ = recv
	return false
}

// scanEffects applies a statement's token effects (excluding nested
// function literals) to st: acquires first, then releases, matching
// source order closely enough for straight-line statements.
func (w *sbWalker) scanEffects(n ast.Node, st sbState) sbState {
	inspectShallow(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		_, name := callee(call)
		switch {
		case w.rule.acquireUncond[name]:
			st.held, st.heldPos = true, call.Pos()
		case w.rule.acquireErr[name] || w.rule.acquireTry[name]:
			// Outside the recognized if-patterns, conservatively assume
			// the acquire succeeded.
			st.held, st.heldPos = true, call.Pos()
		case w.releasers[name] || w.local[name]:
			st.held = false
		}
		return true
	})
	return st
}

// findCall returns the first shallow call whose name satisfies pred.
func findCall(n ast.Node, pred func(string) bool) *ast.CallExpr {
	var found *ast.CallExpr
	inspectShallow(n, func(c ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := c.(*ast.CallExpr); ok {
			if _, name := callee(call); pred(name) {
				found = call
			}
		}
		return true
	})
	return found
}

func sbJoin(a, b sbState) sbState {
	if a.terminated {
		return b
	}
	if b.terminated {
		return a
	}
	out := sbState{held: a.held || b.held}
	if a.held {
		out.heldPos = a.heldPos
	} else {
		out.heldPos = b.heldPos
	}
	return out
}

func (w *sbWalker) block(list []ast.Stmt, st sbState) sbState {
	for _, s := range list {
		if st.terminated {
			// Unreachable code after return: stop tracking.
			return st
		}
		st = w.stmt(s, st)
	}
	return st
}

func (w *sbWalker) stmt(s ast.Stmt, st sbState) sbState {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		st = w.scanEffects(x, st)
		w.checkExit(x.Pos(), st)
		st.terminated = true
		return st

	case *ast.BlockStmt:
		return w.block(x.List, st)

	case *ast.IfStmt:
		return w.ifStmt(x, st)

	case *ast.GoStmt:
		// A goroutine whose function releases is a handoff. Check both
		// named targets (go p.run(c)) and literals (go func() { ... }()).
		if w.releasesShallow(x.Call) {
			st.held = false
			return st
		}
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			released := false
			ast.Inspect(lit.Body, func(c ast.Node) bool {
				if w.releasesShallow(c) {
					released = true
				}
				return !released
			})
			if released {
				st.held = false
			}
		}
		return st

	case *ast.DeferStmt:
		if w.releasesShallow(x.Call) {
			w.deferRel = true
			return st
		}
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(c ast.Node) bool {
				if w.releasesShallow(c) {
					w.deferRel = true
					return false
				}
				return true
			})
		}
		return st

	case *ast.ForStmt:
		if x.Init != nil {
			st = w.stmt(x.Init, st)
		}
		body := w.block(x.Body.List, st)
		return sbJoin(st, body)

	case *ast.RangeStmt:
		body := w.block(x.Body.List, st)
		return sbJoin(st, body)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.branches(s, st)

	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, st)

	case *ast.BranchStmt:
		// break/continue/goto leave the linear path; treat as terminated
		// for join purposes (holding a token across an iteration boundary
		// is outside the supported shapes and flagged at function exit).
		st.terminated = true
		return st

	default:
		// Assignments, expressions, sends, declarations.
		return w.scanEffects(s, st)
	}
}

// ifStmt understands the two conditional-acquire idioms in addition to
// plain branching:
//
//	if err := p.acquireToken(c); err != nil { ... }  // held on fallthrough
//	if p.tryAcquireToken(dest) { ... }               // held in then-branch
func (w *sbWalker) ifStmt(x *ast.IfStmt, st sbState) sbState {
	isErrAcquire := func(name string) bool { return w.rule.acquireErr[name] }
	isTryAcquire := func(name string) bool { return w.rule.acquireTry[name] }

	// Pattern: init acquired via the error-returning primitive and cond
	// tests the error: the token is held exactly on the err == nil side.
	if x.Init != nil {
		if call := findCall(x.Init, isErrAcquire); call != nil {
			if _, op, ok := nilComparison(x.Cond); ok {
				okSt := st
				okSt.held, okSt.heldPos = true, call.Pos()
				thenEntry, fallEntry := st, okSt // err != nil: then runs token-less
				if op == token.EQL {
					thenEntry, fallEntry = okSt, st // err == nil: then holds it
				}
				thenSt := w.block(x.Body.List, thenEntry)
				if x.Else != nil {
					return sbJoin(thenSt, w.stmt(x.Else, fallEntry))
				}
				return sbJoin(thenSt, fallEntry)
			}
		}
	}
	// Pattern: if p.tryAcquireToken(d) { ... } — token held only inside.
	if call := findCall(x.Cond, isTryAcquire); call != nil {
		thenSt := st
		thenSt.held, thenSt.heldPos = true, call.Pos()
		thenSt = w.block(x.Body.List, thenSt)
		elseSt := st
		if x.Else != nil {
			elseSt = w.stmt(x.Else, elseSt)
		}
		return sbJoin(thenSt, elseSt)
	}

	// Plain branching.
	if x.Init != nil {
		st = w.stmt(x.Init, st)
	}
	st = w.scanEffects(x.Cond, st)
	thenSt := w.block(x.Body.List, st)
	elseSt := st
	if x.Else != nil {
		elseSt = w.stmt(x.Else, st)
	}
	return sbJoin(thenSt, elseSt)
}

// branches joins the bodies of switch/select statements. A switch with
// no default can skip every case, so the entry state joins in; a select
// with no default blocks until some comm clause runs, so it does not.
func (w *sbWalker) branches(s ast.Stmt, st sbState) sbState {
	var clauses []ast.Stmt
	hasDefault := false
	switch x := s.(type) {
	case *ast.SwitchStmt:
		if x.Init != nil {
			st = w.stmt(x.Init, st)
		}
		clauses = x.Body.List
	case *ast.TypeSwitchStmt:
		clauses = x.Body.List
	case *ast.SelectStmt:
		hasDefault = true // never join the entry state around a select
		clauses = x.Body.List
	}
	out := sbState{terminated: true}
	for _, c := range clauses {
		var body []ast.Stmt
		branchSt := st
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				branchSt = w.scanEffects(cc.Comm, branchSt)
			}
			body = cc.Body
		}
		out = sbJoin(out, w.block(body, branchSt))
	}
	if !hasDefault {
		out = sbJoin(out, st)
	}
	return out
}
