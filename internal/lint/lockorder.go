package lint

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// lockOrder derives the global mutex acquisition graph across the
// engine's concurrent layers (core, async, cache, shard, server) and
// flags cycles as potential deadlocks. lockscope polices discipline
// within one function — every Lock has its Unlock, no channel wait
// while held; lockOrder adds the dimension lockscope cannot see: two
// perfectly disciplined functions that take the same two locks in
// opposite orders deadlock the moment their goroutines interleave.
//
// Locks are keyed structurally, not by variable: `p.mu.Lock()` where p
// is an *async.Pump is the key "async.Pump.mu", so every function
// locking any Pump's mu contributes to the same node. An edge A -> B
// is recorded when B is acquired while A is held — directly, or by
// calling a function whose transitive summary may acquire B. Cycles in
// the resulting digraph (A -> B -> ... -> A) are reported once each,
// with the witness position for every edge.
//
// Keys require resolved type information for the lock's owner; a lock
// whose owner type cannot be resolved falls back to a
// package-qualified expression path, which still links same-package
// acquisition sites.
type lockOrder struct{}

func newLockOrder() *lockOrder { return &lockOrder{} }

func (*lockOrder) Name() string { return "lockorder" }

func (*lockOrder) Doc() string {
	return "the cross-package mutex acquisition graph (lock B while holding A) must be acyclic; a cycle is a latent deadlock"
}

var lockOrderScopes = []string{
	"internal/core", "internal/async", "internal/cache", "internal/shard", "internal/server",
}

// loEdge is one witnessed acquisition-order edge: to was acquired while
// from was held.
type loEdge struct {
	from, to string
	fi       *FuncInfo
	at       ast.Node
	// via names the callee chain when the acquisition is indirect.
	via string
}

func (r *lockOrder) CheckProgram(prog *Program) []Diagnostic {
	acq := r.transitiveAcquires(prog)
	edges := map[[2]string]loEdge{} // first witness per (from,to)
	for _, fi := range prog.Funcs {
		if !pathMatch(fi.Pkg.Path, lockOrderScopes...) {
			continue
		}
		for _, e := range r.funcEdges(prog, fi, acq) {
			k := [2]string{e.from, e.to}
			if _, ok := edges[k]; !ok {
				edges[k] = e
			}
		}
	}
	return r.reportCycles(edges)
}

// lockKey normalizes a mutex operation to its structural identity:
// "pkg.Owner.field" when the owner type resolves, "pkg:path" otherwise.
// ok is false for calls that are not mutex Lock/RLock/Unlock/RUnlock.
func lockKey(pkg *Package, call *ast.CallExpr) (key string, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = sel.Sel.Name
	if op != "Lock" && op != "RLock" && op != "Unlock" && op != "RUnlock" {
		return "", "", false
	}
	// The receiver must be a mutex (by type, or by name fallback).
	if named := recvNamed(pkg, sel); named != nil {
		if !isNamedType(named, "sync", "Mutex") && !isNamedType(named, "sync", "RWMutex") {
			return "", "", false
		}
	} else {
		path, pathOK := exprPath(sel.X)
		if !pathOK || !mutexNameRx.MatchString(lastSegment(path)) {
			return "", "", false
		}
	}
	// Structural key: owner type of the mutex field.
	if owner, field, okOwner := lockOwner(pkg, sel.X); okOwner {
		return owner + "." + field, op, true
	}
	path, _ := exprPath(sel.X)
	return pkg.Path + ":" + path, op, true
}

// lockOwner resolves `p.mu` to (owner type "async.Pump", field "mu").
func lockOwner(pkg *Package, mutexExpr ast.Expr) (owner, field string, ok bool) {
	sel, isSel := ast.Unparen(mutexExpr).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	named := recvNamed(pkg, sel)
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return "", "", false
	}
	p := named.Obj().Pkg().Path()
	if i := strings.LastIndex(p, "/"); i >= 0 {
		p = p[i+1:]
	}
	return p + "." + named.Obj().Name(), sel.Sel.Name, true
}

// transitiveAcquires computes, per function, the set of lock keys the
// function may acquire directly or through any resolved callee
// (excluding calls inside function literals, which run later under
// their own stack).
func (r *lockOrder) transitiveAcquires(prog *Program) map[*FuncInfo]map[string]bool {
	acq := make(map[*FuncInfo]map[string]bool, len(prog.Funcs))
	for _, fi := range prog.Funcs {
		set := map[string]bool{}
		inspectShallow(fi.Decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, op, isLock := lockKey(fi.Pkg, call); isLock && (op == "Lock" || op == "RLock") {
					set[key] = true
				}
			}
			return true
		})
		acq[fi] = set
	}
	prog.fixedPoint(func(fi *FuncInfo) bool {
		set := acq[fi]
		changed := false
		for _, e := range fi.Calls {
			if e.Target == nil || e.InFuncLit || e.GoCall {
				continue
			}
			for k := range acq[e.Target] {
				if !set[k] {
					set[k] = true
					changed = true
				}
			}
		}
		return changed
	})
	return acq
}

// funcEdges walks one function in source order with a held-lock set,
// emitting an edge for every acquisition (direct or via callee) under a
// held lock. `defer mu.Unlock()` keeps the lock held to the end of the
// function, which is exactly the ordering-relevant reading.
func (r *lockOrder) funcEdges(prog *Program, fi *FuncInfo, acq map[*FuncInfo]map[string]bool) []loEdge {
	var edges []loEdge
	held := map[string]bool{}
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	var order []string // held, in acquisition order (for stable output)
	acquire := func(key string, at ast.Node, via string) {
		for _, from := range order {
			if from == key {
				continue // re-locking the same structural key: lockscope's beat
			}
			edges = append(edges, loEdge{from: from, to: key, fi: fi, at: at, via: via})
		}
	}
	inspectShallow(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, op, isLock := lockKey(fi.Pkg, call); isLock {
			switch op {
			case "Lock", "RLock":
				acquire(key, call, "")
				if !held[key] {
					held[key] = true
					order = append(order, key)
				}
			case "Unlock", "RUnlock":
				// A deferred unlock holds to function end; a direct unlock
				// releases here.
				if !deferred[call] && held[key] {
					delete(held, key)
					for i, k := range order {
						if k == key {
							order = append(order[:i], order[i+1:]...)
							break
						}
					}
				}
			}
			return true
		}
		// Calls under held locks contribute the callee's transitive set.
		if len(order) == 0 {
			return true
		}
		if target := prog.resolveTarget(fi.Pkg, call); target != nil {
			for k := range acq[target] {
				acquire(k, call, target.Name())
			}
		}
		return true
	})
	return edges
}

// reportCycles finds cycles in the edge digraph and reports each once,
// anchored at its lexicographically smallest node, with every edge's
// witness.
func (r *lockOrder) reportCycles(edges map[[2]string]loEdge) []Diagnostic {
	adj := map[string][]string{}
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	for _, next := range adj {
		sort.Strings(next)
	}
	var nodes []string
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	reported := map[string]bool{}
	var diags []Diagnostic
	var path []string
	onPath := map[string]bool{}
	var dfs func(n string)
	dfs = func(n string) {
		path = append(path, n)
		onPath[n] = true
		for _, m := range adj[n] {
			if onPath[m] {
				// Cycle: path from m..n plus edge n->m.
				start := 0
				for i, p := range path {
					if p == m {
						start = i
						break
					}
				}
				cyc := append(append([]string(nil), path[start:]...), m)
				diags = append(diags, r.cycleDiag(cyc, edges, reported)...)
				continue
			}
			dfs(m)
		}
		onPath[n] = false
		path = path[:len(path)-1]
	}
	for _, n := range nodes {
		dfs(n)
	}
	return diags
}

// cycleDiag renders one cycle (first == last) as a diagnostic, deduped
// by its canonical rotation.
func (r *lockOrder) cycleDiag(cyc []string, edges map[[2]string]loEdge, reported map[string]bool) []Diagnostic {
	ring := cyc[:len(cyc)-1]
	// Canonical rotation: start at the smallest key.
	min := 0
	for i := range ring {
		if ring[i] < ring[min] {
			min = i
		}
	}
	canon := append(append([]string(nil), ring[min:]...), ring[:min]...)
	id := strings.Join(canon, " -> ")
	if reported[id] {
		return nil
	}
	reported[id] = true

	var parts []string
	var first loEdge
	for i := range canon {
		from, to := canon[i], canon[(i+1)%len(canon)]
		e := edges[[2]string{from, to}]
		if i == 0 {
			first = e
		}
		where := fmt.Sprintf("%v in %s", e.fi.Pkg.Position(e.at.Pos()), e.fi.Name())
		if e.via != "" {
			where += " via " + e.via
		}
		parts = append(parts, fmt.Sprintf("%s -> %s (%s)", from, to, where))
	}
	return []Diagnostic{{
		Pos:  first.fi.Pkg.Position(first.at.Pos()),
		Rule: r.Name(),
		Message: "lock-order cycle, a latent deadlock when these paths interleave: " +
			strings.Join(parts, "; ") + "; pick one global order and release before crossing layers",
	}}
}

// Check satisfies Rule; lockOrder only runs via CheckProgram.
func (*lockOrder) Check(*Package) []Diagnostic { return nil }
