package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// errJoin polices the operator-teardown error contract: a Close method
// that closes children (or any owned resource) must surface every
// child's Close error, aggregating multiple with errors.Join. A dropped
// Close error is how a leak hides — PR 7's lifecycle harness only
// caught half-open subtrees because exec.Run joins Close errors into
// every failure path; a Close that swallows its child's error breaks
// that reporting chain silently.
//
// The rule flags, inside any method named Close with an error result in
// the engine packages, every `x.Close()` call whose error is discarded:
// as a bare expression statement, assigned to blank, or deferred. When
// type information resolves the call, only error-returning Close
// methods count (a Close returning nothing is fine to drop).
type errJoin struct{}

func newErrJoin() *errJoin { return &errJoin{} }

func (*errJoin) Name() string { return "errjoin" }

func (*errJoin) Doc() string {
	return "Close methods must not discard child Close errors; aggregate multiple with errors.Join"
}

var errJoinScopes = []string{
	"internal/exec", "internal/async", "internal/core",
	"internal/shard", "internal/server", "internal/cache",
}

func (r *errJoin) CheckProgram(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, fi := range prog.Funcs {
		if !pathMatch(fi.Pkg.Path, errJoinScopes...) {
			continue
		}
		if fi.Decl.Name.Name != "Close" || fi.RecvType == "" || !returnsError(fi.Decl.Type) {
			continue
		}
		diags = append(diags, r.checkClose(fi)...)
	}
	return diags
}

// returnsError reports (syntactically) whether the signature's results
// include an `error`.
func returnsError(ft *ast.FuncType) bool {
	if ft.Results == nil {
		return false
	}
	for _, f := range ft.Results.List {
		if id, ok := ast.Unparen(f.Type).(*ast.Ident); ok && id.Name == "error" {
			return true
		}
	}
	return false
}

func (r *errJoin) checkClose(fi *FuncInfo) []Diagnostic {
	var diags []Diagnostic
	report := func(call *ast.CallExpr, how string) {
		recv, _ := callee(call)
		what := "Close()"
		if recv != "" {
			what = recv + ".Close()"
		}
		diags = append(diags, Diagnostic{
			Pos:  fi.Pkg.Position(call.Pos()),
			Rule: r.Name(),
			Message: fmt.Sprintf("in (*%s).Close: %s error is %s; a swallowed teardown error hides leaks — "+
				"aggregate with errors.Join and return it", fi.RecvType, what, how),
		})
	}
	inspectShallow(fi.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ExprStmt:
			if call, ok := discardedClose(fi.Pkg, x.X); ok {
				report(call, "dropped")
			}
		case *ast.DeferStmt:
			if call, ok := discardedClose(fi.Pkg, x.Call); ok {
				report(call, "dropped by defer")
			}
		case *ast.GoStmt:
			if call, ok := discardedClose(fi.Pkg, x.Call); ok {
				report(call, "dropped in a goroutine")
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := discardedClose(fi.Pkg, rhs)
				if !ok {
					continue
				}
				// Single-value form: the matching LHS must not be blank. A
				// multi-result callee on the RHS can't be a bare Close().
				if len(x.Lhs) == len(x.Rhs) {
					if id, isID := ast.Unparen(x.Lhs[i]).(*ast.Ident); isID && id.Name == "_" {
						report(call, "assigned to _")
					}
				}
			}
		}
		return true
	})
	return diags
}

// discardedClose matches a no-argument `<expr>.Close()` call whose
// result, when type-resolved, is an error. Unresolved calls count too:
// in these packages Close conventionally returns error, and a false
// negative here is a silent leak path.
func discardedClose(pkg *Package, e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return nil, false
	}
	// With type info: only error-returning Close calls count.
	if pkg.Info != nil {
		if tv, resolved := pkg.Info.Types[call]; resolved && tv.Type != nil {
			if !typeIsError(tv.Type) {
				return nil, false
			}
		}
	}
	return call, true
}

func typeIsError(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		return named.Obj() != nil && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
	}
	// The universe error is an alias for an interface; types renders it
	// as the named universe type above, but be permissive about tuples.
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if typeIsError(tup.At(i).Type()) {
				return true
			}
		}
	}
	return false
}

// Check satisfies Rule; errJoin only runs via CheckProgram.
func (*errJoin) Check(*Package) []Diagnostic { return nil }
