package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments take the staticcheck-style form
//
//	//lint:ignore <rule> <reason>
//
// and cover (a) the comment's own line and the line after it, or (b) when
// the comment sits in the doc comment of a declaration, every line of
// that declaration. The reason is mandatory.
const ignorePrefix = "//lint:ignore"

type span struct {
	file       string
	start, end int // inclusive line range
}

type suppressions struct {
	byRule    map[string][]span
	malformed []Diagnostic
}

func (s *suppressions) covers(rule string, pos token.Position) bool {
	for _, sp := range s.byRule[rule] {
		if sp.file == pos.Filename && pos.Line >= sp.start && pos.Line <= sp.end {
			return true
		}
	}
	return false
}

// collectSuppressions scans a package's comments for ignore directives.
func collectSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byRule: make(map[string][]span)}
	for _, f := range pkg.Files {
		// Doc-comment suppressions extend over the whole declaration.
		docSpan := make(map[*ast.CommentGroup]span)
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				p1, p2 := pkg.Position(decl.Pos()), pkg.Position(decl.End())
				docSpan[doc] = span{file: p1.Filename, start: p1.Line, end: p2.Line}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:     pos,
						Rule:    "ignore",
						Message: "malformed //lint:ignore: want \"//lint:ignore <rule> <reason>\"",
					})
					continue
				}
				rule := fields[0]
				sp := span{file: pos.Filename, start: pos.Line, end: pos.Line + 1}
				if ds, ok := docSpan[cg]; ok {
					sp = ds
					// The doc comment itself precedes the declaration.
					if pos.Line < sp.start {
						sp.start = pos.Line
					}
				}
				s.byRule[rule] = append(s.byRule[rule], sp)
			}
		}
	}
	return s
}
