package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// closeBalance statically catches the half-open operator-subtree leak
// class that PR 7's lifecycle harness found at runtime.
//
// The executor's contract: exec.Run joins op.Close() into every error
// path, so an operator whose Close unconditionally closes its children
// is safe no matter where its Open fails. But operators that gate Close
// on an "opened" flag —
//
//	func (j *HashJoin) Close() error {
//	    if !j.opened { return nil }
//	    ...
//	}
//
// — disable that safety net for every Open path that runs before the
// flag is set. On such a path, any child already opened must be closed
// explicitly (`return errors.Join(err, j.Left.Close())`), or the whole
// left subtree leaks: its pump registrations, cache pins and goroutines
// stay live with nothing left pointing at them. A success return that
// never sets the flag is the same leak with no error to blame.
//
// The rule finds every receiver type whose Close is guarded by an
// early-return on a boolean field, then abstractly interprets that
// type's Open: children successfully opened so far form the state, and
// every return reached before the guard field is set must close all of
// them on that path. Helper methods on the same receiver participate
// through summaries — a helper's success-exit open set and guard effect
// are applied at its call site, and the helper's own error paths are
// checked in their own right — so the analysis crosses helper
// boundaries.
type closeBalance struct{}

func newCloseBalance() *closeBalance { return &closeBalance{} }

func (*closeBalance) Name() string { return "closebalance" }

func (*closeBalance) Doc() string {
	return "operators whose Close is gated on an opened flag must close every already-opened child on each Open path that returns before the flag is set"
}

func (r *closeBalance) CheckProgram(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if !pathMatch(pkg.Path, "internal/exec", "internal/async") {
			continue
		}
		guards := closeGuards(prog, pkg)
		if len(guards) == 0 {
			continue
		}
		a := &cbAnalysis{rule: r, prog: prog, pkg: pkg, guards: guards, sums: map[string]*cbSummary{}}
		a.buildSummaries()
		diags = append(diags, a.check()...)
	}
	return diags
}

// closeGuards maps receiver type name -> guard field name for every
// type in pkg whose Close method early-returns when a boolean field is
// unset (`if !x.opened { return ... }`).
func closeGuards(prog *Program, pkg *Package) map[string]string {
	guards := make(map[string]string)
	for _, fi := range prog.Funcs {
		if fi.Pkg != pkg || fi.Decl.Name.Name != "Close" || fi.RecvType == "" {
			continue
		}
		recv := recvVarName(fi.Decl)
		if recv == "" {
			continue
		}
		for _, s := range fi.Decl.Body.List {
			ifs, ok := s.(*ast.IfStmt)
			if !ok {
				continue
			}
			un, ok := ast.Unparen(ifs.Cond).(*ast.UnaryExpr)
			if !ok || un.Op != token.NOT {
				continue
			}
			field, ok := recvField(un.X, recv)
			if !ok {
				continue
			}
			if len(ifs.Body.List) == 1 {
				if _, isRet := ifs.Body.List[0].(*ast.ReturnStmt); isRet {
					guards[fi.RecvType] = field
				}
			}
		}
	}
	return guards
}

// cbSummary is a helper method's effect as observed by its caller on
// the success path: the child fields left open when it returns nil, and
// whether it set the guard. Error exits contribute nothing — a helper
// owns cleanup on its own failure paths, and the walker checks that
// directly.
type cbSummary struct {
	opens     map[string]token.Pos
	setsGuard bool
	reached   bool // a success exit exists
}

type cbAnalysis struct {
	rule   *closeBalance
	prog   *Program
	pkg    *Package
	guards map[string]string
	sums   map[string]*cbSummary // "RecvType.method" -> summary
}

func (a *cbAnalysis) methods() []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range a.prog.Funcs {
		if fi.Pkg != a.pkg || fi.RecvType == "" {
			continue
		}
		if _, guarded := a.guards[fi.RecvType]; !guarded {
			continue
		}
		out = append(out, fi)
	}
	return out
}

// buildSummaries computes success-exit summaries for every non-Open
// method of a guarded type, to a fixed point (helpers calling helpers).
func (a *cbAnalysis) buildSummaries() {
	members := a.methods()
	for _, fi := range members {
		a.sums[fi.RecvType+"."+fi.Decl.Name.Name] = &cbSummary{opens: map[string]token.Pos{}}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range members {
			if fi.Decl.Name.Name == "Open" {
				continue
			}
			recv := recvVarName(fi.Decl)
			if recv == "" {
				continue
			}
			w := &cbWalker{a: a, fi: fi, recv: recv, guard: a.guards[fi.RecvType], collect: &cbSummary{opens: map[string]token.Pos{}}}
			st := w.block(fi.Decl.Body.List, cbState{open: map[string]token.Pos{}})
			if !st.terminated {
				w.recordSuccess(st) // fallthrough end-of-body is a success exit
			}
			key := fi.RecvType + "." + fi.Decl.Name.Name
			old := a.sums[key]
			if !cbSummaryEqual(old, w.collect) {
				a.sums[key] = w.collect
				changed = true
			}
		}
	}
}

func cbSummaryEqual(x, y *cbSummary) bool {
	if x.setsGuard != y.setsGuard || x.reached != y.reached || len(x.opens) != len(y.opens) {
		return false
	}
	for k := range x.opens {
		if _, ok := y.opens[k]; !ok {
			return false
		}
	}
	return true
}

// check walks Open and every pre-guard helper it calls, reporting
// returns that strand open children.
func (a *cbAnalysis) check() []Diagnostic {
	var diags []Diagnostic
	// Helpers called from a guarded Open run before the guard is set and
	// get their error paths checked too.
	preGuard := map[string]bool{}
	for _, fi := range a.methods() {
		if fi.Decl.Name.Name != "Open" {
			continue
		}
		recv := recvVarName(fi.Decl)
		inspectShallow(fi.Decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
					if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID && id.Name == recv {
						preGuard[fi.RecvType+"."+sel.Sel.Name] = true
					}
				}
			}
			return true
		})
	}
	for _, fi := range a.methods() {
		name := fi.RecvType + "." + fi.Decl.Name.Name
		isOpen := fi.Decl.Name.Name == "Open"
		if !isOpen && !preGuard[name] {
			continue
		}
		recv := recvVarName(fi.Decl)
		if recv == "" {
			continue
		}
		w := &cbWalker{a: a, fi: fi, recv: recv, guard: a.guards[fi.RecvType], checkSuccess: isOpen}
		w.block(fi.Decl.Body.List, cbState{open: map[string]token.Pos{}})
		diags = append(diags, w.diags...)
	}
	return diags
}

// childCall matches recv.Field.Open(...) / recv.Field.Close(...) and
// returns the field and method names.
func childCall(call *ast.CallExpr, recv string) (field, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	f, isField := recvField(sel.X, recv)
	if !isField {
		return "", "", false
	}
	return f, sel.Sel.Name, true
}

// recvField matches `recv.Field` and returns the field name.
func recvField(e ast.Expr, recv string) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || id.Name != recv {
		return "", false
	}
	return sel.Sel.Name, true
}

// assignsGuard matches `recv.guard = true`.
func assignsGuard(assign *ast.AssignStmt, recv, guard string) bool {
	for i, lhs := range assign.Lhs {
		f, ok := recvField(lhs, recv)
		if !ok || f != guard {
			continue
		}
		if i < len(assign.Rhs) {
			if id, ok := ast.Unparen(assign.Rhs[i]).(*ast.Ident); ok && id.Name == "true" {
				return true
			}
		}
		if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
			return true // multi-assign from a call: assume it may set it
		}
	}
	return false
}

func recvVarName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// cbState is the abstract state at a program point: the child fields
// opened so far (with their Open positions) and whether the Close
// guard has been set.
type cbState struct {
	open       map[string]token.Pos
	guarded    bool
	terminated bool
}

func (st cbState) clone() cbState {
	o := make(map[string]token.Pos, len(st.open))
	for k, v := range st.open {
		o[k] = v
	}
	return cbState{open: o, guarded: st.guarded}
}

func cbJoin(a, b cbState) cbState {
	if a.terminated {
		return b
	}
	if b.terminated {
		return a
	}
	out := cbState{open: map[string]token.Pos{}, guarded: a.guarded && b.guarded}
	for k, v := range a.open { // union: open on any path must be handled
		out.open[k] = v
	}
	for k, v := range b.open {
		if _, ok := out.open[k]; !ok {
			out.open[k] = v
		}
	}
	return out
}

type cbWalker struct {
	a     *cbAnalysis
	fi    *FuncInfo
	recv  string
	guard string
	// checkSuccess: also flag success returns that strand open children
	// without setting the guard (Open methods only; helpers leave
	// children open for Open by contract).
	checkSuccess bool
	// collect, when non-nil, switches the walker to summary mode: no
	// diagnostics, success exits accumulate into the summary.
	collect *cbSummary
	diags   []Diagnostic
}

// successEffects probes a statement (If init/cond or plain) for the
// canonical open idiom and returns its success-path effect:
// recv.F.Open(...) opens F; recv.helper(...) applies the helper's
// success summary. found is false when the statement has no such
// effect.
func (w *cbWalker) successEffects(n ast.Node) (apply func(cbState) cbState, found bool) {
	var effects []func(cbState) cbState
	if n == nil {
		return nil, false
	}
	inspectShallow(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f, name, isChild := childCall(call, w.recv); isChild {
			if name == "Open" {
				pos := call.Pos()
				field := f
				effects = append(effects, func(st cbState) cbState {
					st.open[field] = pos
					return st
				})
			}
			return true
		}
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID && id.Name == w.recv {
				if hs, ok := w.a.sums[w.fi.RecvType+"."+sel.Sel.Name]; ok && (len(hs.opens) > 0 || hs.setsGuard) {
					pos := call.Pos()
					sum := hs
					effects = append(effects, func(st cbState) cbState {
						for f := range sum.opens {
							st.open[f] = pos
						}
						if sum.setsGuard {
							st.guarded = true
						}
						return st
					})
				}
			}
		}
		return true
	})
	if len(effects) == 0 {
		return nil, false
	}
	return func(st cbState) cbState {
		for _, e := range effects {
			st = e(st)
		}
		return st
	}, true
}

// applyEffects folds open/close/guard effects of a statement into st,
// treating helper calls by their success summaries (used outside the
// asymmetric error-check idiom, where success and failure share the
// path).
func (w *cbWalker) applyEffects(n ast.Node, st cbState) cbState {
	if n == nil {
		return st
	}
	inspectShallow(n, func(c ast.Node) bool {
		switch x := c.(type) {
		case *ast.CallExpr:
			if f, name, ok := childCall(x, w.recv); ok {
				switch name {
				case "Open":
					st.open[f] = x.Pos()
				case "Close":
					delete(st.open, f)
				}
			} else if sel, isSel := ast.Unparen(x.Fun).(*ast.SelectorExpr); isSel {
				if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID && id.Name == w.recv {
					if hs, ok := w.a.sums[w.fi.RecvType+"."+sel.Sel.Name]; ok {
						for f := range hs.opens {
							st.open[f] = x.Pos()
						}
						if hs.setsGuard {
							st.guarded = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			if assignsGuard(x, w.recv, w.guard) {
				st.guarded = true
			}
		}
		return true
	})
	return st
}

// isNilReturn matches `return nil` (and bare `return`): the success
// exit shape for an error-returning lifecycle method.
func isNilReturn(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return true
	}
	if len(ret.Results) != 1 {
		return false
	}
	id, ok := ast.Unparen(ret.Results[0]).(*ast.Ident)
	return ok && id.Name == "nil"
}

func (w *cbWalker) recordSuccess(st cbState) {
	if w.collect == nil {
		return
	}
	w.collect.reached = true
	for k, v := range st.open {
		if _, ok := w.collect.opens[k]; !ok {
			w.collect.opens[k] = v
		}
	}
	if st.guarded {
		w.collect.setsGuard = true
	}
}

func (w *cbWalker) checkExit(ret *ast.ReturnStmt, st cbState) {
	// The return expression itself may close children:
	// `return errors.Join(err, j.Left.Close())`.
	st = w.applyEffects(ret, st)
	success := isNilReturn(ret)
	if w.collect != nil {
		if success {
			w.recordSuccess(st)
		}
		return
	}
	if success && !w.checkSuccess {
		return
	}
	if st.guarded || len(st.open) == 0 {
		return
	}
	for f, pos := range st.open {
		why := fmt.Sprintf("errors.Join(err, %s.%s.Close()) before returning", w.recv, f)
		if success {
			why = fmt.Sprintf("set %s.%s before returning", w.recv, w.guard)
		}
		w.diags = append(w.diags, Diagnostic{
			Pos:  w.fi.Pkg.Position(ret.Pos()),
			Rule: w.a.rule.Name(),
			Message: fmt.Sprintf("in (*%s).%s: child %s opened at %v is not closed on this return path and %s is still false, "+
				"so the gated Close will never release it (half-open subtree leak); %s",
				w.fi.RecvType, w.fi.Decl.Name.Name, f, w.fi.Pkg.Position(pos), w.guard, why),
		})
	}
}

func (w *cbWalker) block(list []ast.Stmt, st cbState) cbState {
	for _, s := range list {
		if st.terminated {
			return st
		}
		st = w.stmt(s, st)
	}
	return st
}

func (w *cbWalker) stmt(s ast.Stmt, st cbState) cbState {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		w.checkExit(x, st)
		st.terminated = true
		return st

	case *ast.BlockStmt:
		return w.block(x.List, st)

	case *ast.IfStmt:
		// The canonical idiom `if err := x.F.Open(ctx); err != nil {...}`
		// needs asymmetric treatment: on the error branch F did NOT open
		// (a failed Open owes no Close by the operator contract, and a
		// failed helper owns its own cleanup); on the success branch it
		// did. Same for `if err := x.helper(ctx); err != nil {...}`.
		if apply, found := w.successEffects(x.Init); found {
			if name, op, isNilCmp := nilComparison(x.Cond); isNilCmp && name != "" {
				errBranchIsThen := op == token.NEQ
				errSt, okSt := st.clone(), apply(st.clone())
				if errBranchIsThen {
					thenSt := w.block(x.Body.List, errSt)
					elseSt := okSt
					if x.Else != nil {
						elseSt = w.stmt(x.Else, elseSt)
					}
					return cbJoin(thenSt, elseSt)
				}
				thenSt := w.block(x.Body.List, okSt)
				elseSt := errSt
				if x.Else != nil {
					elseSt = w.stmt(x.Else, elseSt)
				}
				return cbJoin(thenSt, elseSt)
			}
			// Unrecognized condition: apply effects on both branches.
			st = apply(st)
			thenSt := w.block(x.Body.List, st.clone())
			elseSt := st.clone()
			if x.Else != nil {
				elseSt = w.stmt(x.Else, elseSt)
			}
			return cbJoin(thenSt, elseSt)
		}
		if x.Init != nil {
			st = w.stmt(x.Init, st)
		}
		st = w.applyEffects(x.Cond, st)
		thenSt := w.block(x.Body.List, st.clone())
		elseSt := st.clone()
		if x.Else != nil {
			elseSt = w.stmt(x.Else, elseSt)
		}
		return cbJoin(thenSt, elseSt)

	case *ast.ForStmt:
		if x.Init != nil {
			st = w.stmt(x.Init, st)
		}
		if x.Cond != nil {
			st = w.applyEffects(x.Cond, st)
		}
		body := w.block(x.Body.List, st.clone())
		return cbJoin(st, body)

	case *ast.RangeStmt:
		st = w.applyEffects(x.X, st)
		body := w.block(x.Body.List, st.clone())
		return cbJoin(st, body)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.branches(s, st)

	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, st)

	case *ast.BranchStmt:
		st.terminated = true
		return st

	case *ast.DeferStmt:
		// `defer x.F.Close()` releases F on every path.
		if f, name, ok := childCall(x.Call, w.recv); ok && name == "Close" {
			delete(st.open, f)
		}
		return st

	default:
		return w.applyEffects(s, st)
	}
}

func (w *cbWalker) branches(s ast.Stmt, st cbState) cbState {
	var clauses []ast.Stmt
	hasDefault := false
	switch x := s.(type) {
	case *ast.SwitchStmt:
		if x.Init != nil {
			st = w.stmt(x.Init, st)
		}
		if x.Tag != nil {
			st = w.applyEffects(x.Tag, st)
		}
		clauses = x.Body.List
	case *ast.TypeSwitchStmt:
		clauses = x.Body.List
	case *ast.SelectStmt:
		hasDefault = true
		clauses = x.Body.List
	}
	out := cbState{terminated: true}
	for _, c := range clauses {
		var body []ast.Stmt
		branch := st.clone()
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				branch = w.applyEffects(cc.Comm, branch)
			}
			body = cc.Body
		}
		out = cbJoin(out, w.block(body, branch))
	}
	if !hasDefault {
		out = cbJoin(out, st)
	}
	return out
}

// Check satisfies Rule; closeBalance only runs via CheckProgram.
func (*closeBalance) Check(*Package) []Diagnostic { return nil }
