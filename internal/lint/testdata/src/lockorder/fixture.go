// Package server is a lockorder fixture: the structural lock
// acquisition graph must be acyclic.
package server

import "sync"

// A and B lock each other's mutexes in opposite orders: the classic
// two-party deadlock, visible only across function boundaries.
type A struct {
	mu sync.Mutex
	b  *B
}

type B struct {
	mu sync.Mutex
	a  *A
}

func (a *A) DoA() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.b.mu.Lock() // want "lock-order cycle"
	a.b.mu.Unlock()
}

func (b *B) DoB() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.a.mu.Lock()
	b.a.mu.Unlock()
}

// C and D deadlock through helper calls: neither Work touches the other
// type's mutex directly, but the callee summaries carry the
// acquisition across the boundary.
type C struct {
	mu sync.Mutex
	d  *D
}

type D struct {
	mu sync.Mutex
	c  *C
}

func (c *C) Work() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.d.poke() // want "lock-order cycle"
}

func (d *D) poke() {
	d.mu.Lock()
	d.mu.Unlock()
}

func (d *D) Work() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.c.prod()
}

func (c *C) prod() {
	c.mu.Lock()
	c.mu.Unlock()
}

// E and F nest consistently (E.mu always outside F.mu): one direction
// only, no cycle, no report.
type E struct {
	mu sync.Mutex
	f  *F
}

type F struct {
	mu sync.Mutex
}

func (e *E) One() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.f.mu.Lock()
	e.f.mu.Unlock()
}

func (e *E) Two() {
	e.mu.Lock()
	e.f.mu.Lock()
	e.f.mu.Unlock()
	e.mu.Unlock()
}

// seq releases its first lock before taking the second: no nesting, no
// edge, even though both mutexes appear in one body.
func (e *E) seq(f *F) {
	e.mu.Lock()
	e.mu.Unlock()
	f.mu.Lock()
	f.mu.Unlock()
}
