// Fixture for malformed //lint:ignore directives: a directive without
// both a rule name and a reason is itself reported (rule "ignore").
package ignorefix

import (
	//lint:ignore seededrand
	"math/rand"
)

func roll() int { return rand.Intn(6) }
