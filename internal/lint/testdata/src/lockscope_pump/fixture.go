// Fixture for lockscope's blocking-pump-call check, loaded as
// "repro/internal/async" so the Pump receiver type resolves.
package async

import (
	"context"
	"sync"
)

type Pump struct {
	mu sync.Mutex
}

func (p *Pump) RegisterCtx(ctx context.Context, dest string) int { return 0 }

// NotAPump shares a blocking method name; type info must exclude it.
type NotAPump struct {
	mu sync.Mutex
}

func (n *NotAPump) AwaitAny() {}

func (p *Pump) BadStats(ctx context.Context) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.RegisterCtx(ctx, "google") // want "blocking pump call"
}

func (p *Pump) GoodStats(ctx context.Context) int {
	p.mu.Lock()
	p.mu.Unlock()
	return p.RegisterCtx(ctx, "google")
}

func (n *NotAPump) LocalAwait() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.AwaitAny() // not an async.Pump method; no diagnostic
}
