// Package exec is a batchwindow fixture: NextBatch windows are valid
// only until the producer's next NextBatch call and must not be
// retained, captured, appended whole, or used stale.
package exec

type Tuple []int

type Batch []Tuple

// Op is a toy batch producer; its NextBatch method is exempt from the
// rule (producers hand out windows by contract).
type Op struct {
	buf Batch
}

func (o *Op) NextBatch(ctx int, max int) (Batch, bool, error) {
	return o.buf, true, nil
}

type Consumer struct {
	child *Op
	held  Batch
	rows  []Tuple
}

func (c *Consumer) drainBad(ctx int) error {
	acc := make([]Batch, 0)
	for {
		b, ok, err := c.child.NextBatch(ctx, 256)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		c.held = b               // want "retained in a field"
		acc = append(acc, b)     // want "appended whole"
		go func() { _ = b[0] }() // want "captured by a goroutine"
	}
}

func (c *Consumer) drainGood(ctx int) error {
	var out []Tuple
	for {
		b, ok, err := c.child.NextBatch(ctx, 256)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		// Copying tuple references out re-slices the elements: allowed.
		out = append(out, b...)
	}
	c.rows = out
	return nil
}

func (c *Consumer) stale(ctx int) {
	b1, _, _ := c.child.NextBatch(ctx, 8)
	b2, _, _ := c.child.NextBatch(ctx, 8)
	_ = b2
	_ = b1[0] // want "used after a later NextBatch"
}

// rebind is fine: the second call re-binds the same variable, so no
// stale window survives.
func (c *Consumer) rebind(ctx int) {
	b, _, _ := c.child.NextBatch(ctx, 8)
	_ = b
	b, _, _ = c.child.NextBatch(ctx, 8)
	_ = b
}

// keep retains its parameter; passing a live window to it is flagged at
// the call site (interprocedural retention).
func (c *Consumer) keep(b Batch) { c.held = b }

// relay just forwards to keep — retention propagates through the
// summary fixed point.
func (c *Consumer) relay(b Batch) { c.keep(b) }

func (c *Consumer) forward(ctx int) {
	b, _, _ := c.child.NextBatch(ctx, 8)
	c.keep(b)  // want "passed to .*keep.*stores it in a field"
	c.relay(b) // want "passed to .*relay.*stores it in a field"
}
