// Fixture package for the slotbalance rule: loaded by lint_test as
// "repro/internal/async" so the rule's scope and the Pump-shaped method
// names apply. Inline want-markers name the expected diagnostics.
package async

import "errors"

var errFail = errors.New("fail")

type pump struct{ dest string }

func (p *pump) grabTokenLocked(dest string)      {}
func (p *pump) acquireToken(dest string) error   { return nil }
func (p *pump) tryAcquireToken(dest string) bool { return true }
func (p *pump) releaseToken(dest string)         {}

// run is a releaser by summary (it transitively calls releaseToken), so
// handing a token to it counts as a release.
func (p *pump) run() { p.finish() }

func (p *pump) finish() { p.releaseToken("d") }

// --- positives --------------------------------------------------------

func (p *pump) leakOnEarlyReturn(fail bool) error {
	p.grabTokenLocked("d")
	if fail {
		return errFail // want "not released or handed off"
	}
	p.releaseToken("d")
	return nil
}

func (p *pump) leakAtEnd() {
	p.grabTokenLocked("d")
} // want "not released or handed off"

func (p *pump) leakInTryBranch() {
	if p.tryAcquireToken("d") {
		p.dest = "won"
	}
} // want "not released or handed off"

func (p *pump) leakAfterErrAcquire(c *pump) error {
	if err := p.acquireToken("d"); err != nil {
		return err
	}
	return nil // want "not released or handed off"
}

func (p *pump) leakInSelectBranch(ch chan int) {
	p.grabTokenLocked("d")
	select {
	case <-ch:
		p.releaseToken("d")
	case v := <-ch:
		_ = v
		return // want "not released or handed off"
	}
}

// --- negatives --------------------------------------------------------

func (p *pump) releasedOnAllPaths(fail bool) error {
	p.grabTokenLocked("d")
	if fail {
		p.releaseToken("d")
		return errFail
	}
	p.releaseToken("d")
	return nil
}

func (p *pump) deferredRelease() {
	p.grabTokenLocked("d")
	defer p.releaseToken("d")
	p.dest = "work"
}

func (p *pump) handoffToGoroutine() {
	p.grabTokenLocked("d")
	go p.run()
}

func (p *pump) handoffToGoLiteral() {
	p.grabTokenLocked("d")
	go func() {
		p.releaseToken("d")
	}()
}

func (p *pump) errAcquirePattern() error {
	if err := p.acquireToken("d"); err != nil {
		return err
	}
	p.releaseToken("d")
	return nil
}

func (p *pump) tryBranchReleases() {
	if p.tryAcquireToken("d") {
		p.releaseToken("d")
	}
}

func (p *pump) localClosureHandoff() {
	launch := func() {
		go func() {
			p.releaseToken("d")
		}()
	}
	p.grabTokenLocked("d")
	launch()
}

func (p *pump) retryLoop(attempts int) error {
	for i := 0; i < attempts; i++ {
		if err := p.acquireToken("d"); err != nil {
			return err
		}
		p.finish()
	}
	return nil
}

// --- suppressed -------------------------------------------------------

func (p *pump) suppressedLeak() {
	p.grabTokenLocked("d")
	//lint:ignore slotbalance fixture: token intentionally parked for the test harness
} // the ignore comment covers the next line, where the exit check fires
