// Package exec is an errjoin fixture: Close methods must not discard
// child Close errors.
package exec

import "errors"

type Closer interface{ Close() error }

type Multi struct {
	a, b, c Closer
}

func (m *Multi) Close() error {
	m.a.Close()       // want "error is dropped"
	_ = m.b.Close()   // want "assigned to _"
	defer m.c.Close() // want "dropped by defer"
	return nil
}

// Good aggregates every child error.
type Good struct {
	a, b Closer
}

func (g *Good) Close() error {
	return errors.Join(g.a.Close(), g.b.Close())
}

// Single returns its only child's error directly.
type Single struct {
	a Closer
}

func (s *Single) Close() error {
	return s.a.Close()
}

// NoErr closes a child whose Close returns nothing: nothing to drop.
type quietCloser interface{ Close() }

type NoErr struct {
	w quietCloser
}

func (n *NoErr) Close() error {
	n.w.Close()
	return nil
}

// Collected accumulates manually before returning: also fine.
type Collected struct {
	a, b Closer
}

func (c *Collected) Close() error {
	err := c.a.Close()
	if e := c.b.Close(); e != nil {
		err = errors.Join(err, e)
	}
	return err
}
