package websim

import (
	//lint:ignore seededrand fixture: single-threaded seeded generator needing rand.Zipf
	mrand "math/rand"
)

func zipfish(seed int64) uint64 {
	rng := mrand.New(mrand.NewSource(seed))
	z := mrand.NewZipf(rng, 1.3, 1.0, 99)
	return z.Uint64()
}
