// Fixture for the seededrand rule, loaded as "repro/internal/websim":
// any math/rand import outside internal/search/rand.go is flagged.
package websim

import (
	"math/rand" // want "direct math/rand import"
	"sort"
)

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sort.Ints(xs)
}
