// Package exec is a closebalance fixture: operators whose Close is
// gated on an opened flag must release already-opened children on every
// Open path that returns before the flag is set.
package exec

import "errors"

type Context struct{}

type Operator interface {
	Open(ctx *Context) error
	Close() error
}

// LeakyJoin reproduces the exact half-open-subtree leak shape the batch
// executor refactor (PR 7) fixed dynamically: Close is gated on opened,
// and Open forgets the left subtree when the right open fails.
type LeakyJoin struct {
	Left, Right Operator
	opened      bool
}

func (j *LeakyJoin) Open(ctx *Context) error {
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		return err // want "child Left opened at .*half-open subtree leak"
	}
	j.opened = true
	return nil
}

func (j *LeakyJoin) Close() error {
	if !j.opened {
		return nil
	}
	j.opened = false
	return errors.Join(j.Left.Close(), j.Right.Close())
}

// FixedJoin is the correct pattern: the half-open left subtree is
// released on the error path before the gated Close loses track of it.
type FixedJoin struct {
	Left, Right Operator
	opened      bool
}

func (j *FixedJoin) Open(ctx *Context) error {
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		return errors.Join(err, j.Left.Close())
	}
	j.opened = true
	return nil
}

func (j *FixedJoin) Close() error {
	if !j.opened {
		return nil
	}
	j.opened = false
	return errors.Join(j.Left.Close(), j.Right.Close())
}

// UngatedUnion has an unguarded Close: exec.Run's errors.Join(err,
// op.Close()) reaches the children on every failure path, so early
// error returns owe no explicit close and the rule stays silent.
type UngatedUnion struct {
	Left, Right Operator
}

func (u *UngatedUnion) Open(ctx *Context) error {
	if err := u.Left.Open(ctx); err != nil {
		return err
	}
	if err := u.Right.Open(ctx); err != nil {
		return err
	}
	return nil
}

func (u *UngatedUnion) Close() error {
	return errors.Join(u.Left.Close(), u.Right.Close())
}

// HelperJoin opens its children through a helper: the helper's
// success-exit summary carries the opens across the call boundary, so
// the bind failure path is convicted of leaking both subtrees.
type HelperJoin struct {
	Left, Right Operator
	opened      bool
}

func (j *HelperJoin) openChildren(ctx *Context) error {
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		return errors.Join(err, j.Left.Close())
	}
	return nil
}

func (j *HelperJoin) bind(ctx *Context) error { return nil }

func (j *HelperJoin) Open(ctx *Context) error {
	if err := j.openChildren(ctx); err != nil {
		return err
	}
	if err := j.bind(ctx); err != nil {
		return err // want "child Left opened" // want "child Right opened"
	}
	j.opened = true
	return nil
}

func (j *HelperJoin) Close() error {
	if !j.opened {
		return nil
	}
	j.opened = false
	return errors.Join(j.Left.Close(), j.Right.Close())
}

// GuardFirstJoin sets the flag before the fallible tail — the gated
// Close takes over from there, so the tail's error return is fine.
type GuardFirstJoin struct {
	Left, Right Operator
	opened      bool
}

func (j *GuardFirstJoin) bindAll(ctx *Context) error { return nil }

func (j *GuardFirstJoin) Open(ctx *Context) error {
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		return errors.Join(err, j.Left.Close())
	}
	j.opened = true
	return j.bindAll(ctx)
}

func (j *GuardFirstJoin) Close() error {
	if !j.opened {
		return nil
	}
	j.opened = false
	return errors.Join(j.Left.Close(), j.Right.Close())
}

// ForgetfulScan succeeds without ever setting its guard: the children
// stay open forever because Close no-ops on every teardown.
type ForgetfulScan struct {
	Child  Operator
	opened bool
}

func (s *ForgetfulScan) Open(ctx *Context) error {
	if err := s.Child.Open(ctx); err != nil {
		return err
	}
	return nil // want "set s.opened before returning"
}

func (s *ForgetfulScan) Close() error {
	if !s.opened {
		return nil
	}
	s.opened = false
	return s.Child.Close()
}
