// Fixture negative for seededrand: this file is loaded as
// "repro/internal/search"/rand.go, the one blessed math/rand importer.
package search

import (
	"math/rand"
	"sync"
)

// Rand mirrors the real locked stream.
type Rand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRand returns a locked source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{rng: rand.New(rand.NewSource(seed))}
}
