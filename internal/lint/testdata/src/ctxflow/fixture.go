// Fixture package for the ctxflow rule: loaded as
// "repro/internal/async" so the Pump type resolution and the scope for
// exported-function checks both apply.
package async

import "context"

// Pump mimics async.Pump for receiver-type resolution.
type Pump struct{}

func (p *Pump) RegisterCtx(ctx context.Context, dest string) int { return 0 }
func (p *Pump) AwaitAnyCtx(ctx context.Context) (int, error)     { return 0, nil }

// NotAPump has a pump-op method name on a non-Pump receiver; type info
// must keep it from matching.
type NotAPump struct{}

func (n *NotAPump) RegisterCtx(name string) {}

// --- positives --------------------------------------------------------

func LeakyRegister(p *Pump) int { // want "takes no context.Context"
	return p.RegisterCtx(context.TODO(), "google") // want "detaches this call"
}

func LeakyAwait(p *Pump) { // want "takes no context.Context"
	_, _ = p.AwaitAnyCtx(nil)
}

// helper performs a pump call with no context of its own, so exported
// wrappers around it inherit the violation.
func helper(p *Pump) {
	_, _ = p.AwaitAnyCtx(nil)
}

func WrapsHelper(p *Pump) { // want "takes no context.Context"
	helper(p)
}

func StrayBackground() context.Context {
	return context.Background() // want "detaches this call"
}

// --- negatives --------------------------------------------------------

func BoundedRegister(ctx context.Context, p *Pump) int {
	return p.RegisterCtx(ctx, "google")
}

func NilDefault(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background() // the idiomatic nil-context default
	}
	return ctx
}

func NotPumpCall(n *NotAPump) {
	n.RegisterCtx("altavista") // receiver is not async.Pump
}

func unexportedLeak(p *Pump) {
	_, _ = p.AwaitAnyCtx(nil) // only exported functions are checked here
}

func ClosureEscapes(p *Pump) func() {
	return func() {
		// Closures run under their eventual caller's scope; not checked
		// against the enclosing signature.
		_, _ = p.AwaitAnyCtx(nil)
	}
}

// --- suppressed -------------------------------------------------------

// SyncShim is the paper-compat synchronous API.
//
//lint:ignore ctxflow fixture: deliberate synchronous shim, like Pump.Register
func SyncShim(p *Pump) {
	_, _ = p.AwaitAnyCtx(context.Background())
}
