// Fixture for the lockscope rule, loaded as "repro/internal/server":
// manual Lock() must Unlock() on every return path, and no channel
// operation may run while a lock is held.
package server

import (
	"errors"
	"sync"
)

var errStub = errors.New("stub")

type statsTable struct {
	mu   sync.Mutex
	rwmu sync.RWMutex
	n    int
	ch   chan int
}

// --- positives --------------------------------------------------------

func (s *statsTable) LeakOnEarlyReturn(fail bool) error {
	s.mu.Lock()
	if fail {
		return errStub // want "no Unlock\\(\\) on this return path"
	}
	s.mu.Unlock()
	return nil
}

func (s *statsTable) LeakAtEnd() {
	s.mu.Lock()
	s.n++
} // want "no Unlock\\(\\) on this return path"

func (s *statsTable) SendWhileLocked(v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send while holding"
	s.mu.Unlock()
}

func (s *statsTable) RecvWhileLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive while holding"
}

func (s *statsTable) SelectWhileLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select while holding"
	case v := <-s.ch:
		s.n = v
	default:
	}
}

// --- negatives --------------------------------------------------------

func (s *statsTable) UnlockAllPaths(fail bool) error {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return errStub
	}
	s.n++
	s.mu.Unlock()
	return nil
}

func (s *statsTable) DeferredUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

func (s *statsTable) DeferClosureUnlock() {
	s.mu.Lock()
	defer func() {
		s.n++
		s.mu.Unlock()
	}()
	s.n += 2
}

func (s *statsTable) SendAfterUnlock(v int) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- v
}

func (s *statsTable) ReadLocked() int {
	s.rwmu.RLock()
	defer s.rwmu.RUnlock()
	return s.n
}

// --- suppressed -------------------------------------------------------

// ParkedLock intentionally returns holding the lock; the caller unlocks.
//
//lint:ignore lockscope fixture: documented lock-handoff contract, caller unlocks
func (s *statsTable) ParkedLock() {
	s.mu.Lock()
	s.n++
}
