// Fixture for the goroutinectx rule, loaded as "repro/internal/async":
// go func literals must select on a cancellation signal or register
// with a WaitGroup.
package async

import (
	"context"
	"sync"
)

type worker struct {
	wg   sync.WaitGroup
	stop chan struct{}
	jobs chan int
}

// --- positives --------------------------------------------------------

func (w *worker) SpawnUnowned() {
	go func() { // want "no cancellation path"
		for j := range w.jobs {
			_ = j
		}
	}()
}

func SpawnDetached(out chan<- int) {
	go func() { // want "no cancellation path"
		out <- 1
	}()
}

// --- negatives --------------------------------------------------------

func (w *worker) SpawnCtx(ctx context.Context) {
	go func() {
		select {
		case j := <-w.jobs:
			_ = j
		case <-ctx.Done():
			return
		}
	}()
}

func (w *worker) SpawnStopChan() {
	go func() {
		for {
			select {
			case j := <-w.jobs:
				_ = j
			case <-w.stop:
				return
			}
		}
	}()
}

func (w *worker) SpawnWaitGroup() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for j := range w.jobs {
			_ = j
		}
	}()
}

func (w *worker) SpawnNamed() {
	go w.drain() // want "goroutine target .*drain.* has no cancellation path"
}

func (w *worker) drain() {
	for range w.jobs {
	}
}

// SpawnNamedCancellable resolves through the call graph: runLoop never
// mentions a channel itself, but its callee selects on the stop signal.
func (w *worker) SpawnNamedCancellable() {
	go w.runLoop()
}

func (w *worker) runLoop() {
	for w.step() {
	}
}

func (w *worker) step() bool {
	select {
	case <-w.stop:
		return false
	case j := <-w.jobs:
		_ = j
		return true
	}
}

// --- suppressed -------------------------------------------------------

func (w *worker) SpawnSuppressed() {
	//lint:ignore goroutinectx fixture: drains a buffered channel that the owner closes
	go func() {
		for j := range w.jobs {
			_ = j
		}
	}()
}
