package lint

import (
	"path/filepath"
	"strings"
)

// seededRand enforces the reproducibility contract of the fault and
// latency simulators: every random draw in the system flows through the
// one locked, seeded stream in internal/search/rand.go (search.Rand).
// A stray math/rand import anywhere else silently breaks seed-for-seed
// reproduction of chaos and latency runs — exactly the class of
// regression the golden Table-1 suite can only catch after the fact.
type seededRand struct{}

func newSeededRand() *seededRand { return &seededRand{} }

func (*seededRand) Name() string { return "seededrand" }

func (*seededRand) Doc() string {
	return "math/rand may be imported only by internal/search/rand.go; all other randomness must flow through the seeded search.Rand"
}

func (r *seededRand) Check(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		filename := pkg.Position(f.Pos()).Filename
		if pathMatch(pkg.Path, "internal/search") && filepath.Base(filename) == "rand.go" {
			continue // the one blessed wrapper
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p != "math/rand" && p != "math/rand/v2" {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:  pkg.Position(imp.Pos()),
				Rule: r.Name(),
				Message: "direct " + p + " import breaks seeded reproducibility; " +
					"use the locked search.Rand stream (internal/search/rand.go) instead",
			})
		}
	}
	// Dot-imports aside, use without import is impossible, so flagging
	// the import spec covers every call site in one diagnostic.
	return diags
}
