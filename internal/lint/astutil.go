package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// pathMatch reports whether an import path falls inside scope, where
// scope is a module-relative suffix like "internal/async". Matching by
// suffix keeps rules independent of the module name, which also lets
// fixture packages claim scoped paths.
func pathMatch(importPath string, scopes ...string) bool {
	for _, s := range scopes {
		if importPath == s || strings.HasSuffix(importPath, "/"+s) {
			return true
		}
	}
	return false
}

// exprPath renders an ident/selector chain ("p.mu", "c.http") and
// reports ok=false for anything else (calls, indexing, ...).
func exprPath(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := exprPath(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.ParenExpr:
		return exprPath(x.X)
	}
	return "", false
}

// callee splits a call into the receiver chain and the final name:
// p.mu.Lock() -> ("p.mu", "Lock"); close(ch) -> ("", "close").
func callee(call *ast.CallExpr) (recv, name string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return "", fun.Name
	case *ast.SelectorExpr:
		base, _ := exprPath(fun.X)
		return base, fun.Sel.Name
	}
	return "", ""
}

// lastSegment returns the final dotted segment of an expr path
// ("s.statsMu" -> "statsMu").
func lastSegment(path string) string {
	if i := strings.LastIndex(path, "."); i >= 0 {
		return path[i+1:]
	}
	return path
}

// inspectShallow walks n but does not descend into function literals:
// a closure's body executes at some later call, not where it is
// written, so its statements must not contribute effects (releases,
// unlocks) to the enclosing statement.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, isLit := c.(*ast.FuncLit); isLit {
			return false
		}
		return fn(c)
	})
}

// funcLits collects every function literal under n (including nested
// ones), for independent analysis.
func funcLits(n ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(n, func(c ast.Node) bool {
		if lit, ok := c.(*ast.FuncLit); ok {
			out = append(out, lit)
		}
		return true
	})
	return out
}

// recvNamed resolves the receiver of a method selector to its named
// type, dereferencing pointers, using type info when available. It
// returns nil when types are missing (the caller falls back to name
// heuristics).
func recvNamed(pkg *Package, sel *ast.SelectorExpr) *types.Named {
	if pkg.Info == nil {
		return nil
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isNamedType reports whether named is exactly pkgSuffix.typeName, e.g.
// ("sync", "Mutex") or ("internal/async", "Pump"). pkgSuffix matches by
// path suffix so fixtures can participate.
func isNamedType(named *types.Named, pkgSuffix, typeName string) bool {
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Name() != typeName {
		return false
	}
	return pathMatch(named.Obj().Pkg().Path(), pkgSuffix)
}

// importName returns the local name under which a file imports path
// ("context"), and ok=false when the file does not import it.
func importName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:], true
		}
		return p, true
	}
	return "", false
}
