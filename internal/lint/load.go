package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Loader discovers packages with `go list -json` and type-checks them
// from source, resolving imports inside the module directly and standard
// library imports from GOROOT (including GOROOT/src/vendor). The module
// is dependency-free by policy, so no other resolution is needed; an
// unresolvable import degrades to a missing types.Info entry rather than
// failing the run.
type Loader struct {
	ModuleRoot string
	modulePath string

	fset *token.FileSet
	bctx build.Context
	// imported memoizes type-checked dependencies by import path.
	imported map[string]*types.Package
	// depth guards against import cycles in degenerate inputs.
	importing map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir (dir or
// an ancestor must hold go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	bctx := build.Default
	// Cgo files cannot be type-checked from source; with cgo disabled the
	// standard library offers pure-Go fallbacks for everything we import.
	bctx.CgoEnabled = false
	return &Loader{
		ModuleRoot: root,
		modulePath: modPath,
		fset:       token.NewFileSet(),
		bctx:       bctx,
		imported:   make(map[string]*types.Package),
		importing:  make(map[string]bool),
	}, nil
}

// Fset exposes the loader's file set (shared by every loaded package).
func (ld *Loader) Fset() *token.FileSet { return ld.fset }

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	Name       string
	ImportPath string
	Dir        string
	GoFiles    []string
}

// LoadPatterns resolves package patterns ("./...") via `go list -json`
// and loads each matched package with full bodies and comments.
func (ld *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json=Name,ImportPath,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = ld.ModuleRoot
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*Package
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := ld.loadFiles(lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads every non-test .go file in dir as one package under the
// given import path. It exists for fixture packages (testdata/src/...)
// that `go list` does not see; asPath positions them inside the scopes
// the rules care about (e.g. "repro/internal/async").
func (ld *Loader) LoadDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return ld.loadFiles(asPath, files)
}

// loadFiles parses and permissively type-checks one package.
func (ld *Loader) loadFiles(importPath string, filenames []string) (*Package, error) {
	var astFiles []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(ld.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", fn, err)
		}
		astFiles = append(astFiles, f)
	}
	pkg := &Package{
		Path: importPath,
		Name: astFiles[0].Name.Name,
		Fset: ld.fset,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
		Files: astFiles,
	}
	conf := types.Config{
		Importer:    ld,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Permissive: partial type information is still useful to rules, and
	// every rule falls back to syntactic matching on a missing entry.
	tpkg, _ := conf.Check(importPath, ld.fset, astFiles, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// Import implements types.Importer over module-local and GOROOT source.
func (ld *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ld.imported[path]; ok {
		return p, nil
	}
	if ld.importing[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	dir, err := ld.resolveDir(path)
	if err != nil {
		return nil, err
	}
	bp, err := ld.bctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("resolve %q: %v", path, err)
	}
	var astFiles []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		astFiles = append(astFiles, f)
	}
	ld.importing[path] = true
	defer delete(ld.importing, path)
	conf := types.Config{
		Importer:         ld,
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		Error:            func(error) {}, // best effort: signatures are what we need
	}
	tpkg, _ := conf.Check(path, ld.fset, astFiles, nil)
	if tpkg == nil {
		return nil, fmt.Errorf("type-check %q failed", path)
	}
	tpkg.MarkComplete()
	ld.imported[path] = tpkg
	return tpkg, nil
}

// resolveDir maps an import path to a source directory: module-local
// paths under the module root, everything else from GOROOT (with the
// std vendor directory as fallback).
func (ld *Loader) resolveDir(path string) (string, error) {
	if path == ld.modulePath {
		return ld.ModuleRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, ld.modulePath+"/"); ok {
		return filepath.Join(ld.ModuleRoot, filepath.FromSlash(rest)), nil
	}
	goroot := runtime.GOROOT()
	for _, dir := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("cannot resolve import %q (module has no external dependencies)", path)
}
