package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Fixture tests: each package under testdata/src is loaded under an
// import path that places it in the rule's scope, the named rules run,
// and the resulting diagnostics must line up exactly with the
//
//	// want "regexp"
//
// markers in the fixture sources — no missing, no unexpected.

var wantRx = regexp.MustCompile(`// want ("(?:[^"\\]|\\.)*")`)

type wantMark struct {
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// parseWants maps base filename -> line -> markers for every fixture
// file in dir.
func parseWants(t *testing.T, dir string) map[string]map[int][]*wantMark {
	t.Helper()
	wants := make(map[string]map[int][]*wantMark)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		perLine := make(map[int][]*wantMark)
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRx.FindAllStringSubmatch(line, -1) {
				pat, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want string %s: %v", e.Name(), i+1, m[1], err)
				}
				rx, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, pat, err)
				}
				perLine[i+1] = append(perLine[i+1], &wantMark{rx: rx, raw: pat})
			}
		}
		if len(perLine) > 0 {
			wants[e.Name()] = perLine
		}
	}
	return wants
}

func rulesByName(t *testing.T, names []string) []Rule {
	t.Helper()
	byName := make(map[string]Rule)
	for _, r := range AllRules() {
		byName[r.Name()] = r
	}
	var out []Rule
	for _, n := range names {
		r, ok := byName[n]
		if !ok {
			t.Fatalf("unknown rule %q", n)
		}
		out = append(out, r)
	}
	return out
}

func loadFixture(t *testing.T, dir, asPath string) *Package {
	t.Helper()
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := ld.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return pkg
}

func runFixture(t *testing.T, name, asPath string, ruleNames []string) {
	dir := filepath.Join("testdata", "src", name)
	pkg := loadFixture(t, dir, asPath)
	diags := Run([]*Package{pkg}, rulesByName(t, ruleNames))
	wants := parseWants(t, dir)

	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		marks := wants[base][d.Pos.Line]
		found := false
		for _, m := range marks {
			if !m.matched && m.rx.MatchString(d.Message) {
				m.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, perLine := range wants {
		for line, marks := range perLine {
			for _, m := range marks {
				if !m.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, m.raw)
				}
			}
		}
	}
}

func TestFixtures(t *testing.T) {
	cases := []struct {
		dir    string
		asPath string
		rules  []string
	}{
		{"slotbalance", "repro/internal/async", []string{"slotbalance"}},
		{"ctxflow", "repro/internal/async", []string{"ctxflow"}},
		{"seededrand", "repro/internal/websim", []string{"seededrand"}},
		// The blessed file: internal/search/rand.go may import math/rand.
		{"seededrand_allowed", "repro/internal/search", []string{"seededrand"}},
		{"lockscope", "repro/internal/server", []string{"lockscope"}},
		{"lockscope_pump", "repro/internal/async", []string{"lockscope"}},
		{"goroutinectx", "repro/internal/async", []string{"goroutinectx"}},
		{"closebalance", "repro/internal/exec", []string{"closebalance"}},
		{"batchwindow", "repro/internal/exec", []string{"batchwindow"}},
		{"lockorder", "repro/internal/server", []string{"lockorder"}},
		{"errjoin", "repro/internal/exec", []string{"errjoin"}},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) { runFixture(t, tc.dir, tc.asPath, tc.rules) })
	}
}

// TestMalformedIgnore checks that a reason-less //lint:ignore is itself
// reported and does not suppress the diagnostic it sits next to.
func TestMalformedIgnore(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "src", "ignore"), "repro/internal/ignorefix")
	diags := Run([]*Package{pkg}, rulesByName(t, []string{"seededrand"}))
	var gotMalformed, gotSeeded bool
	for _, d := range diags {
		switch d.Rule {
		case "ignore":
			if !strings.Contains(d.Message, "malformed") {
				t.Errorf("ignore diagnostic without 'malformed': %s", d)
			}
			gotMalformed = true
		case "seededrand":
			gotSeeded = true
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !gotMalformed {
		t.Error("expected a malformed-ignore diagnostic, got none")
	}
	if !gotSeeded {
		t.Error("expected the math/rand import to stay flagged (malformed ignore must not suppress)")
	}
}

// TestRuleMetadata pins the suite composition and that every rule has a
// one-line doc (used by wsqlint -list).
func TestRuleMetadata(t *testing.T) {
	want := []string{
		"slotbalance", "ctxflow", "seededrand", "lockscope", "goroutinectx",
		"closebalance", "batchwindow", "lockorder", "errjoin",
	}
	got := RuleNames(AllRules())
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("AllRules() = %v, want %v", got, want)
	}
	for _, r := range AllRules() {
		if strings.TrimSpace(r.Doc()) == "" {
			t.Errorf("rule %s has empty Doc()", r.Name())
		}
		if strings.Contains(r.Doc(), "\n") {
			t.Errorf("rule %s Doc() is not one line", r.Name())
		}
	}
}

// TestRepoClean runs the full suite over the module itself: the tree
// must lint clean, since `make check` gates on it.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := ld.LoadPatterns("./...")
	if err != nil {
		t.Fatalf("LoadPatterns: %v", err)
	}
	diags := Run(pkgs, AllRules())
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}
