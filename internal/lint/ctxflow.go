package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// ctxFlow enforces context discipline around the paper's external-call
// machinery. Two sub-checks:
//
//  1. In internal/{async,search,server,core}, an exported function or
//     method that directly performs a pump operation (RegisterCtx,
//     AwaitAnyCtx, CallWithRetry, ...) or a network call (net/http)
//     must accept a context.Context parameter: without one, a query
//     deadline cannot reach the external call it is supposed to bound.
//
//  2. Outside main packages and tests, context.Background() and
//     context.TODO() are forbidden except as the idiomatic nil-context
//     default (`if ctx == nil { ctx = context.Background() }`): any
//     other use silently detaches work from the caller's cancellation
//     scope.
//
// Sub-check 1 is interprocedural: effectful-ness propagates over the
// whole program's call graph through every context-less function, so an
// exported wrapper is flagged even when the pump or network call hides
// behind helper layers in another package.
type ctxFlow struct {
	// scopes restricts sub-check 1.
	scopes []string
	// pumpMethods are the blocking pump operations by method name. The
	// distinctive names match syntactically; ambiguous ones (Register,
	// AwaitAny) additionally require the receiver to resolve to
	// async.Pump when type information is available.
	pumpMethods map[string]bool
	// netFuncs are package-level net/http entry points that carry no
	// context.
	netFuncs map[string]bool
}

func newCtxFlow() *ctxFlow {
	return &ctxFlow{
		scopes: []string{"internal/async", "internal/search", "internal/server", "internal/core", "internal/obs", "internal/shard", "internal/exec"},
		pumpMethods: map[string]bool{
			"RegisterCtx": true, "AwaitAnyCtx": true, "AwaitAny": true, "CallWithRetry": true,
		},
		netFuncs: map[string]bool{"Get": true, "Post": true, "PostForm": true, "Head": true},
	}
}

func (*ctxFlow) Name() string { return "ctxflow" }

func (*ctxFlow) Doc() string {
	return "exported functions performing pump or network calls must take a context.Context; context.Background()/TODO() only in main packages, tests, and nil-context defaults"
}

// Check satisfies Rule; ctxFlow runs via CheckProgram.
func (r *ctxFlow) Check(pkg *Package) []Diagnostic { return nil }

func (r *ctxFlow) CheckProgram(prog *Program) []Diagnostic {
	var diags []Diagnostic
	eff := r.effectfulFuncs(prog)
	for _, pkg := range prog.Pkgs {
		if pkg.Name != "main" {
			diags = append(diags, r.checkBackground(pkg)...)
		}
		if pathMatch(pkg.Path, r.scopes...) {
			diags = append(diags, r.checkExported(prog, pkg, eff)...)
		}
	}
	return diags
}

// --- sub-check 1: exported effectful functions need a ctx param -------

// effectfulFuncs computes, over the whole program's call graph, the
// context-less functions that (transitively) perform a pump or network
// call. Propagation crosses package boundaries but stops at any
// function that takes a context parameter — such a callee is
// cancellable, and what its callers pass it is their own business
// (sub-check 2 polices Background()).
func (r *ctxFlow) effectfulFuncs(prog *Program) map[*FuncInfo]bool {
	hasCtx := make(map[*FuncInfo]bool, len(prog.Funcs))
	eff := make(map[*FuncInfo]bool)
	for _, fi := range prog.Funcs {
		hasCtx[fi] = hasCtxParam(fi.File, fi.Decl.Type)
		if !hasCtx[fi] && r.firstEffectfulCall(fi.Pkg, fi.File, fi.Decl.Body, nil) != nil {
			eff[fi] = true
		}
	}
	prog.fixedPoint(func(fi *FuncInfo) bool {
		if eff[fi] || hasCtx[fi] {
			return false
		}
		for _, e := range fi.Calls {
			if e.InFuncLit || e.Target == nil {
				continue
			}
			if eff[e.Target] {
				eff[fi] = true
				return true
			}
		}
		return false
	})
	return eff
}

func (r *ctxFlow) checkExported(prog *Program, pkg *Package, eff map[*FuncInfo]bool) []Diagnostic {
	helpers := r.effectfulHelpers(pkg)
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if hasCtxParam(f, fd.Type) {
				continue
			}
			what := ""
			if call := r.firstEffectfulCall(pkg, f, fd.Body, helpers); call != nil {
				recv, name := callee(call)
				what = name
				if recv != "" {
					what = recv + "." + name
				}
			} else if fi := prog.FuncOf(fd); fi != nil {
				// Interprocedural: a call into any context-less function
				// that is transitively effectful, wherever it lives.
				for _, e := range fi.Calls {
					if e.InFuncLit || e.Target == nil || !eff[e.Target] {
						continue
					}
					what = e.Target.Name()
					if e.Target.Pkg != pkg {
						what = e.Target.Pkg.Name + "." + what
					}
					what += " (transitively)"
					break
				}
			}
			if what == "" {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:  pkg.Position(fd.Name.Pos()),
				Rule: r.Name(),
				Message: fmt.Sprintf("exported %s performs an external call (%s) but takes no context.Context; "+
					"query deadlines cannot reach it", fd.Name.Name, what),
			})
		}
	}
	return diags
}

// hasCtxParam reports whether the signature has a parameter that carries
// a cancellation scope: a context.Context, or any *Context carrier like
// the executor's *exec.Context (which wraps Ctx context.Context for the
// operator interface). Resolution is syntactic.
func hasCtxParam(f *ast.File, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	ctxName, _ := importName(f, "context")
	for _, field := range ft.Params.List {
		t := ast.Unparen(field.Type)
		if star, ok := t.(*ast.StarExpr); ok {
			t = ast.Unparen(star.X)
		}
		sel, ok := t.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		base, ok := sel.X.(*ast.Ident)
		if ok && (base.Name == ctxName || base.Name == "exec") {
			return true
		}
	}
	return false
}

// effectfulHelpers computes, as a fixed point by name, the unexported
// functions of the package that (transitively) perform a pump or
// network call without threading a context parameter. An exported
// wrapper around such a helper is as context-blind as a direct caller —
// search.Client.Count -> c.get -> http.Get is the canonical chain.
func (r *ctxFlow) effectfulHelpers(pkg *Package) map[string]bool {
	type fn struct {
		file *ast.File
		body *ast.BlockStmt
	}
	unexported := make(map[string]fn)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.IsExported() {
				continue
			}
			if hasCtxParam(f, fd.Type) {
				continue // the helper is cancellable; its callers are fine
			}
			unexported[fd.Name.Name] = fn{file: f, body: fd.Body}
		}
	}
	helpers := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for name, fd := range unexported {
			if helpers[name] {
				continue
			}
			if r.firstEffectfulCall(pkg, fd.file, fd.body, helpers) != nil {
				helpers[name] = true
				changed = true
			}
		}
	}
	return helpers
}

// firstEffectfulCall finds a direct pump/network call — or a call into
// an effectful unexported helper — in body, ignoring nested function
// literals (a closure runs under whatever context its eventual caller
// supplies).
func (r *ctxFlow) firstEffectfulCall(pkg *Package, f *ast.File, body *ast.BlockStmt, helpers map[string]bool) *ast.CallExpr {
	var found *ast.CallExpr
	httpName, hasHTTP := importName(f, "net/http")
	inspectShallow(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			if _, name := callee(call); helpers[name] {
				found = call
			}
			return true
		}
		recv, name := callee(call)
		switch {
		case helpers[name] && recvIsLocal(pkg, sel):
			found = call
		case r.pumpMethods[name]:
			// Resolve ambiguity with type info when we have it: Register
			// and AwaitAny-like names exist on other types too.
			if named := recvNamed(pkg, sel); named != nil && !isNamedType(named, "internal/async", "Pump") {
				return true
			}
			found = call
		case hasHTTP && recv == httpName && r.netFuncs[name]:
			found = call // http.Get(url) and friends: context-free by design
		case (lastSegment(recv) == "http" || lastSegment(recv) == "client") &&
			(name == "Do" || name == "Get" || name == "Post" || name == "Head"):
			// A stored *http.Client field: c.http.Get(u). With type info,
			// require the receiver to actually be an http.Client.
			if named := recvNamed(pkg, sel); named != nil && !isNamedType(named, "net/http", "Client") {
				return true
			}
			found = call
		}
		return true
	})
	return found
}

// recvIsLocal reports whether a selector call targets a method of this
// package (so an unexported-helper name match like c.get counts only
// for local receivers). Without type info it optimistically says yes.
func recvIsLocal(pkg *Package, sel *ast.SelectorExpr) bool {
	named := recvNamed(pkg, sel)
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return true
	}
	return named.Obj().Pkg().Path() == pkg.Path
}

// --- sub-check 2: no context.Background()/TODO() ----------------------

func (r *ctxFlow) checkBackground(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ctxName, imported := importName(f, "context")
		if !imported {
			continue
		}
		// Walk with enough structure to recognize the nil-default idiom.
		var walk func(n ast.Node, allowed map[*ast.CallExpr]bool)
		walk = func(n ast.Node, allowed map[*ast.CallExpr]bool) {
			ast.Inspect(n, func(c ast.Node) bool {
				switch x := c.(type) {
				case *ast.IfStmt:
					// if <ident> == nil { <ident> = context.Background() }
					if v, ok := nilCheckedIdent(x.Cond); ok {
						for _, s := range x.Body.List {
							if call := backgroundAssignTo(s, v, ctxName); call != nil {
								allowed[call] = true
							}
						}
					}
				case *ast.CallExpr:
					if name, isBg := backgroundCall(x, ctxName); isBg && !allowed[x] {
						diags = append(diags, Diagnostic{
							Pos:  pkg.Position(x.Pos()),
							Rule: r.Name(),
							Message: "context." + name + "() detaches this call from the query's cancellation scope; " +
								"thread a ctx parameter through (allowed only in package main, tests, and `if ctx == nil` defaults)",
						})
					}
				}
				return true
			})
		}
		walk(f, make(map[*ast.CallExpr]bool))
	}
	return diags
}

// backgroundCall reports whether call is context.Background() or
// context.TODO() under the file's import name for "context".
func backgroundCall(call *ast.CallExpr, ctxName string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok || base.Name != ctxName {
		return "", false
	}
	if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
		return sel.Sel.Name, true
	}
	return "", false
}

// nilCheckedIdent matches `x == nil` and returns x's name.
func nilCheckedIdent(cond ast.Expr) (string, bool) {
	name, op, ok := nilComparison(cond)
	return name, ok && op == token.EQL
}

// nilComparison matches `x == nil` / `x != nil` and returns x's name
// and the comparison operator.
func nilComparison(cond ast.Expr) (string, token.Token, bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return "", 0, false
	}
	id, ok := ast.Unparen(bin.X).(*ast.Ident)
	if !ok {
		return "", 0, false
	}
	if nilID, ok := ast.Unparen(bin.Y).(*ast.Ident); !ok || nilID.Name != "nil" {
		return "", 0, false
	}
	return id.Name, bin.Op, true
}

// backgroundAssignTo matches `v = context.Background()` (or TODO) and
// returns the call when s assigns to the named ident.
func backgroundAssignTo(s ast.Stmt, v, ctxName string) *ast.CallExpr {
	assign, ok := s.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil
	}
	lhs, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
	if !ok || lhs.Name != v {
		return nil
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if _, isBg := backgroundCall(call, ctxName); !isBg {
		return nil
	}
	return call
}
