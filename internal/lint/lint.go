// Package lint implements wsqlint, a zero-dependency static analyzer
// suite for this repository's project invariants. The paper's
// asynchronous-iteration machinery (ReqPump slot accounting, AEVScan
// placeholders, ReqSync patching) stays correct only under disciplines —
// every pump slot released on every path, every network call bounded by a
// context, all simulated randomness flowing through one seeded stream —
// that `go vet` knows nothing about and the race detector can only
// sample. Each rule here encodes one such invariant as a compile-time
// check; `make lint` (folded into `make check`) gates the tree on all of
// them.
//
// The suite is built entirely on the standard library: go/ast, go/parser
// and go/types for analysis, and one `go list -json` invocation for
// package discovery. Diagnostics carry file:line:col positions, can be
// emitted as stable JSON for CI annotation, and are suppressible per
// rule with
//
//	//lint:ignore <rule> <reason>
//
// on the line before (or at the end of) the flagged line, or in the doc
// comment of a declaration to suppress the rule for that whole
// declaration. The reason is mandatory: an unexplained suppression is
// itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one reported rule violation.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Package is one loaded, parsed and (best-effort) type-checked package
// presented to rules.
type Package struct {
	// Path is the import path ("repro/internal/async").
	Path string
	// Name is the package name ("async", "main").
	Name string
	Fset *token.FileSet
	// Files holds the parsed non-test sources, comments included.
	Files []*ast.File
	// Info carries the type-checker's findings. Checking is permissive:
	// entries may be missing when a dependency failed to load, so rules
	// must degrade to syntactic matching when a lookup misses.
	Info *types.Info
	// Types is the checked package object (possibly incomplete).
	Types *types.Package
	// TypeErrors records type-checking problems, for -debug output; they
	// do not fail the run.
	TypeErrors []error
}

// Position resolves a token.Pos against the package's file set.
func (p *Package) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// Rule is one invariant checker.
type Rule interface {
	// Name is the identifier used in output and //lint:ignore comments.
	Name() string
	// Doc is a one-line description of the encoded invariant.
	Doc() string
	// Check reports the rule's diagnostics for one package. Suppression
	// is applied by Run, not by the rule.
	Check(pkg *Package) []Diagnostic
}

// AllRules returns the full suite in stable order. The first five are
// the original intra-procedural rules; the last four run on the shared
// interprocedural Program built over the whole loaded package set.
func AllRules() []Rule {
	return []Rule{
		newSlotBalance(),
		newCtxFlow(),
		newSeededRand(),
		newLockScope(),
		newGoroutineCtx(),
		newCloseBalance(),
		newBatchWindow(),
		newLockOrder(),
		newErrJoin(),
	}
}

// RuleNames returns the names of rules, in order.
func RuleNames(rules []Rule) []string {
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.Name()
	}
	return out
}

// Run checks every package with every rule, applies //lint:ignore
// suppressions, folds in malformed-suppression diagnostics, and returns
// the surviving findings sorted by position then rule.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	return run(pkgs, rules, true)
}

// RunNoIgnore is Run with //lint:ignore suppression disabled: every raw
// diagnostic survives. The check gate uses it to hold designated
// packages (internal/obs must stay ctxflow-clean) to an exemption-free
// standard.
func RunNoIgnore(pkgs []*Package, rules []Rule) []Diagnostic {
	return run(pkgs, rules, false)
}

func run(pkgs []*Package, rules []Rule, applyIgnores bool) []Diagnostic {
	var out []Diagnostic
	// Suppressions are collected per package but applied from one merged
	// table: interprocedural rules emit diagnostics for any package, and
	// filenames are unique across the load, so merging is sound.
	merged := &suppressions{byRule: make(map[string][]span)}
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		out = append(out, sup.malformed...)
		for rule, spans := range sup.byRule {
			merged.byRule[rule] = append(merged.byRule[rule], spans...)
		}
	}
	var prog *Program
	for _, r := range rules {
		var raw []Diagnostic
		if pr, ok := r.(ProgramRule); ok {
			if prog == nil {
				prog = BuildProgram(pkgs)
			}
			raw = pr.CheckProgram(prog)
		} else {
			for _, pkg := range pkgs {
				raw = append(raw, r.Check(pkg)...)
			}
		}
		for _, d := range raw {
			if !applyIgnores || !merged.covers(r.Name(), d.Pos) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return out
}
