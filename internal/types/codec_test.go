package types

import (
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	cases := []Tuple{
		{},
		{Int(0)},
		{Int(-1), Int(1 << 40)},
		{Float(3.14159), Float(-0.0)},
		{Str(""), Str("hello world"), Str("with'quote")},
		{Null(), Int(7), Null()},
		{Str("unicode: héllo wörld ☃")},
	}
	for _, orig := range cases {
		raw, err := EncodeTuple(orig)
		if err != nil {
			t.Fatalf("encode %v: %v", orig, err)
		}
		got, err := DecodeTuple(raw)
		if err != nil {
			t.Fatalf("decode %v: %v", orig, err)
		}
		if len(got) != len(orig) {
			t.Fatalf("round trip arity: got %d, want %d", len(got), len(orig))
		}
		for i := range orig {
			if !got[i].Equal(orig[i]) || got[i].Kind != orig[i].Kind {
				t.Errorf("round trip %v: got %v at %d", orig, got[i], i)
			}
		}
	}
}

func TestCodecRejectsPlaceholders(t *testing.T) {
	if _, err := EncodeTuple(Tuple{Placeholder(1, 0)}); err == nil {
		t.Fatal("placeholders must not be persistable")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	valid, _ := EncodeTuple(Tuple{Int(5), Str("abcdef"), Float(1.5)})
	// Every strict prefix must fail cleanly, not panic.
	for i := 0; i < len(valid); i++ {
		if _, err := DecodeTuple(valid[:i]); err == nil && i > 0 {
			// Some prefixes may decode as fewer values only if arity were
			// smaller — the arity is fixed up front, so all must fail.
			t.Errorf("truncated decode at %d bytes should fail", i)
		}
	}
	if _, err := DecodeTuple([]byte{1, 99}); err == nil {
		t.Error("unknown kind byte should fail")
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(ints []int64, strs []string, floats []float64) bool {
		var tup Tuple
		for _, v := range ints {
			tup = append(tup, Int(v))
		}
		for _, s := range strs {
			tup = append(tup, Str(s))
		}
		for _, fv := range floats {
			tup = append(tup, Float(fv))
		}
		raw, err := EncodeTuple(tup)
		if err != nil {
			return false
		}
		got, err := DecodeTuple(raw)
		if err != nil || len(got) != len(tup) {
			return false
		}
		for i := range tup {
			if got[i].Kind != tup[i].Kind {
				return false
			}
			switch tup[i].Kind {
			case KindInt:
				if got[i].I != tup[i].I {
					return false
				}
			case KindString:
				if got[i].S != tup[i].S {
					return false
				}
			case KindFloat:
				// NaN round-trips bit-exactly but NaN != NaN; compare bits
				// via string formatting of the struct field.
				if got[i].F != tup[i].F && !(tup[i].F != tup[i].F && got[i].F != got[i].F) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
