package types

import (
	"testing"
	"testing/quick"
)

func TestTupleClone(t *testing.T) {
	orig := Tuple{Int(1), Str("a"), Placeholder(2, 0)}
	c := orig.Clone()
	if !c.Equal(orig) {
		t.Fatal("clone should equal original")
	}
	c[0] = Int(99)
	if orig[0].I != 1 {
		t.Error("mutating clone affected original")
	}
	if Tuple(nil).Clone() != nil {
		t.Error("nil clone should be nil")
	}
}

func TestTupleConcat(t *testing.T) {
	a := Tuple{Int(1)}
	b := Tuple{Str("x"), Int(2)}
	c := a.Concat(b)
	if len(c) != 3 || c[0].I != 1 || c[1].S != "x" || c[2].I != 2 {
		t.Errorf("concat wrong: %v", c)
	}
	// Concat must not alias its inputs.
	c[0] = Int(9)
	if a[0].I != 1 {
		t.Error("concat aliases input")
	}
}

func TestHasPlaceholderAndPendingCalls(t *testing.T) {
	plain := Tuple{Int(1), Str("a"), Null()}
	if plain.HasPlaceholder() {
		t.Error("plain tuple has no placeholders")
	}
	if got := plain.PendingCalls(); len(got) != 0 {
		t.Errorf("plain tuple pending calls: %v", got)
	}
	mixed := Tuple{Int(1), Placeholder(5, 0), Placeholder(5, 1), Placeholder(3, 0)}
	if !mixed.HasPlaceholder() {
		t.Error("mixed tuple has placeholders")
	}
	ids := mixed.PendingCalls()
	if len(ids) != 2 || ids[0] != 5 || ids[1] != 3 {
		t.Errorf("pending calls = %v, want [5 3] (dedup, first-appearance order)", ids)
	}
}

func TestTupleEqual(t *testing.T) {
	a := Tuple{Int(1), Str("x")}
	b := Tuple{Int(1), Str("x")}
	c := Tuple{Int(1)}
	d := Tuple{Int(1), Str("y")}
	if !a.Equal(b) {
		t.Error("equal tuples")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("unequal tuples compared equal")
	}
}

func TestTupleKeyDistinguishes(t *testing.T) {
	// Key must distinguish values that stringify identically but differ in
	// kind, and must not merge adjacent cells.
	pairs := [][2]Tuple{
		{{Int(1)}, {Str("1")}},
		{{Str("a"), Str("b")}, {Str("ab"), Str("")}},
		{{Null()}, {Str("")}},
	}
	for _, p := range pairs {
		if p[0].Key() == p[1].Key() {
			t.Errorf("tuples %v and %v share key %q", p[0], p[1], p[0].Key())
		}
	}
	if (Tuple{Int(1), Str("x")}).Key() != (Tuple{Int(1), Str("x")}).Key() {
		t.Error("equal tuples must share keys")
	}
}

func TestTupleString(t *testing.T) {
	got := Tuple{Int(1), Str("ab"), Null()}.String()
	if got != "<1, ab, NULL>" {
		t.Errorf("tuple rendering: %q", got)
	}
}

func TestTupleKeyPropertyEqualImpliesSameKey(t *testing.T) {
	f := func(xs []int64, ss []string) bool {
		var a, b Tuple
		for _, x := range xs {
			a = append(a, Int(x))
			b = append(b, Int(x))
		}
		for _, s := range ss {
			a = append(a, Str(s))
			b = append(b, Str(s))
		}
		return a.Key() == b.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
