package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EncodeTuple serializes a tuple into a compact byte form for the slotted
// page storage layer. Placeholders are deliberately not encodable: they are
// transient execution-time artifacts of asynchronous iteration and must
// never be persisted.
func EncodeTuple(t Tuple) ([]byte, error) {
	buf := make([]byte, 0, 16*len(t)+2)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(t)))
	buf = append(buf, tmp[:n]...)
	for _, v := range t {
		switch v.Kind {
		case KindNull:
			buf = append(buf, byte(KindNull))
		case KindInt:
			buf = append(buf, byte(KindInt))
			n := binary.PutVarint(tmp[:], v.I)
			buf = append(buf, tmp[:n]...)
		case KindFloat:
			buf = append(buf, byte(KindFloat))
			var fb [8]byte
			binary.LittleEndian.PutUint64(fb[:], math.Float64bits(v.F))
			buf = append(buf, fb[:]...)
		case KindString:
			buf = append(buf, byte(KindString))
			n := binary.PutUvarint(tmp[:], uint64(len(v.S)))
			buf = append(buf, tmp[:n]...)
			buf = append(buf, v.S...)
		case KindPlaceholder:
			return nil, fmt.Errorf("cannot persist placeholder value (call %d)", v.Call)
		default:
			return nil, fmt.Errorf("cannot encode value of kind %s", v.Kind)
		}
	}
	return buf, nil
}

// DecodeTuple deserializes a tuple previously produced by EncodeTuple.
func DecodeTuple(b []byte) (Tuple, error) {
	n, off := binary.Uvarint(b)
	if off <= 0 {
		return nil, fmt.Errorf("corrupt tuple: bad arity varint")
	}
	t := make(Tuple, 0, n)
	pos := off
	for i := uint64(0); i < n; i++ {
		if pos >= len(b) {
			return nil, fmt.Errorf("corrupt tuple: truncated at value %d", i)
		}
		kind := Kind(b[pos])
		pos++
		switch kind {
		case KindNull:
			t = append(t, Null())
		case KindInt:
			v, w := binary.Varint(b[pos:])
			if w <= 0 {
				return nil, fmt.Errorf("corrupt tuple: bad int varint at value %d", i)
			}
			pos += w
			t = append(t, Int(v))
		case KindFloat:
			if pos+8 > len(b) {
				return nil, fmt.Errorf("corrupt tuple: truncated float at value %d", i)
			}
			f := math.Float64frombits(binary.LittleEndian.Uint64(b[pos : pos+8]))
			pos += 8
			t = append(t, Float(f))
		case KindString:
			l, w := binary.Uvarint(b[pos:])
			if w <= 0 {
				return nil, fmt.Errorf("corrupt tuple: bad string length at value %d", i)
			}
			pos += w
			if pos+int(l) > len(b) {
				return nil, fmt.Errorf("corrupt tuple: truncated string at value %d", i)
			}
			t = append(t, Str(string(b[pos:pos+int(l)])))
			pos += int(l)
		default:
			return nil, fmt.Errorf("corrupt tuple: unknown kind %d at value %d", kind, i)
		}
	}
	return t, nil
}
