package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Int(42), KindInt},
		{Float(3.5), KindFloat},
		{Str("hi"), KindString},
		{Placeholder(7, 2), KindPlaceholder},
		{Bool(true), KindInt},
		{Bool(false), KindInt},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("%v: kind %v, want %v", c.v, c.v.Kind, c.kind)
		}
	}
	if !Bool(true).Truthy() || Bool(false).Truthy() {
		t.Error("Bool truthiness wrong")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "null", KindInt: "int", KindFloat: "float",
		KindString: "string", KindPlaceholder: "placeholder",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestTruthy(t *testing.T) {
	truthy := []Value{Int(1), Int(-1), Float(0.5), Str("x")}
	falsy := []Value{Null(), Int(0), Float(0), Str(""), Placeholder(1, 0)}
	for _, v := range truthy {
		if !v.Truthy() {
			t.Errorf("%v should be truthy", v)
		}
	}
	for _, v := range falsy {
		if v.Truthy() {
			t.Errorf("%v should not be truthy", v)
		}
	}
}

func TestAsIntCoercions(t *testing.T) {
	for _, c := range []struct {
		v    Value
		want int64
	}{
		{Int(7), 7}, {Float(3.9), 3}, {Str("12"), 12}, {Null(), 0},
	} {
		got, err := c.v.AsInt()
		if err != nil {
			t.Fatalf("AsInt(%v): %v", c.v, err)
		}
		if got != c.want {
			t.Errorf("AsInt(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if _, err := Str("abc").AsInt(); err == nil {
		t.Error("AsInt of non-numeric string should error")
	}
	if _, err := Placeholder(1, 0).AsInt(); err == nil {
		t.Error("AsInt of placeholder should error")
	}
}

func TestAsFloatCoercions(t *testing.T) {
	for _, c := range []struct {
		v    Value
		want float64
	}{
		{Int(7), 7}, {Float(3.5), 3.5}, {Str("2.25"), 2.25}, {Null(), 0},
	} {
		got, err := c.v.AsFloat()
		if err != nil {
			t.Fatalf("AsFloat(%v): %v", c.v, err)
		}
		if got != c.want {
			t.Errorf("AsFloat(%v) = %g, want %g", c.v, got, c.want)
		}
	}
	if _, err := Str("xyz").AsFloat(); err == nil {
		t.Error("AsFloat of non-numeric string should error")
	}
}

func TestAsString(t *testing.T) {
	for _, c := range []struct {
		v    Value
		want string
	}{
		{Int(7), "7"}, {Float(2.5), "2.5"}, {Str("abc"), "abc"}, {Null(), ""},
	} {
		if got := c.v.AsString(); got != c.want {
			t.Errorf("AsString(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	if Null().String() != "NULL" {
		t.Error("NULL rendering")
	}
	if got := Placeholder(3, 1).String(); got != "<pending 3#1>" {
		t.Errorf("placeholder rendering: %q", got)
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(2), Float(2), true}, // cross-kind numeric equality
		{Float(2.5), Float(2.5), true},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Null(), Null(), true},
		{Null(), Int(0), false},
		{Placeholder(1, 0), Placeholder(1, 0), true},
		{Placeholder(1, 0), Placeholder(1, 1), false},
		{Placeholder(1, 0), Placeholder(2, 0), false},
		{Str("1"), Int(1), false}, // no string/number coercion in equality
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("Equal(%v, %v) not symmetric", c.b, c.a)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	// NULL < numbers, cross-kind numeric comparisons, strings lexicographic,
	// placeholders last.
	ordered := []Value{Null(), Int(-5), Float(-1.5), Int(0), Float(2.5), Int(3)}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
	if Str("apple").Compare(Str("banana")) >= 0 {
		t.Error("string comparison")
	}
	if Placeholder(1, 0).Compare(Int(5)) != 1 {
		t.Error("placeholders sort after values")
	}
	if Int(5).Compare(Placeholder(1, 0)) != -1 {
		t.Error("values sort before placeholders")
	}
	if Placeholder(1, 0).Compare(Placeholder(2, 0)) != -1 {
		t.Error("placeholder ordering by call id")
	}
}

func TestComparePropertyAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComparePropertyTransitive(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		va, vb, vc := Float(a), Float(b), Float(c)
		if va.Compare(vb) <= 0 && vb.Compare(vc) <= 0 {
			return va.Compare(vc) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
