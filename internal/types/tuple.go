package types

import "strings"

// Tuple is a row of values. Tuples flow between iterator operators; during
// asynchronous iteration some of their values may be placeholders.
type Tuple []Value

// Clone returns a deep copy of the tuple. Values are immutable scalars, so
// copying the slice suffices.
func (t Tuple) Clone() Tuple {
	if t == nil {
		return nil
	}
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Concat returns a new tuple consisting of t followed by o.
func (t Tuple) Concat(o Tuple) Tuple {
	c := make(Tuple, 0, len(t)+len(o))
	c = append(c, t...)
	c = append(c, o...)
	return c
}

// HasPlaceholder reports whether any value in the tuple is a placeholder
// for a pending external call.
func (t Tuple) HasPlaceholder() bool {
	for _, v := range t {
		if v.IsPlaceholder() {
			return true
		}
	}
	return false
}

// PendingCalls returns the distinct CallIDs referenced by placeholder
// values in the tuple, in first-appearance order.
func (t Tuple) PendingCalls() []CallID {
	var ids []CallID
	for _, v := range t {
		if !v.IsPlaceholder() {
			continue
		}
		seen := false
		for _, id := range ids {
			if id == v.Call {
				seen = true
				break
			}
		}
		if !seen {
			ids = append(ids, v.Call)
		}
	}
	return ids
}

// Equal reports whether two tuples are value-wise equal.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for the tuple, used by DISTINCT and
// GROUP BY hashing. Placeholders never reach these operators in a correct
// plan (they clash during percolation), but they still key deterministically.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteByte(byte('0' + v.Kind))
		b.WriteByte(':')
		b.WriteString(v.AsString())
	}
	return b.String()
}

// String renders the tuple for diagnostics: "<v1, v2, ...>".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte('>')
	return b.String()
}
