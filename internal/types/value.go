// Package types defines the value and tuple representations shared by every
// layer of the WSQ/DSQ engine: the storage manager, the expression
// evaluator, the iterator-based executor, and the asynchronous-iteration
// machinery.
//
// The one WSQ-specific extension over a textbook value system is the
// placeholder kind (KindPlaceholder). During asynchronous iteration an
// AEVScan returns tuples immediately, before the corresponding web-search
// call has completed; the attribute values that the call will eventually
// supply are marked with a placeholder identifying the pending call and the
// field of the call's result rows that will replace the placeholder. Only
// the ReqSync operator ever interprets placeholders — every other operator
// treats them as opaque values, which is precisely what lets asynchronous
// iteration slot into an unmodified iterator engine.
package types

import (
	"fmt"
	"strconv"
)

// Kind enumerates the runtime kinds a Value can take.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindPlaceholder
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindPlaceholder:
		return "placeholder"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// CallID identifies a pending external call registered with the request
// pump. CallIDs are allocated by the pump and are unique within a process.
type CallID uint64

// Value is a dynamically typed scalar. The zero Value is NULL.
//
// A Value of KindPlaceholder stands for "the Field-th column of the result
// rows of pending call Call". See the package comment.
type Value struct {
	Kind  Kind
	I     int64
	F     float64
	S     string
	Call  CallID // valid when Kind == KindPlaceholder
	Field int    // valid when Kind == KindPlaceholder
}

// Null returns the NULL value.
func Null() Value { return Value{Kind: KindNull} }

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// String_ returns a string value. (Named with a trailing underscore because
// String is taken by the Stringer method.)
func String_(s string) Value { return Value{Kind: KindString, S: s} }

// Str is a shorter alias for String_.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Placeholder returns a placeholder value for field f of pending call c.
func Placeholder(c CallID, f int) Value {
	return Value{Kind: KindPlaceholder, Call: c, Field: f}
}

// Bool encodes a boolean as an integer value (1 or 0), matching the engine's
// SQL subset which has no separate boolean column type.
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// IsPlaceholder reports whether v is a placeholder for a pending call.
func (v Value) IsPlaceholder() bool { return v.Kind == KindPlaceholder }

// Truthy reports whether v is considered true in a WHERE context.
// NULL and placeholders are not truthy.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	case KindString:
		return v.S != ""
	default:
		return false
	}
}

// AsInt coerces v to an int64. Strings parse if numeric; NULL is 0.
func (v Value) AsInt() (int64, error) {
	switch v.Kind {
	case KindInt:
		return v.I, nil
	case KindFloat:
		return int64(v.F), nil
	case KindString:
		n, err := strconv.ParseInt(v.S, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("cannot coerce string %q to int", v.S)
		}
		return n, nil
	case KindNull:
		return 0, nil
	default:
		return 0, fmt.Errorf("cannot coerce %s to int", v.Kind)
	}
}

// AsFloat coerces v to a float64.
func (v Value) AsFloat() (float64, error) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), nil
	case KindFloat:
		return v.F, nil
	case KindString:
		f, err := strconv.ParseFloat(v.S, 64)
		if err != nil {
			return 0, fmt.Errorf("cannot coerce string %q to float", v.S)
		}
		return f, nil
	case KindNull:
		return 0, nil
	default:
		return 0, fmt.Errorf("cannot coerce %s to float", v.Kind)
	}
}

// AsString coerces v to a string.
func (v Value) AsString() string {
	switch v.Kind {
	case KindString:
		return v.S
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindNull:
		return ""
	case KindPlaceholder:
		return fmt.Sprintf("?call:%d.%d", v.Call, v.Field)
	default:
		return ""
	}
}

// String implements fmt.Stringer for diagnostics and result printing.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindPlaceholder:
		return fmt.Sprintf("<pending %d#%d>", v.Call, v.Field)
	default:
		return v.AsString()
	}
}

// Equal reports strict equality of two values (same kind and payload),
// used by tests and by duplicate elimination.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		// Allow int/float cross-kind numeric equality.
		if isNumeric(v.Kind) && isNumeric(o.Kind) {
			a, _ := v.AsFloat()
			b, _ := o.AsFloat()
			return a == b
		}
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindInt:
		return v.I == o.I
	case KindFloat:
		return v.F == o.F
	case KindString:
		return v.S == o.S
	case KindPlaceholder:
		return v.Call == o.Call && v.Field == o.Field
	}
	return false
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

// Compare returns -1, 0, or +1 ordering v relative to o.
// NULL sorts before everything; placeholders sort after everything (they
// should never reach a comparison in a correct plan, but a stable order
// keeps sorting deterministic if they do). Numeric kinds compare
// numerically across int/float; otherwise mismatched kinds compare by kind.
func (v Value) Compare(o Value) int {
	if v.Kind == KindNull || o.Kind == KindNull {
		switch {
		case v.Kind == o.Kind:
			return 0
		case v.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.Kind == KindPlaceholder || o.Kind == KindPlaceholder {
		switch {
		case v.Kind == o.Kind:
			switch {
			case v.Call != o.Call:
				if v.Call < o.Call {
					return -1
				}
				return 1
			case v.Field != o.Field:
				if v.Field < o.Field {
					return -1
				}
				return 1
			default:
				return 0
			}
		case v.Kind == KindPlaceholder:
			return 1
		default:
			return -1
		}
	}
	if isNumeric(v.Kind) && isNumeric(o.Kind) {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.Kind == KindString && o.Kind == KindString {
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		default:
			return 0
		}
	}
	// Mismatched non-numeric kinds: order by kind tag for determinism.
	if v.Kind < o.Kind {
		return -1
	}
	if v.Kind > o.Kind {
		return 1
	}
	return 0
}
