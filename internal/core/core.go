// Package core is the public face of the WSQ/DSQ reproduction: a small
// relational database (the Redbase substrate) extended with the paper's
// two WSQ virtual tables and asynchronous iteration.
//
// A DB owns a catalog of stored tables, a registry of search engines, the
// global request pump, and an optional result cache. SQL statements are
// parsed, planned (FROM-order joins, dependent joins over virtual table
// scans), optionally rewritten for asynchronous iteration, and executed by
// the iterator engine.
//
// Typical use:
//
//	db, _ := core.Open(core.Config{Dir: dir, Async: true})
//	corpus := websim.Default()
//	db.RegisterEngine(search.NewDelayed(websim.NewAltaVista(corpus), search.BenchLatency(), 1), "AV")
//	db.Exec(`CREATE TABLE States (Name VARCHAR, Population INT, Capital VARCHAR)`)
//	res, _ := db.Exec(`SELECT Name, Count FROM States, WebCount
//	                   WHERE Name = T1 ORDER BY Count DESC`)
package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/async"
	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/sqlparse"
	"repro/internal/types"
	"repro/internal/vtab"
)

// Config controls a DB instance.
type Config struct {
	// Dir is the database directory (catalog + heap files).
	Dir string
	// Async enables asynchronous iteration for SELECT execution. It can be
	// toggled per-DB at runtime with SetAsync (the experiments compare both
	// modes over the same data).
	Async bool
	// MaxConcurrentCalls bounds total in-flight external calls
	// (0 = async.DefaultMaxTotal).
	MaxConcurrentCalls int
	// MaxCallsPerDest bounds in-flight calls per search engine
	// (0 = async.DefaultMaxPerDest).
	MaxCallsPerDest int
	// CacheSize is the LRU capacity for external call results; 0 disables
	// caching.
	CacheSize int
	// DefaultRankLimit guards WebPages scans without a Rank predicate
	// (0 = the paper's default of 20).
	DefaultRankLimit int
	// PoolFrames is the buffer-pool size per heap file (0 = default).
	PoolFrames int
	// StreamingReqSync makes ReqSync release completed tuples before its
	// child is exhausted (ablation of the paper's full-buffering choice).
	StreamingReqSync bool
	// Retry is the request pump's fault-tolerance policy (retries with
	// backoff, per-attempt deadlines, hedging). The zero value executes
	// every call exactly once.
	Retry async.RetryPolicy
	// Degrade is the default failed-call degradation policy for queries
	// that do not choose one (fail / drop / partial).
	Degrade exec.DegradePolicy
	// Registry receives the DB's metrics (pump slot-wait and per-dest
	// latency histograms, engine request histograms, ...). When nil the
	// DB creates a private one, so metrics are always recorded; a server
	// passes its own registry to expose them on /metrics.
	Registry *obs.Registry
}

// DB is an open WSQ database. It is safe for concurrent use: any number of
// SELECTs may execute at once (sharing the catalog, buffer pools, result
// cache, and the one global request pump), while DDL and INSERT statements
// take the database exclusively.
type DB struct {
	cfg     Config
	cat     *catalog.Catalog
	engines *search.Registry
	vtabs   *vtab.Registry
	cache   *cache.Cache
	pump    *async.Pump
	planner *plan.Planner
	reg     *obs.Registry

	// async toggles asynchronous iteration; atomic so SetAsync can race
	// with concurrent query planning without a lock.
	async atomic.Bool
	// mu serializes writers (CREATE/DROP/INSERT mutate catalog state and
	// heap pages) against concurrently running readers (SELECT/UNION).
	mu sync.RWMutex
}

// Result is a fully materialized query result.
type Result struct {
	Columns []string
	Rows    []types.Tuple
	Stats   exec.Stats
	// Trace is the query's per-operator span tree when tracing was
	// requested (QueryOptions.Trace or EXPLAIN ANALYZE); nil otherwise.
	Trace *obs.Span
}

// Open opens (creating if necessary) a database.
func Open(cfg Config) (*DB, error) {
	cat, err := catalog.Open(cfg.Dir, cfg.PoolFrames)
	if err != nil {
		return nil, err
	}
	engines := search.NewRegistry()
	vt := vtab.NewRegistry(engines)
	// A nil *cache.Cache must stay a nil interface: wrapping it would make
	// the pump believe caching (and thus duplicate-call coalescing) is on.
	var c *cache.Cache
	var rc exec.ResultCache
	if cfg.CacheSize > 0 {
		c = cache.New(cfg.CacheSize)
		rc = c
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	db := &DB{
		cfg:     cfg,
		cat:     cat,
		engines: engines,
		vtabs:   vt,
		cache:   c,
		pump:    async.NewPump(cfg.MaxConcurrentCalls, cfg.MaxCallsPerDest, rc),
		reg:     reg,
	}
	db.pump.SetRetryPolicy(cfg.Retry)
	db.pump.Observe(reg)
	c.Observe(reg) // nil-safe: a disabled cache registers nothing
	db.async.Store(cfg.Async)
	db.planner = plan.New(cat, vt)
	db.planner.Cache = rc
	if cfg.DefaultRankLimit > 0 {
		db.planner.DefaultRankLimit = cfg.DefaultRankLimit
	}
	return db, nil
}

// Close flushes and closes the database.
func (db *DB) Close() error {
	db.pump.Close()
	return db.cat.Close()
}

// RegisterEngine makes a search engine available to the virtual tables
// under its name plus the given aliases (e.g. "AV" for "altavista").
// Engines that are observable (the Delayed/Flaky simulation wrappers)
// are attached to the DB's metrics registry.
func (db *DB) RegisterEngine(e search.Engine, aliases ...string) {
	db.engines.Register(e, aliases...)
	if o, ok := e.(obs.Observable); ok {
		o.Observe(db.reg)
	}
}

// Metrics exposes the DB's metrics registry (pump, engines, and anything
// else the embedding process registers on it).
func (db *DB) Metrics() *obs.Registry { return db.reg }

// Engines exposes the engine registry.
func (db *DB) Engines() *search.Registry { return db.engines }

// Catalog exposes the stored-table catalog.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Pump exposes the global request pump (for stats in experiments).
func (db *DB) Pump() *async.Pump { return db.pump }

// Cache exposes the result cache (nil when disabled).
func (db *DB) Cache() *cache.Cache { return db.cache }

// SetAsync toggles asynchronous iteration for subsequent SELECTs.
func (db *DB) SetAsync(on bool) { db.async.Store(on) }

// Async reports whether asynchronous iteration is enabled.
func (db *DB) Async() bool { return db.async.Load() }

// QueryOptions carries per-statement execution choices.
type QueryOptions struct {
	// Degrade overrides the DB's default failed-call degradation policy
	// when non-nil.
	Degrade *exec.DegradePolicy
	// Trace instruments the plan so Result.Trace carries the query's
	// per-operator span tree (timings, cardinalities, patch/expansion
	// counts). Costs two time.Now calls per operator invocation.
	Trace bool
	// BatchSize overrides the executor's vectorized batch size for this
	// statement (0 = exec.DefaultBatchSize). The golden e2e suite and the
	// plan-equivalence fuzzer sweep it to pin batch-boundary semantics.
	BatchSize int
}

// ExecContext parses and executes one SQL statement under ctx: deadline
// expiry or cancellation aborts execution, dropping any external calls the
// statement still has queued in the request pump.
func (db *DB) ExecContext(ctx context.Context, sql string) (*Result, error) {
	return db.ExecContextOpts(ctx, sql, QueryOptions{})
}

// ExecContextOpts is ExecContext with per-statement options. A nil ctx
// means no deadline.
func (db *DB) ExecContextOpts(ctx context.Context, sql string, opts QueryOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rest, ok := stripExplainAnalyze(sql); ok {
		return db.explainAnalyze(ctx, rest, opts)
	}
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *sqlparse.CreateTable:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execCreate(s)
	case *sqlparse.DropTable:
		db.mu.Lock()
		defer db.mu.Unlock()
		if err := db.cat.Drop(s.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparse.Insert:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execInsert(s)
	case *sqlparse.Select:
		return db.runQueryable(ctx, s, opts)
	case *sqlparse.Union:
		return db.runQueryable(ctx, s, opts)
	default:
		return nil, fmt.Errorf("unsupported statement %T", st)
	}
}

// QueryContext executes a SELECT (or UNION of SELECTs) under ctx.
func (db *DB) QueryContext(ctx context.Context, sql string) (*Result, error) {
	return db.QueryContextOpts(ctx, sql, QueryOptions{})
}

// QueryContextOpts is QueryContext with per-statement options (e.g. the
// degradation policy wsqd threads through from the client request). A
// nil ctx means no deadline.
func (db *DB) QueryContextOpts(ctx context.Context, sql string, opts QueryOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rest, ok := stripExplainAnalyze(sql); ok {
		return db.explainAnalyze(ctx, rest, opts)
	}
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch st.(type) {
	case *sqlparse.Select, *sqlparse.Union:
		return db.runQueryable(ctx, st, opts)
	default:
		return nil, fmt.Errorf("expected a query, got %T", st)
	}
}

func (db *DB) execCreate(s *sqlparse.CreateTable) (*Result, error) {
	if db.vtabs.IsVirtual(s.Name) {
		return nil, fmt.Errorf("%s is a reserved virtual table name", s.Name)
	}
	cols := make([]catalog.ColumnDef, len(s.Columns))
	for i, c := range s.Columns {
		ty, err := schema.ParseType(c.Type)
		if err != nil {
			return nil, err
		}
		cols[i] = catalog.ColumnDef{Name: c.Name, Type: ty}
	}
	if _, err := db.cat.Create(s.Name, cols); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (db *DB) execInsert(s *sqlparse.Insert) (*Result, error) {
	t, ok := db.cat.Get(s.Table)
	if !ok {
		return nil, fmt.Errorf("unknown table %s", s.Table)
	}
	for _, row := range s.Rows {
		if _, err := t.Insert(types.Tuple(row)); err != nil {
			return nil, err
		}
	}
	return &Result{Stats: exec.Stats{TuplesOut: int64(len(s.Rows))}}, nil
}

// Plan lowers a SELECT to an operator tree, applying the asynchronous
// iteration rewrite when enabled.
func (db *DB) Plan(sel *sqlparse.Select) (exec.Operator, error) {
	return db.planStatement(sel)
}

// planStatement lowers a SELECT or UNION, applying the asynchronous
// iteration rewrite when enabled.
func (db *DB) planStatement(st sqlparse.Statement) (exec.Operator, error) {
	var op exec.Operator
	var err error
	switch s := st.(type) {
	case *sqlparse.Select:
		op, err = db.planner.PlanSelect(s)
	case *sqlparse.Union:
		op, err = db.planner.PlanUnion(s)
	default:
		return nil, fmt.Errorf("not a query: %T", st)
	}
	if err != nil {
		return nil, err
	}
	if db.async.Load() {
		op = async.Rewrite(op, db.pump)
		if db.cfg.StreamingReqSync {
			setStreaming(op)
		}
	}
	return op, nil
}

func setStreaming(op exec.Operator) {
	if rs, ok := op.(*async.ReqSync); ok {
		rs.Streaming = true
	}
	for _, c := range op.Children() {
		setStreaming(c)
	}
}

func (db *DB) runQueryable(goCtx context.Context, st sqlparse.Statement, opts QueryOptions) (*Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	op, err := db.planStatement(st)
	if err != nil {
		return nil, err
	}
	var span *obs.Span
	if opts.Trace {
		op, span = exec.Instrument(op)
	}
	ctx := exec.NewContextWith(goCtx)
	ctx.Degrade = db.cfg.Degrade
	if opts.Degrade != nil {
		ctx.Degrade = *opts.Degrade
	}
	ctx.BatchSize = opts.BatchSize
	ctx.RetryCall = db.pump.CallWithRetry
	ctx.Trace = span
	rows, err := exec.Run(ctx, op)
	if err != nil {
		return nil, err
	}
	cols := make([]string, op.Schema().Len())
	for i, c := range op.Schema().Cols {
		cols[i] = c.Name
	}
	return &Result{Columns: cols, Rows: rows, Stats: ctx.Stats, Trace: span}, nil
}

// Explain returns the textual plan for a SELECT, in both modes when async
// is enabled.
func (db *DB) Explain(sql string) (string, error) {
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		return "", err
	}
	op, err := db.planner.PlanSelect(sel)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("-- input plan --\n")
	b.WriteString(exec.Explain(op))
	if db.async.Load() {
		op = async.Rewrite(op, db.pump)
		b.WriteString("-- asynchronous iteration plan --\n")
		b.WriteString(exec.Explain(op))
	}
	return b.String(), nil
}

// ExplainCost returns the plan for a SELECT annotated with the cost
// estimator's predictions (expected rows, external calls, and sequential
// vs asynchronous latency under the given model).
func (db *DB) ExplainCost(sql string, model plan.CostModel) (string, error) {
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		return "", err
	}
	op, err := db.planner.PlanSelect(sel)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(exec.Explain(op))
	est := plan.EstimatePlan(op, model)
	fmt.Fprintf(&b, "estimate: %s\n", est)
	return b.String(), nil
}

// Estimate runs the cost estimator over a SELECT's plan.
func (db *DB) Estimate(sql string, model plan.CostModel) (plan.Estimate, error) {
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		return plan.Estimate{}, err
	}
	op, err := db.planner.PlanSelect(sel)
	if err != nil {
		return plan.Estimate{}, err
	}
	return plan.EstimatePlan(op, model), nil
}

// Format renders a result as an aligned text table.
func (r *Result) Format() string {
	if len(r.Columns) == 0 {
		return fmt.Sprintf("ok (%d rows affected)\n", r.Stats.TuplesOut)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			if v.Kind == types.KindFloat {
				s = fmt.Sprintf("%.4g", v.F)
			}
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for ci, s := range row {
			if ci > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[ci], s)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(r.Rows))
	return b.String()
}
