package core

import (
	"context"
	"sort"
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/search"
	"repro/internal/sqlparse"
	"repro/internal/types"
	"repro/internal/websim"
)

// newPaperDB opens a DB with zero-latency engines and all paper tables.
func newPaperDB(t testing.TB, cfg Config) *DB {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	corpus := websim.Default()
	db.RegisterEngine(search.NewDelayed(websim.NewAltaVista(corpus), search.ZeroLatency(), 1), "AV")
	db.RegisterEngine(search.NewDelayed(websim.NewGoogle(corpus), search.ZeroLatency(), 2), "G")
	loadTables(t, db)
	return db
}

func loadTables(t testing.TB, db *DB) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE States (Name VARCHAR, Population INT, Capital VARCHAR)`)
	states, _ := db.Catalog().Get("States")
	for _, s := range datasets.States {
		if _, err := states.Insert(types.Tuple{types.Str(s.Name), types.Int(s.Population), types.Str(s.Capital)}); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(t, db, `CREATE TABLE Sigs (Name VARCHAR)`)
	sigs, _ := db.Catalog().Get("Sigs")
	for _, s := range datasets.Sigs {
		sigs.Insert(types.Tuple{types.Str(s)})
	}
	mustExec(t, db, `CREATE TABLE CSFields (Name VARCHAR)`)
	fields, _ := db.Catalog().Get("CSFields")
	for _, f := range datasets.CSFields {
		fields.Insert(types.Tuple{types.Str(f)})
	}
}

func mustExec(t testing.TB, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.ExecContext(context.Background(), sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

func mustQuery(t testing.TB, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.QueryContext(context.Background(), sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

// ---------------------------------------------------------------------------
// DDL / DML

func TestCreateInsertSelect(t *testing.T) {
	db, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE T (A INT, B VARCHAR)`)
	mustExec(t, db, `INSERT INTO T VALUES (1, 'one'), (2, 'two')`)
	res := mustQuery(t, db, `SELECT B FROM T WHERE A = 2`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "two" {
		t.Errorf("rows: %v", res.Rows)
	}
	mustExec(t, db, `DROP TABLE T`)
	if _, err := db.QueryContext(context.Background(), `SELECT * FROM T`); err == nil {
		t.Error("dropped table still queryable")
	}
}

func TestCreateReservedNameRejected(t *testing.T) {
	db := newPaperDB(t, Config{})
	if _, err := db.ExecContext(context.Background(), `CREATE TABLE WebCount (X INT)`); err == nil {
		t.Error("virtual table names are reserved")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE T (A INT)`)
	mustExec(t, db, `INSERT INTO T VALUES (42)`)
	db.Close()

	db2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res := mustQuery(t, db2, `SELECT A FROM T`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 42 {
		t.Errorf("rows after reopen: %v", res.Rows)
	}
}

// ---------------------------------------------------------------------------
// Section 3.1 queries — shape assertions against the paper

func queryBothModes(t *testing.T, db *DB, sql string) (*Result, *Result) {
	t.Helper()
	db.SetAsync(false)
	syncRes := mustQuery(t, db, sql)
	db.SetAsync(true)
	asyncRes := mustQuery(t, db, sql)
	// Equivalence: identical multisets.
	if len(syncRes.Rows) != len(asyncRes.Rows) {
		t.Fatalf("%s: sync %d rows, async %d rows", sql, len(syncRes.Rows), len(asyncRes.Rows))
	}
	sk := make([]string, len(syncRes.Rows))
	ak := make([]string, len(asyncRes.Rows))
	for i := range syncRes.Rows {
		sk[i] = syncRes.Rows[i].Key()
		ak[i] = asyncRes.Rows[i].Key()
	}
	sort.Strings(sk)
	sort.Strings(ak)
	for i := range sk {
		if sk[i] != ak[i] {
			t.Fatalf("%s: sync/async multisets differ", sql)
		}
	}
	return syncRes, asyncRes
}

func TestSection31Query1(t *testing.T) {
	db := newPaperDB(t, Config{})
	res, _ := queryBothModes(t, db,
		`SELECT Name, Count FROM States, WebCount WHERE Name = T1 ORDER BY Count DESC`)
	want := []string{"California", "Washington", "New York", "Texas", "Michigan"}
	for i, w := range want {
		if got := res.Rows[i][0].AsString(); got != w {
			t.Errorf("Q1 rank %d: %s, want %s", i+1, got, w)
		}
	}
}

func TestSection31Query2(t *testing.T) {
	db := newPaperDB(t, Config{})
	res, _ := queryBothModes(t, db,
		`SELECT Name, Count / Population AS C FROM States, WebCount WHERE Name = T1 ORDER BY C DESC`)
	want := []string{"Alaska", "Washington", "Delaware", "Hawaii", "Wyoming"}
	for i, w := range want {
		if got := res.Rows[i][0].AsString(); got != w {
			t.Errorf("Q2 rank %d: %s, want %s", i+1, got, w)
		}
	}
}

func TestSection31Query3(t *testing.T) {
	db := newPaperDB(t, Config{})
	res, _ := queryBothModes(t, db,
		`SELECT Name, Count FROM States, WebCount WHERE Name = T1 AND T2 = 'four corners' ORDER BY Count DESC`)
	for i, w := range datasets.FourCornersStates {
		if got := res.Rows[i][0].AsString(); got != w {
			t.Fatalf("Q3 rank %d: %s, want %s", i+1, got, w)
		}
	}
	// Dramatic dropoff between 4th and 5th.
	fourth, _ := res.Rows[3][1].AsInt()
	fifth, _ := res.Rows[4][1].AsInt()
	if fourth < 3*fifth {
		t.Errorf("Q3 dropoff: 4th=%d 5th=%d", fourth, fifth)
	}
}

func TestSection31Query4(t *testing.T) {
	db := newPaperDB(t, Config{})
	res, _ := queryBothModes(t, db,
		`SELECT Capital, C.Count, Name, S.Count FROM States, WebCount C, WebCount S
		 WHERE Capital = C.T1 AND Name = S.T1 AND C.Count > S.Count`)
	got := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		got[i] = r[0].AsString()
	}
	sort.Strings(got)
	want := append([]string{}, datasets.CommonWordCapitals...)
	sort.Strings(want)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Q4 capitals = %v, want %v", got, want)
	}
}

func TestSection31Query5(t *testing.T) {
	db := newPaperDB(t, Config{})
	res, _ := queryBothModes(t, db,
		`SELECT Name, URL, Rank FROM States, WebPages WHERE Name = T1 AND Rank <= 2 ORDER BY Name, Rank`)
	if len(res.Rows) != 100 { // 50 states x 2 URLs
		t.Fatalf("Q5 rows: %d", len(res.Rows))
	}
	for i := 0; i < len(res.Rows); i += 2 {
		if res.Rows[i][0].AsString() != res.Rows[i+1][0].AsString() {
			t.Errorf("Q5 grouping broken at %d", i)
		}
		r1, _ := res.Rows[i][2].AsInt()
		r2, _ := res.Rows[i+1][2].AsInt()
		if r1 != 1 || r2 != 2 {
			t.Errorf("Q5 ranks at %d: %d,%d", i, r1, r2)
		}
	}
}

func TestSection31Query6(t *testing.T) {
	db := newPaperDB(t, Config{})
	res, _ := queryBothModes(t, db,
		`SELECT Name, AV.URL FROM States, WebPages_AV AV, WebPages_Google G
		 WHERE Name = AV.T1 AND Name = G.T1 AND AV.Rank <= 5 AND G.Rank <= 5 AND AV.URL = G.URL`)
	if len(res.Rows) != 4 {
		t.Fatalf("Q6: %d agreements, want 4 (paper: 'only agreed on the relevance of 4 URLs')", len(res.Rows))
	}
	got := make(map[string]bool)
	for _, r := range res.Rows {
		got[r[0].AsString()] = true
	}
	for _, s := range datasets.Query6States {
		if !got[s] {
			t.Errorf("Q6 missing %s", s)
		}
	}
}

func TestSection41KnuthQuery(t *testing.T) {
	db := newPaperDB(t, Config{})
	res, _ := queryBothModes(t, db,
		`SELECT Name, Count FROM Sigs, WebCount WHERE Name = T1 AND T2 = 'Knuth' ORDER BY Count DESC`)
	if len(res.Rows) != len(datasets.Sigs) {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for i, w := range datasets.KnuthSigs {
		if got := res.Rows[i][0].AsString(); got != w {
			t.Errorf("Knuth rank %d: %s, want %s", i+1, got, w)
		}
	}
	// "For all other Sigs, Count is 0."
	for _, r := range res.Rows[len(datasets.KnuthSigs):] {
		if n, _ := r[1].AsInt(); n != 0 {
			t.Errorf("non-Knuth sig %s has count %d", r[0].AsString(), n)
		}
	}
}

// ---------------------------------------------------------------------------
// Async plan shapes from SQL (EXPLAIN-level figure checks)

func TestExplainFigure3FromSQL(t *testing.T) {
	db := newPaperDB(t, Config{Async: true})
	out, err := db.Explain(`SELECT Name, Count FROM Sigs, WebCount
		WHERE Name = T1 AND T2 = 'Knuth' ORDER BY Count DESC`)
	if err != nil {
		t.Fatal(err)
	}
	// The async section must show Sort above ReqSync above the dependent
	// join over an AEVScan (Figure 3).
	asyncPart := out[strings.Index(out, "asynchronous"):]
	for _, want := range []string{"Sort", "ReqSync", "Dependent Join", "AEVScan"} {
		if !strings.Contains(asyncPart, want) {
			t.Errorf("async plan missing %s:\n%s", want, out)
		}
	}
	if strings.Index(asyncPart, "Sort") > strings.Index(asyncPart, "ReqSync") {
		t.Errorf("Sort must be above ReqSync:\n%s", asyncPart)
	}
	if strings.Contains(asyncPart, "EVScan:") && !strings.Contains(asyncPart, "AEVScan") {
		t.Errorf("EVScan not converted:\n%s", asyncPart)
	}
}

func TestExplainFigure6SingleConsolidatedReqSync(t *testing.T) {
	db := newPaperDB(t, Config{Async: true})
	out, err := db.Explain(`SELECT Name, AV.URL, G.URL FROM Sigs, WebPages_AV AV, WebPages_Google G
		WHERE Name = AV.T1 AND Name = G.T1 AND AV.Rank <= 3 AND G.Rank <= 3`)
	if err != nil {
		t.Fatal(err)
	}
	asyncPart := out[strings.Index(out, "asynchronous"):]
	if got := strings.Count(asyncPart, "ReqSync"); got != 1 {
		t.Errorf("want exactly 1 consolidated ReqSync, got %d:\n%s", got, asyncPart)
	}
	if got := strings.Count(asyncPart, "AEVScan"); got != 2 {
		t.Errorf("want 2 AEVScans, got %d", got)
	}
}

// ---------------------------------------------------------------------------
// Async execution details

func TestAsyncCallCounts(t *testing.T) {
	db := newPaperDB(t, Config{Async: true})
	res := mustQuery(t, db, `SELECT Name, Count FROM States, WebCount WHERE Name = T1`)
	if res.Stats.ExternalCalls != 50 {
		t.Errorf("external calls: %d, want 50", res.Stats.ExternalCalls)
	}
	st := db.Pump().Stats()
	if st.Registered != 50 || st.Started != 50 || st.Completed != 50 {
		t.Errorf("pump: %+v", st)
	}
	if st.MaxActive < 2 {
		t.Errorf("no overlap observed: %d", st.MaxActive)
	}
}

func TestCacheAvoidsDuplicateCalls(t *testing.T) {
	db := newPaperDB(t, Config{Async: true, CacheSize: 1024})
	q := `SELECT Name, Count FROM States, WebCount WHERE Name = T1`
	mustQuery(t, db, q)
	st1 := db.Pump().Stats()
	mustQuery(t, db, q)
	st2 := db.Pump().Stats()
	if st2.Registered-st1.Registered != 50 {
		t.Errorf("second run registrations: %d", st2.Registered-st1.Registered)
	}
	if st2.CacheHits-st1.CacheHits != 50 {
		t.Errorf("second run should be all cache hits: %d", st2.CacheHits-st1.CacheHits)
	}
}

func TestStreamingModeMatches(t *testing.T) {
	db := newPaperDB(t, Config{Async: true, StreamingReqSync: true})
	res := mustQuery(t, db, `SELECT Name, Count FROM States, WebCount WHERE Name = T1 ORDER BY Count DESC`)
	if len(res.Rows) != 50 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	if res.Rows[0][0].AsString() != "California" {
		t.Errorf("streaming top: %v", res.Rows[0])
	}
}

func TestConcurrencyLimitRespected(t *testing.T) {
	db, err := Open(Config{Dir: t.TempDir(), Async: true, MaxConcurrentCalls: 4, MaxCallsPerDest: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	corpus := websim.Default()
	av := search.NewDelayed(websim.NewAltaVista(corpus), search.LatencyModel{Base: 2e6}, 1)
	db.RegisterEngine(av, "AV")
	loadTables(t, db)
	mustQuery(t, db, `SELECT Name, Count FROM States, WebCount WHERE Name = T1`)
	_, maxInFlight := av.Stats()
	if maxInFlight > 4 {
		t.Errorf("engine saw %d concurrent requests, limit 4", maxInFlight)
	}
	if pumpMax := db.Pump().Stats().MaxActive; pumpMax > 4 {
		t.Errorf("pump max active %d, limit 4", pumpMax)
	}
}

// ---------------------------------------------------------------------------
// Result formatting

func TestResultFormat(t *testing.T) {
	db := newPaperDB(t, Config{})
	res := mustQuery(t, db, `SELECT Name, Population FROM States WHERE Name = 'Utah'`)
	out := res.Format()
	for _, want := range []string{"Name", "Population", "Utah", "(1 rows)"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
	ddl := mustExec(t, db, `CREATE TABLE Tmp (A INT)`)
	if !strings.Contains(ddl.Format(), "ok") {
		t.Errorf("DDL format: %s", ddl.Format())
	}
}

// ---------------------------------------------------------------------------
// Error handling

func TestExecErrors(t *testing.T) {
	db := newPaperDB(t, Config{})
	for _, sql := range []string{
		`SELEC Name FROM States`,
		`INSERT INTO Missing VALUES (1)`,
		`SELECT Name FROM States WHERE Ghost = 1`,
		`DROP TABLE Missing`,
	} {
		if _, err := db.ExecContext(context.Background(), sql); err == nil {
			t.Errorf("%s should error", sql)
		}
	}
}

func TestNoEnginesRegistered(t *testing.T) {
	db, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE T (A VARCHAR)`)
	mustExec(t, db, `INSERT INTO T VALUES ('x')`)
	if _, err := db.QueryContext(context.Background(), `SELECT Count FROM T, WebCount WHERE A = T1`); err == nil {
		t.Error("virtual table without engines should error")
	}
}

func TestExplainSyncOnly(t *testing.T) {
	db := newPaperDB(t, Config{Async: false})
	out, err := db.Explain(`SELECT Name, Count FROM States, WebCount WHERE Name = T1`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "asynchronous") {
		t.Error("sync-mode explain should omit the async section")
	}
	if !strings.Contains(out, "EVScan") {
		t.Errorf("explain missing EVScan:\n%s", out)
	}
}

func TestExplainCost(t *testing.T) {
	db := newPaperDB(t, Config{})
	out, err := db.ExplainCost(
		`SELECT Name, URL FROM States, WebPages WHERE Name = T1 AND Rank <= 2`,
		plan.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "calls≈50") {
		t.Errorf("cost estimate missing call count:\n%s", out)
	}
	est, err := db.Estimate(
		`SELECT Name, URL FROM States, WebPages WHERE Name = T1 AND Rank <= 2`,
		plan.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if est.ExternalCalls != 50 || est.Cardinality != 100 {
		t.Errorf("estimate: %+v", est)
	}
	if est.Improvement <= 1 {
		t.Errorf("async should be predicted faster: %+v", est)
	}
}

func TestUnionAllAndDistinct(t *testing.T) {
	db := newPaperDB(t, Config{})
	// Pure stored-table unions first.
	res := mustQuery(t, db, `SELECT Name FROM Sigs UNION ALL SELECT Name FROM Sigs`)
	if len(res.Rows) != 2*len(datasets.Sigs) {
		t.Fatalf("UNION ALL rows: %d", len(res.Rows))
	}
	res = mustQuery(t, db, `SELECT Name FROM Sigs UNION SELECT Name FROM Sigs`)
	if len(res.Rows) != len(datasets.Sigs) {
		t.Fatalf("UNION rows: %d", len(res.Rows))
	}
	// Mixed column counts are rejected.
	if _, err := db.QueryContext(context.Background(), `SELECT Name FROM Sigs UNION SELECT Name, Population FROM States`); err == nil {
		t.Error("arity mismatch should error")
	}
	// ORDER BY/LIMIT allowed only on the final term.
	if _, err := db.QueryContext(context.Background(), `SELECT Name FROM Sigs ORDER BY Name UNION SELECT Name FROM CSFields`); err == nil {
		t.Error("ORDER BY on non-final term should error")
	}
}

func TestUnionOverVirtualTables(t *testing.T) {
	// The Section 4.5.2 union scenario end to end: a UNION whose branches
	// each carry a dependent join over WebCount. The planner lowers UNION
	// to Distinct over a bag union; the async rewriter percolates both
	// branches' ReqSyncs above the (non-clashing) bag union, consolidates
	// them, and stops below the Distinct.
	db := newPaperDB(t, Config{Async: true})
	q := `SELECT Name, Count FROM Sigs, WebCount WHERE Name = T1 AND T2 = 'Knuth'
	      UNION
	      SELECT Name, Count FROM CSFields, WebCount WHERE Name = T1 AND T2 = 'Knuth'`
	res, _ := queryBothModes(t, db, q)
	if len(res.Rows) != len(datasets.Sigs)+len(datasets.CSFields) {
		t.Fatalf("union rows: %d", len(res.Rows))
	}
	// Plan shape: exactly one consolidated ReqSync below the Distinct,
	// above the bag union.
	st, err := sqlparse.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	op, err := db.planStatement(st.(*sqlparse.Union))
	if err != nil {
		t.Fatal(err)
	}
	shape := exec.Shape(op)
	want := "Distinct(ReqSync(Union All(" +
		"Project(Dependent Join(Scan,AEVScan)),Project(Dependent Join(Scan,AEVScan)))))"
	if shape != want {
		t.Fatalf("shape = %s\nwant   %s", shape, want)
	}
}

func TestUnionAllStreamsThrough(t *testing.T) {
	// UNION ALL with no Distinct: the consolidated ReqSync becomes the root.
	db := newPaperDB(t, Config{Async: true})
	q := `SELECT Name, Count FROM Sigs, WebCount WHERE Name = T1
	      UNION ALL
	      SELECT Name, Count FROM CSFields, WebCount WHERE Name = T1`
	res, _ := queryBothModes(t, db, q)
	if len(res.Rows) != len(datasets.Sigs)+len(datasets.CSFields) {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	st, _ := sqlparse.Parse(q)
	op, err := db.planStatement(st.(*sqlparse.Union))
	if err != nil {
		t.Fatal(err)
	}
	if got := exec.Shape(op); !strings.HasPrefix(got, "ReqSync(Union All(") {
		t.Fatalf("shape = %s", got)
	}
}

func TestUnionOrderByAppliesToWhole(t *testing.T) {
	db := newPaperDB(t, Config{Async: true})
	q := `SELECT Name, Count FROM Sigs, WebCount WHERE Name = T1 AND T2 = 'Knuth'
	      UNION ALL
	      SELECT Name, Count FROM CSFields, WebCount WHERE Name = T1 AND T2 = 'Knuth'
	      ORDER BY Count DESC LIMIT 3`
	res := mustQuery(t, db, q)
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	if res.Rows[0][0].AsString() != "SIGACT" {
		t.Errorf("top row: %v", res.Rows[0])
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][1].Compare(res.Rows[i][1]) < 0 {
			t.Errorf("order: %v", res.Rows)
		}
	}
}

// A nil context selects the no-deadline default at every entry point —
// the replacement for the removed context-free Exec/Query wrappers.
func TestNilContextDefaults(t *testing.T) {
	db := newPaperDB(t, Config{})
	if _, err := db.ExecContext(nil, `CREATE TABLE NilCtx (V INT)`); err != nil {
		t.Fatalf("ExecContext(nil): %v", err)
	}
	if _, err := db.ExecContext(nil, `INSERT INTO NilCtx VALUES (7)`); err != nil {
		t.Fatalf("insert: %v", err)
	}
	res, err := db.QueryContext(nil, `SELECT V FROM NilCtx`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
		t.Fatalf("QueryContext(nil): %+v %v", res, err)
	}
}
