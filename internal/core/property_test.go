package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/datasets"
)

// TestPropertySyncAsyncEquivalence generates a battery of random WSQ
// queries and checks the core invariant of asynchronous iteration: the
// rewritten plan produces exactly the same multiset of tuples as the
// sequential plan (Section 4.5's correctness claim), under every
// combination of cache and streaming configuration.
func TestPropertySyncAsyncEquivalence(t *testing.T) {
	configs := []Config{
		{},
		{CacheSize: 256},
		{StreamingReqSync: true},
		{CacheSize: 256, StreamingReqSync: true},
	}
	rng := rand.New(rand.NewSource(20000))
	queries := randomQueries(rng, 12)
	for ci, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("config=%d", ci), func(t *testing.T) {
			db := newPaperDB(t, cfg)
			for _, q := range queries {
				syncRows := multisetOf(t, db, q, false)
				asyncRows := multisetOf(t, db, q, true)
				if len(syncRows) != len(asyncRows) {
					t.Fatalf("%s:\nsync %d rows, async %d rows", q, len(syncRows), len(asyncRows))
				}
				for i := range syncRows {
					if syncRows[i] != asyncRows[i] {
						t.Fatalf("%s:\nmultisets differ at %d:\n  %s\n  %s", q, i, syncRows[i], asyncRows[i])
					}
				}
			}
		})
	}
}

func multisetOf(t *testing.T, db *DB, q string, async bool) []string {
	t.Helper()
	db.SetAsync(async)
	res, err := db.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatalf("%s (async=%v): %v", q, async, err)
	}
	keys := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		keys[i] = r.Key()
	}
	sort.Strings(keys)
	return keys
}

// randomQueries draws WSQ query shapes covering the interesting plan
// space: single and double virtual tables, WebCount and WebPages, both
// engines, constant terms, rank limits, filters over call results, and
// order-by over computed values.
func randomQueries(rng *rand.Rand, n int) []string {
	consts := datasets.TemplateConstants
	pick := func() string { return consts[rng.Intn(len(consts))] }
	var out []string
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0: // Template 1 variant
			out = append(out, fmt.Sprintf(
				`SELECT Name, Count FROM States, WebCount WHERE Name = T1 AND T2 = '%s' ORDER BY Count DESC`, pick()))
		case 1: // WebPages with random rank limit
			out = append(out, fmt.Sprintf(
				`SELECT Name, URL, Rank FROM Sigs, WebPages WHERE Name = T1 AND Rank <= %d ORDER BY Name, Rank`,
				1+rng.Intn(4)))
		case 2: // two engines, URL intersection
			out = append(out, fmt.Sprintf(
				`SELECT Name, AV.URL FROM Sigs, WebPages_AV AV, WebPages_Google G
				 WHERE Name = AV.T1 AND Name = G.T1 AND AV.Rank <= %d AND G.Rank <= %d AND AV.URL = G.URL`,
				1+rng.Intn(5), 1+rng.Intn(5)))
		case 3: // filter over the call-supplied count
			out = append(out, fmt.Sprintf(
				`SELECT Name, Count FROM States, WebCount WHERE Name = T1 AND T2 = '%s' AND Count > %d`,
				pick(), rng.Intn(60)))
		case 4: // double WebCount (Query 4 shape)
			out = append(out, `SELECT Capital, C.Count, Name, S.Count FROM States, WebCount C, WebCount S
				 WHERE Capital = C.T1 AND Name = S.T1 AND C.Count > S.Count`)
		default: // computed projection + alias ordering (Query 2 shape)
			out = append(out, fmt.Sprintf(
				`SELECT Name, Count / Population AS C FROM States, WebCount
				 WHERE Name = T1 AND T2 = '%s' ORDER BY C DESC`, pick()))
		}
	}
	return out
}
