package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/search"
	"repro/internal/websim"
)

// TestConcurrentExecSharesPump runs many SELECTs from parallel goroutines
// against one DB — the wsqd serving scenario — while a writer inserts into a
// scratch table. Every concurrent result must equal the single-threaded
// reference, and the shared pump must keep total in-flight external calls
// within MaxConcurrentCalls. Run with -race: this test is the detector for
// the catalog / buffer-pool / pump synchronization.
func TestConcurrentExecSharesPump(t *testing.T) {
	const limit = 8
	db, err := Open(Config{Dir: t.TempDir(), Async: true,
		MaxConcurrentCalls: limit, MaxCallsPerDest: limit})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	corpus := websim.Default()
	// A small real latency makes the concurrency bound meaningful: calls
	// from different queries genuinely overlap inside the pump.
	model := search.LatencyModel{Base: 2 * time.Millisecond, CountFactor: 1}
	db.RegisterEngine(search.NewDelayed(websim.NewAltaVista(corpus), model, 1), "AV")
	db.RegisterEngine(search.NewDelayed(websim.NewGoogle(corpus), model, 2), "G")
	loadTables(t, db)
	mustExec(t, db, `CREATE TABLE Scratch (V INT)`)

	// Sorting on the async attribute keeps the ReqSync below the Sort, so
	// results are deterministic; the LIMIT cuts off before count ties.
	queries := []string{
		`SELECT Name, Count FROM States, WebCount
		 WHERE Name = T1 AND T2 = 'scuba diving' ORDER BY Count DESC LIMIT 3`,
		`SELECT Name, Count FROM States, WebCount
		 WHERE Name = T1 AND T2 = 'computer' ORDER BY Count DESC LIMIT 3`,
		`SELECT Name FROM States WHERE Population > 10000000`,
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i] = mustExec(t, db, q).Format()
	}
	db.Pump().ResetStats()

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := range queries {
				q := queries[(r+i)%len(queries)]
				res, err := db.ExecContext(context.Background(), q)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %s: %w", r, q, err)
					return
				}
				if got := res.Format(); got != want[(r+i)%len(queries)] {
					errs <- fmt.Errorf("reader %d: result diverged from single-threaded run:\n got: %s\nwant: %s",
						r, got, want[(r+i)%len(queries)])
					return
				}
			}
		}(r)
	}
	// A concurrent writer exercises the DB-level reader/writer discipline.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := db.ExecContext(context.Background(), fmt.Sprintf(`INSERT INTO Scratch VALUES (%d)`, i)); err != nil {
				errs <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := db.Pump().Stats()
	if st.MaxActive > limit {
		t.Errorf("pump MaxActive = %d, exceeds MaxConcurrentCalls = %d", st.MaxActive, limit)
	}
	if st.Registered == 0 {
		t.Error("no external calls registered; the web queries did not run")
	}
	res := mustExec(t, db, `SELECT V FROM Scratch`)
	if len(res.Rows) != 20 {
		t.Errorf("scratch table has %d rows, want 20", len(res.Rows))
	}
}

// TestExecContextDeadline verifies that a context deadline aborts a query
// mid-execution with context.DeadlineExceeded and that the shared pump
// drains afterwards instead of leaking the query's queued calls.
func TestExecContextDeadline(t *testing.T) {
	db, err := Open(Config{Dir: t.TempDir(), Async: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	corpus := websim.Default()
	model := search.LatencyModel{Base: 100 * time.Millisecond, CountFactor: 1}
	db.RegisterEngine(search.NewDelayed(websim.NewAltaVista(corpus), model, 1), "AV")
	db.RegisterEngine(search.NewDelayed(websim.NewGoogle(corpus), model, 2), "G")
	loadTables(t, db)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err = db.ExecContext(ctx,
		`SELECT Name, Count FROM States, WebCount WHERE Name = T1 AND T2 = 'surfing'`)
	if err == nil {
		t.Fatal("expected a deadline error")
	}
	if ctx.Err() == nil {
		t.Fatalf("query finished before its deadline: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		running, queued := db.Pump().Active()
		if running == 0 && queued == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pump did not drain after deadline: %d running, %d queued", running, queued)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
