package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/datasets"
	"repro/internal/search"
	"repro/internal/types"
	"repro/internal/websim"
)

// newTestDB opens a DB over a temp dir with zero-latency engines and the
// States table loaded.
func newTestDB(t testing.TB, async bool) *DB {
	t.Helper()
	db, err := Open(Config{Dir: t.TempDir(), Async: async})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	corpus := websim.Default()
	db.RegisterEngine(search.NewDelayed(websim.NewAltaVista(corpus), search.ZeroLatency(), 1), "AV")
	db.RegisterEngine(search.NewDelayed(websim.NewGoogle(corpus), search.ZeroLatency(), 2), "G")
	if _, err := db.ExecContext(context.Background(), `CREATE TABLE States (Name VARCHAR, Population INT, Capital VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Catalog().Get("States")
	for _, s := range datasets.States {
		if _, err := tab.Insert(types.Tuple{types.Str(s.Name), types.Int(s.Population), types.Str(s.Capital)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestSmokeQuery1(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			db := newTestDB(t, async)
			res, err := db.QueryContext(context.Background(), `SELECT Name, Count FROM States, WebCount WHERE Name = T1 ORDER BY Count DESC`)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 50 {
				t.Fatalf("want 50 rows, got %d", len(res.Rows))
			}
			want := []string{"California", "Washington", "New York", "Texas", "Michigan"}
			for i, w := range want {
				if got := res.Rows[i][0].AsString(); got != w {
					t.Errorf("rank %d: got %s, want %s", i+1, got, w)
				}
			}
			exp, err := db.Explain(`SELECT Name, Count FROM States, WebCount WHERE Name = T1 ORDER BY Count DESC`)
			if err != nil {
				t.Fatal(err)
			}
			t.Log("\n" + exp)
		})
	}
}
