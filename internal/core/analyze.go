package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/sqlparse"
	"repro/internal/types"
)

// This file implements EXPLAIN ANALYZE: execute the query with an
// instrumented plan and return the per-operator span tree instead of the
// rows. The prefix is intercepted before SQL parsing (like the shell's
// dot-commands, but inside the DB so it also works for remote wsqd
// clients), and the rendered profile is returned as an ordinary
// single-column result so every existing transport can carry it.

// ExplainAnalyze executes a SELECT/UNION with tracing enabled and
// returns the normal row result with Result.Trace populated. Tests and
// programmatic consumers use this; the textual `EXPLAIN ANALYZE <query>`
// SQL form returns the rendered tree instead of the rows.
func (db *DB) ExplainAnalyze(ctx context.Context, sql string, opts QueryOptions) (*Result, error) {
	opts.Trace = true
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch st.(type) {
	case *sqlparse.Select, *sqlparse.Union:
		return db.runQueryable(ctx, st, opts)
	default:
		return nil, fmt.Errorf("EXPLAIN ANALYZE expects a query, got %T", st)
	}
}

// stripExplainAnalyze matches a leading `EXPLAIN ANALYZE ` prefix
// (case-insensitive, any whitespace) and returns the remaining query.
func stripExplainAnalyze(sql string) (string, bool) {
	rest, ok := cutKeyword(strings.TrimSpace(sql), "EXPLAIN")
	if !ok {
		return "", false
	}
	rest, ok = cutKeyword(rest, "ANALYZE")
	if !ok {
		return "", false
	}
	return rest, true
}

// cutKeyword removes a leading keyword followed by whitespace,
// case-insensitively.
func cutKeyword(s, kw string) (string, bool) {
	if len(s) <= len(kw) || !strings.EqualFold(s[:len(kw)], kw) {
		return "", false
	}
	rest := s[len(kw):]
	trimmed := strings.TrimLeft(rest, " \t\r\n")
	if trimmed == rest { // keyword not followed by whitespace (e.g. EXPLAINX)
		return "", false
	}
	return trimmed, true
}

// explainAnalyze runs the query under tracing and renders the span tree
// as a one-column result, one line per row.
func (db *DB) explainAnalyze(ctx context.Context, sql string, opts QueryOptions) (*Result, error) {
	res, err := db.ExplainAnalyze(ctx, sql, opts)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(res.Trace.Render(), "\n"), "\n")
	lines = append(lines,
		fmt.Sprintf("total: %v  rows=%d  external_calls=%d  degraded_calls=%d",
			res.Trace.Dur.Round(time.Microsecond), len(res.Rows),
			res.Stats.ExternalCalls, res.Stats.DegradedCalls))
	rows := make([]types.Tuple, len(lines))
	for i, l := range lines {
		rows[i] = types.Tuple{types.Str(l)}
	}
	return &Result{Columns: []string{"EXPLAIN ANALYZE"}, Rows: rows, Stats: res.Stats, Trace: res.Trace}, nil
}
