package core

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/search"
)

// flakyEngine fails a configurable subset of calls.
type flakyEngine struct {
	inner     search.Engine
	failEvery int64
	calls     atomic.Int64
}

func (f *flakyEngine) Name() string { return f.inner.Name() }

func (f *flakyEngine) maybeFail() error {
	n := f.calls.Add(1)
	if f.failEvery > 0 && n%f.failEvery == 0 {
		return fmt.Errorf("transient engine failure (call %d)", n)
	}
	return nil
}

func (f *flakyEngine) Count(q string) (int64, error) {
	if err := f.maybeFail(); err != nil {
		return 0, err
	}
	return f.inner.Count(q)
}

func (f *flakyEngine) Search(q string, k int) ([]search.Result, error) {
	if err := f.maybeFail(); err != nil {
		return nil, err
	}
	return f.inner.Search(q, k)
}

func (f *flakyEngine) Fetch(url string) (string, error) {
	if err := f.maybeFail(); err != nil {
		return "", err
	}
	return f.inner.Fetch(url)
}

type stubOK struct{}

func (stubOK) Name() string                  { return "altavista" }
func (stubOK) Count(q string) (int64, error) { return int64(len(q)), nil }
func (stubOK) Search(q string, k int) ([]search.Result, error) {
	return []search.Result{{URL: "u/" + q, Rank: 1, Date: "1999-01-01"}}, nil
}
func (stubOK) Fetch(url string) (string, error) { return "<html></html>", nil }

func newFlakyDB(t *testing.T, failEvery int64) (*DB, *flakyEngine) {
	t.Helper()
	db, err := Open(Config{Dir: t.TempDir(), Async: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	fe := &flakyEngine{inner: stubOK{}, failEvery: failEvery}
	db.RegisterEngine(fe, "AV")
	loadTables(t, db)
	return db, fe
}

func TestAsyncQueryFailsCleanlyOnEngineError(t *testing.T) {
	db, _ := newFlakyDB(t, 10) // every 10th call fails
	_, err := db.QueryContext(context.Background(), `SELECT Name, Count FROM States, WebCount WHERE Name = T1`)
	if err == nil {
		t.Fatal("engine failure must surface as a query error")
	}
	if !strings.Contains(err.Error(), "transient engine failure") {
		t.Errorf("error should carry the cause: %v", err)
	}
}

func TestPumpSurvivesFailedQuery(t *testing.T) {
	// After a failed query, abandoned in-flight calls must not wedge the
	// pump; the next query over a healthy path succeeds.
	db, fe := newFlakyDB(t, 25)
	if _, err := db.QueryContext(context.Background(), `SELECT Name, Count FROM States, WebCount WHERE Name = T1`); err == nil {
		t.Fatal("expected failure")
	}
	fe.failEvery = 0 // heal the engine
	res, err := db.QueryContext(context.Background(), `SELECT Name, Count FROM States, WebCount WHERE Name = T1`)
	if err != nil {
		t.Fatalf("query after failure: %v", err)
	}
	if len(res.Rows) != 50 {
		t.Errorf("rows: %d", len(res.Rows))
	}
}

func TestSyncQueryFailsCleanlyToo(t *testing.T) {
	db, _ := newFlakyDB(t, 5)
	db.SetAsync(false)
	if _, err := db.QueryContext(context.Background(), `SELECT Name, Count FROM States, WebCount WHERE Name = T1`); err == nil {
		t.Fatal("sync engine failure must surface")
	}
}

func TestAggregateOverVirtualTable(t *testing.T) {
	// Aggregation above a WebPages dependent join exercises the full
	// clash path through SQL: the Aggregate must stay above the ReqSync
	// and count final (patched, expanded, canceled) tuples.
	db := newPaperDB(t, Config{Async: true})
	res := mustQuery(t, db, `SELECT COUNT(*) FROM States, WebPages WHERE Name = T1 AND Rank <= 2`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %v", res.Rows)
	}
	n, _ := res.Rows[0][0].AsInt()
	if n != 100 { // 50 states x top-2
		t.Errorf("COUNT(*) = %d, want 100", n)
	}
	// Grouped aggregate over counts.
	res = mustQuery(t, db, `SELECT Name, COUNT(*) AS n FROM Sigs, WebPages
		WHERE Name = T1 AND Rank <= 3 GROUP BY Name ORDER BY Name LIMIT 3`)
	if len(res.Rows) != 3 {
		t.Fatalf("groups: %v", res.Rows)
	}
	for _, r := range res.Rows {
		if c, _ := r[1].AsInt(); c != 3 {
			t.Errorf("per-sig URL count: %v", r)
		}
	}
}

func TestDistinctOverVirtualTable(t *testing.T) {
	db := newPaperDB(t, Config{Async: true})
	res := mustQuery(t, db, `SELECT DISTINCT Rank FROM States, WebPages WHERE Name = T1 AND Rank <= 3`)
	if len(res.Rows) != 3 {
		t.Errorf("distinct ranks: %v", res.Rows)
	}
}

func TestWebFetchThroughSQL(t *testing.T) {
	db := newPaperDB(t, Config{Async: true})
	res := mustQuery(t, db, `SELECT WebPages.URL, Status FROM States, WebPages, WebFetch
		WHERE Name = T1 AND Rank <= 1 AND WebPages.URL = WebFetch.URL`)
	if len(res.Rows) != 50 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if st, _ := r[len(r)-1].AsInt(); st != 200 {
			t.Errorf("status: %v", r)
		}
	}
}

func TestLimitShortCircuitsCleanly(t *testing.T) {
	// A LIMIT above a ReqSync closes the plan mid-iteration; pending calls
	// are discarded without wedging later queries.
	db := newPaperDB(t, Config{Async: true})
	res := mustQuery(t, db, `SELECT Name, Count FROM States, WebCount WHERE Name = T1 LIMIT 3`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	// Engine still healthy for the next query.
	res = mustQuery(t, db, `SELECT Name, Count FROM States, WebCount WHERE Name = T1`)
	if len(res.Rows) != 50 {
		t.Fatalf("follow-up rows: %d", len(res.Rows))
	}
}
