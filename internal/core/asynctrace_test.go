package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/sqlparse"
)

// TestAsyncPumpSpansAttachToIssuingScan: under a sampled trace context
// the pump's per-call spans appear as *async* children of the AEVScan
// that issued them — visible in WalkAll and the wire form, but invisible
// to Shape and self-time accounting, so the plan-shape and timing
// invariants the other trace tests pin stay intact.
func TestAsyncPumpSpansAttachToIssuingScan(t *testing.T) {
	db := newPaperDB(t, Config{Async: true})
	sel, err := sqlparse.ParseSelect(tracePagesQuery)
	if err != nil {
		t.Fatal(err)
	}
	op, err := db.Plan(sel)
	if err != nil {
		t.Fatal(err)
	}
	want := exec.Shape(op)

	tc := obs.NewTraceCtx()
	ctx := obs.WithTrace(context.Background(), tc)
	res, err := db.QueryContextOpts(ctx, tracePagesQuery, QueryOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace returned")
	}

	// Shape sees only the plan tree: identical to the untraced contract.
	if got := res.Trace.Shape(); got != want {
		t.Errorf("sampled-query shape = %s, want plan shape %s", got, want)
	}

	aev := findSpan(res.Trace, "AEVScan")
	if aev == nil {
		t.Fatalf("no AEVScan span in:\n%s", res.Trace.Render())
	}
	if len(aev.AsyncChildren) == 0 {
		t.Fatal("AEVScan has no async pump.call children under a sampled context")
	}
	for _, c := range aev.AsyncChildren {
		if c.Op != "pump.call" {
			t.Errorf("async child op = %q, want pump.call", c.Op)
		}
	}

	// Walk must not see the async spans; WalkAll must.
	res.Trace.Walk(func(s *obs.Span) {
		if s.Op == "pump.call" || strings.HasPrefix(s.Op, "pump.") {
			t.Errorf("Walk visited async span %s", s.Op)
		}
	})
	pumpSpans := 0
	res.Trace.WalkAll(func(s *obs.Span) {
		if s.Op == "pump.call" {
			pumpSpans++
		}
	})
	// The dependent join issues one WebPages call per state.
	if pumpSpans != len(aev.AsyncChildren) {
		t.Errorf("WalkAll saw %d pump.call spans, AEVScan holds %d", pumpSpans, len(aev.AsyncChildren))
	}

	// Self-time accounting ignores async children (their durations
	// overlap the operators); the wire form still carries them, flagged.
	j := res.Trace.JSON()
	var asyncOnWire int
	j.Walk(func(s *obs.SpanJSON) {
		if s.Async {
			asyncOnWire++
			if s.Op != "pump.call" {
				t.Errorf("unexpected async wire span %s", s.Op)
			}
		}
	})
	if asyncOnWire != pumpSpans {
		t.Errorf("wire form carries %d async spans, want %d", asyncOnWire, pumpSpans)
	}

	// Without a sampled context the same query attaches nothing.
	res2, err := db.QueryContextOpts(context.Background(), tracePagesQuery, QueryOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	plain := findSpan(res2.Trace, "AEVScan")
	if plain == nil {
		t.Fatal("no AEVScan span in untraced-context query")
	}
	if len(plain.AsyncChildren) != 0 {
		t.Errorf("unsampled query attached %d async children", len(plain.AsyncChildren))
	}
}
