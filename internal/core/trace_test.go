package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/sqlparse"
)

// tracePagesQuery is the Section 3.1 Q5 / Table-1 style dependent join:
// 50 states, one WebPages call each, two URLs per call — so every call
// patches its original tuple and expands one copy.
const tracePagesQuery = `SELECT Name, URL, Rank FROM States, WebPages WHERE Name = T1 AND Rank <= 2`

func traceQuery(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.QueryContextOpts(context.Background(), sql, QueryOptions{Trace: true})
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	if res.Trace == nil {
		t.Fatalf("%s: no trace returned", sql)
	}
	return res
}

func findSpan(root *obs.Span, op string) *obs.Span {
	var found *obs.Span
	root.Walk(func(s *obs.Span) {
		if found == nil && s.Op == op {
			found = s
		}
	})
	return found
}

// TestTraceTreeMatchesPlanShape pins span parentage to plan parentage:
// the trace of an asynchronously rewritten dependent-join plan has
// exactly the rewritten plan's shape.
func TestTraceTreeMatchesPlanShape(t *testing.T) {
	db := newPaperDB(t, Config{Async: true})
	sel, err := sqlparse.ParseSelect(tracePagesQuery)
	if err != nil {
		t.Fatal(err)
	}
	op, err := db.Plan(sel)
	if err != nil {
		t.Fatal(err)
	}
	want := exec.Shape(op)
	if !strings.Contains(want, "ReqSync") {
		t.Fatalf("plan not rewritten for async iteration: %s", want)
	}
	res := traceQuery(t, db, tracePagesQuery)
	if got := res.Trace.Shape(); got != want {
		t.Errorf("span tree shape = %s, want plan shape %s", got, want)
	}
	if res.Trace.Rows != int64(len(res.Rows)) {
		t.Errorf("root span rows = %d, result rows = %d", res.Trace.Rows, len(res.Rows))
	}
}

// TestTraceTimesAreInclusive checks the timing invariants: a parent's
// inclusive time covers its children's, and the per-operator self times
// sum back to the root's total (within clamping jitter).
func TestTraceTimesAreInclusive(t *testing.T) {
	db := newPaperDB(t, Config{Async: true})
	res := traceQuery(t, db, tracePagesQuery)
	var selfSum time.Duration
	res.Trace.Walk(func(s *obs.Span) {
		selfSum += s.Self()
		var kids time.Duration
		for _, c := range s.Children {
			kids += c.Dur
		}
		// Children run inside the parent's Open/Next/Close, so inclusive
		// time can never be (meaningfully) smaller than their sum.
		if s.Dur+time.Millisecond < kids {
			t.Errorf("%s: inclusive %v < children %v", s.Op, s.Dur, kids)
		}
	})
	total := res.Trace.Dur
	if diff := total - selfSum; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("sum of self times %v != total %v", selfSum, total)
	}
}

// TestTraceExpansionCounts pins the ReqSync settlement profile to the
// known multiplicities of the corpus: 50 calls, each returning two rows,
// patch 50 originals and generate 50 copies (Section 4.3).
func TestTraceExpansionCounts(t *testing.T) {
	db := newPaperDB(t, Config{Async: true})
	res := traceQuery(t, db, tracePagesQuery)
	if len(res.Rows) != 100 {
		t.Fatalf("rows = %d, want 100", len(res.Rows))
	}
	rs := findSpan(res.Trace, "ReqSync")
	if rs == nil {
		t.Fatalf("no ReqSync span in:\n%s", res.Trace.Render())
	}
	for k, want := range map[string]int64{"settled": 50, "patched": 50, "expanded": 50} {
		if got := rs.Extra[k]; got != want {
			t.Errorf("ReqSync %s = %d, want %d\n%s", k, got, want, res.Trace.Render())
		}
	}
	if got := rs.Extra["canceled"]; got != 0 {
		t.Errorf("ReqSync canceled = %d, want 0", got)
	}
	if rs.Rows != 100 {
		t.Errorf("ReqSync rows = %d, want 100", rs.Rows)
	}
	aev := findSpan(res.Trace, "AEVScan")
	if aev == nil {
		t.Fatalf("no AEVScan span in:\n%s", res.Trace.Render())
	}
	if got := aev.Extra["calls"]; got != 50 {
		t.Errorf("AEVScan calls = %d, want 50", got)
	}
	if aev.Opens != 50 {
		t.Errorf("AEVScan opens = %d, want 50 (one per outer binding)", aev.Opens)
	}
}

// TestTraceSyncEVScan traces the synchronous plan: the EVScan reports
// its call count, and the span tree carries no ReqSync.
func TestTraceSyncEVScan(t *testing.T) {
	db := newPaperDB(t, Config{Async: false})
	res := traceQuery(t, db, tracePagesQuery)
	if s := res.Trace.Shape(); strings.Contains(s, "ReqSync") {
		t.Fatalf("sync plan should have no ReqSync: %s", s)
	}
	ev := findSpan(res.Trace, "EVScan")
	if ev == nil {
		t.Fatalf("no EVScan span in:\n%s", res.Trace.Render())
	}
	if got := ev.Extra["calls"]; got != 50 {
		t.Errorf("EVScan calls = %d, want 50", got)
	}
}

// TestExplainAnalyzeSQL exercises the textual `EXPLAIN ANALYZE <query>`
// form end to end: it must execute the query and return the rendered
// span tree as rows, through the ordinary query entry points.
func TestExplainAnalyzeSQL(t *testing.T) {
	db := newPaperDB(t, Config{Async: true})
	res, err := db.QueryContext(context.Background(), "explain analyze "+tracePagesQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "EXPLAIN ANALYZE" {
		t.Fatalf("columns = %v", res.Columns)
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r[0].S
	}
	text := strings.Join(out, "\n")
	for _, want := range []string{"ReqSync", "AEVScan", "expanded=50", "total:", "rows=100"} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, text)
		}
	}
	if res.Trace == nil {
		t.Error("EXPLAIN ANALYZE result should carry the span tree")
	}
	// Not a valid prefix: EXPLAIN without ANALYZE stays a parse error,
	// and a non-query statement is rejected.
	if _, err := db.QueryContext(context.Background(), "EXPLAIN ANALYZE"); err == nil {
		t.Error("bare EXPLAIN ANALYZE should fail")
	}
	if _, err := db.ExecContext(context.Background(), "EXPLAIN ANALYZE CREATE TABLE X (A INT)"); err == nil {
		t.Error("EXPLAIN ANALYZE of DDL should fail")
	}
}

// TestExplainAnalyzeAPI exercises the programmatic form, which returns
// the real rows plus the trace.
func TestExplainAnalyzeAPI(t *testing.T) {
	db := newPaperDB(t, Config{Async: true})
	res, err := db.ExplainAnalyze(context.Background(), tracePagesQuery, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 100 {
		t.Errorf("rows = %d, want 100", len(res.Rows))
	}
	if res.Trace == nil || findSpan(res.Trace, "ReqSync") == nil {
		t.Error("trace missing or incomplete")
	}
}
