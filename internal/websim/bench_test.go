package websim

import (
	"fmt"
	"testing"
)

func BenchmarkCorpusBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := Build(Config{Seed: int64(i + 1), Scale: 1})
		if c.NumPages() == 0 {
			b.Fatal("empty corpus")
		}
	}
}

func BenchmarkCountSingleTerm(b *testing.B) {
	e := NewAltaVista(Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Count("California"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountNear(b *testing.B) {
	e := NewAltaVista(Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Count("California near computer"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchTop10(b *testing.B) {
	e := NewGoogle(Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Search("Texas", 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetch(b *testing.B) {
	e := NewAltaVista(Default())
	res, err := e.Search("Ohio", 1)
	if err != nil || len(res) == 0 {
		b.Fatal("no seed URL")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Fetch(res[0].URL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryParse(b *testing.B) {
	c := Default()
	queries := []string{
		"California", "New Mexico near four corners", "scuba diving near Florida",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pq := c.parseQuery(queries[i%len(queries)])
		if len(pq.Segments) == 0 {
			b.Fatal("no segments")
		}
	}
}

func BenchmarkCountParallel(b *testing.B) {
	// The concurrency property asynchronous iteration relies on: the
	// engine must serve overlapped requests without contention collapse.
	e := NewAltaVista(Default())
	terms := make([]string, 16)
	for i := range terms {
		terms[i] = fmt.Sprintf("w%d", i)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			e.Count(terms[i%len(terms)])
			i++
		}
	})
}
