// Package websim implements the synthetic World-Wide Web that substitutes
// for AltaVista and Google in this reproduction: a deterministic generated
// corpus, an inverted index with token positions, and two search engines
// with different matching semantics ("altavista" supports NEAR, "google"
// ANDs terms — paper footnote 1) and different ranking functions.
//
// The corpus is seeded so that the *shapes* the paper reports reproduce:
// Query 1's top-5 states, Query 2's population-normalized top-5, Query 3's
// four-corners dominance and dropoff, Query 4's six common-word capitals,
// Query 6's four AV∩Google URL agreements, and Section 4.1's Knuth/SIG
// ranking. Absolute counts are scaled down by a configurable factor (the
// paper itself notes identical searches fluctuate; only shapes matter).
package websim

import "repro/internal/datasets"

// stateWeights gives each state's relative web-mention weight, calibrated
// to the paper's reported AltaVista counts where available (California =
// 1000 corresponds to the paper's 4,995,016). Values for states the paper
// does not report were interpolated subject to the orderings the paper's
// queries expose:
//
//   - Query 1 top-5: CA > WA > NY > TX > MI > everything else
//   - Query 2 top-5 (weight/population): AK > WA > DE > HI > WY > rest
//   - Query 4: exactly {GA, NE, MA, MS, SD, SC} are out-counted by capitals
var stateWeights = map[string]int{
	"Alabama":        140,
	"Alaska":         141, // Q2: 1149 * 614 ≈ 705k ≈ 141 units
	"Arizona":        230,
	"Arkansas":       90,
	"California":     1000, // paper Q1: 4,995,016
	"Colorado":       260,
	"Connecticut":    130,
	"Delaware":       103, // Q2: 690 * 744 ≈ 513k
	"Florida":        300,
	"Georgia":        192, // paper Q4: 958,280
	"Hawaii":         152, // Q2: 635 * 1193 ≈ 758k
	"Idaho":          75,
	"Illinois":       280,
	"Indiana":        170,
	"Iowa":           95,
	"Kansas":         100,
	"Kentucky":       120,
	"Louisiana":      160,
	"Maine":          95,
	"Maryland":       150,
	"Massachusetts":  202, // paper Q4: 1,006,946
	"Michigan":       325, // paper Q1: 1,621,754
	"Minnesota":      180,
	"Mississippi":    133, // paper Q4: 662,145
	"Missouri":       150,
	"Montana":        80,
	"Nebraska":       77, // paper Q4: 385,991
	"Nevada":         130,
	"New Hampshire":  90,
	"New Jersey":     190,
	"New Mexico":     120,
	"New York":       754, // paper Q1: 3,764,513
	"North Carolina": 195,
	"North Dakota":   60,
	"Ohio":           250,
	"Oklahoma":       110,
	"Oregon":         190,
	"Pennsylvania":   270,
	"Rhode Island":   85,
	"South Carolina": 108, // paper Q4: 540,618
	"South Dakota":   57,  // paper Q4: 283,821
	"Tennessee":      160,
	"Texas":          546, // paper Q1: 2,724,285
	"Utah":           140,
	"Vermont":        55,
	"Virginia":       200,
	"Washington":     835, // paper Q1: 4,167,056 (state + U.S. capital)
	"West Virginia":  70,
	"Wisconsin":      160,
	"Wyoming":        58, // Q2: 603 * 481 ≈ 290k
}

// capitalWeights gives each capital's web-mention weight. The paper's
// Query 4 finds exactly six capitals that out-count their states, mostly
// capitals that are common words or names in other contexts; those six
// carry the paper's reported counts, all others sit below their state.
var capitalWeights = map[string]int{
	"Montgomery":     90,
	"Juneau":         25,
	"Phoenix":        170,
	"Little Rock":    40,
	"Sacramento":     95,
	"Denver":         180,
	"Hartford":       80,
	"Dover":          60,
	"Tallahassee":    55,
	"Atlanta":        211, // paper Q4: 1,053,868 > Georgia
	"Honolulu":       100,
	"Boise":          45,
	"Springfield":    150,
	"Indianapolis":   95,
	"Des Moines":     50,
	"Topeka":         40,
	"Frankfort":      30,
	"Baton Rouge":    60,
	"Augusta":        70,
	"Annapolis":      75,
	"Boston":         282, // paper Q4: 1,409,828 > Massachusetts
	"Lansing":        45,
	"Saint Paul":     90,
	"Jackson":        224, // paper Q4: 1,120,655 > Mississippi
	"Jefferson City": 35,
	"Helena":         45,
	"Lincoln":        134, // paper Q4: 669,059 > Nebraska
	"Carson City":    35,
	"Concord":        65,
	"Trenton":        60,
	"Santa Fe":       90,
	"Albany":         95,
	"Raleigh":        85,
	"Bismarck":       30,
	"Columbus":       210,
	"Oklahoma City":  70,
	"Salem":          110,
	"Harrisburg":     55,
	"Providence":     80,
	"Columbia":       334, // paper Q4: 1,668,270 > South Carolina
	"Pierre":         133, // paper Q4: 663,310 > South Dakota
	"Nashville":      140,
	"Austin":         180,
	"Salt Lake City": 95,
	"Montpelier":     20,
	"Richmond":       150,
	"Olympia":        120,
	"Charleston":     65,
	"Madison":        140,
	"Cheyenne":       30,
}

// sigWeights gives each ACM SIG a page weight; every SIG appears on at
// least a handful of pages ("all Sigs are mentioned on at least 3 Web
// pages", Section 4.3).
var sigWeights = map[string]int{
	"SIGACT": 45, "SIGAda": 18, "SIGAPL": 12, "SIGAPP": 20, "SIGARCH": 40,
	"SIGART": 30, "SIGBIO": 15, "SIGCAPH": 8, "SIGCAS": 10, "SIGCHI": 70,
	"SIGCOMM": 60, "SIGCPR": 10, "SIGCSE": 35, "SIGCUE": 8, "SIGDA": 20,
	"SIGDOC": 15, "SIGecom": 12, "SIGGRAPH": 90, "SIGGROUP": 14, "SIGIR": 45,
	"SIGKDD": 30, "SIGMETRICS": 25, "SIGMICRO": 15, "SIGMIS": 12,
	"SIGMOBILE": 25, "SIGMOD": 80, "SIGMM": 20, "SIGOPS": 55, "SIGPLAN": 65,
	"SIGSAC": 15, "SIGSAM": 18, "SIGSIM": 12, "SIGSOFT": 40, "SIGSOUND": 8,
	"SIGUCCS": 10, "SIGWEB": 22, "SIGNUM": 9,
}

// knuthCoWeights drives the Section 4.1 result: within pages mentioning
// "Knuth", SIG co-mentions follow this distribution; SIGs absent from this
// map never co-occur with Knuth, so their WebCount is exactly 0.
var knuthCoWeights = []struct {
	Sig    string
	Weight int
}{
	{"SIGACT", 32},
	{"SIGPLAN", 26},
	{"SIGGRAPH", 20},
	{"SIGMOD", 14},
	{"SIGCOMM", 9},
	{"SIGSAM", 5},
}

// fourCornersCoWeights drives Query 3: within pages mentioning the phrase
// "four corners", state co-mentions follow this distribution. The dropoff
// after Utah reproduces the paper's <Colorado 1745, New Mexico 1249,
// Arizona 1095, Utah 994, California 215, ...> shape.
var fourCornersCoWeights = []struct {
	State  string
	Weight int
}{
	{"Colorado", 36},
	{"New Mexico", 27},
	{"Arizona", 22},
	{"Utah", 16},
	{"California", 4},
	{"Nevada", 2},
	{"Texas", 2},
}

// scubaCoWeights drives the DSQ example: co-mentions near "scuba diving".
var scubaCoWeights = []struct {
	Term   string
	Weight int
}{
	{"Florida", 30},
	{"Hawaii", 24},
	{"California", 14},
	{"The Deep", 10},
	{"Open Water", 8},
	{"The Abyss", 6},
	{"Into the Blue", 4},
	{"Jaws", 3},
	{"Texas", 2},
}

// csFieldWeights gives page weights for the CSFields table entries, and
// sigFieldAffinity links SIGs to fields so the Figure 8 query (URLs shared
// between a SIG and a field) has non-empty answers.
var csFieldWeights = map[string]int{
	"databases": 60, "operating systems": 45, "artificial intelligence": 55,
	"computer graphics": 40, "networking": 50, "programming languages": 40,
	"software engineering": 45, "theory of computation": 20,
	"human computer interaction": 25, "computer architecture": 30,
	"information retrieval": 25, "machine learning": 35,
	"distributed systems": 30, "compilers": 25, "computational geometry": 12,
}

var sigFieldAffinity = map[string]string{
	"SIGMOD":     "databases",
	"SIGOPS":     "operating systems",
	"SIGART":     "artificial intelligence",
	"SIGGRAPH":   "computer graphics",
	"SIGCOMM":    "networking",
	"SIGPLAN":    "programming languages",
	"SIGSOFT":    "software engineering",
	"SIGACT":     "theory of computation",
	"SIGCHI":     "human computer interaction",
	"SIGARCH":    "computer architecture",
	"SIGIR":      "information retrieval",
	"SIGKDD":     "machine learning",
	"SIGMETRICS": "distributed systems",
	"SIGMICRO":   "compilers",
}

// movieWeights gives page weights for the Movies table entries.
var movieWeights = map[string]int{
	"The Abyss": 25, "Jaws": 45, "Titanic": 90, "The Deep": 15,
	"Waterworld": 30, "Thunderball": 20, "Flipper": 15, "Free Willy": 20,
	"Sphere": 18, "The Big Blue": 10, "Open Water": 8, "Into the Blue": 8,
	"Cocoon": 15, "Splash": 18, "20000 Leagues Under the Sea": 12,
	"The Firm": 25, "Fargo": 30, "Casablanca": 40, "Chinatown": 25,
	"Top Gun": 35, "Apollo 13": 30, "Twister": 25, "Dances with Wolves": 22,
	"Forrest Gump": 40, "Rocky": 35,
}

// constantWeights gives page weights for the template-constant pool terms
// ("computer", "beaches", ...). These terms also appear as secondary
// tokens on entity pages, which is what makes "STATE near CONSTANT"
// queries return non-trivial counts in the Table 1 templates.
func constantWeight(term string) int {
	// Zipf-ish by position in the pool: earlier constants are more common.
	for i, c := range datasets.TemplateConstants {
		if c == term {
			return 220 / (1 + i/4)
		}
	}
	return 0
}

// agreedAuthorityURLs names the per-state authority URL that both engines
// boost for the four states of the paper's Query 6 result.
var agreedAuthorityURLs = map[string]string{
	"Indiana":   "www.indiana.edu/copyright.html",
	"Louisiana": "www.usl.edu",
	"Minnesota": "www.lib.umn.edu",
	"Wyoming":   "www.state.wy.us/state/welcome.html",
}
