package websim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/search"
)

// SimEngine is a synthetic search engine over a shared corpus. Two
// instances with different semantics and ranking stand in for AltaVista
// and Google:
//
//   - "altavista" honors the NEAR operator (positional windows) and ranks
//     by proximity-weighted term frequency;
//   - "google" treats every query as a conjunction (paper footnote 1: "for
//     search engines such as Google that do not explicitly support the
//     'near' operator") and ranks by tf·idf times a static URL prior.
//
// Each engine also indexes a slightly different subset of the corpus, so
// counts differ between engines as they did on the 1999 web.
type SimEngine struct {
	name     string
	c        *Corpus
	near     bool
	coverage uint64 // page included iff hash(url|name)%100 < coverage
}

var _ search.Engine = (*SimEngine)(nil)

// NewAltaVista builds the NEAR-capable engine over the corpus.
func NewAltaVista(c *Corpus) *SimEngine {
	return &SimEngine{name: "altavista", c: c, near: true, coverage: 94}
}

// NewGoogle builds the conjunctive engine over the corpus.
func NewGoogle(c *Corpus) *SimEngine {
	return &SimEngine{name: "google", c: c, near: false, coverage: 88}
}

// Name implements search.Engine.
func (e *SimEngine) Name() string { return e.name }

// includes reports whether the engine's crawl covers the page. High-prior
// authority pages are always crawled; ordinary pages are covered
// pseudo-randomly per engine, so the two engines' counts differ as they
// did on the 1999 web.
func (e *SimEngine) includes(pid int32) bool {
	p := &e.c.Pages[pid]
	prior := p.GPrior
	if e.near {
		prior = p.AVPrior
	}
	if prior >= 10 {
		return true
	}
	return hash64(p.URL+"|"+e.name)%100 < e.coverage
}

// matches evaluates a query to its matching pages.
func (e *SimEngine) matches(query string) []match {
	pq := e.c.parseQuery(query)
	if pq.Unknown || len(pq.Segments) == 0 {
		return nil
	}
	terms := pq.terms()
	if e.near && pq.HasNear {
		return e.c.evalNEAR(terms, e.includes)
	}
	return e.c.evalAND(terms, e.includes)
}

// Count implements search.Engine: the total number of matching pages,
// returned without materializing URLs (the cheap operation behind the
// WebCount virtual table).
func (e *SimEngine) Count(query string) (int64, error) {
	return int64(len(e.matches(query))), nil
}

// Search implements search.Engine: the top-k pages by the engine's
// ranking function, with 1-based ranks.
func (e *SimEngine) Search(query string, k int) ([]search.Result, error) {
	ms := e.matches(query)
	type scored struct {
		m     match
		score float64
	}
	sc := make([]scored, len(ms))
	for i, m := range ms {
		p := &e.c.Pages[m.Page]
		var s float64
		if e.near {
			// Proximity-weighted tf with the AV prior.
			s = (float64(m.TF) + 4.0/float64(1+m.Span)) * p.AVPrior
		} else {
			// tf with the Google static prior (a crude PageRank stand-in).
			s = float64(m.TF) * p.GPrior
		}
		sc[i] = scored{m: m, score: s}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].score != sc[j].score {
			return sc[i].score > sc[j].score
		}
		return e.c.Pages[sc[i].m.Page].URL < e.c.Pages[sc[j].m.Page].URL
	})
	if k > 0 && len(sc) > k {
		sc = sc[:k]
	}
	out := make([]search.Result, len(sc))
	for i, s := range sc {
		p := &e.c.Pages[s.m.Page]
		out[i] = search.Result{URL: p.URL, Rank: i + 1, Date: p.Date, Score: s.score}
	}
	return out, nil
}

// Fetch implements search.Engine: it renders a deterministic HTML body for
// the page, including links to related pages so that the crawler example
// (Section 4.2) has a link graph to follow.
func (e *SimEngine) Fetch(url string) (string, error) {
	p, ok := e.c.PageByURL(url)
	if !ok {
		return "", search.ErrNotFound
	}
	var b strings.Builder
	b.WriteString("<html><head><title>")
	seen := make(map[int32]bool)
	for _, t := range p.Toks {
		if !seen[t.Term] && !strings.HasPrefix(e.c.terms[t.Term], "w") {
			b.WriteString(e.c.terms[t.Term])
			b.WriteByte(' ')
			seen[t.Term] = true
		}
		if len(seen) >= 4 {
			break
		}
	}
	b.WriteString("</title></head><body>\n<p>")
	for _, t := range p.Toks {
		b.WriteString(e.c.terms[t.Term])
		b.WriteByte(' ')
	}
	b.WriteString("</p>\n")
	// Deterministic outgoing links.
	pid := e.c.urlIdx[url]
	n := int32(len(e.c.Pages))
	for i := int32(1); i <= 3; i++ {
		target := (pid + i*int32(hash64(url)%977+1)) % n
		b.WriteString(fmt.Sprintf("<a href=\"%s\">link %d</a>\n", e.c.Pages[target].URL, i))
	}
	b.WriteString("</body></html>\n")
	return b.String(), nil
}
