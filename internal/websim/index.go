package websim

import (
	"sort"
	"strings"
)

// posting records a term's occurrences on one page.
type posting struct {
	Page      int32
	Positions []uint16 // sorted
}

type postingList []posting

// buildIndex constructs the inverted index over all pages.
func (c *Corpus) buildIndex() {
	c.post = make([]postingList, len(c.terms))
	for pid := range c.Pages {
		p := &c.Pages[pid]
		// Group this page's occurrences by term.
		sort.Slice(p.Toks, func(i, j int) bool {
			if p.Toks[i].Term != p.Toks[j].Term {
				return p.Toks[i].Term < p.Toks[j].Term
			}
			return p.Toks[i].Pos < p.Toks[j].Pos
		})
		i := 0
		for i < len(p.Toks) {
			j := i
			for j < len(p.Toks) && p.Toks[j].Term == p.Toks[i].Term {
				j++
			}
			positions := make([]uint16, 0, j-i)
			for k := i; k < j; k++ {
				positions = append(positions, p.Toks[k].Pos)
			}
			t := p.Toks[i].Term
			c.post[t] = append(c.post[t], posting{Page: int32(pid), Positions: positions})
			i = j
		}
	}
}

// NumPages returns the corpus size.
func (c *Corpus) NumPages() int { return len(c.Pages) }

// PageByURL returns the page with the given URL.
func (c *Corpus) PageByURL(url string) (*Page, bool) {
	id, ok := c.urlIdx[url]
	if !ok {
		return nil, false
	}
	return &c.Pages[id], true
}

// ---------------------------------------------------------------------------
// Query parsing

// ParsedQuery is a search expression decomposed into segments. Segments
// were separated by the NEAR operator in the original expression; each
// segment is a list of term ids (a phrase or keyword group).
type ParsedQuery struct {
	Segments [][]int32
	// Unknown is set when a segment contained a word outside the corpus
	// vocabulary; such queries match nothing (as on the real web, a
	// nonsense keyword returns ~0 hits).
	Unknown bool
	HasNear bool
}

// parseQuery splits a query on the NEAR operator and greedily tokenizes
// each segment against the corpus dictionary (longest phrase match first,
// so "new mexico four corners" resolves to ["new mexico", "four corners"]).
func (c *Corpus) parseQuery(q string) ParsedQuery {
	var pq ParsedQuery
	q = norm(q)
	parts := strings.Split(q, " near ")
	pq.HasNear = len(parts) > 1
	for _, part := range parts {
		part = strings.Trim(part, " \"'")
		if part == "" {
			continue
		}
		words := strings.Fields(part)
		var seg []int32
		for i := 0; i < len(words); {
			matched := false
			max := c.maxLen
			if max > len(words)-i {
				max = len(words) - i
			}
			for l := max; l >= 1; l-- {
				phrase := strings.Join(words[i:i+l], " ")
				if id, ok := c.dict[phrase]; ok {
					seg = append(seg, id)
					i += l
					matched = true
					break
				}
			}
			if !matched {
				pq.Unknown = true
				i++
			}
		}
		if len(seg) > 0 {
			pq.Segments = append(pq.Segments, seg)
		}
	}
	return pq
}

// terms flattens the parsed query's term ids.
func (pq ParsedQuery) terms() []int32 {
	var out []int32
	for _, seg := range pq.Segments {
		out = append(out, seg...)
	}
	return out
}

// ---------------------------------------------------------------------------
// Matching

// match is one page matching a query, with term-frequency and minimal-span
// statistics for ranking.
type match struct {
	Page int32
	TF   int
	Span int // minimal window covering one occurrence of every term; 0 for single-term
}

// evalAND returns pages containing every query term, using postings-list
// intersection. include filters pages per engine.
func (c *Corpus) evalAND(terms []int32, include func(int32) bool) []match {
	if len(terms) == 0 {
		return nil
	}
	// Dedup terms; intersect smallest list first.
	uniq := dedupTerms(terms)
	lists := make([]postingList, len(uniq))
	for i, t := range uniq {
		if int(t) >= len(c.post) {
			return nil
		}
		lists[i] = c.post[t]
		if len(lists[i]) == 0 {
			return nil
		}
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	var out []match
	// Walk the smallest list; probe others by binary search.
	for _, base := range lists[0] {
		pid := base.Page
		if include != nil && !include(pid) {
			continue
		}
		tf := len(base.Positions)
		ok := true
		var allPositions [][]uint16
		allPositions = append(allPositions, base.Positions)
		for _, other := range lists[1:] {
			idx := sort.Search(len(other), func(i int) bool { return other[i].Page >= pid })
			if idx >= len(other) || other[idx].Page != pid {
				ok = false
				break
			}
			tf += len(other[idx].Positions)
			allPositions = append(allPositions, other[idx].Positions)
		}
		if !ok {
			continue
		}
		out = append(out, match{Page: pid, TF: tf, Span: minSpan(allPositions)})
	}
	return out
}

// evalNEAR returns pages where, additionally, some occurrence of every
// term falls within the near window (minimal span <= nearWindow per
// adjacent pair, approximated by total span <= nearWindow*(k-1)).
func (c *Corpus) evalNEAR(terms []int32, include func(int32) bool) []match {
	cands := c.evalAND(terms, include)
	k := len(dedupTerms(terms))
	if k <= 1 {
		return cands
	}
	limit := nearWindow * (k - 1)
	out := cands[:0]
	for _, m := range cands {
		if m.Span <= limit {
			out = append(out, m)
		}
	}
	return out
}

func dedupTerms(terms []int32) []int32 {
	seen := make(map[int32]bool, len(terms))
	var out []int32
	for _, t := range terms {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// minSpan computes the size of the smallest window containing at least one
// position from every list (the classic k-way merge sweep).
func minSpan(lists [][]uint16) int {
	if len(lists) <= 1 {
		return 0
	}
	idx := make([]int, len(lists))
	best := 1 << 30
	for {
		lo, hi := int(lists[0][idx[0]]), int(lists[0][idx[0]])
		loList := 0
		for i := 1; i < len(lists); i++ {
			p := int(lists[i][idx[i]])
			if p < lo {
				lo, loList = p, i
			}
			if p > hi {
				hi = p
			}
		}
		if hi-lo < best {
			best = hi - lo
		}
		idx[loList]++
		if idx[loList] >= len(lists[loList]) {
			return best
		}
	}
}
