package websim

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/datasets"
)

// The default corpus is shared across tests (building it takes a few
// hundred ms).

func countOf(t *testing.T, e *SimEngine, q string) int64 {
	t.Helper()
	n, err := e.Count(q)
	if err != nil {
		t.Fatalf("Count(%q): %v", q, err)
	}
	return n
}

// ---------------------------------------------------------------------------
// Corpus construction

func TestCorpusDeterminism(t *testing.T) {
	c1 := Build(Config{Seed: 7, Scale: 1})
	c2 := Build(Config{Seed: 7, Scale: 1})
	if c1.NumPages() != c2.NumPages() {
		t.Fatalf("page counts differ: %d vs %d", c1.NumPages(), c2.NumPages())
	}
	for i := 0; i < c1.NumPages(); i += 997 {
		if c1.Pages[i].URL != c2.Pages[i].URL {
			t.Fatalf("page %d URL differs", i)
		}
	}
	// Different seed differs.
	c3 := Build(Config{Seed: 8, Scale: 1})
	same := 0
	for i := 0; i < 100 && i < c3.NumPages(); i++ {
		if c3.Pages[i].Date == c1.Pages[i].Date {
			same++
		}
	}
	if same == 100 {
		t.Error("different seeds should produce different corpora")
	}
}

func TestCorpusURLsUnique(t *testing.T) {
	c := Default()
	seen := make(map[string]bool, c.NumPages())
	for _, p := range c.Pages {
		if seen[p.URL] {
			t.Fatalf("duplicate URL %s", p.URL)
		}
		seen[p.URL] = true
	}
}

func TestPageByURL(t *testing.T) {
	c := Default()
	p, ok := c.PageByURL(c.Pages[17].URL)
	if !ok || p != &c.Pages[17] {
		t.Error("PageByURL identity")
	}
	if _, ok := c.PageByURL("www.nonexistent.example/x.html"); ok {
		t.Error("unknown URL should miss")
	}
}

// ---------------------------------------------------------------------------
// Query parsing / tokenization

func TestParseQueryPhrases(t *testing.T) {
	c := Default()
	pq := c.parseQuery("New Mexico near four corners")
	if pq.Unknown || !pq.HasNear || len(pq.Segments) != 2 {
		t.Fatalf("parse: %+v", pq)
	}
	if c.terms[pq.Segments[0][0]] != "new mexico" || c.terms[pq.Segments[1][0]] != "four corners" {
		t.Errorf("greedy phrase match failed")
	}
	// Unknown word poisons the query.
	pq = c.parseQuery("zzyzzx near California")
	if !pq.Unknown {
		t.Error("unknown word should mark query unknown")
	}
	// Case-insensitivity.
	pq = c.parseQuery("CALIFORNIA")
	if pq.Unknown || len(pq.Segments) != 1 {
		t.Error("case-insensitive tokenization")
	}
}

func TestUnknownTermReturnsZero(t *testing.T) {
	c := Default()
	av := NewAltaVista(c)
	if n := countOf(t, av, "qqqqxyzzy"); n != 0 {
		t.Errorf("unknown term count = %d", n)
	}
	res, err := av.Search("qqqqxyzzy", 5)
	if err != nil || len(res) != 0 {
		t.Errorf("unknown term search: %v %v", res, err)
	}
}

// ---------------------------------------------------------------------------
// minSpan

func TestMinSpan(t *testing.T) {
	cases := []struct {
		lists [][]uint16
		want  int
	}{
		{[][]uint16{{5}}, 0},
		{[][]uint16{{1, 10}, {4}}, 3},
		{[][]uint16{{1, 100}, {2, 99}}, 1},
		{[][]uint16{{1}, {50}, {100}}, 99},
		{[][]uint16{{10, 20, 30}, {22}, {25}}, 5},
	}
	for _, c := range cases {
		if got := minSpan(c.lists); got != c.want {
			t.Errorf("minSpan(%v) = %d, want %d", c.lists, got, c.want)
		}
	}
}

func TestMinSpanProperty(t *testing.T) {
	// The span must never exceed max-min of any single choice and is
	// non-negative.
	f := func(a, b []uint16) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		got := minSpan([][]uint16{a, b})
		if got < 0 {
			return false
		}
		// Brute force.
		best := 1 << 30
		for _, x := range a {
			for _, y := range b {
				d := int(x) - int(y)
				if d < 0 {
					d = -d
				}
				if d < best {
					best = d
				}
			}
		}
		return got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// ---------------------------------------------------------------------------
// Engine semantics

func TestNearVsANDSemantics(t *testing.T) {
	c := Default()
	av := NewAltaVista(c)
	g := NewGoogle(c)
	// On AV, NEAR is stricter than AND would be; "California near computer"
	// must be <= the conjunctive count of the same terms on AV. We can't
	// query AV for plain AND (it treats multi-segment as NEAR), so check:
	// near count <= single-term count.
	nearCount := countOf(t, av, "California near computer")
	caCount := countOf(t, av, "California")
	if nearCount <= 0 || nearCount >= caCount {
		t.Errorf("near=%d ca=%d", nearCount, caCount)
	}
	// Google ignores NEAR (treats as AND): its count for the same query is
	// the conjunctive count and is >= AV's positional count scaled by
	// coverage. At minimum it must be positive.
	gCount := countOf(t, g, "California near computer")
	if gCount <= 0 {
		t.Error("google conjunctive count")
	}
}

func TestEnginesDifferInCounts(t *testing.T) {
	c := Default()
	av, g := NewAltaVista(c), NewGoogle(c)
	diff := 0
	for _, s := range datasets.States[:10] {
		if countOf(t, av, s.Name) != countOf(t, g, s.Name) {
			diff++
		}
	}
	if diff < 5 {
		t.Errorf("engines should disagree on most counts (crawl coverage); only %d/10 differ", diff)
	}
}

func TestSearchRankingContract(t *testing.T) {
	c := Default()
	for _, e := range []*SimEngine{NewAltaVista(c), NewGoogle(c)} {
		res, err := e.Search("California", 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 10 {
			t.Fatalf("%s: want 10 results, got %d", e.Name(), len(res))
		}
		for i, r := range res {
			if r.Rank != i+1 {
				t.Errorf("%s: rank %d at position %d", e.Name(), r.Rank, i)
			}
			if i > 0 && res[i-1].Score < r.Score {
				t.Errorf("%s: scores not descending", e.Name())
			}
			if r.Date == "" || !strings.HasPrefix(r.Date, "1999-") {
				t.Errorf("%s: bad date %q", e.Name(), r.Date)
			}
		}
		// k = 0 means unlimited; count matches Count().
		all, _ := e.Search("Wyoming", 0)
		n, _ := e.Count("Wyoming")
		if int64(len(all)) != n {
			t.Errorf("%s: search-all (%d) != count (%d)", e.Name(), len(all), n)
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	c := Default()
	av := NewAltaVista(c)
	r1, _ := av.Search("Texas", 5)
	r2, _ := av.Search("Texas", 5)
	for i := range r1 {
		if r1[i].URL != r2[i].URL {
			t.Fatal("search results must be deterministic")
		}
	}
}

func TestFetch(t *testing.T) {
	c := Default()
	av := NewAltaVista(c)
	res, _ := av.Search("California", 1)
	body, err := av.Fetch(res[0].URL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "<html>") || !strings.Contains(body, "href=") {
		t.Errorf("fetch body should be HTML with links: %.100s", body)
	}
	if _, err := av.Fetch("www.missing.example/nope"); err == nil {
		t.Error("fetch of unknown URL should error")
	}
	// Deterministic.
	b2, _ := av.Fetch(res[0].URL)
	if b2 != body {
		t.Error("fetch must be deterministic")
	}
}

// ---------------------------------------------------------------------------
// Paper shapes (the Section 3.1 / 4.1 ground truth used by core tests)

func TestQuery1Shape(t *testing.T) {
	c := Default()
	av := NewAltaVista(c)
	want := []string{"California", "Washington", "New York", "Texas", "Michigan"}
	counts := make(map[string]int64)
	for _, s := range datasets.States {
		counts[s.Name] = countOf(t, av, s.Name)
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return counts[names[i]] > counts[names[j]] })
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("Q1 top-5 = %v, want %v", names[:5], want)
		}
	}
}

func TestQuery3FourCornersShape(t *testing.T) {
	c := Default()
	av := NewAltaVista(c)
	counts := make(map[string]int64)
	for _, s := range datasets.States {
		counts[s.Name] = countOf(t, av, s.Name+" near four corners")
	}
	order := datasets.FourCornersStates // CO > NM > AZ > UT
	for i := 1; i < len(order); i++ {
		if counts[order[i-1]] <= counts[order[i]] {
			t.Errorf("four corners order violated: %s=%d <= %s=%d",
				order[i-1], counts[order[i-1]], order[i], counts[order[i]])
		}
	}
	// "Note the dramatic dropoff in Count between the first four results
	// and the fifth."
	fifth := int64(0)
	for name, n := range counts {
		skip := false
		for _, fc := range order {
			if fc == name {
				skip = true
			}
		}
		if !skip && n > fifth {
			fifth = n
		}
	}
	if counts[order[3]] < 3*fifth {
		t.Errorf("dropoff too small: Utah=%d vs next=%d", counts[order[3]], fifth)
	}
}

func TestKnuthShape(t *testing.T) {
	c := Default()
	av := NewAltaVista(c)
	prev := int64(1 << 50)
	for _, sig := range datasets.KnuthSigs {
		n := countOf(t, av, sig+" near Knuth")
		if n <= 0 || n >= prev {
			t.Fatalf("Knuth ranking violated at %s (%d, prev %d)", sig, n, prev)
		}
		prev = n
	}
	// "For all other Sigs, Count is 0."
	known := make(map[string]bool)
	for _, s := range datasets.KnuthSigs {
		known[s] = true
	}
	for _, sig := range datasets.Sigs {
		if known[sig] {
			continue
		}
		if n := countOf(t, av, sig+" near Knuth"); n != 0 {
			t.Errorf("%s near Knuth = %d, want 0", sig, n)
		}
	}
}

func TestQuery6AgreedURLs(t *testing.T) {
	c := Default()
	av, g := NewAltaVista(c), NewGoogle(c)
	agreed := make(map[string]string)
	for _, s := range datasets.States {
		ra, _ := av.Search(s.Name, 5)
		rg, _ := g.Search(s.Name, 5)
		in := make(map[string]bool)
		for _, r := range ra {
			in[r.URL] = true
		}
		for _, r := range rg {
			if in[r.URL] {
				agreed[s.Name] = r.URL
			}
		}
	}
	if len(agreed) != len(datasets.Query6States) {
		t.Fatalf("agreements: %v", agreed)
	}
	for _, s := range datasets.Query6States {
		if _, ok := agreed[s]; !ok {
			t.Errorf("missing agreement for %s", s)
		}
	}
}

func TestAuthorityPagesTopRanked(t *testing.T) {
	c := Default()
	av := NewAltaVista(c)
	// Indiana's agreed authority page is rank 1 on both engines.
	res, _ := av.Search("Indiana", 1)
	if len(res) != 1 || res[0].URL != "www.indiana.edu/copyright.html" {
		t.Errorf("authority not top-ranked: %v", res)
	}
}

// TestShapesSurviveScaleChange guards against the paper shapes being an
// artifact of the default corpus scale: at scale 1 (half the pages) the
// Query 1 and Query 2 orderings and the Knuth zeroes must still hold.
func TestShapesSurviveScaleChange(t *testing.T) {
	c := Build(Config{Seed: 1999, Scale: 1})
	av := NewAltaVista(c)
	count := func(q string) int64 {
		n, err := av.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	q1 := []string{"California", "Washington", "New York", "Texas", "Michigan"}
	for i := 1; i < len(q1); i++ {
		if count(q1[i-1]) <= count(q1[i]) {
			t.Errorf("scale-1 Q1 order violated at %s", q1[i])
		}
	}
	// Michigan still above every other state.
	mi := count("Michigan")
	for _, s := range datasets.States {
		inTop := false
		for _, w := range q1 {
			if w == s.Name {
				inTop = true
			}
		}
		if !inTop && count(s.Name) >= mi {
			t.Errorf("scale-1: %s out-counts Michigan", s.Name)
		}
	}
	if n := count("SIGUCCS near Knuth"); n != 0 {
		t.Errorf("scale-1 Knuth zero violated: %d", n)
	}
}
