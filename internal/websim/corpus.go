package websim

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"repro/internal/datasets"
	"repro/internal/search"
)

// TokenOcc is one token occurrence on a page: a term id and a position.
type TokenOcc struct {
	Term int32
	Pos  uint16
}

// Page is one synthetic web page.
type Page struct {
	URL     string
	Date    string
	Toks    []TokenOcc
	AVPrior float64 // static rank prior as seen by the "altavista" engine
	GPrior  float64 // static rank prior as seen by the "google" engine
}

// Config controls corpus generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Scale is the number of pages generated per weight unit; the default
	// of 2 yields ~2000 pages mentioning California (weight 1000) and a
	// total corpus of roughly 40k pages.
	Scale int
}

// DefaultConfig returns the standard corpus configuration.
func DefaultConfig() Config { return Config{Seed: 1999, Scale: 2} }

// Corpus is the generated synthetic web plus its inverted index.
type Corpus struct {
	cfg    Config
	dict   map[string]int32
	terms  []string
	Pages  []Page
	urlIdx map[string]int32
	post   []postingList // indexed by term id
	maxLen int           // longest phrase length in words, for tokenizing
}

const (
	fillerVocab = 800
	nearWindow  = 12
)

// entity categories used during generation
type entity struct {
	term   string
	weight int
	kind   string // "state", "capital", "sig", "field", "movie", "constant"
}

// Build generates the corpus and its inverted index.
func Build(cfg Config) *Corpus {
	if cfg.Scale <= 0 {
		cfg.Scale = 2
	}
	c := &Corpus{
		cfg:    cfg,
		dict:   make(map[string]int32),
		urlIdx: make(map[string]int32),
	}
	rng := search.NewRand(cfg.Seed)
	zipf := rng.NewZipf(1.3, 1.0, fillerVocab-1)

	// Pre-intern filler vocabulary and every entity phrase.
	for i := 0; i < fillerVocab; i++ {
		c.intern(fmt.Sprintf("w%d", i))
	}
	var entities []entity
	for _, s := range datasets.States {
		entities = append(entities, entity{term: s.Name, weight: stateWeights[s.Name], kind: "state"})
		entities = append(entities, entity{term: s.Capital, weight: capitalWeights[s.Capital], kind: "capital"})
	}
	for _, s := range datasets.Sigs {
		entities = append(entities, entity{term: s, weight: sigWeights[s], kind: "sig"})
	}
	for _, f := range datasets.CSFields {
		entities = append(entities, entity{term: f, weight: csFieldWeights[f], kind: "field"})
	}
	for _, m := range datasets.Movies {
		entities = append(entities, entity{term: m, weight: movieWeights[m], kind: "movie"})
	}
	for _, t := range datasets.TemplateConstants {
		entities = append(entities, entity{term: t, weight: constantWeight(t), kind: "constant"})
	}
	for _, e := range entities {
		c.intern(norm(e.term))
	}
	c.intern("four corners")
	c.intern("knuth")
	c.intern("scuba diving")
	c.intern("acm")

	// Entity pages.
	for _, e := range entities {
		n := e.weight * cfg.Scale
		for i := 0; i < n; i++ {
			c.genEntityPage(rng, zipf, e, i)
		}
	}
	// Correlated special pages.
	c.genCorrelated(rng, zipf, "four corners", 120*cfg.Scale,
		newDeckSampler(rng, fourCornersCoWeightsList(), 22, 120*cfg.Scale), nil)
	c.genCorrelated(rng, zipf, "knuth", 100*cfg.Scale,
		newDeckSampler(rng, knuthCoWeightsList(), 40, 100*cfg.Scale), nil)
	c.genCorrelated(rng, zipf, "scuba diving", 80*cfg.Scale,
		newDeckSampler(rng, scubaCoWeightsList(), 30, 80*cfg.Scale), func(primary string, page *[]TokenOcc, pos uint16) {
			// Sometimes add a second correlated entity of the other category to
			// create the state/movie/scuba-diving triples of the DSQ sketch.
			if rng.Intn(100) >= 30 {
				return
			}
			isState := false
			for _, s := range datasets.ScubaStates {
				if s == primary {
					isState = true
				}
			}
			var pool []string
			if isState {
				pool = datasets.ScubaMovies
			} else {
				pool = datasets.ScubaStates
			}
			other := pool[rng.Intn(len(pool))]
			*page = append(*page, TokenOcc{Term: c.intern(norm(other)), Pos: pos + 3})
		})

	// Authority pages: one high-prior page per state and per SIG.
	for _, s := range datasets.States {
		c.genAuthorityPage(rng, s.Name, "state")
	}
	for _, sg := range datasets.Sigs {
		c.genAuthorityPage(rng, sg, "sig")
	}

	c.buildIndex()
	return c
}

var (
	defaultOnce   sync.Once
	defaultCorpus *Corpus
)

// Default returns a process-wide shared corpus built with DefaultConfig.
// Building takes a few hundred milliseconds; sharing it keeps the test
// suite fast.
func Default() *Corpus {
	defaultOnce.Do(func() { defaultCorpus = Build(DefaultConfig()) })
	return defaultCorpus
}

func (c *Corpus) intern(term string) int32 {
	if id, ok := c.dict[term]; ok {
		return id
	}
	id := int32(len(c.terms))
	c.terms = append(c.terms, term)
	c.dict[term] = id
	if n := len(strings.Fields(term)); n > c.maxLen {
		c.maxLen = n
	}
	return id
}

// norm lowercases a phrase; the corpus vocabulary is case-insensitive.
func norm(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// pageURL synthesizes a plausible URL for the i-th page about an entity.
func pageURL(term string, i int) string {
	slug := strings.ReplaceAll(norm(term), " ", "-")
	domains := [...]string{"com", "org", "net", "edu"}
	d := domains[(len(slug)+i)%len(domains)]
	switch i % 5 {
	case 0:
		return fmt.Sprintf("www.%s.%s/index.html", slug, d)
	case 1:
		return fmt.Sprintf("www.%s-online.%s/page%d.html", slug, d, i)
	case 2:
		return fmt.Sprintf("members.tripod.com/~%s/%d.html", slug, i)
	case 3:
		return fmt.Sprintf("www.geocities.com/%s/%d/index.htm", slug, i)
	default:
		return fmt.Sprintf("www.%s.%s/archive/%d.html", slug, d, i)
	}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// hashFrac maps a string to a deterministic fraction in [0, 1).
func hashFrac(s string) float64 {
	return float64(hash64(s)%1_000_000) / 1_000_000
}

// priors derives the two engines' static rank priors for a URL. The
// priors are deliberately anti-correlated (a page AltaVista loves, Google
// shrugs at): this keeps the organic AV∩Google top-5 overlap near zero, so
// the only agreed URLs in the paper's Query 6 are the deliberately
// double-boosted authority pages — four states, exactly as the paper found.
func priors(url string) (av, g float64) {
	h := hashFrac(url)
	return 0.5 + h, 1.5 - h
}

func (c *Corpus) addPage(p Page) int32 {
	id := int32(len(c.Pages))
	if _, dup := c.urlIdx[p.URL]; dup {
		// Extremely unlikely with the URL schemes above; disambiguate.
		p.URL = fmt.Sprintf("%s?dup=%d", p.URL, id)
	}
	c.urlIdx[p.URL] = id
	c.Pages = append(c.Pages, p)
	return id
}

func randDate(rng *search.Rand) string {
	return fmt.Sprintf("1999-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))
}

// genEntityPage emits one page primarily about entity e.
func (c *Corpus) genEntityPage(rng *search.Rand, zipf *search.Zipf, e entity, i int) {
	length := 24 + rng.Intn(16)
	var toks []TokenOcc
	primary := c.dict[norm(e.term)]
	// Primary term occurs 1-3 times.
	occ := 1 + rng.Intn(3)
	for k := 0; k < occ; k++ {
		toks = append(toks, TokenOcc{Term: primary, Pos: uint16(rng.Intn(length))})
	}
	// Secondary co-mentions by category.
	switch e.kind {
	case "state":
		if rng.Intn(100) < 10 {
			if s, ok := datasets.StateByName(e.term); ok {
				toks = append(toks, TokenOcc{Term: c.dict[norm(s.Capital)], Pos: uint16(rng.Intn(length))})
			}
		}
	case "capital":
		if rng.Intn(100) < 10 {
			for _, s := range datasets.States {
				if s.Capital == e.term {
					toks = append(toks, TokenOcc{Term: c.dict[norm(s.Name)], Pos: uint16(rng.Intn(length))})
					break
				}
			}
		}
	case "sig":
		toks = append(toks, TokenOcc{Term: c.dict["acm"], Pos: uint16(rng.Intn(length))})
		if f, ok := sigFieldAffinity[e.term]; ok && rng.Intn(100) < 35 {
			toks = append(toks, TokenOcc{Term: c.dict[norm(f)], Pos: uint16(rng.Intn(length))})
		}
	case "field":
		for sig, f := range sigFieldAffinity {
			if f == e.term && rng.Intn(100) < 20 {
				toks = append(toks, TokenOcc{Term: c.dict[norm(sig)], Pos: uint16(rng.Intn(length))})
				break
			}
		}
	}
	// Template-pool constants appear as secondary tokens on every kind of
	// page; this is what gives "STATE near CONSTANT" queries their counts.
	nconst := 2 + rng.Intn(2)
	for k := 0; k < nconst; k++ {
		ci := int(zipf.Uint64()) % len(datasets.TemplateConstants)
		toks = append(toks, TokenOcc{
			Term: c.dict[norm(datasets.TemplateConstants[ci])],
			Pos:  uint16(rng.Intn(length)),
		})
	}
	// Filler.
	nfill := length / 2
	for k := 0; k < nfill; k++ {
		toks = append(toks, TokenOcc{
			Term: int32(zipf.Uint64()),
			Pos:  uint16(rng.Intn(length)),
		})
	}
	url := pageURL(e.term, i)
	av, g := priors(url)
	c.addPage(Page{URL: url, Date: randDate(rng), Toks: toks, AVPrior: av, GPrior: g})
}

// genCorrelated emits n pages containing the anchor phrase, each with a
// weighted co-mention placed within the NEAR window of the anchor.
// Co-mentions are drawn by cycling a shuffled proportional deck rather
// than independent sampling, so realized co-occurrence counts track the
// configured weights exactly and the orderings the paper reports (e.g.
// Colorado > New Mexico > Arizona > Utah for Query 3) cannot be flipped
// by sampling noise.
func (c *Corpus) genCorrelated(rng *search.Rand, zipf *search.Zipf, anchor string, n int,
	sample func() (string, bool), extra func(primary string, page *[]TokenOcc, pos uint16)) {
	anchorID := c.dict[norm(anchor)]
	for i := 0; i < n; i++ {
		length := 24 + rng.Intn(16)
		anchorPos := uint16(4 + rng.Intn(length-8))
		toks := []TokenOcc{{Term: anchorID, Pos: anchorPos}}
		if co, ok := sample(); ok {
			// Place the co-mention within the near window of the anchor.
			delta := uint16(1 + rng.Intn(nearWindow/2))
			pos := anchorPos + delta
			if rng.Intn(2) == 0 && anchorPos > delta {
				pos = anchorPos - delta
			}
			toks = append(toks, TokenOcc{Term: c.intern(norm(co)), Pos: pos})
			if extra != nil {
				extra(co, &toks, pos)
			}
		}
		for k := 0; k < length/2; k++ {
			toks = append(toks, TokenOcc{Term: int32(zipf.Uint64()), Pos: uint16(rng.Intn(length))})
		}
		url := pageURL(anchor, i)
		av, g := priors(url)
		c.addPage(Page{URL: url, Date: randDate(rng), Toks: toks, AVPrior: av, GPrior: g})
	}
}

// genAuthorityPage emits the high-prior "official" page for an entity.
// For the four states of the paper's Query 6 result both engines boost the
// page; for every other entity only one engine does, which keeps the
// AV∩Google top-5 overlap small, as the paper observed ("Google and
// AltaVista only agreed on the relevance of 4 URLs").
func (c *Corpus) genAuthorityPage(rng *search.Rand, term, kind string) {
	var url string
	if u, ok := agreedAuthorityURLs[term]; ok {
		url = u
	} else {
		slug := strings.ReplaceAll(norm(term), " ", "")
		if kind == "sig" {
			url = fmt.Sprintf("www.acm.org/%s/", slug)
		} else {
			url = fmt.Sprintf("www.state-%s.gov/welcome.html", slug)
		}
	}
	primary := c.dict[norm(term)]
	length := 30
	// A single occurrence keeps unboosted authority pages out of the
	// organic top-k; only the per-engine prior boost promotes them.
	toks := []TokenOcc{{Term: primary, Pos: uint16(rng.Intn(length))}}
	const boost = 25.0
	av, g := priors(url)
	switch {
	case agreedAuthorityURLs[term] != "":
		av, g = boost, boost
	case kind == "sig":
		av, g = boost, boost
	case hash64(url)%2 == 0:
		av = boost
	default:
		g = boost
	}
	c.addPage(Page{URL: url, Date: randDate(rng), Toks: toks, AVPrior: av, GPrior: g})
}

// ---------------------------------------------------------------------------
// weighted sampling helpers

type weighted struct {
	term   string
	weight int
}

func fourCornersCoWeightsList() []weighted {
	out := make([]weighted, len(fourCornersCoWeights))
	for i, w := range fourCornersCoWeights {
		out[i] = weighted{w.State, w.Weight}
	}
	return out
}

func knuthCoWeightsList() []weighted {
	out := make([]weighted, len(knuthCoWeights))
	for i, w := range knuthCoWeights {
		out[i] = weighted{w.Sig, w.Weight}
	}
	return out
}

func scubaCoWeightsList() []weighted {
	out := make([]weighted, len(scubaCoWeights))
	for i, w := range scubaCoWeights {
		out[i] = weighted{w.Term, w.Weight}
	}
	return out
}

// newDeckSampler returns a sampler whose first n draws realize the weighted
// proportions exactly (largest-remainder apportionment of n slots, then a
// single shuffle). Realized co-occurrence counts therefore track the
// configured weights deterministically, not merely in expectation.
func newDeckSampler(rng *search.Rand, list []weighted, noneWeight, n int) func() (string, bool) {
	total := noneWeight
	for _, w := range list {
		total += w.weight
	}
	type alloc struct {
		term  string
		exact float64
		count int
	}
	allocs := make([]alloc, 0, len(list)+1)
	assigned := 0
	for _, w := range list {
		exact := float64(n) * float64(w.weight) / float64(total)
		cnt := int(exact)
		allocs = append(allocs, alloc{term: w.term, exact: exact, count: cnt})
		assigned += cnt
	}
	// Remaining slots (including the "none" share) go to the largest
	// fractional remainders; leftover slots stay "no co-mention".
	sort.Slice(allocs, func(i, j int) bool {
		return allocs[i].exact-float64(allocs[i].count) > allocs[j].exact-float64(allocs[j].count)
	})
	deck := make([]string, 0, n)
	for _, a := range allocs {
		for i := 0; i < a.count; i++ {
			deck = append(deck, a.term)
		}
	}
	for len(deck) < n {
		deck = append(deck, "")
	}
	rng.Shuffle(len(deck), func(i, j int) { deck[i], deck[j] = deck[j], deck[i] })
	next := 0
	return func() (string, bool) {
		t := deck[next%len(deck)]
		next++
		return t, t != ""
	}
}
