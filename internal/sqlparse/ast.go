package sqlparse

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Name    string
	Columns []ColumnSpec
}

// ColumnSpec is one column declaration in CREATE TABLE.
type ColumnSpec struct {
	Name string
	Type string
}

// DropTable is a DROP TABLE statement.
type DropTable struct {
	Name string
}

// Insert is an INSERT INTO ... VALUES statement (multi-row).
type Insert struct {
	Table string
	Rows  [][]types.Value
}

// Select is a select-project-join query.
type Select struct {
	Distinct bool
	Star     bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// SelectItem is one projection with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef is one FROM-clause entry. In Redbase style, the order of
// TableRefs fixes the join order.
type TableRef struct {
	Table string
	Alias string // defaults to Table when empty
}

// EffectiveAlias returns the alias used to qualify this table's columns.
func (t TableRef) EffectiveAlias() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Union combines two or more SELECTs. UNION deduplicates; UNION ALL is
// the bag union. Only the final term may carry ORDER BY / LIMIT, which
// apply to the whole union.
type Union struct {
	Terms []*Select
	// All[i] reports whether the i-th UNION keyword (between Terms[i] and
	// Terms[i+1]) was UNION ALL.
	All []bool
}

func (*CreateTable) stmt() {}
func (*DropTable) stmt()   {}
func (*Insert) stmt()      {}
func (*Select) stmt()      {}
func (*Union) stmt()       {}

// ---------------------------------------------------------------------------
// Parser-level (unresolved) expressions

// Expr is an unresolved expression node produced by the parser. The
// planner resolves Col references against table schemas and lowers the
// tree into internal/expr nodes.
type Expr interface {
	fmt.Stringer
	expr()
}

// Col is a possibly-qualified column reference.
type Col struct {
	Table string // "" when unqualified
	Name  string
}

// Lit is a literal constant.
type Lit struct {
	Val types.Value
}

// Binary applies a binary operator: = <> < <= > >= + - * / AND OR.
type Binary struct {
	Op   string
	L, R Expr
}

// Unary applies NOT or unary minus.
type Unary struct {
	Op string
	E  Expr
}

// FuncCall is an aggregate function application: COUNT(*), COUNT(x),
// SUM/MIN/MAX/AVG(x).
type FuncCall struct {
	Name string
	Star bool
	Args []Expr
}

// IsNull is the postfix IS [NOT] NULL predicate. Unlike comparisons
// against a NULL literal (which follow three-valued logic and never hold),
// it yields a definite boolean.
type IsNull struct {
	E   Expr
	Not bool
}

func (*Col) expr()      {}
func (*Lit) expr()      {}
func (*Binary) expr()   {}
func (*Unary) expr()    {}
func (*FuncCall) expr() {}
func (*IsNull) expr()   {}

// String implements fmt.Stringer.
func (c *Col) String() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// String implements fmt.Stringer.
func (l *Lit) String() string {
	if l.Val.Kind == types.KindString {
		return "'" + strings.ReplaceAll(l.Val.S, "'", "''") + "'"
	}
	return l.Val.String()
}

// String implements fmt.Stringer.
func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// String implements fmt.Stringer.
func (u *Unary) String() string {
	return fmt.Sprintf("%s(%s)", u.Op, u.E)
}

// String implements fmt.Stringer.
func (n *IsNull) String() string {
	if n.Not {
		return fmt.Sprintf("(%s IS NOT NULL)", n.E)
	}
	return fmt.Sprintf("(%s IS NULL)", n.E)
}

// String implements fmt.Stringer.
func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}
