package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/types"
)

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	lex *Lexer
	tok Token // lookahead
	src string
}

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	p := &Parser{lex: NewLexer(src), src: src}
	if err := p.advance(); err != nil {
		return nil, err
	}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == TokOp && p.tok.Text == ";" {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.Kind != TokEOF {
		return nil, p.errorf("unexpected input after statement: %q", p.tok.Text)
	}
	return st, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(src string) (*Select, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*Select)
	if !ok {
		return nil, fmt.Errorf("expected a SELECT statement")
	}
	return sel, nil
}

func (p *Parser) advance() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("parse error at offset %d: %s", p.tok.Pos, fmt.Sprintf(format, args...))
}

// isKeyword reports whether the lookahead is the given keyword
// (case-insensitive).
func (p *Parser) isKeyword(kw string) bool {
	return p.tok.Kind == TokIdent && strings.EqualFold(p.tok.Text, kw)
}

// acceptKeyword consumes the keyword if present.
func (p *Parser) acceptKeyword(kw string) (bool, error) {
	if p.isKeyword(kw) {
		return true, p.advance()
	}
	return false, nil
}

// expectKeyword consumes the keyword or fails.
func (p *Parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errorf("expected %s, got %q", strings.ToUpper(kw), p.tok.Text)
	}
	return p.advance()
}

// acceptOp consumes the operator token if present.
func (p *Parser) acceptOp(op string) (bool, error) {
	if p.tok.Kind == TokOp && p.tok.Text == op {
		return true, p.advance()
	}
	return false, nil
}

// expectOp consumes the operator or fails.
func (p *Parser) expectOp(op string) error {
	if p.tok.Kind != TokOp || p.tok.Text != op {
		return p.errorf("expected %q, got %q", op, p.tok.Text)
	}
	return p.advance()
}

// expectIdent consumes and returns an identifier.
func (p *Parser) expectIdent(what string) (string, error) {
	if p.tok.Kind != TokIdent {
		return "", p.errorf("expected %s, got %q", what, p.tok.Text)
	}
	name := p.tok.Text
	return name, p.advance()
}

func (p *Parser) parseStatement() (Statement, error) {
	switch {
	case p.isKeyword("select"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if !p.isKeyword("union") {
			return sel, nil
		}
		u := &Union{Terms: []*Select{sel}}
		for p.isKeyword("union") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			all, err := p.acceptKeyword("all")
			if err != nil {
				return nil, err
			}
			next, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			u.All = append(u.All, all)
			u.Terms = append(u.Terms, next)
		}
		for _, term := range u.Terms[:len(u.Terms)-1] {
			if len(term.OrderBy) > 0 || term.Limit >= 0 {
				return nil, fmt.Errorf("ORDER BY/LIMIT are only allowed on the final term of a UNION")
			}
		}
		return u, nil
	case p.isKeyword("create"):
		return p.parseCreateTable()
	case p.isKeyword("insert"):
		return p.parseInsert()
	case p.isKeyword("drop"):
		return p.parseDropTable()
	default:
		return nil, p.errorf("expected SELECT, CREATE, INSERT, or DROP, got %q", p.tok.Text)
	}
}

func (p *Parser) parseCreateTable() (*CreateTable, error) {
	if err := p.expectKeyword("create"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("table"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []ColumnSpec
	for {
		cn, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		ct, err := p.expectIdent("column type")
		if err != nil {
			return nil, err
		}
		// Tolerate a length spec like VARCHAR(64).
		if ok, err := p.acceptOp("("); err != nil {
			return nil, err
		} else if ok {
			if p.tok.Kind != TokNumber {
				return nil, p.errorf("expected length in type, got %q", p.tok.Text)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
		cols = append(cols, ColumnSpec{Name: cn, Type: ct})
		if ok, err := p.acceptOp(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CreateTable{Name: name, Columns: cols}, nil
}

func (p *Parser) parseDropTable() (*DropTable, error) {
	if err := p.expectKeyword("drop"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("table"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

func (p *Parser) parseInsert() (*Insert, error) {
	if err := p.expectKeyword("insert"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []types.Value
		for {
			v, err := p.parseLiteralValue()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if ok, err := p.acceptOp(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if ok, err := p.acceptOp(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	return ins, nil
}

// parseLiteralValue parses a literal for INSERT (number, string, NULL,
// optionally negated number).
func (p *Parser) parseLiteralValue() (types.Value, error) {
	neg := false
	if ok, err := p.acceptOp("-"); err != nil {
		return types.Value{}, err
	} else if ok {
		neg = true
	}
	switch {
	case p.tok.Kind == TokNumber:
		v, err := parseNumber(p.tok.Text)
		if err != nil {
			return types.Value{}, p.errorf("%v", err)
		}
		if err := p.advance(); err != nil {
			return types.Value{}, err
		}
		if neg {
			if v.Kind == types.KindInt {
				v.I = -v.I
			} else {
				v.F = -v.F
			}
		}
		return v, nil
	case p.tok.Kind == TokString:
		if neg {
			return types.Value{}, p.errorf("cannot negate a string literal")
		}
		s := p.tok.Text
		return types.Str(s), p.advance()
	case p.isKeyword("null"):
		if neg {
			return types.Value{}, p.errorf("cannot negate NULL")
		}
		return types.Null(), p.advance()
	default:
		return types.Value{}, p.errorf("expected literal, got %q", p.tok.Text)
	}
}

func parseNumber(text string) (types.Value, error) {
	if strings.ContainsRune(text, '.') {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return types.Value{}, fmt.Errorf("bad number %q", text)
		}
		return types.Float(f), nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return types.Value{}, fmt.Errorf("bad number %q", text)
	}
	return types.Int(n), nil
}

func (p *Parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	if ok, err := p.acceptKeyword("distinct"); err != nil {
		return nil, err
	} else if ok {
		sel.Distinct = true
	}
	// Projection list.
	if ok, err := p.acceptOp("*"); err != nil {
		return nil, err
	} else if ok {
		sel.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if ok, err := p.acceptKeyword("as"); err != nil {
				return nil, err
			} else if ok {
				alias, err := p.expectIdent("alias")
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.tok.Kind == TokIdent && !p.isReservedAfterItem() {
				// Bare alias: SELECT Count C
				item.Alias = p.tok.Text
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			sel.Items = append(sel.Items, item)
			if ok, err := p.acceptOp(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
	}
	// FROM.
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		tn, err := p.expectIdent("table name")
		if err != nil {
			return nil, err
		}
		ref := TableRef{Table: tn}
		if p.tok.Kind == TokIdent && !p.isReservedAfterItem() {
			ref.Alias = p.tok.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		sel.From = append(sel.From, ref)
		if ok, err := p.acceptOp(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	// WHERE.
	if ok, err := p.acceptKeyword("where"); err != nil {
		return nil, err
	} else if ok {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	// GROUP BY.
	if p.isKeyword("group") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if ok, err := p.acceptOp(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
	}
	// ORDER BY.
	if p.isKeyword("order") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if ok, err := p.acceptKeyword("desc"); err != nil {
				return nil, err
			} else if ok {
				item.Desc = true
			} else if ok, err := p.acceptKeyword("asc"); err != nil {
				return nil, err
			} else if ok {
				// explicit ASC
				_ = ok
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if ok, err := p.acceptOp(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
	}
	// LIMIT.
	if ok, err := p.acceptKeyword("limit"); err != nil {
		return nil, err
	} else if ok {
		if p.tok.Kind != TokNumber {
			return nil, p.errorf("expected number after LIMIT, got %q", p.tok.Text)
		}
		n, err := strconv.Atoi(p.tok.Text)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %q", p.tok.Text)
		}
		sel.Limit = n
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return sel, nil
}

// isReservedAfterItem reports whether the current identifier is a keyword
// that terminates an item list (so it must not be consumed as a bare alias).
func (p *Parser) isReservedAfterItem() bool {
	for _, kw := range [...]string{"from", "where", "group", "order", "limit", "as", "and", "or", "not", "desc", "asc", "select", "by", "union", "all", "is", "null"} {
		if strings.EqualFold(p.tok.Text, kw) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Expression parsing (precedence climbing)

// parseExpr parses a full boolean expression: OR-level.
func (p *Parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.isKeyword("not") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.isKeyword("is") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		not, err := p.acceptKeyword("not")
		if err != nil {
			return nil, err
		}
		if !p.isKeyword("null") {
			return nil, p.errorf("expected NULL after IS, got %q", p.tok.Text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &IsNull{E: left, Not: not}, nil
	}
	if p.tok.Kind == TokOp {
		switch p.tok.Text {
		case "=", "<>", "<", "<=", ">", ">=":
			op := p.tok.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokOp && (p.tok.Text == "+" || p.tok.Text == "-") {
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokOp && (p.tok.Text == "*" || p.tok.Text == "/") {
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.tok.Kind == TokOp && p.tok.Text == "-" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.Kind == TokNumber:
		v, err := parseNumber(p.tok.Text)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		return &Lit{Val: v}, p.advance()
	case p.tok.Kind == TokString:
		s := p.tok.Text
		return &Lit{Val: types.Str(s)}, p.advance()
	case p.isKeyword("null"):
		return &Lit{Val: types.Null()}, p.advance()
	case p.tok.Kind == TokOp && p.tok.Text == "(":
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.tok.Kind == TokIdent:
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Aggregate function call?
		if p.tok.Kind == TokOp && p.tok.Text == "(" && aggregateNames[strings.ToUpper(name)] {
			if err := p.advance(); err != nil {
				return nil, err
			}
			fc := &FuncCall{Name: strings.ToUpper(name)}
			if ok, err := p.acceptOp("*"); err != nil {
				return nil, err
			} else if ok {
				fc.Star = true
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = []Expr{arg}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// Qualified column?
		if p.tok.Kind == TokOp && p.tok.Text == "." {
			if err := p.advance(); err != nil {
				return nil, err
			}
			col, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			return &Col{Table: name, Name: col}, nil
		}
		return &Col{Name: name}, nil
	default:
		return nil, p.errorf("expected expression, got %q", p.tok.Text)
	}
}
