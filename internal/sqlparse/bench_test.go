package sqlparse

import "testing"

var benchQueries = []string{
	`SELECT Name, Count FROM States, WebCount WHERE Name = T1 ORDER BY Count DESC`,
	`SELECT Name, Count, URL, Rank FROM States, WebCount, WebPages
	 WHERE Name = WebCount.T1 AND WebCount.T2 = 'computer'
	   AND Name = WebPages.T1 AND WebPages.T2 = 'beaches' AND WebPages.Rank <= 2`,
	`SELECT Capital, C.Count, Name, S.Count FROM States, WebCount C, WebCount S
	 WHERE Capital = C.T1 AND Name = S.T1 AND C.Count > S.Count`,
	`SELECT Name, COUNT(*) AS n, SUM(Population) FROM States GROUP BY Name ORDER BY n DESC LIMIT 10`,
}

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchQueries[i%len(benchQueries)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTokenize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Tokenize(benchQueries[i%len(benchQueries)]); err != nil {
			b.Fatal(err)
		}
	}
}
