// Package sqlparse implements the lexer and recursive-descent parser for
// the engine's SQL subset: CREATE TABLE, INSERT, DROP TABLE, and
// select-project-join queries with WHERE, GROUP BY, ORDER BY, LIMIT,
// DISTINCT, and aggregate functions. This mirrors (and modestly extends)
// the SQL subset of Redbase, the substrate DBMS of the WSQ/DSQ paper.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind uint8

// The token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokOp    // = <> != < <= > >= + - * / ( ) , . ;
	TokParam // %1 %2 ... (used inside search expressions, passed through)
)

// Token is one lexical token with position information for error messages.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// Lexer splits SQL text into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// SQL line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return Token{Kind: TokEOF, Pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.pos], Pos: start}, nil
	case c >= '0' && c <= '9':
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			if ch < '0' || ch > '9' {
				break
			}
			l.pos++
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '\'':
		// SQL string literal with '' escaping.
		var sb strings.Builder
		l.pos++
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("unterminated string literal at offset %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return Token{Kind: TokOp, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return Token{Kind: TokOp, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return Token{Kind: TokOp, Text: "<>", Pos: start}, nil
		}
		return Token{}, fmt.Errorf("unexpected character '!' at offset %d", start)
	case strings.ContainsRune("=+-*/(),.;", rune(c)):
		l.pos++
		return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
	case c == '%':
		// Parameter marker %N (appears in quoted search expressions only,
		// but tolerate it bare for robustness).
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		return Token{Kind: TokParam, Text: l.src[start:l.pos], Pos: start}, nil
	default:
		return Token{}, fmt.Errorf("unexpected character %q at offset %d", c, start)
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// Tokenize lexes the entire input (used by tests).
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
