package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func parseSel(t *testing.T, src string) *Select {
	t.Helper()
	sel, err := ParseSelect(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return sel
}

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize(`SELECT Name, Count FROM States WHERE Name = 'it''s' AND Rank <= 20 -- comment
		ORDER BY Count DESC`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "it's") {
		t.Errorf("escaped quote: %q", joined)
	}
	if !strings.Contains(joined, "<=") {
		t.Errorf("two-char operator: %q", joined)
	}
	if strings.Contains(joined, "comment") {
		t.Errorf("comment should be skipped: %q", joined)
	}
	if kinds[len(kinds)-1] != TokEOF {
		t.Error("missing EOF")
	}
}

func TestLexerOperators(t *testing.T) {
	toks, err := Tokenize(`a <> b != c < d > e >= f`)
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tk := range toks {
		if tk.Kind == TokOp {
			ops = append(ops, tk.Text)
		}
	}
	want := []string{"<>", "<>", "<", ">", ">="}
	if strings.Join(ops, ",") != strings.Join(want, ",") {
		t.Errorf("ops = %v, want %v", ops, want)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := Tokenize("'unterminated"); err == nil {
		t.Error("unterminated string")
	}
	if _, err := Tokenize("a @ b"); err == nil {
		t.Error("bad character")
	}
	if _, err := Tokenize("a ! b"); err == nil {
		t.Error("lone bang")
	}
}

func TestParseQuery1(t *testing.T) {
	sel := parseSel(t, `Select Name, Count From States, WebCount Where Name = T1 Order By Count Desc`)
	if len(sel.Items) != 2 || sel.Items[0].Expr.String() != "Name" {
		t.Errorf("items: %+v", sel.Items)
	}
	if len(sel.From) != 2 || sel.From[0].Table != "States" || sel.From[1].Table != "WebCount" {
		t.Errorf("from: %+v", sel.From)
	}
	if sel.Where == nil || sel.Where.String() != "(Name = T1)" {
		t.Errorf("where: %v", sel.Where)
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc || sel.OrderBy[0].Expr.String() != "Count" {
		t.Errorf("order by: %+v", sel.OrderBy)
	}
	if sel.Limit != -1 {
		t.Error("limit default")
	}
}

func TestParseQuery2Alias(t *testing.T) {
	sel := parseSel(t, `Select Name, Count/Population As C From States, WebCount Where Name = T1 Order By C Desc`)
	if sel.Items[1].Alias != "C" {
		t.Errorf("alias: %+v", sel.Items[1])
	}
	if sel.Items[1].Expr.String() != "(Count / Population)" {
		t.Errorf("expr: %v", sel.Items[1].Expr)
	}
}

func TestParseQuery4TableAliases(t *testing.T) {
	sel := parseSel(t, `Select Capital, C.Count, Name, S.Count
		From States, WebCount C, WebCount S
		Where Capital = C.T1 and Name = S.T1 and C.Count > S.Count`)
	if sel.From[1].Alias != "C" || sel.From[2].Alias != "S" {
		t.Errorf("aliases: %+v", sel.From)
	}
	if sel.Items[1].Expr.String() != "C.Count" {
		t.Errorf("qualified item: %v", sel.Items[1].Expr)
	}
	w := sel.Where.String()
	if !strings.Contains(w, "(C.Count > S.Count)") {
		t.Errorf("where: %s", w)
	}
}

func TestParseQuery6(t *testing.T) {
	sel := parseSel(t, `Select Name, AV.URL
		From States, WebPages_AV AV, WebPages_Google G
		Where Name = AV.T1 and Name = G.T1 and AV.Rank <= 5 and G.Rank <= 5 and AV.URL = G.URL`)
	if sel.From[1].Table != "WebPages_AV" || sel.From[1].Alias != "AV" {
		t.Errorf("from: %+v", sel.From[1])
	}
}

func TestParseStarDistinctLimit(t *testing.T) {
	sel := parseSel(t, `SELECT DISTINCT * FROM Sigs LIMIT 10`)
	if !sel.Star || !sel.Distinct || sel.Limit != 10 {
		t.Errorf("star/distinct/limit: %+v", sel)
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := parseSel(t, `SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3`)
	// AND binds tighter than OR.
	if got := sel.Where.String(); got != "((a = 1) OR ((b = 2) AND (c = 3)))" {
		t.Errorf("precedence: %s", got)
	}
	sel = parseSel(t, `SELECT a FROM t WHERE NOT a = 1 AND b = 2`)
	if got := sel.Where.String(); got != "(NOT((a = 1)) AND (b = 2))" {
		t.Errorf("NOT precedence: %s", got)
	}
	sel = parseSel(t, `SELECT a + b * c FROM t`)
	if got := sel.Items[0].Expr.String(); got != "(a + (b * c))" {
		t.Errorf("arith precedence: %s", got)
	}
	sel = parseSel(t, `SELECT (a + b) * c FROM t`)
	if got := sel.Items[0].Expr.String(); got != "((a + b) * c)" {
		t.Errorf("parens: %s", got)
	}
}

func TestParseIsNull(t *testing.T) {
	sel := parseSel(t, `SELECT a FROM t WHERE a IS NULL AND t.b IS NOT NULL`)
	if got := sel.Where.String(); got != "((a IS NULL) AND (t.b IS NOT NULL))" {
		t.Errorf("is null: %s", got)
	}
	// Binds tighter than NOT, looser than arithmetic.
	sel = parseSel(t, `SELECT a FROM t WHERE NOT a + 1 IS NULL`)
	if got := sel.Where.String(); got != "NOT(((a + 1) IS NULL))" {
		t.Errorf("is null precedence: %s", got)
	}
	// IS must be followed by [NOT] NULL.
	if _, err := Parse(`SELECT a FROM t WHERE a IS 5`); err == nil {
		t.Error("IS 5 should not parse")
	}
	if _, err := Parse(`SELECT a FROM t WHERE a IS NOT 5`); err == nil {
		t.Error("IS NOT 5 should not parse")
	}
}

func TestParseAggregates(t *testing.T) {
	sel := parseSel(t, `SELECT Name, COUNT(*), SUM(Count) FROM t GROUP BY Name ORDER BY Name`)
	if len(sel.GroupBy) != 1 {
		t.Fatalf("group by: %+v", sel.GroupBy)
	}
	fc, ok := sel.Items[1].Expr.(*FuncCall)
	if !ok || !fc.Star || fc.Name != "COUNT" {
		t.Errorf("count(*): %+v", sel.Items[1].Expr)
	}
	fc2, ok := sel.Items[2].Expr.(*FuncCall)
	if !ok || fc2.Name != "SUM" || len(fc2.Args) != 1 {
		t.Errorf("sum: %+v", sel.Items[2].Expr)
	}
}

func TestParseNumbers(t *testing.T) {
	sel := parseSel(t, `SELECT a FROM t WHERE x = 3.25 AND y = -2 AND z = 10`)
	w := sel.Where.String()
	for _, want := range []string{"3.25", "-(2)", "10"} {
		if !strings.Contains(w, want) {
			t.Errorf("where %q missing %q", w, want)
		}
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse(`CREATE TABLE States (Name VARCHAR(64), Population INT, Capital VARCHAR)`)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := st.(*CreateTable)
	if !ok {
		t.Fatalf("wrong type %T", st)
	}
	if ct.Name != "States" || len(ct.Columns) != 3 {
		t.Errorf("%+v", ct)
	}
	if ct.Columns[0].Type != "VARCHAR" {
		t.Errorf("length spec should be tolerated: %+v", ct.Columns[0])
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse(`INSERT INTO States VALUES ('Utah', 2100000, 'Salt Lake City'), ('Iowa', -5, NULL)`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("%+v", ins)
	}
	if ins.Rows[0][0].S != "Utah" || ins.Rows[0][1].I != 2100000 {
		t.Errorf("row0: %v", ins.Rows[0])
	}
	if ins.Rows[1][1].I != -5 {
		t.Errorf("negative literal: %v", ins.Rows[1][1])
	}
	if ins.Rows[1][2].Kind != types.KindNull {
		t.Errorf("null literal: %v", ins.Rows[1][2])
	}
}

func TestParseDrop(t *testing.T) {
	st, err := Parse(`DROP TABLE States;`)
	if err != nil {
		t.Fatal(err)
	}
	if st.(*DropTable).Name != "States" {
		t.Error("drop name")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT a`,                     // missing FROM
		`SELECT a FROM`,                // missing table
		`SELECT a FROM t WHERE`,        // missing predicate
		`SELECT a FROM t ORDER Count`,  // missing BY
		`SELECT a FROM t LIMIT -1`,     // negative limit
		`SELECT a FROM t extra junk()`, // trailing garbage
		`INSERT INTO t VALUES ('a'`,    // unclosed
		`CREATE TABLE t ()`,            // no columns
		`UPDATE t SET a = 1`,           // unsupported statement
		`INSERT INTO t VALUES (-'x')`,  // negated string
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should error", src)
		}
	}
}

func TestParseSelectRejectsNonSelect(t *testing.T) {
	if _, err := ParseSelect(`DROP TABLE t`); err == nil {
		t.Error("ParseSelect should reject non-SELECT")
	}
}

func TestParseBareAlias(t *testing.T) {
	sel := parseSel(t, `SELECT Count C FROM t`)
	if sel.Items[0].Alias != "C" {
		t.Errorf("bare alias: %+v", sel.Items[0])
	}
	// Keywords must not be eaten as aliases.
	sel = parseSel(t, `SELECT Count FROM t WHERE Count > 1`)
	if sel.Items[0].Alias != "" {
		t.Errorf("FROM eaten as alias: %+v", sel.Items[0])
	}
}

func TestParseSemicolonAndWhitespace(t *testing.T) {
	if _, err := Parse("  SELECT a FROM t ;  "); err != nil {
		t.Errorf("trailing semicolon: %v", err)
	}
	if _, err := Parse("SELECT a FROM t ; SELECT b FROM u"); err == nil {
		t.Error("multiple statements should error")
	}
}

func TestParseOrderByMultipleKeys(t *testing.T) {
	sel := parseSel(t, `SELECT Name, URL, Rank FROM t ORDER BY Name ASC, Rank DESC`)
	if len(sel.OrderBy) != 2 || sel.OrderBy[0].Desc || !sel.OrderBy[1].Desc {
		t.Errorf("order keys: %+v", sel.OrderBy)
	}
}
