package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser's crash-freedom contract: arbitrary input
// must produce a statement or an error, never a panic, unbounded recursion,
// or a nil statement with a nil error.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT 1",
		"SELECT * FROM States",
		"SELECT Name, Count FROM States, WebCount WHERE Name = T1 AND T2 = 'scuba diving'",
		"SELECT Name, Count FROM States, WebCount WHERE Name = T1 ORDER BY Count DESC LIMIT 3",
		"SELECT DISTINCT a.x AS y FROM t a GROUP BY y",
		"SELECT Name FROM Sigs UNION SELECT Name FROM CSFields",
		"CREATE TABLE T (A INT, B VARCHAR)",
		"INSERT INTO T VALUES (1, 'x'), (2, 'y')",
		"DROP TABLE T",
		"SELECT (1 + 2) * -3 / 4 - 5 % 2",
		"SELECT a FROM t WHERE NOT (a < 1 OR a >= 'x') AND b <> c",
		"SELECT '" + strings.Repeat("quoted ", 40) + "'",
		"SELECT",
		"SELECT 'unterminated",
		"SELECT ((((((((((1))))))))))",
		";;;",
		"\x00\xff SELECT \t\n 1e999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err == nil && st == nil {
			t.Fatalf("Parse(%q) returned nil statement and nil error", src)
		}
		// The lexer alone must uphold the same contract.
		if _, lerr := Tokenize(src); lerr == nil && err != nil {
			// A statement can be lexable yet unparsable; nothing to check.
			_ = lerr
		}
	})
}
