package plan

import (
	"testing"
	"time"

	"repro/internal/async"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/schema"
	"repro/internal/sqlparse"
	"repro/internal/types"
)

func estimate(t *testing.T, p *Planner, sql string, m CostModel) Estimate {
	t.Helper()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	op, err := p.PlanSelect(sel)
	if err != nil {
		t.Fatal(err)
	}
	return EstimatePlan(op, m)
}

func TestEstimateCallCounts(t *testing.T) {
	p := newPlanner(t) // 3 states
	m := DefaultCostModel()
	// One WebCount call per state.
	e := estimate(t, p, `SELECT Name, Count FROM States, WebCount WHERE Name = T1`, m)
	if e.ExternalCalls != 3 {
		t.Errorf("calls = %g, want 3", e.ExternalCalls)
	}
	if e.Cardinality != 3 {
		t.Errorf("card = %g, want 3 (WebCount fanout 1)", e.Cardinality)
	}
	// WebPages fanout = rank limit.
	e = estimate(t, p, `SELECT Name, URL FROM States, WebPages WHERE Name = T1 AND Rank <= 5`, m)
	if e.ExternalCalls != 3 {
		t.Errorf("calls = %g", e.ExternalCalls)
	}
	if e.Cardinality != 15 {
		t.Errorf("card = %g, want 15 (3 states x rank 5)", e.Cardinality)
	}
}

func TestEstimateFigure7Hazard(t *testing.T) {
	// A cross-product BELOW the second dependent join multiplies its calls
	// by |R| — the estimator must expose the hazard the paper's Figure 7
	// discusses.
	p := newPlanner(t)
	mustCreateR(t, p)
	m := DefaultCostModel()
	good := estimate(t, p,
		`SELECT Name FROM States, WebCount C1, R, WebCount C2 WHERE Name = C1.T1 AND Name = C2.T1`, m)
	// C1: 3 calls. Cross with R (3 rows) -> 9 tuples. C2: 9 calls. Total 12.
	if good.ExternalCalls != 12 {
		t.Errorf("calls = %g, want 12 (3 + 3x3)", good.ExternalCalls)
	}
	better := estimate(t, p,
		`SELECT Name FROM States, WebCount C1, WebCount C2, R WHERE Name = C1.T1 AND Name = C2.T1`, m)
	if better.ExternalCalls != 6 {
		t.Errorf("calls = %g, want 6 (cross-product last)", better.ExternalCalls)
	}
	if better.SyncLatency >= good.SyncLatency {
		t.Errorf("estimator should prefer the cross-product-last plan: %v vs %v",
			better.SyncLatency, good.SyncLatency)
	}
}

func mustCreateR(t *testing.T, p *Planner) {
	t.Helper()
	tab, err := p.Cat.Create("R", []catalog.ColumnDef{{Name: "V", Type: schema.TInt}})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		if _, err := tab.Insert(types.Tuple{types.Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEstimateAsyncWaves(t *testing.T) {
	p := newPlanner(t)
	m := DefaultCostModel()
	m.MaxConcurrent = 2
	m.CallLatency = 100 * time.Millisecond
	m.CountFactor = 1
	e := estimate(t, p, `SELECT Name, Count FROM States, WebCount WHERE Name = T1`, m)
	// 3 calls, limit 2 -> 2 waves of 100ms.
	if e.SyncLatency != 300*time.Millisecond {
		t.Errorf("sync latency: %v", e.SyncLatency)
	}
	if e.AsyncLatency != 200*time.Millisecond {
		t.Errorf("async latency: %v (want 2 waves)", e.AsyncLatency)
	}
	if e.Improvement < 1.4 || e.Improvement > 1.6 {
		t.Errorf("improvement: %.2f", e.Improvement)
	}
}

func TestEstimateHandlesRewrittenPlans(t *testing.T) {
	p := newPlanner(t)
	sel, err := sqlparse.ParseSelect(`SELECT Name, Count FROM States, WebCount WHERE Name = T1`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := p.PlanSelect(sel)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultCostModel()
	before := EstimatePlan(op, m)
	pump := async.NewPump(8, 8, nil)
	after := EstimatePlan(async.Rewrite(op, pump), m)
	// The rewrite changes when calls run, not how many.
	if before.ExternalCalls != after.ExternalCalls {
		t.Errorf("rewrite changed call estimate: %g -> %g", before.ExternalCalls, after.ExternalCalls)
	}
	if before.Cardinality != after.Cardinality {
		t.Errorf("rewrite changed cardinality estimate: %g -> %g", before.Cardinality, after.Cardinality)
	}
}

func TestEstimatePredictionMatchesExecution(t *testing.T) {
	// The estimator's call-count prediction must match the executor's
	// actual behavior for dependent-join plans.
	p := newPlanner(t)
	sel, _ := sqlparse.ParseSelect(`SELECT Name, Count FROM States, WebCount WHERE Name = T1`)
	op, err := p.PlanSelect(sel)
	if err != nil {
		t.Fatal(err)
	}
	est := EstimatePlan(op, DefaultCostModel())
	ctx := exec.NewContext()
	rows, err := exec.Run(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	if float64(ctx.Stats.ExternalCalls) != est.ExternalCalls {
		t.Errorf("predicted %g calls, executed %d", est.ExternalCalls, ctx.Stats.ExternalCalls)
	}
	if float64(len(rows)) != est.Cardinality {
		t.Errorf("predicted %g rows, got %d", est.Cardinality, len(rows))
	}
}
