// Package plan lowers parsed SQL into executable operator trees.
//
// The planner follows the Redbase substrate's conventions (Section 5 of
// the WSQ/DSQ paper): the FROM-clause order fixes the join order and
// there is no cost-based plan search. One deliberate departure from the
// paper's substrate ("the only available join technique is nested-loop
// join"): when a stored-stored join predicate contains cross-input
// equality conjuncts and the build side has more than one row, the
// planner emits a HashJoin (and, under DISTINCT projections that need
// nothing from the build side, a HashSemiJoin) — output order and
// results are identical to the nested-loop plan by construction.
// Its one sophisticated job is virtual-table binding analysis (Section 3):
// for each WebCount/WebPages/WebFetch reference it identifies the equality
// predicates that bind the table's input columns — to constants or to
// columns of earlier FROM entries — turning them into the parameters of a
// dependent join over an EVScan, synthesizing the default SearchExp
// ("%1 near %2 near ... near %n") and the default Rank < 20 guard when the
// query does not supply them.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/sqlparse"
	"repro/internal/types"
	"repro/internal/vtab"
)

// Planner lowers statements against a catalog and a virtual-table registry.
type Planner struct {
	Cat   *catalog.Catalog
	VTabs *vtab.Registry
	// Cache, when non-nil, memoizes EVScan calls ([HN96]).
	Cache exec.ResultCache
	// DefaultRankLimit guards WebPages scans with no Rank predicate
	// (paper default: Rank < 20).
	DefaultRankLimit int
	// DisableHashJoins forces every stored-stored join to the paper's
	// nested-loop algorithm (and suppresses the semi-join rewrite). The
	// plan-equivalence fuzzer (internal/fuzzqe) flips this to execute the
	// same query under both join strategies and compare the results.
	DisableHashJoins bool
}

// New builds a planner.
func New(cat *catalog.Catalog, vtabs *vtab.Registry) *Planner {
	return &Planner{Cat: cat, VTabs: vtabs, DefaultRankLimit: vtab.DefaultRankLimit}
}

// scope is one FROM entry's resolved schema.
type scope struct {
	alias  string
	schema *schema.Schema
	// virtual metadata (nil for stored tables)
	def *vtab.Def
	// stored table (nil for virtual tables)
	table *catalog.Table
}

// PlanSelect lowers a SELECT statement to an operator tree.
func (p *Planner) PlanSelect(sel *sqlparse.Select) (exec.Operator, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("FROM clause is required")
	}
	// Resolve FROM entries.
	scopes := make([]*scope, 0, len(sel.From))
	seen := make(map[string]bool)
	for _, ref := range sel.From {
		alias := ref.EffectiveAlias()
		key := strings.ToLower(alias)
		if seen[key] {
			return nil, fmt.Errorf("duplicate table alias %s", alias)
		}
		seen[key] = true
		if p.VTabs != nil && p.VTabs.IsVirtual(ref.Table) {
			def, err := p.VTabs.Resolve(ref.Table)
			if err != nil {
				return nil, err
			}
			scopes = append(scopes, &scope{alias: alias, schema: def.InstantiateSchema(alias), def: def})
			continue
		}
		t, ok := p.Cat.Get(ref.Table)
		if !ok {
			return nil, fmt.Errorf("unknown table %s", ref.Table)
		}
		scopes = append(scopes, &scope{alias: alias, schema: t.InstantiateSchema(alias), table: t})
	}

	// Lower WHERE into conjuncts.
	var conjuncts []conjunct
	if sel.Where != nil {
		w, err := p.lowerExpr(sel.Where, scopes)
		if err != nil {
			return nil, err
		}
		for _, c := range expr.SplitConjuncts(w) {
			conjuncts = append(conjuncts, conjunct{e: c})
		}
	}

	// Build the join tree in FROM order.
	var cur exec.Operator
	avail := make(map[schema.AttrID]bool)
	for i, sc := range scopes {
		var err error
		cur, err = p.addFromEntry(cur, sc, i, scopes, conjuncts, avail)
		if err != nil {
			return nil, err
		}
		for _, col := range sc.schema.Cols {
			avail[col.ID] = true
		}
		// Attach every now-evaluable, unconsumed conjunct.
		var pending []expr.Expr
		for k := range conjuncts {
			c := &conjuncts[k]
			if c.consumed {
				continue
			}
			if attrsSubset(expr.Attrs(c.e), avail) {
				pending = append(pending, c.e)
				c.consumed = true
			}
		}
		if len(pending) > 0 {
			cur = exec.NewFilter(cur, expr.NewAnd(pending...))
		}
	}
	for _, c := range conjuncts {
		if !c.consumed {
			return nil, fmt.Errorf("predicate %s references unknown columns", c.e)
		}
	}

	// Aggregation.
	items := sel.Items
	hasAgg := len(sel.GroupBy) > 0
	for _, it := range items {
		if _, ok := it.Expr.(*sqlparse.FuncCall); ok {
			hasAgg = true
		}
	}
	var projSchemaSrc *schema.Schema // schema the projection resolves against
	if hasAgg {
		if sel.Star {
			return nil, fmt.Errorf("SELECT * cannot be combined with aggregation")
		}
		var err error
		cur, err = p.buildAggregate(cur, sel, scopes, &items)
		if err != nil {
			return nil, err
		}
		projSchemaSrc = cur.Schema()
	}

	// Projection.
	var outSchema *schema.Schema
	if sel.Star {
		outSchema = cur.Schema()
	} else {
		exprs := make([]expr.Expr, 0, len(items))
		cols := make([]schema.Column, 0, len(items))
		for i, it := range items {
			var e expr.Expr
			var err error
			if hasAgg {
				e, err = lowerAgainstSchema(it.Expr, projSchemaSrc)
			} else {
				e, err = p.lowerExpr(it.Expr, scopes)
			}
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, e)
			cols = append(cols, projectionColumn(e, it, i))
		}
		outSchema = schema.New(cols...)
		cur = exec.NewProject(cur, exprs, outSchema)
	}

	// DISTINCT. An existence-only hash join underneath degrades to a
	// semi-join.
	if sel.Distinct {
		d := exec.NewDistinct(cur)
		if !p.DisableHashJoins {
			trySemiJoin(d)
		}
		cur = d
	}

	// ORDER BY (resolved against the projection's output, so aliases work).
	if len(sel.OrderBy) > 0 {
		keys := make([]exec.SortKey, 0, len(sel.OrderBy))
		for _, oi := range sel.OrderBy {
			e, err := lowerAgainstSchema(oi.Expr, outSchema)
			if err != nil {
				return nil, fmt.Errorf("ORDER BY: %w", err)
			}
			keys = append(keys, exec.SortKey{Expr: e, Desc: oi.Desc})
		}
		cur = exec.NewSort(cur, keys)
	}

	// LIMIT.
	if sel.Limit >= 0 {
		cur = exec.NewLimit(cur, sel.Limit)
	}
	return cur, nil
}

// PlanUnion lowers a UNION of SELECTs. SQL UNION (without ALL) is planned
// as Distinct over a bag union — deliberately, because duplicate
// elimination clashes with ReqSync percolation while the bag union does
// not (Section 4.5.2 of the paper); the async rewriter then produces the
// paper's "Select Distinct over a non-clashing bag union" shape for free.
func (p *Planner) PlanUnion(u *sqlparse.Union) (exec.Operator, error) {
	if len(u.Terms) < 2 || len(u.All) != len(u.Terms)-1 {
		return nil, fmt.Errorf("malformed UNION")
	}
	var orderBy []sqlparse.OrderItem
	limit := -1
	var cur exec.Operator
	for i, term := range u.Terms {
		t := *term
		if i == len(u.Terms)-1 {
			// The final term's ORDER BY / LIMIT apply to the whole union.
			orderBy, limit = t.OrderBy, t.Limit
			t.OrderBy, t.Limit = nil, -1
		}
		op, err := p.PlanSelect(&t)
		if err != nil {
			return nil, fmt.Errorf("UNION term %d: %w", i+1, err)
		}
		if i == 0 {
			cur = op
			continue
		}
		ua, err := exec.NewUnionAll(cur, op)
		if err != nil {
			return nil, err
		}
		cur = ua
		if !u.All[i-1] {
			cur = exec.NewDistinct(cur)
		}
	}
	if len(orderBy) > 0 {
		keys := make([]exec.SortKey, 0, len(orderBy))
		for _, oi := range orderBy {
			e, err := lowerAgainstSchema(oi.Expr, cur.Schema())
			if err != nil {
				return nil, fmt.Errorf("UNION ORDER BY: %w", err)
			}
			keys = append(keys, exec.SortKey{Expr: e, Desc: oi.Desc})
		}
		cur = exec.NewSort(cur, keys)
	}
	if limit >= 0 {
		cur = exec.NewLimit(cur, limit)
	}
	return cur, nil
}

// conjunct is one WHERE predicate with a consumption mark.
type conjunct struct {
	e        expr.Expr
	consumed bool
}

// addFromEntry extends the left-deep plan with one FROM entry.
func (p *Planner) addFromEntry(cur exec.Operator, sc *scope, idx int, scopes []*scope,
	conjuncts []conjunct, avail map[schema.AttrID]bool) (exec.Operator, error) {
	if sc.def != nil {
		ev, bindDesc, err := p.buildEVScan(sc, conjuncts, avail)
		if err != nil {
			return nil, err
		}
		if cur == nil {
			return ev, nil
		}
		return exec.NewDependentJoin(cur, ev, bindDesc), nil
	}
	scan := exec.NewTableScan(sc.table, sc.schema)
	if cur == nil {
		return scan, nil
	}
	// Conjuncts evaluable over (cur ∪ scan) become the join predicate.
	joinAvail := make(map[schema.AttrID]bool, len(avail)+sc.schema.Len())
	for id := range avail {
		joinAvail[id] = true
	}
	for _, col := range sc.schema.Cols {
		joinAvail[col.ID] = true
	}
	var preds []expr.Expr
	for k := range conjuncts {
		c := &conjuncts[k]
		if c.consumed {
			continue
		}
		a := expr.Attrs(c.e)
		if attrsSubset(a, joinAvail) && referencesAny(a, sc.schema) {
			preds = append(preds, c.e)
			c.consumed = true
		}
	}
	// Equi conjuncts across the two inputs make the join hashable; the
	// exact row count (WSQ's stored relations are small reference tables)
	// gates out degenerate build sides where a hash table cannot beat
	// re-scanning.
	if !p.DisableHashJoins {
		if lk, rk, residual := splitEquiKeys(preds, avail, sc.schema); len(lk) > 0 && hashBuildWorthwhile(sc.table) {
			return exec.NewHashJoin(cur, scan, lk, rk, residual), nil
		}
	}
	return exec.NewNestedLoopJoin(cur, scan, expr.NewAnd(preds...)), nil
}

// splitEquiKeys partitions join conjuncts into cross-input equality
// pairs (left-side expression, right-side expression) and the non-equi
// residual. A conjunct qualifies as a key pair when it is a top-level
// `=` whose operands each reference columns of exactly one input.
func splitEquiKeys(preds []expr.Expr, leftAvail map[schema.AttrID]bool, right *schema.Schema) (lk, rk []expr.Expr, residual expr.Expr) {
	rightAvail := make(map[schema.AttrID]bool, right.Len())
	for _, col := range right.Cols {
		rightAvail[col.ID] = true
	}
	var rest []expr.Expr
	for _, pred := range preds {
		cmp, ok := pred.(*expr.Cmp)
		if !ok || cmp.Op != expr.EQ {
			rest = append(rest, pred)
			continue
		}
		la, ra := expr.Attrs(cmp.L), expr.Attrs(cmp.R)
		switch {
		case len(la) > 0 && len(ra) > 0 && attrsSubset(la, leftAvail) && attrsSubset(ra, rightAvail):
			lk = append(lk, cmp.L)
			rk = append(rk, cmp.R)
		case len(la) > 0 && len(ra) > 0 && attrsSubset(ra, leftAvail) && attrsSubset(la, rightAvail):
			lk = append(lk, cmp.R)
			rk = append(rk, cmp.L)
		default:
			rest = append(rest, pred)
		}
	}
	return lk, rk, expr.NewAnd(rest...)
}

// hashBuildWorthwhile reports whether a hash table over the build side
// can pay for itself: with zero or one stored row the nested loop's
// re-scan is already optimal.
func hashBuildWorthwhile(t *catalog.Table) bool {
	rows, err := t.ScanAll()
	return err == nil && len(rows) > 1
}

// trySemiJoin rewrites Distinct(Project(HashJoin)) in place into
// Distinct(Project(HashSemiJoin)) when the join has no residual
// predicate and the projection references nothing from the build side:
// only existence of a match matters, and the duplicate multiplicity a
// semi-join erases was about to be erased by the DISTINCT anyway.
func trySemiJoin(d *exec.Distinct) {
	pr, ok := d.Child.(*exec.Project)
	if !ok {
		return
	}
	hj, ok := pr.Child.(*exec.HashJoin)
	if !ok || hj.Residual != nil {
		return
	}
	leftAvail := make(map[schema.AttrID]bool, hj.Left.Schema().Len())
	for _, col := range hj.Left.Schema().Cols {
		leftAvail[col.ID] = true
	}
	for _, e := range pr.Exprs {
		if !attrsSubset(expr.Attrs(e), leftAvail) {
			return
		}
	}
	pr.Child = exec.NewHashSemiJoin(hj.Left, hj.Right, hj.LeftKeys, hj.RightKeys)
}

// buildEVScan performs binding analysis for one virtual table reference
// and constructs its EVScan.
func (p *Planner) buildEVScan(sc *scope, conjuncts []conjunct, avail map[schema.AttrID]bool) (*exec.EVScan, string, error) {
	def := sc.def
	numInputs := def.NumInputs()
	inputIdx := make(map[schema.AttrID]int, numInputs)
	for i := 0; i < numInputs; i++ {
		inputIdx[sc.schema.Cols[i].ID] = i
	}
	var rankAttr schema.AttrID
	if def.Kind == vtab.KindWebPages {
		for _, col := range sc.schema.Cols {
			if col.Name == "Rank" {
				rankAttr = col.ID
			}
		}
	}

	bindings := make([]expr.Expr, numInputs)
	var bindDescs []string
	rankLimit := p.DefaultRankLimit
	if rankLimit <= 0 {
		rankLimit = vtab.DefaultRankLimit
	}

	for k := range conjuncts {
		c := &conjuncts[k]
		if c.consumed {
			continue
		}
		cmp, ok := c.e.(*expr.Cmp)
		if !ok {
			continue
		}
		// Input binding: INPUT = expr or expr = INPUT.
		if cmp.Op == expr.EQ {
			if bound, err := p.tryBind(cmp.L, cmp.R, inputIdx, bindings, avail, sc, &bindDescs); err != nil {
				return nil, "", err
			} else if bound {
				c.consumed = true
				continue
			}
			if bound, err := p.tryBind(cmp.R, cmp.L, inputIdx, bindings, avail, sc, &bindDescs); err != nil {
				return nil, "", err
			} else if bound {
				c.consumed = true
				continue
			}
		}
		// Rank limit: Rank <= k or Rank < k against a constant.
		if def.Kind == vtab.KindWebPages {
			if lim, ok := rankBound(cmp, rankAttr); ok {
				if lim < rankLimit {
					rankLimit = lim
				}
				c.consumed = true
				continue
			}
		}
	}

	// Assemble call-argument expressions.
	var inputs []expr.Expr
	switch def.Kind {
	case vtab.KindWebFetch:
		if bindings[0] == nil {
			return nil, "", fmt.Errorf("%s.URL must be bound by a constant or an earlier FROM table", sc.alias)
		}
		inputs = []expr.Expr{bindings[0]}
	default:
		var boundIdx []int
		for i := 1; i < numInputs; i++ {
			if bindings[i] != nil {
				boundIdx = append(boundIdx, i)
			}
		}
		searchExp := bindings[0]
		if searchExp == nil {
			if len(boundIdx) == 0 {
				return nil, "", fmt.Errorf("%s: no search terms bound; bind T1..Tn or SearchExp via equality with a constant or an earlier FROM table", sc.alias)
			}
			searchExp = expr.NewLiteral(types.Str(def.DefaultSearchExp(boundIdx)))
		}
		inputs = append(inputs, searchExp)
		for i := 1; i < numInputs; i++ {
			if bindings[i] != nil {
				inputs = append(inputs, bindings[i])
			} else {
				inputs = append(inputs, expr.NewLiteral(types.Null()))
			}
		}
		if def.Kind == vtab.KindWebPages {
			inputs = append(inputs, expr.NewLiteral(types.Int(int64(rankLimit))))
		}
	}

	ev := exec.NewEVScan(vtab.NewSource(def), inputs, sc.schema)
	ev.Cache = p.Cache
	return ev, strings.Join(bindDescs, ", "), nil
}

// tryBind attempts to interpret "lhs = rhs" as a binding of one of the
// virtual table's input columns (lhs) to an expression over constants and
// earlier FROM entries (rhs).
func (p *Planner) tryBind(lhs, rhs expr.Expr, inputIdx map[schema.AttrID]int,
	bindings []expr.Expr, avail map[schema.AttrID]bool, sc *scope, bindDescs *[]string) (bool, error) {
	cr, ok := lhs.(*expr.ColRef)
	if !ok {
		return false, nil
	}
	i, isInput := inputIdx[cr.ID]
	if !isInput {
		return false, nil
	}
	rhsAttrs := expr.Attrs(rhs)
	if !attrsSubset(rhsAttrs, avail) {
		// The binding references a column that is not yet available. If it
		// belongs to this very table or a later FROM entry, the join order
		// makes the input unbindable — a planning error in Redbase's
		// user-specified-join-order world.
		if _, selfRef := inputIdx[firstAttr(rhsAttrs)]; selfRef {
			return false, nil
		}
		return false, fmt.Errorf("input %s.%s is bound to %s, which is not available before %s in the FROM order",
			sc.alias, cr.Col.Name, rhs, sc.alias)
	}
	if bindings[i] != nil {
		return false, nil // already bound; keep the predicate as a filter
	}
	bindings[i] = rhs
	if len(rhsAttrs) > 0 {
		*bindDescs = append(*bindDescs, fmt.Sprintf("%s + %s.%s", rhs, sc.alias, cr.Col.Name))
	}
	return true, nil
}

func firstAttr(set map[schema.AttrID]bool) schema.AttrID {
	for id := range set {
		return id
	}
	return 0
}

// rankBound extracts a constant upper bound from "Rank <= k" / "Rank < k"
// (or the mirrored ">=/>" forms).
func rankBound(cmp *expr.Cmp, rankAttr schema.AttrID) (int, bool) {
	col, colLeft := cmp.L.(*expr.ColRef)
	lit, litRight := cmp.R.(*expr.Literal)
	op := cmp.Op
	if !colLeft || !litRight {
		col, colLeft = cmp.R.(*expr.ColRef)
		lit, litRight = cmp.L.(*expr.Literal)
		if !colLeft || !litRight {
			return 0, false
		}
		// k >= Rank means Rank <= k.
		switch op {
		case expr.GE:
			op = expr.LE
		case expr.GT:
			op = expr.LT
		default:
			return 0, false
		}
	}
	if col.ID != rankAttr {
		return 0, false
	}
	n, err := lit.Val.AsInt()
	if err != nil {
		return 0, false
	}
	switch op {
	case expr.LE:
		return int(n), true
	case expr.LT:
		return int(n) - 1, true
	default:
		return 0, false
	}
}

// buildAggregate lowers GROUP BY and aggregate select items into an
// Aggregate operator and rewrites the select items to reference its
// output. Aggregates are supported as whole select items (SELECT Name,
// COUNT(*) ... GROUP BY Name).
func (p *Planner) buildAggregate(cur exec.Operator, sel *sqlparse.Select, scopes []*scope,
	items *[]sqlparse.SelectItem) (exec.Operator, error) {
	var groupExprs []expr.Expr
	var groupCols []schema.Column
	groupKey := make(map[string]schema.Column)
	for _, g := range sel.GroupBy {
		e, err := p.lowerExpr(g, scopes)
		if err != nil {
			return nil, err
		}
		var col schema.Column
		if cr, ok := e.(*expr.ColRef); ok {
			col = cr.Col
		} else {
			col = schema.Column{ID: schema.NewAttrID(), Name: g.String(), Type: e.Type()}
		}
		groupExprs = append(groupExprs, e)
		groupCols = append(groupCols, col)
		groupKey[strings.ToLower(g.String())] = col
	}

	var aggs []exec.AggSpec
	newItems := make([]sqlparse.SelectItem, 0, len(*items))
	for i, it := range *items {
		fc, isAgg := it.Expr.(*sqlparse.FuncCall)
		if !isAgg {
			// Must match a GROUP BY expression.
			if _, ok := groupKey[strings.ToLower(it.Expr.String())]; !ok {
				return nil, fmt.Errorf("select item %s must appear in GROUP BY or be an aggregate", it.Expr)
			}
			newItems = append(newItems, it)
			continue
		}
		spec, err := p.lowerAggregate(fc, scopes, i)
		if err != nil {
			return nil, err
		}
		aggs = append(aggs, spec)
		name := it.Alias
		if name == "" {
			name = fc.String()
		}
		spec.OutCol.Name = name
		aggs[len(aggs)-1].OutCol.Name = name
		newItems = append(newItems, sqlparse.SelectItem{Expr: &sqlparse.Col{Name: name}, Alias: it.Alias})
	}
	*items = newItems
	return exec.NewAggregate(cur, groupExprs, groupCols, aggs), nil
}

// lowerAggregate converts one aggregate call into an AggSpec.
func (p *Planner) lowerAggregate(fc *sqlparse.FuncCall, scopes []*scope, ordinal int) (exec.AggSpec, error) {
	var fn exec.AggFunc
	switch strings.ToUpper(fc.Name) {
	case "COUNT":
		if fc.Star {
			fn = exec.AggCountStar
		} else {
			fn = exec.AggCount
		}
	case "SUM":
		fn = exec.AggSum
	case "MIN":
		fn = exec.AggMin
	case "MAX":
		fn = exec.AggMax
	case "AVG":
		fn = exec.AggAvg
	default:
		return exec.AggSpec{}, fmt.Errorf("unsupported aggregate %s", fc.Name)
	}
	spec := exec.AggSpec{Func: fn}
	outType := schema.TInt
	if !fc.Star {
		arg, err := p.lowerExpr(fc.Args[0], scopes)
		if err != nil {
			return exec.AggSpec{}, err
		}
		spec.Arg = arg
		switch fn {
		case exec.AggSum, exec.AggMin, exec.AggMax:
			outType = arg.Type()
		case exec.AggAvg:
			outType = schema.TFloat
		}
	}
	spec.OutCol = schema.Column{ID: schema.NewAttrID(), Name: fmt.Sprintf("agg%d", ordinal), Type: outType}
	return spec, nil
}

// projectionColumn derives the output column for one select item.
func projectionColumn(e expr.Expr, it sqlparse.SelectItem, i int) schema.Column {
	if cr, ok := e.(*expr.ColRef); ok {
		col := cr.Col
		if it.Alias != "" {
			col.Name = it.Alias
			col.Table = ""
		}
		return col
	}
	name := it.Alias
	if name == "" {
		name = fmt.Sprintf("col%d", i+1)
	}
	return schema.Column{ID: schema.NewAttrID(), Name: name, Type: e.Type()}
}

// lowerExpr resolves a parser expression against the FROM scopes.
func (p *Planner) lowerExpr(e sqlparse.Expr, scopes []*scope) (expr.Expr, error) {
	switch n := e.(type) {
	case *sqlparse.Lit:
		return expr.NewLiteral(n.Val), nil
	case *sqlparse.Col:
		col, err := resolveColumn(n, scopes)
		if err != nil {
			return nil, err
		}
		return expr.NewColRef(col), nil
	case *sqlparse.Unary:
		inner, err := p.lowerExpr(n.E, scopes)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "NOT":
			return expr.NewNot(inner), nil
		case "-":
			return expr.NewArith(expr.Sub, expr.NewLiteral(types.Int(0)), inner), nil
		default:
			return nil, fmt.Errorf("unknown unary operator %s", n.Op)
		}
	case *sqlparse.Binary:
		l, err := p.lowerExpr(n.L, scopes)
		if err != nil {
			return nil, err
		}
		r, err := p.lowerExpr(n.R, scopes)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "AND":
			return expr.NewAnd(l, r), nil
		case "OR":
			return expr.NewOr(l, r), nil
		case "=":
			return expr.NewCmp(expr.EQ, l, r), nil
		case "<>":
			return expr.NewCmp(expr.NE, l, r), nil
		case "<":
			return expr.NewCmp(expr.LT, l, r), nil
		case "<=":
			return expr.NewCmp(expr.LE, l, r), nil
		case ">":
			return expr.NewCmp(expr.GT, l, r), nil
		case ">=":
			return expr.NewCmp(expr.GE, l, r), nil
		case "+":
			return expr.NewArith(expr.Add, l, r), nil
		case "-":
			return expr.NewArith(expr.Sub, l, r), nil
		case "*":
			return expr.NewArith(expr.Mul, l, r), nil
		case "/":
			return expr.NewArith(expr.Div, l, r), nil
		default:
			return nil, fmt.Errorf("unknown operator %s", n.Op)
		}
	case *sqlparse.IsNull:
		inner, err := p.lowerExpr(n.E, scopes)
		if err != nil {
			return nil, err
		}
		return expr.NewIsNull(inner, n.Not), nil
	case *sqlparse.FuncCall:
		return nil, fmt.Errorf("aggregate %s is only allowed as a top-level select item", n)
	default:
		return nil, fmt.Errorf("unsupported expression %T", e)
	}
}

// resolveColumn finds a (possibly qualified) column across the FROM scopes.
func resolveColumn(c *sqlparse.Col, scopes []*scope) (schema.Column, error) {
	if c.Table != "" {
		for _, sc := range scopes {
			if strings.EqualFold(sc.alias, c.Table) {
				return sc.schema.Resolve("", c.Name)
			}
		}
		// No scope alias matches (e.g. ORDER BY over a projection schema):
		// resolve by the columns' own table qualifiers.
		for _, sc := range scopes {
			if col, err := sc.schema.Resolve(c.Table, c.Name); err == nil {
				return col, nil
			}
		}
		return schema.Column{}, fmt.Errorf("unknown table or alias %s", c.Table)
	}
	var found []schema.Column
	for _, sc := range scopes {
		if col, err := sc.schema.Resolve("", c.Name); err == nil {
			found = append(found, col)
		}
	}
	switch len(found) {
	case 0:
		return schema.Column{}, fmt.Errorf("unknown column %s", c.Name)
	case 1:
		return found[0], nil
	default:
		return schema.Column{}, fmt.Errorf("ambiguous column %s (qualify it with a table alias)", c.Name)
	}
}

// lowerAgainstSchema resolves a parser expression against a single flat
// schema (used for ORDER BY against the projection output and for
// post-aggregation select items).
func lowerAgainstSchema(e sqlparse.Expr, s *schema.Schema) (expr.Expr, error) {
	p := &Planner{}
	return p.lowerExpr(e, []*scope{{schema: s}})
}

// attrsSubset reports a ⊆ b.
func attrsSubset(a, b map[schema.AttrID]bool) bool {
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// referencesAny reports whether the attribute set touches any column of s.
func referencesAny(a map[schema.AttrID]bool, s *schema.Schema) bool {
	for _, col := range s.Cols {
		if a[col.ID] {
			return true
		}
	}
	return false
}
