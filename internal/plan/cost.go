package plan

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/async"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/vtab"
)

// The paper leaves "fully addressing cost-based query optimization in the
// presence of asynchronous iteration" to future work, but enumerates what
// such a model must capture (Section 4.5.4): the number of external calls a
// plan issues, how many of them asynchronous iteration can overlap, the
// buffering/patching work ReqSync adds, and the extra work optimistic
// execution performs when results are ultimately canceled.
//
// CostModel + EstimatePlan implement that model at the granularity the
// paper reasons at: expected cardinalities per operator, expected external
// calls, and predicted wall-clock latency under sequential vs asynchronous
// execution. The estimator is advisory — the engine never prunes plans with
// it — but it quantifies exactly the tradeoffs of Figures 7 and 8, and its
// predictions are validated against measured runtimes in the test suite.

// CostModel parameterizes plan cost estimation.
type CostModel struct {
	// CallLatency is the expected latency of one external call.
	CallLatency time.Duration
	// CountFactor scales WebCount calls relative to WebPages calls.
	CountFactor float64
	// MaxConcurrent bounds overlapped calls (the ReqPump limit).
	MaxConcurrent int
	// EqSelectivity and CmpSelectivity are the classic textbook defaults
	// for equality and range predicates.
	EqSelectivity  float64
	CmpSelectivity float64
}

// DefaultCostModel mirrors the bench-latency environment.
func DefaultCostModel() CostModel {
	return CostModel{
		CallLatency:    25 * time.Millisecond,
		CountFactor:    0.8,
		MaxConcurrent:  32,
		EqSelectivity:  0.1,
		CmpSelectivity: 0.4,
	}
}

// Estimate summarizes a plan's predicted behavior.
type Estimate struct {
	// Cardinality is the expected number of output tuples.
	Cardinality float64
	// ExternalCalls is the expected number of search-engine calls.
	ExternalCalls float64
	// CallSeconds is the summed expected latency of those calls.
	CallSeconds float64
	// SyncLatency is the predicted wall time executing sequentially
	// (every call on the critical path).
	SyncLatency time.Duration
	// AsyncLatency is the predicted wall time with asynchronous iteration:
	// calls overlap up to MaxConcurrent, so latency is paid in waves.
	AsyncLatency time.Duration
	// Improvement = SyncLatency / AsyncLatency.
	Improvement float64
}

// String renders the estimate for EXPLAIN COST output.
func (e Estimate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rows≈%.0f calls≈%.0f sync≈%v async≈%v (%.1fx)",
		e.Cardinality, e.ExternalCalls,
		e.SyncLatency.Round(time.Millisecond), e.AsyncLatency.Round(time.Millisecond),
		e.Improvement)
	return b.String()
}

// nodeEstimate is the per-operator accumulator.
type nodeEstimate struct {
	card  float64 // output cardinality
	calls float64 // external calls issued in this subtree (per one Open)
	secs  float64 // summed call latency in this subtree
}

// EstimatePlan walks the plan bottom-up and derives an Estimate. It
// understands both synchronous plans (EVScan) and rewritten plans
// (AEVScan/ReqSync); call counts are identical by design — asynchrony
// changes *when* calls run, not how many (modulo the Figure 7 hazard,
// which the estimator surfaces through per-binding call multiplication).
func EstimatePlan(op exec.Operator, m CostModel) Estimate {
	if m.MaxConcurrent <= 0 {
		m.MaxConcurrent = 1
	}
	n := estimateNode(op, m)
	est := Estimate{
		Cardinality:   n.card,
		ExternalCalls: n.calls,
		CallSeconds:   n.secs,
	}
	est.SyncLatency = time.Duration(n.secs * float64(time.Second))
	// Asynchronous execution pays latency in waves of MaxConcurrent.
	if n.calls > 0 {
		waves := float64(int((n.calls + float64(m.MaxConcurrent) - 1) / float64(m.MaxConcurrent)))
		meanCall := n.secs / n.calls
		est.AsyncLatency = time.Duration(waves * meanCall * float64(time.Second))
		if est.AsyncLatency > 0 {
			est.Improvement = float64(est.SyncLatency) / float64(est.AsyncLatency)
		}
	}
	return est
}

func estimateNode(op exec.Operator, m CostModel) nodeEstimate {
	switch o := op.(type) {
	case *exec.TableScan:
		return nodeEstimate{card: float64(storedRowCount(o))}
	case *exec.ValuesScan:
		return nodeEstimate{card: float64(len(o.Rows))}
	case *exec.EVScan:
		return estimateEVScan(o.Source, o.Inputs, m)
	case *async.AEVScan:
		return estimateEVScan(o.Source, o.Inputs, m)
	case nil:
		return nodeEstimate{}
	case *exec.Filter:
		in := estimateNode(o.Child, m)
		in.card *= m.CmpSelectivity
		return in
	case *exec.Project:
		return estimateNode(o.Child, m)
	case *exec.Sort:
		return estimateNode(o.Child, m)
	case *exec.Limit:
		in := estimateNode(o.Child, m)
		if float64(o.N) < in.card {
			in.card = float64(o.N)
		}
		return in
	case *exec.Distinct:
		in := estimateNode(o.Child, m)
		in.card *= 0.8
		return in
	case *exec.Aggregate:
		in := estimateNode(o.Child, m)
		if len(o.GroupBy) == 0 {
			in.card = 1
		} else {
			in.card /= 3
			if in.card < 1 {
				in.card = 1
			}
		}
		return in
	case *async.ReqSync:
		return estimateNode(o.Child, m)
	case *exec.HashJoin:
		l := estimateNode(o.Left, m)
		r := estimateNode(o.Right, m)
		// Same cardinality model as a predicated nested loop: the operator
		// swap changes cost, not output.
		return nodeEstimate{
			card:  l.card * r.card * m.EqSelectivity,
			calls: l.calls + r.calls,
			secs:  l.secs + r.secs,
		}
	case *exec.HashSemiJoin:
		l := estimateNode(o.Left, m)
		r := estimateNode(o.Right, m)
		// Each probe tuple survives at most once.
		card := l.card * m.EqSelectivity
		if card > l.card {
			card = l.card
		}
		return nodeEstimate{
			card:  card,
			calls: l.calls + r.calls,
			secs:  l.secs + r.secs,
		}
	case *exec.NestedLoopJoin:
		l := estimateNode(o.Left, m)
		r := estimateNode(o.Right, m)
		out := nodeEstimate{
			card:  l.card * r.card,
			calls: l.calls + r.calls,
			secs:  l.secs + r.secs,
		}
		if o.Pred != nil {
			out.card *= m.EqSelectivity
		}
		return out
	case *exec.DependentJoin:
		l := estimateNode(o.Left, m)
		r := estimateNode(o.Right, m)
		// The right subtree re-opens once per left tuple: its calls (and
		// latency) multiply by the outer cardinality — this is exactly how
		// the Figure 7 plan's |R|-fold redundant calls become visible.
		return nodeEstimate{
			card:  l.card * r.card,
			calls: l.calls + l.card*r.calls,
			secs:  l.secs + l.card*r.secs,
		}
	default:
		// Unknown operator: pass through the first child, if any.
		kids := op.Children()
		if len(kids) == 1 {
			return estimateNode(kids[0], m)
		}
		return nodeEstimate{card: 1}
	}
}

// estimateEVScan predicts one external scan's fanout and cost per Open.
func estimateEVScan(src exec.ExternalSource, inputs []expr.Expr, m CostModel) nodeEstimate {
	secs := m.CallLatency.Seconds()
	fanout := 1.0
	if s, ok := src.(*vtab.Source); ok {
		switch s.Def.Kind {
		case vtab.KindWebCount:
			secs *= m.CountFactor
		case vtab.KindWebPages:
			fanout = float64(rankLimitOf(inputs))
		}
	}
	return nodeEstimate{card: fanout, calls: 1, secs: secs}
}

// rankLimitOf extracts the trailing rank-limit literal from a WebPages
// scan's inputs, defaulting to the paper's guard of 20.
func rankLimitOf(inputs []expr.Expr) int {
	if len(inputs) == 0 {
		return vtab.DefaultRankLimit
	}
	if lit, ok := inputs[len(inputs)-1].(*expr.Literal); ok {
		if n, err := lit.Val.AsInt(); err == nil && n > 0 {
			return int(n)
		}
	}
	return vtab.DefaultRankLimit
}

// storedRowCount counts a stored table's live rows (WSQ's stored relations
// are small reference tables, so an exact count is cheaper than keeping
// statistics).
func storedRowCount(s *exec.TableScan) int {
	rows, err := s.Table.ScanAll()
	if err != nil {
		return 0
	}
	return len(rows)
}
