package plan

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/sqlparse"
	"repro/internal/types"
	"repro/internal/vtab"
)

// stubEngine provides deterministic counts and pages for planner tests.
type stubEngine struct{ name string }

func (s *stubEngine) Name() string { return s.name }
func (s *stubEngine) Count(q string) (int64, error) {
	return int64(len(q)), nil
}
func (s *stubEngine) Search(q string, k int) ([]search.Result, error) {
	var out []search.Result
	for i := 1; i <= k && i <= 3; i++ {
		out = append(out, search.Result{URL: q + "/u", Rank: i, Date: "1999-01-01"})
	}
	return out, nil
}
func (s *stubEngine) Fetch(url string) (string, error) { return "<html>" + url + "</html>", nil }

func newPlanner(t *testing.T) *Planner {
	t.Helper()
	cat, err := catalog.Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	states, err := cat.Create("States", []catalog.ColumnDef{
		{Name: "Name", Type: schema.TString},
		{Name: "Population", Type: schema.TInt},
		{Name: "Capital", Type: schema.TString},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []types.Tuple{
		{types.Str("Utah"), types.Int(2100), types.Str("Salt Lake City")},
		{types.Str("Iowa"), types.Int(2862), types.Str("Des Moines")},
		{types.Str("Ohio"), types.Int(11209), types.Str("Columbus")},
	} {
		if _, err := states.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	er := search.NewRegistry()
	er.Register(&stubEngine{name: "altavista"}, "AV")
	er.Register(&stubEngine{name: "google"}, "G")
	return New(cat, vtab.NewRegistry(er))
}

func planSQL(t *testing.T, p *Planner, sql string) exec.Operator {
	t.Helper()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	op, err := p.PlanSelect(sel)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	return op
}

func planErr(t *testing.T, p *Planner, sql string) error {
	t.Helper()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.PlanSelect(sel)
	if err == nil {
		t.Fatalf("plan %q should fail", sql)
	}
	return err
}

func runPlan(t *testing.T, op exec.Operator) []types.Tuple {
	t.Helper()
	rows, err := exec.Run(exec.NewContext(), op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestPlanSimpleScan(t *testing.T) {
	p := newPlanner(t)
	op := planSQL(t, p, `SELECT * FROM States`)
	if exec.Shape(op) != "Scan" {
		t.Errorf("shape: %s", exec.Shape(op))
	}
	if len(runPlan(t, op)) != 3 {
		t.Error("rows")
	}
}

func TestPlanFilterProjection(t *testing.T) {
	p := newPlanner(t)
	op := planSQL(t, p, `SELECT Name FROM States WHERE Population > 2500`)
	if got := exec.Shape(op); got != "Project(Select(Scan))" {
		t.Errorf("shape: %s", got)
	}
	rows := runPlan(t, op)
	if len(rows) != 2 {
		t.Errorf("rows: %v", rows)
	}
	for _, r := range rows {
		if len(r) != 1 {
			t.Errorf("projection width: %v", r)
		}
	}
}

func TestPlanQuery1ShapeMatchesFigure(t *testing.T) {
	p := newPlanner(t)
	op := planSQL(t, p, `SELECT Name, Count FROM States, WebCount WHERE Name = T1 ORDER BY Count DESC`)
	// Sort(Project(DependentJoin(Scan, EVScan))) — Figure 2 plus the
	// projection our planner always emits for explicit select lists.
	if got := exec.Shape(op); got != "Sort(Project(Dependent Join(Scan,EVScan)))" {
		t.Fatalf("shape: %s", got)
	}
	rows := runPlan(t, op)
	if len(rows) != 3 {
		t.Fatalf("rows: %v", rows)
	}
	// Counts come from the stub (len of query = len of state name); Ohio,
	// Utah, Iowa all length 4 — verify descending order anyway.
	for i := 1; i < len(rows); i++ {
		if rows[i-1][1].Compare(rows[i][1]) < 0 {
			t.Errorf("sort order: %v", rows)
		}
	}
}

func TestPlanBindingToConstant(t *testing.T) {
	p := newPlanner(t)
	op := planSQL(t, p, `SELECT Name, Count FROM States, WebCount WHERE Name = T1 AND T2 = 'four corners'`)
	rows := runPlan(t, op)
	if len(rows) != 3 {
		t.Fatalf("rows: %v", rows)
	}
	// Stub count = len("NAME near four corners").
	for _, r := range rows {
		wantQ := r[0].AsString() + " near four corners"
		if r[1].I != int64(len(wantQ)) {
			t.Errorf("default SearchExp %%1 near %%2 not used: %v", r)
		}
	}
}

func TestPlanExplicitSearchExp(t *testing.T) {
	p := newPlanner(t)
	op := planSQL(t, p, `SELECT Name, Count FROM States, WebCount
		WHERE SearchExp = '"%1" AND politics' AND Name = T1`)
	rows := runPlan(t, op)
	for _, r := range rows {
		wantQ := `"` + r[0].AsString() + `" AND politics`
		if r[1].I != int64(len(wantQ)) {
			t.Errorf("explicit SearchExp ignored: %v (want len %d)", r, len(wantQ))
		}
	}
}

func TestPlanRankLimitExtraction(t *testing.T) {
	p := newPlanner(t)
	op := planSQL(t, p, `SELECT Name, URL, Rank FROM States, WebPages WHERE Name = T1 AND Rank <= 2`)
	rows := runPlan(t, op)
	if len(rows) != 6 { // 3 states x 2 ranks
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if n, _ := r[2].AsInt(); n > 2 {
			t.Errorf("rank limit violated: %v", r)
		}
	}
	// Strict bound Rank < 2 means limit 1.
	op = planSQL(t, p, `SELECT Name, URL, Rank FROM States, WebPages WHERE Name = T1 AND Rank < 2`)
	if got := len(runPlan(t, op)); got != 3 {
		t.Errorf("strict rank bound rows: %d", got)
	}
}

func TestPlanDefaultRankLimit(t *testing.T) {
	p := newPlanner(t)
	p.DefaultRankLimit = 3
	op := planSQL(t, p, `SELECT Name, URL FROM States, WebPages WHERE Name = T1`)
	rows := runPlan(t, op)
	if len(rows) != 9 { // capped by the default guard (stub returns <= 3)
		t.Errorf("default guard rows: %d", len(rows))
	}
}

func TestPlanQuery4TwoOccurrences(t *testing.T) {
	p := newPlanner(t)
	op := planSQL(t, p, `SELECT Capital, C.Count, Name, S.Count
		FROM States, WebCount C, WebCount S
		WHERE Capital = C.T1 AND Name = S.T1 AND C.Count > S.Count`)
	rows := runPlan(t, op)
	// Stub count = len(name): capitals longer than state names win.
	// "Salt Lake City"(14) > "Utah"(4), "Des Moines"(10) > "Iowa"(4),
	// "Columbus"(8) > "Ohio"(4) — all three.
	if len(rows) != 3 {
		t.Fatalf("rows: %v", rows)
	}
	for _, r := range rows {
		if r[1].I <= r[3].I {
			t.Errorf("retained predicate not applied: %v", r)
		}
	}
}

func TestPlanEngineSuffixes(t *testing.T) {
	p := newPlanner(t)
	op := planSQL(t, p, `SELECT Name, AV.URL FROM States, WebPages_AV AV, WebPages_Google G
		WHERE Name = AV.T1 AND Name = G.T1 AND AV.Rank <= 1 AND G.Rank <= 1 AND AV.URL = G.URL`)
	rows := runPlan(t, op)
	// Stub returns identical URLs for both engines, so every state joins.
	if len(rows) != 3 {
		t.Fatalf("rows: %v", rows)
	}
	shape := exec.Shape(op)
	if !strings.Contains(shape, "Dependent Join(Dependent Join(Scan,EVScan),EVScan)") {
		t.Errorf("stacked dependent joins: %s", shape)
	}
}

func TestPlanUnboundInputErrors(t *testing.T) {
	p := newPlanner(t)
	err := planErr(t, p, `SELECT Name, Count FROM States, WebCount ORDER BY Count DESC`)
	if !strings.Contains(err.Error(), "no search terms bound") {
		t.Errorf("error: %v", err)
	}
}

func TestPlanJoinOrderViolationErrors(t *testing.T) {
	p := newPlanner(t)
	// WebCount appears BEFORE States in FROM: T1 cannot be bound.
	err := planErr(t, p, `SELECT Name, Count FROM WebCount, States WHERE Name = T1`)
	if !strings.Contains(err.Error(), "FROM order") {
		t.Errorf("error: %v", err)
	}
}

func TestPlanVirtualFirstWithConstants(t *testing.T) {
	p := newPlanner(t)
	// A virtual table first in FROM is fine when bound by constants.
	op := planSQL(t, p, `SELECT Count FROM WebCount WHERE T1 = 'California'`)
	rows := runPlan(t, op)
	if len(rows) != 1 || rows[0][0].I != int64(len("California")) {
		t.Fatalf("rows: %v", rows)
	}
}

func TestPlanAggregates(t *testing.T) {
	p := newPlanner(t)
	op := planSQL(t, p, `SELECT Capital, COUNT(*) AS n, SUM(Population) AS s
		FROM States GROUP BY Capital ORDER BY n DESC`)
	rows := runPlan(t, op)
	if len(rows) != 3 {
		t.Fatalf("groups: %v", rows)
	}
	for _, r := range rows {
		if r[1].I != 1 {
			t.Errorf("count per capital: %v", r)
		}
	}
	// Global aggregate.
	op = planSQL(t, p, `SELECT COUNT(*) FROM States`)
	rows = runPlan(t, op)
	if len(rows) != 1 || rows[0][0].I != 3 {
		t.Fatalf("global count: %v", rows)
	}
	// Non-grouped select item must be rejected.
	planErr(t, p, `SELECT Name, COUNT(*) FROM States GROUP BY Capital`)
	// Star with aggregation is rejected.
	planErr(t, p, `SELECT * FROM States GROUP BY Capital`)
}

func TestPlanDistinctAndLimit(t *testing.T) {
	p := newPlanner(t)
	op := planSQL(t, p, `SELECT DISTINCT Capital FROM States LIMIT 2`)
	if got := exec.Shape(op); got != "Limit(Distinct(Project(Scan)))" {
		t.Errorf("shape: %s", got)
	}
	if len(runPlan(t, op)) != 2 {
		t.Error("limit")
	}
}

func TestPlanOrderByAlias(t *testing.T) {
	p := newPlanner(t)
	op := planSQL(t, p, `SELECT Name, Count / Population AS C FROM States, WebCount
		WHERE Name = T1 ORDER BY C DESC`)
	rows := runPlan(t, op)
	if len(rows) != 3 {
		t.Fatalf("rows: %v", rows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][1].Compare(rows[i][1]) < 0 {
			t.Errorf("order by alias: %v", rows)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	p := newPlanner(t)
	cases := []string{
		`SELECT * FROM Missing`,
		`SELECT Nope FROM States`,
		`SELECT Name FROM States S, States S`,            // duplicate alias
		`SELECT Name FROM States WHERE Ghost = 1`,        // unknown column
		`SELECT Name FROM States, WebCount WHERE x = T1`, // unknown binding column
	}
	for _, sql := range cases {
		planErr(t, p, sql)
	}
}

func TestPlanAmbiguousColumn(t *testing.T) {
	p := newPlanner(t)
	err := planErr(t, p, `SELECT Count FROM States, WebCount C, WebCount S
		WHERE Capital = C.T1 AND Name = S.T1`)
	if !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("error: %v", err)
	}
}

func TestPlanCrossJoinStoredTables(t *testing.T) {
	p := newPlanner(t)
	op := planSQL(t, p, `SELECT S1.Name, S2.Name FROM States S1, States S2`)
	if got := exec.Shape(op); got != "Project(Cross-Product(Scan,Scan))" {
		t.Errorf("shape: %s", got)
	}
	if len(runPlan(t, op)) != 9 {
		t.Error("cross size")
	}
}

func TestPlanEquiJoinBecomesHashJoin(t *testing.T) {
	p := newPlanner(t)
	op := planSQL(t, p, `SELECT S1.Name FROM States S1, States S2 WHERE S1.Name = S2.Name`)
	if got := exec.Shape(op); got != "Project(Hash Join(Scan,Scan))" {
		t.Errorf("equality should select a hash join: %s", got)
	}
	if len(runPlan(t, op)) != 3 {
		t.Error("join rows")
	}
}

func TestPlanEquiJoinWithResidual(t *testing.T) {
	p := newPlanner(t)
	op := planSQL(t, p, `SELECT S1.Name FROM States S1, States S2
		WHERE S1.Name = S2.Name AND S1.Population < S2.Population + 1`)
	if got := exec.Shape(op); got != "Project(Hash Join(Scan,Scan))" {
		t.Errorf("residual should ride the hash join: %s", got)
	}
	if len(runPlan(t, op)) != 3 {
		t.Error("join rows")
	}
}

func TestPlanNonEquiJoinStaysNestedLoop(t *testing.T) {
	p := newPlanner(t)
	op := planSQL(t, p, `SELECT S1.Name FROM States S1, States S2 WHERE S1.Population < S2.Population`)
	if got := exec.Shape(op); got != "Project(Join(Scan,Scan))" {
		t.Errorf("non-equi predicate must stay nested-loop: %s", got)
	}
	if len(runPlan(t, op)) != 3 {
		t.Error("join rows")
	}
}

func TestPlanTinyBuildSideStaysNestedLoop(t *testing.T) {
	p := newPlanner(t)
	one, err := p.Cat.Create("One", []catalog.ColumnDef{{Name: "Name", Type: schema.TString}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := one.Insert(types.Tuple{types.Str("Utah")}); err != nil {
		t.Fatal(err)
	}
	op := planSQL(t, p, `SELECT S.Name FROM States S, One O WHERE S.Name = O.Name`)
	if got := exec.Shape(op); got != "Project(Join(Scan,Scan))" {
		t.Errorf("single-row build side must stay nested-loop: %s", got)
	}
	if len(runPlan(t, op)) != 1 {
		t.Error("join rows")
	}
}

func TestPlanDistinctExistenceBecomesSemiJoin(t *testing.T) {
	p := newPlanner(t)
	op := planSQL(t, p, `SELECT DISTINCT S1.Name FROM States S1, States S2 WHERE S1.Capital = S2.Capital`)
	if got := exec.Shape(op); got != "Distinct(Project(Hash Semi Join(Scan,Scan)))" {
		t.Errorf("existence-only hash join should degrade to a semi-join: %s", got)
	}
	if len(runPlan(t, op)) != 3 {
		t.Error("semi-join rows")
	}
	// A projection that keeps right-side columns must keep the full join.
	op = planSQL(t, p, `SELECT DISTINCT S2.Name FROM States S1, States S2 WHERE S1.Capital = S2.Capital`)
	if got := exec.Shape(op); got != "Distinct(Project(Hash Join(Scan,Scan)))" {
		t.Errorf("projection needs the build side, no semi-join: %s", got)
	}
}

func TestPlanWebFetch(t *testing.T) {
	p := newPlanner(t)
	op := planSQL(t, p, `SELECT Content, Status FROM WebFetch WHERE URL = 'www.x.com'`)
	rows := runPlan(t, op)
	if len(rows) != 1 || rows[0][1].I != 200 {
		t.Fatalf("webfetch: %v", rows)
	}
	if !strings.Contains(rows[0][0].AsString(), "www.x.com") {
		t.Errorf("content: %v", rows[0])
	}
	// Unbound URL errors at plan time.
	planErr(t, p, `SELECT Content FROM WebFetch`)
}
