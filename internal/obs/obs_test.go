package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("counter after reset = %d, want 0", got)
	}

	var g Gauge
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

// TestHistogramBucketBoundaries pins the "le" semantics exactly: an
// observation equal to a bound lands in that bound's bucket (inclusive
// upper bound), one infinitesimally above lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	obs := []struct {
		v      float64
		bucket int // index into counts (3 finite + 1 inf)
	}{
		{0, 0}, {0.5, 0}, {1, 0}, // at the bound: le=1
		{1.0000001, 1}, {2, 1},
		{2.5, 2}, {5, 2},
		{5.0001, 3}, {100, 3}, // +Inf
	}
	want := make([]int64, 4)
	for _, o := range obs {
		h.Observe(o.v)
		want[o.bucket]++
	}
	s := h.Snapshot()
	if len(s.Counts) != 4 {
		t.Fatalf("len(counts) = %d, want 4", len(s.Counts))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != int64(len(obs)) {
		t.Errorf("count = %d, want %d", s.Count, len(obs))
	}
	var sum float64
	for _, o := range obs {
		sum += o.v
	}
	if math.Abs(s.Sum-sum) > 1e-9 {
		t.Errorf("sum = %g, want %g", s.Sum, sum)
	}
}

func TestHistogramDefaultBucketsSortedDeduped(t *testing.T) {
	h := NewHistogram(nil)
	if len(h.bounds) != len(DefBuckets) {
		t.Fatalf("default bounds = %d, want %d", len(h.bounds), len(DefBuckets))
	}
	h2 := NewHistogram([]float64{1, 1, 2, 2, 3})
	if len(h2.bounds) != 3 {
		t.Fatalf("deduped bounds = %v, want [1 2 3]", h2.bounds)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	// 100 observations uniform in (0, 40]: 25 per bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	if q := h.Quantile(0.5); math.Abs(q-20) > 1.0 {
		t.Errorf("p50 = %g, want ~20", q)
	}
	if q := h.Quantile(0.95); math.Abs(q-38) > 1.5 {
		t.Errorf("p95 = %g, want ~38", q)
	}
	// Everything beyond the last bound clamps to it.
	h2 := NewHistogram([]float64{1})
	h2.Observe(50)
	if q := h2.Quantile(0.99); q != 1 {
		t.Errorf("overflow quantile = %g, want clamp to 1", q)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// run under -race this is the data-race check, and the final counts must
// be exact (no lost increments).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{0.25, 0.5, 0.75})
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i%4) * 0.25) // 0, .25, .5, .75
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	for i, c := range s.Counts[:3] {
		// 0 and .25 both land in bucket 0.
		want := int64(workers * perWorker / 4)
		if i == 0 {
			want *= 2
		}
		if c != want {
			t.Errorf("bucket %d = %d, want %d", i, c, want)
		}
	}
	if s.Counts[3] != 0 {
		t.Errorf("+Inf bucket = %d, want 0", s.Counts[3])
	}
}

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("c_total", "test", "dest")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				vec.With("a").Inc()
				vec.With("b").Add(2)
			}
		}()
	}
	wg.Wait()
	if got := vec.With("a").Value(); got != 8000 {
		t.Errorf("a = %d, want 8000", got)
	}
	if got := vec.With("b").Value(); got != 16000 {
		t.Errorf("b = %d, want 16000", got)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	reg := NewRegistry()
	h1 := reg.Histogram("lat_seconds", "latency", nil)
	h2 := reg.Histogram("lat_seconds", "latency", []float64{1, 2})
	if h1 != h2 {
		t.Fatal("re-registration must return the existing histogram")
	}
	c1 := reg.Counter("n_total", "count")
	if c1 != reg.Counter("n_total", "") {
		t.Fatal("re-registration must return the existing counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	reg.Counter("lat_seconds", "oops")
}

func TestGaugeFuncReplaced(t *testing.T) {
	reg := NewRegistry()
	v := 1.0
	reg.GaugeFunc("live", "live value", func() float64 { return v })
	reg.GaugeFunc("live", "live value", func() float64 { return v * 2 })
	var sb syncBuilder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if want := "live 2\n"; !strings.Contains(sb.String(), want) {
		t.Fatalf("output missing %q:\n%s", want, sb.String())
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1.5})
	h.ObserveDuration(time.Second)
	s := h.Snapshot()
	if s.Counts[1] != 1 {
		t.Fatalf("1s should land in the le=1.5 bucket: %v", s.Counts)
	}
}

type syncBuilder struct {
	mu sync.Mutex
	b  []byte
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.b = append(s.b, p...)
	return len(p), nil
}
func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return string(s.b)
}
