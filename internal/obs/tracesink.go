package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// StoredTrace is one captured query trace as kept by the TraceSink ring
// buffer and served at /debug/traces.
type StoredTrace struct {
	TraceID   string    `json:"trace_id"`
	SQL       string    `json:"sql,omitempty"`
	Node      string    `json:"node,omitempty"`
	StartedAt time.Time `json:"started_at"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Error     string    `json:"error,omitempty"`
	// Slow marks traces captured by the slow-tail policy (elapsed over
	// the server's slow-trace threshold) rather than head sampling.
	Slow bool      `json:"slow,omitempty"`
	Root *SpanJSON `json:"root,omitempty"`
}

// TraceSink retains recent sampled traces in memory for /debug/traces.
// Two segments share the buffer: a ring of the most recent traces
// (whatever head sampling captured) and a smaller retained segment for
// error/slow traces, so an interesting tail capture survives being
// pushed out by ordinary traffic.
type TraceSink struct {
	mu       sync.Mutex
	recent   []*StoredTrace // ring, newest overwrite oldest
	pos      int
	retained []*StoredTrace // error/slow ring
	rpos     int
	total    uint64
}

// DefaultTraceRing is the recent-trace ring size; DefaultRetainedRing
// the error/slow segment size.
const (
	DefaultTraceRing    = 64
	DefaultRetainedRing = 32
)

// NewTraceSink creates a sink with the given ring sizes (<=0 selects
// the defaults).
func NewTraceSink(recent, retained int) *TraceSink {
	if recent <= 0 {
		recent = DefaultTraceRing
	}
	if retained <= 0 {
		retained = DefaultRetainedRing
	}
	return &TraceSink{
		recent:   make([]*StoredTrace, recent),
		retained: make([]*StoredTrace, retained),
	}
}

// Add stores a captured trace. Error and slow traces additionally enter
// the retained segment. Safe for concurrent use.
func (ts *TraceSink) Add(t *StoredTrace) {
	if ts == nil || t == nil {
		return
	}
	ts.mu.Lock()
	ts.recent[ts.pos] = t
	ts.pos = (ts.pos + 1) % len(ts.recent)
	if t.Error != "" || t.Slow {
		ts.retained[ts.rpos] = t
		ts.rpos = (ts.rpos + 1) % len(ts.retained)
	}
	ts.total++
	ts.mu.Unlock()
}

// Snapshot returns the stored traces, newest first, recent segment
// followed by any retained error/slow traces not already in the recent
// segment.
func (ts *TraceSink) Snapshot() []*StoredTrace {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	seen := make(map[*StoredTrace]bool)
	var out []*StoredTrace
	collect := func(ring []*StoredTrace, pos int) {
		for i := 0; i < len(ring); i++ {
			t := ring[(pos-1-i+2*len(ring))%len(ring)]
			if t == nil || seen[t] {
				continue
			}
			seen[t] = true
			out = append(out, t)
		}
	}
	collect(ts.recent, ts.pos)
	collect(ts.retained, ts.rpos)
	return out
}

// Find returns the stored trace with the given trace ID, or nil.
func (ts *TraceSink) Find(traceID string) *StoredTrace {
	for _, t := range ts.Snapshot() {
		if t.TraceID == traceID {
			return t
		}
	}
	return nil
}

// Total returns the number of traces ever added (including ones since
// evicted from the rings).
func (ts *TraceSink) Total() uint64 {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.total
}

// ServeHTTP implements /debug/traces: the stored traces as JSON, newest
// first. ?trace_id=... selects a single trace; ?errors=1 restricts to
// error/slow captures.
func (ts *TraceSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if id := r.URL.Query().Get("trace_id"); id != "" {
		t := ts.Find(id)
		if t == nil {
			http.Error(w, `{"error":"trace not found"}`, http.StatusNotFound)
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(t)
		return
	}
	traces := ts.Snapshot()
	if r.URL.Query().Get("errors") == "1" {
		var kept []*StoredTrace
		for _, t := range traces {
			if t.Error != "" || t.Slow {
				kept = append(kept, t)
			}
		}
		traces = kept
	}
	resp := struct {
		Total  uint64         `json:"total_captured"`
		Traces []*StoredTrace `json:"traces"`
	}{ts.Total(), traces}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}
