package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusFormat pins the exact text exposition layout for
// one of each metric kind. Observed values are exactly representable in
// binary so the _sum line is stable.
func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("wsq_queries_total", "Total queries.").Add(3)
	reg.Gauge("wsq_active", "Active queries.").Set(2)
	reg.GaugeFunc("wsq_uptime_seconds", "Uptime.", func() float64 { return 1.5 })
	h := reg.Histogram("wsq_latency_seconds", "Query latency.", []float64{0.125, 1})
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(5)
	reg.CounterVec("wsq_calls_total", "Calls by destination.", "dest").With("altavista").Add(7)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP wsq_active Active queries.
# TYPE wsq_active gauge
wsq_active 2
# HELP wsq_calls_total Calls by destination.
# TYPE wsq_calls_total counter
wsq_calls_total{dest="altavista"} 7
# HELP wsq_latency_seconds Query latency.
# TYPE wsq_latency_seconds histogram
wsq_latency_seconds_bucket{le="0.125"} 1
wsq_latency_seconds_bucket{le="1"} 2
wsq_latency_seconds_bucket{le="+Inf"} 3
wsq_latency_seconds_sum 5.5625
wsq_latency_seconds_count 3
# HELP wsq_queries_total Total queries.
# TYPE wsq_queries_total counter
wsq_queries_total 3
# HELP wsq_uptime_seconds Uptime.
# TYPE wsq_uptime_seconds gauge
wsq_uptime_seconds 1.5
`
	if got := b.String(); got != want {
		t.Errorf("encoding mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if problems := LintExposition(b.String()); len(problems) != 0 {
		t.Errorf("lint problems: %v", problems)
	}
}

func TestHistogramVecEncoding(t *testing.T) {
	reg := NewRegistry()
	v := reg.HistogramVec("lat_seconds", "Per-dest latency.", []float64{1}, "dest")
	v.With("b").Observe(0.5)
	v.With("a").Observe(2)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Children sorted by label value, each with full bucket/sum/count set.
	iA := strings.Index(out, `lat_seconds_bucket{dest="a",le="1"} 0`)
	iB := strings.Index(out, `lat_seconds_bucket{dest="b",le="1"} 1`)
	if iA < 0 || iB < 0 || iA > iB {
		t.Fatalf("bad vec ordering or content:\n%s", out)
	}
	for _, want := range []string{
		`lat_seconds_bucket{dest="a",le="+Inf"} 1`,
		`lat_seconds_sum{dest="a"} 2`,
		`lat_seconds_count{dest="b"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if problems := LintExposition(out); len(problems) != 0 {
		t.Errorf("lint problems: %v", problems)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("c_total", "", "q").With(`he said "hi"\` + "\n").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `c_total{q="he said \"hi\"\\\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestLintExpositionCatchesGarbage(t *testing.T) {
	if p := LintExposition("this is not prometheus\n"); len(p) == 0 {
		t.Fatal("lint should reject garbage")
	}
	// +Inf bucket / count mismatch.
	bad := "h_bucket{le=\"+Inf\"} 2\nh_count 3\n"
	if p := LintExposition(bad); len(p) == 0 {
		t.Fatal("lint should catch +Inf/count mismatch")
	}
}

func TestLintExpositionAcceptsFullRegistry(t *testing.T) {
	reg := NewRegistry()
	h := reg.HistogramVec("h_seconds", "h", nil, "dest")
	for i := 0; i < 50; i++ {
		h.With("x").Observe(float64(i) * 0.01)
		h.With("y").Observe(float64(i))
	}
	reg.Counter("c_total", "c").Add(5)
	reg.GaugeVec("g", "g", "k").With("v").Set(-3)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if problems := LintExposition(b.String()); len(problems) != 0 {
		t.Errorf("lint problems: %v", problems)
	}
}
