package obs

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// sampleLine matches one well-formed text-exposition sample.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

var leLabel = regexp.MustCompile(`,?le="[^"]*"`)

// exemplarSuffix matches an OpenMetrics exemplar annotation as emitted
// by WriteOpenMetrics: ` # {label="value",...} value`, optionally
// followed by a timestamp.
var exemplarSuffix = regexp.MustCompile(` # \{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\} (NaN|[+-]?Inf|[-+0-9.eE]+)( [-+0-9.eE]+)?$`)

// LintExposition checks a Prometheus text-format payload for structural
// validity: every non-comment line is a well-formed sample, histogram
// buckets are cumulative, and each histogram's +Inf bucket equals its
// _count. OpenMetrics exemplar annotations are accepted on _bucket lines
// (and only there) when well-formed. It returns a list of problems
// (empty = valid). The e2e tests use it to assert /metrics serves a
// scrapeable page without depending on a real Prometheus parser.
func LintExposition(text string) []string {
	var problems []string
	infBuckets := map[string]float64{}
	counts := map[string]float64{}
	lastCum := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.Index(line, " # "); i >= 0 {
			// Exemplar annotation: validate shape, require a _bucket
			// series, then strip it so the sample checks below apply.
			if !exemplarSuffix.MatchString(line[i:]) {
				problems = append(problems, fmt.Sprintf("malformed exemplar on %q", line))
				continue
			}
			if !strings.Contains(line[:i], "_bucket") {
				problems = append(problems, fmt.Sprintf("exemplar on non-bucket series: %q", line))
				continue
			}
			line = line[:i]
		}
		if !sampleLine.MatchString(line) {
			problems = append(problems, fmt.Sprintf("malformed sample line: %q", line))
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		val, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			problems = append(problems, fmt.Sprintf("bad value in %q: %v", line, err))
			continue
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			series := bucketSeries(line, name)
			if val < lastCum[series] {
				problems = append(problems, fmt.Sprintf("non-cumulative buckets at %q", line))
			}
			lastCum[series] = val
			if strings.Contains(line, `le="+Inf"`) {
				infBuckets[series] = val
			}
		case strings.HasSuffix(name, "_count"):
			counts[strings.TrimSuffix(name, "_count")+labelPart(line)] = val
		}
	}
	for series, inf := range infBuckets {
		if c, ok := counts[series]; !ok || c != inf {
			problems = append(problems, fmt.Sprintf("histogram %q: +Inf bucket %g != count %g", series, inf, c))
		}
	}
	return problems
}

// bucketSeries identifies one histogram child: base name plus its labels
// with le stripped.
func bucketSeries(line, name string) string {
	base := strings.TrimSuffix(name, "_bucket")
	labels := leLabel.ReplaceAllString(labelPart(line), "")
	labels = strings.Replace(labels, "{,", "{", 1)
	if labels == "{}" {
		labels = ""
	}
	return base + labels
}

func labelPart(line string) string {
	i := strings.IndexByte(line, '{')
	if i < 0 {
		return ""
	}
	j := strings.LastIndexByte(line, '}')
	return line[i : j+1]
}
