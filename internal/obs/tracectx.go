package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
)

// Distributed tracing context (DESIGN.md §8). A query entering the tier
// is assigned a W3C-traceparent-style identity at the edge (coordinator
// or wsqd); the identity rides the request's context.Context through
// every layer — server admission, shard routing, the pump's call
// timeline, cache peering — and across process hops as a `traceparent`
// HTTP header. Each process contributes Span subtrees; the edge
// stitches them into one tree (SpanJSON.Graft).
//
// The representation is deliberately tiny: a hot path that is not being
// traced pays exactly one context.Value lookup returning nil (no
// allocation, no atomic), mirroring the pump's metrics nil-check idiom.

// TraceCtx is one query's trace identity plus a collector for spans
// produced off the operator tree (remote cache-peer subtrees shipped
// back in response headers). It is carried by context.Context via
// WithTrace/TraceFrom.
//
// The collector is safe for concurrent use: pump execution goroutines
// and peer fetches add spans while the query goroutine runs.
type TraceCtx struct {
	// TraceID is the 32-hex-digit tier-wide identity.
	TraceID string
	// Sampled gates instrumentation: an unsampled TraceCtx behaves like
	// no TraceCtx at all on the recording paths.
	Sampled bool

	mu     sync.Mutex
	remote []*Span
}

// NewTraceCtx mints a sampled trace context with a fresh identity.
func NewTraceCtx() *TraceCtx {
	return &TraceCtx{TraceID: NewTraceID(), Sampled: true}
}

// AddRemote collects a span that does not nest inside the operator tree
// (e.g. a cache-peer round trip, whose remote half arrived in a response
// header). The query's root span adopts collected spans as async
// children when the trace is assembled.
func (t *TraceCtx) AddRemote(s *Span) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	t.remote = append(t.remote, s)
	t.mu.Unlock()
}

// TakeRemote returns and clears the collected off-tree spans.
func (t *TraceCtx) TakeRemote() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := t.remote
	t.remote = nil
	t.mu.Unlock()
	return out
}

type traceCtxKey struct{}

// WithTrace attaches a trace context to ctx.
func WithTrace(ctx context.Context, t *TraceCtx) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the trace context carried by ctx, or nil. This is
// the hot-path gate: it allocates nothing and does nothing but a value
// lookup, so instrumentation sites can call it unconditionally.
func TraceFrom(ctx context.Context) *TraceCtx {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceCtxKey{}).(*TraceCtx)
	return t
}

// SampledTrace returns the trace context only when it is sampled — the
// one check recording sites need.
func SampledTrace(ctx context.Context) *TraceCtx {
	if t := TraceFrom(ctx); t != nil && t.Sampled {
		return t
	}
	return nil
}

// ---------------------------------------------------------------------------
// Identifiers

// idState seeds span/trace identifiers: a process-unique random prefix
// (crypto/rand once at startup; the seeded-randomness rule only governs
// math/rand, and trace IDs must differ across processes by construction)
// plus an atomic counter, so minting an ID on the query path costs two
// atomics and one hex encode — no per-ID entropy read.
var idState struct {
	prefix [8]byte
	ctr    atomic.Uint64
	once   sync.Once
}

func idSeed() {
	idState.once.Do(func() {
		if _, err := crand.Read(idState.prefix[:]); err != nil {
			// Entropy exhaustion is effectively impossible; fall back to a
			// fixed prefix rather than failing query serving.
			copy(idState.prefix[:], "wsqtrace")
		}
	})
}

// NewTraceID returns a 32-hex-digit (16-byte) trace identifier.
func NewTraceID() string {
	idSeed()
	var b [16]byte
	copy(b[:8], idState.prefix[:])
	binary.BigEndian.PutUint64(b[8:], idState.ctr.Add(1))
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a 16-hex-digit (8-byte) span identifier.
func NewSpanID() string {
	idSeed()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], idState.ctr.Add(1)^binary.BigEndian.Uint64(idState.prefix[:]))
	return hex.EncodeToString(b[:])
}

// ---------------------------------------------------------------------------
// Wire format

// TraceparentHeader is the propagation header name (W3C Trace Context).
const TraceparentHeader = "traceparent"

// Traceparent renders the W3C wire form: 00-<trace-id>-<parent-id>-<flags>.
// The span id identifies the sender's active span; callers that do not
// track per-hop span identity pass "" and a fresh id is minted.
func (t *TraceCtx) Traceparent(spanID string) string {
	if spanID == "" {
		spanID = NewSpanID()
	}
	flags := "00"
	if t.Sampled {
		flags = "01"
	}
	return "00-" + t.TraceID + "-" + spanID + "-" + flags
}

// ParseTraceparent parses the W3C header. It accepts version 00 and
// tolerates unknown future versions with the same layout, per spec.
func ParseTraceparent(h string) (traceID, spanID string, sampled bool, err error) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false, fmt.Errorf("traceparent: bad layout %q", h)
	}
	version, tid, sid, flags := h[0:2], h[3:35], h[36:52], h[53:55]
	for _, part := range []string{version, tid, sid, flags} {
		if !isHexLower(part) {
			return "", "", false, fmt.Errorf("traceparent: non-hex field in %q", h)
		}
	}
	if version == "ff" {
		return "", "", false, fmt.Errorf("traceparent: forbidden version ff")
	}
	if tid == "00000000000000000000000000000000" || sid == "0000000000000000" {
		return "", "", false, fmt.Errorf("traceparent: zero id in %q", h)
	}
	var f byte
	fmt.Sscanf(flags, "%02x", &f)
	return tid, sid, f&1 == 1, nil
}

func isHexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Head sampling

// Sampler makes the head-sampling decision for queries that did not ask
// for a trace explicitly: 1 in Every queries is traced. The decision is
// deterministic (an atomic counter, not a random draw) so a fixed
// workload samples a fixed, reproducible subset — in keeping with the
// repo's seeded-randomness discipline.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler returns a sampler tracing 1 in every queries. every <= 0
// never samples; every == 1 samples everything.
func NewSampler(every int) *Sampler {
	if every < 0 {
		every = 0
	}
	return &Sampler{every: uint64(every)}
}

// Sample reports whether this query should be head-sampled.
func (s *Sampler) Sample() bool {
	if s == nil || s.every == 0 {
		return false
	}
	if s.every == 1 {
		return true
	}
	return s.n.Add(1)%s.every == 1
}
