package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleTrace() *Span {
	root := NewSpan("ReqSync", "")
	root.Start = time.Unix(100, 0)
	root.Dur = 100 * time.Millisecond
	root.Rows = 50
	root.Opens = 1
	root.AddExtra("patched", 48)
	root.AddExtra("expanded", 2)
	join := root.AddChild(NewSpan("DependentJoin", ""))
	join.Start = time.Unix(100, 0).Add(time.Millisecond)
	join.Dur = 30 * time.Millisecond
	join.Rows = 50
	scan := join.AddChild(NewSpan("Scan", "States"))
	scan.Dur = 5 * time.Millisecond
	scan.Rows = 50
	aev := join.AddChild(NewSpan("AEVScan", "WebCount"))
	aev.Dur = 10 * time.Millisecond
	aev.Rows = 50
	aev.AddExtra("calls", 50)
	return root
}

func TestSpanShapeAndSelf(t *testing.T) {
	root := sampleTrace()
	if got, want := root.Shape(), "ReqSync(DependentJoin(Scan,AEVScan))"; got != want {
		t.Errorf("shape = %q, want %q", got, want)
	}
	// Self = inclusive minus children: 100ms - 30ms = 70ms for the root;
	// the join excludes its two leaves.
	if got, want := root.Self(), 70*time.Millisecond; got != want {
		t.Errorf("root self = %v, want %v", got, want)
	}
	if got, want := root.Children[0].Self(), 15*time.Millisecond; got != want {
		t.Errorf("join self = %v, want %v", got, want)
	}
}

func TestSpanRender(t *testing.T) {
	out := sampleTrace().Render()
	for _, want := range []string{
		"ReqSync  (time=100.0ms self=70.0ms rows=50 expanded=2 patched=48)",
		"  DependentJoin  (time=30.0ms self=15.0ms rows=50)",
		"    Scan: States  (time=5.0ms",
		"    AEVScan: WebCount  (time=10.0ms self=10.0ms rows=50 calls=50)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Indentation mirrors tree depth.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "    ") {
		t.Errorf("leaf not indented: %q", lines[3])
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	j := sampleTrace().JSON()
	raw, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var back SpanJSON
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Op != "ReqSync" || len(back.Children) != 1 || len(back.Children[0].Children) != 2 {
		t.Fatalf("round-trip lost structure: %s", raw)
	}
	if back.DurUS != 100000 {
		t.Errorf("dur_us = %g, want 100000", back.DurUS)
	}
	// Child starts are offsets from the root's start.
	if got := back.Children[0].StartUS; got != 1000 {
		t.Errorf("child start_us = %g, want 1000", got)
	}
	if back.Children[0].Children[1].Extra["calls"] != 50 {
		t.Errorf("extras lost: %s", raw)
	}
}

func TestWalk(t *testing.T) {
	var ops []string
	sampleTrace().Walk(func(s *Span) { ops = append(ops, s.Op) })
	want := []string{"ReqSync", "DependentJoin", "Scan", "AEVScan"}
	if len(ops) != len(want) {
		t.Fatalf("walk visited %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("walk order %v, want %v", ops, want)
		}
	}
}
