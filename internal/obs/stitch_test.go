package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func sampleTree(start time.Time) *Span {
	root := NewSpan("wsqd.query", "w1")
	root.Start = start
	root.Dur = 10 * time.Millisecond
	child := root.AddChild(&Span{Op: "ReqSync", Start: start.Add(time.Millisecond), Dur: 8 * time.Millisecond})
	child.AddChild(&Span{Op: "AEVScan", Start: start.Add(2 * time.Millisecond), Dur: 3 * time.Millisecond})
	child.AddAsyncChild(&Span{Op: "pump.call", Detail: "altavista", Start: start.Add(2 * time.Millisecond), Dur: 6 * time.Millisecond})
	return root
}

func TestSpanJSONAsyncChildren(t *testing.T) {
	start := time.Now()
	j := sampleTree(start).JSON()

	// Async children serialize inside Children with the async flag, so
	// one wire shape carries both relationships.
	rs := j.Children[0]
	if len(rs.Children) != 2 {
		t.Fatalf("ReqSync wire children = %d, want 2", len(rs.Children))
	}
	var pump *SpanJSON
	for _, c := range rs.Children {
		if c.Op == "pump.call" {
			pump = c
		}
	}
	if pump == nil || !pump.Async {
		t.Fatalf("pump.call child missing or not async: %+v", pump)
	}
	// Self time ignores async children: ReqSync's 8ms minus AEVScan's 3ms.
	if rs.SelfUS != 5000 {
		t.Errorf("ReqSync self = %vus, want 5000", rs.SelfUS)
	}
	if j.CountSpans() != 4 {
		t.Errorf("CountSpans = %d, want 4", j.CountSpans())
	}
	if j.Find("pump.call") == nil {
		t.Error("Find missed the async span")
	}
}

func TestSpanFromJSONRoundTrip(t *testing.T) {
	start := time.Unix(1000, 0)
	orig := sampleTree(start)
	wire, err := json.Marshal(orig.JSON())
	if err != nil {
		t.Fatal(err)
	}
	var decoded SpanJSON
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatal(err)
	}

	base := time.Unix(2000, 0)
	back := SpanFromJSON(&decoded, base)
	if back.Op != "wsqd.query" || !back.Start.Equal(base) {
		t.Fatalf("root reconstructed as %s @ %v", back.Op, back.Start)
	}
	rs := back.Children[0]
	if len(rs.Children) != 1 || rs.Children[0].Op != "AEVScan" {
		t.Fatalf("sync children misplaced: %+v", rs.Children)
	}
	if len(rs.AsyncChildren) != 1 || rs.AsyncChildren[0].Op != "pump.call" {
		t.Fatalf("async children misplaced: %+v", rs.AsyncChildren)
	}
	// Relative offsets preserved: ReqSync started 1ms after the root.
	if got := rs.Start.Sub(back.Start); got != time.Millisecond {
		t.Errorf("ReqSync offset = %v, want 1ms", got)
	}
	if rs.AsyncChildren[0].Dur != 6*time.Millisecond {
		t.Errorf("pump.call dur = %v", rs.AsyncChildren[0].Dur)
	}
}

func TestGraftRebases(t *testing.T) {
	parent := &SpanJSON{Op: "coord.attempt", StartUS: 500, DurUS: 4000}
	remote := &SpanJSON{
		Op: "wsqd.query", StartUS: 0, DurUS: 3000,
		Children: []*SpanJSON{{Op: "Scan", StartUS: 100, DurUS: 200}},
	}
	parent.Graft(remote, "w2")
	if len(parent.Children) != 1 {
		t.Fatal("graft did not attach")
	}
	got := parent.Children[0]
	if got.Node != "w2" {
		t.Errorf("node = %q", got.Node)
	}
	if got.StartUS != 500 || got.Children[0].StartUS != 600 {
		t.Errorf("rebased offsets = %v, %v; want 500, 600", got.StartUS, got.Children[0].StartUS)
	}
	// A node already tagged is preserved.
	parent.Graft(&SpanJSON{Op: "x", Node: "w9"}, "w2")
	if parent.Children[1].Node != "w9" {
		t.Errorf("graft overwrote node: %q", parent.Children[1].Node)
	}
	parent.Graft(nil, "w2") // no-op
	if len(parent.Children) != 2 {
		t.Error("nil graft attached something")
	}
}

func TestTraceSinkHTTP(t *testing.T) {
	sink := NewTraceSink(8, 4)
	id := strings.Repeat("f", 32)
	sink.Add(&StoredTrace{
		TraceID:   id,
		SQL:       "SELECT 1",
		Node:      "w1",
		StartedAt: time.Unix(1000, 0),
		ElapsedMS: 1.5,
		Root:      &SpanJSON{Op: "wsqd.query", DurUS: 1500},
	})
	sink.Add(&StoredTrace{TraceID: strings.Repeat("0", 31) + "1", Error: "boom"})

	rec := httptest.NewRecorder()
	sink.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var list struct {
		Total  int            `json:"total_captured"`
		Traces []*StoredTrace `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Total != 2 || len(list.Traces) != 2 {
		t.Errorf("list: total=%d n=%d", list.Total, len(list.Traces))
	}

	rec = httptest.NewRecorder()
	sink.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace_id="+id, nil))
	var one StoredTrace
	if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil {
		t.Fatal(err)
	}
	if one.TraceID != id || one.Root == nil || one.Root.Op != "wsqd.query" {
		t.Errorf("lookup returned %+v", one)
	}

	rec = httptest.NewRecorder()
	sink.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace_id="+strings.Repeat("9", 32), nil))
	if rec.Code != 404 {
		t.Errorf("missing trace: status %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	sink.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?errors=1", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].Error != "boom" {
		t.Errorf("errors filter returned %d traces", len(list.Traces))
	}
}
