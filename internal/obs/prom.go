package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus encodes every registered metric in the Prometheus text
// exposition format (version 0.0.4): `# HELP` / `# TYPE` headers, one
// sample per line, histograms expanded into cumulative `_bucket{le=...}`
// series plus `_sum` and `_count`. Metric families are emitted in name
// order and vec children in label order, so output is deterministic for
// a given registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, e := range r.snapshot() {
		if err := writeEntry(w, e, false); err != nil {
			return err
		}
	}
	return nil
}

// WriteOpenMetrics encodes the registry like WritePrometheus but with
// OpenMetrics extensions: histogram bucket lines carry exemplars
// (`# {trace_id="..."} value`) when a traced observation landed in the
// bucket, and the payload ends with `# EOF`. The default /metrics page
// stays exemplar-free 0.0.4; scrapers opt in with ?format=openmetrics.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	for _, e := range r.snapshot() {
		if err := writeEntry(w, e, true); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func writeEntry(w io.Writer, e *entry, exemplars bool) error {
	if e.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, escapeHelp(e.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind.prom()); err != nil {
		return err
	}
	switch m := e.metric.(type) {
	case *Counter:
		return writeSample(w, e.name, nil, nil, float64(m.Value()))
	case *Gauge:
		return writeSample(w, e.name, nil, nil, float64(m.Value()))
	case func() float64:
		return writeSample(w, e.name, nil, nil, m())
	case *Histogram:
		return writeHistogram(w, e.name, nil, nil, m.Snapshot(), exemplars)
	case *CounterVec:
		for _, c := range m.snapshotChildren() {
			if err := writeSample(w, e.name, e.labels, c.values, float64(c.metric.Value())); err != nil {
				return err
			}
		}
	case *GaugeVec:
		for _, c := range m.snapshotChildren() {
			if err := writeSample(w, e.name, e.labels, c.values, float64(c.metric.Value())); err != nil {
				return err
			}
		}
	case *HistogramVec:
		for _, c := range m.snapshotChildren() {
			if err := writeHistogram(w, e.name, e.labels, c.values, c.metric.Snapshot(), exemplars); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, labels, values []string, s HistSnapshot, exemplars bool) error {
	var cum int64
	ln := append([]string{}, labels...)
	lv := append([]string{}, values...)
	ln = append(ln, "le")
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatFloat(s.Bounds[i])
		}
		suffix := ""
		if exemplars && i < len(s.Exemplars) && s.Exemplars[i] != nil {
			e := s.Exemplars[i]
			suffix = fmt.Sprintf(` # {trace_id="%s"} %s`, escapeLabel(e.TraceID), formatFloat(e.Value))
		}
		if err := writeSampleSuffix(w, name+"_bucket", ln, append(lv[:len(lv):len(lv)], le), float64(cum), suffix); err != nil {
			return err
		}
	}
	if err := writeSample(w, name+"_sum", labels, values, s.Sum); err != nil {
		return err
	}
	return writeSample(w, name+"_count", labels, values, float64(s.Count))
}

func writeSample(w io.Writer, name string, labels, values []string, v float64) error {
	return writeSampleSuffix(w, name, labels, values, v, "")
}

func writeSampleSuffix(w io.Writer, name string, labels, values []string, v float64, suffix string) error {
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteString(suffix)
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteSampleLine writes one text-format sample. It exists for
// exporters that encode snapshots rather than a live registry (the
// /profiles endpoint); HELP/TYPE headers are the caller's job.
func WriteSampleLine(w io.Writer, name string, labels, values []string, v float64) error {
	return writeSample(w, name, labels, values, v)
}

// WriteHistogramSnapshot writes a histogram snapshot's cumulative
// _bucket/_sum/_count series in the text format (see WriteSampleLine).
func WriteHistogramSnapshot(w io.Writer, name string, labels, values []string, s HistSnapshot) error {
	return writeHistogram(w, name, labels, values, s, false)
}

// formatFloat renders a sample value: integers without a decimal point,
// everything else in the shortest round-trip form.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
