package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := NewTraceCtx()
	if len(tc.TraceID) != 32 {
		t.Fatalf("trace id %q: want 32 hex digits", tc.TraceID)
	}
	h := tc.Traceparent("")
	if len(h) != 55 {
		t.Fatalf("traceparent %q: len %d, want 55", h, len(h))
	}
	tid, sid, sampled, err := ParseTraceparent(h)
	if err != nil {
		t.Fatal(err)
	}
	if tid != tc.TraceID || !sampled || len(sid) != 16 {
		t.Errorf("parsed tid=%q sid=%q sampled=%v", tid, sid, sampled)
	}

	// Unsampled context renders flags 00.
	un := &TraceCtx{TraceID: tc.TraceID, Sampled: false}
	if _, _, s, err := ParseTraceparent(un.Traceparent("")); err != nil || s {
		t.Errorf("unsampled roundtrip: sampled=%v err=%v", s, err)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-short",
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef-0x", // non-hex flags
		"ff-0123456789abcdef0123456789abcdef-0123456789abcdef-01", // forbidden version
		"00-00000000000000000000000000000000-0123456789abcdef-01", // zero trace id
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01", // zero span id
		"00-0123456789ABCDEF0123456789abcdef-0123456789abcdef-01", // uppercase hex
		"00_0123456789abcdef0123456789abcdef-0123456789abcdef-01", // wrong separator
	}
	for _, h := range bad {
		if _, _, _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
	good := "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	if _, _, sampled, err := ParseTraceparent(good); err != nil || !sampled {
		t.Errorf("ParseTraceparent(%q): sampled=%v err=%v", good, sampled, err)
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestSampler(t *testing.T) {
	if NewSampler(0).Sample() {
		t.Error("every=0 sampled")
	}
	var nilSampler *Sampler
	if nilSampler.Sample() {
		t.Error("nil sampler sampled")
	}
	always := NewSampler(1)
	for i := 0; i < 5; i++ {
		if !always.Sample() {
			t.Fatal("every=1 skipped a query")
		}
	}
	s := NewSampler(10)
	n := 0
	for i := 0; i < 1000; i++ {
		if s.Sample() {
			n++
		}
	}
	if n != 100 {
		t.Errorf("1-in-10 sampler fired %d of 1000", n)
	}
}

func TestTraceCtxPlumbing(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Error("TraceFrom on bare context not nil")
	}
	tc := NewTraceCtx()
	ctx := WithTrace(context.Background(), tc)
	if TraceFrom(ctx) != tc || SampledTrace(ctx) != tc {
		t.Error("trace context did not round-trip through context")
	}
	tc.Sampled = false
	if SampledTrace(ctx) != nil {
		t.Error("SampledTrace returned an unsampled context")
	}

	tc2 := NewTraceCtx()
	tc2.AddRemote(&Span{Op: "x"})
	tc2.AddRemote(nil) // no-op
	if got := tc2.TakeRemote(); len(got) != 1 || got[0].Op != "x" {
		t.Errorf("TakeRemote = %v", got)
	}
	if got := tc2.TakeRemote(); got != nil {
		t.Errorf("second TakeRemote = %v, want nil", got)
	}
}

// TestUntracedZeroAlloc is the sampling-off overhead guard: the hot-path
// checks every query pays when tracing is off must not allocate.
func TestUntracedZeroAlloc(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		if SampledTrace(ctx) != nil {
			t.Fatal("sampled?")
		}
	}); n != 0 {
		t.Errorf("SampledTrace on untraced ctx: %.1f allocs/op, want 0", n)
	}

	h := NewHistogram(nil)
	if n := testing.AllocsPerRun(100, func() { h.Observe(0.01) }); n != 0 {
		t.Errorf("Histogram.Observe: %.1f allocs/op, want 0", n)
	}
	// ObserveExemplar with no active trace must cost the same as Observe.
	if n := testing.AllocsPerRun(100, func() { h.ObserveExemplar(0.01, "") }); n != 0 {
		t.Errorf("ObserveExemplar(untraced): %.1f allocs/op, want 0", n)
	}
}

func TestTraceSink(t *testing.T) {
	sink := NewTraceSink(4, 2)
	for i := 0; i < 6; i++ {
		sink.Add(&StoredTrace{TraceID: strings.Repeat("a", 31) + string(rune('0'+i)), StartedAt: time.Now()})
	}
	if sink.Total() != 6 {
		t.Errorf("Total = %d, want 6", sink.Total())
	}
	snap := sink.Snapshot()
	if len(snap) != 4 {
		t.Errorf("ring kept %d, want 4", len(snap))
	}
	// Newest first.
	if snap[0].TraceID[31] != '5' {
		t.Errorf("newest = %q", snap[0].TraceID)
	}
	// Oldest plain traces were evicted.
	if sink.Find(strings.Repeat("a", 31)+"0") != nil {
		t.Error("evicted trace still findable")
	}

	// Error traces go to the retained ring and survive churn.
	errID := strings.Repeat("b", 32)
	sink.Add(&StoredTrace{TraceID: errID, Error: "boom"})
	for i := 0; i < 10; i++ {
		sink.Add(&StoredTrace{TraceID: strings.Repeat("c", 31) + string(rune('0'+i))})
	}
	if sink.Find(errID) == nil {
		t.Error("error trace evicted from retained ring")
	}
	slowID := strings.Repeat("d", 32)
	sink.Add(&StoredTrace{TraceID: slowID, Slow: true})
	for i := 0; i < 10; i++ {
		sink.Add(&StoredTrace{TraceID: strings.Repeat("e", 31) + string(rune('0'+i))})
	}
	if sink.Find(slowID) == nil {
		t.Error("slow trace evicted from retained ring")
	}
}
