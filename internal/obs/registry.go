package obs

import (
	"fmt"
	"sort"
	"sync"
)

// kind classifies a registered metric for TYPE lines and encoding.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindCounterFunc
	kindHistogram
	kindCounterVec
	kindGaugeVec
	kindHistogramVec
)

func (k kind) prom() string {
	switch k {
	case kindCounter, kindCounterVec, kindCounterFunc:
		return "counter"
	case kindHistogram, kindHistogramVec:
		return "histogram"
	default:
		return "gauge"
	}
}

type entry struct {
	name   string
	help   string
	kind   kind
	labels []string
	metric interface{} // *Counter, *Gauge, func() float64, *Histogram, *CounterVec, ...
}

// Registry is a named collection of metrics with a Prometheus text
// encoder (prom.go). Registration is idempotent: asking for an existing
// name with the same kind returns the existing metric, so independent
// components (two engines, a pump and a server) can share one family.
// Re-registering a name with a different kind panics — that is a
// programming error, caught in tests.
//
// A Registry is safe for concurrent registration, observation, and
// encoding.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Observable is implemented by components that can attach their metrics
// to a registry (search.Delayed, search.Flaky, async.Pump, ...).
// Observe must be idempotent: attaching twice to the same registry binds
// the same underlying metric families.
type Observable interface {
	Observe(reg *Registry)
}

func (r *Registry) get(name string, k kind, build func() interface{}, labels ...string) interface{} {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if ok {
		if e.kind != k {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, k.prom(), e.kind.prom()))
		}
		return e.metric
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok = r.entries[name]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, k.prom(), e.kind.prom()))
		}
		return e.metric
	}
	m := build()
	r.entries[name] = &entry{name: name, kind: k, metric: m, labels: labels}
	return m
}

// SetHelp attaches (or replaces) the HELP string of a registered metric.
// Registration helpers below set it on first creation; SetHelp exists
// for callers that obtained a family before its help text was known.
func (r *Registry) setHelp(name, help string) {
	r.mu.Lock()
	if e, ok := r.entries[name]; ok && e.help == "" {
		e.help = help
	}
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	c := r.get(name, kindCounter, func() interface{} { return &Counter{} }).(*Counter)
	r.setHelp(name, help)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := r.get(name, kindGauge, func() interface{} { return &Gauge{} }).(*Gauge)
	r.setHelp(name, help)
	return g
}

// GaugeFunc registers a live gauge sampled at encode time (e.g. the
// pump's instantaneous queue depth). Re-registering replaces the
// callback, keeping Observe idempotent for components that re-attach.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kindGaugeFunc {
			panic(fmt.Sprintf("obs: metric %q re-registered as gauge func (was %s)", name, e.kind.prom()))
		}
		e.metric = fn
		return
	}
	r.entries[name] = &entry{name: name, help: help, kind: kindGaugeFunc, metric: fn}
}

// CounterFunc registers a counter sampled at encode time, for components
// that already maintain monotonic counters under their own lock (the
// pump's Stats fields). Like GaugeFunc, re-registering replaces the
// callback so Observe stays idempotent.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kindCounterFunc {
			panic(fmt.Sprintf("obs: metric %q re-registered as counter func (was %s)", name, e.kind.prom()))
		}
		e.metric = fn
		return
	}
	r.entries[name] = &entry{name: name, help: help, kind: kindCounterFunc, metric: fn}
}

// Histogram returns the named histogram, creating it on first use with
// the given bucket bounds (nil = DefBuckets). Buckets are fixed at
// first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := r.get(name, kindHistogram, func() interface{} { return NewHistogram(buckets) }).(*Histogram)
	r.setHelp(name, help)
	return h
}

// CounterVec returns the named counter family, creating it on first use.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := r.get(name, kindCounterVec, func() interface{} { return NewCounterVec(labels...) }, labels...).(*CounterVec)
	r.setHelp(name, help)
	return v
}

// GaugeVec returns the named gauge family, creating it on first use.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := r.get(name, kindGaugeVec, func() interface{} { return NewGaugeVec(labels...) }, labels...).(*GaugeVec)
	r.setHelp(name, help)
	return v
}

// HistogramVec returns the named histogram family, creating it on first
// use with the given buckets (nil = DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	v := r.get(name, kindHistogramVec, func() interface{} { return NewHistogramVec(buckets, labels...) }, labels...).(*HistogramVec)
	r.setHelp(name, help)
	return v
}

// snapshot returns the entries sorted by name for deterministic encoding.
func (r *Registry) snapshot() []*entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
