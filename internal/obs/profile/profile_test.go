package profile

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func seedStore(node string) *Store {
	s := NewStore(node)
	for i := 0; i < 100; i++ {
		s.CallObserved("altavista", 100*time.Millisecond, false)
	}
	for i := 0; i < 10; i++ {
		s.CallObserved("altavista", 2*time.Second, i < 5)
	}
	s.EventObserved("altavista", EventRetry)
	s.EventObserved("altavista", EventCacheHit)
	s.EventObserved("altavista", EventCacheHit)
	s.EventObserved("altavista", EventPeerHit)
	s.EventObserved("altavista", EventTimeout)
	s.CallObserved("moviefone", 500*time.Millisecond, false)
	s.QueryObserved(300*time.Millisecond, 8)
	s.QueryObserved(50*time.Millisecond, 2)
	return s
}

func TestDerivedProfile(t *testing.T) {
	s := seedStore("w1")
	p, ok := s.Profile("altavista")
	if !ok {
		t.Fatal("altavista not profiled")
	}
	if p.Calls != 110 || p.Failures != 5 || p.Retries != 1 || p.Timeouts != 1 {
		t.Errorf("counters: %+v", p)
	}
	// 100 fast + 10 slow calls: the median lands near 100ms, p99 near 2s.
	if p.P50 <= 0 || p.P50 > 0.5 {
		t.Errorf("p50 = %v, want ~0.1s", p.P50)
	}
	if p.P99 < 0.5 {
		t.Errorf("p99 = %v, want ~2s", p.P99)
	}
	if p.EWMA <= 0 {
		t.Errorf("ewma = %v", p.EWMA)
	}
	// 3 cache/peer hits absorbed vs 110 issued calls.
	if want := 3.0 / 113.0; p.CacheHitRate < want-1e-9 || p.CacheHitRate > want+1e-9 {
		t.Errorf("cache hit rate = %v, want %v", p.CacheHitRate, want)
	}
	if want := 5.0 / 110.0; p.FailureRate != want {
		t.Errorf("failure rate = %v, want %v", p.FailureRate, want)
	}

	if _, ok := s.Profile("lycos"); ok {
		t.Error("unknown destination reported a profile")
	}
	if got := s.Destinations(); len(got) != 2 || got[0] != "altavista" || got[1] != "moviefone" {
		t.Errorf("Destinations = %v", got)
	}

	q := s.Query()
	if q.Queries != 2 {
		t.Errorf("queries = %d", q.Queries)
	}
	if q.MeanFan != 5 {
		t.Errorf("mean fanout = %v, want 5", q.MeanFan)
	}
	if q.P95 <= 0 {
		t.Errorf("query p95 = %v", q.P95)
	}
}

func TestNilStoreNoops(t *testing.T) {
	var s *Store
	s.CallObserved("x", time.Second, true)
	s.EventObserved("x", EventRetry)
	s.QueryObserved(time.Second, 1)
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profiles.json")
	s := seedStore("w1")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}

	// A fresh store (restart) loads the snapshot as its base: history is
	// visible immediately and merges with new live observations.
	s2 := NewStore("w1")
	if err := s2.Load(path); err != nil {
		t.Fatalf("load: %v", err)
	}
	p, ok := s2.Profile("altavista")
	if !ok || p.Calls != 110 {
		t.Fatalf("reloaded profile: ok=%v calls=%d, want 110", ok, p.Calls)
	}
	if p.P99 < 0.5 {
		t.Errorf("reloaded p99 = %v: histogram did not survive the disk trip", p.P99)
	}
	s2.CallObserved("altavista", time.Second, false)
	if p, _ = s2.Profile("altavista"); p.Calls != 111 {
		t.Errorf("live+base merge: calls = %d, want 111", p.Calls)
	}
	if q := s2.Query(); q.Queries != 2 {
		t.Errorf("reloaded query profile: %d queries", q.Queries)
	}

	// Re-saving carries the whole history forward, not just the delta.
	if err := s2.Save(path); err != nil {
		t.Fatal(err)
	}
	s3 := NewStore("w1")
	if err := s3.Load(path); err != nil {
		t.Fatal(err)
	}
	if p, _ = s3.Profile("altavista"); p.Calls != 111 {
		t.Errorf("second-generation snapshot: calls = %d, want 111", p.Calls)
	}
}

// TestLoadCorruptSnapshot: a truncated, corrupt, or version-mismatched
// snapshot must load as an empty base with a loggable error — never
// crash, never leave the store unusable.
func TestLoadCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	good, _ := json.Marshal(seedStore("w1").Snapshot())

	cases := map[string][]byte{
		"truncated": good[:len(good)/2],
		"garbage":   []byte("{not json at all"),
		"empty":     {},
		"version":   []byte(`{"version": 999, "dests": {}}`),
	}
	for name, data := range cases {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s := NewStore("w1")
		if err := s.Load(path); err == nil {
			t.Errorf("%s: Load returned nil error", name)
		}
		// The store must still work end to end.
		s.CallObserved("altavista", time.Second, false)
		if p, ok := s.Profile("altavista"); !ok || p.Calls != 1 {
			t.Errorf("%s: store unusable after bad load: ok=%v %+v", name, ok, p)
		}
		if err := s.Save(filepath.Join(dir, name+"-resave.json")); err != nil {
			t.Errorf("%s: save after bad load: %v", name, err)
		}
	}

	// Missing file is a clean first start: no error at all.
	s := NewStore("w1")
	if err := s.Load(filepath.Join(dir, "nonexistent.json")); err != nil {
		t.Errorf("missing snapshot: %v", err)
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := seedStore("w1").Snapshot()
	b := NewStore("w2")
	b.CallObserved("altavista", time.Second, true)
	b.CallObserved("lycos", 100*time.Millisecond, false)
	b.QueryObserved(time.Second, 4)

	merged := MergeSnapshots("coord", a, b.Snapshot(), nil)
	if merged.Node != "coord" {
		t.Errorf("node = %q", merged.Node)
	}
	profiles, q := merged.Derive()
	byDest := map[string]Profile{}
	for _, p := range profiles {
		byDest[p.Dest] = p
	}
	if p := byDest["altavista"]; p.Calls != 111 || p.Failures != 6 {
		t.Errorf("merged altavista: %+v", p)
	}
	if _, ok := byDest["lycos"]; !ok {
		t.Error("lycos missing from merge")
	}
	if q.Queries != 3 {
		t.Errorf("merged queries = %d, want 3", q.Queries)
	}
	// EWMA blend is call-weighted, so it must sit between the inputs.
	ae := a.Dests["altavista"].EWMA
	if got := byDest["altavista"].EWMA; got < min(ae, 1) || got > max(ae, 1) {
		t.Errorf("merged ewma %v outside [%v, 1]", got, ae)
	}
}

func TestMergeHistMismatchedBounds(t *testing.T) {
	a := HistSnap{Bounds: []float64{1, 2}, Counts: []int64{5, 3, 1}, Count: 9, Sum: 10}
	b := HistSnap{Bounds: []float64{1, 2, 4}, Counts: []int64{1, 1, 1, 1}, Count: 4, Sum: 8}
	m := mergeHist(a, b)
	// Counts and Sum always add exactly; the sketch keeps the larger side.
	if m.Count != 13 || m.Sum != 18 {
		t.Errorf("count=%d sum=%v", m.Count, m.Sum)
	}
	if len(m.Bounds) != 2 {
		t.Errorf("kept bounds %v, want a's (more observations)", m.Bounds)
	}
}

// TestSnapshotterFinalSave: StartSnapshots writes one final snapshot on
// context cancellation — the graceful-shutdown flush wsqd waits on.
func TestSnapshotterFinalSave(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profiles.json")
	s := seedStore("w1")

	ctx, cancel := context.WithCancel(context.Background())
	wg := s.StartSnapshots(ctx, path, time.Hour, nil) // interval never fires
	cancel()
	wg.Wait()

	s2 := NewStore("w1")
	if err := s2.Load(path); err != nil {
		t.Fatalf("final snapshot unreadable: %v", err)
	}
	if p, ok := s2.Profile("altavista"); !ok || p.Calls != 110 {
		t.Errorf("final snapshot content: ok=%v %+v", ok, p)
	}

	// Empty path disables snapshotting without goroutine leaks.
	wg2 := s.StartSnapshots(context.Background(), "", time.Hour, nil)
	wg2.Wait()
}

func TestProfilesHandler(t *testing.T) {
	s := seedStore("w1")
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/profiles", nil))
	var view struct {
		Node         string       `json:"node"`
		Destinations []Profile    `json:"destinations"`
		Query        QueryProfile `json:"query"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.Node != "w1" || len(view.Destinations) != 2 || view.Query.Queries != 2 {
		t.Errorf("derived view: node=%q dests=%d queries=%d", view.Node, len(view.Destinations), view.Query.Queries)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/profiles?format=snapshot", nil))
	var sn Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &sn); err != nil {
		t.Fatal(err)
	}
	if sn.Version != SnapshotVersion || sn.Dests["altavista"] == nil {
		t.Errorf("snapshot form: version=%d dests=%v", sn.Version, sn.Dests)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/profiles?format=prom", nil))
	body := rec.Body.String()
	if !strings.Contains(body, `wsq_profile_calls_total{dest="altavista"} 110`) {
		t.Errorf("prom output missing calls counter:\n%s", body)
	}
	if problems := obs.LintExposition(body); len(problems) > 0 {
		t.Errorf("/profiles?format=prom fails promlint:\n%s", strings.Join(problems, "\n"))
	}
}
