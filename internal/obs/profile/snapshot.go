package profile

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// SnapshotVersion guards the on-disk schema; a version mismatch loads
// as empty rather than misreading old data.
const SnapshotVersion = 1

// HistSnap is the serializable form of an obs.HistSnapshot: per-bucket
// (not cumulative) counts with one trailing +Inf entry.
type HistSnap struct {
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

func histToSnap(s obs.HistSnapshot) HistSnap {
	return HistSnap{Bounds: s.Bounds, Counts: s.Counts, Count: s.Count, Sum: s.Sum}
}

func snapToHist(h HistSnap) obs.HistSnapshot {
	return obs.HistSnapshot{Bounds: h.Bounds, Counts: h.Counts, Count: h.Count, Sum: h.Sum}
}

// mergeHist adds two histogram sketches. Matching bucket layouts merge
// elementwise; mismatched layouts keep the sketch with more
// observations (quantiles stay approximately right, counts stay exact
// via Count/Sum which always add).
func mergeHist(a, b HistSnap) HistSnap {
	if b.Count == 0 && len(b.Counts) == 0 {
		return a
	}
	if a.Count == 0 && len(a.Counts) == 0 {
		return b
	}
	out := HistSnap{Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	if sameBounds(a.Bounds, b.Bounds) && len(a.Counts) == len(b.Counts) {
		out.Bounds = a.Bounds
		out.Counts = make([]int64, len(a.Counts))
		for i := range a.Counts {
			out.Counts[i] = a.Counts[i] + b.Counts[i]
		}
		return out
	}
	if a.Count >= b.Count {
		out.Bounds, out.Counts = a.Bounds, a.Counts
	} else {
		out.Bounds, out.Counts = b.Bounds, b.Counts
	}
	return out
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DestSnapshot is one destination's serialized profile.
type DestSnapshot struct {
	Calls     int64    `json:"calls"`
	Failures  int64    `json:"failures,omitempty"`
	Retries   int64    `json:"retries,omitempty"`
	Hedges    int64    `json:"hedges,omitempty"`
	Timeouts  int64    `json:"timeouts,omitempty"`
	CacheHits int64    `json:"cache_hits,omitempty"`
	PeerHits  int64    `json:"peer_hits,omitempty"`
	EWMA      float64  `json:"ewma_seconds,omitempty"`
	Latency   HistSnap `json:"latency"`
}

func (ds *DestSnapshot) histSnapshot() obs.HistSnapshot { return snapToHist(ds.Latency) }

// QuerySnapshot is the serialized query-level profile.
type QuerySnapshot struct {
	Queries int64    `json:"queries"`
	Fanout  HistSnap `json:"fanout"`
	Latency HistSnap `json:"latency"`
}

// Snapshot is the complete serialized store: the on-disk format, the
// /profiles?format=snapshot payload, and the unit the coordinator
// merges tier-wide.
type Snapshot struct {
	Version int                      `json:"version"`
	Node    string                   `json:"node,omitempty"`
	SavedAt time.Time                `json:"saved_at,omitempty"`
	Dests   map[string]*DestSnapshot `json:"dests"`
	Query   *QuerySnapshot           `json:"query,omitempty"`
}

func snapshotDest(dp *destProfile) *DestSnapshot {
	if dp == nil {
		return &DestSnapshot{}
	}
	dp.emu.Lock()
	ewma := dp.ewma
	dp.emu.Unlock()
	return &DestSnapshot{
		Calls:     dp.calls.Load(),
		Failures:  dp.failures.Load(),
		Retries:   dp.retries.Load(),
		Hedges:    dp.hedges.Load(),
		Timeouts:  dp.timeouts.Load(),
		CacheHits: dp.cacheHits.Load(),
		PeerHits:  dp.peerHits.Load(),
		EWMA:      ewma,
		Latency:   histToSnap(dp.hist.Snapshot()),
	}
}

func (s *Store) snapshotQuery() *QuerySnapshot {
	return &QuerySnapshot{
		Queries: s.queries.Load(),
		Fanout:  histToSnap(s.fanoutHist.Snapshot()),
		Latency: histToSnap(s.queryHist.Snapshot()),
	}
}

// mergeDest adds b into a copy of a (either may be nil).
func mergeDest(a, b *DestSnapshot) *DestSnapshot {
	if b == nil {
		if a == nil {
			return &DestSnapshot{}
		}
		return a
	}
	if a == nil {
		return b
	}
	out := &DestSnapshot{
		Calls:     a.Calls + b.Calls,
		Failures:  a.Failures + b.Failures,
		Retries:   a.Retries + b.Retries,
		Hedges:    a.Hedges + b.Hedges,
		Timeouts:  a.Timeouts + b.Timeouts,
		CacheHits: a.CacheHits + b.CacheHits,
		PeerHits:  a.PeerHits + b.PeerHits,
		Latency:   mergeHist(a.Latency, b.Latency),
	}
	// Call-weighted EWMA blend: a snapshot with 10x the traffic should
	// dominate the merged estimate.
	switch {
	case a.EWMA == 0:
		out.EWMA = b.EWMA
	case b.EWMA == 0:
		out.EWMA = a.EWMA
	default:
		wa, wb := float64(a.Calls), float64(b.Calls)
		if wa+wb == 0 {
			wa, wb = 1, 1
		}
		out.EWMA = (a.EWMA*wa + b.EWMA*wb) / (wa + wb)
	}
	return out
}

func mergeQuery(a, b *QuerySnapshot) *QuerySnapshot {
	if b == nil {
		if a == nil {
			return &QuerySnapshot{}
		}
		return a
	}
	if a == nil {
		return b
	}
	return &QuerySnapshot{
		Queries: a.Queries + b.Queries,
		Fanout:  mergeHist(a.Fanout, b.Fanout),
		Latency: mergeHist(a.Latency, b.Latency),
	}
}

// Snapshot serializes the store's full state: live observations merged
// with any loaded base, so a snapshot taken after a restart carries the
// whole history forward.
func (s *Store) Snapshot() *Snapshot {
	s.mu.RLock()
	names := make([]string, 0, len(s.dests))
	live := make(map[string]*destProfile, len(s.dests))
	for name, dp := range s.dests {
		names = append(names, name)
		live[name] = dp
	}
	base := s.base
	s.mu.RUnlock()

	out := &Snapshot{
		Version: SnapshotVersion,
		Node:    s.node,
		SavedAt: time.Now().UTC(),
		Dests:   make(map[string]*DestSnapshot),
	}
	for _, name := range names {
		out.Dests[name] = snapshotDest(live[name])
	}
	var baseQuery *QuerySnapshot
	if base != nil {
		baseQuery = base.Query
		for name, ds := range base.Dests {
			out.Dests[name] = mergeDest(out.Dests[name], ds)
		}
	}
	out.Query = mergeQuery(s.snapshotQuery(), baseQuery)
	return out
}

// MergeSnapshots combines snapshots from multiple nodes into one
// tier-wide view (the coordinator's /profiles).
func MergeSnapshots(node string, snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{
		Version: SnapshotVersion,
		Node:    node,
		SavedAt: time.Now().UTC(),
		Dests:   make(map[string]*DestSnapshot),
	}
	for _, sn := range snaps {
		if sn == nil {
			continue
		}
		for name, ds := range sn.Dests {
			out.Dests[name] = mergeDest(out.Dests[name], ds)
		}
		out.Query = mergeQuery(out.Query, sn.Query)
	}
	if out.Query == nil {
		out.Query = &QuerySnapshot{}
	}
	return out
}

// Derive converts a snapshot to planner-facing profiles, sorted by
// destination.
func (sn *Snapshot) Derive() ([]Profile, QueryProfile) {
	names := make([]string, 0, len(sn.Dests))
	for name := range sn.Dests {
		names = append(names, name)
	}
	sort.Strings(names)
	profiles := make([]Profile, 0, len(names))
	for _, name := range names {
		profiles = append(profiles, deriveProfile(name, sn.Dests[name]))
	}
	q := QueryProfile{}
	if sn.Query != nil {
		q = deriveQuery(sn.Query)
	}
	return profiles, q
}

// ---------------------------------------------------------------------------
// Durability

// Save writes the store's snapshot to path atomically (temp file +
// rename), so a crash mid-write leaves either the old snapshot or the
// new one, never a torn file.
func (s *Store) Save(path string) error {
	sn := s.Snapshot()
	data, err := json.MarshalIndent(sn, "", "  ")
	if err != nil {
		return fmt.Errorf("profile: marshal snapshot: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".profile-*.json")
	if err != nil {
		return fmt.Errorf("profile: save: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("profile: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("profile: save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("profile: save: %w", err)
	}
	return nil
}

// Load reads a snapshot from path and installs it as the store's base:
// derived profiles and future snapshots include it. Missing, truncated,
// corrupt, or version-mismatched files load as an empty base and return
// a non-nil error for logging — Load never leaves the store unusable,
// so startup proceeds regardless.
func (s *Store) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // first start: nothing to load
		}
		return fmt.Errorf("profile: load %s: %w", path, err)
	}
	var sn Snapshot
	if err := json.Unmarshal(data, &sn); err != nil {
		return fmt.Errorf("profile: load %s: corrupt snapshot ignored: %w", path, err)
	}
	if sn.Version != SnapshotVersion {
		return fmt.Errorf("profile: load %s: version %d != %d, ignored", path, sn.Version, SnapshotVersion)
	}
	if sn.Dests == nil {
		sn.Dests = make(map[string]*DestSnapshot)
	}
	s.mu.Lock()
	s.base = &sn
	s.mu.Unlock()
	return nil
}

// StartSnapshots saves the store to path every interval until ctx is
// done, then takes one final snapshot — the graceful-shutdown flush.
// The returned WaitGroup lets the caller block until that final save
// completes. onErr (optional) receives save failures.
func (s *Store) StartSnapshots(ctx context.Context, path string, interval time.Duration, onErr func(error)) *sync.WaitGroup {
	var wg sync.WaitGroup
	if path == "" {
		return &wg
	}
	if interval <= 0 {
		interval = time.Minute
	}
	report := func(err error) {
		if err != nil && onErr != nil {
			onErr(err)
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				report(s.Save(path))
				return
			case <-tick.C:
				report(s.Save(path))
			}
		}
	}()
	return &wg
}
