package profile

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"repro/internal/obs"
)

// Handler serves a profile snapshot source at /profiles:
//
//	GET /profiles                  derived planner-facing view (JSON)
//	GET /profiles?format=snapshot  raw mergeable Snapshot (JSON) — what
//	                               the coordinator fetches from workers
//	GET /profiles?format=prom      Prometheus text exposition
//
// get is called per request, so the handler works equally for a live
// Store (Store.Snapshot) and for the coordinator's tier-wide merge.
func Handler(get func() *Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sn := get()
		if sn == nil {
			sn = &Snapshot{Version: SnapshotVersion, Dests: map[string]*DestSnapshot{}}
		}
		switch r.URL.Query().Get("format") {
		case "snapshot":
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(sn)
		case "prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			writeProm(w, sn)
		default:
			profiles, query := sn.Derive()
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Node         string       `json:"node,omitempty"`
				Destinations []Profile    `json:"destinations"`
				Query        QueryProfile `json:"query"`
			}{sn.Node, profiles, query})
		}
	})
}

// Handler returns the store's /profiles handler.
func (s *Store) Handler() http.Handler {
	return Handler(func() *Snapshot { return s.Snapshot() })
}

// promFamily describes one per-destination counter family.
type promFamily struct {
	name string
	help string
	get  func(*DestSnapshot) int64
}

var counterFamilies = []promFamily{
	{"wsq_profile_calls_total", "External calls observed per destination.", func(d *DestSnapshot) int64 { return d.Calls }},
	{"wsq_profile_failures_total", "Failed external calls per destination.", func(d *DestSnapshot) int64 { return d.Failures }},
	{"wsq_profile_retries_total", "Retried external calls per destination.", func(d *DestSnapshot) int64 { return d.Retries }},
	{"wsq_profile_hedges_total", "Hedged external calls per destination.", func(d *DestSnapshot) int64 { return d.Hedges }},
	{"wsq_profile_timeouts_total", "Timed-out external call attempts per destination.", func(d *DestSnapshot) int64 { return d.Timeouts }},
	{"wsq_profile_cache_hits_total", "Local result-cache hits per destination.", func(d *DestSnapshot) int64 { return d.CacheHits }},
	{"wsq_profile_peer_hits_total", "Tier cache-peer hits per destination.", func(d *DestSnapshot) int64 { return d.PeerHits }},
}

func writeProm(w http.ResponseWriter, sn *Snapshot) {
	names := make([]string, 0, len(sn.Dests))
	for name := range sn.Dests {
		names = append(names, name)
	}
	sort.Strings(names)
	labels := []string{"dest"}

	for _, fam := range counterFamilies {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", fam.name, fam.help, fam.name)
		for _, name := range names {
			obs.WriteSampleLine(w, fam.name, labels, []string{name}, float64(fam.get(sn.Dests[name])))
		}
	}

	fmt.Fprintf(w, "# HELP wsq_profile_latency_ewma_seconds EWMA of external call latency per destination.\n# TYPE wsq_profile_latency_ewma_seconds gauge\n")
	for _, name := range names {
		obs.WriteSampleLine(w, "wsq_profile_latency_ewma_seconds", labels, []string{name}, sn.Dests[name].EWMA)
	}

	fmt.Fprintf(w, "# HELP wsq_profile_latency_seconds External call latency per destination.\n# TYPE wsq_profile_latency_seconds histogram\n")
	for _, name := range names {
		obs.WriteHistogramSnapshot(w, "wsq_profile_latency_seconds", labels, []string{name}, snapToHist(sn.Dests[name].Latency))
	}

	q := sn.Query
	if q == nil {
		q = &QuerySnapshot{}
	}
	fmt.Fprintf(w, "# HELP wsq_profile_queries_total Queries observed.\n# TYPE wsq_profile_queries_total counter\n")
	obs.WriteSampleLine(w, "wsq_profile_queries_total", nil, nil, float64(q.Queries))
	fmt.Fprintf(w, "# HELP wsq_profile_query_fanout External calls issued per query.\n# TYPE wsq_profile_query_fanout histogram\n")
	obs.WriteHistogramSnapshot(w, "wsq_profile_query_fanout", nil, nil, snapToHist(q.Fanout))
	fmt.Fprintf(w, "# HELP wsq_profile_query_latency_seconds End-to-end query latency.\n# TYPE wsq_profile_query_latency_seconds histogram\n")
	obs.WriteHistogramSnapshot(w, "wsq_profile_query_latency_seconds", nil, nil, snapToHist(q.Latency))
}
