// Package profile is the durable engine-profile store: per-destination
// latency, failure, and cache behavior aggregated from pump and shard
// observations, snapshotted to disk, and exported at /profiles.
//
// It exists for the planner. The paper's cost asymmetry — an external
// web call costs seconds while a local operator costs microseconds —
// means plan choice is dominated by how many external calls a plan
// issues and how slow each destination actually is. The Reader
// interface is the stable surface a latency-aware cost-based planner
// consumes: observed quantiles, fanout, cache hit rates, and failure
// rates per destination, persistent across restarts so a freshly
// started wsqd prices plans from history rather than from nothing.
package profile

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ewmaAlpha weights new observations in the exponential moving average:
// ~20% of the estimate turns over per observation, responsive to engine
// slowdowns without whiplash from one outlier.
const ewmaAlpha = 0.2

// Event kinds accepted by EventObserved. They mirror the pump's
// counter taxonomy (retry/hedge/timeout) plus the cache signals the
// planner prices (local hit, tier peer hit).
const (
	EventRetry    = "retry"
	EventHedge    = "hedge"
	EventTimeout  = "timeout"
	EventCacheHit = "cache_hit"
	EventPeerHit  = "peer_hit"
)

// Profile is one destination's derived profile — the planner-facing
// view. Latency fields are seconds.
type Profile struct {
	Dest      string  `json:"dest"`
	Calls     int64   `json:"calls"`
	Failures  int64   `json:"failures"`
	Retries   int64   `json:"retries"`
	Hedges    int64   `json:"hedges"`
	Timeouts  int64   `json:"timeouts"`
	CacheHits int64   `json:"cache_hits"`
	PeerHits  int64   `json:"peer_hits"`
	EWMA      float64 `json:"ewma_seconds"`
	P50       float64 `json:"p50_seconds"`
	P95       float64 `json:"p95_seconds"`
	P99       float64 `json:"p99_seconds"`
	// CacheHitRate is hits / (hits + issued calls): the fraction of
	// logical lookups the cache absorbed.
	CacheHitRate float64 `json:"cache_hit_rate"`
	FailureRate  float64 `json:"failure_rate"`
	RetryRate    float64 `json:"retry_rate"`
}

// QueryProfile is the query-level derived profile: how many external
// calls a query fans out to and how long queries take end to end.
type QueryProfile struct {
	Queries   int64   `json:"queries"`
	FanoutP50 float64 `json:"fanout_p50"`
	FanoutP95 float64 `json:"fanout_p95"`
	MeanFan   float64 `json:"fanout_mean"`
	P50       float64 `json:"p50_seconds"`
	P95       float64 `json:"p95_seconds"`
	P99       float64 `json:"p99_seconds"`
}

// Reader is the stable read surface the cost-based planner consumes.
type Reader interface {
	// Profile returns the derived profile for a destination; ok is
	// false when nothing has been observed (or loaded) for it.
	Profile(dest string) (p Profile, ok bool)
	// Destinations lists every known destination, sorted.
	Destinations() []string
	// Query returns the query-level fanout/latency profile.
	Query() QueryProfile
}

// fanoutBuckets sizes the external-calls-per-query histogram: fanout is
// a small integer (the paper's Table 1 queries register tens of calls).
var fanoutBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Store accumulates observations and implements Reader. All methods are
// safe for concurrent use; observation paths cost a few atomics plus a
// short per-destination critical section for the EWMA.
//
// A Store may carry a base snapshot loaded from disk (Load): derived
// profiles merge the base with live observations, so history survives a
// restart while the live histograms keep recording.
type Store struct {
	node string

	mu    sync.RWMutex
	dests map[string]*destProfile
	base  *Snapshot // loaded history, nil when starting fresh

	queries    atomic.Int64
	fanoutHist *obs.Histogram
	queryHist  *obs.Histogram
}

type destProfile struct {
	calls     atomic.Int64
	failures  atomic.Int64
	retries   atomic.Int64
	hedges    atomic.Int64
	timeouts  atomic.Int64
	cacheHits atomic.Int64
	peerHits  atomic.Int64
	hist      *obs.Histogram

	emu  sync.Mutex
	ewma float64 // seconds; 0 = unset
}

// NewStore creates an empty store. node names the producing process in
// snapshots and /profiles output ("coord", "w1", or "" standalone).
func NewStore(node string) *Store {
	return &Store{
		node:       node,
		dests:      make(map[string]*destProfile),
		fanoutHist: obs.NewHistogram(fanoutBuckets),
		queryHist:  obs.NewHistogram(nil),
	}
}

// Node returns the store's node name.
func (s *Store) Node() string { return s.node }

func (s *Store) dest(name string) *destProfile {
	s.mu.RLock()
	d, ok := s.dests[name]
	s.mu.RUnlock()
	if ok {
		return d
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok = s.dests[name]; ok {
		return d
	}
	d = &destProfile{hist: obs.NewHistogram(nil)}
	s.dests[name] = d
	return d
}

// CallObserved records one completed external call attempt: its
// destination, latency, and whether it failed. This is the pump's
// ProfileSink hook (async.Pump.SetProfiles).
func (s *Store) CallObserved(dest string, d time.Duration, failed bool) {
	if s == nil {
		return
	}
	dp := s.dest(dest)
	dp.calls.Add(1)
	if failed {
		dp.failures.Add(1)
	}
	sec := d.Seconds()
	dp.hist.Observe(sec)
	dp.emu.Lock()
	if dp.ewma == 0 {
		dp.ewma = sec
	} else {
		dp.ewma += ewmaAlpha * (sec - dp.ewma)
	}
	dp.emu.Unlock()
}

// EventObserved records a non-latency event (EventRetry, EventHedge,
// EventTimeout, EventCacheHit, EventPeerHit) for a destination.
func (s *Store) EventObserved(dest, kind string) {
	if s == nil {
		return
	}
	dp := s.dest(dest)
	switch kind {
	case EventRetry:
		dp.retries.Add(1)
	case EventHedge:
		dp.hedges.Add(1)
	case EventTimeout:
		dp.timeouts.Add(1)
	case EventCacheHit:
		dp.cacheHits.Add(1)
	case EventPeerHit:
		dp.peerHits.Add(1)
	}
}

// QueryObserved records one completed query: its end-to-end latency and
// how many external calls it issued (fanout).
func (s *Store) QueryObserved(d time.Duration, externalCalls int) {
	if s == nil {
		return
	}
	s.queries.Add(1)
	s.queryHist.ObserveDuration(d)
	s.fanoutHist.Observe(float64(externalCalls))
}

// ---------------------------------------------------------------------------
// Reader

// Profile implements Reader: the destination's live observations merged
// with any loaded base snapshot.
func (s *Store) Profile(dest string) (Profile, bool) {
	s.mu.RLock()
	dp := s.dests[dest]
	var base *DestSnapshot
	if s.base != nil {
		base = s.base.Dests[dest]
	}
	s.mu.RUnlock()
	if dp == nil && base == nil {
		return Profile{}, false
	}
	ds := mergeDest(snapshotDest(dp), base)
	return deriveProfile(dest, ds), true
}

// Destinations implements Reader.
func (s *Store) Destinations() []string {
	s.mu.RLock()
	set := make(map[string]bool, len(s.dests))
	for name := range s.dests {
		set[name] = true
	}
	if s.base != nil {
		for name := range s.base.Dests {
			set[name] = true
		}
	}
	s.mu.RUnlock()
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Query implements Reader.
func (s *Store) Query() QueryProfile {
	s.mu.RLock()
	var base *QuerySnapshot
	if s.base != nil {
		base = s.base.Query
	}
	s.mu.RUnlock()
	qs := mergeQuery(s.snapshotQuery(), base)
	return deriveQuery(qs)
}

func deriveProfile(dest string, ds *DestSnapshot) Profile {
	p := Profile{
		Dest:      dest,
		Calls:     ds.Calls,
		Failures:  ds.Failures,
		Retries:   ds.Retries,
		Hedges:    ds.Hedges,
		Timeouts:  ds.Timeouts,
		CacheHits: ds.CacheHits,
		PeerHits:  ds.PeerHits,
		EWMA:      ds.EWMA,
	}
	hs := ds.histSnapshot()
	if hs.Count > 0 {
		p.P50 = hs.Quantile(0.50)
		p.P95 = hs.Quantile(0.95)
		p.P99 = hs.Quantile(0.99)
	}
	hits := ds.CacheHits + ds.PeerHits
	if n := hits + ds.Calls; n > 0 {
		p.CacheHitRate = float64(hits) / float64(n)
	}
	if ds.Calls > 0 {
		p.FailureRate = float64(ds.Failures) / float64(ds.Calls)
		p.RetryRate = float64(ds.Retries) / float64(ds.Calls)
	}
	return p
}

func deriveQuery(qs *QuerySnapshot) QueryProfile {
	q := QueryProfile{Queries: qs.Queries}
	fh := snapToHist(qs.Fanout)
	if fh.Count > 0 {
		q.FanoutP50 = fh.Quantile(0.50)
		q.FanoutP95 = fh.Quantile(0.95)
		q.MeanFan = fh.Sum / float64(fh.Count)
	}
	lh := snapToHist(qs.Latency)
	if lh.Count > 0 {
		q.P50 = lh.Quantile(0.50)
		q.P95 = lh.Quantile(0.95)
		q.P99 = lh.Quantile(0.99)
	}
	return q
}
