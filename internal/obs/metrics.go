// Package obs is the observability backbone of the WSQ/DSQ reproduction:
// a zero-dependency metrics registry (atomic counters, gauges, and
// fixed-bucket latency histograms with a Prometheus text-format encoder)
// plus a lightweight per-query trace recorder (trace.go).
//
// The paper's central claim — asynchronous iteration hides web-call
// latency behind dependent joins — is only verifiable at runtime with
// instrumentation: where did a query's wall-clock go? Pump queueing,
// engine latency, ReqSync buffering, or relational operators? Every
// layer of the stack (async.Pump, the exec operators, search engine
// wrappers, the wsqd server) records into this package; wsqd serves the
// result at /metrics and EXPLAIN ANALYZE renders per-operator profiles
// in the tradition of Volcano-style instrumented iterators.
//
// All metric types are safe for concurrent use and never block: hot
// paths (one histogram observation per external call) cost a few atomic
// operations.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for Prometheus semantics; Add does not
// enforce this — experiment harnesses reset counters between runs).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter. Prometheus counters are nominally monotonic;
// Reset exists for the experiment harness, which isolates timed runs.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets is the default latency histogram layout, in seconds. It
// spans 100µs (in-process simulated engines under test latency) to 60s
// (paper-scale latency with queueing), roughly ×2.5 per step.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// ExpBuckets returns n bucket bounds starting at start, each factor
// times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Histogram is a fixed-bucket histogram with atomic counters. Bucket
// bounds are inclusive upper bounds in Prometheus "le" semantics; an
// implicit +Inf bucket catches everything beyond the last bound.
//
// Snapshots are not taken atomically with respect to concurrent
// observations: a reader may see a count that includes an observation
// whose bucket increment it missed (or vice versa). For monitoring and
// percentile estimation this skew is harmless.
type Histogram struct {
	bounds []float64 // sorted inclusive upper bounds, excluding +Inf
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
	// ex holds the most recent exemplar per bucket (last writer wins);
	// see ObserveExemplar. Entries stay nil until a traced observation
	// lands in the bucket, so untraced workloads pay nothing.
	ex []atomic.Pointer[Exemplar]
}

// Exemplar links one histogram observation to the trace that produced
// it, in the OpenMetrics sense: a p99 bucket on /metrics points at a
// captured trace in /debug/traces.
type Exemplar struct {
	TraceID string
	Value   float64
	At      time.Time
}

// NewHistogram builds a standalone histogram (most callers use
// Registry.Histogram). A nil or empty buckets slice selects DefBuckets.
// Bounds must be sorted ascending; duplicates are dropped.
func NewHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := make([]float64, 0, len(buckets))
	for i, b := range buckets {
		if i > 0 && b <= bounds[len(bounds)-1] {
			continue
		}
		bounds = append(bounds, b)
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
		ex:     make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose bound is >= v ("le" semantics); sort.Search
	// finds the first bound not < v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveExemplar records one value and, when traceID is non-empty,
// attaches it as the bucket's exemplar. With an empty traceID it is
// exactly Observe — untraced observations stay allocation-free.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if traceID == "" {
		h.Observe(v)
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.ex[i].Store(&Exemplar{TraceID: traceID, Value: v, At: time.Now()})
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Since records the time elapsed since start, returning the duration.
func (h *Histogram) Since(start time.Time) time.Duration {
	d := time.Since(start)
	h.ObserveDuration(d)
	return d
}

// HistSnapshot is a point-in-time copy of a histogram's state.
type HistSnapshot struct {
	// Bounds are the finite bucket upper bounds; Counts has one extra
	// trailing entry for the +Inf bucket. Counts are per-bucket (not
	// cumulative).
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
	// Exemplars has one entry per bucket (parallel to Counts); nil where
	// no traced observation has landed.
	Exemplars []*Exemplar
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		if e := h.ex[i].Load(); e != nil {
			if s.Exemplars == nil {
				s.Exemplars = make([]*Exemplar, len(h.counts))
			}
			s.Exemplars[i] = e
		}
	}
	return s
}

// Reset zeroes the histogram (experiment harness use).
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
		h.ex[i].Store(nil)
	}
	h.count.Store(0)
	h.sum.store(0)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the containing bucket, the standard
// histogram_quantile estimate. It returns NaN for an empty histogram;
// quantiles that land in the +Inf bucket clamp to the last finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Quantile estimates a quantile from a snapshot (see Histogram.Quantile).
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			if len(s.Bounds) == 0 {
				return math.NaN()
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// atomicFloat accumulates a float64 with CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

// ---------------------------------------------------------------------------
// Labeled families

// labelSep joins label values into map keys; 0xff never appears in the
// label values this project generates (engine/destination names).
const labelSep = "\xff"

func joinLabels(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, labelSep...)
		}
		b = append(b, v...)
	}
	return string(b)
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	labels []string
	mu     sync.RWMutex
	m      map[string]*Counter
}

// NewCounterVec builds a standalone family (most callers use
// Registry.CounterVec).
func NewCounterVec(labels ...string) *CounterVec {
	return &CounterVec{labels: labels, m: make(map[string]*Counter)}
}

// With returns the counter for the given label values, creating it on
// first use. len(values) must equal the family's label count.
func (v *CounterVec) With(values ...string) *Counter {
	key := joinLabels(values)
	v.mu.RLock()
	c, ok := v.m[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.m[key]; ok {
		return c
	}
	if len(values) != len(v.labels) {
		panic("obs: CounterVec.With label arity mismatch")
	}
	c = &Counter{}
	v.m[key] = c
	return c
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct {
	labels []string
	mu     sync.RWMutex
	m      map[string]*Gauge
}

// NewGaugeVec builds a standalone family.
func NewGaugeVec(labels ...string) *GaugeVec {
	return &GaugeVec{labels: labels, m: make(map[string]*Gauge)}
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := joinLabels(values)
	v.mu.RLock()
	g, ok := v.m[key]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok = v.m[key]; ok {
		return g
	}
	if len(values) != len(v.labels) {
		panic("obs: GaugeVec.With label arity mismatch")
	}
	g = &Gauge{}
	v.m[key] = g
	return g
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct {
	labels  []string
	buckets []float64
	mu      sync.RWMutex
	m       map[string]*Histogram
}

// NewHistogramVec builds a standalone family. nil buckets selects
// DefBuckets.
func NewHistogramVec(buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{labels: labels, buckets: buckets, m: make(map[string]*Histogram)}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := joinLabels(values)
	v.mu.RLock()
	h, ok := v.m[key]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.m[key]; ok {
		return h
	}
	if len(values) != len(v.labels) {
		panic("obs: HistogramVec.With label arity mismatch")
	}
	h = NewHistogram(v.buckets)
	v.m[key] = h
	return h
}

// snapshotChildren returns (label values, histogram) pairs sorted by key
// for deterministic encoding.
func (v *HistogramVec) snapshotChildren() []labeledChild[*Histogram] {
	return snapshotVec(&v.mu, v.m)
}

func (v *CounterVec) snapshotChildren() []labeledChild[*Counter] {
	return snapshotVec(&v.mu, v.m)
}

func (v *GaugeVec) snapshotChildren() []labeledChild[*Gauge] {
	return snapshotVec(&v.mu, v.m)
}

type labeledChild[T any] struct {
	values []string
	metric T
}

func snapshotVec[T any](mu *sync.RWMutex, m map[string]T) []labeledChild[T] {
	mu.RLock()
	defer mu.RUnlock()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]labeledChild[T], len(keys))
	for i, k := range keys {
		var values []string
		if k != "" || len(m) > 0 {
			values = splitLabels(k)
		}
		out[i] = labeledChild[T]{values: values, metric: m[k]}
	}
	return out
}

func splitLabels(key string) []string {
	if key == "" {
		return []string{""}
	}
	var out []string
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == labelSep[0] {
			out = append(out, key[start:i])
			start = i + 1
		}
	}
	return append(out, key[start:])
}
