package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Span is one node of a per-query execution trace: an operator of the
// plan (or an async call stage) with accumulated inclusive wall time,
// cardinality, and operator-specific extra counters (placeholder patches,
// tuple expansions, cancellations, registered calls, ...).
//
// Span trees are built and mutated by the single goroutine executing the
// query (the iterator protocol is sequential), then read after the query
// completes; no locking is needed or provided.
type Span struct {
	// Op is the operator's display name ("ReqSync", "DependentJoin", ...).
	Op string
	// Detail is the operator's parameter summary ("WebCount", "streaming").
	Detail string
	// Start is the wall-clock time of the first Open.
	Start time.Time
	// Dur is the inclusive wall time attributed to this subtree: the sum
	// of time spent inside this operator's Open/Next/Close calls,
	// including everything its children did beneath those calls.
	Dur time.Duration
	// Opens counts Open calls (dependent joins re-open their inner
	// subtree once per outer binding).
	Opens int64
	// Rows counts tuples this operator produced.
	Rows int64
	// Extra carries operator-specific counters, e.g. ReqSync's
	// patched/expanded/canceled or AEVScan's registered calls.
	Extra map[string]int64
	// Node identifies the process that produced the span ("coord", "w1").
	// Empty for local spans; set on subtrees reconstructed from a remote
	// process's wire form.
	Node string
	// Children mirror the plan tree.
	Children []*Span
	// AsyncChildren are spans for work that ran concurrently with (not
	// nested inside) this operator's iterator calls: pump call timelines
	// attached to the AEVScan that registered them, cache-peer round
	// trips, remote subtrees. Their durations overlap the parent's, so
	// they are excluded from Self and Shape — the per-operator self-time
	// sum stays exact while the off-tree work becomes visible.
	AsyncChildren []*Span
}

// NewSpan creates a span.
func NewSpan(op, detail string) *Span {
	return &Span{Op: op, Detail: detail}
}

// AddChild appends a child span and returns it.
func (s *Span) AddChild(c *Span) *Span {
	s.Children = append(s.Children, c)
	return c
}

// AddAsyncChild attaches a span for concurrent (non-nested) work; see
// the AsyncChildren field. Safe to call with nil (no-op).
func (s *Span) AddAsyncChild(c *Span) *Span {
	if c != nil {
		s.AsyncChildren = append(s.AsyncChildren, c)
	}
	return c
}

// AddExtra accumulates an operator-specific counter.
func (s *Span) AddExtra(key string, n int64) {
	if n == 0 {
		return
	}
	if s.Extra == nil {
		s.Extra = make(map[string]int64)
	}
	s.Extra[key] += n
}

// SetExtra overwrites an operator-specific counter with a snapshot
// value. The instrumented executor uses this on every Close: operator
// counters are cumulative over the operator's life, so the latest
// snapshot is the truth even when a dependent join closes its inner
// subtree once per outer binding.
func (s *Span) SetExtra(key string, n int64) {
	if n == 0 && s.Extra[key] == 0 {
		return
	}
	if s.Extra == nil {
		s.Extra = make(map[string]int64)
	}
	s.Extra[key] = n
}

// Self is the span's exclusive time: inclusive time minus the inclusive
// time of its children. Blocking in ReqSync.Next waiting on the pump is
// ReqSync self time — exactly the "where did the wall-clock go" signal.
func (s *Span) Self() time.Duration {
	d := s.Dur
	for _, c := range s.Children {
		d -= c.Dur
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Walk visits the span and its plan-tree descendants preorder. Async
// children are skipped so the timing invariants Walk-based consumers
// check (self-time sums, inclusive bounds) hold; use WalkAll to see
// everything.
func (s *Span) Walk(fn func(*Span)) {
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// WalkAll visits the span and every descendant — plan-tree and async —
// preorder.
func (s *Span) WalkAll(fn func(*Span)) {
	fn(s)
	for _, c := range s.Children {
		c.WalkAll(fn)
	}
	for _, c := range s.AsyncChildren {
		c.WalkAll(fn)
	}
}

// Shape renders the nesting structure ("ReqSync(DependentJoin(Scan,AEVScan))"),
// mirroring exec.Shape so tests can compare a trace against its plan.
func (s *Span) Shape() string {
	if len(s.Children) == 0 {
		return s.Op
	}
	parts := make([]string, len(s.Children))
	for i, c := range s.Children {
		parts[i] = c.Shape()
	}
	return s.Op + "(" + strings.Join(parts, ",") + ")"
}

// Render formats the trace as an indented tree, one operator per line
// with inclusive time, self time, cardinality, and extras — the body of
// EXPLAIN ANALYZE.
func (s *Span) Render() string {
	var b strings.Builder
	s.renderInto(&b, 0)
	return b.String()
}

func (s *Span) renderInto(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.Op)
	if s.Detail != "" {
		b.WriteString(": ")
		b.WriteString(s.Detail)
	}
	fmt.Fprintf(b, "  (time=%s self=%s rows=%d", fmtDur(s.Dur), fmtDur(s.Self()), s.Rows)
	if s.Opens > 1 {
		fmt.Fprintf(b, " opens=%d", s.Opens)
	}
	for _, k := range sortedKeys(s.Extra) {
		fmt.Fprintf(b, " %s=%d", k, s.Extra[k])
	}
	b.WriteString(")\n")
	for _, c := range s.Children {
		c.renderInto(b, depth+1)
	}
	for _, c := range s.AsyncChildren {
		b.WriteString(strings.Repeat("  ", depth+1))
		b.WriteString("~ ") // concurrent with the parent, not nested inside it
		var ab strings.Builder
		c.renderInto(&ab, 0)
		b.WriteString(strings.ReplaceAll(strings.TrimRight(ab.String(), "\n"), "\n", "\n"+strings.Repeat("  ", depth+1)+"~ "))
		b.WriteByte('\n')
	}
}

func sortedKeys(m map[string]int64) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fmtDur rounds durations for display without drowning the tree in
// nanosecond noise.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// SpanJSON is the wire form of a span tree (wsqd's ?trace=1 response).
// Times are microseconds; Start is the offset from the root span's
// start, so traces are stable under clock representation.
type SpanJSON struct {
	Op      string  `json:"op"`
	Detail  string  `json:"detail,omitempty"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	SelfUS  float64 `json:"self_us"`
	Rows    int64   `json:"rows"`
	Opens   int64   `json:"opens,omitempty"`
	// Node identifies the process that produced this span ("coord",
	// "w1"); set by the stitching layer on remote roots.
	Node string `json:"node,omitempty"`
	// Async marks spans whose duration overlaps (rather than nests
	// inside) the parent's — pump call timelines, peer round trips.
	Async    bool             `json:"async,omitempty"`
	Extra    map[string]int64 `json:"extra,omitempty"`
	Children []*SpanJSON      `json:"children,omitempty"`
}

// JSON converts the span tree to its wire form.
func (s *Span) JSON() *SpanJSON {
	return s.jsonFrom(s.Start)
}

func (s *Span) jsonFrom(epoch time.Time) *SpanJSON {
	out := &SpanJSON{
		Op:      s.Op,
		Detail:  s.Detail,
		StartUS: float64(s.Start.Sub(epoch).Microseconds()),
		DurUS:   float64(s.Dur.Microseconds()),
		SelfUS:  float64(s.Self().Microseconds()),
		Rows:    s.Rows,
		Opens:   s.Opens,
		Node:    s.Node,
		Extra:   s.Extra,
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, c.jsonFrom(epoch))
	}
	for _, c := range s.AsyncChildren {
		cj := c.jsonFrom(epoch)
		cj.Async = true
		out.Children = append(out.Children, cj)
	}
	return out
}

// SpanFromJSON reconstructs an in-memory span tree from its wire form,
// anchoring the wire root's start at base (the receiver's best local
// estimate of when the remote work began — typically the moment the HTTP
// request that carried it was issued). Child offsets are preserved
// relative to the root; Async-marked children become AsyncChildren.
func SpanFromJSON(j *SpanJSON, base time.Time) *Span {
	if j == nil {
		return nil
	}
	return spanFromJSON(j, base, j.StartUS)
}

func spanFromJSON(j *SpanJSON, base time.Time, epochUS float64) *Span {
	s := &Span{
		Op:     j.Op,
		Detail: j.Detail,
		Start:  base.Add(time.Duration(j.StartUS-epochUS) * time.Microsecond),
		Dur:    time.Duration(j.DurUS) * time.Microsecond,
		Opens:  j.Opens,
		Rows:   j.Rows,
		Node:   j.Node,
		Extra:  j.Extra,
	}
	for _, c := range j.Children {
		cs := spanFromJSON(c, base, epochUS)
		if c.Async {
			s.AsyncChildren = append(s.AsyncChildren, cs)
		} else {
			s.Children = append(s.Children, cs)
		}
	}
	return s
}

// Walk visits the wire-form span and all descendants preorder.
func (j *SpanJSON) Walk(fn func(*SpanJSON)) {
	if j == nil {
		return
	}
	fn(j)
	for _, c := range j.Children {
		c.Walk(fn)
	}
}

// CountSpans returns the number of spans in the tree.
func (j *SpanJSON) CountSpans() int {
	n := 0
	j.Walk(func(*SpanJSON) { n++ })
	return n
}

// Find returns the first span (preorder) with the given Op, or nil.
func (j *SpanJSON) Find(op string) *SpanJSON {
	var found *SpanJSON
	j.Walk(func(s *SpanJSON) {
		if found == nil && s.Op == op {
			found = s
		}
	})
	return found
}

// Rebase shifts every start offset in the tree by deltaUS. Stitching
// uses it to express a remote subtree's offsets (relative to the remote
// root's start) in the stitched root's timeline: delta is the parent
// span's start offset, the best cross-process estimate available
// without synchronized clocks.
func (j *SpanJSON) Rebase(deltaUS float64) {
	j.Walk(func(s *SpanJSON) { s.StartUS += deltaUS })
}

// Graft attaches a remote subtree under this span: the child's offsets
// are rebased onto this span's timeline and tagged with the producing
// node's name. The remote work happened inside this span's duration (an
// HTTP round trip the parent timed), so the child nests synchronously.
func (j *SpanJSON) Graft(child *SpanJSON, node string) {
	if child == nil {
		return
	}
	child.Rebase(j.StartUS)
	if node != "" && child.Node == "" {
		child.Node = node
	}
	j.Children = append(j.Children, child)
}
