package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Span is one node of a per-query execution trace: an operator of the
// plan (or an async call stage) with accumulated inclusive wall time,
// cardinality, and operator-specific extra counters (placeholder patches,
// tuple expansions, cancellations, registered calls, ...).
//
// Span trees are built and mutated by the single goroutine executing the
// query (the iterator protocol is sequential), then read after the query
// completes; no locking is needed or provided.
type Span struct {
	// Op is the operator's display name ("ReqSync", "DependentJoin", ...).
	Op string
	// Detail is the operator's parameter summary ("WebCount", "streaming").
	Detail string
	// Start is the wall-clock time of the first Open.
	Start time.Time
	// Dur is the inclusive wall time attributed to this subtree: the sum
	// of time spent inside this operator's Open/Next/Close calls,
	// including everything its children did beneath those calls.
	Dur time.Duration
	// Opens counts Open calls (dependent joins re-open their inner
	// subtree once per outer binding).
	Opens int64
	// Rows counts tuples this operator produced.
	Rows int64
	// Extra carries operator-specific counters, e.g. ReqSync's
	// patched/expanded/canceled or AEVScan's registered calls.
	Extra map[string]int64
	// Children mirror the plan tree.
	Children []*Span
}

// NewSpan creates a span.
func NewSpan(op, detail string) *Span {
	return &Span{Op: op, Detail: detail}
}

// AddChild appends a child span and returns it.
func (s *Span) AddChild(c *Span) *Span {
	s.Children = append(s.Children, c)
	return c
}

// AddExtra accumulates an operator-specific counter.
func (s *Span) AddExtra(key string, n int64) {
	if n == 0 {
		return
	}
	if s.Extra == nil {
		s.Extra = make(map[string]int64)
	}
	s.Extra[key] += n
}

// SetExtra overwrites an operator-specific counter with a snapshot
// value. The instrumented executor uses this on every Close: operator
// counters are cumulative over the operator's life, so the latest
// snapshot is the truth even when a dependent join closes its inner
// subtree once per outer binding.
func (s *Span) SetExtra(key string, n int64) {
	if n == 0 && s.Extra[key] == 0 {
		return
	}
	if s.Extra == nil {
		s.Extra = make(map[string]int64)
	}
	s.Extra[key] = n
}

// Self is the span's exclusive time: inclusive time minus the inclusive
// time of its children. Blocking in ReqSync.Next waiting on the pump is
// ReqSync self time — exactly the "where did the wall-clock go" signal.
func (s *Span) Self() time.Duration {
	d := s.Dur
	for _, c := range s.Children {
		d -= c.Dur
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Walk visits the span and all descendants preorder.
func (s *Span) Walk(fn func(*Span)) {
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// Shape renders the nesting structure ("ReqSync(DependentJoin(Scan,AEVScan))"),
// mirroring exec.Shape so tests can compare a trace against its plan.
func (s *Span) Shape() string {
	if len(s.Children) == 0 {
		return s.Op
	}
	parts := make([]string, len(s.Children))
	for i, c := range s.Children {
		parts[i] = c.Shape()
	}
	return s.Op + "(" + strings.Join(parts, ",") + ")"
}

// Render formats the trace as an indented tree, one operator per line
// with inclusive time, self time, cardinality, and extras — the body of
// EXPLAIN ANALYZE.
func (s *Span) Render() string {
	var b strings.Builder
	s.renderInto(&b, 0)
	return b.String()
}

func (s *Span) renderInto(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.Op)
	if s.Detail != "" {
		b.WriteString(": ")
		b.WriteString(s.Detail)
	}
	fmt.Fprintf(b, "  (time=%s self=%s rows=%d", fmtDur(s.Dur), fmtDur(s.Self()), s.Rows)
	if s.Opens > 1 {
		fmt.Fprintf(b, " opens=%d", s.Opens)
	}
	for _, k := range sortedKeys(s.Extra) {
		fmt.Fprintf(b, " %s=%d", k, s.Extra[k])
	}
	b.WriteString(")\n")
	for _, c := range s.Children {
		c.renderInto(b, depth+1)
	}
}

func sortedKeys(m map[string]int64) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fmtDur rounds durations for display without drowning the tree in
// nanosecond noise.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// SpanJSON is the wire form of a span tree (wsqd's ?trace=1 response).
// Times are microseconds; Start is the offset from the root span's
// start, so traces are stable under clock representation.
type SpanJSON struct {
	Op       string           `json:"op"`
	Detail   string           `json:"detail,omitempty"`
	StartUS  float64          `json:"start_us"`
	DurUS    float64          `json:"dur_us"`
	SelfUS   float64          `json:"self_us"`
	Rows     int64            `json:"rows"`
	Opens    int64            `json:"opens,omitempty"`
	Extra    map[string]int64 `json:"extra,omitempty"`
	Children []*SpanJSON      `json:"children,omitempty"`
}

// JSON converts the span tree to its wire form.
func (s *Span) JSON() *SpanJSON {
	return s.jsonFrom(s.Start)
}

func (s *Span) jsonFrom(epoch time.Time) *SpanJSON {
	out := &SpanJSON{
		Op:      s.Op,
		Detail:  s.Detail,
		StartUS: float64(s.Start.Sub(epoch).Microseconds()),
		DurUS:   float64(s.Dur.Microseconds()),
		SelfUS:  float64(s.Self().Microseconds()),
		Rows:    s.Rows,
		Opens:   s.Opens,
		Extra:   s.Extra,
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, c.jsonFrom(epoch))
	}
	return out
}
