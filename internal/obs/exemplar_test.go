package obs

import (
	"strings"
	"testing"
)

func TestObserveExemplarSnapshot(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1})
	h.Observe(0.05)                  // no exemplar
	h.ObserveExemplar(0.5, "abc123") // bucket le=1
	h.ObserveExemplar(5, "def456")   // +Inf bucket
	h.ObserveExemplar(0.6, "")       // untraced: counts, no exemplar

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if len(s.Exemplars) != 3 {
		t.Fatalf("exemplar slots = %d, want one per bucket", len(s.Exemplars))
	}
	if s.Exemplars[0] != nil {
		t.Error("bucket 0 has an exemplar without a traced observation")
	}
	if e := s.Exemplars[1]; e == nil || e.TraceID != "abc123" || e.Value != 0.5 {
		t.Errorf("bucket 1 exemplar = %+v", e)
	}
	if e := s.Exemplars[2]; e == nil || e.TraceID != "def456" {
		t.Errorf("+Inf exemplar = %+v", e)
	}

	// A later traced observation in the same bucket replaces the exemplar
	// (most recent wins — the one a user can still look up in the sink).
	h.ObserveExemplar(0.7, "newer")
	if e := h.Snapshot().Exemplars[1]; e == nil || e.TraceID != "newer" {
		t.Errorf("exemplar not replaced: %+v", e)
	}
}

func TestWriteOpenMetricsExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("wsq_latency_seconds", "Query latency.", []float64{0.125, 1})
	h.ObserveExemplar(0.5, "0123456789abcdef0123456789abcdef")
	h.Observe(0.0625)

	// Default exposition stays plain 0.0.4: no exemplars, no EOF.
	var plain strings.Builder
	if err := reg.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "trace_id") || strings.Contains(plain.String(), "# EOF") {
		t.Errorf("WritePrometheus leaked OpenMetrics extensions:\n%s", plain.String())
	}

	var om strings.Builder
	if err := reg.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	want := `wsq_latency_seconds_bucket{le="1"} 2 # {trace_id="0123456789abcdef0123456789abcdef"} 0.5`
	if !strings.Contains(out, want) {
		t.Errorf("missing exemplar line %q in:\n%s", want, out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("OpenMetrics payload does not end with # EOF:\n%s", out)
	}
	// Buckets without a traced observation stay bare.
	if strings.Contains(out, `le="0.125"} 1 #`) {
		t.Errorf("untraced bucket carries an exemplar:\n%s", out)
	}
	if problems := LintExposition(out); len(problems) != 0 {
		t.Errorf("OpenMetrics output fails lint: %v", problems)
	}
}

func TestLintExemplarRules(t *testing.T) {
	// Well-formed exemplar on a bucket line: accepted.
	good := `wsq_latency_seconds_bucket{le="1"} 2 # {trace_id="abc"} 0.5`
	if problems := LintExposition(good); len(problems) != 0 {
		t.Errorf("valid exemplar rejected: %v", problems)
	}
	// Exemplar on a non-bucket series: rejected.
	bad := `wsq_latency_seconds_sum 2 # {trace_id="abc"} 0.5`
	if problems := LintExposition(bad); len(problems) == 0 {
		t.Error("exemplar on _sum accepted")
	}
	// Malformed annotation: rejected.
	malformed := `wsq_latency_seconds_bucket{le="1"} 2 # {trace_id=abc} 0.5`
	if problems := LintExposition(malformed); len(problems) == 0 {
		t.Error("malformed exemplar accepted")
	}
}
