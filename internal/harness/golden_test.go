package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/search"
)

// The golden end-to-end suite: the paper's three Table 1 query templates run
// against the deterministic websim corpus, asserting exact result sets —
// first fault-free, then under 30% injected transient faults, where retries
// must mask every fault and reproduce byte-identical results.

const goldenFaultProb = 0.3

// goldenRetry is deep enough that the residual per-call failure rate
// (0.3^12 ≈ 5e-7) is negligible across the suite's few hundred calls.
func goldenRetry() async.RetryPolicy {
	return async.RetryPolicy{
		MaxAttempts: 12,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
		JitterFrac:  0.5,
	}
}

func goldenLatency() search.LatencyModel {
	return search.LatencyModel{Base: time.Millisecond, Jitter: 500 * time.Microsecond, CountFactor: 0.8}
}

// goldenQueries instantiates run 1 of each template, two instances each.
func goldenQueries(t *testing.T) []string {
	t.Helper()
	var out []string
	for tmpl := 1; tmpl <= 3; tmpl++ {
		qs, err := TemplateQueries(tmpl, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, qs...)
	}
	return out
}

// resultSet executes q and returns its rows formatted and sorted (the
// engine's row order for unordered queries is not part of the contract).
func resultSet(t *testing.T, env *Env, q string) []string {
	t.Helper()
	res, err := env.DB.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		rows[i] = strings.Join(parts, "|")
	}
	sort.Strings(rows)
	return rows
}

func digest(rows []string) string {
	h := sha256.New()
	for _, r := range rows {
		fmt.Fprintln(h, r)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

func collectAll(t *testing.T, env *Env, queries []string) [][]string {
	t.Helper()
	out := make([][]string, len(queries))
	for i, q := range queries {
		out[i] = resultSet(t, env, q)
	}
	return out
}

// goldenDigests pins the exact result sets of the six golden queries
// (template 1, 2, 3 × two instances, sorted rows, 16-hex-char SHA-256).
// They change only if websim's corpus or the templates change.
var goldenDigests = []string{
	"4d526bf328486f38", // template 1, instance 1 (50 rows)
	"9731a3745d3716c2", // template 1, instance 2 (50 rows)
	"8ca04d5441649b52", // template 2, instance 1 (100 rows)
	"476874881c2315ba", // template 2, instance 2 (100 rows)
	"8fdba8416c344500", // template 3, instance 1 (333 rows)
	"27d7f3b7501e5f4d", // template 3, instance 2 (333 rows)
}

func TestGoldenTable1ResultSets(t *testing.T) {
	env, err := NewEnv(Options{Dir: t.TempDir(), Latency: goldenLatency(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	queries := goldenQueries(t)
	results := collectAll(t, env, queries)
	for i, rows := range results {
		if len(rows) == 0 {
			t.Errorf("query %d returned no rows: %s", i, queries[i])
		}
		if d := digest(rows); d != goldenDigests[i] {
			t.Errorf("query %d digest = %q, want %q (%d rows)\nquery: %s",
				i, d, goldenDigests[i], len(rows), queries[i])
		}
	}
}

// TestGoldenTable1BatchSizes sweeps the vectorized executor's batch size
// across the degenerate (1), misaligned (3), and wide (256) settings:
// batch boundaries must never change the result set, so every setting
// must reproduce the pinned golden digests exactly.
func TestGoldenTable1BatchSizes(t *testing.T) {
	env, err := NewEnv(Options{Dir: t.TempDir(), Latency: goldenLatency(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	queries := goldenQueries(t)
	for _, bs := range []int{1, 3, 256} {
		for i, q := range queries {
			res, err := env.DB.QueryContextOpts(context.Background(), q, core.QueryOptions{BatchSize: bs})
			if err != nil {
				t.Fatalf("batch %d query %d: %v\nquery: %s", bs, i, err, q)
			}
			rows := make([]string, len(res.Rows))
			for ri, r := range res.Rows {
				parts := make([]string, len(r))
				for j, v := range r {
					parts[j] = v.String()
				}
				rows[ri] = strings.Join(parts, "|")
			}
			sort.Strings(rows)
			if d := digest(rows); d != goldenDigests[i] {
				t.Errorf("batch %d query %d digest = %q, want %q (%d rows)\nquery: %s",
					bs, i, d, goldenDigests[i], len(rows), q)
			}
		}
	}
}

// TestGoldenResultsUnchangedUnderTransientFaults is the tentpole's
// end-to-end claim: with 30%% of engine calls failing transiently, retries
// inside the pump mask every fault and the result sets are identical to the
// fault-free run.
func TestGoldenResultsUnchangedUnderTransientFaults(t *testing.T) {
	queries := goldenQueries(t)

	clean, err := NewEnv(Options{Dir: t.TempDir(), Latency: goldenLatency(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	want := collectAll(t, clean, queries)

	faults := search.TransientOnly(goldenFaultProb)
	flaky, err := NewEnv(Options{
		Dir: t.TempDir(), Latency: goldenLatency(), Seed: 7,
		Faults: &faults, Retry: goldenRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer flaky.Close()
	got := collectAll(t, flaky, queries)

	for i := range queries {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("query %d: results diverge under transient faults\nquery: %s\nclean: %d rows (%s)\nflaky: %d rows (%s)",
				i, queries[i], len(want[i]), digest(want[i]), len(got[i]), digest(got[i]))
		}
	}

	av, g := flaky.FlakyAV.Stats(), flaky.FlakyGoogle.Stats()
	if av.Injected()+g.Injected() == 0 {
		t.Fatal("fault injector never fired; the test proves nothing")
	}
	ps := flaky.DB.Pump().Stats()
	if ps.Retries == 0 {
		t.Error("no pump retries recorded despite injected faults")
	}
	if ps.CallsFailed != 0 {
		t.Errorf("CallsFailed = %d; transient faults leaked past the retry budget", ps.CallsFailed)
	}
}

// TestGoldenFaultScheduleReproducible: the same seed yields the same fault
// schedule (and therefore the same injected-fault counts) across runs.
func TestGoldenFaultScheduleReproducible(t *testing.T) {
	queries := goldenQueries(t)
	run := func() (search.FlakyStats, search.FlakyStats, [][]string) {
		faults := search.TransientOnly(goldenFaultProb)
		// One call at a time: concurrent calls would consume the shared RNG
		// in scheduler order, which is not part of the determinism contract.
		env, err := NewEnv(Options{
			Dir: t.TempDir(), Latency: goldenLatency(), Seed: 21,
			MaxConcurrentCalls: 1, MaxCallsPerDest: 1,
			Faults: &faults, Retry: goldenRetry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer env.Close()
		rows := collectAll(t, env, queries)
		return env.FlakyAV.Stats(), env.FlakyGoogle.Stats(), rows
	}
	av1, g1, rows1 := run()
	av2, g2, rows2 := run()
	if !reflect.DeepEqual(rows1, rows2) {
		t.Error("result sets differ between identically seeded runs")
	}
	if av1 != av2 || g1 != g2 {
		t.Errorf("fault schedules differ between identically seeded runs:\nAV %+v vs %+v\nG  %+v vs %+v", av1, av2, g1, g2)
	}
}
