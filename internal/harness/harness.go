// Package harness sets up reproducible WSQ experiment environments and
// regenerates the paper's evaluation artifacts: Table 1 (the three query
// templates, synchronous vs asynchronous, reported as mean seconds and
// improvement factor) plus ablations of the design choices the paper
// discusses (concurrency limits, result caching, ReqSync buffering).
package harness

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/types"
	"repro/internal/websim"
)

// Options configures an experiment environment.
type Options struct {
	// Ctx bounds the lifetime of the environment's outbound HTTP engine
	// requests (Options.HTTP mode): cancel it to abort whatever calls are
	// still in flight at teardown. Nil leaves them bounded only by the
	// client's own timeout. It is not a per-query deadline — queries get
	// their own contexts via QueryContext.
	Ctx context.Context
	// Dir is the database directory (a temp dir from the caller).
	Dir string
	// Latency is the simulated per-request search latency.
	Latency search.LatencyModel
	// HTTP routes engine calls through real localhost HTTP servers rather
	// than in-process engines.
	HTTP bool
	// MaxConcurrentCalls / MaxCallsPerDest bound the request pump.
	MaxConcurrentCalls int
	MaxCallsPerDest    int
	// CacheSize enables the [HN96] result cache when > 0.
	CacheSize int
	// StreamingReqSync enables the streaming ReqSync variant.
	StreamingReqSync bool
	// Seed offsets the latency jitter streams.
	Seed int64
	// Faults, when non-nil, wraps both engines in a seeded search.Flaky
	// fault injector drawing from the same RNG as the latency jitter.
	Faults *search.FaultModel
	// Retry configures the pump's retry/timeout/hedging policy (zero value:
	// one attempt, no deadline, no hedging).
	Retry async.RetryPolicy
	// Degrade is the default degradation policy for queries.
	Degrade exec.DegradePolicy
}

// Env is a ready-to-query experiment environment.
type Env struct {
	DB *core.DB
	// AV and Google expose concurrency statistics of the two engines.
	AV, Google *search.Delayed
	// FlakyAV and FlakyGoogle are the fault injectors wrapping the engines;
	// nil unless Options.Faults was set.
	FlakyAV, FlakyGoogle *search.Flaky

	// SyncLatency and AsyncLatency accumulate per-query wall time (seconds)
	// across every TimedRun, one histogram per execution mode. They are
	// deliberately not cleared by ResetBetweenRuns: percentile reporting
	// (wsqbench -json-out) wants the whole experiment's distribution.
	SyncLatency, AsyncLatency *obs.Histogram

	servers []*http.Server
}

// NewEnv builds the standard experiment environment: the shared synthetic
// corpus, two latency-wrapped engines ("altavista", "google") optionally
// behind HTTP, and a database loaded with the paper's States, Sigs,
// CSFields, and Movies tables.
func NewEnv(opts Options) (*Env, error) {
	corpus := websim.Default()
	env := &Env{
		SyncLatency:  obs.NewHistogram(nil),
		AsyncLatency: obs.NewHistogram(nil),
	}
	// One seeded RNG per engine, shared by the latency wrapper and the
	// fault injector so a single seed fixes the whole stochastic schedule.
	avRng := search.NewRand(1000 + opts.Seed)
	gRng := search.NewRand(2000 + opts.Seed)
	env.AV = search.NewDelayedRand(websim.NewAltaVista(corpus), opts.Latency, avRng)
	env.Google = search.NewDelayedRand(websim.NewGoogle(corpus), opts.Latency, gRng)
	avEngine, gEngine := search.Engine(env.AV), search.Engine(env.Google)
	if opts.Faults != nil {
		env.FlakyAV = search.NewFlaky(env.AV, *opts.Faults, avRng)
		env.FlakyGoogle = search.NewFlaky(env.Google, *opts.Faults, gRng)
		avEngine, gEngine = env.FlakyAV, env.FlakyGoogle
	}

	db, err := core.Open(core.Config{
		Dir:                opts.Dir,
		Async:              true,
		MaxConcurrentCalls: opts.MaxConcurrentCalls,
		MaxCallsPerDest:    opts.MaxCallsPerDest,
		CacheSize:          opts.CacheSize,
		StreamingReqSync:   opts.StreamingReqSync,
		Retry:              opts.Retry,
		Degrade:            opts.Degrade,
	})
	if err != nil {
		return nil, err
	}
	env.DB = db

	if opts.HTTP {
		avURL, avSrv, err := serveEngine(avEngine)
		if err != nil {
			db.Close()
			return nil, err
		}
		gURL, gSrv, err := serveEngine(gEngine)
		if err != nil {
			avSrv.Close()
			db.Close()
			return nil, err
		}
		env.servers = []*http.Server{avSrv, gSrv}
		db.RegisterEngine(search.Bind(opts.Ctx, search.NewClient("altavista", avURL)), "AV")
		db.RegisterEngine(search.Bind(opts.Ctx, search.NewClient("google", gURL)), "G")
	} else {
		db.RegisterEngine(avEngine, "AV")
		db.RegisterEngine(gEngine, "G")
	}

	if err := LoadPaperTables(opts.Ctx, db); err != nil {
		env.Close()
		return nil, err
	}
	return env, nil
}

// serveEngine exposes an engine over HTTP on an ephemeral localhost port.
func serveEngine(e search.Engine) (baseURL string, srv *http.Server, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv = &http.Server{Handler: search.NewHandler(e)}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), srv, nil
}

// Close shuts the environment down.
func (e *Env) Close() {
	for _, s := range e.servers {
		s.Close()
	}
	e.DB.Close()
}

// ResetBetweenRuns clears caches and statistics so consecutive timed runs
// are independent (the paper waited two hours between identical searches
// to defeat engine-side caching; our knob is more direct).
func (e *Env) ResetBetweenRuns() {
	if c := e.DB.Cache(); c != nil {
		c.Reset()
	}
	e.DB.Pump().ResetStats()
	e.AV.ResetStats()
	e.Google.ResetStats()
	if e.FlakyAV != nil {
		e.FlakyAV.ResetStats()
	}
	if e.FlakyGoogle != nil {
		e.FlakyGoogle.ResetStats()
	}
}

// LoadPaperTables creates and fills the paper's stored tables. The DDL
// runs under ctx (nil means unbounded).
func LoadPaperTables(ctx context.Context, db *core.DB) error {
	type load struct {
		ddl  string
		name string
		rows []types.Tuple
	}
	var loads []load

	states := load{ddl: `CREATE TABLE States (Name VARCHAR, Population INT, Capital VARCHAR)`, name: "States"}
	for _, s := range datasets.States {
		states.rows = append(states.rows, types.Tuple{types.Str(s.Name), types.Int(s.Population), types.Str(s.Capital)})
	}
	loads = append(loads, states)

	sigs := load{ddl: `CREATE TABLE Sigs (Name VARCHAR)`, name: "Sigs"}
	for _, s := range datasets.Sigs {
		sigs.rows = append(sigs.rows, types.Tuple{types.Str(s)})
	}
	loads = append(loads, sigs)

	fields := load{ddl: `CREATE TABLE CSFields (Name VARCHAR)`, name: "CSFields"}
	for _, f := range datasets.CSFields {
		fields.rows = append(fields.rows, types.Tuple{types.Str(f)})
	}
	loads = append(loads, fields)

	movies := load{ddl: `CREATE TABLE Movies (Title VARCHAR)`, name: "Movies"}
	for _, m := range datasets.Movies {
		movies.rows = append(movies.rows, types.Tuple{types.Str(m)})
	}
	loads = append(loads, movies)

	for _, l := range loads {
		if _, ok := db.Catalog().Get(l.name); ok {
			continue
		}
		if _, err := db.ExecContext(ctx, l.ddl); err != nil {
			return err
		}
		t, _ := db.Catalog().Get(l.name)
		for _, r := range l.rows {
			if _, err := t.Insert(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Table 1 templates

// Template instantiates one of the paper's three Section 5 query templates
// with constants drawn from the template-constant pool.
//
// Template 1: States ⋈ WebCount with T2 = V1.
// Template 2: States ⋈ WebCount ⋈ WebPages (Rank <= 2), V1 ≠ V2.
// Template 3: Sigs ⋈ WebPages_AV ⋈ WebPages_Google (Rank <= 3), shared V1.
func Template(n int, v1, v2 string) (string, error) {
	switch n {
	case 1:
		return fmt.Sprintf(
			`SELECT Name, Count FROM States, WebCount WHERE Name = T1 AND T2 = '%s'`, v1), nil
	case 2:
		return fmt.Sprintf(
			`SELECT Name, Count, URL, Rank FROM States, WebCount, WebPages
			 WHERE Name = WebCount.T1 AND WebCount.T2 = '%s'
			   AND Name = WebPages.T1 AND WebPages.T2 = '%s' AND WebPages.Rank <= 2`, v1, v2), nil
	case 3:
		return fmt.Sprintf(
			`SELECT Name, AV.URL, G.URL FROM Sigs, WebPages_AV AV, WebPages_Google G
			 WHERE Name = AV.T1 AND Name = G.T1 AND AV.Rank <= 3 AND G.Rank <= 3
			   AND AV.T2 = '%s' AND G.T2 = '%s'`, v1, v1), nil
	default:
		return "", fmt.Errorf("unknown template %d (have 1-3)", n)
	}
}

// TemplateQueries instantiates `instances` queries of template n for the
// given run (1 or 2), drawing disjoint constants per run as the paper did
// ("for corroboration, we repeated the test with 8 new query instances").
func TemplateQueries(n, run, instances int) ([]string, error) {
	pool := datasets.TemplateConstants
	need := instances
	if n == 2 {
		need = 2 * instances // V1 != V2
	}
	offset := (run - 1) * need
	if offset+need > len(pool) {
		return nil, fmt.Errorf("template %d run %d needs %d constants; pool has %d",
			n, run, offset+need, len(pool))
	}
	var out []string
	for i := 0; i < instances; i++ {
		v1 := pool[offset+i]
		v2 := ""
		if n == 2 {
			v2 = pool[offset+instances+i]
		}
		q, err := Template(n, v1, v2)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Timing

// TimedRun executes the queries in the given mode under ctx and returns
// the mean per-query wall time.
func TimedRun(ctx context.Context, env *Env, queries []string, async bool) (time.Duration, error) {
	env.DB.SetAsync(async)
	env.ResetBetweenRuns()
	hist := env.SyncLatency
	if async {
		hist = env.AsyncLatency
	}
	var total time.Duration
	for _, q := range queries {
		start := time.Now()
		if _, err := env.DB.QueryContext(ctx, q); err != nil {
			return 0, fmt.Errorf("%s: %w", firstLine(q), err)
		}
		d := time.Since(start)
		hist.ObserveDuration(d)
		total += d
	}
	return total / time.Duration(len(queries)), nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// RunResult is one (template, run) row of Table 1.
type RunResult struct {
	Template    int
	Run         int
	Queries     int
	SyncMean    time.Duration
	AsyncMean   time.Duration
	Improvement float64
	// MaxConcurrency is the peak number of overlapped engine requests
	// observed during the asynchronous run.
	MaxConcurrency int
}

// RunTemplate measures one (template, run) cell pair: asynchronous first,
// then synchronous, as the paper did ("after timing all queries using
// asynchronous iteration, we ... timed all queries using the standard
// query processor").
func RunTemplate(ctx context.Context, env *Env, template, run, instances int) (RunResult, error) {
	queries, err := TemplateQueries(template, run, instances)
	if err != nil {
		return RunResult{}, err
	}
	asyncMean, err := TimedRun(ctx, env, queries, true)
	if err != nil {
		return RunResult{}, err
	}
	_, avMax := env.AV.Stats()
	_, gMax := env.Google.Stats()
	maxConc := avMax + gMax
	syncMean, err := TimedRun(ctx, env, queries, false)
	if err != nil {
		return RunResult{}, err
	}
	res := RunResult{
		Template: template, Run: run, Queries: len(queries),
		SyncMean: syncMean, AsyncMean: asyncMean,
		MaxConcurrency: maxConc,
	}
	if asyncMean > 0 {
		res.Improvement = float64(syncMean) / float64(asyncMean)
	}
	return res, nil
}

// Table1 runs the full experiment: three templates × two runs.
func Table1(ctx context.Context, env *Env, instances int) ([]RunResult, error) {
	var out []RunResult
	for tmpl := 1; tmpl <= 3; tmpl++ {
		for run := 1; run <= 2; run++ {
			r, err := RunTemplate(ctx, env, tmpl, run, instances)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// FormatTable1 renders results in the layout of the paper's Table 1.
func FormatTable1(results []RunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %16s %12s\n", "", "Synchronous (s)", "Asynchronous (s)", "Improvement")
	last := 0
	for _, r := range results {
		if r.Template != last {
			fmt.Fprintf(&b, "Template %d\n", r.Template)
			last = r.Template
		}
		label := fmt.Sprintf("  Run %d (%d queries)", r.Run, r.Queries)
		fmt.Fprintf(&b, "%-28s %14.2f %16.2f %11.1fx\n",
			label, r.SyncMean.Seconds(), r.AsyncMean.Seconds(), r.Improvement)
	}
	return b.String()
}
