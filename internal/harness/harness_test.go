package harness

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/search"
)

func newTestEnv(t *testing.T, opts Options) *Env {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	env, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	return env
}

func TestEnvLoadsPaperTables(t *testing.T) {
	env := newTestEnv(t, Options{Latency: search.ZeroLatency()})
	for table, want := range map[string]int{"States": 50, "Sigs": 37, "CSFields": 15, "Movies": 25} {
		res, err := env.DB.QueryContext(context.Background(), `SELECT COUNT(*) FROM `+table)
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := res.Rows[0][0].AsInt(); int(n) != want {
			t.Errorf("%s: %d rows, want %d", table, n, want)
		}
	}
}

func TestTemplateInstantiation(t *testing.T) {
	for n := 1; n <= 3; n++ {
		qs, err := TemplateQueries(n, 1, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) != 8 {
			t.Fatalf("template %d: %d queries", n, len(qs))
		}
		// All instances distinct.
		seen := make(map[string]bool)
		for _, q := range qs {
			if seen[q] {
				t.Errorf("template %d: duplicate instance", n)
			}
			seen[q] = true
		}
		// Run 2 uses disjoint constants.
		qs2, err := TemplateQueries(n, 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs2 {
			if seen[q] {
				t.Errorf("template %d: run 2 reuses run 1 constants", n)
			}
		}
	}
	// Template 2 uses V1 != V2.
	qs, _ := TemplateQueries(2, 1, 4)
	for _, q := range qs {
		parts := strings.Split(q, "'")
		if len(parts) < 4 || parts[1] == parts[3] {
			t.Errorf("template 2 constants must differ: %s", q)
		}
	}
	if _, err := Template(4, "", ""); err == nil {
		t.Error("unknown template")
	}
	if _, err := TemplateQueries(2, 2, 100); err == nil {
		t.Error("pool exhaustion should error")
	}
}

func TestTemplateQueriesExecute(t *testing.T) {
	env := newTestEnv(t, Options{Latency: search.ZeroLatency()})
	for n := 1; n <= 3; n++ {
		qs, _ := TemplateQueries(n, 1, 1)
		env.DB.SetAsync(true)
		res, err := env.DB.QueryContext(context.Background(), qs[0])
		if err != nil {
			t.Fatalf("template %d: %v", n, err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("template %d returned no rows", n)
		}
	}
}

func TestRunTemplateImprovement(t *testing.T) {
	env := newTestEnv(t, Options{
		Latency: search.LatencyModel{Base: 5 * time.Millisecond, Jitter: 2 * time.Millisecond, CountFactor: 0.8},
	})
	r, err := RunTemplate(context.Background(), env, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.SyncMean <= r.AsyncMean {
		t.Errorf("async (%v) should beat sync (%v)", r.AsyncMean, r.SyncMean)
	}
	if r.Improvement < 3 {
		t.Errorf("improvement %.1fx too small for a latency-dominated workload", r.Improvement)
	}
	if r.MaxConcurrency < 8 {
		t.Errorf("async run should overlap many calls: %d", r.MaxConcurrency)
	}
}

func TestFormatTable1(t *testing.T) {
	results := []RunResult{
		{Template: 1, Run: 1, Queries: 8, SyncMean: 23130 * time.Millisecond, AsyncMean: 3880 * time.Millisecond, Improvement: 6.0},
		{Template: 1, Run: 2, Queries: 8, SyncMean: 32800 * time.Millisecond, AsyncMean: 3500 * time.Millisecond, Improvement: 9.4},
	}
	out := FormatTable1(results)
	for _, want := range []string{"Template 1", "Run 1", "23.13", "3.88", "6.0x"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPEnvironment(t *testing.T) {
	env := newTestEnv(t, Options{Latency: search.ZeroLatency(), HTTP: true})
	res, err := env.DB.QueryContext(context.Background(), `SELECT Name, Count FROM States, WebCount WHERE Name = T1 ORDER BY Count DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 50 || res.Rows[0][0].AsString() != "California" {
		t.Errorf("HTTP-backed Q1: %v", res.Rows[:1])
	}
	requests, _ := env.AV.Stats()
	if requests != 50 {
		t.Errorf("server-side request count: %d", requests)
	}
}

func TestResetBetweenRuns(t *testing.T) {
	env := newTestEnv(t, Options{Latency: search.ZeroLatency(), CacheSize: 128})
	env.DB.QueryContext(context.Background(), `SELECT Count FROM WebCount WHERE T1 = 'California'`)
	env.ResetBetweenRuns()
	if reg := env.DB.Pump().Stats().Registered; reg != 0 {
		t.Error("pump stats not reset")
	}
	if c := env.DB.Cache(); c != nil && c.Len() != 0 {
		t.Error("cache not reset")
	}
}
