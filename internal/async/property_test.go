package async

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
)

// The property suite: randomized seeded fault schedules against the
// two-call ReqSync plan, checking the paper's tuple algebra invariants.
//
// For every driving term with per-call result cardinalities (a, b):
//   - if both calls eventually succeed, the term contributes exactly a×b
//     output tuples (expansion multiplicativity);
//   - if either call fails terminally under the drop policy, the term
//     contributes zero tuples (cancellation completeness);
//   - after the query finishes and the pump settles, no results remain
//     parked (canceled calls never leak).

// faultScript is one term's behavior at one source.
type faultScript struct {
	rows     int  // result cardinality once the call succeeds
	failures int  // transient failures before the first success
	hard     bool // fail permanently instead
}

// scriptedFaultSource fails each argument per its script, then succeeds.
type scriptedFaultSource struct {
	name     string
	dest     string
	scripts  map[string]faultScript
	mu       sync.Mutex
	attempts map[string]int
}

func (s *scriptedFaultSource) Name() string        { return s.name }
func (s *scriptedFaultSource) Destination() string { return s.dest }
func (s *scriptedFaultSource) NumEcho() int        { return 0 }
func (s *scriptedFaultSource) CacheKey(args []types.Value) string {
	return s.name + "|" + args[0].AsString()
}

func (s *scriptedFaultSource) Call(args []types.Value) ([]types.Tuple, error) {
	arg := args[0].AsString()
	sc := s.scripts[arg]
	if sc.hard {
		return nil, fmt.Errorf("%s(%s): scripted hard failure", s.name, arg)
	}
	s.mu.Lock()
	s.attempts[arg]++
	n := s.attempts[arg]
	s.mu.Unlock()
	if n <= sc.failures {
		return nil, transientErr{fmt.Sprintf("%s(%s): scripted transient %d", s.name, arg, n)}
	}
	out := make([]types.Tuple, sc.rows)
	for i := range out {
		out[i] = types.Tuple{types.Str(s.name + "-" + arg + "-" + fmt.Sprint(i))}
	}
	return out, nil
}

func randomScripts(rng *rand.Rand, terms []string) map[string]faultScript {
	out := make(map[string]faultScript, len(terms))
	for _, term := range terms {
		out[term] = faultScript{
			rows:     rng.Intn(4),          // 0..3 result rows
			failures: rng.Intn(3),          // 0..2 transient failures
			hard:     rng.Float64() < 0.15, // occasional permanent failure
		}
	}
	return out
}

func TestReqSyncPropertiesUnderRandomFaultSchedules(t *testing.T) {
	for iter := 0; iter < 25; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("seed=%d", 9000+iter), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9000 + iter)))
			nTerms := 1 + rng.Intn(6)
			terms := make([]string, nTerms)
			for i := range terms {
				terms[i] = fmt.Sprintf("t%d", i)
			}
			srcA := &scriptedFaultSource{name: "A", dest: "a",
				scripts: randomScripts(rng, terms), attempts: map[string]int{}}
			srcB := &scriptedFaultSource{name: "B", dest: "b",
				scripts: randomScripts(rng, terms), attempts: map[string]int{}}

			pump := NewPump(1+rng.Intn(8), 1+rng.Intn(4), nil)
			defer pump.Close()
			// 3 retries cover the scripted 0..2 transient failures, so only
			// hard-scripted calls fail terminally.
			pump.SetRetryPolicy(RetryPolicy{
				MaxAttempts: 4,
				BaseBackoff: 100 * time.Microsecond,
				JitterFrac:  0.5,
			})

			termCol := strCol("L", "Term")
			left := exec.NewValuesScan(schema.New(termCol), tuplesOf(terms))
			aOut := schema.New(strCol("A", "Val"))
			bOut := schema.New(strCol("B", "Val"))
			aev1 := NewAEVScan(srcA, []expr.Expr{expr.NewColRef(termCol)}, aOut, pump)
			dj1 := exec.NewDependentJoin(left, aev1, "")
			aev2 := NewAEVScan(srcB, []expr.Expr{expr.NewColRef(termCol)}, bOut, pump)
			dj2 := exec.NewDependentJoin(dj1, aev2, "")
			filled := aev1.FilledAttrs()
			for id := range aev2.FilledAttrs() {
				filled[id] = true
			}
			rs := NewReqSync(dj2, pump, filled)

			ctx := exec.NewContext()
			ctx.Degrade = exec.DegradeDrop
			rows, err := exec.Run(ctx, rs)
			if err != nil {
				t.Fatalf("drop policy must absorb all terminal failures: %v", err)
			}

			// Multiplicativity: per-term output count is the product of the
			// two calls' cardinalities, zero if either failed terminally.
			got := map[string]int{}
			for _, r := range rows {
				if r.HasPlaceholder() {
					t.Fatalf("placeholder escaped ReqSync: %v", r)
				}
				got[r[0].AsString()]++
			}
			wantDegraded := 0
			for _, term := range terms {
				a, b := srcA.scripts[term], srcB.scripts[term]
				want := a.rows * b.rows
				if a.hard || b.hard {
					want = 0
					wantDegraded++
				}
				if got[term] != want {
					t.Errorf("term %s: %d output tuples, want %d (A{rows:%d hard:%v} B{rows:%d hard:%v})",
						term, got[term], want, a.rows, a.hard, b.rows, b.hard)
				}
			}
			// Degraded-call accounting: hard failures on the B call may be
			// short-circuited when the A call already canceled the tuple, so
			// the counter is bounded by, not equal to, the scripted count.
			if int(ctx.Stats.DegradedCalls) > 2*nTerms {
				t.Errorf("DegradedCalls = %d exceeds any possible schedule", ctx.Stats.DegradedCalls)
			}
			if wantDegraded > 0 && ctx.Stats.DegradedCalls == 0 {
				t.Error("hard failures scripted but DegradedCalls is zero")
			}

			// Leak freedom: once the pump settles, no results stay parked
			// and no completion flags survive.
			waitSettled(t, pump)
			pump.mu.Lock()
			parked, done := len(pump.results), len(pump.done)
			pump.mu.Unlock()
			if parked != 0 || done != 0 {
				t.Errorf("leaked pump state after query end: %d parked results, %d done flags", parked, done)
			}
		})
	}
}
