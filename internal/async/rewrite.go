package async

import (
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/schema"
)

// Rewrite converts a conventional query plan into an asynchronous-iteration
// plan, implementing the three-step algorithm of Section 4.5:
//
//  1. Insertion — every EVScan becomes an AEVScan with a ReqSync directly
//     above it;
//  2. Percolation — each ReqSync is pulled up past non-clashing operators,
//     hoisting clashing selections first and rewriting clashing joins as a
//     selection over a cross-product;
//  3. Consolidation — adjacent ReqSyncs merge, unioning their attribute
//     sets.
//
// The input plan comes from an optimizer that "knows nothing about
// asynchronous iteration"; the output plan is executable by the same
// iterator engine, since AEVScan and ReqSync obey the standard interface.
func Rewrite(root exec.Operator, pump *Pump) exec.Operator {
	root = insert(root, pump)
	root = percolateAll(root)
	root = consolidate(root)
	return root
}

// RewriteInsertOnly performs only step 1 (Insertion), leaving each ReqSync
// directly above its AEVScan. The plan is correct but gains no concurrency
// across outer tuples — each dependent join still blocks per binding. It
// exists as the ablation baseline showing that percolation, not mere
// asynchrony, is what buys the paper's speedups.
func RewriteInsertOnly(root exec.Operator, pump *Pump) exec.Operator {
	return insert(root, pump)
}

// ---------------------------------------------------------------------------
// Step 1: Insertion

// insert replaces EVScans with AEVScans and places a ReqSync directly
// above each ("no operations occur between each asynchronous call and the
// blocking operator that waits for its completion" — trivially correct).
func insert(op exec.Operator, pump *Pump) exec.Operator {
	for i, c := range op.Children() {
		op.SetChild(i, insert(c, pump))
	}
	if ev, ok := op.(*exec.EVScan); ok {
		aev := FromEVScan(ev, pump)
		return NewReqSync(aev, pump, aev.FilledAttrs())
	}
	return op
}

// ---------------------------------------------------------------------------
// Step 2: Percolation

// percolateAll pulls every ReqSync as high as its clashes allow. The order
// in which ReqSyncs are processed only affects the relative order of
// adjacent ReqSyncs, which consolidation erases (Section 4.5.2).
func percolateAll(root exec.Operator) exec.Operator {
	for _, rs := range collectReqSyncs(root) {
		root = percolate(root, rs)
	}
	return root
}

func collectReqSyncs(op exec.Operator) []*ReqSync {
	var out []*ReqSync
	if rs, ok := op.(*ReqSync); ok {
		out = append(out, rs)
	}
	for _, c := range op.Children() {
		out = append(out, collectReqSyncs(c)...)
	}
	return out
}

// percolate pulls one ReqSync up the plan until it reaches the root or a
// clashing operator it cannot move past.
func percolate(root exec.Operator, rs *ReqSync) exec.Operator {
	for {
		parent, idx := findParent(root, rs)
		if parent == nil {
			return root // rs is the root
		}
		switch p := parent.(type) {
		case *ReqSync:
			// Adjacent ReqSyncs commute; leave ordering to consolidation.
			return root

		case *exec.Filter:
			if !expr.References(p.Pred, rs.A) {
				root = swapUp(root, parent, rs)
				continue
			}
			// Clashing selection: pull the selection above ITS parent
			// first when legal ("if O is a projection or selection, we can
			// pull O above its parent first"), then retry. When several
			// clashing selections are stacked directly on the ReqSync
			// (e.g. a hoisted web filter plus a join→σ(×) selection),
			// hoist the TOPMOST of the stack — hoisting the immediate
			// parent would just swap two clashing selections with each
			// other forever.
			top := p
			for {
				gp, _ := findParent(root, top)
				f, ok := gp.(*exec.Filter)
				if !ok || !expr.References(f.Pred, rs.A) {
					break
				}
				top = f
			}
			// Hoist only past operators the ReqSync could itself follow.
			// If the stack's parent blocks the ReqSync anyway (a dependent
			// join binding one of rs.A, a sort keyed on one), hoisting is a
			// pure pessimization: the ReqSync still rests here, while the
			// selection — which could have applied before the blocker —
			// would now apply above it, issuing extra web calls below any
			// later dependent join.
			if gp, gidx := findParent(root, top); gp != nil && blocksReqSync(gp, gidx, rs) {
				return root
			}
			if hoisted, newRoot := hoistAbove(root, top); hoisted {
				root = newRoot
				continue
			}
			return root

		case *exec.Project:
			if projectClashes(p, rs.A) {
				return root
			}
			root = swapUp(root, parent, rs)
			continue

		case *exec.Sort:
			if intersects(p.KeyAttrs(), rs.A) {
				return root
			}
			root = swapUp(root, parent, rs)
			continue

		case *exec.NestedLoopJoin:
			if p.Pred != nil && expr.References(p.Pred, rs.A) {
				// Clashing join: "rewrite it as a selection over a
				// cross-product" (Section 4.5.2), then continue pulling —
				// the ReqSync passes the cross-product and stops below the
				// new selection (Figure 8).
				root = rewriteJoinAsSelection(root, p)
				continue
			}
			root = swapUp(root, parent, rs)
			continue

		case *exec.HashJoin:
			if intersects(hashJoinRefs(p), rs.A) {
				// A hash join whose keys (or residual) would interpret
				// placeholder values is a clash. Fall back to the paper's
				// join→σ(×) rewrite — the full predicate as a selection
				// over a predicate-free nested loop — then continue: the
				// ReqSync passes the cross-product and stops below the new
				// selection, exactly as for a clashing NestedLoopJoin.
				root = rewriteHashJoinAsSelection(root, p)
				continue
			}
			// Non-clashing keys: placeholders merely ride through the
			// build/probe tuples, to be settled above.
			root = swapUp(root, parent, rs)
			continue

		case *exec.UnionAll:
			// Bag union neither interprets values nor counts tuples — the
			// explicitly non-clashing operator of Section 4.5.2's union
			// rewrite ("a 'Select Distinct' over a non-clashing bag union").
			root = swapUp(root, parent, rs)
			continue

		case *exec.DependentJoin:
			// Pulling past a dependent join is illegal only when the join
			// feeds rs.A attributes to its right subtree as bindings (the
			// subtree would see placeholders). That can only happen when rs
			// is the left input.
			if idx == 0 && intersects(outerRefs(p.Right), rs.A) {
				return root
			}
			root = swapUp(root, parent, rs)
			continue

		default:
			// Aggregate, Distinct, Limit (existential), HashSemiJoin (its
			// output multiplicity is an existence decision), and any
			// unknown operator clash unconditionally (Section 4.5.2,
			// case 3).
			return root
		}
	}
}

// projectClashes reports whether a projection depends on, or removes, any
// attribute the ReqSync fills: computed expressions over rs.A interpret
// placeholder values (case 1), and projecting a placeholder away breaks
// tuple cancellation/generation (case 2).
func projectClashes(p *exec.Project, a map[schema.AttrID]bool) bool {
	kept := make(map[schema.AttrID]bool)
	for _, e := range p.Exprs {
		if cr, ok := e.(*expr.ColRef); ok {
			kept[cr.ID] = true
			continue
		}
		if expr.References(e, a) {
			return true // computed expression needs the real value
		}
	}
	for id := range a {
		if !kept[id] {
			return true // placeholder attribute projected away
		}
	}
	return false
}

// blocksReqSync reports whether rs could never percolate past p from
// child position idx: a dependent join feeding rs.A attributes to its
// right subtree as bindings, or a sort keyed on an attribute rs fills.
// (Operators that clash unconditionally — projections, aggregates,
// distincts, semi-joins — never accept a hoist in the first place.)
func blocksReqSync(p exec.Operator, idx int, rs *ReqSync) bool {
	switch o := p.(type) {
	case *exec.DependentJoin:
		return idx == 0 && intersects(outerRefs(o.Right), rs.A)
	case *exec.Sort:
		return intersects(o.KeyAttrs(), rs.A)
	}
	return false
}

// hoistAbove tries to move a clashing Filter one level up (above its own
// parent), returning the possibly-new root. Filters commute with other
// filters, joins, cross-products, and sorts; they cannot be hoisted above
// projections that drop their columns, aggregates, distincts, or limits.
func hoistAbove(root exec.Operator, f *exec.Filter) (bool, exec.Operator) {
	parent, _ := findParent(root, f)
	if parent == nil {
		return false, root
	}
	switch p := parent.(type) {
	case *exec.Filter, *exec.NestedLoopJoin, *exec.DependentJoin, *exec.Sort, *exec.HashJoin:
		// (Not HashSemiJoin: its output drops the build side's columns, so
		// a filter under its right input cannot move above it.)
		_ = p
		return true, swapUp(root, parent, f)
	default:
		return false, root
	}
}

// rewriteJoinAsSelection replaces a predicated nested-loop join with a
// Filter over the predicate-free join (a cross-product), preserving
// semantics while unblocking ReqSync pull-up.
func rewriteJoinAsSelection(root exec.Operator, j *exec.NestedLoopJoin) exec.Operator {
	parent, idx := findParent(root, j)
	sel := exec.NewFilter(j, j.Pred)
	j.Pred = nil
	if parent == nil {
		return sel
	}
	parent.SetChild(idx, sel)
	return root
}

// rewriteHashJoinAsSelection replaces a clashing hash join with a Filter
// over a predicate-free nested loop (a cross-product) carrying the hash
// join's reconstructed predicate — the same join→σ(×) transformation,
// with the hash algorithm abandoned because its build/probe keys would
// interpret placeholder values.
func rewriteHashJoinAsSelection(root exec.Operator, j *exec.HashJoin) exec.Operator {
	parent, idx := findParent(root, j)
	cross := exec.NewNestedLoopJoin(j.Left, j.Right, nil)
	sel := exec.NewFilter(cross, j.FullPredicate())
	if parent == nil {
		return sel
	}
	parent.SetChild(idx, sel)
	return root
}

// hashJoinRefs collects every attribute a hash join's keys and residual
// reference.
func hashJoinRefs(j *exec.HashJoin) map[schema.AttrID]bool {
	set := make(map[schema.AttrID]bool)
	for _, e := range j.LeftKeys {
		e.CollectAttrs(set)
	}
	for _, e := range j.RightKeys {
		e.CollectAttrs(set)
	}
	if j.Residual != nil {
		j.Residual.CollectAttrs(set)
	}
	return set
}

// ---------------------------------------------------------------------------
// Step 3: Consolidation

// consolidate merges adjacent ReqSync pairs bottom-up, unioning their
// filled-attribute sets: "a single ReqSync operator can manage multiple
// placeholder values in tuples" (Section 4.5.3).
func consolidate(op exec.Operator) exec.Operator {
	for i, c := range op.Children() {
		op.SetChild(i, consolidate(c))
	}
	if rs, ok := op.(*ReqSync); ok {
		if inner, ok := rs.Child.(*ReqSync); ok {
			for id := range inner.A {
				rs.A[id] = true
			}
			rs.Streaming = rs.Streaming || inner.Streaming
			rs.Child = inner.Child
			return consolidate(rs) // a third adjacent ReqSync may follow
		}
	}
	return op
}

// ---------------------------------------------------------------------------
// Tree utilities

// findParent locates target's parent and child index in the plan tree.
func findParent(root, target exec.Operator) (exec.Operator, int) {
	for i, c := range root.Children() {
		if c == target {
			return root, i
		}
		if p, idx := findParent(c, target); p != nil {
			return p, idx
		}
	}
	return nil, -1
}

// swapUp exchanges a single-child operator (child) with its parent:
// parent's slot receives child's subtree, child becomes parent's parent.
// It returns the (possibly new) root.
func swapUp(root, parent exec.Operator, child exec.Operator) exec.Operator {
	grand, gidx := findParent(root, parent)
	_, cidx := func() (exec.Operator, int) {
		for i, c := range parent.Children() {
			if c == child {
				return parent, i
			}
		}
		panic("swapUp: child not under parent")
	}()
	kids := child.Children()
	if len(kids) != 1 {
		panic("swapUp: child must have exactly one input")
	}
	parent.SetChild(cidx, kids[0])
	child.SetChild(0, parent)
	if grand == nil {
		return child
	}
	grand.SetChild(gidx, child)
	return root
}

// intersects reports whether the two attribute sets share an element.
func intersects(a, b map[schema.AttrID]bool) bool {
	for id := range a {
		if b[id] {
			return true
		}
	}
	return false
}

// outerRefs collects the attributes a subtree references but does not
// itself produce — its correlated (dependent-join) inputs.
func outerRefs(op exec.Operator) map[schema.AttrID]bool {
	refs := make(map[schema.AttrID]bool)
	produced := make(map[schema.AttrID]bool)
	collectRefs(op, refs, produced)
	out := make(map[schema.AttrID]bool)
	for id := range refs {
		if !produced[id] {
			out[id] = true
		}
	}
	return out
}

func collectRefs(op exec.Operator, refs, produced map[schema.AttrID]bool) {
	for _, c := range op.Schema().Cols {
		produced[c.ID] = true
	}
	switch o := op.(type) {
	case *exec.Filter:
		o.Pred.CollectAttrs(refs)
	case *exec.Project:
		for _, e := range o.Exprs {
			e.CollectAttrs(refs)
		}
	case *exec.Sort:
		for _, k := range o.Keys {
			k.Expr.CollectAttrs(refs)
		}
	case *exec.NestedLoopJoin:
		if o.Pred != nil {
			o.Pred.CollectAttrs(refs)
		}
	case *exec.HashJoin:
		for id := range hashJoinRefs(o) {
			refs[id] = true
		}
	case *exec.HashSemiJoin:
		for _, e := range o.LeftKeys {
			e.CollectAttrs(refs)
		}
		for _, e := range o.RightKeys {
			e.CollectAttrs(refs)
		}
	case *exec.Aggregate:
		for _, g := range o.GroupBy {
			g.CollectAttrs(refs)
		}
		for _, a := range o.Aggs {
			if a.Arg != nil {
				a.Arg.CollectAttrs(refs)
			}
		}
	case *exec.EVScan:
		for _, in := range o.Inputs {
			in.CollectAttrs(refs)
		}
	case *AEVScan:
		for _, in := range o.Inputs {
			in.CollectAttrs(refs)
		}
	}
	for _, c := range op.Children() {
		collectRefs(c, refs, produced)
	}
}
