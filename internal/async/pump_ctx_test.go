package async

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/types"
)

// blockingCall returns a call fn that blocks until release is closed, plus
// the release func.
func blockingCall() (fn func() ([]types.Tuple, error), release func()) {
	ch := make(chan struct{})
	return func() ([]types.Tuple, error) {
		<-ch
		return nil, nil
	}, func() { close(ch) }
}

// TestRegisterCtxDropsExpiredQueuedCall: a call whose context expires while
// it waits in the queue must complete with the context's error without ever
// consuming an execution slot, and the pump must drain fully.
func TestRegisterCtxDropsExpiredQueuedCall(t *testing.T) {
	p := NewPump(1, 1, nil)
	blocker, release := blockingCall()
	first := p.RegisterCtx(context.Background(), "d", "k1", blocker)

	ctx, cancel := context.WithCancel(context.Background())
	var ran bool
	second := p.RegisterCtx(ctx, "d", "k2", func() ([]types.Tuple, error) {
		ran = true
		return nil, nil
	})
	cancel()
	release() // first completes; dispatch must now drop the canceled second

	id, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{second: true})
	if err != nil || id != second {
		t.Fatalf("await second: %v %v", id, err)
	}
	res, ok := p.Take(second)
	if !ok || !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("canceled queued call: got %+v, want context.Canceled", res)
	}
	if ran {
		t.Error("canceled queued call must not execute")
	}
	if _, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{first: true}); err != nil {
		t.Fatal(err)
	}
	p.Take(first)
	waitDrained(t, p)
	if st := p.Stats(); st.Canceled != 1 || st.Started != 1 {
		t.Errorf("stats = %+v, want Canceled=1 Started=1", st)
	}
}

// TestRegisterCtxAlreadyExpired: registering with a dead context completes
// immediately with the context error, never queueing anything.
func TestRegisterCtxAlreadyExpired(t *testing.T) {
	p := NewPump(4, 4, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	id := p.RegisterCtx(ctx, "d", "k", func() ([]types.Tuple, error) {
		t.Error("must not run")
		return nil, nil
	})
	res, ok := p.Take(id)
	if !ok || !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("got %+v ok=%v, want immediate context.Canceled", res, ok)
	}
}

// TestAwaitAnyCtxDeadline: a waiter blocked on a slow call wakes promptly
// when its context expires, without waiting for the call.
func TestAwaitAnyCtxDeadline(t *testing.T) {
	p := NewPump(1, 1, nil)
	blocker, release := blockingCall()
	defer release()
	id := p.RegisterCtx(context.Background(), "d", "k", blocker)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.AwaitAnyCtx(ctx, map[types.CallID]bool{id: true})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("AwaitAnyCtx did not wake at the deadline")
	}
}

// TestCloseSettlesQueuedAndWakesWaiters: Close while calls are queued and
// running must fail queued calls with ErrPumpClosed, wake blocked waiters
// with the same sentinel, and let in-flight calls finish without panicking.
func TestCloseSettlesQueuedAndWakesWaiters(t *testing.T) {
	p := NewPump(1, 1, nil)
	blocker, release := blockingCall()
	running := p.RegisterCtx(context.Background(), "d", "k1", blocker)
	queued := p.RegisterCtx(context.Background(), "d", "k2", func() ([]types.Tuple, error) {
		t.Error("queued call must not start after Close")
		return nil, nil
	})

	// A waiter blocked on the running call must wake with the sentinel.
	woke := make(chan error, 1)
	go func() {
		_, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{running: true})
		woke <- err
	}()
	time.Sleep(10 * time.Millisecond)

	p.Close()
	p.Close() // idempotent

	select {
	case err := <-woke:
		if !errors.Is(err, ErrPumpClosed) {
			t.Fatalf("waiter woke with %v, want ErrPumpClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter still blocked after Close")
	}

	res, ok := p.Take(queued)
	if !ok || !errors.Is(res.Err, ErrPumpClosed) {
		t.Fatalf("queued call after Close: got %+v ok=%v, want ErrPumpClosed", res, ok)
	}

	// Registering on a closed pump errors cleanly instead of hanging.
	late := p.RegisterCtx(context.Background(), "d", "k3", func() ([]types.Tuple, error) { return nil, nil })
	res, ok = p.Take(late)
	if !ok || !errors.Is(res.Err, ErrPumpClosed) {
		t.Fatalf("register after Close: got %+v ok=%v, want ErrPumpClosed", res, ok)
	}

	// The in-flight call may still finish; it must not panic or dispatch.
	release()
	waitDrained(t, p)
}

// TestDiscardQueuedKeepsCoalescedSiblings: discarding one owner of a
// coalesced in-flight call must not cancel the execution the other owner is
// waiting for.
func TestDiscardQueuedKeepsCoalescedSiblings(t *testing.T) {
	p := NewPump(1, 1, &countingCache{m: make(map[string][]types.Tuple)})
	blocker, release := blockingCall()
	first := p.RegisterCtx(context.Background(), "d", "k1", blocker)

	// Two registrations for the same key: the second coalesces onto the
	// queued first... here both target "k2" which is queued behind k1.
	a := p.RegisterCtx(context.Background(), "d", "k2", func() ([]types.Tuple, error) {
		return []types.Tuple{{types.Int(7)}}, nil
	})
	b := p.RegisterCtx(context.Background(), "d", "k2", func() ([]types.Tuple, error) {
		return []types.Tuple{{types.Int(7)}}, nil
	})

	p.Discard(a) // a abandons; b still wants the call
	release()

	id, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{b: true})
	if err != nil || id != b {
		t.Fatalf("await b: %v %v", id, err)
	}
	res, _ := p.Take(b)
	if res.Err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
		t.Fatalf("coalesced survivor got %+v", res)
	}
	if _, ok := p.Take(a); ok {
		t.Error("discarded id must not park a result")
	}
	p.Take(first)
	waitDrained(t, p)
}

func waitDrained(t *testing.T, p *Pump) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		running, queued := p.Active()
		if running == 0 && queued == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pump did not drain: %d running, %d queued", running, queued)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
