package async

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
)

// BenchmarkPumpRoundTrip measures the pure overhead of register → run →
// await → take for a zero-work call: the cost asynchronous iteration adds
// on top of the network latency it hides.
func BenchmarkPumpRoundTrip(b *testing.B) {
	p := NewPump(64, 64, nil)
	fn := func() ([]types.Tuple, error) {
		return []types.Tuple{{types.Int(1)}}, nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := p.RegisterCtx(context.Background(), "d", "k", fn)
		if _, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id: true}); err != nil {
			b.Fatal(err)
		}
		if _, ok := p.Take(id); !ok {
			b.Fatal("missing result")
		}
	}
}

// BenchmarkPumpBatch measures amortized throughput when many calls are in
// flight together (the WSQ steady state).
func BenchmarkPumpBatch(b *testing.B) {
	p := NewPump(64, 64, nil)
	fn := func() ([]types.Tuple, error) {
		return []types.Tuple{{types.Int(1)}}, nil
	}
	const batch = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids := make(map[types.CallID]bool, batch)
		for j := 0; j < batch; j++ {
			ids[p.RegisterCtx(context.Background(), "d", fmt.Sprintf("k%d", j), fn)] = true
		}
		for len(ids) > 0 {
			id, err := p.AwaitAnyCtx(context.Background(), ids)
			if err != nil {
				b.Fatal(err)
			}
			p.Take(id)
			delete(ids, id)
		}
	}
}

// BenchmarkReqSyncPatch measures the buffering/patching machinery at zero
// latency: the "amount of work required by ReqSync" the paper lists as a
// potential cost (Section 4.5.4).
func BenchmarkReqSyncPatch(b *testing.B) {
	terms := make([]string, 200)
	for i := range terms {
		terms[i] = fmt.Sprintf("t%d", i)
	}
	src := &scriptedSource{name: "WC", dest: "d", numEcho: 1,
		rows: func(arg string) ([]types.Tuple, error) {
			return []types.Tuple{{types.Int(int64(len(arg)))}}, nil
		}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pump := NewPump(64, 64, nil)
		rs, _ := buildCountPlan(terms, src, pump)
		rows, err := exec.Run(exec.NewContext(), rs)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(terms) {
			b.Fatalf("rows: %d", len(rows))
		}
	}
}

// BenchmarkReqSyncExpansion measures tuple generation: every call returns
// 5 rows, so ReqSync clones each buffered tuple 4 times.
func BenchmarkReqSyncExpansion(b *testing.B) {
	terms := make([]string, 100)
	for i := range terms {
		terms[i] = fmt.Sprintf("t%d", i)
	}
	src := &scriptedSource{name: "WP", dest: "d", numEcho: 1,
		rows: func(arg string) ([]types.Tuple, error) {
			out := make([]types.Tuple, 5)
			for i := range out {
				out[i] = types.Tuple{types.Int(int64(i))}
			}
			return out, nil
		}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pump := NewPump(64, 64, nil)
		rs, _ := buildCountPlan(terms, src, pump)
		rows, err := exec.Run(exec.NewContext(), rs)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5*len(terms) {
			b.Fatalf("rows: %d", len(rows))
		}
	}
}

// BenchmarkRewrite measures the plan-rewriting pass itself on the Figure 6
// two-engine plan.
func BenchmarkRewrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pump := NewPump(4, 4, nil)
		term := strCol("Sigs", "Name")
		left := exec.NewValuesScan(schema.New(term), tuplesOf([]string{"a", "b", "c"}))
		ev1 := exec.NewEVScan(pagesSource("WP_AV", "av", 3), []expr.Expr{expr.NewColRef(term)}, pagesSchema("WP_AV"))
		dj1 := exec.NewDependentJoin(left, ev1, "")
		ev2 := exec.NewEVScan(pagesSource("WP_G", "g", 3), []expr.Expr{expr.NewColRef(term)}, pagesSchema("WP_G"))
		dj2 := exec.NewDependentJoin(dj1, ev2, "")
		b.StartTimer()
		got := Rewrite(dj2, pump)
		if _, ok := got.(*ReqSync); !ok {
			b.Fatal("rewrite shape")
		}
	}
}
