package async

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/search"
	"repro/internal/types"
)

// countEngine is a minimal search.Engine that counts Count invocations —
// the probe for the coalescing contract ("N concurrent identical misses
// produce exactly one engine call").
type countEngine struct {
	calls atomic.Int64
	gate  chan struct{} // when non-nil, Count blocks until the gate closes
}

func (e *countEngine) Name() string { return "counting" }
func (e *countEngine) Count(query string) (int64, error) {
	e.calls.Add(1)
	if e.gate != nil {
		<-e.gate
	}
	return 7, nil
}
func (e *countEngine) Search(query string, k int) ([]search.Result, error) {
	return nil, fmt.Errorf("unused")
}
func (e *countEngine) Fetch(url string) (string, error) { return "", fmt.Errorf("unused") }

// TestCoalesceConcurrentIdenticalMisses is the tier-cache singleflight
// contract at its root: when many registrations for the same key arrive
// while the first is still executing, exactly one engine call happens and
// every registration receives its rows. The engine is gated so all N
// registrations provably arrive before the one execution completes —
// deterministic, not timing-dependent.
func TestCoalesceConcurrentIdenticalMisses(t *testing.T) {
	const n = 64
	eng := &countEngine{gate: make(chan struct{})}
	// Seeded Delayed wrapper: same stack as production engines; zero
	// latency keeps the schedule exact.
	d := search.NewDelayed(eng, search.ZeroLatency(), 1)
	p := NewPump(8, 8, &countingCache{m: make(map[string][]types.Tuple)})
	defer p.Close()

	call := func() ([]types.Tuple, error) {
		c, err := d.Count("texas")
		if err != nil {
			return nil, err
		}
		return []types.Tuple{{types.Int(c)}}, nil
	}

	var wg sync.WaitGroup
	ids := make([]types.CallID, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = p.RegisterCtx(context.Background(), "counting", "count|texas", call)
		}(i)
	}
	wg.Wait()
	// All n registrations are in (one in flight, n-1 coalesced onto it);
	// release the engine.
	close(eng.gate)

	for i, id := range ids {
		if _, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id: true}); err != nil {
			t.Fatalf("await %d: %v", i, err)
		}
		res, ok := p.Take(id)
		if !ok || res.Err != nil {
			t.Fatalf("take %d: ok=%v err=%v", i, ok, res.Err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
			t.Fatalf("registration %d got wrong rows: %v", i, res.Rows)
		}
	}

	if got := eng.calls.Load(); got != 1 {
		t.Errorf("engine calls = %d, want exactly 1", got)
	}
	st := p.Stats()
	if st.Coalesced != n-1 {
		t.Errorf("coalesced = %d, want %d", st.Coalesced, n-1)
	}
	if st.Started != 1 {
		t.Errorf("started = %d, want 1", st.Started)
	}
}

// TestCoalesceAfterCompletionHitsCache closes the loop: once the single
// coalesced execution finishes, later registrations for the key are cache
// hits — still zero additional engine calls.
func TestCoalesceAfterCompletionHitsCache(t *testing.T) {
	eng := &countEngine{}
	d := search.NewDelayed(eng, search.ZeroLatency(), 1)
	p := NewPump(8, 8, &countingCache{m: make(map[string][]types.Tuple)})
	defer p.Close()
	call := func() ([]types.Tuple, error) {
		c, err := d.Count("texas")
		if err != nil {
			return nil, err
		}
		return []types.Tuple{{types.Int(c)}}, nil
	}
	first := p.RegisterCtx(context.Background(), "counting", "count|texas", call)
	if _, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{first: true}); err != nil {
		t.Fatal(err)
	}
	p.Take(first)
	for i := 0; i < 5; i++ {
		id := p.RegisterCtx(context.Background(), "counting", "count|texas", call)
		if _, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id: true}); err != nil {
			t.Fatal(err)
		}
		if res, ok := p.Take(id); !ok || res.Err != nil || res.Rows[0][0].I != 7 {
			t.Fatalf("cached take %d: %+v %v", i, res, ok)
		}
	}
	if got := eng.calls.Load(); got != 1 {
		t.Errorf("engine calls = %d, want 1 (later registrations must hit the cache)", got)
	}
	if hits := p.Stats().CacheHits; hits != 5 {
		t.Errorf("cache hits = %d, want 5", hits)
	}
}

// peerStub is a scripted CachePeer for pump-level peering tests.
type peerStub struct {
	mu      sync.Mutex
	rows    map[string][]types.Tuple
	fetches int
	fills   map[string]int
}

func (s *peerStub) Fetch(ctx context.Context, key string) ([]types.Tuple, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fetches++
	r, ok := s.rows[key]
	return r, ok
}

func (s *peerStub) Fill(key string, rows []types.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fills == nil {
		s.fills = make(map[string]int)
	}
	s.fills[key]++
}

// TestPumpPeerFetchServesWithoutEngine: a peer hit answers the call with
// zero engine executions, records PeerHits, and still lands in the local
// cache; a peer miss falls through to the engine and triggers a Fill.
func TestPumpPeerFetchServesWithoutEngine(t *testing.T) {
	local := &countingCache{m: make(map[string][]types.Tuple)}
	p := NewPump(4, 4, local)
	defer p.Close()
	peer := &peerStub{rows: map[string][]types.Tuple{
		"hot": {{types.Int(99)}},
	}}
	p.SetCachePeer(peer)

	var engineCalls atomic.Int64
	mk := func() ([]types.Tuple, error) {
		engineCalls.Add(1)
		return []types.Tuple{{types.Int(1)}}, nil
	}

	// Peer-resident key: no engine call, result correct, local cache warm.
	id := p.RegisterCtx(context.Background(), "d", "hot", mk)
	p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id: true})
	res, _ := p.Take(id)
	if res.Err != nil || res.Rows[0][0].I != 99 {
		t.Fatalf("peer-served result: %+v", res)
	}
	if engineCalls.Load() != 0 {
		t.Errorf("engine ran despite peer hit")
	}
	if st := p.Stats(); st.PeerHits != 1 {
		t.Errorf("peer hits = %d, want 1", st.PeerHits)
	}
	if _, ok := local.Get("hot"); !ok {
		t.Error("peer result should be cached locally")
	}

	// Peer-missing key: engine executes, and the result is offered back.
	id = p.RegisterCtx(context.Background(), "d", "cold", mk)
	p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id: true})
	if res, _ := p.Take(id); res.Err != nil {
		t.Fatal(res.Err)
	}
	if engineCalls.Load() != 1 {
		t.Errorf("engine calls = %d, want 1", engineCalls.Load())
	}
	peer.mu.Lock()
	fills := peer.fills["cold"]
	peer.mu.Unlock()
	if fills != 1 {
		t.Errorf("fills for cold = %d, want 1", fills)
	}

	// Detach: peering must disengage cleanly.
	p.SetCachePeer(nil)
	id = p.RegisterCtx(context.Background(), "d", "hot2", mk)
	p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id: true})
	p.Take(id)
	peer.mu.Lock()
	fetches := peer.fetches
	peer.mu.Unlock()
	if fetches != 2 {
		t.Errorf("peer fetches after detach = %d, want 2 (no new fetch)", fetches)
	}
}

// TestPumpPeerSlotAccounting: a pump bounded to one slot must fully
// release it on the peer-hit path — a follow-up engine call would hang
// forever on a leaked token.
func TestPumpPeerSlotAccounting(t *testing.T) {
	local := &countingCache{m: make(map[string][]types.Tuple)}
	p := NewPump(1, 1, local)
	defer p.Close()
	peer := &peerStub{rows: map[string][]types.Tuple{"a": {{types.Int(1)}}}}
	p.SetCachePeer(peer)
	for i := 0; i < 3; i++ {
		id := p.RegisterCtx(context.Background(), "d", "a", func() ([]types.Tuple, error) { return nil, fmt.Errorf("unreachable") })
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, err := p.AwaitAnyCtx(ctx, map[types.CallID]bool{id: true})
		cancel()
		if err != nil {
			t.Fatalf("iteration %d: %v (slot leak?)", i, err)
		}
		p.Take(id)
		// Key "a" is now locally cached; use fresh keys to force the peer
		// path again.
		local.mu.Lock()
		delete(local.m, "a")
		local.mu.Unlock()
	}
	if running, queued := p.Active(); running != 0 || queued != 0 {
		t.Errorf("pump not drained: running=%d queued=%d", running, queued)
	}
}
