package async

import (
	"fmt"
	"testing"

	"repro/internal/exec"
	"repro/internal/types"
)

// ---------------------------------------------------------------------------
// Batched AEVScan registration (BindBatch) and pump queue depth.

// TestPumpDepthWholeBatchBeforeFirstWait is the acceptance test for batched
// registration: with the source gated so no call can complete, opening the
// full-buffering ReqSync must leave the pump holding one pending call per
// outer tuple — the queue depth is the whole batch, not 1 — before the
// ReqSync ever waits on a completion.
func TestPumpDepthWholeBatchBeforeFirstWait(t *testing.T) {
	const n = 32
	release := make(chan struct{})
	src := &scriptedSource{name: "WC", dest: "d", numEcho: 1,
		rows: func(arg string) ([]types.Tuple, error) {
			<-release
			return []types.Tuple{{types.Int(int64(len(arg)))}}, nil
		}}
	terms := make([]string, n)
	for i := range terms {
		terms[i] = fmt.Sprintf("term-%02d", i)
	}
	pump := NewPump(4, 4, nil)
	defer pump.Close()
	rs, _ := buildCountPlan(terms, src, pump)
	ctx := exec.NewContext()
	if err := rs.Open(ctx); err != nil {
		t.Fatal(err)
	}
	// Open drained the dependent join batch-at-a-time: every outer binding's
	// call is registered with the pump even though none has completed.
	if got := pump.Stats().Registered; got != n {
		t.Fatalf("calls registered before first wait: %d, want %d", got, n)
	}
	if running, queued := pump.Active(); running+queued != n {
		t.Fatalf("pump depth before first wait: running=%d queued=%d, want total %d",
			running, queued, n)
	}
	// Release the gate; every tuple must still settle correctly.
	close(release)
	var rows []types.Tuple
	for {
		tup, ok, err := rs.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rows = append(rows, tup)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Fatalf("rows: %d, want %d", len(rows), n)
	}
	for _, tup := range rows {
		if got, _ := tup[2].AsInt(); got != int64(len(tup[0].AsString())) {
			t.Errorf("row %v: count %d, want %d", tup, got, len(tup[0].AsString()))
		}
	}
}

// TestBindBatchRegistersOneRound checks the dependent join's batch binding
// path directly: a single NextBatch over the outer batch registers every
// call in one protocol round and yields one placeholder tuple per binding.
func TestBindBatchRegistersOneRound(t *testing.T) {
	const n = 8
	src := &scriptedSource{name: "WC", dest: "d", numEcho: 1,
		rows: func(arg string) ([]types.Tuple, error) {
			return []types.Tuple{{types.Int(int64(len(arg)))}}, nil
		}}
	terms := make([]string, n)
	for i := range terms {
		terms[i] = fmt.Sprintf("t%d", i)
	}
	pump := NewPump(4, 4, nil)
	defer pump.Close()
	rs, _ := buildCountPlan(terms, src, pump)
	dj := rs.Child
	ctx := exec.NewContext()
	if err := dj.Open(ctx); err != nil {
		t.Fatal(err)
	}
	b, ok, err := exec.NextBatchFrom(ctx, dj, n)
	if err != nil || !ok {
		t.Fatalf("NextBatch: ok=%v err=%v", ok, err)
	}
	if len(b) != n {
		t.Fatalf("batch size: %d, want %d", len(b), n)
	}
	if got := pump.Stats().Registered; got != n {
		t.Fatalf("one batch round registered %d calls, want %d", got, n)
	}
	for i, tup := range b {
		if tup[0].AsString() != terms[i] {
			t.Errorf("tuple %d echoes %v, want %s", i, tup[0], terms[i])
		}
		if tup[1].AsString() != terms[i] {
			t.Errorf("tuple %d inner echo %v, want %s", i, tup[1], terms[i])
		}
		if !tup[2].IsPlaceholder() {
			t.Errorf("tuple %d: want placeholder, got %v", i, tup[2])
		}
	}
	if err := dj.Close(); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.ExternalCalls != n {
		t.Errorf("per-binding call accounting: %d, want %d", ctx.Stats.ExternalCalls, n)
	}
}

// TestBindBatchDedupsKeysOnlyWithCache pins the Figure 7 contract: with a
// result cache the batch registers one pump call per distinct cache key
// (duplicates share a CallID and the pump memoizes anyway), while without
// a cache every binding registers its own call — batching must not silently
// repair the paper's redundant-request hazard.
func TestBindBatchDedupsKeysOnlyWithCache(t *testing.T) {
	terms := []string{"alpha", "beta", "alpha", "beta", "alpha"}
	mk := func() *scriptedSource {
		return &scriptedSource{name: "WC", dest: "d", numEcho: 1,
			rows: func(arg string) ([]types.Tuple, error) {
				return []types.Tuple{{types.Int(int64(len(arg)))}}, nil
			}}
	}
	run := func(t *testing.T, src *scriptedSource, pump *Pump) []types.Tuple {
		t.Helper()
		defer pump.Close()
		rs, _ := buildCountPlan(terms, src, pump)
		return runOp(t, rs)
	}

	t.Run("cache", func(t *testing.T) {
		src := mk()
		pump := NewPump(4, 4, &countingCache{m: make(map[string][]types.Tuple)})
		rows := run(t, src, pump)
		if len(rows) != len(terms) {
			t.Fatalf("rows: %d, want %d", len(rows), len(terms))
		}
		if got := pump.Stats().Registered; got != 2 {
			t.Errorf("registered: %d, want 2 (one per distinct key)", got)
		}
		if src.calls != 2 {
			t.Errorf("source calls: %d, want 2", src.calls)
		}
		for _, tup := range rows {
			if got, _ := tup[2].AsInt(); got != int64(len(tup[0].AsString())) {
				t.Errorf("row %v mispatched", tup)
			}
		}
	})

	t.Run("no-cache", func(t *testing.T) {
		src := mk()
		pump := NewPump(4, 4, nil)
		rows := run(t, src, pump)
		if len(rows) != len(terms) {
			t.Fatalf("rows: %d, want %d", len(rows), len(terms))
		}
		if got := pump.Stats().Registered; got != int64(len(terms)) {
			t.Errorf("registered: %d, want %d (Figure 7 duplicates preserved)", got, len(terms))
		}
	})
}

// TestBindBatchCapabilityProbe: an empty frames slice reports support
// without registering anything.
func TestBindBatchCapabilityProbe(t *testing.T) {
	pump := NewPump(4, 4, nil)
	defer pump.Close()
	src := &scriptedSource{name: "WC", dest: "d", numEcho: 1, rows: nil}
	rs, _ := buildCountPlan([]string{"x"}, src, pump)
	aev := rs.Child.(*exec.DependentJoin).Right.(*AEVScan)
	rows, ok, err := aev.BindBatch(exec.NewContext(), nil)
	if err != nil || !ok || rows != nil {
		t.Fatalf("probe: rows=%v ok=%v err=%v", rows, ok, err)
	}
	if got := pump.Stats().Registered; got != 0 {
		t.Errorf("probe registered %d calls, want 0", got)
	}
}
