package async

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/types"
)

// transientErr is a retryable failure for tests (the search package's
// FaultError plays this role in production).
type transientErr struct{ msg string }

func (e transientErr) Error() string   { return e.msg }
func (e transientErr) Transient() bool { return true }

// await runs one registered call to completion and returns its outcome.
func await(t *testing.T, p *Pump, id types.CallID) CallResult {
	t.Helper()
	got, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id: true})
	if err != nil {
		t.Fatalf("AwaitAny: %v", err)
	}
	res, ok := p.Take(got)
	if !ok {
		t.Fatalf("Take(%d) found nothing", got)
	}
	return res
}

func TestRetryMasksTransientFailures(t *testing.T) {
	p := NewPump(4, 4, nil)
	p.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond})
	var mu sync.Mutex
	calls := 0
	id := p.RegisterCtx(context.Background(), "d", "k", func() ([]types.Tuple, error) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls <= 2 {
			return nil, transientErr{"engine unavailable"}
		}
		return []types.Tuple{{types.Int(7)}}, nil
	})
	res := await(t, p, id)
	if res.Err != nil {
		t.Fatalf("retries should have masked the transient failures: %v", res.Err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
		t.Fatalf("rows = %v", res.Rows)
	}
	st := p.Stats()
	if st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", st.Retries)
	}
	if st.CallsFailed != 0 {
		t.Fatalf("CallsFailed = %d, want 0", st.CallsFailed)
	}
}

func TestHardErrorNotRetried(t *testing.T) {
	p := NewPump(4, 4, nil)
	p.SetRetryPolicy(RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond})
	var mu sync.Mutex
	calls := 0
	id := p.RegisterCtx(context.Background(), "d", "k", func() ([]types.Tuple, error) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		return nil, errors.New("permanent schema error")
	})
	res := await(t, p, id)
	if res.Err == nil {
		t.Fatal("hard error should propagate")
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("hard error retried: %d calls", calls)
	}
	if st := p.Stats(); st.Retries != 0 || st.CallsFailed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryExhaustionReportsAttempts(t *testing.T) {
	p := NewPump(4, 4, nil)
	p.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	id := p.RegisterCtx(context.Background(), "d", "k", func() ([]types.Tuple, error) {
		return nil, transientErr{"still down"}
	})
	res := await(t, p, id)
	if res.Err == nil {
		t.Fatal("exhausted retries should fail the call")
	}
	if !strings.Contains(res.Err.Error(), "after 3 attempts") {
		t.Fatalf("error should mention attempt count: %v", res.Err)
	}
	if st := p.Stats(); st.Retries != 2 || st.CallsFailed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCallTimeoutAbandonsStalledAttempt(t *testing.T) {
	p := NewPump(4, 4, nil)
	p.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 2,
		BaseBackoff: time.Millisecond,
		CallTimeout: 30 * time.Millisecond,
	})
	var mu sync.Mutex
	calls := 0
	release := make(chan struct{})
	id := p.RegisterCtx(context.Background(), "d", "k", func() ([]types.Tuple, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			<-release // stall until the test lets go
		}
		return []types.Tuple{{types.Int(int64(n))}}, nil
	})
	res := await(t, p, id)
	if res.Err != nil {
		t.Fatalf("retry after timeout should succeed: %v", res.Err)
	}
	if res.Rows[0][0].I != 2 {
		t.Fatalf("result should come from the second attempt, got %v", res.Rows)
	}
	st := p.Stats()
	if st.CallTimeouts != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The abandoned goroutine still holds its token until it returns.
	if running, _ := p.Active(); running != 1 {
		t.Fatalf("abandoned attempt should hold its slot, Active = %d", running)
	}
	close(release)
	waitSettled(t, p)
}

// waitSettled polls until the pump reports no running or queued calls.
func waitSettled(t *testing.T, p *Pump) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		running, queued := p.Active()
		if running == 0 && queued == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pump did not settle: running=%d queued=%d", running, queued)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCallTimeoutExhaustionIsTransientError(t *testing.T) {
	p := NewPump(4, 4, nil)
	p.SetRetryPolicy(RetryPolicy{MaxAttempts: 1, CallTimeout: 10 * time.Millisecond})
	release := make(chan struct{})
	defer close(release)
	id := p.RegisterCtx(context.Background(), "d", "k", func() ([]types.Tuple, error) {
		<-release
		return nil, nil
	})
	res := await(t, p, id)
	if !errors.Is(res.Err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", res.Err)
	}
	if !IsTransient(res.Err) {
		t.Fatal("call timeouts should classify as transient")
	}
}

func TestHedgeWinsAgainstSlowPrimary(t *testing.T) {
	p := NewPump(8, 8, nil)
	p.SetRetryPolicy(RetryPolicy{MaxAttempts: 1, HedgeAfter: 10 * time.Millisecond, MaxHedges: 1})
	var mu sync.Mutex
	calls := 0
	release := make(chan struct{})
	defer close(release)
	id := p.RegisterCtx(context.Background(), "d", "k", func() ([]types.Tuple, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			<-release // the primary never finishes on its own
		}
		return []types.Tuple{{types.Int(int64(n))}}, nil
	})
	res := await(t, p, id)
	if res.Err != nil {
		t.Fatalf("hedge should have completed the call: %v", res.Err)
	}
	if res.Rows[0][0].I != 2 {
		t.Fatalf("winning row should come from the hedge, got %v", res.Rows)
	}
	st := p.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHedgeRespectsDestinationLimit(t *testing.T) {
	// One slot for the destination: the primary occupies it, so the hedge
	// must never launch.
	p := NewPump(8, 1, nil)
	p.SetRetryPolicy(RetryPolicy{MaxAttempts: 1, HedgeAfter: 5 * time.Millisecond, MaxHedges: 1})
	var mu sync.Mutex
	calls := 0
	id := p.RegisterCtx(context.Background(), "d", "k", func() ([]types.Tuple, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		time.Sleep(40 * time.Millisecond)
		return nil, nil
	})
	res := await(t, p, id)
	if res.Err != nil {
		t.Fatalf("call failed: %v", res.Err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("hedge launched despite a full destination: %d executions", calls)
	}
	if st := p.Stats(); st.Hedges != 0 {
		t.Fatalf("Hedges = %d, want 0", st.Hedges)
	}
}

func TestRetryBackoffReleasesSlotForOtherCalls(t *testing.T) {
	// Destination limit 1. Call A fails transiently and backs off for a
	// long time; during A's backoff, call B must get the slot and finish.
	p := NewPump(8, 1, nil)
	p.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseBackoff: 80 * time.Millisecond})
	bDone := make(chan time.Time, 1)
	var aFirstFail time.Time
	var mu sync.Mutex
	idA := p.RegisterCtx(context.Background(), "d", "a", func() ([]types.Tuple, error) {
		mu.Lock()
		defer mu.Unlock()
		if aFirstFail.IsZero() {
			aFirstFail = time.Now()
			return nil, transientErr{"blip"}
		}
		return []types.Tuple{{types.Int(1)}}, nil
	})
	idB := p.RegisterCtx(context.Background(), "d", "b", func() ([]types.Tuple, error) {
		bDone <- time.Now()
		return []types.Tuple{{types.Int(2)}}, nil
	})
	resA := await(t, p, idA)
	resB := await(t, p, idB)
	if resA.Err != nil || resB.Err != nil {
		t.Fatalf("errs: %v, %v", resA.Err, resB.Err)
	}
	bAt := <-bDone
	mu.Lock()
	defer mu.Unlock()
	// B ran while A was still backing off (well before the 80ms backoff
	// elapsed) — the slot was not held across the backoff.
	if bAt.Sub(aFirstFail) > 60*time.Millisecond {
		t.Fatalf("B waited %v after A's failure; backoff is hoarding the slot", bAt.Sub(aFirstFail))
	}
}

func TestBackoffSchedule(t *testing.T) {
	pol := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 45 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 45, 45}
	for i, w := range want {
		if got := pol.backoff(i); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestIsTransientClassification(t *testing.T) {
	if IsTransient(nil) {
		t.Error("nil is not transient")
	}
	if IsTransient(errors.New("boom")) {
		t.Error("plain errors are not transient")
	}
	if !IsTransient(transientErr{"x"}) {
		t.Error("Transient() errors are transient")
	}
	if !IsTransient(ErrCallTimeout) {
		t.Error("call timeouts are transient")
	}
}
