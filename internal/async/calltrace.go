package async

import (
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/types"
)

// CallTrace records one pump call's lifecycle for a sampled query's
// distributed trace: registration, queue wait, each physical execution
// (first attempt, retries, hedges), and the final outcome. Records are
// created by RegisterCtx only when the call's context carries a sampled
// obs.TraceCtx — an untraced call carries a nil pointer and every
// recording site is a nil check.
//
// A CallTrace is written by pump goroutines (dispatch, run, execution
// workers) while the query goroutine may be converting it to a span, so
// it carries its own mutex. Lock ordering: pump code may touch a
// CallTrace while holding p.mu (CallTrace methods take only ct.mu and
// never call back into the pump), but never the reverse.
type CallTrace struct {
	mu         sync.Mutex
	traceID    string
	dest       string
	key        string
	registered time.Time
	dispatched time.Time
	finished   time.Time
	outcome    string
	attempts   []callAttempt
}

type callAttempt struct {
	kind   string // "attempt", "retry", "hedge"
	start  time.Time
	dur    time.Duration
	failed bool
}

func newCallTrace(traceID, dest, key string) *CallTrace {
	return &CallTrace{traceID: traceID, dest: dest, key: key, registered: time.Now()}
}

// setDispatched marks the moment the call left the admission queue.
// Nil-safe, like every CallTrace recording method.
func (ct *CallTrace) setDispatched() {
	if ct == nil {
		return
	}
	ct.mu.Lock()
	if ct.dispatched.IsZero() {
		ct.dispatched = time.Now()
	}
	ct.mu.Unlock()
}

// addAttempt records one physical execution of the call.
func (ct *CallTrace) addAttempt(kind string, start time.Time, dur time.Duration, failed bool) {
	if ct == nil {
		return
	}
	ct.mu.Lock()
	ct.attempts = append(ct.attempts, callAttempt{kind: kind, start: start, dur: dur, failed: failed})
	ct.mu.Unlock()
}

// finish records the call's terminal outcome ("ok", "error", "canceled",
// "cache_hit", "peer_hit", "coalesced", "closed"). First outcome wins.
func (ct *CallTrace) finish(outcome string) {
	if ct == nil {
		return
	}
	ct.mu.Lock()
	if ct.outcome == "" {
		ct.outcome = outcome
		ct.finished = time.Now()
	}
	ct.mu.Unlock()
}

// TraceID returns the owning trace's identity.
func (ct *CallTrace) TraceID() string {
	if ct == nil {
		return ""
	}
	return ct.traceID
}

// Span converts the record to a span subtree: one "pump.call" span from
// registration to settlement, with a child per physical execution and
// the queue wait as an extra. The pump call ran concurrently with the
// query's operators, so callers attach it via Span.AddAsyncChild.
func (ct *CallTrace) Span() *obs.Span {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	end := ct.finished
	if end.IsZero() {
		// Still in flight when collected (query ended first): clock the
		// span at collection time rather than dropping it.
		end = time.Now()
	}
	detail := ct.dest
	if ct.outcome != "" && ct.outcome != "ok" {
		detail += " " + ct.outcome
	}
	s := &obs.Span{Op: "pump.call", Detail: detail, Start: ct.registered, Dur: end.Sub(ct.registered)}
	if !ct.dispatched.IsZero() {
		s.AddExtra("queue_us", ct.dispatched.Sub(ct.registered).Microseconds())
	}
	for _, a := range ct.attempts {
		c := &obs.Span{Op: "pump." + a.kind, Start: a.start, Dur: a.dur}
		if a.failed {
			c.Detail = "failed"
		}
		s.AddChild(c)
	}
	return s
}

// TakeCallTraces removes and returns the trace records for the given
// call ids. The issuing operator (AEVScan) calls it from Close on the
// query goroutine and attaches the spans to its own trace node; removal
// makes repeated Close (dependent joins re-close their inner subtree)
// attach each call exactly once.
func (p *Pump) TakeCallTraces(ids []types.CallID) []*CallTrace {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.traces) == 0 {
		return nil
	}
	var out []*CallTrace
	for _, id := range ids {
		if ct, ok := p.traces[id]; ok {
			out = append(out, ct)
			delete(p.traces, id)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Profile feed

// ProfileSink receives the pump's per-call observations; implemented by
// profile.Store. Event kinds are "retry", "hedge", "timeout",
// "cache_hit", and "peer_hit" (the profile package's Event* constants).
// Implementations must be safe for concurrent use and must not call
// back into the pump (several hooks fire under p.mu).
type ProfileSink interface {
	CallObserved(dest string, d time.Duration, failed bool)
	EventObserved(dest, kind string)
}

// profileBox wraps the interface for atomic.Pointer storage.
type profileBox struct{ sink ProfileSink }

// SetProfiles attaches (or, with nil, detaches) the profile sink. Like
// metrics, it is read lock-free on the hot paths: a pump without a sink
// pays one predicted branch per call.
func (p *Pump) SetProfiles(s ProfileSink) {
	if s == nil {
		p.profiles.Store(nil)
		return
	}
	p.profiles.Store(&profileBox{sink: s})
}

// profileSink returns the attached sink, or nil.
func (p *Pump) profileSink() ProfileSink {
	if b := p.profiles.Load(); b != nil {
		return b.sink
	}
	return nil
}
