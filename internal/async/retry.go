package async

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/types"
)

// ErrCallTimeout is the (wrapped) error of an external call attempt that
// exceeded the retry policy's per-call deadline. It is classified as
// transient: the attempt is abandoned and, attempts permitting, retried.
var ErrCallTimeout = errors.New("external call timed out")

// RetryPolicy controls how pump workers execute external calls in the face
// of failure: bounded retries with exponential backoff and jitter, a
// per-attempt deadline, and optional hedged duplicate requests for
// latency-tail stragglers.
//
// The zero value disables everything — one attempt, no deadline, no hedging
// — which is the pre-fault-tolerance pump behavior.
//
// Retries and hedges consume per-destination and total concurrency slots
// like any other call: a backoff releases the call's slot (so waiting
// retries never starve other queries or engines), a retry re-acquires one,
// and a hedge launches only if a slot is free at that instant.
type RetryPolicy struct {
	// MaxAttempts is the total number of executions allowed per call,
	// including the first (values below 1 mean 1). Only transient errors —
	// see IsTransient — are retried.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it (exponential backoff), capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 = no cap).
	MaxBackoff time.Duration
	// JitterFrac adds a uniform random delay of up to JitterFrac×backoff,
	// decorrelating retry storms from concurrent queries.
	JitterFrac float64
	// CallTimeout bounds each attempt's wall time (0 = unbounded). A timed
	// out attempt is abandoned — the engine goroutine finishes into the
	// void, holding its concurrency slot until it actually returns — and
	// counts as a transient failure.
	CallTimeout time.Duration
	// HedgeAfter, when positive, launches a duplicate request if an attempt
	// has not completed within this duration; the first result (original or
	// hedge) wins. Duplicates are only launched when a concurrency slot is
	// free, so hedging never starves other destinations.
	HedgeAfter time.Duration
	// MaxHedges bounds duplicates per attempt (default 1 when HedgeAfter is
	// set).
	MaxHedges int
}

// DefaultRetryPolicy is a sensible serving-path policy: four attempts with
// 5 ms → 100 ms backoff and 50% jitter, no per-call deadline, no hedging.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
		JitterFrac:  0.5,
	}
}

// normalized fills the policy's implied defaults.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.HedgeAfter > 0 && p.MaxHedges < 1 {
		p.MaxHedges = 1
	}
	if p.HedgeAfter <= 0 {
		p.MaxHedges = 0
	}
	return p
}

// active reports whether the policy changes anything over plain one-shot
// execution.
func (p RetryPolicy) active() bool {
	return p.MaxAttempts > 1 || p.CallTimeout > 0 || p.HedgeAfter > 0
}

// backoff computes the pre-jitter delay before retry number n (0-based).
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseBackoff
	for i := 0; i < n; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// CallWithRetry runs do under the pump's retry policy without consuming
// concurrency tokens: the synchronous executor path (EVScan) uses it so
// synchronous and asynchronous iteration share one fault model. Hedging and
// per-attempt deadlines are skipped — a synchronous scan blocks its query
// for the call's full latency by design.
func (p *Pump) CallWithRetry(ctx context.Context, do func() ([]types.Tuple, error)) ([]types.Tuple, error) {
	pol := p.RetryPolicy()
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(p.jitteredBackoff(pol, attempt-1))
			if ctx != nil {
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return nil, ctx.Err()
				}
			} else {
				<-t.C
			}
			p.count(&p.retries)
		}
		rows, err := do()
		if err == nil {
			return rows, nil
		}
		lastErr = err
		if !IsTransient(err) {
			p.count(&p.callsFailed)
			return nil, err
		}
	}
	p.count(&p.callsFailed)
	return nil, fmt.Errorf("after %d attempts: %w", pol.MaxAttempts, lastErr)
}

// transienter is implemented by errors that know whether retrying may
// help; search.FaultError is the canonical implementation. Declaring the
// interface here keeps the async package free of a dependency on any
// particular engine package.
type transienter interface{ Transient() bool }

// IsTransient reports whether err is worth retrying: per-attempt timeouts
// and any error (anywhere in the chain) that declares itself Transient().
// Context cancellation and deadline expiry are permanent — the query is
// gone, retrying would waste the slot budget.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrCallTimeout) {
		return true
	}
	var t transienter
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}
