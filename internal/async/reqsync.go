package async

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/schema"
	"repro/internal/types"
)

// ReqSync is the request-synchronizer operator of Section 4.1: it buffers
// tuples containing placeholders for pending pump calls, and as calls
// complete it patches the placeholders with real values (one result row),
// cancels the tuple (zero rows), or expands it into n copies (n rows —
// Section 4.3), copying any still-pending placeholder references into the
// copies (Section 4.4). Tuples with no placeholders pass through.
//
// By default Open drains the child completely before any tuple is
// released ("we choose this full-buffering implementation for the sake of
// simplicity"); with Streaming set, complete tuples are released as soon
// as they are available, the materialization alternative the paper
// mentions for very large joins.
type ReqSync struct {
	Child exec.Operator
	Pump  *Pump
	// A is the set of attributes this operator fills in (ReqSync_i.A of
	// Section 4.5.2). It drives percolation clash checks and is unioned
	// when ReqSyncs are consolidated; execution itself discovers
	// placeholders dynamically.
	A map[schema.AttrID]bool
	// Streaming releases completed tuples before the child is exhausted.
	Streaming bool

	childDone bool
	ready     []types.Tuple
	waiting   map[types.CallID][]*bufTuple
	npending  int
	opened    bool

	// Trace-profile counters (SpanExtras), accumulated across every Open
	// of this instance — a dependent join above re-opens its inner side
	// once per outer binding, and the profile should cover them all.
	nSettled  int64 // calls settled (result consumed from the pump)
	nPatched  int64 // tuples completed by patching in a result row
	nExpanded int64 // extra tuple copies generated (multi-row results, §4.3)
	nCanceled int64 // tuples canceled (zero-row results or degrade-drop)
	nDegraded int64 // failed calls absorbed by a degradation policy
}

type bufTuple struct {
	t        types.Tuple
	canceled bool
}

// NewReqSync builds a ReqSync over child filling the attribute set a.
func NewReqSync(child exec.Operator, pump *Pump, a map[schema.AttrID]bool) *ReqSync {
	return &ReqSync{Child: child, Pump: pump, A: a}
}

// Schema implements exec.Operator.
func (r *ReqSync) Schema() *schema.Schema { return r.Child.Schema() }

// Open implements exec.Operator. In full-buffering mode it drains the
// child — thereby registering every external call below it with the pump —
// before the first Next returns.
func (r *ReqSync) Open(ctx *exec.Context) error {
	if err := r.Child.Open(ctx); err != nil {
		return err
	}
	r.childDone = false
	r.ready = nil
	r.waiting = make(map[types.CallID][]*bufTuple)
	r.npending = 0
	r.opened = true
	if r.Streaming {
		return nil
	}
	return r.drain(ctx)
}

// drain pulls the child to exhaustion, buffering incomplete tuples. The
// pull is batch-at-a-time: a batch-binding dependent join below registers
// every call of an outer batch with the pump per round, so the request
// queue deepens by whole batches rather than single calls.
func (r *ReqSync) drain(ctx *exec.Context) error {
	for {
		b, ok, err := exec.NextBatchFrom(ctx, r.Child, 0)
		if err != nil {
			return err
		}
		if !ok {
			r.childDone = true
			return nil
		}
		for _, t := range b {
			r.admit(t)
		}
	}
}

// admit routes a child tuple to the ready queue or the waiting table.
func (r *ReqSync) admit(t types.Tuple) {
	if !t.HasPlaceholder() {
		r.ready = append(r.ready, t)
		return
	}
	bt := &bufTuple{t: t}
	r.register(bt)
}

// register indexes a buffered tuple under every pending call it references.
func (r *ReqSync) register(bt *bufTuple) {
	for _, id := range bt.t.PendingCalls() {
		if len(r.waiting[id]) == 0 {
			r.npending++
		}
		r.waiting[id] = append(r.waiting[id], bt)
	}
}

// patch replaces every placeholder of call id in t with the corresponding
// field of row.
func patch(t types.Tuple, id types.CallID, row types.Tuple) types.Tuple {
	for i, v := range t {
		if v.IsPlaceholder() && v.Call == id {
			if v.Field < len(row) {
				t[i] = row[v.Field]
			} else {
				t[i] = types.Null()
			}
		}
	}
	return t
}

// settle processes one completed call: Section 4.3's cancellation /
// completion / generation algorithm, with Section 4.4's rule that copies
// proliferate references to other pending calls.
//
// A failed call (the pump's retries exhausted, or a permanent engine error)
// is handled per the query's degradation policy: fail the query, cancel the
// waiting tuples as if the call returned no rows, or release them with the
// call's attributes patched to NULL.
func (r *ReqSync) settle(ctx *exec.Context, id types.CallID, res CallResult) error {
	buffered := r.waiting[id]
	delete(r.waiting, id)
	r.npending--
	r.nSettled++
	if res.Err != nil {
		switch ctx.Degrade {
		case exec.DegradeDrop:
			ctx.Stats.DegradedCalls++
			r.nDegraded++
			for _, bt := range buffered {
				if !bt.canceled {
					bt.canceled = true
					r.nCanceled++
				}
			}
			return nil
		case exec.DegradePartial:
			ctx.Stats.DegradedCalls++
			r.nDegraded++
			for _, bt := range buffered {
				if bt.canceled {
					continue
				}
				// patch with an empty row: every referenced field is beyond
				// the row's end, so each placeholder becomes NULL.
				patch(bt.t, id, nil)
				r.nPatched++
				if !bt.t.HasPlaceholder() {
					r.ready = append(r.ready, bt.t)
				}
			}
			return nil
		default:
			return fmt.Errorf("external call failed: %w", res.Err)
		}
	}
	for _, bt := range buffered {
		if bt.canceled {
			continue
		}
		switch len(res.Rows) {
		case 0:
			// Case 1: the call returned no rows — cancel the tuple.
			bt.canceled = true
			r.nCanceled++
		default:
			// Case 3 first: n-1 additional copies, each patched with one of
			// the extra result rows. Copies are cloned before the original
			// is patched so they retain this call's placeholders, then
			// re-registered under any calls still pending (Section 4.4).
			for _, row := range res.Rows[1:] {
				c := patch(bt.t.Clone(), id, row)
				r.nExpanded++
				if c.HasPlaceholder() {
					r.register(&bufTuple{t: c})
				} else {
					r.ready = append(r.ready, c)
				}
			}
			// Case 2: patch the original in place with the first row.
			patch(bt.t, id, res.Rows[0])
			r.nPatched++
			if !bt.t.HasPlaceholder() {
				r.ready = append(r.ready, bt.t)
			}
		}
	}
	return nil
}

// pendingIDs snapshots the calls currently awaited.
func (r *ReqSync) pendingIDs() map[types.CallID]bool {
	ids := make(map[types.CallID]bool, len(r.waiting))
	for id := range r.waiting {
		ids[id] = true
	}
	return ids
}

// Next implements exec.Operator: return a completed tuple, blocking on the
// pump when none is ready ("if ReqSync has no completed tuples then it
// must wait for the next signal from ReqPump").
func (r *ReqSync) Next(ctx *exec.Context) (types.Tuple, bool, error) {
	if !r.opened {
		return nil, false, fmt.Errorf("ReqSync: Next before Open")
	}
	for {
		if len(r.ready) > 0 {
			t := r.ready[0]
			r.ready = r.ready[1:]
			return t, true, nil
		}
		// Streaming mode: keep pulling the child; complete tuples flow
		// through immediately, incomplete ones are buffered.
		if r.Streaming && !r.childDone {
			t, ok, err := r.Child.Next(ctx)
			if err != nil {
				return nil, false, err
			}
			if ok {
				r.admit(t)
				continue
			}
			r.childDone = true
		}
		if len(r.waiting) == 0 {
			if !r.childDone {
				continue
			}
			return nil, false, nil
		}
		// Consume completed calls without blocking where possible, then
		// block for the next completion. The execution context bounds the
		// wait: a query deadline wakes the ReqSync with the ctx error, and
		// Close then disowns the still-pending calls.
		id, err := r.Pump.AwaitAnyCtx(ctx.Ctx, r.pendingIDs())
		if err != nil {
			return nil, false, err
		}
		res, ok := r.Pump.Take(id)
		if !ok {
			return nil, false, fmt.Errorf("ReqSync: call %d signaled done but result missing", id)
		}
		if err := r.settle(ctx, id, res); err != nil {
			return nil, false, err
		}
	}
}

// NextBatch implements exec.BatchOperator: completed tuples are released
// in windows of the ready queue; in streaming mode whole child batches
// are admitted before any pump wait, so even without full buffering the
// pump's queue depth grows batch-at-a-time.
func (r *ReqSync) NextBatch(ctx *exec.Context, max int) (exec.Batch, bool, error) {
	if !r.opened {
		return nil, false, fmt.Errorf("ReqSync: NextBatch before Open")
	}
	for {
		if len(r.ready) > 0 {
			n := len(r.ready)
			if n > max {
				n = max
			}
			b := exec.Batch(r.ready[:n:n])
			r.ready = r.ready[n:]
			return b, true, nil
		}
		if r.Streaming && !r.childDone {
			cb, ok, err := exec.NextBatchFrom(ctx, r.Child, max)
			if err != nil {
				return nil, false, err
			}
			if ok {
				for _, t := range cb {
					r.admit(t)
				}
				continue
			}
			r.childDone = true
		}
		if len(r.waiting) == 0 {
			if !r.childDone {
				continue
			}
			return nil, false, nil
		}
		id, err := r.Pump.AwaitAnyCtx(ctx.Ctx, r.pendingIDs())
		if err != nil {
			return nil, false, err
		}
		res, ok := r.Pump.Take(id)
		if !ok {
			return nil, false, fmt.Errorf("ReqSync: call %d signaled done but result missing", id)
		}
		if err := r.settle(ctx, id, res); err != nil {
			return nil, false, err
		}
	}
}

// Close implements exec.Operator: pending calls are disowned (the pump
// drops their results when they complete).
func (r *ReqSync) Close() error {
	for id := range r.waiting {
		r.Pump.Discard(id)
	}
	r.waiting = nil
	r.ready = nil
	r.opened = false
	return r.Child.Close()
}

// Children implements exec.Operator.
func (r *ReqSync) Children() []exec.Operator { return []exec.Operator{r.Child} }

// SetChild implements exec.Operator.
func (r *ReqSync) SetChild(i int, op exec.Operator) {
	if i != 0 {
		panic("ReqSync has a single child")
	}
	r.Child = op
}

// SpanExtras implements exec.SpanExtras: the Section 4.3 settlement
// profile — calls settled, tuples patched/expanded/canceled, and failed
// calls absorbed by a degradation policy.
func (r *ReqSync) SpanExtras() map[string]int64 {
	return map[string]int64{
		"settled":  r.nSettled,
		"patched":  r.nPatched,
		"expanded": r.nExpanded,
		"canceled": r.nCanceled,
		"degraded": r.nDegraded,
	}
}

// Name implements exec.Operator.
func (r *ReqSync) Name() string { return "ReqSync" }

// Describe implements exec.Operator.
func (r *ReqSync) Describe() string {
	if r.Streaming {
		return "streaming"
	}
	return ""
}
