package async

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/types"
)

// AEVScan is the asynchronous external virtual-table scan of Section 4.1.
// Where EVScan blocks for the duration of the search-engine request,
// AEVScan registers the call with the ReqPump and immediately returns a
// single tuple whose call-supplied attributes hold placeholders; the
// ReqSync operator higher in the plan later patches, cancels, or expands
// that tuple when the call completes (Section 4.3).
type AEVScan struct {
	Source exec.ExternalSource
	Inputs []expr.Expr
	Out    *schema.Schema
	Pump   *Pump

	emitted bool
	callID  types.CallID
	args    []types.Value
	// nCalls counts pump registrations across every Open of this instance,
	// for the span trace (one registration per outer binding).
	nCalls int64
	// tracedIDs accumulates the CallIDs this scan registered while the
	// query was sampled; TraceChildren exchanges them for pump call
	// spans at Close. Empty for untraced queries.
	tracedIDs []types.CallID
}

// NewAEVScan builds an asynchronous external scan.
func NewAEVScan(src exec.ExternalSource, inputs []expr.Expr, out *schema.Schema, pump *Pump) *AEVScan {
	return &AEVScan{Source: src, Inputs: inputs, Out: out, Pump: pump}
}

// FromEVScan converts a synchronous EVScan into its asynchronous
// counterpart (step one of the rewrite algorithm). The pump takes over the
// EVScan's cache, if any.
func FromEVScan(ev *exec.EVScan, pump *Pump) *AEVScan {
	return NewAEVScan(ev.Source, ev.Inputs, ev.Out, pump)
}

// Schema implements exec.Operator.
func (s *AEVScan) Schema() *schema.Schema { return s.Out }

// Open implements exec.Operator: it evaluates the call's parameters
// against the current dependent-join bindings and registers the call with
// the pump — without waiting.
func (s *AEVScan) Open(ctx *exec.Context) error {
	if s.Pump == nil {
		return fmt.Errorf("AEVScan %s: no request pump", s.Source.Name())
	}
	args, err := exec.EvalArgs(s.Source.Name(), s.Inputs, ctx)
	if err != nil {
		return err
	}
	s.args = args
	ctx.Stats.ExternalCalls++
	s.nCalls++
	src := s.Source
	// Registering under the execution context ties the call's lifetime to
	// the query: if the deadline expires while the call is still queued,
	// the pump drops it without consuming a slot.
	s.callID = s.Pump.RegisterCtx(ctx.Ctx, src.Destination(), src.CacheKey(args), func() ([]types.Tuple, error) {
		return src.Call(args)
	})
	if obs.SampledTrace(ctx.Ctx) != nil {
		s.tracedIDs = append(s.tracedIDs, s.callID)
	}
	s.emitted = false
	return nil
}

// Next implements exec.Operator: it emits exactly one tuple — argument
// values echoed, call-supplied attributes as placeholders — then ends.
// "We always begin by assuming that exactly one tuple joins, then 'patch'
// our results in ReqSync" (Section 4.3).
func (s *AEVScan) Next(ctx *exec.Context) (types.Tuple, bool, error) {
	if s.emitted {
		return nil, false, nil
	}
	s.emitted = true
	numEcho := s.Source.NumEcho()
	t := make(types.Tuple, s.Out.Len())
	for i := 0; i < numEcho && i < len(s.args); i++ {
		t[i] = s.args[i]
	}
	for i := numEcho; i < s.Out.Len(); i++ {
		t[i] = types.Placeholder(s.callID, i-numEcho)
	}
	return t, true, nil
}

// BindBatch implements exec.BindingBatcher: it registers the external
// calls for a whole batch of outer bindings in one round — when the pump
// memoizes results, one Pump.RegisterCtx per *distinct* cache key in the
// batch — so the pump sees the full request queue before the enclosing
// ReqSync's first wait, instead of one call per dependent-join Next.
// Duplicate keys within the batch then share one CallID (the ReqSync
// patches every waiting tuple of a call when it settles, so sharing is
// transparent). Without a cache, every frame registers its own call:
// duplicate bindings re-issuing duplicate requests is the paper's
// Figure 7 behavior, and batching must not silently change it. Either
// way the per-binding accounting (Stats.ExternalCalls, the trace's calls
// counter) counts one logical call per frame, matching the per-tuple
// path.
func (s *AEVScan) BindBatch(ctx *exec.Context, frames []map[schema.AttrID]types.Value) ([][]types.Tuple, bool, error) {
	if len(frames) == 0 {
		return nil, true, nil // capability probe
	}
	if s.Pump == nil {
		return nil, false, fmt.Errorf("AEVScan %s: no request pump", s.Source.Name())
	}
	rows := make([][]types.Tuple, len(frames))
	var byKey map[string]types.CallID
	if s.Pump.HasCache() {
		byKey = make(map[string]types.CallID, len(frames))
	}
	sampled := obs.SampledTrace(ctx.Ctx) != nil
	numEcho := s.Source.NumEcho()
	for fi, frame := range frames {
		ctx.Env.PushFrame(frame)
		args, err := exec.EvalArgs(s.Source.Name(), s.Inputs, ctx)
		ctx.Env.PopFrame()
		if err != nil {
			return nil, false, err
		}
		ctx.Stats.ExternalCalls++
		s.nCalls++
		key := s.Source.CacheKey(args)
		id, seen := types.CallID(0), false
		if byKey != nil {
			id, seen = byKey[key]
		}
		if !seen {
			src := s.Source
			callArgs := args
			id = s.Pump.RegisterCtx(ctx.Ctx, src.Destination(), key, func() ([]types.Tuple, error) {
				return src.Call(callArgs)
			})
			if byKey != nil {
				byKey[key] = id
			}
			if sampled {
				s.tracedIDs = append(s.tracedIDs, id)
			}
		}
		t := make(types.Tuple, s.Out.Len())
		for i := 0; i < numEcho && i < len(args); i++ {
			t[i] = args[i]
		}
		for i := numEcho; i < s.Out.Len(); i++ {
			t[i] = types.Placeholder(id, i-numEcho)
		}
		rows[fi] = []types.Tuple{t}
	}
	return rows, true, nil
}

// Close implements exec.Operator.
func (s *AEVScan) Close() error { return nil }

// Children implements exec.Operator.
func (s *AEVScan) Children() []exec.Operator { return nil }

// SetChild implements exec.Operator.
func (s *AEVScan) SetChild(int, exec.Operator) { panic("AEVScan has no children") }

// SpanExtras implements exec.SpanExtras: calls registered with the pump.
func (s *AEVScan) SpanExtras() map[string]int64 {
	return map[string]int64{"calls": s.nCalls}
}

// TraceChildren implements exec.TraceChildren: the pump call timelines
// this scan registered while the query was sampled, as spans. Taking a
// call's record removes it from the pump, so re-closing (dependent
// joins close their inner subtree once per binding) attaches each call
// exactly once.
func (s *AEVScan) TraceChildren() []*obs.Span {
	if len(s.tracedIDs) == 0 || s.Pump == nil {
		return nil
	}
	records := s.Pump.TakeCallTraces(s.tracedIDs)
	s.tracedIDs = s.tracedIDs[:0]
	spans := make([]*obs.Span, 0, len(records))
	for _, ct := range records {
		spans = append(spans, ct.Span())
	}
	return spans
}

// Name implements exec.Operator.
func (s *AEVScan) Name() string { return "AEVScan" }

// Describe implements exec.Operator.
func (s *AEVScan) Describe() string { return s.Source.Name() }

// FilledAttrs returns the set of output attributes whose values this scan
// leaves as placeholders — the ReqSync_i.A set of Section 4.5.2.
func (s *AEVScan) FilledAttrs() map[schema.AttrID]bool {
	set := make(map[schema.AttrID]bool)
	for i := s.Source.NumEcho(); i < len(s.Out.Cols); i++ {
		set[s.Out.Cols[i].ID] = true
	}
	return set
}
