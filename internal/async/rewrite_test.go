package async

import (
	"sort"
	"testing"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
)

// Helpers building the paper's plans by hand. Sources echo one input
// column; WebCount-style sources return [Count], WebPages-style return
// [URL, Rank].

func countSource(name, dest string) *scriptedSource {
	return &scriptedSource{name: name, dest: dest, numEcho: 1,
		rows: func(arg string) ([]types.Tuple, error) {
			return []types.Tuple{{types.Int(int64(len(arg)) * 7)}}, nil
		}}
}

func pagesSource(name, dest string, k int) *scriptedSource {
	return &scriptedSource{name: name, dest: dest, numEcho: 1,
		rows: func(arg string) ([]types.Tuple, error) {
			var out []types.Tuple
			for i := 1; i <= k; i++ {
				out = append(out, types.Tuple{
					types.Str("www." + arg + "." + name + ".com"), types.Int(int64(i))})
			}
			return out, nil
		}}
}

func countSchema(alias string) *schema.Schema {
	return schema.New(strCol(alias, "Term"), intCol(alias, "Count"))
}

func pagesSchema(alias string) *schema.Schema {
	return schema.New(strCol(alias, "Term"), strCol(alias, "URL"), intCol(alias, "Rank"))
}

// figure3Input builds the Figure 2 plan: Sort(DJ(Scan(Sigs), EVScan(WebCount))).
func figure3Input(src *scriptedSource) (exec.Operator, *schema.Schema) {
	term := strCol("Sigs", "Name")
	left := exec.NewValuesScan(schema.New(term), tuplesOf([]string{"SIGMOD", "SIGOPS", "SIGACT"}))
	out := countSchema("WebCount")
	ev := exec.NewEVScan(src, []expr.Expr{expr.NewColRef(term)}, out)
	dj := exec.NewDependentJoin(left, ev, "Sigs.Name + WebCount.T1")
	srt := exec.NewSort(dj, []exec.SortKey{{Expr: expr.NewColRef(out.Cols[1]), Desc: true}})
	return srt, out
}

func TestRewriteFigure3(t *testing.T) {
	// Figure 2 (input) -> Figure 3 (rewritten): the ReqSync lands directly
	// below the Sort, because the Sort's key is the call-filled Count.
	pump := NewPump(8, 8, nil)
	in, _ := figure3Input(countSource("WebCount", "av"))
	got := Rewrite(in, pump)
	want := "Sort(ReqSync(Dependent Join(Values,AEVScan)))"
	if s := exec.Shape(got); s != want {
		t.Fatalf("shape = %s, want %s", s, want)
	}
	rows := runOp(t, got)
	if len(rows) != 3 {
		t.Fatalf("rows: %v", rows)
	}
	// Sorted by Count desc: SIGMOD/SIGOPS (42) before SIGACT (42)... all
	// 6-letter sigs tie at 42; verify ordering is by count desc.
	for i := 1; i < len(rows); i++ {
		if rows[i-1][2].I < rows[i][2].I {
			t.Errorf("sort violated: %v", rows)
		}
	}
}

func TestRewriteFigure4(t *testing.T) {
	// Sigs |x| WebPages (Rank <= 3): single DJ over a multi-row source; the
	// rewritten plan is ReqSync(DJ(Scan, AEVScan)) and ReqSync performs
	// tuple generation (3 copies per sig).
	pump := NewPump(8, 8, nil)
	term := strCol("Sigs", "Name")
	left := exec.NewValuesScan(schema.New(term), tuplesOf([]string{"SIGMOD", "SIGOPS"}))
	out := pagesSchema("WP")
	ev := exec.NewEVScan(pagesSource("WP", "av", 3), []expr.Expr{expr.NewColRef(term)}, out)
	dj := exec.NewDependentJoin(left, ev, "")
	got := Rewrite(dj, pump)
	if s := exec.Shape(got); s != "ReqSync(Dependent Join(Values,AEVScan))" {
		t.Fatalf("shape = %s", s)
	}
	rows := runOp(t, got)
	if len(rows) != 6 { // "111 tuples are ultimately produced" scaled down
		t.Fatalf("want 6 rows, got %d", len(rows))
	}
}

func TestRewriteFigure6TwoEngines(t *testing.T) {
	// Figure 6: Sigs |x| WP_AV |x| WP_Google. After insertion, percolation,
	// and consolidation there must be exactly ONE ReqSync at the top
	// managing both calls' attributes.
	pump := NewPump(16, 16, nil)
	term := strCol("Sigs", "Name")
	left := exec.NewValuesScan(schema.New(term), tuplesOf([]string{"SIGMOD", "SIGOPS", "SIGACT"}))
	avOut := pagesSchema("WP_AV")
	gOut := pagesSchema("WP_Google")
	ev1 := exec.NewEVScan(pagesSource("WP_AV", "av", 3), []expr.Expr{expr.NewColRef(term)}, avOut)
	dj1 := exec.NewDependentJoin(left, ev1, "Sigs.Name + WP_AV.T1")
	ev2 := exec.NewEVScan(pagesSource("WP_Google", "g", 3), []expr.Expr{expr.NewColRef(term)}, gOut)
	dj2 := exec.NewDependentJoin(dj1, ev2, "Sigs.Name + WP_Google.T1")

	got := Rewrite(dj2, pump)
	want := "ReqSync(Dependent Join(Dependent Join(Values,AEVScan),AEVScan))"
	if s := exec.Shape(got); s != want {
		t.Fatalf("shape = %s, want %s", s, want)
	}
	rs := got.(*ReqSync)
	// The consolidated A set covers both scans' outputs (URL+Rank each).
	if len(rs.A) != 4 {
		t.Errorf("consolidated A has %d attrs, want 4", len(rs.A))
	}
	rows := runOp(t, got)
	// 3 sigs x 3 AV urls x 3 Google urls = 27 combinations.
	if len(rows) != 27 {
		t.Fatalf("want 27 rows, got %d", len(rows))
	}
	// Exactly 6 calls were registered (3 sigs x 2 engines), not 3 + 9.
	if reg := pump.Stats().Registered; reg != 6 {
		t.Errorf("registered calls = %d, want 6 (the paper's 74 scaled down)", reg)
	}
}

func TestRewriteFigure7CrossProductBetweenJoins(t *testing.T) {
	// Figure 7(a): Sigs |x| WC_AV x R |x| WC_Google with a single
	// consolidated ReqSync above everything.
	pump := NewPump(16, 16, nil)
	term := strCol("Sigs", "Name")
	sigs := exec.NewValuesScan(schema.New(term), tuplesOf([]string{"SIGMOD", "SIGOPS"}))
	avOut := countSchema("WC_AV")
	ev1 := exec.NewEVScan(countSource("WC_AV", "av"), []expr.Expr{expr.NewColRef(term)}, avOut)
	dj1 := exec.NewDependentJoin(sigs, ev1, "")
	rcol := intCol("R", "V")
	r := exec.NewValuesScan(schema.New(rcol), []types.Tuple{{types.Int(1)}, {types.Int(2)}, {types.Int(3)}})
	cross := exec.NewNestedLoopJoin(dj1, r, nil)
	gOut := countSchema("WC_Google")
	ev2 := exec.NewEVScan(countSource("WC_Google", "g"), []expr.Expr{expr.NewColRef(term)}, gOut)
	dj2 := exec.NewDependentJoin(cross, ev2, "")

	got := Rewrite(dj2, pump)
	want := "ReqSync(Dependent Join(Cross-Product(Dependent Join(Values,AEVScan),Values),AEVScan))"
	if s := exec.Shape(got); s != want {
		t.Fatalf("shape = %s, want %s", s, want)
	}
	rows := runOp(t, got)
	if len(rows) != 6 { // 2 sigs x 3 R rows
		t.Fatalf("rows: %d", len(rows))
	}
	// The cross-product duplicated incomplete AV tuples; each copy shares
	// the same AV call, and the Google side issues one call per cross row.
	if reg := pump.Stats().Registered; reg != 2+6 {
		t.Errorf("registered = %d, want 8 (2 AV + 6 Google)", reg)
	}
}

func TestRewriteFigure8BushyJoinBecomesSelectionOverCross(t *testing.T) {
	// Figure 8: a bushy plan whose top join predicate references
	// call-filled URLs. The rewriter must turn the join into a selection
	// over a cross-product and leave the selection above the ReqSync.
	pump := NewPump(16, 16, nil)
	sigTerm := strCol("Sigs", "Name")
	fieldTerm := strCol("CSFields", "Name")
	sigs := exec.NewValuesScan(schema.New(sigTerm), tuplesOf([]string{"SIGMOD", "SIGGRAPH"}))
	fields := exec.NewValuesScan(schema.New(fieldTerm), tuplesOf([]string{"databases", "graphics"}))

	sOut := pagesSchema("S")
	cOut := pagesSchema("C")
	// Both engines return overlapping URLs for equal-length terms so the
	// join result is non-empty: URL depends only on the term.
	urlSrc := func(name string) *scriptedSource {
		return &scriptedSource{name: name, dest: name, numEcho: 1,
			rows: func(arg string) ([]types.Tuple, error) {
				return []types.Tuple{
					{types.Str("www.shared.org/" + arg[:3]), types.Int(1)},
					{types.Str("www." + name + ".com/" + arg), types.Int(2)},
				}, nil
			}}
	}
	evS := exec.NewEVScan(urlSrc("S"), []expr.Expr{expr.NewColRef(sigTerm)}, sOut)
	djS := exec.NewDependentJoin(sigs, evS, "")
	evC := exec.NewEVScan(urlSrc("C"), []expr.Expr{expr.NewColRef(fieldTerm)}, cOut)
	djC := exec.NewDependentJoin(fields, evC, "")
	pred := expr.NewCmp(expr.EQ, expr.NewColRef(sOut.Cols[1]), expr.NewColRef(cOut.Cols[1]))
	join := exec.NewNestedLoopJoin(djS, djC, pred)

	got := Rewrite(join, pump)
	want := "Select(ReqSync(Cross-Product(Dependent Join(Values,AEVScan),Dependent Join(Values,AEVScan))))"
	if s := exec.Shape(got); s != want {
		t.Fatalf("shape = %s, want %s", s, want)
	}
	rows := runOp(t, got)
	// Shared URL matches: sig term prefix[:3] == field term prefix[:3]?
	// "SIGMOD"[:3]="SIG", "databases"[:3]="dat" — none match across; the
	// shared.org URLs match only when prefixes are equal, so expect 0 rows
	// unless names collide. Verify instead against a sequential baseline.
	base := runOp(t, rebuildFigure8Baseline())
	if len(rows) != len(base) {
		t.Fatalf("async (%d rows) and sync (%d rows) disagree", len(rows), len(base))
	}
}

// rebuildFigure8Baseline rebuilds the same Figure 8 plan with synchronous
// EVScans for result comparison.
func rebuildFigure8Baseline() exec.Operator {
	sigTerm := strCol("Sigs", "Name")
	fieldTerm := strCol("CSFields", "Name")
	sigs := exec.NewValuesScan(schema.New(sigTerm), tuplesOf([]string{"SIGMOD", "SIGGRAPH"}))
	fields := exec.NewValuesScan(schema.New(fieldTerm), tuplesOf([]string{"databases", "graphics"}))
	sOut := pagesSchema("S")
	cOut := pagesSchema("C")
	urlSrc := func(name string) *scriptedSource {
		return &scriptedSource{name: name, dest: name, numEcho: 1,
			rows: func(arg string) ([]types.Tuple, error) {
				return []types.Tuple{
					{types.Str("www.shared.org/" + arg[:3]), types.Int(1)},
					{types.Str("www." + name + ".com/" + arg), types.Int(2)},
				}, nil
			}}
	}
	evS := exec.NewEVScan(urlSrc("S"), []expr.Expr{expr.NewColRef(sigTerm)}, sOut)
	djS := exec.NewDependentJoin(sigs, evS, "")
	evC := exec.NewEVScan(urlSrc("C"), []expr.Expr{expr.NewColRef(fieldTerm)}, cOut)
	djC := exec.NewDependentJoin(fields, evC, "")
	pred := expr.NewCmp(expr.EQ, expr.NewColRef(sOut.Cols[1]), expr.NewColRef(cOut.Cols[1]))
	return exec.NewNestedLoopJoin(djS, djC, pred)
}

func TestRewriteClashingFilterHoisted(t *testing.T) {
	// A selection over call-filled Count clashes; the rewriter hoists it
	// and the ReqSync ends up below the hoisted selection.
	pump := NewPump(8, 8, nil)
	term := strCol("Sigs", "Name")
	left := exec.NewValuesScan(schema.New(term), tuplesOf([]string{"SIGMOD", "SIGOPS", "SIGACT"}))
	out := countSchema("WC")
	ev := exec.NewEVScan(countSource("WC", "av"), []expr.Expr{expr.NewColRef(term)}, out)
	dj := exec.NewDependentJoin(left, ev, "")
	filter := exec.NewFilter(dj, expr.NewCmp(expr.GT, expr.NewColRef(out.Cols[1]), expr.NewLiteral(types.Int(40))))

	got := Rewrite(filter, pump)
	if s := exec.Shape(got); s != "Select(ReqSync(Dependent Join(Values,AEVScan)))" {
		t.Fatalf("shape = %s", s)
	}
	rows := runOp(t, got)
	for _, r := range rows {
		if r[2].I <= 40 {
			t.Errorf("filter not applied: %v", r)
		}
	}
}

func TestRewriteNonClashingFilterPassed(t *testing.T) {
	// A selection on a stored column does NOT clash; ReqSync percolates
	// above it.
	pump := NewPump(8, 8, nil)
	term := strCol("Sigs", "Name")
	left := exec.NewValuesScan(schema.New(term), tuplesOf([]string{"SIGMOD", "SIGOPS"}))
	out := countSchema("WC")
	ev := exec.NewEVScan(countSource("WC", "av"), []expr.Expr{expr.NewColRef(term)}, out)
	dj := exec.NewDependentJoin(left, ev, "")
	filter := exec.NewFilter(dj, expr.NewCmp(expr.NE, expr.NewColRef(term), expr.NewLiteral(types.Str("x"))))

	got := Rewrite(filter, pump)
	if s := exec.Shape(got); s != "ReqSync(Select(Dependent Join(Values,AEVScan)))" {
		t.Fatalf("shape = %s", s)
	}
}

func TestRewriteAggregateClashes(t *testing.T) {
	// Aggregation must stay above ReqSync (clash case 3).
	pump := NewPump(8, 8, nil)
	term := strCol("Sigs", "Name")
	left := exec.NewValuesScan(schema.New(term), tuplesOf([]string{"a", "bb"}))
	out := countSchema("WC")
	ev := exec.NewEVScan(countSource("WC", "av"), []expr.Expr{expr.NewColRef(term)}, out)
	dj := exec.NewDependentJoin(left, ev, "")
	agg := exec.NewAggregate(dj, nil, nil, []exec.AggSpec{
		{Func: exec.AggSum, Arg: expr.NewColRef(out.Cols[1]), OutCol: intCol("", "total")},
	})
	got := Rewrite(agg, pump)
	if s := exec.Shape(got); s != "Aggregate(ReqSync(Dependent Join(Values,AEVScan)))" {
		t.Fatalf("shape = %s", s)
	}
	rows := runOp(t, got)
	if len(rows) != 1 || rows[0][0].I != 7+14 {
		t.Fatalf("aggregate result: %v", rows)
	}
}

func TestRewriteProjectClashOnComputedExpr(t *testing.T) {
	// Project computing Count/Population (Query 2) interprets the value ->
	// clash; ReqSync stays below the projection.
	pump := NewPump(8, 8, nil)
	term := strCol("States", "Name")
	pop := intCol("States", "Pop")
	left := exec.NewValuesScan(schema.New(term, pop), []types.Tuple{
		{types.Str("Utah"), types.Int(2)}, {types.Str("Iowa"), types.Int(4)},
	})
	out := countSchema("WC")
	ev := exec.NewEVScan(countSource("WC", "av"), []expr.Expr{expr.NewColRef(term)}, out)
	dj := exec.NewDependentJoin(left, ev, "")
	ratio := schema.Column{ID: schema.NewAttrID(), Name: "C", Type: schema.TFloat}
	proj := exec.NewProject(dj,
		[]expr.Expr{expr.NewColRef(term), expr.NewArith(expr.Div, expr.NewColRef(out.Cols[1]), expr.NewColRef(pop))},
		schema.New(term, ratio))
	got := Rewrite(proj, pump)
	if s := exec.Shape(got); s != "Project(ReqSync(Dependent Join(Values,AEVScan)))" {
		t.Fatalf("shape = %s", s)
	}
	rows := runOp(t, got)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	for _, r := range rows {
		if r[1].Kind != types.KindFloat {
			t.Errorf("computed ratio: %v", r)
		}
	}
}

func TestRewriteProjectClashOnDroppedAttr(t *testing.T) {
	// Projecting away a call-filled attribute breaks cancellation/
	// generation -> clash.
	pump := NewPump(8, 8, nil)
	term := strCol("Sigs", "Name")
	left := exec.NewValuesScan(schema.New(term), tuplesOf([]string{"a"}))
	out := pagesSchema("WP")
	ev := exec.NewEVScan(pagesSource("WP", "av", 2), []expr.Expr{expr.NewColRef(term)}, out)
	dj := exec.NewDependentJoin(left, ev, "")
	// Keep URL, drop Rank (a filled attribute).
	proj := exec.NewProject(dj,
		[]expr.Expr{expr.NewColRef(term), expr.NewColRef(out.Cols[1])},
		schema.New(term, out.Cols[1]))
	got := Rewrite(proj, pump)
	if s := exec.Shape(got); s != "Project(ReqSync(Dependent Join(Values,AEVScan)))" {
		t.Fatalf("shape = %s", s)
	}
	rows := runOp(t, got)
	if len(rows) != 2 {
		t.Fatalf("generation through clash: %v", rows)
	}
}

func TestRewritePassThroughProjectDoesNotClash(t *testing.T) {
	pump := NewPump(8, 8, nil)
	term := strCol("Sigs", "Name")
	left := exec.NewValuesScan(schema.New(term), tuplesOf([]string{"a"}))
	out := countSchema("WC")
	ev := exec.NewEVScan(countSource("WC", "av"), []expr.Expr{expr.NewColRef(term)}, out)
	dj := exec.NewDependentJoin(left, ev, "")
	// Keep Term and Count (all of A) as plain colrefs -> no clash.
	proj := exec.NewProject(dj,
		[]expr.Expr{expr.NewColRef(term), expr.NewColRef(out.Cols[1])},
		schema.New(term, out.Cols[1]))
	got := Rewrite(proj, pump)
	if s := exec.Shape(got); s != "ReqSync(Project(Dependent Join(Values,AEVScan)))" {
		t.Fatalf("shape = %s", s)
	}
}

func TestRewriteLimitClashes(t *testing.T) {
	pump := NewPump(8, 8, nil)
	term := strCol("Sigs", "Name")
	left := exec.NewValuesScan(schema.New(term), tuplesOf([]string{"a", "b", "c"}))
	out := pagesSchema("WP")
	ev := exec.NewEVScan(pagesSource("WP", "av", 2), []expr.Expr{expr.NewColRef(term)}, out)
	dj := exec.NewDependentJoin(left, ev, "")
	lim := exec.NewLimit(dj, 2)
	got := Rewrite(lim, pump)
	if s := exec.Shape(got); s != "Limit(ReqSync(Dependent Join(Values,AEVScan)))" {
		t.Fatalf("shape = %s", s)
	}
	rows := runOp(t, got)
	if len(rows) != 2 {
		t.Fatalf("limit rows: %d", len(rows))
	}
}

// TestRewriteEquivalence: for a battery of plans, the rewritten plan must
// produce exactly the same multiset of tuples as the sequential plan.
func TestRewriteEquivalence(t *testing.T) {
	build := func(async bool, pump *Pump) exec.Operator {
		term := strCol("Sigs", "Name")
		left := exec.NewValuesScan(schema.New(term),
			tuplesOf([]string{"SIGMOD", "SIGOPS", "SIGACT", "SIGCHI", "SIGIR"}))
		wpOut := pagesSchema("WP")
		wcOut := countSchema("WC")
		evp := exec.NewEVScan(pagesSource("WP", "av", 2), []expr.Expr{expr.NewColRef(term)}, wpOut)
		dj1 := exec.NewDependentJoin(left, evp, "")
		evc := exec.NewEVScan(countSource("WC", "g"), []expr.Expr{expr.NewColRef(term)}, wcOut)
		dj2 := exec.NewDependentJoin(dj1, evc, "")
		f := exec.NewFilter(dj2, expr.NewCmp(expr.GT, expr.NewColRef(wcOut.Cols[1]), expr.NewLiteral(types.Int(0))))
		srt := exec.NewSort(f, []exec.SortKey{
			{Expr: expr.NewColRef(term)},
			{Expr: expr.NewColRef(wpOut.Cols[2])},
		})
		if async {
			return Rewrite(srt, pump)
		}
		return srt
	}
	syncRows := runOp(t, build(false, nil))
	pump := NewPump(16, 16, nil)
	asyncRows := runOp(t, build(true, pump))
	if len(syncRows) != len(asyncRows) {
		t.Fatalf("row counts differ: sync %d async %d", len(syncRows), len(asyncRows))
	}
	key := func(rows []types.Tuple) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = r.Key()
		}
		sort.Strings(out)
		return out
	}
	sk, ak := key(syncRows), key(asyncRows)
	for i := range sk {
		if sk[i] != ak[i] {
			t.Fatalf("multisets differ at %d:\n sync %s\nasync %s", i, sk[i], ak[i])
		}
	}
}

func TestConsolidateMergesChains(t *testing.T) {
	// Three stacked ReqSyncs collapse into one with the union A.
	pump := NewPump(4, 4, nil)
	a := intCol("T", "A")
	scan := exec.NewValuesScan(schema.New(a), nil)
	id1, id2, id3 := schema.NewAttrID(), schema.NewAttrID(), schema.NewAttrID()
	rs := NewReqSync(NewReqSync(NewReqSync(scan, pump, map[schema.AttrID]bool{id1: true}),
		pump, map[schema.AttrID]bool{id2: true}), pump, map[schema.AttrID]bool{id3: true})
	got := consolidate(rs)
	top, ok := got.(*ReqSync)
	if !ok {
		t.Fatalf("not a ReqSync: %T", got)
	}
	if _, isRS := top.Child.(*ReqSync); isRS {
		t.Fatal("chain not fully consolidated")
	}
	if len(top.A) != 3 {
		t.Errorf("A union: %v", top.A)
	}
}
