package async

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/types"
)

// scriptedSource is an ExternalSource with per-argument scripted results
// and an optional per-call delay.
type scriptedSource struct {
	name    string
	dest    string
	numEcho int
	delay   time.Duration
	rows    func(arg string) ([]types.Tuple, error)
	mu      sync.Mutex
	calls   int
}

func (s *scriptedSource) Name() string        { return s.name }
func (s *scriptedSource) Destination() string { return s.dest }
func (s *scriptedSource) NumEcho() int        { return s.numEcho }
func (s *scriptedSource) CacheKey(args []types.Value) string {
	return s.name + "|" + args[0].AsString()
}
func (s *scriptedSource) Call(args []types.Value) ([]types.Tuple, error) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return s.rows(args[0].AsString())
}

func strCol(table, name string) schema.Column {
	return schema.Column{ID: schema.NewAttrID(), Table: table, Name: name, Type: schema.TString}
}

func intCol(table, name string) schema.Column {
	return schema.Column{ID: schema.NewAttrID(), Table: table, Name: name, Type: schema.TInt}
}

// buildCountPlan constructs DependentJoin(Values(terms), AEVScan(src)) with
// a ReqSync on top — the hand-built Figure 3 plan.
func buildCountPlan(terms []string, src *scriptedSource, pump *Pump) (*ReqSync, *schema.Schema) {
	termCol := strCol("L", "Term")
	left := exec.NewValuesScan(schema.New(termCol), tuplesOf(terms))
	out := schema.New(strCol("V", "Term"), intCol("V", "Count"))
	aev := NewAEVScan(src, []expr.Expr{expr.NewColRef(termCol)}, out, pump)
	dj := exec.NewDependentJoin(left, aev, "")
	return NewReqSync(dj, pump, aev.FilledAttrs()), dj.Schema()
}

func tuplesOf(ss []string) []types.Tuple {
	out := make([]types.Tuple, len(ss))
	for i, s := range ss {
		out[i] = types.Tuple{types.Str(s)}
	}
	return out
}

func runOp(t *testing.T, op exec.Operator) []types.Tuple {
	t.Helper()
	rows, err := exec.Run(exec.NewContext(), op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// ---------------------------------------------------------------------------
// AEVScan

func TestAEVScanEmitsPlaceholderTuple(t *testing.T) {
	pump := NewPump(4, 4, nil)
	src := &scriptedSource{name: "WC", dest: "d", numEcho: 1,
		rows: func(arg string) ([]types.Tuple, error) {
			return []types.Tuple{{types.Int(int64(len(arg)))}}, nil
		}}
	out := schema.New(strCol("V", "Term"), intCol("V", "Count"))
	aev := NewAEVScan(src, []expr.Expr{expr.NewLiteral(types.Str("abc"))}, out, pump)
	ctx := exec.NewContext()
	if err := aev.Open(ctx); err != nil {
		t.Fatal(err)
	}
	tup, ok, err := aev.Next(ctx)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if tup[0].AsString() != "abc" {
		t.Errorf("echoed arg: %v", tup)
	}
	if !tup[1].IsPlaceholder() || tup[1].Field != 0 {
		t.Errorf("output should be a placeholder: %v", tup)
	}
	// Exactly one tuple ("we always begin by assuming that exactly one
	// tuple joins").
	if _, ok, _ := aev.Next(ctx); ok {
		t.Error("AEVScan must emit exactly one tuple")
	}
	if err := aev.Close(); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.ExternalCalls != 1 {
		t.Errorf("external calls: %d", ctx.Stats.ExternalCalls)
	}
}

func TestAEVScanFilledAttrs(t *testing.T) {
	pump := NewPump(4, 4, nil)
	out := schema.New(strCol("V", "Term"), intCol("V", "Count"))
	src := &scriptedSource{name: "WC", dest: "d", numEcho: 1, rows: nil}
	aev := NewAEVScan(src, nil, out, pump)
	a := aev.FilledAttrs()
	if len(a) != 1 || !a[out.Cols[1].ID] {
		t.Errorf("FilledAttrs = %v", a)
	}
}

// ---------------------------------------------------------------------------
// ReqSync: patch (1 row), cancel (0 rows), expand (n rows)

func TestReqSyncPatchesSingleRow(t *testing.T) {
	pump := NewPump(8, 8, nil)
	src := &scriptedSource{name: "WC", dest: "d", numEcho: 1, delay: 5 * time.Millisecond,
		rows: func(arg string) ([]types.Tuple, error) {
			return []types.Tuple{{types.Int(int64(len(arg)))}}, nil
		}}
	rs, _ := buildCountPlan([]string{"a", "bb", "ccc"}, src, pump)
	rows := runOp(t, rs)
	if len(rows) != 3 {
		t.Fatalf("rows: %v", rows)
	}
	for _, r := range rows {
		if r.HasPlaceholder() {
			t.Fatalf("unpatched tuple: %v", r)
		}
		if r[2].I != int64(len(r[0].AsString())) {
			t.Errorf("patched value wrong: %v", r)
		}
	}
}

func TestReqSyncCancelsZeroRowTuples(t *testing.T) {
	pump := NewPump(8, 8, nil)
	src := &scriptedSource{name: "WP", dest: "d", numEcho: 1,
		rows: func(arg string) ([]types.Tuple, error) {
			if arg == "none" {
				return nil, nil // Section 4.3 case 1: delete the tuple
			}
			return []types.Tuple{{types.Int(1)}}, nil
		}}
	rs, _ := buildCountPlan([]string{"x", "none", "y"}, src, pump)
	rows := runOp(t, rs)
	if len(rows) != 2 {
		t.Fatalf("cancellation failed: %v", rows)
	}
	for _, r := range rows {
		if r[0].AsString() == "none" {
			t.Errorf("canceled tuple leaked: %v", r)
		}
	}
}

func TestReqSyncExpandsMultiRowResults(t *testing.T) {
	pump := NewPump(8, 8, nil)
	src := &scriptedSource{name: "WP", dest: "d", numEcho: 1,
		rows: func(arg string) ([]types.Tuple, error) {
			// Section 4.3 case 3: n result rows -> n-1 extra copies.
			var out []types.Tuple
			for i := 1; i <= len(arg); i++ {
				out = append(out, types.Tuple{types.Int(int64(i))})
			}
			return out, nil
		}}
	rs, _ := buildCountPlan([]string{"abc", "z"}, src, pump)
	rows := runOp(t, rs)
	if len(rows) != 4 { // 3 for "abc" + 1 for "z"
		t.Fatalf("expansion: got %d rows: %v", len(rows), rows)
	}
	counts := map[string][]int64{}
	for _, r := range rows {
		counts[r[0].AsString()] = append(counts[r[0].AsString()], r[2].I)
	}
	if len(counts["abc"]) != 3 || len(counts["z"]) != 1 {
		t.Errorf("per-term expansion: %v", counts)
	}
}

// TestReqSyncMultipleCallsPerTuple reproduces Section 4.4: a tuple holding
// placeholders for two different calls; the first completion expands the
// tuple and its copies must retain (and later resolve) the second call's
// placeholders.
func TestReqSyncMultipleCallsPerTuple(t *testing.T) {
	pump := NewPump(8, 8, nil)
	termCol := strCol("L", "Term")
	left := exec.NewValuesScan(schema.New(termCol), tuplesOf([]string{"sig"}))

	// First call (AV): 3 rows, slow. Second call (Google): 2 rows, fast.
	av := &scriptedSource{name: "AV", dest: "av", numEcho: 1, delay: 30 * time.Millisecond,
		rows: func(arg string) ([]types.Tuple, error) {
			return []types.Tuple{{types.Int(101)}, {types.Int(102)}, {types.Int(103)}}, nil
		}}
	g := &scriptedSource{name: "G", dest: "g", numEcho: 1, delay: 1 * time.Millisecond,
		rows: func(arg string) ([]types.Tuple, error) {
			return []types.Tuple{{types.Int(201)}, {types.Int(202)}}, nil
		}}
	avOut := schema.New(strCol("AV", "Term"), intCol("AV", "Val"))
	gOut := schema.New(strCol("G", "Term"), intCol("G", "Val"))
	aev1 := NewAEVScan(av, []expr.Expr{expr.NewColRef(termCol)}, avOut, pump)
	dj1 := exec.NewDependentJoin(left, aev1, "")
	aev2 := NewAEVScan(g, []expr.Expr{expr.NewColRef(termCol)}, gOut, pump)
	dj2 := exec.NewDependentJoin(dj1, aev2, "")
	a := aev1.FilledAttrs()
	for id := range aev2.FilledAttrs() {
		a[id] = true
	}
	rs := NewReqSync(dj2, pump, a)

	rows := runOp(t, rs)
	// Cartesian of 3 AV rows x 2 G rows for the single sig.
	if len(rows) != 6 {
		t.Fatalf("want 6 rows, got %d: %v", len(rows), rows)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if r.HasPlaceholder() {
			t.Fatalf("unpatched: %v", r)
		}
		key := fmt.Sprintf("%d/%d", r[2].I, r[4].I)
		if seen[key] {
			t.Errorf("duplicate combination %s", key)
		}
		seen[key] = true
	}
	for _, avV := range []int{101, 102, 103} {
		for _, gV := range []int{201, 202} {
			if !seen[fmt.Sprintf("%d/%d", avV, gV)] {
				t.Errorf("missing combination %d/%d", avV, gV)
			}
		}
	}
}

// TestReqSyncMultiCallCancellation: one of a tuple's two calls returns zero
// rows after the other already expanded it — every copy must be canceled.
func TestReqSyncMultiCallCancellation(t *testing.T) {
	pump := NewPump(8, 8, nil)
	termCol := strCol("L", "Term")
	left := exec.NewValuesScan(schema.New(termCol), tuplesOf([]string{"sig"}))
	fast := &scriptedSource{name: "F", dest: "f", numEcho: 1,
		rows: func(string) ([]types.Tuple, error) {
			return []types.Tuple{{types.Int(1)}, {types.Int(2)}}, nil
		}}
	slowEmpty := &scriptedSource{name: "S", dest: "s", numEcho: 1, delay: 30 * time.Millisecond,
		rows: func(string) ([]types.Tuple, error) { return nil, nil }}
	fOut := schema.New(strCol("F", "Term"), intCol("F", "Val"))
	sOut := schema.New(strCol("S", "Term"), intCol("S", "Val"))
	aev1 := NewAEVScan(fast, []expr.Expr{expr.NewColRef(termCol)}, fOut, pump)
	dj1 := exec.NewDependentJoin(left, aev1, "")
	aev2 := NewAEVScan(slowEmpty, []expr.Expr{expr.NewColRef(termCol)}, sOut, pump)
	dj2 := exec.NewDependentJoin(dj1, aev2, "")
	a := aev1.FilledAttrs()
	for id := range aev2.FilledAttrs() {
		a[id] = true
	}
	rs := NewReqSync(dj2, pump, a)
	rows := runOp(t, rs)
	if len(rows) != 0 {
		t.Fatalf("all tuples should cancel, got %v", rows)
	}
}

func TestReqSyncPassThroughCompleteTuples(t *testing.T) {
	// Tuples without placeholders flow through untouched.
	pump := NewPump(4, 4, nil)
	a := intCol("T", "A")
	scan := exec.NewValuesScan(schema.New(a), []types.Tuple{{types.Int(1)}, {types.Int(2)}})
	rs := NewReqSync(scan, pump, nil)
	rows := runOp(t, rs)
	if len(rows) != 2 {
		t.Errorf("pass-through rows: %v", rows)
	}
}

func TestReqSyncErrorFromCall(t *testing.T) {
	pump := NewPump(4, 4, nil)
	src := &scriptedSource{name: "E", dest: "d", numEcho: 1,
		rows: func(string) ([]types.Tuple, error) { return nil, fmt.Errorf("boom") }}
	rs, _ := buildCountPlan([]string{"a"}, src, pump)
	if _, err := exec.Run(exec.NewContext(), rs); err == nil {
		t.Fatal("call error must propagate")
	}
}

func TestReqSyncStreaming(t *testing.T) {
	pump := NewPump(8, 8, nil)
	src := &scriptedSource{name: "WC", dest: "d", numEcho: 1, delay: 2 * time.Millisecond,
		rows: func(arg string) ([]types.Tuple, error) {
			return []types.Tuple{{types.Int(int64(len(arg)))}}, nil
		}}
	rs, _ := buildCountPlan([]string{"a", "bb", "ccc", "dddd"}, src, pump)
	rs.Streaming = true
	rows := runOp(t, rs)
	if len(rows) != 4 {
		t.Fatalf("streaming rows: %v", rows)
	}
	for _, r := range rows {
		if r.HasPlaceholder() {
			t.Fatalf("unpatched: %v", r)
		}
	}
}

func TestReqSyncConcurrencyBeatsSequential(t *testing.T) {
	// The headline claim: N high-latency calls complete in ~1 round trip.
	const n = 12
	const lat = 30 * time.Millisecond
	terms := make([]string, n)
	for i := range terms {
		terms[i] = fmt.Sprintf("t%d", i)
	}
	mk := func() *scriptedSource {
		return &scriptedSource{name: "WC", dest: "d", numEcho: 1, delay: lat,
			rows: func(arg string) ([]types.Tuple, error) {
				return []types.Tuple{{types.Int(1)}}, nil
			}}
	}
	// Async.
	pump := NewPump(64, 64, nil)
	rs, _ := buildCountPlan(terms, mk(), pump)
	start := time.Now()
	rows := runOp(t, rs)
	asyncTime := time.Since(start)
	if len(rows) != n {
		t.Fatalf("rows: %d", len(rows))
	}
	if asyncTime > time.Duration(n)*lat/3 {
		t.Errorf("async took %v; calls apparently not overlapped (sequential would be %v)",
			asyncTime, time.Duration(n)*lat)
	}
}
