package async

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/types"
)

func TestPumpBasicRegisterTake(t *testing.T) {
	p := NewPump(4, 4, nil)
	id := p.RegisterCtx(context.Background(), "d", "k", func() ([]types.Tuple, error) {
		return []types.Tuple{{types.Int(42)}}, nil
	})
	got, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id: true})
	if err != nil || got != id {
		t.Fatalf("await: %v %v", got, err)
	}
	res, ok := p.Take(id)
	if !ok || res.Err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 42 {
		t.Fatalf("take: %+v %v", res, ok)
	}
	// Result is consumed.
	if _, ok := p.Take(id); ok {
		t.Error("second take should miss")
	}
}

func TestPumpConcurrencyOverlap(t *testing.T) {
	p := NewPump(64, 64, nil)
	var active, peak int32
	const n = 20
	ids := make(map[types.CallID]bool)
	for i := 0; i < n; i++ {
		id := p.RegisterCtx(context.Background(), "d", fmt.Sprintf("k%d", i), func() ([]types.Tuple, error) {
			cur := atomic.AddInt32(&active, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if cur <= old || atomic.CompareAndSwapInt32(&peak, old, cur) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
			atomic.AddInt32(&active, -1)
			return nil, nil
		})
		ids[id] = true
	}
	deadline := time.After(5 * time.Second)
	for len(ids) > 0 {
		select {
		case <-deadline:
			t.Fatal("timeout")
		default:
		}
		id, err := p.AwaitAnyCtx(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
		p.Take(id)
		delete(ids, id)
	}
	if got := atomic.LoadInt32(&peak); got < n/2 {
		t.Errorf("peak concurrency %d; calls should overlap", got)
	}
}

func TestPumpTotalLimit(t *testing.T) {
	const limit = 3
	p := NewPump(limit, limit, nil)
	var active, peak int32
	ids := make(map[types.CallID]bool)
	for i := 0; i < 12; i++ {
		id := p.RegisterCtx(context.Background(), "d", fmt.Sprintf("k%d", i), func() ([]types.Tuple, error) {
			cur := atomic.AddInt32(&active, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if cur <= old || atomic.CompareAndSwapInt32(&peak, old, cur) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			atomic.AddInt32(&active, -1)
			return nil, nil
		})
		ids[id] = true
	}
	for len(ids) > 0 {
		id, err := p.AwaitAnyCtx(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
		p.Take(id)
		delete(ids, id)
	}
	if got := atomic.LoadInt32(&peak); got > limit {
		t.Errorf("peak %d exceeded limit %d", got, limit)
	}
	st := p.Stats()
	if st.Started != 12 || st.Completed != 12 {
		t.Errorf("stats: %+v", st)
	}
	if st.MaxActive > limit {
		t.Errorf("stats maxActive %d > limit", st.MaxActive)
	}
}

func TestPumpPerDestinationLimit(t *testing.T) {
	// Destination "slow" is limited; "fast" must not be starved behind it.
	p := NewPump(8, 1, nil)
	var slowActive, slowPeak int32
	release := make(chan struct{})
	ids := make(map[types.CallID]bool)
	var fastDone atomic.Int32
	for i := 0; i < 3; i++ {
		id := p.RegisterCtx(context.Background(), "slow", fmt.Sprintf("s%d", i), func() ([]types.Tuple, error) {
			cur := atomic.AddInt32(&slowActive, 1)
			for {
				old := atomic.LoadInt32(&slowPeak)
				if cur <= old || atomic.CompareAndSwapInt32(&slowPeak, old, cur) {
					break
				}
			}
			<-release
			atomic.AddInt32(&slowActive, -1)
			return nil, nil
		})
		ids[id] = true
	}
	fastID := p.RegisterCtx(context.Background(), "fast", "f", func() ([]types.Tuple, error) {
		fastDone.Add(1)
		return nil, nil
	})
	// The fast call must complete even while slow calls hold their slot.
	if _, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{fastID: true}); err != nil {
		t.Fatal(err)
	}
	if fastDone.Load() != 1 {
		t.Error("fast destination starved behind slow destination queue")
	}
	close(release)
	for len(ids) > 0 {
		id, err := p.AwaitAnyCtx(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
		p.Take(id)
		delete(ids, id)
	}
	if got := atomic.LoadInt32(&slowPeak); got > 1 {
		t.Errorf("slow destination peak %d > per-dest limit 1", got)
	}
}

func TestPumpCache(t *testing.T) {
	c := &countingCache{m: make(map[string][]types.Tuple)}
	p := NewPump(4, 4, c)
	var calls atomic.Int32
	fn := func() ([]types.Tuple, error) {
		calls.Add(1)
		return []types.Tuple{{types.Int(1)}}, nil
	}
	id1 := p.RegisterCtx(context.Background(), "d", "same", fn)
	p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id1: true})
	p.Take(id1)
	// Second identical call: served from cache, no new execution.
	id2 := p.RegisterCtx(context.Background(), "d", "same", fn)
	res, ok := p.Take(id2)
	if !ok {
		t.Fatal("cached call should be immediately done")
	}
	if len(res.Rows) != 1 || calls.Load() != 1 {
		t.Errorf("cache bypass failed: calls=%d", calls.Load())
	}
	if hits := p.Stats().CacheHits; hits != 1 {
		t.Errorf("cache hits: %d", hits)
	}
}

type countingCache struct {
	mu sync.Mutex
	m  map[string][]types.Tuple
}

func (c *countingCache) Get(k string) ([]types.Tuple, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[k]
	return r, ok
}
func (c *countingCache) Put(k string, rows []types.Tuple) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = rows
}

func TestPumpErrorPropagation(t *testing.T) {
	p := NewPump(2, 2, nil)
	id := p.RegisterCtx(context.Background(), "d", "k", func() ([]types.Tuple, error) {
		return nil, fmt.Errorf("engine down")
	})
	p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id: true})
	res, ok := p.Take(id)
	if !ok || res.Err == nil {
		t.Fatal("error should surface in the result")
	}
}

func TestPumpAwaitAnyValidation(t *testing.T) {
	p := NewPump(2, 2, nil)
	if _, err := p.AwaitAnyCtx(context.Background(), nil); err == nil {
		t.Error("await with no ids should error")
	}
}

func TestPumpCloseWakesWaiters(t *testing.T) {
	p := NewPump(1, 1, nil)
	block := make(chan struct{})
	id := p.RegisterCtx(context.Background(), "d", "k", func() ([]types.Tuple, error) {
		<-block
		return nil, nil
	})
	done := make(chan error, 1)
	go func() {
		// Wait on a call that never completes before Close.
		fake := types.CallID(99999)
		_, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{fake: true})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	p.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("closed pump should error out waiters")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not woken by Close")
	}
	close(block)
	_ = id
}

func TestPumpDiscard(t *testing.T) {
	p := NewPump(2, 2, nil)
	id := p.RegisterCtx(context.Background(), "d", "k", func() ([]types.Tuple, error) { return nil, nil })
	p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id: true})
	p.Discard(id)
	if _, ok := p.Take(id); ok {
		t.Error("discarded result should be gone")
	}
}

func TestPumpCoalescesInFlightDuplicates(t *testing.T) {
	// The Figure 7 hazard: many identical calls registered back to back,
	// before the first completes. With the cache enabled the pump must run
	// the network call once and fan the result out to every CallID.
	c := &countingCache{m: make(map[string][]types.Tuple)}
	p := NewPump(8, 8, c)
	var calls atomic.Int32
	release := make(chan struct{})
	fn := func() ([]types.Tuple, error) {
		calls.Add(1)
		<-release
		return []types.Tuple{{types.Int(7)}}, nil
	}
	ids := make(map[types.CallID]bool)
	for i := 0; i < 5; i++ {
		ids[p.RegisterCtx(context.Background(), "d", "dup", fn)] = true
	}
	close(release)
	for len(ids) > 0 {
		id, err := p.AwaitAnyCtx(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
		res, ok := p.Take(id)
		if !ok || res.Err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
			t.Fatalf("coalesced result wrong: %+v", res)
		}
		delete(ids, id)
	}
	if calls.Load() != 1 {
		t.Errorf("network executions: %d, want 1", calls.Load())
	}
	st := p.Stats()
	if st.Coalesced != 4 || st.Started != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestPumpNoCoalescingWithoutCache(t *testing.T) {
	// Without the cache, identical registrations stay independent calls.
	p := NewPump(8, 8, nil)
	var calls atomic.Int32
	fn := func() ([]types.Tuple, error) {
		calls.Add(1)
		return nil, nil
	}
	ids := make(map[types.CallID]bool)
	for i := 0; i < 3; i++ {
		ids[p.RegisterCtx(context.Background(), "d", "dup", fn)] = true
	}
	for len(ids) > 0 {
		id, err := p.AwaitAnyCtx(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
		p.Take(id)
		delete(ids, id)
	}
	if calls.Load() != 3 {
		t.Errorf("executions: %d, want 3", calls.Load())
	}
}

func TestPumpPerDestinationOverride(t *testing.T) {
	// One destination throttled to 1 while another runs at the default.
	p := NewPump(16, 8, nil)
	p.SetDestLimit("throttled", 1)
	var thrActive, thrPeak, freeActive, freePeak int32
	track := func(active, peak *int32, d time.Duration) func() ([]types.Tuple, error) {
		return func() ([]types.Tuple, error) {
			cur := atomic.AddInt32(active, 1)
			for {
				old := atomic.LoadInt32(peak)
				if cur <= old || atomic.CompareAndSwapInt32(peak, old, cur) {
					break
				}
			}
			time.Sleep(d)
			atomic.AddInt32(active, -1)
			return nil, nil
		}
	}
	ids := make(map[types.CallID]bool)
	for i := 0; i < 4; i++ {
		ids[p.RegisterCtx(context.Background(), "throttled", fmt.Sprintf("t%d", i), track(&thrActive, &thrPeak, 5*time.Millisecond))] = true
		ids[p.RegisterCtx(context.Background(), "free", fmt.Sprintf("f%d", i), track(&freeActive, &freePeak, 5*time.Millisecond))] = true
	}
	for len(ids) > 0 {
		id, err := p.AwaitAnyCtx(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
		p.Take(id)
		delete(ids, id)
	}
	if got := atomic.LoadInt32(&thrPeak); got > 1 {
		t.Errorf("throttled destination peak %d > 1", got)
	}
	if got := atomic.LoadInt32(&freePeak); got < 2 {
		t.Errorf("free destination should overlap: peak %d", got)
	}
}

func TestPumpRaisingLimitReleasesQueue(t *testing.T) {
	p := NewPump(8, 8, nil)
	p.SetDestLimit("d", 0) // park everything
	done := make(chan struct{}, 1)
	id := p.RegisterCtx(context.Background(), "d", "k", func() ([]types.Tuple, error) {
		done <- struct{}{}
		return nil, nil
	})
	select {
	case <-done:
		t.Fatal("call ran despite zero limit")
	case <-time.After(20 * time.Millisecond):
	}
	p.SetDestLimit("d", 1)
	if _, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id: true}); err != nil {
		t.Fatal(err)
	}
	<-done
}
