package async

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/types"
)

// Quiesce must wait for every execution goroutine — including ones whose
// engine call outlives Close. Before the pump tracked executions with a
// WaitGroup, process teardown simply abandoned in-flight engine calls;
// these tests pin the accounting.

func TestQuiesceWaitsForInflightCall(t *testing.T) {
	p := NewPump(1, 1, nil)
	block := make(chan struct{})
	var finished atomic.Bool
	started := make(chan struct{})
	p.RegisterCtx(context.Background(), "d", "k", func() ([]types.Tuple, error) {
		close(started)
		<-block
		finished.Store(true)
		return nil, nil
	})
	<-started
	p.Close()
	quiesced := make(chan struct{})
	go func() {
		p.Quiesce()
		close(quiesced)
	}()
	select {
	case <-quiesced:
		t.Fatal("Quiesce returned while an engine call was still running")
	case <-time.After(20 * time.Millisecond):
	}
	close(block)
	select {
	case <-quiesced:
	case <-time.After(2 * time.Second):
		t.Fatal("Quiesce did not return after the engine call finished")
	}
	if !finished.Load() {
		t.Error("Quiesce returned before the call body completed")
	}
}

// A timed-out call's execution goroutine keeps running after the attempt
// returns; Quiesce must wait for that straggler too.
func TestQuiesceWaitsForTimedOutStraggler(t *testing.T) {
	p := NewPump(2, 2, nil)
	p.SetRetryPolicy(RetryPolicy{MaxAttempts: 1, CallTimeout: 5 * time.Millisecond})
	block := make(chan struct{})
	id := p.RegisterCtx(context.Background(), "d", "k", func() ([]types.Tuple, error) {
		<-block
		return nil, nil
	})
	if _, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id: true}); err != nil {
		t.Fatal(err)
	}
	res, _ := p.Take(id)
	if res.Err == nil {
		t.Fatal("expected the call to time out")
	}
	// The attempt has answered, but the engine goroutine still holds its
	// token inside fn.
	p.Close()
	quiesced := make(chan struct{})
	go func() {
		p.Quiesce()
		close(quiesced)
	}()
	select {
	case <-quiesced:
		t.Fatal("Quiesce ignored the abandoned execution goroutine")
	case <-time.After(20 * time.Millisecond):
	}
	close(block)
	select {
	case <-quiesced:
	case <-time.After(2 * time.Second):
		t.Fatal("Quiesce did not observe the straggler finishing")
	}
}

// An idle pump quiesces immediately.
func TestQuiesceIdle(t *testing.T) {
	p := NewPump(1, 1, nil)
	p.Close()
	done := make(chan struct{})
	go func() {
		p.Quiesce()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Quiesce hung on an idle pump")
	}
}
