package async

import (
	"errors"
	"testing"

	"repro/internal/exec"
	"repro/internal/types"
)

// failingSource fails calls for selected argument values with the given
// error; others return one row carrying the argument's length.
func failingSource(failFor map[string]error) *scriptedSource {
	return &scriptedSource{name: "WC", dest: "d", numEcho: 1,
		rows: func(arg string) ([]types.Tuple, error) {
			if err, ok := failFor[arg]; ok {
				return nil, err
			}
			return []types.Tuple{{types.Int(int64(len(arg)))}}, nil
		}}
}

func runWithDegrade(t *testing.T, pol exec.DegradePolicy, failFor map[string]error, terms []string) ([]types.Tuple, exec.Stats, error) {
	t.Helper()
	pump := NewPump(4, 4, nil)
	rs, _ := buildCountPlan(terms, failingSource(failFor), pump)
	ctx := exec.NewContext()
	ctx.Degrade = pol
	rows, err := exec.Run(ctx, rs)
	return rows, ctx.Stats, err
}

func TestDegradeFailErrorsQuery(t *testing.T) {
	_, _, err := runWithDegrade(t, exec.DegradeFail,
		map[string]error{"bb": errors.New("engine down")}, []string{"a", "bb", "ccc"})
	if err == nil || !errors.Is(err, errors.Unwrap(err)) && err == nil {
		t.Fatalf("want error, got %v", err)
	}
	if err == nil {
		t.Fatal("fail policy should surface the call error")
	}
}

func TestDegradeDropCancelsFailedTuples(t *testing.T) {
	rows, stats, err := runWithDegrade(t, exec.DegradeDrop,
		map[string]error{"bb": errors.New("engine down")}, []string{"a", "bb", "ccc"})
	if err != nil {
		t.Fatalf("drop policy should absorb the failure: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 surviving rows, got %v", rows)
	}
	for _, r := range rows {
		if r[0].AsString() == "bb" {
			t.Fatalf("failed tuple leaked through drop policy: %v", r)
		}
	}
	if stats.DegradedCalls != 1 {
		t.Fatalf("DegradedCalls = %d, want 1", stats.DegradedCalls)
	}
}

func TestDegradePartialEmitsNullPatchedTuples(t *testing.T) {
	rows, stats, err := runWithDegrade(t, exec.DegradePartial,
		map[string]error{"bb": errors.New("engine down")}, []string{"a", "bb", "ccc"})
	if err != nil {
		t.Fatalf("partial policy should absorb the failure: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %v", rows)
	}
	found := false
	for _, r := range rows {
		if r[0].AsString() != "bb" {
			if r[2].IsNull() {
				t.Fatalf("healthy tuple NULL-patched: %v", r)
			}
			continue
		}
		found = true
		if !r[2].IsNull() {
			t.Fatalf("failed call's Count should be NULL, got %v", r[2])
		}
	}
	if !found {
		t.Fatal("partial policy dropped the degraded tuple")
	}
	if stats.DegradedCalls != 1 {
		t.Fatalf("DegradedCalls = %d, want 1", stats.DegradedCalls)
	}
}

// TestDegradeDropWithRetriesOnlyCountsTerminalFailures: a call that
// succeeds on retry is not degraded.
func TestDegradeDropWithRetriesOnlyCountsTerminalFailures(t *testing.T) {
	pump := NewPump(4, 4, nil)
	pump.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: 0})
	attempts := map[string]int{}
	src := &scriptedSource{name: "WC", dest: "d", numEcho: 1,
		rows: func(arg string) ([]types.Tuple, error) {
			attempts[arg]++
			if arg == "bb" && attempts[arg] < 3 {
				return nil, transientErr{"blip"}
			}
			return []types.Tuple{{types.Int(int64(len(arg)))}}, nil
		}}
	rs, _ := buildCountPlan([]string{"a", "bb"}, src, pump)
	ctx := exec.NewContext()
	ctx.Degrade = exec.DegradeDrop
	rows, err := exec.Run(ctx, rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("retried call should survive under drop policy, got %v", rows)
	}
	if ctx.Stats.DegradedCalls != 0 {
		t.Fatalf("DegradedCalls = %d, want 0 (retry succeeded)", ctx.Stats.DegradedCalls)
	}
}
