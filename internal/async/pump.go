// Package async implements asynchronous iteration (Section 4 of the
// WSQ/DSQ paper): the ReqPump global request manager, the AEVScan
// asynchronous virtual-table scan, the ReqSync synchronization operator,
// and the plan-rewriting algorithm (ReqSync Insertion, Percolation, and
// Consolidation) that converts a conventional sequential query plan into
// one that overlaps many external calls.
package async

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/types"
)

// ErrPumpClosed is returned (wrapped) by pump operations that find the
// pump shut down while calls are still pending. Waiters must treat it as
// a terminal error for their query, not a panic: a server closes the pump
// only on shutdown, and queries draining at that moment fail cleanly.
var ErrPumpClosed = errors.New("request pump closed")

// CallResult is a completed external call's outcome, parked in the pump's
// result table (the paper's ReqPumpHash) until the owning ReqSync consumes
// it.
type CallResult struct {
	Rows []types.Tuple
	Err  error
}

// Pump is the ReqPump of Section 4.1: "a module that issues asynchronous
// network requests and stores the responses to each request as they
// return". Concurrency is bounded globally and per destination ("we need
// only add one counter to monitor the total number of active requests, and
// one counter for each external destination"); calls that cannot start
// immediately wait on a FIFO queue.
//
// The paper implements ReqPump as an event-driven loop in the style of the
// Flash web server [PDZ99] because 1999-era threads were expensive. In Go
// the idiomatic equivalent of cheap asynchronous I/O is a bounded set of
// goroutines, which is what this implementation uses; the interface —
// register, poll, await — is the paper's.
//
// One pump is shared by every query of a DB, including the many concurrent
// queries of a wsqd server: the limits are global resource-control knobs,
// so competing queries divide the same call budget exactly as Section 4.1
// envisions for a multi-user system.
type Pump struct {
	mu   sync.Mutex
	cond *sync.Cond

	maxTotal int
	maxDest  int
	// destLimit overrides maxDest for specific destinations ("an
	// administrator can configure each counter as desired", Section 4.1).
	destLimit map[string]int

	nextID      types.CallID
	activeTotal int
	activeDest  map[string]int
	queue       []*pumpCall
	results     map[types.CallID]CallResult
	done        map[types.CallID]bool
	// discarded records ids whose owner abandoned them while the call was
	// still queued-or-running; run() drops their results instead of parking
	// them forever (a leak under a long-lived server).
	discarded map[types.CallID]bool
	cache     exec.ResultCache
	// inflight coalesces duplicate in-flight calls: all CallIDs registered
	// for a key while its first execution is still running share that one
	// execution. Only enabled together with the result cache ([HN96]) —
	// the Figure 7 hazard registers |R| identical calls back to back,
	// before the first completes, so a cache alone never helps.
	inflight map[string][]types.CallID
	// peer, when attached, extends the result cache across a wsqd tier
	// (internal/shard): a local miss consults the key's home shard before
	// calling the engine, and locally executed results are offered back to
	// the home shard. Read lock-free on the call path.
	peer atomic.Pointer[cachePeerBox]

	// policy governs retries, per-attempt deadlines, and hedging for every
	// call execution (SetRetryPolicy). Stored normalized.
	policy RetryPolicy
	// backoffRng drives retry-backoff jitter: a locked, seeded stream
	// (many workers back off at once) shared with the latency/fault
	// simulators' reproducibility contract.
	backoffRng *search.Rand

	// Stats
	registered   int64
	started      int64
	completed    int64
	cacheHits    int64
	peerHits     int64
	coalesced    int64
	canceled     int64
	retries      int64
	hedges       int64
	hedgeWins    int64
	callTimeouts int64
	callsFailed  int64
	maxActive    int
	closed       bool

	// metrics holds the registry handles attached by Observe; nil until
	// then. Read lock-free on the hot paths (several run outside p.mu).
	metrics atomic.Pointer[pumpMetrics]

	// profiles holds the engine-profile sink attached by SetProfiles
	// (profile.Store); nil until then. Read lock-free like metrics.
	profiles atomic.Pointer[profileBox]

	// traces holds per-call trace records for sampled queries, keyed by
	// CallID; nil until the first sampled registration. Guarded by p.mu;
	// the records themselves carry their own mutex (see CallTrace).
	traces map[types.CallID]*CallTrace

	// execWG tracks every goroutine that is (or may still be) inside an
	// engine call: the run() workers and the timeout/hedge executions
	// attemptOnce launches. Engine calls are uninterruptible, so these
	// goroutines cannot observe cancellation — instead they register
	// here, and Quiesce waits for the stragglers to let go.
	execWG sync.WaitGroup
}

type pumpCall struct {
	id       types.CallID
	ctx      context.Context
	dest     string
	key      string
	enqueued time.Time
	fn       func() ([]types.Tuple, error)
	// trace is the call's trace record when the registering query is
	// sampled; nil otherwise (every recording site is a nil check).
	trace *CallTrace
}

// DefaultMaxTotal bounds total in-flight calls when no limit is given.
const DefaultMaxTotal = 64

// DefaultMaxPerDest bounds per-destination in-flight calls when no limit
// is given.
const DefaultMaxPerDest = 32

// NewPump creates a pump with the given limits (zero selects defaults).
// cache, when non-nil, memoizes results by call key: cached calls complete
// instantly without consuming a network slot ([HN96]).
func NewPump(maxTotal, maxPerDest int, cache exec.ResultCache) *Pump {
	if maxTotal <= 0 {
		maxTotal = DefaultMaxTotal
	}
	if maxPerDest <= 0 {
		maxPerDest = DefaultMaxPerDest
	}
	p := &Pump{
		maxTotal:   maxTotal,
		maxDest:    maxPerDest,
		activeDest: make(map[string]int),
		results:    make(map[types.CallID]CallResult),
		done:       make(map[types.CallID]bool),
		discarded:  make(map[types.CallID]bool),
		cache:      cache,
		inflight:   make(map[string][]types.CallID),
		destLimit:  make(map[string]int),
		backoffRng: search.NewRand(1),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// CachePeer extends the per-process result cache across a tier of wsqd
// workers (implemented by shard.Peers). The pump consults it between the
// local cache and the engine: a call that misses locally first asks the
// key's home shard, and an engine result executed here is offered back to
// the home shard so one engine call can serve every node.
type CachePeer interface {
	// Fetch asks the key's home shard for cached rows. A false return
	// means "not available" for any reason (self-owned key, remote miss,
	// peer unreachable) — the caller falls through to the engine.
	Fetch(ctx context.Context, key string) ([]types.Tuple, bool)
	// Fill offers freshly computed rows to the key's home shard. It must
	// not block: implementations enqueue and deliver asynchronously.
	Fill(key string, rows []types.Tuple)
}

// cachePeerBox wraps the interface for atomic.Pointer storage.
type cachePeerBox struct{ peer CachePeer }

// SetCachePeer attaches (or, with nil, detaches) the tier-wide cache
// peer. Peering only engages when the pump also has a local result cache:
// without one there are no keys worth sharing and no coalescing.
func (p *Pump) SetCachePeer(cp CachePeer) {
	if cp == nil {
		p.peer.Store(nil)
		return
	}
	p.peer.Store(&cachePeerBox{peer: cp})
}

// cachePeer returns the attached peer, or nil.
func (p *Pump) cachePeer() CachePeer {
	if b := p.peer.Load(); b != nil {
		return b.peer
	}
	return nil
}

// SetRetryPolicy installs the fault-tolerance policy for subsequent call
// executions (retry with backoff, per-attempt deadline, hedging). The zero
// policy restores plain one-shot execution.
func (p *Pump) SetRetryPolicy(pol RetryPolicy) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.policy = pol.normalized()
}

// HasCache reports whether the pump memoizes results. Callers that can
// batch registrations (AEVScan.BindBatch) use this to decide whether
// duplicate keys may share one call: with a cache the pump coalesces
// duplicates anyway, without one each registration is a real call — the
// paper's Figure 7 redundant-call behavior, which must be preserved.
func (p *Pump) HasCache() bool { return p.cache != nil }

// RetryPolicy returns the installed policy (normalized).
func (p *Pump) RetryPolicy() RetryPolicy {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.policy
}

// RegisterCtx enqueues an external call and returns its identifier
// immediately; the call runs as soon as the concurrency limits allow. The
// caller later claims the outcome with Take (typically from a ReqSync).
// ctx is the call's cancellation scope: if it expires while the call is
// still queued, the call is dropped without consuming a slot and
// completes with ctx's error. An already-running call is not interrupted
// (the Engine interface is not context-aware), but its result is
// discarded if its owner has abandoned it. A nil ctx means no bound.
func (p *Pump) RegisterCtx(ctx context.Context, dest, key string, fn func() ([]types.Tuple, error)) types.CallID {
	if ctx == nil {
		ctx = context.Background()
	}
	var ct *CallTrace
	if tc := obs.SampledTrace(ctx); tc != nil {
		ct = newCallTrace(tc.TraceID, dest, key)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextID++
	id := p.nextID
	p.registered++
	if ct != nil {
		if p.traces == nil {
			p.traces = make(map[types.CallID]*CallTrace)
		}
		p.traces[id] = ct
	}
	if p.closed {
		// A closed pump never runs anything; complete immediately with the
		// sentinel so the waiter errors instead of hanging.
		ct.finish("closed")
		p.results[id] = CallResult{Err: fmt.Errorf("register: %w", ErrPumpClosed)}
		p.done[id] = true
		p.cond.Broadcast()
		return id
	}
	if err := ctx.Err(); err != nil {
		p.canceled++
		ct.finish("canceled")
		p.results[id] = CallResult{Err: err}
		p.done[id] = true
		p.cond.Broadcast()
		return id
	}
	if p.cache != nil {
		if rows, ok := p.cache.Get(key); ok {
			p.cacheHits++
			ct.finish("cache_hit")
			if ps := p.profileSink(); ps != nil {
				ps.EventObserved(dest, "cache_hit")
			}
			p.results[id] = CallResult{Rows: rows}
			p.done[id] = true
			p.cond.Broadcast()
			return id
		}
		// Coalesce with an identical in-flight call.
		if ids, ok := p.inflight[key]; ok {
			p.coalesced++
			ct.finish("coalesced")
			p.inflight[key] = append(ids, id)
			return id
		}
		p.inflight[key] = []types.CallID{id}
	}
	p.queue = append(p.queue, &pumpCall{id: id, ctx: ctx, dest: dest, key: key, enqueued: time.Now(), fn: fn, trace: ct})
	p.dispatchLocked()
	return id
}

// dispatchLocked starts every queued call the limits allow, dropping
// queued calls whose context has already expired. Callers hold p.mu.
func (p *Pump) dispatchLocked() {
	i := 0
	for i < len(p.queue) {
		c := p.queue[i]
		if err := c.ctx.Err(); err != nil {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			p.settleUnstartedLocked(c, err)
			continue
		}
		if p.activeTotal >= p.maxTotal {
			return
		}
		if p.activeDest[c.dest] >= p.limitFor(c.dest) {
			i++ // skip; a later call for another destination may fit
			continue
		}
		p.queue = append(p.queue[:i], p.queue[i+1:]...)
		if m := p.metrics.Load(); m != nil {
			m.slotWait.Observe(time.Since(c.enqueued).Seconds())
		}
		c.trace.setDispatched()
		p.grabTokenLocked(c.dest)
		p.started++
		p.execWG.Add(1)
		go p.run(c)
	}
}

// settleUnstartedLocked completes a call that never ran (canceled while
// queued, or orphaned by Close) with err, for its own id and any ids
// coalesced onto it. Callers hold p.mu.
func (p *Pump) settleUnstartedLocked(c *pumpCall, err error) {
	p.canceled++
	c.trace.finish("canceled")
	ids := []types.CallID{c.id}
	if co, ok := p.inflight[c.key]; ok {
		ids = co
		delete(p.inflight, c.key)
	}
	for _, id := range ids {
		if p.discarded[id] {
			delete(p.discarded, id)
			continue
		}
		p.results[id] = CallResult{Err: err}
		p.done[id] = true
	}
	p.cond.Broadcast()
}

// run executes one call — under the pump's retry policy — and parks its
// outcome for the registering CallID and every CallID coalesced onto it.
//
// Concurrency accounting: the worker enters run holding one execution
// token (acquired by dispatchLocked). Each physical execution of c.fn —
// first attempt, retry, or hedge — holds exactly one token for exactly as
// long as the engine call is actually outstanding; tokens are released by
// the execution goroutine itself when fn returns, so abandoned (timed-out
// or hedged-out) calls keep counting against the destination until the
// engine really lets go of them.
func (p *Pump) run(c *pumpCall) {
	defer p.execWG.Done()
	rows, err, fromPeer := p.fetchOrExecute(c)
	switch {
	case fromPeer:
		c.trace.finish("peer_hit")
	case err != nil:
		c.trace.finish("error")
	default:
		c.trace.finish("ok")
	}
	if err == nil && !fromPeer {
		// Locally executed result: offer it to the key's home shard so the
		// rest of the tier can hit it. Fill never blocks (it enqueues), and
		// it must run outside p.mu.
		if peer := p.cachePeer(); peer != nil {
			peer.Fill(c.key, rows)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if fromPeer {
		p.peerHits++
	}
	if err == nil && p.cache != nil {
		p.cache.Put(c.key, rows)
	}
	if err != nil && c.ctx.Err() == nil {
		// Failures of calls whose query already ended (deadline, LIMIT
		// reached, error elsewhere) are cancellations, not call failures:
		// retrying was rightly suppressed, and nobody will read the result.
		p.callsFailed++
		if m := p.metrics.Load(); m != nil {
			m.failures.With(c.dest).Inc()
		}
	}
	ids := []types.CallID{c.id}
	if coalesced, ok := p.inflight[c.key]; ok {
		ids = coalesced
		delete(p.inflight, c.key)
	}
	for _, id := range ids {
		if p.discarded[id] {
			delete(p.discarded, id)
			continue
		}
		p.results[id] = CallResult{Rows: rows, Err: err}
		p.done[id] = true
	}
	p.completed++
	p.cond.Broadcast()
}

// fetchOrExecute resolves one call: first via the tier cache peer (a
// bounded network hop to the key's home shard), then — on any peer miss —
// by executing the engine call under the retry policy. It is entered
// holding one execution token; every path releases it or hands it off
// (execute's accounting covers the engine path, and the peer-hit path
// releases directly since no engine execution ever starts).
func (p *Pump) fetchOrExecute(c *pumpCall) (rows []types.Tuple, err error, fromPeer bool) {
	if peer := p.cachePeer(); peer != nil && p.cache != nil {
		if rows, ok := peer.Fetch(c.ctx, c.key); ok {
			p.releaseToken(c.dest)
			if m := p.metrics.Load(); m != nil {
				m.peerHits.With(c.dest).Inc()
			}
			if ps := p.profileSink(); ps != nil {
				ps.EventObserved(c.dest, "peer_hit")
			}
			return rows, nil, true
		}
	}
	rows, err = p.execute(c)
	return rows, err, false
}

// execute runs the retry loop for one call. It is entered holding one
// execution token; every return path has released (or handed off to a
// still-running execution goroutine) all tokens it acquired.
func (p *Pump) execute(c *pumpCall) ([]types.Tuple, error) {
	pol := p.RetryPolicy()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			// Back off — slot already released by the failed attempt — then
			// re-acquire a token for the retry, competing under the same
			// destination limits as everything else.
			if d := p.jitteredBackoff(pol, attempt-1); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-c.ctx.Done():
					t.Stop()
					return nil, fmt.Errorf("%w (after %v)", c.ctx.Err(), lastErr)
				}
			}
			if err := p.acquireToken(c); err != nil {
				return nil, fmt.Errorf("%w (after %v)", err, lastErr)
			}
			p.count(&p.retries)
			if m := p.metrics.Load(); m != nil {
				m.retries.With(c.dest).Inc()
			}
			if ps := p.profileSink(); ps != nil {
				ps.EventObserved(c.dest, "retry")
			}
		}
		rows, err := p.attemptOnce(c, pol, attempt)
		if err == nil {
			return rows, nil
		}
		lastErr = err
		if !IsTransient(err) || attempt+1 >= pol.MaxAttempts || c.ctx.Err() != nil {
			if attempt > 0 {
				return nil, fmt.Errorf("after %d attempts: %w", attempt+1, err)
			}
			return nil, err
		}
	}
}

// attemptOnce performs one execution of the call, honoring the per-attempt
// deadline and hedging. It is entered holding one execution token, which is
// transferred to the execution goroutine (or consumed inline); by the time
// the engine call finishes — even after attemptOnce has returned — its
// token is released.
func (p *Pump) attemptOnce(c *pumpCall, pol RetryPolicy, attempt int) ([]types.Tuple, error) {
	kind := "attempt"
	if attempt > 0 {
		kind = "retry"
	}
	if pol.CallTimeout <= 0 && pol.HedgeAfter <= 0 {
		// Fast path: execute inline, as the pre-policy pump did.
		rows, err := p.timedCall(c, kind)
		p.releaseToken(c.dest)
		return rows, err
	}

	type outcome struct {
		rows   []types.Tuple
		err    error
		hedged bool
	}
	// Buffered for every execution this attempt can launch, so stragglers
	// finishing after we have returned never block.
	ch := make(chan outcome, 1+pol.MaxHedges)
	launch := func(hedged bool) {
		execKind := kind
		if hedged {
			execKind = "hedge"
		}
		// This goroutine must NOT observe cancellation: the Engine call is
		// not interruptible, and slot accounting requires the token to be
		// held until the engine truly lets go — even after a timeout or a
		// winning hedge has already answered the query. It is bounded by
		// c.fn() returning and the buffered outcome channel, and it
		// registers with execWG so Quiesce can await the stragglers.
		p.execWG.Add(1)
		go func() {
			defer p.execWG.Done()
			rows, err := p.timedCall(c, execKind)
			// Send before releasing the token: anyone who observes the freed
			// slot (the hedge branch below) is then guaranteed to also see
			// the finished outcome on ch, so it never hedges a done call.
			ch <- outcome{rows: rows, err: err, hedged: hedged}
			p.releaseToken(c.dest)
		}()
	}
	launch(false)

	var timeoutC <-chan time.Time
	if pol.CallTimeout > 0 {
		t := time.NewTimer(pol.CallTimeout)
		defer t.Stop()
		timeoutC = t.C
	}
	var hedgeC <-chan time.Time
	var hedgeTimer *time.Timer
	hedgesLeft := pol.MaxHedges
	if pol.HedgeAfter > 0 && hedgesLeft > 0 {
		hedgeTimer = time.NewTimer(pol.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}
	for {
		select {
		case o := <-ch:
			if o.hedged {
				p.count(&p.hedgeWins)
				if m := p.metrics.Load(); m != nil {
					m.hedgeWins.With(c.dest).Inc()
				}
			}
			return o.rows, o.err
		case <-hedgeC:
			// Launch a duplicate only if a slot is free right now — hedges
			// must never park, or they would starve other destinations'
			// queued calls.
			if p.tryAcquireToken(c.dest) {
				// The slot may be free because an execution just finished
				// (it sends its outcome before releasing the token, so the
				// acquire above makes that outcome visible here). Hedging a
				// completed call would waste an engine call; take the result
				// instead.
				select {
				case o := <-ch:
					p.releaseToken(c.dest)
					if o.hedged {
						p.count(&p.hedgeWins)
						if m := p.metrics.Load(); m != nil {
							m.hedgeWins.With(c.dest).Inc()
						}
					}
					return o.rows, o.err
				default:
				}
				p.count(&p.hedges)
				if m := p.metrics.Load(); m != nil {
					m.hedges.With(c.dest).Inc()
				}
				if ps := p.profileSink(); ps != nil {
					ps.EventObserved(c.dest, "hedge")
				}
				launch(true)
				hedgesLeft--
			}
			if hedgesLeft > 0 {
				hedgeTimer.Reset(pol.HedgeAfter)
			} else {
				hedgeC = nil
			}
		case <-timeoutC:
			p.count(&p.callTimeouts)
			if m := p.metrics.Load(); m != nil {
				m.timeouts.With(c.dest).Inc()
			}
			if ps := p.profileSink(); ps != nil {
				ps.EventObserved(c.dest, "timeout")
			}
			return nil, fmt.Errorf("%w after %v", ErrCallTimeout, pol.CallTimeout)
		case <-c.ctx.Done():
			return nil, c.ctx.Err()
		}
	}
}

// timedCall runs the engine call, recording its wall time in the
// per-destination latency histogram (with an exemplar linking the
// observation to the active trace, when sampled), the engine-profile
// sink, and the call's trace record. Every physical execution — first
// attempt, retry, or hedge — flows through here, so all three reflect
// what the engines actually did, not just what answered the query.
func (p *Pump) timedCall(c *pumpCall, kind string) ([]types.Tuple, error) {
	m := p.metrics.Load()
	ps := p.profileSink()
	if m == nil && ps == nil && c.trace == nil {
		return c.fn()
	}
	start := time.Now()
	rows, err := c.fn()
	elapsed := time.Since(start)
	if m != nil {
		m.callLatency.With(c.dest).ObserveExemplar(elapsed.Seconds(), c.trace.TraceID())
	}
	if ps != nil {
		ps.CallObserved(c.dest, elapsed, err != nil)
	}
	c.trace.addAttempt(kind, start, elapsed, err != nil)
	return rows, err
}

// jitteredBackoff computes the delay before retry n (0-based), adding the
// policy's seeded jitter.
func (p *Pump) jitteredBackoff(pol RetryPolicy, n int) time.Duration {
	d := pol.backoff(n)
	if d <= 0 || pol.JitterFrac <= 0 {
		return d
	}
	max := int64(float64(d) * pol.JitterFrac)
	if max <= 0 {
		return d
	}
	return d + time.Duration(p.backoffRng.Int63n(max+1))
}

// count atomically bumps one of the pump's stat counters.
func (p *Pump) count(field *int64) {
	p.mu.Lock()
	*field++
	p.mu.Unlock()
}

// releaseToken returns one execution token, waking queued calls and
// parked retries waiting for a slot.
func (p *Pump) releaseToken(dest string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.activeTotal--
	p.activeDest[dest]--
	if m := p.metrics.Load(); m != nil {
		m.destInflight.With(dest).Dec()
	}
	if !p.closed {
		p.dispatchLocked()
	}
	p.cond.Broadcast()
}

// tryAcquireToken claims an execution token if one is free right now.
func (p *Pump) tryAcquireToken(dest string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.activeTotal >= p.maxTotal || p.activeDest[dest] >= p.limitFor(dest) {
		return false
	}
	p.grabTokenLocked(dest)
	return true
}

// acquireToken blocks until an execution token is free (used by retries;
// the limits are the same ones dispatchLocked enforces). It fails when the
// call's context expires or the pump closes.
func (p *Pump) acquireToken(c *pumpCall) error {
	if c.ctx.Done() != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-c.ctx.Done():
				p.mu.Lock()
				p.cond.Broadcast()
				p.mu.Unlock()
			case <-stop:
			}
		}()
	}
	start := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if err := c.ctx.Err(); err != nil {
			return err
		}
		if p.closed {
			return fmt.Errorf("retry: %w", ErrPumpClosed)
		}
		if p.activeTotal < p.maxTotal && p.activeDest[c.dest] < p.limitFor(c.dest) {
			if m := p.metrics.Load(); m != nil {
				m.slotWait.Observe(time.Since(start).Seconds())
			}
			p.grabTokenLocked(c.dest)
			return nil
		}
		p.cond.Wait()
	}
}

// grabTokenLocked increments the in-flight gauges. Callers hold p.mu.
func (p *Pump) grabTokenLocked(dest string) {
	p.activeTotal++
	p.activeDest[dest]++
	if p.activeTotal > p.maxActive {
		p.maxActive = p.activeTotal
	}
	if m := p.metrics.Load(); m != nil {
		m.destInflight.With(dest).Inc()
	}
}

// limitFor returns the effective concurrency limit for a destination.
// Callers hold p.mu.
func (p *Pump) limitFor(dest string) int {
	if n, ok := p.destLimit[dest]; ok {
		return n
	}
	return p.maxDest
}

// SetDestLimit overrides the per-destination concurrency limit for one
// destination — the administrator knob of Section 4.1 ("we need only add
// ... one counter for each external destination. An administrator can
// configure each counter as desired."). A limit of zero or less parks the
// destination's calls until the limit is raised.
func (p *Pump) SetDestLimit(dest string, limit int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.destLimit[dest] = limit
	p.dispatchLocked()
}

// Take claims the result of a completed call, removing it from the result
// table. ok is false while the call is still pending.
func (p *Pump) Take(id types.CallID) (CallResult, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.done[id] {
		return CallResult{}, false
	}
	res := p.results[id]
	delete(p.results, id)
	delete(p.done, id)
	return res, true
}

// AwaitAnyCtx blocks until at least one of the given pending calls has
// completed and returns its id. It is the producer/consumer handshake of
// Section 4.1: each completing pump call signals waiting ReqSyncs. The
// wait is bounded by ctx (nil means no bound): it wakes and returns
// ctx's error when the context expires, so a query deadline propagates
// to a ReqSync blocked on slow external calls. A closed pump wakes
// waiters with ErrPumpClosed (wrapped) rather than hanging them.
func (p *Pump) AwaitAnyCtx(ctx context.Context, ids map[types.CallID]bool) (types.CallID, error) {
	if len(ids) == 0 {
		return 0, fmt.Errorf("AwaitAny with no pending calls")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() != nil {
		// Wake the condition variable when the context fires. Broadcasting
		// under p.mu guarantees the waiter is either before its ctx check
		// (sees the error) or parked in Wait (receives the broadcast) —
		// no missed-wakeup window.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				p.mu.Lock()
				p.cond.Broadcast()
				p.mu.Unlock()
			case <-stop:
			}
		}()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for id := range ids {
			if p.done[id] {
				return id, nil
			}
		}
		if p.closed {
			return 0, fmt.Errorf("%w while %d calls pending", ErrPumpClosed, len(ids))
		}
		p.cond.Wait()
	}
}

// Discard abandons interest in a call (e.g. the query errored elsewhere or
// its deadline expired): a completed result is dropped, a still-queued call
// is removed from the queue without ever consuming a slot, and a running
// call completes into the void. Coalesced siblings of a queued call are
// unaffected — the call still runs for them.
func (p *Pump) Discard(id types.CallID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done[id] {
		delete(p.results, id)
		delete(p.done, id)
		return
	}
	// Not done: the call is queued, running, or coalesced onto one of
	// those. Remove a queued call outright when this id is its only owner.
	for i, c := range p.queue {
		if c.id != id {
			continue
		}
		if co, ok := p.inflight[c.key]; ok && len(co) > 1 {
			break // other queries still want this call; let it run
		}
		p.queue = append(p.queue[:i], p.queue[i+1:]...)
		delete(p.inflight, c.key)
		p.canceled++
		return
	}
	// Running (or coalesced): mark so run()/settle drops this id's result.
	p.discarded[id] = true
	// Drop the id from any coalesce list so a future settle doesn't
	// resurrect it.
	for key, co := range p.inflight {
		for i, cid := range co {
			if cid == id {
				p.inflight[key] = append(co[:i], co[i+1:]...)
				break
			}
		}
	}
}

// Close shuts the pump down: queued calls that never started complete with
// ErrPumpClosed, waiters wake with the same sentinel, and in-flight calls
// finish into the result table as garbage. Close is idempotent and safe to
// call while queries are still draining — they observe clean errors rather
// than hanging or panicking.
func (p *Pump) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	queued := p.queue
	p.queue = nil
	for _, c := range queued {
		p.settleUnstartedLocked(c, fmt.Errorf("call never started: %w", ErrPumpClosed))
	}
	p.cond.Broadcast()
}

// Quiesce blocks until every execution goroutine — run() workers plus
// the timeout/hedge executions that outlived their attempt — has
// returned from its engine call and released its token. Engine calls
// are uninterruptible, so this is the only way to know the pump has
// truly let go of the network; call it after Close when tearing down a
// process (a long-lived server that merely drops the pump can skip it).
func (p *Pump) Quiesce() {
	p.execWG.Wait()
}

// Stats reports the pump's counters.
type Stats struct {
	// Registered counts every Register call.
	Registered int64
	// CacheHits counts registrations served instantly from the cache.
	CacheHits int64
	// PeerHits counts calls served by a peer shard's cache instead of the
	// engine (tier-wide cache peering).
	PeerHits int64
	// Coalesced counts registrations piggybacked on an identical
	// in-flight call.
	Coalesced int64
	// Started counts executions actually dispatched to the network.
	Started int64
	// Completed counts finished executions.
	Completed int64
	// Canceled counts calls dropped before starting (context expiry,
	// discard, or pump shutdown).
	Canceled int64
	// Retries counts re-executions launched after a transient failure.
	Retries int64
	// Hedges counts duplicate requests launched for slow attempts, and
	// HedgeWins those whose result arrived before the original's.
	Hedges    int64
	HedgeWins int64
	// CallTimeouts counts attempts abandoned at the per-call deadline.
	CallTimeouts int64
	// CallsFailed counts calls whose final outcome (after retries) was an
	// error.
	CallsFailed int64
	// MaxActive is the peak number of concurrently running calls.
	MaxActive int
}

// Stats returns a snapshot of the pump's counters.
func (p *Pump) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Registered:   p.registered,
		CacheHits:    p.cacheHits,
		PeerHits:     p.peerHits,
		Coalesced:    p.coalesced,
		Started:      p.started,
		Completed:    p.completed,
		Canceled:     p.canceled,
		Retries:      p.retries,
		Hedges:       p.hedges,
		HedgeWins:    p.hedgeWins,
		CallTimeouts: p.callTimeouts,
		CallsFailed:  p.callsFailed,
		MaxActive:    p.maxActive,
	}
}

// Active reports the instantaneous load: calls currently running against
// external destinations and calls parked in the admission queue. A fully
// drained pump reports (0, 0).
func (p *Pump) Active() (running, queued int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.activeTotal, len(p.queue)
}

// DestActive snapshots the per-destination in-flight gauges — the
// "one counter for each external destination" of Section 4.1, exposed for
// the server's /statusz page.
func (p *Pump) DestActive() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.activeDest))
	for d, n := range p.activeDest {
		if n > 0 {
			out[d] = n
		}
	}
	return out
}

// ResetStats zeroes the counters between experiment runs.
func (p *Pump) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.registered, p.cacheHits, p.peerHits, p.coalesced, p.started, p.completed, p.canceled, p.maxActive = 0, 0, 0, 0, 0, 0, 0, 0
	p.retries, p.hedges, p.hedgeWins, p.callTimeouts, p.callsFailed = 0, 0, 0, 0, 0
}
