// Package async implements asynchronous iteration (Section 4 of the
// WSQ/DSQ paper): the ReqPump global request manager, the AEVScan
// asynchronous virtual-table scan, the ReqSync synchronization operator,
// and the plan-rewriting algorithm (ReqSync Insertion, Percolation, and
// Consolidation) that converts a conventional sequential query plan into
// one that overlaps many external calls.
package async

import (
	"fmt"
	"sync"

	"repro/internal/exec"
	"repro/internal/types"
)

// CallResult is a completed external call's outcome, parked in the pump's
// result table (the paper's ReqPumpHash) until the owning ReqSync consumes
// it.
type CallResult struct {
	Rows []types.Tuple
	Err  error
}

// Pump is the ReqPump of Section 4.1: "a module that issues asynchronous
// network requests and stores the responses to each request as they
// return". Concurrency is bounded globally and per destination ("we need
// only add one counter to monitor the total number of active requests, and
// one counter for each external destination"); calls that cannot start
// immediately wait on a FIFO queue.
//
// The paper implements ReqPump as an event-driven loop in the style of the
// Flash web server [PDZ99] because 1999-era threads were expensive. In Go
// the idiomatic equivalent of cheap asynchronous I/O is a bounded set of
// goroutines, which is what this implementation uses; the interface —
// register, poll, await — is the paper's.
type Pump struct {
	mu   sync.Mutex
	cond *sync.Cond

	maxTotal int
	maxDest  int
	// destLimit overrides maxDest for specific destinations ("an
	// administrator can configure each counter as desired", Section 4.1).
	destLimit map[string]int

	nextID      types.CallID
	activeTotal int
	activeDest  map[string]int
	queue       []*pumpCall
	results     map[types.CallID]CallResult
	done        map[types.CallID]bool
	cache       exec.ResultCache
	// inflight coalesces duplicate in-flight calls: all CallIDs registered
	// for a key while its first execution is still running share that one
	// execution. Only enabled together with the result cache ([HN96]) —
	// the Figure 7 hazard registers |R| identical calls back to back,
	// before the first completes, so a cache alone never helps.
	inflight map[string][]types.CallID

	// Stats
	registered int64
	started    int64
	completed  int64
	cacheHits  int64
	coalesced  int64
	maxActive  int
	closed     bool
}

type pumpCall struct {
	id   types.CallID
	dest string
	key  string
	fn   func() ([]types.Tuple, error)
}

// DefaultMaxTotal bounds total in-flight calls when no limit is given.
const DefaultMaxTotal = 64

// DefaultMaxPerDest bounds per-destination in-flight calls when no limit
// is given.
const DefaultMaxPerDest = 32

// NewPump creates a pump with the given limits (zero selects defaults).
// cache, when non-nil, memoizes results by call key: cached calls complete
// instantly without consuming a network slot ([HN96]).
func NewPump(maxTotal, maxPerDest int, cache exec.ResultCache) *Pump {
	if maxTotal <= 0 {
		maxTotal = DefaultMaxTotal
	}
	if maxPerDest <= 0 {
		maxPerDest = DefaultMaxPerDest
	}
	p := &Pump{
		maxTotal:   maxTotal,
		maxDest:    maxPerDest,
		activeDest: make(map[string]int),
		results:    make(map[types.CallID]CallResult),
		done:       make(map[types.CallID]bool),
		cache:      cache,
		inflight:   make(map[string][]types.CallID),
		destLimit:  make(map[string]int),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Register enqueues an external call and returns its identifier
// immediately; the call runs as soon as the concurrency limits allow. The
// caller later claims the outcome with Take (typically from a ReqSync).
func (p *Pump) Register(dest, key string, fn func() ([]types.Tuple, error)) types.CallID {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextID++
	id := p.nextID
	p.registered++
	if p.cache != nil {
		if rows, ok := p.cache.Get(key); ok {
			p.cacheHits++
			p.results[id] = CallResult{Rows: rows}
			p.done[id] = true
			p.cond.Broadcast()
			return id
		}
		// Coalesce with an identical in-flight call.
		if ids, ok := p.inflight[key]; ok {
			p.coalesced++
			p.inflight[key] = append(ids, id)
			return id
		}
		p.inflight[key] = []types.CallID{id}
	}
	p.queue = append(p.queue, &pumpCall{id: id, dest: dest, key: key, fn: fn})
	p.dispatchLocked()
	return id
}

// dispatchLocked starts every queued call the limits allow. Callers hold
// p.mu.
func (p *Pump) dispatchLocked() {
	i := 0
	for i < len(p.queue) {
		if p.activeTotal >= p.maxTotal {
			return
		}
		c := p.queue[i]
		if p.activeDest[c.dest] >= p.limitFor(c.dest) {
			i++ // skip; a later call for another destination may fit
			continue
		}
		p.queue = append(p.queue[:i], p.queue[i+1:]...)
		p.activeTotal++
		p.activeDest[c.dest]++
		p.started++
		if p.activeTotal > p.maxActive {
			p.maxActive = p.activeTotal
		}
		go p.run(c)
	}
}

// run executes one call and parks its result — for the registering CallID
// and for every CallID coalesced onto it while it ran.
func (p *Pump) run(c *pumpCall) {
	rows, err := c.fn()
	p.mu.Lock()
	defer p.mu.Unlock()
	if err == nil && p.cache != nil {
		p.cache.Put(c.key, rows)
	}
	ids := []types.CallID{c.id}
	if coalesced, ok := p.inflight[c.key]; ok {
		ids = coalesced
		delete(p.inflight, c.key)
	}
	for _, id := range ids {
		p.results[id] = CallResult{Rows: rows, Err: err}
		p.done[id] = true
	}
	p.completed++
	p.activeTotal--
	p.activeDest[c.dest]--
	p.dispatchLocked()
	p.cond.Broadcast()
}

// limitFor returns the effective concurrency limit for a destination.
// Callers hold p.mu.
func (p *Pump) limitFor(dest string) int {
	if n, ok := p.destLimit[dest]; ok {
		return n
	}
	return p.maxDest
}

// SetDestLimit overrides the per-destination concurrency limit for one
// destination — the administrator knob of Section 4.1 ("we need only add
// ... one counter for each external destination. An administrator can
// configure each counter as desired."). A limit of zero or less parks the
// destination's calls until the limit is raised.
func (p *Pump) SetDestLimit(dest string, limit int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.destLimit[dest] = limit
	p.dispatchLocked()
}

// Take claims the result of a completed call, removing it from the result
// table. ok is false while the call is still pending.
func (p *Pump) Take(id types.CallID) (CallResult, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.done[id] {
		return CallResult{}, false
	}
	res := p.results[id]
	delete(p.results, id)
	delete(p.done, id)
	return res, true
}

// AwaitAny blocks until at least one of the given pending calls has
// completed and returns its id. It is the producer/consumer handshake of
// Section 4.1: each completing pump call signals waiting ReqSyncs.
func (p *Pump) AwaitAny(ids map[types.CallID]bool) (types.CallID, error) {
	if len(ids) == 0 {
		return 0, fmt.Errorf("AwaitAny with no pending calls")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		for id := range ids {
			if p.done[id] {
				return id, nil
			}
		}
		if p.closed {
			return 0, fmt.Errorf("request pump closed while %d calls pending", len(ids))
		}
		p.cond.Wait()
	}
}

// Discard abandons interest in a call (e.g. the query errored elsewhere);
// a completed result is dropped, a pending call completes into the void
// and is dropped on the next Discard/Take sweep.
func (p *Pump) Discard(id types.CallID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.results, id)
	delete(p.done, id)
}

// Close wakes all waiters with an error; it does not cancel in-flight
// calls (they complete into the result table and are garbage).
func (p *Pump) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.cond.Broadcast()
}

// Stats reports the pump's counters.
type Stats struct {
	// Registered counts every Register call.
	Registered int64
	// CacheHits counts registrations served instantly from the cache.
	CacheHits int64
	// Coalesced counts registrations piggybacked on an identical
	// in-flight call.
	Coalesced int64
	// Started counts executions actually dispatched to the network.
	Started int64
	// Completed counts finished executions.
	Completed int64
	// MaxActive is the peak number of concurrently running calls.
	MaxActive int
}

// Stats returns a snapshot of the pump's counters.
func (p *Pump) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Registered: p.registered,
		CacheHits:  p.cacheHits,
		Coalesced:  p.coalesced,
		Started:    p.started,
		Completed:  p.completed,
		MaxActive:  p.maxActive,
	}
}

// ResetStats zeroes the counters between experiment runs.
func (p *Pump) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.registered, p.cacheHits, p.coalesced, p.started, p.completed, p.maxActive = 0, 0, 0, 0, 0, 0
}
