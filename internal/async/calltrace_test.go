package async

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/types"
)

func tracedCtx() (context.Context, *obs.TraceCtx) {
	tc := obs.NewTraceCtx()
	return obs.WithTrace(context.Background(), tc), tc
}

// recordingSink captures ProfileSink callbacks for assertions.
type recordingSink struct {
	mu     sync.Mutex
	calls  []string // "dest/failed"
	events []string // "dest/kind"
}

func (r *recordingSink) CallObserved(dest string, d time.Duration, failed bool) {
	r.mu.Lock()
	r.calls = append(r.calls, fmt.Sprintf("%s/%v", dest, failed))
	r.mu.Unlock()
}

func (r *recordingSink) EventObserved(dest, kind string) {
	r.mu.Lock()
	r.events = append(r.events, dest+"/"+kind)
	r.mu.Unlock()
}

func (r *recordingSink) snapshot() ([]string, []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string{}, r.calls...), append([]string{}, r.events...)
}

// TestCallTraceLifecycle: a sampled registration produces a trace record
// that converts to a pump.call span with one attempt child and the queue
// wait, and TakeCallTraces hands it out exactly once.
func TestCallTraceLifecycle(t *testing.T) {
	p := NewPump(4, 4, nil)
	defer p.Close()
	ctx, tc := tracedCtx()

	id := p.RegisterCtx(ctx, "altavista", "k1", func() ([]types.Tuple, error) {
		time.Sleep(2 * time.Millisecond)
		return []types.Tuple{{types.Int(1)}}, nil
	})
	if _, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id: true}); err != nil {
		t.Fatal(err)
	}
	p.Take(id)

	cts := p.TakeCallTraces([]types.CallID{id})
	if len(cts) != 1 {
		t.Fatalf("TakeCallTraces returned %d records, want 1", len(cts))
	}
	if cts[0].TraceID() != tc.TraceID {
		t.Errorf("record trace id = %q, want %q", cts[0].TraceID(), tc.TraceID)
	}
	sp := cts[0].Span()
	if sp.Op != "pump.call" || sp.Detail != "altavista" {
		t.Errorf("span = %s %q, want pump.call altavista (ok outcome omitted)", sp.Op, sp.Detail)
	}
	if len(sp.Children) != 1 || sp.Children[0].Op != "pump.attempt" {
		t.Fatalf("span children = %+v, want one pump.attempt", sp.Children)
	}
	if sp.Children[0].Dur < 2*time.Millisecond {
		t.Errorf("attempt dur = %v, want >= 2ms", sp.Children[0].Dur)
	}
	if _, ok := sp.Extra["queue_us"]; !ok {
		t.Errorf("span extras missing queue_us: %+v", sp.Extra)
	}

	// Exactly-once: a dependent join re-closing its subtree must not
	// attach the same call twice.
	if again := p.TakeCallTraces([]types.CallID{id}); len(again) != 0 {
		t.Errorf("second TakeCallTraces returned %d records", len(again))
	}
}

// TestCallTraceOutcomes: cache hits, errors, and coalesced calls carry
// their outcome in the span detail.
func TestCallTraceOutcomes(t *testing.T) {
	cache := &countingCache{m: map[string][]types.Tuple{
		"warm": {{types.Int(7)}},
	}}
	p := NewPump(4, 4, cache)
	defer p.Close()
	ctx, _ := tracedCtx()

	hit := p.RegisterCtx(ctx, "altavista", "warm", nil)
	p.Take(hit)
	cts := p.TakeCallTraces([]types.CallID{hit})
	if len(cts) != 1 || cts[0].Span().Detail != "altavista cache_hit" {
		t.Fatalf("cache hit trace: %+v", cts)
	}

	boom := p.RegisterCtx(ctx, "lycos", "kaboom", func() ([]types.Tuple, error) {
		return nil, fmt.Errorf("engine down")
	})
	if _, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{boom: true}); err != nil {
		t.Fatal(err)
	}
	p.Take(boom)
	cts = p.TakeCallTraces([]types.CallID{boom})
	if len(cts) != 1 {
		t.Fatal("no trace for failed call")
	}
	sp := cts[0].Span()
	if sp.Detail != "lycos error" {
		t.Errorf("failed call detail = %q, want \"lycos error\"", sp.Detail)
	}
	if len(sp.Children) == 0 || sp.Children[0].Detail != "failed" {
		t.Errorf("failed attempt not marked: %+v", sp.Children)
	}
}

// TestCallTraceUntracedOff: without a sampled trace context the pump
// records nothing — the tracing-off hot path stays bare.
func TestCallTraceUntracedOff(t *testing.T) {
	p := NewPump(4, 4, nil)
	defer p.Close()
	id := p.RegisterCtx(context.Background(), "d", "k", func() ([]types.Tuple, error) { return nil, nil })
	if _, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id: true}); err != nil {
		t.Fatal(err)
	}
	p.Take(id)
	if cts := p.TakeCallTraces([]types.CallID{id}); len(cts) != 0 {
		t.Errorf("untraced call produced %d trace records", len(cts))
	}

	// An unsampled trace context is equally invisible.
	tc := obs.NewTraceCtx()
	tc.Sampled = false
	id2 := p.RegisterCtx(obs.WithTrace(context.Background(), tc), "d", "k2", func() ([]types.Tuple, error) { return nil, nil })
	if _, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id2: true}); err != nil {
		t.Fatal(err)
	}
	p.Take(id2)
	if cts := p.TakeCallTraces([]types.CallID{id2}); len(cts) != 0 {
		t.Errorf("unsampled call produced %d trace records", len(cts))
	}
}

// TestPumpProfileSink: the pump feeds the profile store every call's
// latency/failure plus cache-hit events, independent of tracing.
func TestPumpProfileSink(t *testing.T) {
	cache := &countingCache{m: map[string][]types.Tuple{"warm": {{types.Int(7)}}}}
	p := NewPump(4, 4, cache)
	defer p.Close()
	sink := &recordingSink{}
	p.SetProfiles(sink)

	ok := p.RegisterCtx(context.Background(), "altavista", "k1", func() ([]types.Tuple, error) {
		return []types.Tuple{{types.Int(1)}}, nil
	})
	bad := p.RegisterCtx(context.Background(), "altavista", "k2", func() ([]types.Tuple, error) {
		return nil, fmt.Errorf("down")
	})
	for _, id := range []types.CallID{ok, bad} {
		if _, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id: true}); err != nil {
			t.Fatal(err)
		}
		p.Take(id)
	}
	p.Take(p.RegisterCtx(context.Background(), "altavista", "warm", nil)) // cache hit

	calls, events := sink.snapshot()
	if len(calls) != 2 {
		t.Fatalf("CallObserved fired %d times, want 2: %v", len(calls), calls)
	}
	failures := 0
	for _, c := range calls {
		if c == "altavista/true" {
			failures++
		}
	}
	if failures != 1 {
		t.Errorf("failed-call observations = %d, want 1: %v", failures, calls)
	}
	wantEvent := "altavista/cache_hit"
	found := false
	for _, e := range events {
		if e == wantEvent {
			found = true
		}
	}
	if !found {
		t.Errorf("events %v missing %q", events, wantEvent)
	}

	// Detached sink: no further observations, no crash.
	p.SetProfiles(nil)
	id := p.RegisterCtx(context.Background(), "altavista", "k3", func() ([]types.Tuple, error) { return nil, nil })
	if _, err := p.AwaitAnyCtx(context.Background(), map[types.CallID]bool{id: true}); err != nil {
		t.Fatal(err)
	}
	p.Take(id)
	if calls, _ := sink.snapshot(); len(calls) != 2 {
		t.Errorf("detached sink still observed calls: %v", calls)
	}
}
