package async

import (
	"repro/internal/obs"
)

// pumpMetrics bundles the pump's registry handles. It is attached by
// Observe and read lock-free (atomic.Pointer) on the hot paths, which
// check for nil so an unobserved pump pays one predicted branch.
type pumpMetrics struct {
	// slotWait is the time a call spends waiting for an execution token:
	// queue wait before first dispatch, and slot re-acquisition before a
	// retry. This is the admission-control delay of Section 4.1's
	// counters — high values mean the limits, not the engines, bound
	// throughput.
	slotWait *obs.Histogram
	// callLatency is the wall time of each physical engine execution
	// (first attempts, retries, and hedges alike), by destination.
	callLatency *obs.HistogramVec
	// destInflight mirrors the per-destination in-flight counters.
	destInflight *obs.GaugeVec
	// peerHits counts calls answered by a peer shard's cache instead of
	// the engine, by destination (tier-wide cache peering).
	peerHits  *obs.CounterVec
	retries   *obs.CounterVec
	hedges    *obs.CounterVec
	hedgeWins *obs.CounterVec
	timeouts  *obs.CounterVec
	failures  *obs.CounterVec
}

// Observe implements obs.Observable: it binds the pump's metric families
// to reg and installs live gauges over its instantaneous state. Observe
// is idempotent (the registry returns existing families by name) and may
// be called at any point in the pump's life; events before the first
// Observe are simply not recorded in histograms, though the cumulative
// counters — sampled from the pump's own Stats fields at scrape time —
// are complete regardless.
func (p *Pump) Observe(reg *obs.Registry) {
	m := &pumpMetrics{
		slotWait: reg.Histogram("wsq_pump_slot_wait_seconds",
			"Time calls wait for an execution slot (admission queue and retry re-acquisition).", nil),
		callLatency: reg.HistogramVec("wsq_pump_call_latency_seconds",
			"Wall time of physical engine executions, by destination.", nil, "dest"),
		destInflight: reg.GaugeVec("wsq_pump_dest_inflight",
			"Engine calls currently executing, by destination.", "dest"),
		peerHits: reg.CounterVec("wsq_pump_peer_hits_total",
			"Calls served by a peer shard's cache instead of the engine, by destination.", "dest"),
		retries: reg.CounterVec("wsq_pump_retries_total",
			"Call re-executions after a transient failure, by destination.", "dest"),
		hedges: reg.CounterVec("wsq_pump_hedges_total",
			"Duplicate (hedged) executions launched for slow attempts, by destination.", "dest"),
		hedgeWins: reg.CounterVec("wsq_pump_hedge_wins_total",
			"Hedged executions that answered before the original, by destination.", "dest"),
		timeouts: reg.CounterVec("wsq_pump_call_timeouts_total",
			"Attempts abandoned at the per-call deadline, by destination.", "dest"),
		failures: reg.CounterVec("wsq_pump_calls_failed_total",
			"Calls whose final outcome after retries was an error, by destination.", "dest"),
	}
	stat := func(f func(Stats) int64) func() float64 {
		return func() float64 { return float64(f(p.Stats())) }
	}
	reg.CounterFunc("wsq_pump_calls_registered_total",
		"External calls registered with the pump.", stat(func(s Stats) int64 { return s.Registered }))
	reg.CounterFunc("wsq_pump_calls_started_total",
		"Call executions dispatched to the network.", stat(func(s Stats) int64 { return s.Started }))
	reg.CounterFunc("wsq_pump_calls_completed_total",
		"Call executions finished.", stat(func(s Stats) int64 { return s.Completed }))
	reg.CounterFunc("wsq_pump_cache_hits_total",
		"Registrations served instantly from the result cache.", stat(func(s Stats) int64 { return s.CacheHits }))
	reg.CounterFunc("wsq_pump_coalesced_total",
		"Registrations piggybacked on an identical in-flight call.", stat(func(s Stats) int64 { return s.Coalesced }))
	reg.CounterFunc("wsq_pump_calls_canceled_total",
		"Calls dropped before starting (context expiry, discard, shutdown).", stat(func(s Stats) int64 { return s.Canceled }))
	reg.GaugeFunc("wsq_pump_active_calls",
		"Engine calls currently executing (all destinations).", func() float64 {
			running, _ := p.Active()
			return float64(running)
		})
	reg.GaugeFunc("wsq_pump_queue_depth",
		"Calls parked in the admission queue.", func() float64 {
			_, queued := p.Active()
			return float64(queued)
		})
	reg.GaugeFunc("wsq_pump_max_active",
		"Peak concurrently executing calls since the last stats reset.", func() float64 {
			return float64(p.Stats().MaxActive)
		})
	p.metrics.Store(m)
}
