package expr

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/types"
)

// fuzzValue decodes one fuzzed (kind selector, int payload, string payload)
// triple into a types.Value, covering every kind including NULL.
func fuzzValue(kind byte, i int64, s string) types.Value {
	switch kind % 4 {
	case 0:
		return types.Null()
	case 1:
		return types.Int(i)
	case 2:
		return types.Float(math.Float64frombits(uint64(i)))
	default:
		return types.Str(s)
	}
}

// sameValue is value equality with NaN equal to itself (bit comparison),
// since determinism is about identical outputs, not IEEE comparison rules.
func sameValue(a, b types.Value) bool {
	if a.Kind == types.KindFloat && b.Kind == types.KindFloat {
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	}
	return reflect.DeepEqual(a, b)
}

// FuzzEval asserts the evaluator's crash-freedom and determinism contract:
// any comparison/arithmetic/logic tree over any pair of values (mixed
// kinds, NULLs, NaNs, division by zero) evaluates without panicking, and
// evaluating twice yields the same outcome.
func FuzzEval(f *testing.F) {
	f.Add(byte(1), int64(7), "x", byte(1), int64(0), "y", byte(0))
	f.Add(byte(2), int64(-1), "", byte(2), int64(1)<<62, "z", byte(3))
	f.Add(byte(3), int64(0), "abc", byte(3), int64(0), "abd", byte(5))
	f.Add(byte(0), int64(0), "", byte(1), int64(42), "", byte(9))
	f.Add(byte(2), int64(0x7ff8000000000001), "nan", byte(2), int64(0), "inf", byte(7)) // NaN vs 0.0
	f.Add(byte(1), int64(math.MinInt64), "", byte(1), int64(-1), "", byte(11))          // overflow-prone division
	f.Fuzz(func(t *testing.T, lk byte, li int64, ls string, rk byte, ri int64, rs string, op byte) {
		l, r := NewLiteral(fuzzValue(lk, li, ls)), NewLiteral(fuzzValue(rk, ri, rs))
		var e Expr
		switch op % 13 {
		case 0, 1, 2, 3, 4, 5:
			e = NewCmp(CmpOp(op%13), l, r)
		case 6, 7, 8, 9:
			e = NewArith(ArithOp(op%13-6), l, r)
		case 10:
			e = NewAnd(NewCmp(EQ, l, r), NewCmp(NE, l, r))
		case 11:
			e = NewOr(NewCmp(LT, l, r), NewCmp(GE, l, r))
		default:
			e = NewNot(NewCmp(LE, l, r))
		}
		env := &Env{}
		v1, err1 := e.Eval(env, nil)
		v2, err2 := e.Eval(env, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: nondeterministic error: %v vs %v", e, err1, err2)
		}
		if err1 == nil && !sameValue(v1, v2) {
			t.Fatalf("%s: nondeterministic value: %v vs %v", e, v1, v2)
		}
	})
}
