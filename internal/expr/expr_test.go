package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/types"
)

func testSchema() (*schema.Schema, schema.Column, schema.Column, schema.Column) {
	name := schema.Column{ID: schema.NewAttrID(), Table: "S", Name: "Name", Type: schema.TString}
	pop := schema.Column{ID: schema.NewAttrID(), Table: "S", Name: "Pop", Type: schema.TInt}
	cnt := schema.Column{ID: schema.NewAttrID(), Table: "W", Name: "Count", Type: schema.TInt}
	return schema.New(name, pop, cnt), name, pop, cnt
}

func mustEval(t *testing.T, e Expr, s *schema.Schema, row types.Tuple) types.Value {
	t.Helper()
	if err := e.Bind(s); err != nil {
		t.Fatalf("bind %s: %v", e, err)
	}
	v, err := e.Eval(&Env{}, row)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func TestColRefEval(t *testing.T) {
	s, name, pop, _ := testSchema()
	row := types.Tuple{types.Str("Utah"), types.Int(2100000), types.Int(280)}
	if got := mustEval(t, NewColRef(name), s, row); got.S != "Utah" {
		t.Errorf("got %v", got)
	}
	if got := mustEval(t, NewColRef(pop), s, row); got.I != 2100000 {
		t.Errorf("got %v", got)
	}
}

func TestColRefOuterBinding(t *testing.T) {
	_, name, _, _ := testSchema()
	empty := schema.New()
	ref := NewColRef(name)
	if err := ref.Bind(empty); err != nil {
		t.Fatal(err)
	}
	env := &Env{}
	if _, err := ref.Eval(env, nil); err == nil {
		t.Fatal("unbound outer reference should error")
	}
	env.PushFrame(map[schema.AttrID]types.Value{name.ID: types.Str("Ohio")})
	v, err := ref.Eval(env, nil)
	if err != nil || v.S != "Ohio" {
		t.Fatalf("outer eval: %v %v", v, err)
	}
	env.PopFrame()
	if _, err := ref.Eval(env, nil); err == nil {
		t.Fatal("popped frame should no longer resolve")
	}
}

func TestEnvFrameNesting(t *testing.T) {
	id := schema.NewAttrID()
	env := &Env{}
	env.PushFrame(map[schema.AttrID]types.Value{id: types.Int(1)})
	env.PushFrame(map[schema.AttrID]types.Value{id: types.Int(2)})
	if v, _ := env.Lookup(id); v.I != 2 {
		t.Error("innermost frame should win")
	}
	env.PopFrame()
	if v, _ := env.Lookup(id); v.I != 1 {
		t.Error("outer frame should be visible after pop")
	}
	env.PopFrame()
	env.PopFrame() // extra pop must be safe
	if _, ok := env.Lookup(id); ok {
		t.Error("empty env should not resolve")
	}
}

func TestComparisons(t *testing.T) {
	s, _, pop, cnt := testSchema()
	row := types.Tuple{types.Str("Utah"), types.Int(100), types.Int(200)}
	cases := []struct {
		op   CmpOp
		want bool
	}{
		{EQ, false}, {NE, true}, {LT, true}, {LE, true}, {GT, false}, {GE, false},
	}
	for _, c := range cases {
		e := NewCmp(c.op, NewColRef(pop), NewColRef(cnt))
		if got := mustEval(t, e, s, row); got.Truthy() != c.want {
			t.Errorf("%s: got %v, want %v", e, got, c.want)
		}
	}
	// String comparison.
	eq := NewCmp(EQ, NewLiteral(types.Str("a")), NewLiteral(types.Str("a")))
	if !mustEval(t, eq, s, row).Truthy() {
		t.Error("string equality")
	}
	// NULL propagation: comparisons with NULL are not truthy.
	null := NewCmp(EQ, NewLiteral(types.Null()), NewLiteral(types.Int(1)))
	if v := mustEval(t, null, s, row); !v.IsNull() {
		t.Errorf("NULL comparison should yield NULL, got %v", v)
	}
}

func TestComparisonOverPlaceholderErrors(t *testing.T) {
	s, _, pop, _ := testSchema()
	row := types.Tuple{types.Str("x"), types.Placeholder(9, 0), types.Int(1)}
	e := NewCmp(GT, NewColRef(pop), NewLiteral(types.Int(0)))
	if err := e.Bind(s); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval(&Env{}, row); err == nil {
		t.Fatal("comparing a placeholder must error (plan rewrite invariant)")
	}
}

func TestIsNull(t *testing.T) {
	s, name, pop, _ := testSchema()
	row := types.Tuple{types.Null(), types.Int(5), types.Int(1)}
	if v := mustEval(t, NewIsNull(NewColRef(name), false), s, row); !v.Truthy() {
		t.Error("NULL IS NULL should hold")
	}
	if v := mustEval(t, NewIsNull(NewColRef(name), true), s, row); v.Truthy() {
		t.Error("NULL IS NOT NULL should not hold")
	}
	if v := mustEval(t, NewIsNull(NewColRef(pop), false), s, row); v.Truthy() {
		t.Error("5 IS NULL should not hold")
	}
	if v := mustEval(t, NewIsNull(NewColRef(pop), true), s, row); !v.Truthy() {
		t.Error("5 IS NOT NULL should hold")
	}
}

func TestIsNullOverPlaceholderErrors(t *testing.T) {
	s, _, pop, _ := testSchema()
	row := types.Tuple{types.Str("x"), types.Placeholder(9, 0), types.Int(1)}
	e := NewIsNull(NewColRef(pop), false)
	if err := e.Bind(s); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval(&Env{}, row); err == nil {
		t.Fatal("IS NULL over a placeholder must error (plan rewrite invariant)")
	}
}

func TestLogicShortCircuit(t *testing.T) {
	s, _, _, _ := testSchema()
	tr := NewLiteral(types.Bool(true))
	fa := NewLiteral(types.Bool(false))
	// A poisoned expr errors if evaluated; short-circuit must avoid it.
	poison := NewCmp(EQ, NewColRef(schema.Column{ID: schema.NewAttrID(), Name: "missing"}), NewLiteral(types.Int(1)))
	and := NewAnd(fa, poison)
	if got := mustEval(t, and, s, nil); got.Truthy() {
		t.Error("false AND x should be false without evaluating x")
	}
	or := NewOr(tr, poison)
	if got := mustEval(t, or, s, nil); !got.Truthy() {
		t.Error("true OR x should be true without evaluating x")
	}
	not := NewNot(fa)
	if got := mustEval(t, not, s, nil); !got.Truthy() {
		t.Error("NOT false")
	}
}

func TestNewAndFlattening(t *testing.T) {
	a := NewLiteral(types.Bool(true))
	b := NewLiteral(types.Bool(true))
	c := NewLiteral(types.Bool(false))
	if NewAnd() != nil {
		t.Error("empty AND should be nil")
	}
	if NewAnd(a) != a {
		t.Error("single AND should pass through")
	}
	nested := NewAnd(NewAnd(a, b), c)
	l, ok := nested.(*Logic)
	if !ok || len(l.Args) != 3 {
		t.Errorf("nested conjunctions should flatten: %v", nested)
	}
	if NewAnd(nil, a, nil) != a {
		t.Error("nil args should be dropped")
	}
}

func TestArithmetic(t *testing.T) {
	s, _, _, _ := testSchema()
	cases := []struct {
		op   ArithOp
		l, r types.Value
		want types.Value
	}{
		{Add, types.Int(2), types.Int(3), types.Int(5)},
		{Sub, types.Int(2), types.Int(3), types.Int(-1)},
		{Mul, types.Int(4), types.Int(3), types.Int(12)},
		{Div, types.Int(7), types.Int(2), types.Float(3.5)}, // int division is float (Query 2)
		{Add, types.Float(1.5), types.Int(1), types.Float(2.5)},
		{Div, types.Int(1), types.Int(0), types.Null()}, // divide by zero -> NULL
	}
	for _, c := range cases {
		e := NewArith(c.op, NewLiteral(c.l), NewLiteral(c.r))
		got := mustEval(t, e, s, nil)
		if !got.Equal(c.want) || got.Kind != c.want.Kind {
			t.Errorf("%v %v %v = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
	// NULL propagation.
	e := NewArith(Add, NewLiteral(types.Null()), NewLiteral(types.Int(1)))
	if got := mustEval(t, e, s, nil); !got.IsNull() {
		t.Errorf("NULL + 1 should be NULL, got %v", got)
	}
}

func TestCollectAttrsAndReferences(t *testing.T) {
	s, name, pop, cnt := testSchema()
	_ = s
	e := NewAnd(
		NewCmp(EQ, NewColRef(name), NewLiteral(types.Str("x"))),
		NewCmp(GT, NewArith(Div, NewColRef(cnt), NewColRef(pop)), NewLiteral(types.Int(0))),
	)
	attrs := Attrs(e)
	if len(attrs) != 3 || !attrs[name.ID] || !attrs[pop.ID] || !attrs[cnt.ID] {
		t.Errorf("attrs = %v", attrs)
	}
	if !References(e, map[schema.AttrID]bool{cnt.ID: true}) {
		t.Error("References should find cnt")
	}
	if References(e, map[schema.AttrID]bool{schema.NewAttrID(): true}) {
		t.Error("References should not find unrelated attr")
	}
	if References(nil, attrs) {
		t.Error("nil expr references nothing")
	}
}

func TestSplitConjuncts(t *testing.T) {
	a := NewLiteral(types.Bool(true))
	b := NewLiteral(types.Bool(false))
	c := NewLiteral(types.Int(1))
	e := NewAnd(a, NewAnd(b, c))
	parts := SplitConjuncts(e)
	if len(parts) != 3 {
		t.Errorf("split = %d parts, want 3", len(parts))
	}
	if got := SplitConjuncts(nil); got != nil {
		t.Error("nil split")
	}
	// OR is not split.
	or := NewOr(a, b)
	if parts := SplitConjuncts(or); len(parts) != 1 {
		t.Error("OR must not be split")
	}
}

func TestExprString(t *testing.T) {
	_, name, pop, _ := testSchema()
	e := NewAnd(
		NewCmp(EQ, NewColRef(name), NewLiteral(types.Str("it's"))),
		NewCmp(LE, NewColRef(pop), NewLiteral(types.Int(5))),
	)
	s := e.String()
	for _, want := range []string{"S.Name = 'it''s'", "S.Pop <= 5", "AND"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestArithPropertyAddCommutes(t *testing.T) {
	s := schema.New()
	f := func(a, b int32) bool {
		l := NewArith(Add, NewLiteral(types.Int(int64(a))), NewLiteral(types.Int(int64(b))))
		r := NewArith(Add, NewLiteral(types.Int(int64(b))), NewLiteral(types.Int(int64(a))))
		l.Bind(s)
		r.Bind(s)
		lv, err1 := l.Eval(&Env{}, nil)
		rv, err2 := r.Eval(&Env{}, nil)
		return err1 == nil && err2 == nil && lv.Equal(rv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpOpStrings(t *testing.T) {
	want := map[CmpOp]string{EQ: "=", NE: "<>", LT: "<", LE: "<=", GT: ">", GE: ">="}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%v", op)
		}
	}
}
