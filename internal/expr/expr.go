// Package expr implements the scalar expression language of the engine's
// SQL subset: column references (by stable AttrID), literals, comparison,
// boolean logic, and arithmetic.
//
// Expressions are bound against an operator's input schema at Open time
// (resolving AttrIDs to positional indexes) and then evaluated once per
// tuple. Column references that are not found in the input schema are
// treated as correlated outer references and resolved from the evaluation
// environment — this is how dependent joins (Section 4 of the WSQ/DSQ
// paper) supply bindings to virtual table scans.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/schema"
	"repro/internal/types"
)

// Env carries the correlated bindings visible during evaluation. A
// dependent join pushes its current outer tuple's values here before
// re-opening its right subtree.
type Env struct {
	outer []frame
}

type frame struct {
	vals map[schema.AttrID]types.Value
}

// PushFrame makes a new set of outer bindings visible. Frames nest so that
// stacked dependent joins each contribute their own bindings.
func (e *Env) PushFrame(vals map[schema.AttrID]types.Value) {
	e.outer = append(e.outer, frame{vals: vals})
}

// PopFrame removes the most recently pushed binding frame.
func (e *Env) PopFrame() {
	if len(e.outer) > 0 {
		e.outer = e.outer[:len(e.outer)-1]
	}
}

// Lookup finds an outer binding for the given attribute, innermost first.
func (e *Env) Lookup(id schema.AttrID) (types.Value, bool) {
	for i := len(e.outer) - 1; i >= 0; i-- {
		if v, ok := e.outer[i].vals[id]; ok {
			return v, true
		}
	}
	return types.Value{}, false
}

// Expr is a scalar expression node.
type Expr interface {
	// Bind resolves column references against the input schema. References
	// not present in the schema become outer (correlated) references.
	Bind(s *schema.Schema) error
	// Eval computes the expression over one input tuple.
	Eval(env *Env, row types.Tuple) (types.Value, error)
	// CollectAttrs adds every AttrID the expression references to set.
	CollectAttrs(set map[schema.AttrID]bool)
	// Type reports the static result type where known.
	Type() schema.Type
	// String renders the expression in SQL-ish form for EXPLAIN output.
	String() string
}

// ---------------------------------------------------------------------------
// Column reference

// ColRef references a column instance by AttrID.
type ColRef struct {
	ID  schema.AttrID
	Col schema.Column // display metadata, filled during planning
	idx int
	out bool
	bnd bool
}

// NewColRef builds a column reference from resolved column metadata.
func NewColRef(c schema.Column) *ColRef {
	return &ColRef{ID: c.ID, Col: c}
}

// Bind resolves the reference against the input schema.
func (c *ColRef) Bind(s *schema.Schema) error {
	c.bnd = true
	if i := s.IndexOf(c.ID); i >= 0 {
		c.idx, c.out = i, false
		return nil
	}
	// Not in the local schema: treat as a correlated outer reference; it
	// must be supplied by an enclosing dependent join at evaluation time.
	c.out = true
	return nil
}

// Eval returns the referenced value from the row or the outer environment.
func (c *ColRef) Eval(env *Env, row types.Tuple) (types.Value, error) {
	if !c.bnd {
		return types.Value{}, fmt.Errorf("column %s evaluated before bind", c.Col.QualifiedName())
	}
	if c.out {
		if env != nil {
			if v, ok := env.Lookup(c.ID); ok {
				return v, nil
			}
		}
		return types.Value{}, fmt.Errorf("unbound correlated column %s (attr %d)", c.Col.QualifiedName(), c.ID)
	}
	if c.idx >= len(row) {
		return types.Value{}, fmt.Errorf("column %s index %d out of range for tuple of width %d", c.Col.QualifiedName(), c.idx, len(row))
	}
	return row[c.idx], nil
}

// CollectAttrs implements Expr.
func (c *ColRef) CollectAttrs(set map[schema.AttrID]bool) { set[c.ID] = true }

// Type implements Expr.
func (c *ColRef) Type() schema.Type { return c.Col.Type }

// String implements Expr.
func (c *ColRef) String() string { return c.Col.QualifiedName() }

// ---------------------------------------------------------------------------
// Literal

// Literal is a constant value.
type Literal struct {
	Val types.Value
}

// NewLiteral wraps a constant value as an expression.
func NewLiteral(v types.Value) *Literal { return &Literal{Val: v} }

// Bind implements Expr (no-op).
func (l *Literal) Bind(*schema.Schema) error { return nil }

// Eval implements Expr.
func (l *Literal) Eval(*Env, types.Tuple) (types.Value, error) { return l.Val, nil }

// CollectAttrs implements Expr (no-op).
func (l *Literal) CollectAttrs(map[schema.AttrID]bool) {}

// Type implements Expr.
func (l *Literal) Type() schema.Type {
	switch l.Val.Kind {
	case types.KindInt:
		return schema.TInt
	case types.KindFloat:
		return schema.TFloat
	default:
		return schema.TString
	}
}

// String implements Expr.
func (l *Literal) String() string {
	if l.Val.Kind == types.KindString {
		return "'" + strings.ReplaceAll(l.Val.S, "'", "''") + "'"
	}
	return l.Val.String()
}

// ---------------------------------------------------------------------------
// Comparison

// CmpOp is a comparison operator.
type CmpOp uint8

// The comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the SQL spelling of the operator.
func (o CmpOp) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return "?"
	}
}

// Cmp compares two subexpressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// NewCmp builds a comparison node.
func NewCmp(op CmpOp, l, r Expr) *Cmp { return &Cmp{Op: op, L: l, R: r} }

// Bind implements Expr.
func (c *Cmp) Bind(s *schema.Schema) error {
	if err := c.L.Bind(s); err != nil {
		return err
	}
	return c.R.Bind(s)
}

// Eval implements Expr. Comparisons involving NULL yield NULL (not truthy).
func (c *Cmp) Eval(env *Env, row types.Tuple) (types.Value, error) {
	lv, err := c.L.Eval(env, row)
	if err != nil {
		return types.Value{}, err
	}
	rv, err := c.R.Eval(env, row)
	if err != nil {
		return types.Value{}, err
	}
	if lv.IsNull() || rv.IsNull() {
		return types.Null(), nil
	}
	if lv.IsPlaceholder() || rv.IsPlaceholder() {
		return types.Value{}, fmt.Errorf("comparison %s evaluated over pending placeholder value; plan rewrite must keep this operator above ReqSync", c)
	}
	cmp := lv.Compare(rv)
	switch c.Op {
	case EQ:
		return types.Bool(cmp == 0), nil
	case NE:
		return types.Bool(cmp != 0), nil
	case LT:
		return types.Bool(cmp < 0), nil
	case LE:
		return types.Bool(cmp <= 0), nil
	case GT:
		return types.Bool(cmp > 0), nil
	case GE:
		return types.Bool(cmp >= 0), nil
	default:
		return types.Value{}, fmt.Errorf("unknown comparison op %d", c.Op)
	}
}

// CollectAttrs implements Expr.
func (c *Cmp) CollectAttrs(set map[schema.AttrID]bool) {
	c.L.CollectAttrs(set)
	c.R.CollectAttrs(set)
}

// Type implements Expr.
func (c *Cmp) Type() schema.Type { return schema.TInt }

// String implements Expr.
func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// ---------------------------------------------------------------------------
// Boolean logic

// LogicOp is a boolean connective.
type LogicOp uint8

// The boolean connectives.
const (
	And LogicOp = iota
	Or
	Not
)

// Logic combines boolean subexpressions.
type Logic struct {
	Op   LogicOp
	Args []Expr // one arg for Not, two or more for And/Or
}

// NewAnd conjoins expressions; it returns nil for no args and the sole arg
// for one, flattening nested conjunctions.
func NewAnd(args ...Expr) Expr {
	flat := make([]Expr, 0, len(args))
	for _, a := range args {
		if a == nil {
			continue
		}
		if l, ok := a.(*Logic); ok && l.Op == And {
			flat = append(flat, l.Args...)
			continue
		}
		flat = append(flat, a)
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	default:
		return &Logic{Op: And, Args: flat}
	}
}

// NewOr disjoins expressions.
func NewOr(args ...Expr) Expr {
	if len(args) == 1 {
		return args[0]
	}
	return &Logic{Op: Or, Args: args}
}

// NewNot negates an expression.
func NewNot(a Expr) Expr { return &Logic{Op: Not, Args: []Expr{a}} }

// Bind implements Expr.
func (l *Logic) Bind(s *schema.Schema) error {
	for _, a := range l.Args {
		if err := a.Bind(s); err != nil {
			return err
		}
	}
	return nil
}

// Eval implements Expr with short-circuit semantics.
func (l *Logic) Eval(env *Env, row types.Tuple) (types.Value, error) {
	switch l.Op {
	case And:
		for _, a := range l.Args {
			v, err := a.Eval(env, row)
			if err != nil {
				return types.Value{}, err
			}
			if !v.Truthy() {
				return types.Bool(false), nil
			}
		}
		return types.Bool(true), nil
	case Or:
		for _, a := range l.Args {
			v, err := a.Eval(env, row)
			if err != nil {
				return types.Value{}, err
			}
			if v.Truthy() {
				return types.Bool(true), nil
			}
		}
		return types.Bool(false), nil
	case Not:
		v, err := l.Args[0].Eval(env, row)
		if err != nil {
			return types.Value{}, err
		}
		return types.Bool(!v.Truthy()), nil
	default:
		return types.Value{}, fmt.Errorf("unknown logic op %d", l.Op)
	}
}

// CollectAttrs implements Expr.
func (l *Logic) CollectAttrs(set map[schema.AttrID]bool) {
	for _, a := range l.Args {
		a.CollectAttrs(set)
	}
}

// Type implements Expr.
func (l *Logic) Type() schema.Type { return schema.TInt }

// String implements Expr.
func (l *Logic) String() string {
	switch l.Op {
	case Not:
		return "NOT (" + l.Args[0].String() + ")"
	case And:
		parts := make([]string, len(l.Args))
		for i, a := range l.Args {
			parts[i] = a.String()
		}
		return strings.Join(parts, " AND ")
	default:
		parts := make([]string, len(l.Args))
		for i, a := range l.Args {
			parts[i] = "(" + a.String() + ")"
		}
		return strings.Join(parts, " OR ")
	}
}

// ---------------------------------------------------------------------------
// IS [NOT] NULL

// IsNull tests whether a subexpression evaluates to NULL (or, with Not
// set, to a non-NULL value). Unlike Cmp against a NULL literal it yields
// a definite boolean, so it is the only way a predicate can select
// NULL-bearing rows.
type IsNull struct {
	Not bool
	E   Expr
}

// NewIsNull builds an IS [NOT] NULL node.
func NewIsNull(e Expr, not bool) *IsNull { return &IsNull{Not: not, E: e} }

// Bind implements Expr.
func (n *IsNull) Bind(s *schema.Schema) error { return n.E.Bind(s) }

// Eval implements Expr. A placeholder is an error, not NULL: whether the
// pending value settles to NULL is unknowable here, so evaluating below
// ReqSync would silently flip the predicate. The asynchronous rewrite's
// clash rules must keep any filter containing IsNull above ReqSync.
func (n *IsNull) Eval(env *Env, row types.Tuple) (types.Value, error) {
	v, err := n.E.Eval(env, row)
	if err != nil {
		return types.Value{}, err
	}
	if v.IsPlaceholder() {
		return types.Value{}, fmt.Errorf("%s evaluated over pending placeholder value; plan rewrite must keep this operator above ReqSync", n)
	}
	return types.Bool(v.IsNull() != n.Not), nil
}

// CollectAttrs implements Expr.
func (n *IsNull) CollectAttrs(set map[schema.AttrID]bool) { n.E.CollectAttrs(set) }

// Type implements Expr.
func (n *IsNull) Type() schema.Type { return schema.TInt }

// String implements Expr.
func (n *IsNull) String() string {
	if n.Not {
		return fmt.Sprintf("(%s IS NOT NULL)", n.E)
	}
	return fmt.Sprintf("(%s IS NULL)", n.E)
}

// ---------------------------------------------------------------------------
// Arithmetic

// ArithOp is an arithmetic operator.
type ArithOp uint8

// The arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

// String returns the SQL spelling of the operator.
func (o ArithOp) String() string {
	switch o {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	default:
		return "?"
	}
}

// Arith applies an arithmetic operator to two subexpressions.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// NewArith builds an arithmetic node.
func NewArith(op ArithOp, l, r Expr) *Arith { return &Arith{Op: op, L: l, R: r} }

// Bind implements Expr.
func (a *Arith) Bind(s *schema.Schema) error {
	if err := a.L.Bind(s); err != nil {
		return err
	}
	return a.R.Bind(s)
}

// Eval implements Expr. Integer operands stay integral except for division,
// which is performed in floating point (Query 2 of the paper divides a web
// count by a population and relies on fractional precision).
func (a *Arith) Eval(env *Env, row types.Tuple) (types.Value, error) {
	lv, err := a.L.Eval(env, row)
	if err != nil {
		return types.Value{}, err
	}
	rv, err := a.R.Eval(env, row)
	if err != nil {
		return types.Value{}, err
	}
	if lv.IsNull() || rv.IsNull() {
		return types.Null(), nil
	}
	if lv.IsPlaceholder() || rv.IsPlaceholder() {
		return types.Value{}, fmt.Errorf("arithmetic %s evaluated over pending placeholder value", a)
	}
	if lv.Kind == types.KindInt && rv.Kind == types.KindInt && a.Op != Div {
		switch a.Op {
		case Add:
			return types.Int(lv.I + rv.I), nil
		case Sub:
			return types.Int(lv.I - rv.I), nil
		case Mul:
			return types.Int(lv.I * rv.I), nil
		}
	}
	lf, err := lv.AsFloat()
	if err != nil {
		return types.Value{}, err
	}
	rf, err := rv.AsFloat()
	if err != nil {
		return types.Value{}, err
	}
	switch a.Op {
	case Add:
		return types.Float(lf + rf), nil
	case Sub:
		return types.Float(lf - rf), nil
	case Mul:
		return types.Float(lf * rf), nil
	case Div:
		if rf == 0 {
			return types.Null(), nil
		}
		return types.Float(lf / rf), nil
	default:
		return types.Value{}, fmt.Errorf("unknown arithmetic op %d", a.Op)
	}
}

// CollectAttrs implements Expr.
func (a *Arith) CollectAttrs(set map[schema.AttrID]bool) {
	a.L.CollectAttrs(set)
	a.R.CollectAttrs(set)
}

// Type implements Expr.
func (a *Arith) Type() schema.Type {
	if a.Op == Div {
		return schema.TFloat
	}
	if a.L.Type() == schema.TInt && a.R.Type() == schema.TInt {
		return schema.TInt
	}
	return schema.TFloat
}

// String implements Expr.
func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// ---------------------------------------------------------------------------
// Helpers

// Attrs returns the set of attributes referenced by e (nil-safe).
func Attrs(e Expr) map[schema.AttrID]bool {
	set := make(map[schema.AttrID]bool)
	if e != nil {
		e.CollectAttrs(set)
	}
	return set
}

// References reports whether e references any attribute in the given set.
func References(e Expr, set map[schema.AttrID]bool) bool {
	if e == nil {
		return false
	}
	for id := range Attrs(e) {
		if set[id] {
			return true
		}
	}
	return false
}

// SplitConjuncts decomposes a conjunction into its component predicates.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if l, ok := e.(*Logic); ok && l.Op == And {
		var out []Expr
		for _, a := range l.Args {
			out = append(out, SplitConjuncts(a)...)
		}
		return out
	}
	return []Expr{e}
}
