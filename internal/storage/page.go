// Package storage implements the on-disk layer of the engine: slotted
// pages, a pinning LRU buffer pool, and heap files of variable-length
// records. It corresponds to the storage manager of Redbase, the homegrown
// DBMS the WSQ/DSQ paper extended ("a page-level buffer and iterator-based
// query execution", Section 5).
package storage

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the fixed size of every page in bytes.
const PageSize = 4096

// pageHeaderSize is the fixed header at the start of each slotted page:
// numSlots (2 bytes) and freePtr (2 bytes).
const pageHeaderSize = 4

// slotSize is the per-slot directory entry: offset (2 bytes), length
// (2 bytes).
const slotSize = 4

// tombstoneOff marks a deleted slot in the directory.
const tombstoneOff = 0xFFFF

// Page is a slotted page: a slot directory grows forward from the header
// while record bodies grow backward from the end of the page.
type Page struct {
	buf [PageSize]byte
}

// Reset initializes an empty page.
func (p *Page) Reset() {
	for i := range p.buf {
		p.buf[i] = 0
	}
	p.setNumSlots(0)
	p.setFreePtr(PageSize)
}

// Bytes exposes the raw page buffer (for I/O).
func (p *Page) Bytes() []byte { return p.buf[:] }

func (p *Page) numSlots() int      { return int(binary.LittleEndian.Uint16(p.buf[0:2])) }
func (p *Page) setNumSlots(n int)  { binary.LittleEndian.PutUint16(p.buf[0:2], uint16(n)) }
func (p *Page) freePtr() int       { return int(binary.LittleEndian.Uint16(p.buf[2:4])) }
func (p *Page) setFreePtr(off int) { binary.LittleEndian.PutUint16(p.buf[2:4], uint16(off)) }

func (p *Page) slot(i int) (off, length int) {
	base := pageHeaderSize + slotSize*i
	return int(binary.LittleEndian.Uint16(p.buf[base : base+2])),
		int(binary.LittleEndian.Uint16(p.buf[base+2 : base+4]))
}

func (p *Page) setSlot(i, off, length int) {
	base := pageHeaderSize + slotSize*i
	binary.LittleEndian.PutUint16(p.buf[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:base+4], uint16(length))
}

// FreeSpace returns the bytes available for a new record (including its
// slot directory entry).
func (p *Page) FreeSpace() int {
	return p.freePtr() - (pageHeaderSize + slotSize*p.numSlots())
}

// CanFit reports whether a record of n bytes fits on the page.
func (p *Page) CanFit(n int) bool { return p.FreeSpace() >= n+slotSize }

// MaxRecordSize is the largest record a fresh page can hold.
const MaxRecordSize = PageSize - pageHeaderSize - slotSize

// Insert places a record on the page and returns its slot number.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) > MaxRecordSize {
		return 0, fmt.Errorf("record of %d bytes exceeds page capacity %d", len(rec), MaxRecordSize)
	}
	if !p.CanFit(len(rec)) {
		return 0, fmt.Errorf("page full: need %d bytes, have %d", len(rec)+slotSize, p.FreeSpace())
	}
	// Reuse a tombstoned slot if one exists (record space is not compacted,
	// but the directory entry is reused so slot numbers stay dense-ish).
	slot := -1
	n := p.numSlots()
	for i := 0; i < n; i++ {
		if off, _ := p.slot(i); off == tombstoneOff {
			slot = i
			break
		}
	}
	if slot == -1 {
		slot = n
		p.setNumSlots(n + 1)
	}
	off := p.freePtr() - len(rec)
	copy(p.buf[off:], rec)
	p.setFreePtr(off)
	p.setSlot(slot, off, len(rec))
	return slot, nil
}

// Get returns the record stored in the given slot. The returned slice
// aliases the page buffer and must be copied if retained.
func (p *Page) Get(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.numSlots() {
		return nil, fmt.Errorf("slot %d out of range (page has %d slots)", slot, p.numSlots())
	}
	off, length := p.slot(slot)
	if off == tombstoneOff {
		return nil, fmt.Errorf("slot %d is deleted", slot)
	}
	return p.buf[off : off+length], nil
}

// Delete tombstones the given slot. The record bytes are not reclaimed
// until the page is compacted (not implemented; WSQ workloads are
// insert/scan-dominated).
func (p *Page) Delete(slot int) error {
	if slot < 0 || slot >= p.numSlots() {
		return fmt.Errorf("slot %d out of range (page has %d slots)", slot, p.numSlots())
	}
	if off, _ := p.slot(slot); off == tombstoneOff {
		return fmt.Errorf("slot %d already deleted", slot)
	}
	p.setSlot(slot, tombstoneOff, 0)
	return nil
}

// NumSlots returns the size of the slot directory (including tombstones).
func (p *Page) NumSlots() int { return p.numSlots() }

// Live reports whether the slot holds a live record.
func (p *Page) Live(slot int) bool {
	if slot < 0 || slot >= p.numSlots() {
		return false
	}
	off, _ := p.slot(slot)
	return off != tombstoneOff
}
