package storage

import (
	"fmt"
	"os"
	"sync"
)

// RID identifies a record within a heap file by page and slot.
type RID struct {
	Page uint32
	Slot uint16
}

// String renders the RID for diagnostics.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// HeapFile is an unordered file of variable-length records stored in
// slotted pages, accessed through a buffer pool.
type HeapFile struct {
	path string
	f    *os.File
	bp   *BufferPool
	// wmu serializes record mutations (insert hint + page writes). Readers
	// coordinate with writers at a higher layer (core.DB's RW lock).
	wmu sync.Mutex
	// hint: last page that accepted an insert, to avoid rescanning.
	insertHint uint32
}

// OpenHeapFile opens (creating if necessary) a heap file at path with the
// given buffer-pool frame budget.
func OpenHeapFile(path string, poolFrames int) (*HeapFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open heap file %s: %w", path, err)
	}
	bp, err := NewBufferPool(f, poolFrames)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &HeapFile{path: path, f: f, bp: bp}, nil
}

// Close flushes dirty pages and closes the file.
func (h *HeapFile) Close() error {
	if err := h.bp.FlushAll(); err != nil {
		h.f.Close()
		return err
	}
	return h.f.Close()
}

// Path returns the on-disk path of the heap file.
func (h *HeapFile) Path() string { return h.path }

// NumPages returns the page count.
func (h *HeapFile) NumPages() uint32 { return h.bp.NumPages() }

// Pool exposes the buffer pool (for stats in tests).
func (h *HeapFile) Pool() *BufferPool { return h.bp }

// Insert appends a record, returning its RID.
func (h *HeapFile) Insert(rec []byte) (RID, error) {
	h.wmu.Lock()
	defer h.wmu.Unlock()
	if len(rec) > MaxRecordSize {
		return RID{}, fmt.Errorf("record of %d bytes exceeds max %d", len(rec), MaxRecordSize)
	}
	// Try the hint page first, then fall back to appending a new page.
	if h.bp.NumPages() > 0 {
		p, err := h.bp.Pin(h.insertHint)
		if err != nil {
			return RID{}, err
		}
		if p.CanFit(len(rec)) {
			slot, err := p.Insert(rec)
			if err != nil {
				h.bp.Unpin(h.insertHint, false)
				return RID{}, err
			}
			if err := h.bp.Unpin(h.insertHint, true); err != nil {
				return RID{}, err
			}
			return RID{Page: h.insertHint, Slot: uint16(slot)}, nil
		}
		if err := h.bp.Unpin(h.insertHint, false); err != nil {
			return RID{}, err
		}
	}
	pageNo, p, err := h.bp.AppendPage()
	if err != nil {
		return RID{}, err
	}
	slot, err := p.Insert(rec)
	if err != nil {
		h.bp.Unpin(pageNo, false)
		return RID{}, err
	}
	if err := h.bp.Unpin(pageNo, true); err != nil {
		return RID{}, err
	}
	h.insertHint = pageNo
	return RID{Page: pageNo, Slot: uint16(slot)}, nil
}

// Get returns a copy of the record at rid.
func (h *HeapFile) Get(rid RID) ([]byte, error) {
	p, err := h.bp.Pin(rid.Page)
	if err != nil {
		return nil, err
	}
	raw, err := p.Get(int(rid.Slot))
	if err != nil {
		h.bp.Unpin(rid.Page, false)
		return nil, err
	}
	out := make([]byte, len(raw))
	copy(out, raw)
	if err := h.bp.Unpin(rid.Page, false); err != nil {
		return nil, err
	}
	return out, nil
}

// Delete removes the record at rid.
func (h *HeapFile) Delete(rid RID) error {
	p, err := h.bp.Pin(rid.Page)
	if err != nil {
		return err
	}
	if err := p.Delete(int(rid.Slot)); err != nil {
		h.bp.Unpin(rid.Page, false)
		return err
	}
	return h.bp.Unpin(rid.Page, true)
}

// Flush writes all dirty pages back to disk without closing.
func (h *HeapFile) Flush() error { return h.bp.FlushAll() }

// Scanner iterates over the live records of a heap file in (page, slot)
// order. It pins at most one page at a time.
type Scanner struct {
	h      *HeapFile
	page   uint32
	slot   int
	pinned *Page
	done   bool
}

// NewScanner returns a scanner positioned before the first record.
func (h *HeapFile) NewScanner() *Scanner {
	return &Scanner{h: h, slot: -1}
}

// Next advances to the next live record, returning its RID and a copy of
// its bytes. It returns ok=false when the scan is exhausted.
func (s *Scanner) Next() (RID, []byte, bool, error) {
	if s.done {
		return RID{}, nil, false, nil
	}
	for {
		if s.pinned == nil {
			if s.page >= s.h.bp.NumPages() {
				s.done = true
				return RID{}, nil, false, nil
			}
			p, err := s.h.bp.Pin(s.page)
			if err != nil {
				s.done = true
				return RID{}, nil, false, err
			}
			s.pinned = p
			s.slot = -1
		}
		s.slot++
		if s.slot >= s.pinned.NumSlots() {
			if err := s.h.bp.Unpin(s.page, false); err != nil {
				s.done = true
				return RID{}, nil, false, err
			}
			s.pinned = nil
			s.page++
			continue
		}
		if !s.pinned.Live(s.slot) {
			continue
		}
		raw, err := s.pinned.Get(s.slot)
		if err != nil {
			return RID{}, nil, false, err
		}
		out := make([]byte, len(raw))
		copy(out, raw)
		return RID{Page: s.page, Slot: uint16(s.slot)}, out, true, nil
	}
}

// Close releases any pinned page. Safe to call multiple times.
func (s *Scanner) Close() error {
	if s.pinned != nil {
		err := s.h.bp.Unpin(s.page, false)
		s.pinned = nil
		s.done = true
		return err
	}
	s.done = true
	return nil
}
