package storage

import (
	"container/list"
	"fmt"
	"os"
	"sync"
)

// BufferPool caches pages of one underlying file in memory with pin
// counting and LRU replacement of unpinned frames. It is the "page-level
// buffer" of the Redbase substrate.
//
// Pool bookkeeping (frame map, LRU list, pin counts, stats) is guarded by
// a mutex so that any number of concurrent scanners — one per query in a
// multi-client server — can share the pool. Page *contents* are protected
// by the pin protocol plus the engine's reader/writer discipline: a pinned
// frame is never evicted, readers only read page bytes, and writers
// (INSERT/CREATE/DROP) run exclusively at the DB layer.
type BufferPool struct {
	file      *os.File
	maxFrames int

	mu       sync.Mutex
	frames   map[uint32]*frame
	lru      *list.List // of *frame; front = most recently used
	numPages uint32
	// Stats for tests and EXPLAIN-level diagnostics; read them only when
	// no operations are concurrently in flight (or via StatsSnapshot).
	Hits, Misses, Evictions uint64
}

type frame struct {
	pageNo uint32
	page   Page
	pins   int
	dirty  bool
	elem   *list.Element
}

// DefaultPoolSize is the default number of buffer frames.
const DefaultPoolSize = 64

// NewBufferPool wraps an open file in a buffer pool with the given frame
// budget. The file length must be a multiple of PageSize.
func NewBufferPool(f *os.File, maxFrames int) (*BufferPool, error) {
	if maxFrames < 1 {
		maxFrames = DefaultPoolSize
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("stat heap file: %w", err)
	}
	if fi.Size()%PageSize != 0 {
		return nil, fmt.Errorf("heap file size %d is not a multiple of page size %d", fi.Size(), PageSize)
	}
	return &BufferPool{
		file:      f,
		maxFrames: maxFrames,
		frames:    make(map[uint32]*frame),
		lru:       list.New(),
		numPages:  uint32(fi.Size() / PageSize),
	}, nil
}

// NumPages returns the number of pages in the file.
func (bp *BufferPool) NumPages() uint32 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.numPages
}

// StatsSnapshot returns the hit/miss/eviction counters consistently.
func (bp *BufferPool) StatsSnapshot() (hits, misses, evictions uint64) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.Hits, bp.Misses, bp.Evictions
}

// Pin fetches the page into the pool (reading from disk on a miss) and
// pins it. Every Pin must be paired with an Unpin.
func (bp *BufferPool) Pin(pageNo uint32) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if pageNo >= bp.numPages {
		return nil, fmt.Errorf("page %d out of range (file has %d pages)", pageNo, bp.numPages)
	}
	if fr, ok := bp.frames[pageNo]; ok {
		bp.Hits++
		fr.pins++
		bp.lru.MoveToFront(fr.elem)
		return &fr.page, nil
	}
	bp.Misses++
	if err := bp.makeRoom(); err != nil {
		return nil, err
	}
	fr := &frame{pageNo: pageNo, pins: 1}
	if _, err := bp.file.ReadAt(fr.page.Bytes(), int64(pageNo)*PageSize); err != nil {
		return nil, fmt.Errorf("read page %d: %w", pageNo, err)
	}
	fr.elem = bp.lru.PushFront(fr)
	bp.frames[pageNo] = fr
	return &fr.page, nil
}

// AppendPage extends the file by one zeroed page, pins it, and returns its
// page number.
func (bp *BufferPool) AppendPage() (uint32, *Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if err := bp.makeRoom(); err != nil {
		return 0, nil, err
	}
	pageNo := bp.numPages
	fr := &frame{pageNo: pageNo, pins: 1, dirty: true}
	fr.page.Reset()
	if _, err := bp.file.WriteAt(fr.page.Bytes(), int64(pageNo)*PageSize); err != nil {
		return 0, nil, fmt.Errorf("extend file with page %d: %w", pageNo, err)
	}
	bp.numPages++
	fr.elem = bp.lru.PushFront(fr)
	bp.frames[pageNo] = fr
	return pageNo, &fr.page, nil
}

// Unpin releases one pin on the page, optionally marking it dirty.
func (bp *BufferPool) Unpin(pageNo uint32, dirty bool) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[pageNo]
	if !ok {
		return fmt.Errorf("unpin of page %d that is not resident", pageNo)
	}
	if fr.pins <= 0 {
		return fmt.Errorf("unpin of page %d with zero pin count", pageNo)
	}
	fr.pins--
	if dirty {
		fr.dirty = true
	}
	return nil
}

// makeRoom evicts the least recently used unpinned frame if the pool is at
// capacity, writing it back if dirty. Callers hold bp.mu.
func (bp *BufferPool) makeRoom() error {
	if len(bp.frames) < bp.maxFrames {
		return nil
	}
	for e := bp.lru.Back(); e != nil; e = e.Prev() {
		fr := e.Value.(*frame)
		if fr.pins > 0 {
			continue
		}
		if fr.dirty {
			if _, err := bp.file.WriteAt(fr.page.Bytes(), int64(fr.pageNo)*PageSize); err != nil {
				return fmt.Errorf("write back page %d: %w", fr.pageNo, err)
			}
		}
		bp.lru.Remove(e)
		delete(bp.frames, fr.pageNo)
		bp.Evictions++
		return nil
	}
	return fmt.Errorf("buffer pool exhausted: all %d frames pinned", bp.maxFrames)
}

// FlushAll writes every dirty resident page back to disk.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, fr := range bp.frames {
		if !fr.dirty {
			continue
		}
		if _, err := bp.file.WriteAt(fr.page.Bytes(), int64(fr.pageNo)*PageSize); err != nil {
			return fmt.Errorf("flush page %d: %w", fr.pageNo, err)
		}
		fr.dirty = false
	}
	return nil
}
