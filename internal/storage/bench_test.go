package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func benchHeap(b *testing.B, frames int) *HeapFile {
	b.Helper()
	dir, err := os.MkdirTemp("", "heapbench-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	h, err := OpenHeapFile(filepath.Join(dir, "b.tbl"), frames)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { h.Close() })
	return h
}

func BenchmarkHeapInsert(b *testing.B) {
	h := benchHeap(b, 64)
	rec := []byte("a-typical-row-of-roughly-fifty-bytes-of-payload!!")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapScan(b *testing.B) {
	h := benchHeap(b, 64)
	for i := 0; i < 10_000; i++ {
		if _, err := h.Insert([]byte(fmt.Sprintf("row-%06d", i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := h.NewScanner()
		n := 0
		for {
			_, _, ok, err := sc.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		sc.Close()
		if n != 10_000 {
			b.Fatalf("scanned %d", n)
		}
	}
}

func BenchmarkHeapScanColdPool(b *testing.B) {
	// A 2-frame pool forces an eviction per page: measures raw page I/O
	// through the pool.
	h := benchHeap(b, 2)
	for i := 0; i < 10_000; i++ {
		if _, err := h.Insert([]byte(fmt.Sprintf("row-%06d", i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := h.NewScanner()
		for {
			_, _, ok, err := sc.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
		sc.Close()
	}
}

func BenchmarkHeapGet(b *testing.B) {
	h := benchHeap(b, 64)
	var rids []RID
	for i := 0; i < 1000; i++ {
		rid, err := h.Insert([]byte(fmt.Sprintf("row-%06d", i)))
		if err != nil {
			b.Fatal(err)
		}
		rids = append(rids, rid)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Get(rids[i%len(rids)]); err != nil {
			b.Fatal(err)
		}
	}
}
